// IdLite semantic analysis unit tests: scoping, single assignment, typing,
// loop rules, and function rules.
#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "frontend/sema.hpp"

namespace pods::fe {
namespace {

std::string semaErr(std::string_view src, bool requireMain = false) {
  DiagSink d;
  Module m = parse(src, d);
  EXPECT_FALSE(d.hasErrors()) << "parse failed: " << d.str();
  analyze(m, d, requireMain);
  EXPECT_TRUE(d.hasErrors()) << "expected a sema error";
  return d.str();
}

Module semaOk(std::string_view src, bool requireMain = false) {
  DiagSink d;
  Module m = parse(src, d);
  EXPECT_FALSE(d.hasErrors()) << d.str();
  analyze(m, d, requireMain);
  EXPECT_FALSE(d.hasErrors()) << d.str();
  return m;
}

TEST(Sema, TypesInferred) {
  Module m = semaOk(R"(
def f(n: int) -> real {
  let x = 1;
  let y = 2.5;
  let z = x + y;
  let q = x / 2;
  return z * q;
}
)");
  const FnDecl& f = *m.fns[0];
  // vars: n, x, y, z, q
  EXPECT_EQ(f.vars[1].type, Ty::Int);
  EXPECT_EQ(f.vars[2].type, Ty::Real);
  EXPECT_EQ(f.vars[3].type, Ty::Real);  // int + real -> real
  EXPECT_EQ(f.vars[4].type, Ty::Int);   // int / int -> int
}

TEST(Sema, SingleAssignmentNoRebind) {
  std::string e = semaErr("def f() { let x = 1; let x = 2; }");
  EXPECT_NE(e.find("single-assignment"), std::string::npos);
}

TEST(Sema, NoShadowingInNestedScopes) {
  semaErr("def f() { let x = 1; if x > 0 { let x = 2; } }");
  semaErr("def f(x: int) { for x = 0 to 3 { } }");
}

TEST(Sema, BranchScopedLetsAreIndependent) {
  semaOk("def f(c: int) { if c { let t = 1; } else { let t = 2; } }");
}

TEST(Sema, BranchLocalNotVisibleAfter) {
  semaErr("def f(c: int) -> int { if c { let t = 1; } return t; }");
}

TEST(Sema, UnknownVariable) {
  std::string e = semaErr("def f() -> int { return nope; }");
  EXPECT_NE(e.find("unknown variable"), std::string::npos);
}

TEST(Sema, NextRules) {
  // next outside loop
  semaErr("def f() { next x = 1; }");
  // next of a non-carried variable
  semaErr("def f() { let s = 0; for i = 0 to 3 { next s = s + 1; } }");
  // next targets innermost loop only
  semaErr(R"(
def f() {
  for i = 0 to 3 carry (s = 0) {
    for j = 0 to 3 {
      next s = s + 1;
    }
  }
}
)");
  // correct form
  semaOk(R"(
def f() -> int {
  let r = for i = 0 to 3 carry (s = 0) { next s = s + i; } yield s;
  return r;
}
)");
}

TEST(Sema, CarryTypeMismatch) {
  std::string e = semaErr(
      "def f() { for i = 0 to 3 carry (s = 0) { next s = 1.5; } }");
  EXPECT_NE(e.find("does not match"), std::string::npos);
}

TEST(Sema, CarryIntToRealCoercionAllowed) {
  semaOk("def f() { for i = 0 to 3 carry (s = 0.0) { next s = 1; } }");
}

TEST(Sema, LoopBoundsMustBeInt) {
  semaErr("def f() { for i = 0.5 to 3 { } }");
  semaErr("def f(n: int) { for i = 0 to n * 0.5 { } }");
}

TEST(Sema, SubscriptRules) {
  semaErr("def f(a: array) -> real { return a[1.5]; }");
  semaErr("def f(a: array) -> real { return a[0, 1]; }");
  semaErr("def f(m: matrix) -> real { return m[0]; }");
  semaErr("def f(x: int) -> real { return x[0]; }");
  semaOk("def f(m: matrix, i: int) -> real { return m[i, i + 1]; }");
}

TEST(Sema, ArrayWriteRules) {
  semaErr("def f(a: array, b: array) { a[0] = b; }");  // value not numeric
  semaErr("def f(x: real) { x[0] = 1.0; }");
  semaOk("def f(a: array) { a[0] = 1; }");  // int coerces to element
}

TEST(Sema, ReturnRules) {
  semaErr("def f() -> int { let x = 1; }");            // missing return
  semaErr("def f() -> int { return 1; let x = 2; }");  // return not last
  semaErr("def f() { return 1; }");                    // void returns value
  semaErr("def f() -> int { return 1.5; }");           // real -> int narrows
  semaOk("def f() -> real { return 1; }");             // int -> real widens
}

TEST(Sema, TupleReturnOnlyInMain) {
  semaErr("def f() -> int { return 1, 2; }");
  Module m = semaOk("def main() { return 1, 2.0; }", /*requireMain=*/true);
  EXPECT_EQ(m.find("main")->retTupleSize, 2);
}

TEST(Sema, MainRules) {
  DiagSink d;
  Module m = parse("def notmain() { }", d);
  analyze(m, d, /*requireMain=*/true);
  EXPECT_TRUE(d.hasErrors());

  semaErr("def main(x: int) { }", /*requireMain=*/true);
}

TEST(Sema, CallChecks) {
  semaErr("def f() { g(); }");  // unknown function
  semaErr(R"(
def g(x: int) -> int { return x; }
def f() -> int { return g(); }
)");  // arity
  semaErr(R"(
def g(x: int) -> int { return x; }
def f() -> int { return g(1.5); }
)");  // real -> int param narrows
  semaErr(R"(
def g(a: array) { }
def f(m: matrix) { g(m); }
)");  // matrix where array expected
  semaOk(R"(
def g(x: real) -> real { return x; }
def f() -> real { return g(1); }
)");
}

TEST(Sema, VoidCallOnlyAsStatement) {
  std::string e = semaErr(R"(
def g() { }
def f() -> int { let x = g(); return x; }
)");
  EXPECT_NE(e.find("void"), std::string::npos);
}

TEST(Sema, BuiltinChecks) {
  semaErr("def f() -> real { return sqrt(1.0, 2.0); }");
  semaErr("def f(a: array) -> real { return sqrt(a); }");
  semaOk("def f() -> int { return min(1, 2) + abs(-3) % max(1, 2); }");
  // abs on real stays real; int(x) truncates.
  Module m = semaOk("def f() -> real { return abs(-1.5); }");
  (void)m;
}

TEST(Sema, CannotRedefineBuiltin) {
  semaErr("def sqrt(x: real) -> real { return x; }");
}

TEST(Sema, DuplicateFunction) {
  semaErr("def f() { } def f() { }");
}

TEST(Sema, MainCannotBeCalled) {
  semaErr("def main() { } def f() { main(); }");
}

TEST(Sema, IfExprArmTypes) {
  semaOk("def f(c: int) -> real { return if c then 1 else 2.5; }");
  semaOk("def f(c: int, a: array, b: array) -> real { let x = if c then a else b; return x[0]; }");
  semaErr("def f(c: int, a: array, m: matrix) { let x = if c then a else m; }");
}

TEST(Sema, WhileCondSeesCarries) {
  semaOk(R"(
def f(n: int) -> int {
  let r = loop carry (k = 0) while k < n { next k = k + 1; } yield k;
  return r;
}
)");
}

TEST(Sema, LogicalOpsRequireInt) {
  semaErr("def f(x: real) -> int { return x && 1; }");
  semaErr("def f(x: real) -> int { return !x; }");
  semaErr("def f(x: real) -> int { return x % 2; }");
}

TEST(Sema, YieldSeesCarriesNotBodyLocals) {
  semaOk(R"(
def f() -> int {
  let r = for i = 0 to 3 carry (s = 0) { next s = s + 1; } yield s * 2;
  return r;
}
)");
  semaErr(R"(
def f() -> int {
  let r = for i = 0 to 3 carry (s = 0) { let t = 1; next s = s + t; } yield t;
  return r;
}
)");
}

}  // namespace
}  // namespace pods::fe
