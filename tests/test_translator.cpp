// PODS Translator tests: instruction ordering (the paper's topological
// ordering step), SP structure, Range-Filter emission, and disassembly.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/pods.hpp"
#include "support/rng.hpp"
#include "translate/translator.hpp"
#include "workloads/kernels.hpp"

namespace pods {
namespace {

std::unique_ptr<Compiled> compileOk(const std::string& src,
                                    CompileOptions opts = {}) {
  CompileResult cr = compile(src, opts);
  EXPECT_TRUE(cr.ok) << cr.diagnostics;
  return std::move(cr.compiled);
}

const SpCode* findSp(const SpProgram& p, const std::string& name) {
  for (const SpCode& sp : p.sps) {
    if (sp.name == name) return &sp;
  }
  return nullptr;
}

int countOps(const SpCode& sp, Op op) {
  int n = 0;
  for (const Instr& in : sp.code) {
    if (in.op == op) ++n;
  }
  return n;
}

// --- orderItems -------------------------------------------------------------

/// Builds an item list of plain nodes forming a dependency chain plus some
/// independent nodes, in a given order of indices.
std::vector<ir::Item> makeChain(const std::vector<int>& order) {
  // Node k computes v_k; node k uses v_{k-1} for k >= 1.
  std::vector<ir::Item> items;
  for (int k : order) {
    ir::Item it;
    it.kind = ir::ItemKind::Node;
    it.node.op = k == 0 ? ir::NodeOp::Const : ir::NodeOp::Mov;
    it.node.dst = static_cast<ir::ValId>(k);
    if (k > 0) {
      it.node.in[0] = static_cast<ir::ValId>(k - 1);
      it.node.nin = 1;
    }
    items.push_back(std::move(it));
  }
  return items;
}

TEST(OrderItems, ValidOrderIsPreserved) {
  auto items = makeChain({0, 1, 2, 3, 4});
  auto ordered = translate::orderItems(items);
  ASSERT_EQ(ordered.size(), 5u);
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    EXPECT_EQ(ordered[i], &items[i]);  // identity on already-valid input
  }
}

TEST(OrderItems, ReversedChainIsSorted) {
  auto items = makeChain({4, 3, 2, 1, 0});
  auto ordered = translate::orderItems(items);
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    EXPECT_EQ(ordered[i]->node.dst, static_cast<ir::ValId>(i));
  }
}

TEST(OrderItems, RandomShufflesAlwaysValid) {
  SplitMix64 rng(2026);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int> order(12);
    for (int i = 0; i < 12; ++i) order[static_cast<std::size_t>(i)] = i;
    for (int i = 11; i > 0; --i) {
      std::swap(order[static_cast<std::size_t>(i)],
                order[rng.below(static_cast<std::uint64_t>(i + 1))]);
    }
    auto items = makeChain(order);
    auto ordered = translate::orderItems(items);
    // Check def-before-use in the output.
    std::vector<bool> defined(12, false);
    for (const ir::Item* it : ordered) {
      if (it->node.nin > 0) {
        EXPECT_TRUE(defined[it->node.in[0]]);
      }
      defined[it->node.dst] = true;
    }
  }
}

TEST(OrderItems, IndependentItemsKeepRelativeOrder) {
  // Two independent chains interleaved: stable sort keeps original order.
  std::vector<ir::Item> items;
  for (int k = 0; k < 6; ++k) {
    ir::Item it;
    it.kind = ir::ItemKind::Node;
    it.node.op = ir::NodeOp::Const;
    it.node.dst = static_cast<ir::ValId>(k);
    items.push_back(std::move(it));
  }
  auto ordered = translate::orderItems(items);
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    EXPECT_EQ(ordered[i], &items[i]);
  }
}

// --- SP structure ------------------------------------------------------------

TEST(Translator, OneSpPerCodeBlock) {
  auto c = compileOk(workloads::fill2dSource(8, 8));
  // main + i loop + j loop = 3 SPs (f was inlined away).
  EXPECT_EQ(c->program.sps.size(), 3u);
  EXPECT_NE(findSp(c->program, "main"), nullptr);
  EXPECT_NE(findSp(c->program, "main/i#0"), nullptr);
  EXPECT_NE(findSp(c->program, "main/j#1"), nullptr);
}

TEST(Translator, MainEndsWithResultAndEnd) {
  auto c = compileOk(workloads::fill2dSource(4, 4));
  const SpCode* main = findSp(c->program, "main");
  ASSERT_NE(main, nullptr);
  EXPECT_EQ(countOps(*main, Op::RESULT), 1);
  EXPECT_EQ(main->code.back().op, Op::END);
  EXPECT_EQ(c->program.numResults, 1);
}

TEST(Translator, ReplicatedLoopHasRangeFilter) {
  auto c = compileOk(workloads::fill2dSource(8, 8));
  const SpCode* iLoop = findSp(c->program, "main/i#0");
  ASSERT_NE(iLoop, nullptr);
  EXPECT_TRUE(iLoop->replicated);
  EXPECT_EQ(countOps(*iLoop, Op::RFLO), 1);
  EXPECT_EQ(countOps(*iLoop, Op::RFHI), 1);
  EXPECT_GE(countOps(*iLoop, Op::MAX2), 1);  // the Figure-5 clamps
  EXPECT_GE(countOps(*iLoop, Op::MIN2), 1);
  // The local inner loop carries no filter.
  const SpCode* jLoop = findSp(c->program, "main/j#1");
  EXPECT_FALSE(jLoop->replicated);
  EXPECT_EQ(countOps(*jLoop, Op::RFLO), 0);
}

TEST(Translator, UndistributedHasNoFiltersOrBroadcasts) {
  auto c = compileOk(workloads::fill2dSource(8, 8), {.distribute = false});
  for (const SpCode& sp : c->program.sps) {
    EXPECT_EQ(countOps(sp, Op::RFLO), 0) << sp.name;
    EXPECT_EQ(countOps(sp, Op::SENDD), 0) << sp.name;
    EXPECT_EQ(countOps(sp, Op::ALLOCD), 0) << sp.name;
  }
}

TEST(Translator, DistributedUsesAllocD) {
  auto c = compileOk(workloads::fill2dSource(8, 8));
  const SpCode* main = findSp(c->program, "main");
  EXPECT_EQ(countOps(*main, Op::ALLOCD), 1);
  EXPECT_EQ(countOps(*main, Op::ALLOC), 0);
}

TEST(Translator, ParentOfReplicatedLoopBroadcasts) {
  auto c = compileOk(workloads::fill2dSource(8, 8));
  const SpCode* main = findSp(c->program, "main");
  // Spawning the replicated i loop uses SENDD for every argument token.
  EXPECT_GT(countOps(*main, Op::SENDD), 0);
  // The i loop spawns the j loop locally.
  const SpCode* iLoop = findSp(c->program, "main/i#0");
  EXPECT_GT(countOps(*iLoop, Op::SENDA), 0);
  EXPECT_EQ(countOps(*iLoop, Op::SENDD), 0);
}

TEST(Translator, JoinsAwaitSpawnCount) {
  auto c = compileOk(workloads::fill2dSource(8, 8));
  for (const SpCode& sp : c->program.sps) {
    EXPECT_EQ(countOps(sp, Op::AWAITN), 1) << sp.name;
  }
  // Loop SPs send a completion token to their parent.
  const SpCode* jLoop = findSp(c->program, "main/j#1");
  EXPECT_EQ(countOps(*jLoop, Op::ADDC), 1);
}

TEST(Translator, DescendingLoopStepsDown) {
  auto c = compileOk(R"(
def main() -> array {
  let a = array(8);
  for i = 7 downto 0 { a[i] = real(i); }
  return a;
}
)");
  const SpCode* loop = findSp(c->program, "main/i#0");
  ASSERT_NE(loop, nullptr);
  EXPECT_EQ(countOps(*loop, Op::CMPGE), 1);  // descending test
  EXPECT_GE(countOps(*loop, Op::SUB), 1);    // index decrement
}

TEST(Translator, FunctionCallPassesContinuation) {
  auto c = compileOk(R"(
def g(x: real) -> real { return x + 1.0; }
def main() -> real { return g(41.0); }
)");
  const SpCode* main = findSp(c->program, "main");
  const SpCode* g = findSp(c->program, "g");
  ASSERT_NE(main, nullptr);
  ASSERT_NE(g, nullptr);
  EXPECT_GE(countOps(*main, Op::MKCONT), 1);
  EXPECT_GE(countOps(*main, Op::NEWCTX), 1);
  EXPECT_EQ(countOps(*g, Op::SENDC), 1);  // result back to the caller
  EXPECT_EQ(countOps(*g, Op::ADDC), 0);   // functions send no done token
}

TEST(Translator, CallResultSlotClearedBeforeSpawn) {
  auto c = compileOk(R"(
def g(x: int) -> int { return x * 2; }
def main() -> int {
  let s = for i = 0 to 3 carry (acc = 0) {
    next acc = acc + g(i);
  } yield acc;
  return s;
}
)");
  const SpCode* loop = findSp(c->program, "main/i#0");
  ASSERT_NE(loop, nullptr);
  EXPECT_GE(countOps(*loop, Op::CLEAR), 1);
}

TEST(Translator, WhileLoopReevaluatesCondition) {
  auto c = compileOk(R"(
def main() -> int {
  let r = loop carry (k = 0) while k < 5 { next k = k + 1; } yield k;
  return r;
}
)");
  const SpCode* wl = findSp(c->program, "main/while#0");
  ASSERT_NE(wl, nullptr);
  EXPECT_EQ(wl->kind, SpKind::WhileLoop);
  EXPECT_GE(countOps(*wl, Op::CMPLT), 1);
  EXPECT_GE(countOps(*wl, Op::BRF), 1);
  EXPECT_GE(countOps(*wl, Op::JMP), 1);
}

TEST(Translator, DisassemblyIsReadable) {
  auto c = compileOk(workloads::fill2dSource(4, 4));
  std::string d = c->program.disasm();
  EXPECT_NE(d.find("main"), std::string::npos);
  EXPECT_NE(d.find("[replicated/LD]"), std::string::npos);
  EXPECT_NE(d.find("ALLOCD"), std::string::npos);
  EXPECT_NE(d.find("AWAITN"), std::string::npos);
}

TEST(Translator, TupleResults) {
  auto c = compileOk(R"(
def main() {
  let a = array(4);
  for i = 0 to 3 { a[i] = real(i); }
  return a, 7, 2.5;
}
)");
  EXPECT_EQ(c->program.numResults, 3);
  const SpCode* main = findSp(c->program, "main");
  EXPECT_EQ(countOps(*main, Op::RESULT), 3);
}

TEST(Translator, BranchTargetsInRange) {
  auto c = compileOk(workloads::stencilSource(6, 1));
  for (const SpCode& sp : c->program.sps) {
    for (const Instr& in : sp.code) {
      if (in.op == Op::JMP || in.op == Op::BRF) {
        EXPECT_LE(in.aux, sp.code.size()) << sp.name;
      }
    }
  }
}

}  // namespace
}  // namespace pods
