// Unit tests for the support library: simulated time, statistics, tables,
// the deterministic RNG, and diagnostics.
#include <gtest/gtest.h>

#include "support/diag.hpp"
#include "support/rng.hpp"
#include "support/simtime.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace pods {
namespace {

TEST(SimTime, UsecConversionIsExactForPaperConstants) {
  EXPECT_EQ(usec(0.300).ns, 300);
  EXPECT_EQ(usec(1.312).ns, 1312);
  EXPECT_EQ(usec(19.5).ns, 19500);
  EXPECT_EQ(usec(96.418).ns, 96418);
  EXPECT_EQ(usec(2.7).ns, 2700);
  EXPECT_EQ(usec(0.4).ns, 400);
}

TEST(SimTime, Arithmetic) {
  SimTime a = usec(1.5), b = usec(2.5);
  EXPECT_EQ((a + b).ns, 4000);
  EXPECT_EQ((b - a).ns, 1000);
  EXPECT_EQ((a * 3).ns, 4500);
  EXPECT_LT(a, b);
  a += b;
  EXPECT_EQ(a.ns, 4000);
}

TEST(SimTime, UnitViews) {
  SimTime t = usec(1500.0);
  EXPECT_DOUBLE_EQ(t.us(), 1500.0);
  EXPECT_DOUBLE_EQ(t.ms(), 1.5);
  EXPECT_DOUBLE_EQ(t.sec(), 0.0015);
}

TEST(BusyMeter, Utilization) {
  BusyMeter m;
  m.addBusy(usec(30));
  m.addBusy(usec(20));
  EXPECT_DOUBLE_EQ(m.utilization(usec(100)), 0.5);
  EXPECT_DOUBLE_EQ(m.utilization(SimTime{0}), 0.0);
}

TEST(Counters, AddGetMerge) {
  Counters a, b;
  a.add("x");
  a.add("x", 4);
  b.add("x", 2);
  b.add("y", 7);
  EXPECT_EQ(a.get("x"), 5);
  EXPECT_EQ(a.get("missing"), 0);
  a.merge(b);
  EXPECT_EQ(a.get("x"), 7);
  EXPECT_EQ(a.get("y"), 7);
}

TEST(Counters, MergePrefixedNamespaces) {
  Counters total, worker;
  worker.add("tokensIn", 3);
  worker.add("framesCreated", 2);
  total.add("native.tokensIn", 1);
  total.mergePrefixed(worker, "native.");
  EXPECT_EQ(total.get("native.tokensIn"), 4);
  EXPECT_EQ(total.get("native.framesCreated"), 2);
  EXPECT_EQ(total.get("tokensIn"), 0);  // unprefixed name untouched
}

TEST(PeakGauge, TracksCurrentAndHighWaterMark) {
  PeakGauge g;
  EXPECT_EQ(g.current(), 0);
  EXPECT_EQ(g.peak(), 0);
  g.inc();
  g.inc(2);
  EXPECT_EQ(g.current(), 3);
  EXPECT_EQ(g.peak(), 3);
  g.dec(2);
  EXPECT_EQ(g.current(), 1);
  EXPECT_EQ(g.peak(), 3);  // peak is sticky
  g.inc();
  EXPECT_EQ(g.peak(), 3);  // returning below the peak doesn't move it
  g.inc(5);
  EXPECT_EQ(g.current(), 7);
  EXPECT_EQ(g.peak(), 7);
}

TEST(Summary, MinMaxMean) {
  Summary s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  s.add(2.0);
  s.add(4.0);
  s.add(-3.0);
  EXPECT_EQ(s.count(), 3);
  EXPECT_DOUBLE_EQ(s.mean(), 1.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.row().cell("alpha").cell(std::int64_t{5});
  t.row().cell("b").cell(3.14159, 2);
  std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("3.14"), std::string::npos);
  // All lines equal width for the header row and rule.
  EXPECT_NE(s.find("alpha"), std::string::npos);
}

TEST(TextTable, FmtF) {
  EXPECT_EQ(fmtF(1.0, 2), "1.00");
  EXPECT_EQ(fmtF(-0.125, 3), "-0.125");
}

TEST(SplitMix64, DeterministicAndSeedSensitive) {
  SplitMix64 a(42), b(42), c(43);
  EXPECT_EQ(a.next(), b.next());
  SplitMix64 a2(42);
  EXPECT_NE(a2.next(), c.next());
}

TEST(SplitMix64, UnitRangeAndBelow) {
  SplitMix64 r(7);
  for (int i = 0; i < 1000; ++i) {
    double u = r.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_LT(r.below(10), 10u);
    double x = r.range(-2.0, 3.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(DiagSink, CollectsAndCounts) {
  DiagSink d;
  EXPECT_FALSE(d.hasErrors());
  d.warning({1, 2}, "careful");
  EXPECT_FALSE(d.hasErrors());
  d.error({3, 4}, "broken");
  d.note({}, "context");
  EXPECT_TRUE(d.hasErrors());
  EXPECT_EQ(d.errorCount(), 1);
  EXPECT_EQ(d.all().size(), 3u);
  std::string s = d.str();
  EXPECT_NE(s.find("error at 3:4: broken"), std::string::npos);
  EXPECT_NE(s.find("warning at 1:2: careful"), std::string::npos);
}

}  // namespace
}  // namespace pods
