// End-to-end language-feature tests: small IdLite programs executed on the
// sequential evaluator and the PODS machine, checking exact values.
#include <gtest/gtest.h>

#include "core/pods.hpp"

namespace pods {
namespace {

/// Compiles and runs on both the sequential evaluator and the PODS machine
/// (2 PEs), asserts agreement, and returns the first result.
Value runBoth(const std::string& src, int pes = 2) {
  CompileResult cr = compile(src);
  EXPECT_TRUE(cr.ok) << cr.diagnostics;
  if (!cr.ok) return {};
  BaselineRun seq = runSequentialBaseline(*cr.compiled);
  EXPECT_TRUE(seq.stats.ok) << seq.stats.error;
  sim::MachineConfig mc;
  mc.numPEs = pes;
  PodsRun pods = runPods(*cr.compiled, mc);
  EXPECT_TRUE(pods.stats.ok) << pods.stats.error;
  std::string why;
  EXPECT_TRUE(sameOutputs(pods.out, seq.out, &why)) << why;
  return seq.out.results.empty() ? Value{} : seq.out.results[0];
}

TEST(Lang, ArithmeticAndPrecedence) {
  Value v = runBoth("def main() -> int { return 2 + 3 * 4 - 10 / 3; }");
  EXPECT_EQ(v.asInt(), 2 + 12 - 3);
}

TEST(Lang, RealMath) {
  Value v = runBoth(
      "def main() -> real { return sqrt(16.0) + pow(2.0, 3.0) + abs(-1.5); }");
  EXPECT_DOUBLE_EQ(v.asReal(), 4.0 + 8.0 + 1.5);
}

TEST(Lang, MinMaxFloorConv) {
  Value v = runBoth(
      "def main() -> real { return real(min(3, 7)) + floor(2.9) + real(int(5.7)); }");
  EXPECT_DOUBLE_EQ(v.asReal(), 3.0 + 2.0 + 5.0);
}

TEST(Lang, IfExpression) {
  Value v = runBoth(R"(
def main() -> int {
  let a = 5;
  return (if a > 3 then 10 else 20) + (if a < 3 then 1 else 2);
}
)");
  EXPECT_EQ(v.asInt(), 12);
}

TEST(Lang, IfStatementChains) {
  Value v = runBoth(R"(
def classify(x: int) -> int {
  let r = if x < 0 then -1 else if x == 0 then 0 else 1;
  return r;
}
def main() -> int {
  return classify(-5) * 100 + classify(0) * 10 + classify(9);
}
)");
  EXPECT_EQ(v.asInt(), -100 + 0 + 1);
}

TEST(Lang, ForLoopAccumulators) {
  Value v = runBoth(R"(
def main() -> int {
  let r = for i = 1 to 10 carry (s = 0, p = 1) {
    next s = s + i;
    next p = p * 2;
  } yield s * 1000 + p;
  return r;
}
)");
  EXPECT_EQ(v.asInt(), 55 * 1000 + 1024);
}

TEST(Lang, DescendingLoop) {
  Value v = runBoth(R"(
def main() -> int {
  let r = for i = 5 downto 1 carry (s = 0) { next s = s * 10 + i; } yield s;
  return r;
}
)");
  EXPECT_EQ(v.asInt(), 54321);
}

TEST(Lang, EmptyLoopRange) {
  Value v = runBoth(R"(
def main() -> int {
  let r = for i = 5 to 4 carry (s = 99) { next s = 0; } yield s;
  let q = for i = 1 downto 2 carry (t = 7) { next t = 0; } yield t;
  return r * 100 + q;
}
)");
  EXPECT_EQ(v.asInt(), 9907);
}

TEST(Lang, WhileLoop) {
  Value v = runBoth(R"(
def main() -> int {
  let r = loop carry (k = 1, steps = 0) while k < 100 {
    next k = k * 3;
    next steps = steps + 1;
  } yield k * 100 + steps;
  return r;
}
)");
  EXPECT_EQ(v.asInt(), 243 * 100 + 5);
}

TEST(Lang, ConditionalNextKeepsValue) {
  Value v = runBoth(R"(
def main() -> int {
  let r = for i = 0 to 9 carry (s = 0) {
    if i % 3 == 0 {
      next s = s + i;
    }
  } yield s;
  return r;
}
)");
  EXPECT_EQ(v.asInt(), 0 + 3 + 6 + 9);
}

TEST(Lang, NestedLoopsWithYield) {
  Value v = runBoth(R"(
def main() -> int {
  let total = for i = 1 to 4 carry (acc = 0) {
    let row = for j = 1 to i carry (s = 0) { next s = s + j; } yield s;
    next acc = acc + row;
  } yield acc;
  return total;
}
)");
  EXPECT_EQ(v.asInt(), 1 + 3 + 6 + 10);
}

TEST(Lang, FunctionsAndRecursion) {
  Value v = runBoth(R"(
def fact(n: int) -> int {
  let r = if n <= 1 then 1 else n * fact(n - 1);
  return r;
}
def main() -> int { return fact(10); }
)");
  EXPECT_EQ(v.asInt(), 3628800);
}

TEST(Lang, MutualRecursion) {
  Value v = runBoth(R"(
def isEven(n: int) -> int {
  let r = if n == 0 then 1 else isOdd(n - 1);
  return r;
}
def isOdd(n: int) -> int {
  let r = if n == 0 then 0 else isEven(n - 1);
  return r;
}
def main() -> int { return isEven(10) * 10 + isOdd(7); }
)");
  EXPECT_EQ(v.asInt(), 11);
}

TEST(Lang, FunctionReturningArray) {
  Value v = runBoth(R"(
def iota(n: int) -> array {
  let a = array(n);
  for i = 0 to n - 1 { a[i] = real(i); }
  return a;
}
def main() -> real {
  let a = iota(10);
  return a[9] - a[1];
}
)");
  EXPECT_DOUBLE_EQ(v.asReal(), 8.0);
}

TEST(Lang, ArraysWrittenByCallee) {
  Value v = runBoth(R"(
def fill(a: array, n: int, base: real) {
  for i = 0 to n - 1 { a[i] = base + real(i); }
}
def main() -> real {
  let a = array(8);
  fill(a, 8, 100.0);
  return a[7];
}
)");
  EXPECT_DOUBLE_EQ(v.asReal(), 107.0);
}

TEST(Lang, ArraySelectedByIfExpr) {
  Value v = runBoth(R"(
def main() -> real {
  let a = array(2);
  let b = array(2);
  a[0] = 1.0;
  b[0] = 2.0;
  let pick = if 1 < 2 then a else b;
  return pick[0];
}
)");
  EXPECT_DOUBLE_EQ(v.asReal(), 1.0);
}

TEST(Lang, WhileCarryingArrays) {
  Value v = runBoth(R"(
def main() -> real {
  let a0 = array(4);
  for i = 0 to 3 { a0[i] = real(i); }
  let afin = loop carry (a = a0, t = 0) while t < 3 {
    let an = array(4);
    for i = 0 to 3 { an[i] = a[i] * 2.0; }
    next a = an;
    next t = t + 1;
  } yield a;
  return afin[3];
}
)");
  EXPECT_DOUBLE_EQ(v.asReal(), 24.0);
}

TEST(Lang, TupleReturnFromMain) {
  CompileResult cr = compile(R"(
def main() {
  let a = array(3);
  for i = 0 to 2 { a[i] = real(i * i); }
  return 42, a, 1.5;
}
)");
  ASSERT_TRUE(cr.ok) << cr.diagnostics;
  sim::MachineConfig mc;
  mc.numPEs = 3;
  PodsRun run = runPods(*cr.compiled, mc);
  ASSERT_TRUE(run.stats.ok) << run.stats.error;
  ASSERT_EQ(run.out.results.size(), 3u);
  EXPECT_EQ(run.out.results[0].asInt(), 42);
  ASSERT_TRUE(run.out.arrays[1].has_value());
  EXPECT_DOUBLE_EQ((*run.out.arrays[1]).elems[2].asReal(), 4.0);
  EXPECT_DOUBLE_EQ(run.out.results[2].asReal(), 1.5);
}

TEST(Lang, IntegerDivisionTruncates) {
  Value v = runBoth("def main() -> int { return 7 / 2 * 100 + 7 % 2; }");
  EXPECT_EQ(v.asInt(), 301);
}

TEST(Lang, LogicalOperators) {
  Value v = runBoth(R"(
def main() -> int {
  let a = 1 && 0;
  let b = 1 || 0;
  let c = !0;
  return a * 100 + b * 10 + c;
}
)");
  EXPECT_EQ(v.asInt(), 11);
}

TEST(Lang, InlineFunctionsBehaveLikeCalls) {
  Value v = runBoth(R"(
inline def lerp(a: real, b: real, t: real) -> real {
  return a + (b - a) * t;
}
def main() -> real { return lerp(0.0, 10.0, 0.25) + lerp(1.0, 2.0, 0.5); }
)");
  EXPECT_DOUBLE_EQ(v.asReal(), 2.5 + 1.5);
}

TEST(Lang, TriangularSubscripts) {
  Value v = runBoth(R"(
def main() -> real {
  let n = 6;
  let w = matrix(n, n);
  for i = 0 to n - 1 {
    for j = 0 to i {
      w[i,j] = real(i) * 10.0 + real(j);
    }
  }
  return w[5,5] + w[3,0];
}
)");
  EXPECT_DOUBLE_EQ(v.asReal(), 55.0 + 30.0);
}

TEST(Lang, CallInWhileCondition) {
  Value v = runBoth(R"(
def g(x: int) -> int { return x * x; }
def main() -> int {
  let r = loop carry (k = 1) while g(k) < 50 { next k = k + 1; } yield k;
  return r;
}
)");
  EXPECT_EQ(v.asInt(), 8);  // 8*8 = 64 >= 50
}

TEST(Lang, LoopExpressionInsideIfArm) {
  Value v = runBoth(R"(
def main() -> int {
  let c = 1;
  let r = if c then (for i = 1 to 4 carry (s = 0) { next s = s + i; } yield s)
          else 99;
  return r;
}
)");
  EXPECT_EQ(v.asInt(), 10);
}

TEST(Lang, WriteThroughMergedArrayHandle) {
  Value v = runBoth(R"(
def main() -> real {
  let a = array(2);
  let b = array(2);
  let pick = if 2 > 1 then a else b;
  pick[0] = 7.5;
  b[0] = 1.0;
  return pick[0] + a[0];
}
)");
  EXPECT_DOUBLE_EQ(v.asReal(), 15.0);
}

TEST(Lang, DiscardedCallResultStillCompletes) {
  // A non-void call in statement position: the result token may arrive
  // after the caller has ended; the machine drops it without error.
  auto cr = compile(R"(
def g(a: array, x: int) -> int {
  a[x] = real(x);
  return x;
}
def main() -> real {
  let a = array(4);
  g(a, 0);
  g(a, 1);
  return a[0] + a[1];
}
)");
  ASSERT_TRUE(cr.ok) << cr.diagnostics;
  sim::MachineConfig mc;
  mc.numPEs = 2;
  PodsRun run = runPods(*cr.compiled, mc);
  ASSERT_TRUE(run.stats.ok) << run.stats.error;
  EXPECT_DOUBLE_EQ(run.out.results[0].asReal(), 1.0);
}

TEST(Lang, DimensionQueries) {
  Value v = runBoth(R"(
def colsum(m: matrix, j: int) -> real {
  let s = for i = 0 to rows(m) - 1 carry (acc = 0.0) {
    next acc = acc + m[i, j];
  } yield acc;
  return s;
}
def main() -> real {
  let m = matrix(6, 4);
  for i = 0 to rows(m) - 1 {
    for j = 0 to cols(m) - 1 {
      m[i,j] = real(i * 10 + j);
    }
  }
  let a = array(7);
  for i = 0 to len(a) - 1 { a[i] = 2.0; }
  return colsum(m, 2) + real(len(a)) + real(cols(m));
}
)", 4);
  // colsum col 2 = 2 + 12 + 22 + 32 + 42 + 52 = 162; + 7 + 4
  EXPECT_DOUBLE_EQ(v.asReal(), 162.0 + 7.0 + 4.0);
}

TEST(Lang, DimensionQueryTypeErrors) {
  EXPECT_FALSE(compile("def main() -> int { let a = array(3); return rows(a); }").ok);
  EXPECT_FALSE(compile("def main() -> int { let m = matrix(2,2); return len(m); }").ok);
  EXPECT_FALSE(compile("def main() -> int { return len(5); }").ok);
}

TEST(Lang, LoopBoundsAreExpressions) {
  Value v = runBoth(R"(
def span(lo: int, hi: int) -> int {
  let r = for i = lo * 2 to hi - 1 carry (s = 0) { next s = s + 1; } yield s;
  return r;
}
def main() -> int { return span(1, 10); }
)");
  EXPECT_EQ(v.asInt(), 8);  // i = 2..9
}

}  // namespace
}  // namespace pods
