// Randomized differential testing: generate random (but well-formed,
// single-assignment-safe) IdLite programs and assert that the PODS machine,
// the static baseline, and the sequential evaluator produce bit-identical
// outputs. This sweeps compiler + partitioner + machine paths no hand-
// written test enumerates: random expression shapes, loop directions,
// subscript offsets, border conditionals, reductions, and array chains.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/pods.hpp"
#include "support/rng.hpp"

namespace pods {
namespace {

class ProgramGen {
 public:
  explicit ProgramGen(std::uint64_t seed) : rng_(seed) {}

  /// A program: fill A0 from formulas, derive A1..Ak each from its
  /// predecessor with random neighbor reads, optionally compress rows into
  /// a vector through a user function, then reduce.
  std::string generate() {
    n_ = 6 + static_cast<int>(rng_.below(10));  // 6..15
    int chain = 1 + static_cast<int>(rng_.below(3));
    bool useHelpers = rng_.below(2) == 0;
    bool rowVector = rng_.below(2) == 0;
    std::string src;
    if (useHelpers) {
      src += "inline def blend(a: real, b: real) -> real {\n"
             "  return a * 0.5 + b * 0.25 + min(a, b) * 0.125;\n}\n";
      src += "def scale(x: real, k: real) -> real {\n"
             "  return x * k + 0.001;\n}\n";
    }
    src += "def main() -> real {\n";
    src += "  let n = " + std::to_string(n_) + ";\n";
    src += "  let A0 = matrix(n, n);\n";
    src += fillLoop("A0");
    for (int k = 1; k <= chain; ++k) {
      std::string prev = "A" + std::to_string(k - 1);
      std::string cur = "A" + std::to_string(k);
      src += "  let " + cur + " = matrix(n, n);\n";
      src += deriveLoop(cur, prev, useHelpers);
    }
    const std::string last = "A" + std::to_string(chain);
    if (rowVector) {
      // Triangular row compression into a 1-D array, then a 1-D reduction.
      src += R"(
  let rowsum = array(n);
  for i = 0 to n - 1 {
    let r = for j = 0 to i carry (acc = 0.0) {
      next acc = acc + )" + last + R"([i,j];
    } yield acc;
    rowsum[i] = r;
  }
  let s = for i = 0 to len(rowsum) - 1 carry (acc = 0.0) {
    next acc = acc + rowsum[i];
  } yield acc;
)";
    } else {
      src += reduction(last);
    }
    src += "  return s;\n}\n";
    return src;
  }

 private:
  /// Random scalar expression over the loop indices i and j.
  std::string expr(int depth) {
    if (depth <= 0 || rng_.below(3) == 0) {
      switch (rng_.below(5)) {
        case 0: return "real(i)";
        case 1: return "real(j)";
        case 2: return "real(i + j)";
        case 3: return std::to_string(1 + rng_.below(9)) + ".5";
        default: return "0.25";
      }
    }
    std::string a = expr(depth - 1);
    std::string b = expr(depth - 1);
    switch (rng_.below(7)) {
      case 0: return "(" + a + " + " + b + ")";
      case 1: return "(" + a + " - " + b + ")";
      case 2: return "(" + a + " * 0.5 + " + b + ")";
      case 3: return "(" + a + " / (" + b + " * " + b + " + 1.0))";
      case 4: return "sqrt(abs(" + a + "))";
      case 5: return "min(" + a + ", " + b + ")";
      default: return "(if i % 2 == 0 then " + a + " else " + b + ")";
    }
  }

  std::string fillLoop(const std::string& name) {
    bool down = rng_.below(2) == 0;
    std::string hdr =
        down ? "  for i = n - 1 downto 0 {\n" : "  for i = 0 to n - 1 {\n";
    return hdr + "    for j = 0 to n - 1 {\n      " + name + "[i,j] = " +
           expr(2) + ";\n    }\n  }\n";
  }

  /// A neighbor read of `prev` with border clamping via if-expressions.
  std::string neighbor(const std::string& prev) {
    switch (rng_.below(5)) {
      case 0:
        return "(if i == 0 then " + prev + "[i,j] else " + prev + "[i-1,j])";
      case 1:
        return "(if i == n - 1 then " + prev + "[i,j] else " + prev +
               "[i+1,j])";
      case 2:
        return "(if j == 0 then " + prev + "[i,j] else " + prev + "[i,j-1])";
      case 3:
        return "(if j == n - 1 then " + prev + "[i,j] else " + prev +
               "[i,j+1])";
      default:
        return prev + "[i,j]";
    }
  }

  std::string deriveLoop(const std::string& cur, const std::string& prev,
                         bool useHelpers) {
    std::string combine;
    if (useHelpers && rng_.below(2) == 0) {
      combine = "blend(" + neighbor(prev) + ", " + neighbor(prev) + ")";
    } else if (useHelpers && rng_.below(2) == 0) {
      combine = "scale(" + neighbor(prev) + ", 0.75)";
    } else {
      combine = "0.5 * " + neighbor(prev) + " + 0.25 * " + neighbor(prev);
    }
    std::string body = "      " + cur + "[i,j] = " + combine + " + " +
                       expr(1) + " * 0.001;\n";
    bool down = rng_.below(2) == 0;
    std::string hdr =
        down ? "  for i = n - 1 downto 0 {\n" : "  for i = 0 to n - 1 {\n";
    // Occasionally wrap the write in a statement-if with an else arm.
    if (rng_.below(3) == 0) {
      body = "      if (i + j) % 2 == 0 {\n  " + body + "      } else {\n  " +
             "      " + cur + "[i,j] = " + neighbor(prev) + ";\n      }\n";
    }
    return hdr + "    for j = 0 to n - 1 {\n" + body + "    }\n  }\n";
  }

  std::string reduction(const std::string& arr) {
    return "  let s = for i = 0 to n - 1 carry (acc = 0.0) {\n"
           "    let row = for j = 0 to n - 1 carry (r = 0.0) {\n"
           "      next r = r + " + arr + "[i,j];\n"
           "    } yield r;\n"
           "    next acc = acc + row;\n"
           "  } yield acc;\n";
  }

  SplitMix64 rng_;
  int n_ = 8;
};

class RandomPrograms : public ::testing::TestWithParam<int> {};

TEST_P(RandomPrograms, AllEnginesAgree) {
  ProgramGen gen(0xC0FFEE00ULL + static_cast<std::uint64_t>(GetParam()));
  std::string src = gen.generate();
  SCOPED_TRACE(src);
  CompileResult cr = compile(src);
  ASSERT_TRUE(cr.ok) << cr.diagnostics;
  BaselineRun seq = runSequentialBaseline(*cr.compiled);
  ASSERT_TRUE(seq.stats.ok) << seq.stats.error;
  ASSERT_TRUE(seq.out.results[0].isReal());
  ASSERT_TRUE(std::isfinite(seq.out.results[0].asReal()));

  BaselineRun st = runStaticBaseline(*cr.compiled, 5);
  ASSERT_TRUE(st.stats.ok) << st.stats.error;
  std::string why;
  EXPECT_TRUE(sameOutputs(st.out, seq.out, &why)) << "static: " << why;

  for (int pes : {1, 3, 8}) {
    sim::MachineConfig mc;
    mc.numPEs = pes;
    PodsRun run = runPods(*cr.compiled, mc);
    ASSERT_TRUE(run.stats.ok) << "pes=" << pes << ": " << run.stats.error;
    EXPECT_TRUE(sameOutputs(run.out, seq.out, &why))
        << "pods pes=" << pes << ": " << why;
    EXPECT_EQ(run.stats.counters.get("tokens.dropped"), 0);
  }

  native::NativeConfig nc;
  nc.numWorkers = 4;
  NativeRun nat = runNative(*cr.compiled, nc);
  ASSERT_TRUE(nat.stats.ok) << "native: " << nat.stats.error;
  EXPECT_TRUE(sameOutputs(nat.out, seq.out, &why)) << "native: " << why;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms, ::testing::Range(0, 40));

}  // namespace
}  // namespace pods
