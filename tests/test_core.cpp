// Public-facade tests: compile error reporting, output comparison, profile
// plumbing, and the no-result / multi-result program shapes.
#include <gtest/gtest.h>

#include "core/pods.hpp"
#include "workloads/kernels.hpp"

namespace pods {
namespace {

TEST(Core, LexErrorSurfaces) {
  CompileResult cr = compile("def main() { let x = @; }");
  EXPECT_FALSE(cr.ok);
  EXPECT_NE(cr.diagnostics.find("unexpected character"), std::string::npos);
  EXPECT_EQ(cr.compiled, nullptr);
}

TEST(Core, ParseErrorSurfaces) {
  CompileResult cr = compile("def main( { }");
  EXPECT_FALSE(cr.ok);
  EXPECT_NE(cr.diagnostics.find("expected"), std::string::npos);
}

TEST(Core, SemaErrorSurfaces) {
  CompileResult cr = compile("def main() { let x = y; }");
  EXPECT_FALSE(cr.ok);
  EXPECT_NE(cr.diagnostics.find("unknown variable"), std::string::npos);
}

TEST(Core, MissingMainSurfaces) {
  CompileResult cr = compile("def notmain() { }");
  EXPECT_FALSE(cr.ok);
  EXPECT_NE(cr.diagnostics.find("main"), std::string::npos);
}

TEST(Core, InlineErrorSurfaces) {
  CompileResult cr = compile(R"(
inline def r(x: int) -> int { return r(x); }
def main() -> int { return r(1); }
)");
  EXPECT_FALSE(cr.ok);
  EXPECT_NE(cr.diagnostics.find("too deep"), std::string::npos);
}

TEST(Core, NoResultProgramRuns) {
  CompileResult cr = compile(R"(
def main() {
  let a = array(4);
  for i = 0 to 3 { a[i] = real(i); }
}
)");
  ASSERT_TRUE(cr.ok) << cr.diagnostics;
  EXPECT_EQ(cr.compiled->program.numResults, 0);
  sim::MachineConfig mc;
  mc.numPEs = 2;
  PodsRun run = runPods(*cr.compiled, mc);
  EXPECT_TRUE(run.stats.ok) << run.stats.error;
  EXPECT_TRUE(run.out.results.empty());
}

TEST(Core, SameOutputsDetectsDifferences) {
  ProgramOutputs a, b;
  a.results.push_back(Value::intv(1));
  b.results.push_back(Value::intv(2));
  a.arrays.resize(1);
  b.arrays.resize(1);
  std::string why;
  EXPECT_FALSE(sameOutputs(a, b, &why));
  EXPECT_NE(why.find("result 0"), std::string::npos);

  b.results[0] = Value::intv(1);
  EXPECT_TRUE(sameOutputs(a, b, &why));

  // Count mismatch.
  b.results.push_back(Value::intv(3));
  b.arrays.resize(2);
  EXPECT_FALSE(sameOutputs(a, b, &why));

  // Array shape / element mismatches.
  ProgramOutputs c, d;
  c.results.push_back(Value::arrayv(0));
  d.results.push_back(Value::arrayv(0));
  c.arrays.resize(1);
  d.arrays.resize(1);
  ProgramOutputs::OutArray ca, da;
  ca.shape = {1, 3, 1};
  da.shape = {1, 4, 1};
  ca.elems.assign(3, Value::realv(1.0));
  da.elems.assign(4, Value::realv(1.0));
  c.arrays[0] = ca;
  d.arrays[0] = da;
  EXPECT_FALSE(sameOutputs(c, d, &why));
  EXPECT_NE(why.find("shape"), std::string::npos);

  da.shape = {1, 3, 1};
  da.elems.assign(3, Value::realv(1.0));
  da.elems[2] = Value::realv(1.5);
  d.arrays[0] = da;
  EXPECT_FALSE(sameOutputs(c, d, &why));
  EXPECT_NE(why.find("element 2"), std::string::npos);

  // Empty (never-written) elements compare equal only to empty.
  da.elems[2] = Value{};
  d.arrays[0] = da;
  EXPECT_FALSE(sameOutputs(c, d, &why));
}

TEST(Core, SpProfilesAccountForExecution) {
  CompileResult cr = compile(workloads::fill2dSource(8, 8));
  ASSERT_TRUE(cr.ok);
  sim::MachineConfig mc;
  mc.numPEs = 4;
  PodsRun run = runPods(*cr.compiled, mc);
  ASSERT_TRUE(run.stats.ok);
  ASSERT_EQ(run.stats.spProfiles.size(), cr.compiled->program.sps.size());
  std::int64_t instances = 0, instrs = 0;
  SimTime eu{};
  for (const sim::SpProfile& p : run.stats.spProfiles) {
    instances += p.instances;
    instrs += p.instructions;
    eu += p.euTime;
    EXPECT_FALSE(p.name.empty());
  }
  EXPECT_EQ(instances, run.stats.counters.get("sp.instantiated"));
  EXPECT_GT(instrs, 0);
  // Profile EU time accounts for all busy time except context switches.
  SimTime totalBusy{};
  for (const auto& peBusy : run.stats.busy) {
    totalBusy += peBusy[static_cast<int>(sim::Unit::EU)];
  }
  SimTime switches{run.stats.counters.get("eu.contextSwitches") *
                   sim::Timing{}.contextSwitch.ns};
  EXPECT_EQ(eu.ns + switches.ns, totalBusy.ns);
}

TEST(Core, WarningsDoNotBlockCompilation) {
  // (No warnings are currently produced by the frontend; this asserts the
  //  contract that diagnostics may be non-empty on success.)
  CompileResult cr = compile("def main() -> int { return 1; }");
  ASSERT_TRUE(cr.ok);
}

TEST(Core, CompiledIsMovable) {
  CompileResult cr = compile(workloads::fill2dSource(6, 6));
  ASSERT_TRUE(cr.ok);
  // The plan keys into heap-allocated loop blocks: moving the Compiled must
  // not invalidate them (runs still work after a move).
  Compiled moved = std::move(*cr.compiled);
  sim::MachineConfig mc;
  mc.numPEs = 3;
  PodsRun run = runPods(moved, mc);
  EXPECT_TRUE(run.stats.ok) << run.stats.error;
}

}  // namespace
}  // namespace pods
