// Unit tests for the simulator's authoritative array store.
#include <gtest/gtest.h>

#include "sim/array_store.hpp"

namespace pods::sim {
namespace {

TEST(ArrayStore, StripedIdsAreGloballyUnique) {
  ArrayStore s(4, 32);
  // Ids minted on pe p are p + k*numPEs — the property that lets the
  // distributing allocate broadcast the same id everywhere.
  EXPECT_EQ(s.create(0, {1, 8, 1}, true), 0u);
  EXPECT_EQ(s.create(0, {1, 8, 1}, true), 4u);
  EXPECT_EQ(s.create(1, {1, 8, 1}, true), 1u);
  EXPECT_EQ(s.create(3, {1, 8, 1}, true), 3u);
  EXPECT_EQ(s.create(3, {1, 8, 1}, true), 7u);
  EXPECT_EQ(s.create(1, {1, 8, 1}, true), 5u);
}

TEST(ArrayStore, FindAndShape) {
  ArrayStore s(2, 16);
  ArrayId id = s.create(1, {2, 3, 5}, true);
  const ArrayInfo* info = s.find(id);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->shape.dim0, 3);
  EXPECT_EQ(info->shape.dim1, 5);
  EXPECT_EQ(info->elems.size(), 15u);
  EXPECT_TRUE(info->distributed);
  EXPECT_EQ(info->homePe, 1);
  EXPECT_EQ(s.find(id + 99), nullptr);
}

TEST(ArrayStore, SingleAssignmentEnforced) {
  ArrayStore s(1, 32);
  ArrayId id = s.create(0, {1, 4, 1}, false);
  EXPECT_TRUE(s.write(id, 2, Value::realv(1.5)));
  EXPECT_FALSE(s.write(id, 2, Value::realv(2.5)));  // violation
  EXPECT_DOUBLE_EQ(s.find(id)->elems[2].asReal(), 1.5);  // first write wins
  EXPECT_TRUE(s.write(id, 3, Value::realv(9.0)));
}

TEST(ArrayStore, UndistributedOwnership) {
  ArrayStore s(8, 4);
  ArrayId id = s.create(5, {1, 100, 1}, /*distributed=*/false);
  const ArrayInfo* info = s.find(id);
  for (std::int64_t off : {0, 50, 99}) {
    EXPECT_EQ(info->owner(off), 5);
  }
}

TEST(ArrayStore, DistributedOwnershipFollowsLayout) {
  ArrayStore s(4, 8);
  ArrayId id = s.create(0, {1, 64, 1}, /*distributed=*/true);
  const ArrayInfo* info = s.find(id);
  // 64 elems / 8 per page = 8 pages over 4 PEs = 2 pages (16 elems) each.
  EXPECT_EQ(info->owner(0), 0);
  EXPECT_EQ(info->owner(15), 0);
  EXPECT_EQ(info->owner(16), 1);
  EXPECT_EQ(info->owner(63), 3);
}

TEST(ArrayStore, ZeroElementArray) {
  ArrayStore s(2, 32);
  ArrayId id = s.create(0, {1, 0, 1}, true);
  const ArrayInfo* info = s.find(id);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->elems.size(), 0u);
}

}  // namespace
}  // namespace pods::sim
