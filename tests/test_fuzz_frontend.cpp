// Frontend robustness: random byte soup and mutated valid programs must
// produce diagnostics (or compile fine), never crashes or hangs. The
// compiler is the part of the system exposed to untrusted input, so it gets
// the fuzz treatment; seeds are fixed for reproducibility.
#include <gtest/gtest.h>

#include <string>

#include "core/pods.hpp"
#include "support/rng.hpp"
#include "workloads/kernels.hpp"

namespace pods {
namespace {

TEST(FuzzFrontend, RandomPrintableGarbage) {
  SplitMix64 rng(0xFADEDBEEFULL);
  const std::string alphabet =
      "abcdefghijklmnopqrstuvwxyz0123456789 \n\t(){}[];:=+-*/%<>!&|.,\"'#$@";
  for (int trial = 0; trial < 200; ++trial) {
    std::string src;
    std::size_t len = rng.below(300);
    for (std::size_t i = 0; i < len; ++i) {
      src += alphabet[rng.below(alphabet.size())];
    }
    CompileResult cr = compile(src);
    if (cr.ok) continue;  // extraordinarily unlikely but legal
    EXPECT_FALSE(cr.diagnostics.empty()) << src;
  }
}

TEST(FuzzFrontend, RandomTokenSoup) {
  // Keyword-heavy soup hits the parser's recovery paths harder.
  static const char* const words[] = {
      "def",  "inline", "let",    "next",  "return", "for",   "to",
      "downto", "carry", "yield",  "loop",  "while",  "if",    "then",
      "else", "int",    "real",   "array", "matrix", "main",  "x",
      "y",    "f",      "42",     "3.5",   "(",      ")",     "{",
      "}",    "[",      "]",      ";",     ",",      ":",     "->",
      "=",    "+",      "-",      "*",     "/",      "%",     "<",
      "<=",   "==",     "!=",     "&&",    "||",     "!",     "sqrt",
  };
  SplitMix64 rng(0x5EEDF00DULL);
  for (int trial = 0; trial < 300; ++trial) {
    std::string src;
    std::size_t len = rng.below(120);
    for (std::size_t i = 0; i < len; ++i) {
      src += words[rng.below(std::size(words))];
      src += ' ';
    }
    CompileResult cr = compile(src);
    (void)cr;  // must terminate without crashing; ok either way
  }
}

TEST(FuzzFrontend, MutatedValidPrograms) {
  // Take a valid program and flip/delete/duplicate random characters: the
  // compiler must reject or accept each mutant gracefully.
  const std::string base = workloads::stencilSource(8, 1);
  SplitMix64 rng(0xBADC0DEULL);
  for (int trial = 0; trial < 300; ++trial) {
    std::string src = base;
    int edits = 1 + static_cast<int>(rng.below(4));
    for (int e = 0; e < edits; ++e) {
      if (src.empty()) break;
      std::size_t pos = rng.below(src.size());
      switch (rng.below(3)) {
        case 0:
          src[pos] = static_cast<char>('!' + rng.below(90));
          break;
        case 1:
          src.erase(pos, 1 + rng.below(5));
          break;
        default:
          src.insert(pos, 1, static_cast<char>('!' + rng.below(90)));
          break;
      }
    }
    CompileResult cr = compile(src);
    if (cr.ok) {
      // A surviving mutant must still run deterministically.
      BaselineRun seq = runSequentialBaseline(*cr.compiled);
      (void)seq;  // may legitimately fail at run time (e.g. bounds)
    } else {
      EXPECT_FALSE(cr.diagnostics.empty());
    }
  }
}

TEST(FuzzFrontend, DeepNestingDoesNotOverflow) {
  // Deep but bounded expression nesting (parser recursion).
  std::string expr = "1";
  for (int i = 0; i < 200; ++i) expr = "(" + expr + " + 1)";
  CompileResult cr = compile("def main() -> int { return " + expr + "; }");
  ASSERT_TRUE(cr.ok) << cr.diagnostics;
  BaselineRun seq = runSequentialBaseline(*cr.compiled);
  ASSERT_TRUE(seq.stats.ok);
  EXPECT_EQ(seq.out.results[0].asInt(), 201);
}

TEST(FuzzFrontend, DeepLoopNesting) {
  std::string body = "m[a, b] = 1.0;";
  std::string src = "def main() -> matrix {\n  let m = matrix(2, 2);\n"
                    "  let a = 0; let b = 0;\n";
  std::string close;
  for (int i = 0; i < 24; ++i) {
    src += "for v" + std::to_string(i) + " = 0 to 0 {\n";
    close += "}\n";
  }
  src += body + close + "return m;\n}\n";
  CompileResult cr = compile(src);
  ASSERT_TRUE(cr.ok) << cr.diagnostics;
  sim::MachineConfig mc;
  mc.numPEs = 2;
  PodsRun run = runPods(*cr.compiled, mc);
  EXPECT_TRUE(run.stats.ok) << run.stats.error;
}

TEST(FuzzFrontend, HugeLiteralAndLongIdentifiers) {
  std::string longName(2000, 'x');
  CompileResult cr = compile("def main() -> int { let " + longName + " = " +
                             "123456789123456789; return " + longName +
                             " % 97; }");
  ASSERT_TRUE(cr.ok) << cr.diagnostics;
  BaselineRun seq = runSequentialBaseline(*cr.compiled);
  EXPECT_TRUE(seq.stats.ok);
}

}  // namespace
}  // namespace pods
