// Unit tests for the calendar-queue event engine (sim/event_queue.hpp):
// exact (t, seq) ordering across bucket boundaries, ring wraparound, the
// overflow pour / width-doubling path for far-future events, the intrusive
// index (takeIndexed bounds, pop unlinking), ghost-slot visibility, and
// the occupancy/health stats surfaced as sim.eventq.* counters.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/event_queue.hpp"

namespace pods::sim {
namespace {

using Q = CalendarQueue<int>;

std::uint64_t lcg(std::uint64_t& s) {
  s = s * 6364136223846793005ull + 1442695040888963407ull;
  return s >> 33;
}

TEST(CalendarQueue, OrdersByTimeThenSeq) {
  Q q;
  // Same time, shuffled seqs; different times, including within one bucket
  // and straddling a bucket boundary (width 4096 ns).
  q.push({4095, 7}, 1);
  q.push({4096, 3}, 2);  // next bucket, smaller seq — time wins
  q.push({4095, 5}, 3);
  q.push({0, 9}, 4);
  q.push({0, 2}, 5);
  std::vector<EvKey> keys;
  while (!q.empty()) {
    EvKey k;
    q.pop(&k);
    keys.push_back(k);
  }
  ASSERT_EQ(keys.size(), 5u);
  for (std::size_t i = 1; i < keys.size(); ++i)
    EXPECT_TRUE(keys[i - 1] < keys[i]) << "out of order at " << i;
  EXPECT_EQ(keys.front().seq, 2u);
  EXPECT_EQ(keys.back().seq, 3u);
}

TEST(CalendarQueue, RandomizedMatchesSortedReference) {
  Q q(4096, 64);  // small ring to force wraparound and pours
  std::uint64_t rng = 42;
  std::vector<std::pair<EvKey, int>> ref;
  std::uint64_t seq = 0;
  std::int64_t now = 0;
  int payload = 0;
  // Interleave pushes and pops the way a simulation would: future-only
  // pushes relative to the last popped time.
  for (int round = 0; round < 2000; ++round) {
    const int pushes = static_cast<int>(lcg(rng) % 4);
    for (int i = 0; i < pushes; ++i) {
      // Mix near deltas with occasional far-future ones (timer backoffs).
      const std::int64_t delta =
          (lcg(rng) % 16 == 0) ? static_cast<std::int64_t>(lcg(rng) % 40'000'000)
                               : static_cast<std::int64_t>(lcg(rng) % 30'000);
      const EvKey k{now + delta, ++seq};
      q.push(k, ++payload);
      ref.emplace_back(k, payload);
    }
    if (!q.empty() && lcg(rng) % 3 != 0) {
      EvKey k;
      const int v = q.pop(&k);
      std::sort(ref.begin(), ref.end());
      ASSERT_EQ(k.t, ref.front().first.t);
      ASSERT_EQ(k.seq, ref.front().first.seq);
      ASSERT_EQ(v, ref.front().second);
      ref.erase(ref.begin());
      now = k.t;
    }
  }
  while (!q.empty()) {
    EvKey k;
    const int v = q.pop(&k);
    std::sort(ref.begin(), ref.end());
    ASSERT_EQ(v, ref.front().second);
    ref.erase(ref.begin());
  }
  EXPECT_TRUE(ref.empty());
  EXPECT_GT(q.stats().pours, 0);  // the far-future deltas forced overflow
  EXPECT_GT(q.stats().pushedOverflow, 0);
}

TEST(CalendarQueue, FarFutureEventsWidenBuckets) {
  Q q(4096, 16);
  // One near event, then events pushed ever farther out: the pour path must
  // re-base the ring and double the width rather than iterating bucket by
  // bucket to the horizon.
  q.push({10, 1}, 1);
  q.push({1'000'000'000, 2}, 2);   // 1 s
  q.push({30'000'000'000, 3}, 3);  // 30 s
  EvKey k;
  EXPECT_EQ(q.pop(&k), 1);
  EXPECT_EQ(q.pop(&k), 2);
  EXPECT_EQ(k.t, 1'000'000'000);
  EXPECT_EQ(q.pop(&k), 3);
  EXPECT_TRUE(q.empty());
  EXPECT_GT(q.stats().widthDoublings, 0);
  EXPECT_GT(q.bucketWidthNs(), 4096);
}

TEST(CalendarQueue, PeekKeyTracksHead) {
  Q q;
  EXPECT_EQ(q.peekKey(), nullptr);
  q.push({500, 2}, 1);
  ASSERT_NE(q.peekKey(), nullptr);
  EXPECT_EQ(q.peekKey()->t, 500);
  q.push({100, 3}, 2);  // earlier head
  EXPECT_EQ(q.peekKey()->t, 100);
  q.pop();
  EXPECT_EQ(q.peekKey()->t, 500);
  q.pop();
  EXPECT_EQ(q.peekKey(), nullptr);
}

TEST(CalendarQueue, TakeIndexedRespectsBoundAndSortsByKey) {
  Q q;
  q.push({300, 3}, 30, /*indexed=*/true);
  q.push({100, 1}, 10, /*indexed=*/true);
  q.push({200, 2}, 20, /*indexed=*/false);  // not indexed: never taken
  q.push({400, 4}, 40, /*indexed=*/true);
  EXPECT_FALSE(q.indexedEmpty());
  // Bound excludes {400, 4}: it stays queued and indexed.
  const std::vector<int> taken = q.takeIndexed(EvKey{400, 4});
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken[0], 10);  // (100,1) before (300,3)
  EXPECT_EQ(taken[1], 30);
  EXPECT_FALSE(q.indexedEmpty());
  // Taken entries stay queued as ghosts: their keys still show at the head
  // and they pop — flagged — at their exact (t, seq).
  EXPECT_EQ(q.size(), 4);
  ASSERT_NE(q.peekKey(), nullptr);
  EXPECT_EQ(q.peekKey()->t, 100);
  EvKey k;
  bool ghost = false;
  EXPECT_EQ(q.pop(&k, &ghost), 10);
  EXPECT_TRUE(ghost);
  EXPECT_EQ(k.seq, 1u);
  EXPECT_EQ(q.pop(&k, &ghost), 20);
  EXPECT_FALSE(ghost);
  EXPECT_EQ(q.pop(&k, &ghost), 30);
  EXPECT_TRUE(ghost);
  EXPECT_EQ(q.pop(&k, &ghost), 40);  // pop unlinks the indexed entry
  EXPECT_FALSE(ghost);
  EXPECT_TRUE(q.indexedEmpty());
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.stats().indexTaken, 2);
  EXPECT_EQ(q.stats().ghostPops, 2);
}

TEST(CalendarQueue, GhostsInOverflowSurviveThePourAndPopInOrder) {
  Q q(4096, 16);
  // Far-future indexed events land in overflow; taking them must keep
  // their slots poppable at the right keys through the pour/re-base path.
  q.push({10, 1}, 1);
  q.push({500'000'000, 2}, 2, /*indexed=*/true);
  q.push({500'000'100, 3}, 3, /*indexed=*/true);
  const std::vector<int> taken = q.takeIndexed(EvKey{500'000'050, 0});
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_EQ(taken[0], 2);
  EvKey k;
  bool ghost = false;
  EXPECT_EQ(q.pop(&k, &ghost), 1);
  EXPECT_FALSE(ghost);
  EXPECT_EQ(q.pop(&k, &ghost), 2);  // the ghost, at its reserved key
  EXPECT_TRUE(ghost);
  EXPECT_EQ(k.t, 500'000'000);
  EXPECT_EQ(q.pop(&k, &ghost), 3);
  EXPECT_FALSE(ghost);
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(q.indexedEmpty());
  EXPECT_EQ(q.stats().ghostPops, 1);
}

TEST(CalendarQueue, DepthAndPlacementStats) {
  Q q;
  for (int i = 0; i < 100; ++i)
    q.push({static_cast<std::int64_t>(i) * 1000, static_cast<std::uint64_t>(i + 1)}, i);
  EXPECT_EQ(q.size(), 100);
  EXPECT_EQ(q.stats().peakDepth, 100);
  // 4096 ns buckets: events 0..3 share the cursor's bucket, the rest
  // spread over the ring.
  EXPECT_GT(q.stats().pushedRing, 0);
  while (!q.empty()) q.pop();
  EXPECT_EQ(q.stats().peakDepth, 100);  // peak survives the drain
}

}  // namespace
}  // namespace pods::sim
