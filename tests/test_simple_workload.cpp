// Tests of the SIMPLE benchmark itself: structural expectations the paper
// describes, physics sanity, and reproduction-shape properties (Figures
// 8-10 in miniature, so regressions in the model show up in CI).
#include <gtest/gtest.h>

#include <cmath>

#include "core/pods.hpp"
#include "workloads/simple.hpp"

namespace pods {
namespace {

std::unique_ptr<Compiled> compileOk(const std::string& src) {
  CompileResult cr = compile(src);
  EXPECT_TRUE(cr.ok) << cr.diagnostics;
  return std::move(cr.compiled);
}

TEST(Simple, StructureMatchesPaperDescription) {
  auto c = compileOk(workloads::simpleSource(16, 1));
  // "SIMPLE consists of three major routines: velocity_position,
  //  hydrodynamics, and conduction."
  int fns = 0;
  bool sawVp = false, sawHydro = false, sawCond = false, sawRow = false,
       sawCol = false;
  for (const ir::Function& f : c->graph.fns) {
    ++fns;
    if (f.name == "velocity_position") sawVp = true;
    if (f.name == "hydrodynamics") sawHydro = true;
    if (f.name == "conduction") sawCond = true;
    if (f.name == "conduct_row") sawRow = true;
    if (f.name == "conduct_col") sawCol = true;
  }
  EXPECT_TRUE(sawVp);
  EXPECT_TRUE(sawHydro);
  EXPECT_TRUE(sawCond);
  EXPECT_TRUE(sawRow);  // conduction's "multiple function calls"
  EXPECT_TRUE(sawCol);
  EXPECT_EQ(fns, 6);  // + main; eos is inlined away
  // A real SP population: the paper quotes 15 SPs for conduction alone.
  EXPECT_GE(c->program.sps.size(), 15u);
}

TEST(Simple, ConductionHasAscendingAndDescendingLcdLoops) {
  auto c = compileOk(workloads::simpleSource(8, 1));
  // conduct_row: one descending j loop (back substitution) kept local.
  int descendingLocal = 0;
  for (const ir::Function& f : c->graph.fns) {
    if (f.name != "conduct_row" && f.name != "conduct_col") continue;
    ir::forEachItem(f.body, [&](const ir::Item& it) {
      if (it.kind != ir::ItemKind::Loop) return;
      const ir::Block& b = *it.loop;
      const partition::LoopPlan* lp = c->plan.find(&b);
      if (!b.ascending && (!lp || !lp->replicated)) ++descendingLocal;
    });
  }
  EXPECT_GE(descendingLocal, 1);
}

TEST(Simple, PhysicsStaysFiniteAndSmooths) {
  auto c = compileOk(workloads::conductionOnlySource(12, 3));
  BaselineRun run = runSequentialBaseline(*c);
  ASSERT_TRUE(run.stats.ok) << run.stats.error;
  const auto& T = *run.out.arrays[0];
  double mn = 1e300, mx = -1e300;
  for (const Value& v : T.elems) {
    ASSERT_TRUE(v.isReal());
    ASSERT_TRUE(std::isfinite(v.asReal()));
    mn = std::min(mn, v.asReal());
    mx = std::max(mx, v.asReal());
  }
  // Conduction is dissipative: the field contracts toward its mean.
  // Initial range of T0 is [2 - 0.5.., 2 + 0.5 + 0.11] roughly.
  EXPECT_GT(mn, 1.4);
  EXPECT_LT(mx, 2.7);
  EXPECT_LT(mx - mn, 1.3);
}

TEST(Simple, FullBenchmarkEnergyEvolves) {
  auto c1 = compileOk(workloads::simpleSource(10, 1));
  auto c2 = compileOk(workloads::simpleSource(10, 2));
  BaselineRun r1 = runSequentialBaseline(*c1);
  BaselineRun r2 = runSequentialBaseline(*c2);
  ASSERT_TRUE(r1.stats.ok);
  ASSERT_TRUE(r2.stats.ok);
  // Different step counts give different (finite) fields.
  std::string why;
  EXPECT_FALSE(sameOutputs(r1.out, r2.out, &why));
  for (const Value& v : (*r2.out.arrays[0]).elems) {
    EXPECT_TRUE(std::isfinite(v.asReal()));
  }
}

TEST(Simple, DeterministicAcrossMachineShapes) {
  auto c = compileOk(workloads::simpleSource(8, 2));
  BaselineRun seq = runSequentialBaseline(*c);
  ASSERT_TRUE(seq.stats.ok) << seq.stats.error;
  for (int pes : {1, 3, 8, 17}) {
    for (int page : {8, 32}) {
      sim::MachineConfig mc;
      mc.numPEs = pes;
      mc.timing.pageElems = page;
      PodsRun run = runPods(*c, mc);
      ASSERT_TRUE(run.stats.ok)
          << "pes=" << pes << " page=" << page << ": " << run.stats.error;
      std::string why;
      EXPECT_TRUE(sameOutputs(run.out, seq.out, &why))
          << "pes=" << pes << " page=" << page << ": " << why;
    }
  }
}

TEST(Simple, SpeedupShapeMiniature) {
  // A fast, CI-sized version of Figure 10's shape assertions.
  auto c = compileOk(workloads::simpleSource(16, 1));
  sim::MachineConfig mc;
  mc.numPEs = 1;
  SimTime t1 = runPods(*c, mc).stats.total;
  mc.numPEs = 4;
  SimTime t4 = runPods(*c, mc).stats.total;
  mc.numPEs = 8;
  SimTime t8 = runPods(*c, mc).stats.total;
  double s4 = double(t1.ns) / double(t4.ns);
  double s8 = double(t1.ns) / double(t8.ns);
  EXPECT_GT(s4, 2.0);       // real speedup at 4 PEs
  EXPECT_GT(s8, s4 * 0.95);  // still not collapsing at 8
  EXPECT_LT(s8, 8.0);       // sublinear (overheads exist)
}

TEST(Simple, EuDominatesOtherUnits) {
  // Figure 8's headline in miniature.
  auto c = compileOk(workloads::simpleSource(16, 1));
  for (int pes : {1, 4}) {
    sim::MachineConfig mc;
    mc.numPEs = pes;
    PodsRun run = runPods(*c, mc);
    ASSERT_TRUE(run.stats.ok);
    double eu = run.stats.avgUtilization(sim::Unit::EU);
    for (sim::Unit u : {sim::Unit::MU, sim::Unit::MM, sim::Unit::AM,
                        sim::Unit::RU}) {
      EXPECT_GT(eu, run.stats.avgUtilization(u)) << "pes=" << pes;
    }
  }
}

TEST(Simple, UtilizationRisesWithProblemSize) {
  // Figure 9's headline in miniature: at 8 PEs, 24x24 keeps the EUs busier
  // than 8x8.
  auto small = compileOk(workloads::simpleSource(8, 1));
  auto large = compileOk(workloads::simpleSource(24, 1));
  sim::MachineConfig mc;
  mc.numPEs = 8;
  PodsRun rs = runPods(*small, mc);
  PodsRun rl = runPods(*large, mc);
  ASSERT_TRUE(rs.stats.ok);
  ASSERT_TRUE(rl.stats.ok);
  EXPECT_GT(rl.stats.avgUtilization(sim::Unit::EU),
            rs.stats.avgUtilization(sim::Unit::EU));
}

TEST(Simple, PodsBeatsStaticBaselineWhenBigEnough) {
  // Figure 10's comparison point, miniature: at 24x24 / 8 PEs the hybrid
  // should be at least competitive with static execution.
  auto c = compileOk(workloads::simpleSource(24, 1));
  sim::MachineConfig mc;
  mc.numPEs = 8;
  PodsRun pods = runPods(*c, mc);
  BaselineRun st = runStaticBaseline(*c, 8);
  ASSERT_TRUE(pods.stats.ok);
  ASSERT_TRUE(st.stats.ok);
  EXPECT_LT(pods.stats.total.ns, st.stats.total.ns * 3 / 2);
}

TEST(Simple, TimestepsPipelineAcrossSteps) {
  // The while-loop body's calls are spawned asynchronously, so step k+1's
  // velocity update overlaps step k's conduction: 2 steps must cost less
  // than 2x one step on a parallel machine.
  auto c1 = compileOk(workloads::simpleSource(16, 1));
  auto c2 = compileOk(workloads::simpleSource(16, 2));
  sim::MachineConfig mc;
  mc.numPEs = 8;
  SimTime t1 = runPods(*c1, mc).stats.total;
  SimTime t2 = runPods(*c2, mc).stats.total;
  EXPECT_LT(t2.ns, 2 * t1.ns);
}

}  // namespace
}  // namespace pods
