// Native runtime hardening tests: determinism under worker-count sweeps and
// repetition, frame free-list accounting (no leaked live frames), and the
// error paths that must report cleanly instead of crashing or hanging —
// unknown array ids, non-array operands, and genuine deadlocks detected by
// the counting quiescence protocol within a bounded wall-clock time.
#include <gtest/gtest.h>

#include <chrono>

#include "core/pods.hpp"
#include "native/native_machine.hpp"
#include "runtime/isa.hpp"
#include "workloads/kernels.hpp"

namespace pods {
namespace {

std::unique_ptr<Compiled> compileOk(const std::string& src,
                                    CompileOptions opts = {}) {
  CompileResult cr = compile(src, opts);
  EXPECT_TRUE(cr.ok) << cr.diagnostics;
  return std::move(cr.compiled);
}

/// Asserts the frame ledger of a finished run balances: every created frame
/// was retired (peak vs retired is the leak check), globally and per worker.
void expectNoLeakedFrames(const native::NativeResult& stats) {
  EXPECT_EQ(stats.counters.get("native.framesCreated"),
            stats.counters.get("native.framesRetired"));
  EXPECT_EQ(stats.counters.get("native.framesLive"), 0);
  EXPECT_LE(stats.counters.get("native.framesPeak"),
            stats.counters.get("native.framesCreated"));
  for (const Counters& w : stats.perWorker) {
    EXPECT_EQ(w.get("framesCreated"), w.get("framesRetired"));
    EXPECT_EQ(w.get("framesLive"), 0);
  }
}

TEST(NativeStress, DeterministicAcrossWorkersAndReps) {
  auto c = compileOk(workloads::stencilSource(10, 2));
  BaselineRun seq = runSequentialBaseline(*c);
  ASSERT_TRUE(seq.stats.ok) << seq.stats.error;
  for (int workers : {1, 2, 4, 8}) {
    for (int rep = 0; rep < 20; ++rep) {
      native::NativeConfig nc;
      nc.numWorkers = workers;
      NativeRun run = runNative(*c, nc);
      ASSERT_TRUE(run.stats.ok)
          << "workers=" << workers << " rep=" << rep << ": " << run.stats.error;
      std::string why;
      EXPECT_TRUE(sameOutputs(run.out, seq.out, &why))
          << "workers=" << workers << " rep=" << rep << ": " << why;
      expectNoLeakedFrames(run.stats);
    }
  }
}

TEST(NativeStress, FreeListRecyclesRetiredFrames) {
  // Thousands of short-lived frames (one per recursive call) with a much
  // smaller live set: the free list must serve later calls from recycled
  // storage instead of growing the frame table monotonically.
  auto c = compileOk(R"(
def fib(n: int) -> int {
  let r = if n < 2 then n else fib(n - 1) + fib(n - 2);
  return r;
}
def main() -> int { return fib(16); }
)");
  native::NativeConfig nc;
  nc.numWorkers = 2;
  NativeRun run = runNative(*c, nc);
  ASSERT_TRUE(run.stats.ok) << run.stats.error;
  EXPECT_EQ(run.out.results[0].asInt(), 987);
  expectNoLeakedFrames(run.stats);
  EXPECT_GT(run.stats.counters.get("native.framesReused"), 0);
  EXPECT_LT(run.stats.counters.get("native.framesPeak"),
            run.stats.counters.get("native.framesCreated"));
}

TEST(NativeStress, PerWorkerCountersCoverAllWorkers) {
  auto c = compileOk(workloads::matmulSource(8));
  native::NativeConfig nc;
  nc.numWorkers = 4;
  NativeRun run = runNative(*c, nc);
  ASSERT_TRUE(run.stats.ok) << run.stats.error;
  ASSERT_EQ(run.stats.perWorker.size(), 4u);
  std::int64_t instrs = 0;
  for (const Counters& w : run.stats.perWorker) instrs += w.get("instructions");
  EXPECT_EQ(instrs, run.stats.counters.get("native.instructions"));
  EXPECT_GT(run.stats.counters.get("native.idleTransitions"), 0);
}

// --- error paths -----------------------------------------------------------

/// Hand-assembles a one-SP program so the error paths can be driven with
/// values the frontend could never produce (stale ids, ill-typed operands).
SpProgram singleSpProgram(std::vector<Instr> code, std::uint16_t numSlots) {
  SpProgram prog;
  SpCode sp;
  sp.id = 0;
  sp.name = "handmade";
  sp.numSlots = numSlots;
  sp.code = std::move(code);
  prog.sps.push_back(std::move(sp));
  prog.mainSp = 0;
  prog.numResults = 1;
  return prog;
}

Instr lit(std::uint16_t dst, Value v) {
  Instr in;
  in.op = Op::LIT;
  in.dst = dst;
  in.imm = v;
  return in;
}

TEST(NativeErrors, UnknownArrayIdReportedNotDereferenced) {
  // ARD on an array id no allocation ever produced: must fail with the SP
  // name, not dereference a null NArray*.
  Instr ard;
  ard.op = Op::ARD;
  ard.dst = 2;
  ard.a = 0;
  ard.b = 1;
  Instr end;
  end.op = Op::END;
  SpProgram prog = singleSpProgram(
      {lit(0, Value::arrayv(999)), lit(1, Value::intv(0)), ard, end}, 3);
  native::NativeMachine m(prog, {.numWorkers = 2});
  native::NativeResult res = m.run();
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("unknown array id 999"), std::string::npos)
      << res.error;
  EXPECT_NE(res.error.find("handmade"), std::string::npos) << res.error;
}

TEST(NativeErrors, NonArrayOperandToArdReported) {
  Instr ard;
  ard.op = Op::ARD;
  ard.dst = 2;
  ard.a = 0;
  ard.b = 1;
  Instr end;
  end.op = Op::END;
  SpProgram prog = singleSpProgram(
      {lit(0, Value::intv(5)), lit(1, Value::intv(0)), ard, end}, 3);
  native::NativeMachine m(prog, {.numWorkers = 2});
  native::NativeResult res = m.run();
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("non-array operand"), std::string::npos)
      << res.error;
}

TEST(NativeErrors, NonArrayOperandToDimqReported) {
  Instr dimq;
  dimq.op = Op::DIMQ;
  dimq.dst = 1;
  dimq.a = 0;
  Instr end;
  end.op = Op::END;
  SpProgram prog =
      singleSpProgram({lit(0, Value::realv(1.5)), dimq, end}, 2);
  native::NativeMachine m(prog, {.numWorkers = 1});
  native::NativeResult res = m.run();
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("non-array operand"), std::string::npos)
      << res.error;
}

TEST(NativeErrors, DeadlockReportedWithinBoundedTime) {
  // A read of an element nobody writes: every worker goes idle with live
  // blocked SPs. The quiescence protocol must report it as a deadlock —
  // quickly and deterministically, not as a hang.
  auto c = compileOk(R"(
def main() -> real {
  let a = array(4);
  a[0] = 1.0;
  return a[3];
}
)", {.distribute = false});
  auto t0 = std::chrono::steady_clock::now();
  native::NativeConfig nc;
  nc.numWorkers = 4;
  NativeRun run = runNative(*c, nc);
  auto elapsed = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - t0).count();
  EXPECT_FALSE(run.stats.ok);
  EXPECT_NE(run.stats.error.find("deadlock"), std::string::npos)
      << run.stats.error;
  EXPECT_LT(elapsed, 5.0);
}

#if GTEST_HAS_DEATH_TEST
TEST(NativeErrors, ZeroSliceBudgetRejected) {
  SpProgram prog;
  SpCode sp;
  sp.numSlots = 1;
  Instr end;
  end.op = Op::END;
  sp.code.push_back(end);
  prog.sps.push_back(std::move(sp));
  prog.numResults = 0;
  native::NativeConfig nc;
  nc.sliceInstructions = 0;
  EXPECT_DEATH({ native::NativeMachine m(prog, nc); }, "sliceInstructions");
}
#endif

}  // namespace
}  // namespace pods
