// Fault-injection and reliable-delivery tests (docs/ARCHITECTURE.md, "Fault
// model & delivery guarantees").
//
// The property under test is Church-Rosser under an unreliable network: for
// any fault seed and any drop/dup/delay/stall rates up to 5%, both engines
// must complete and produce results bit-identical to a fault-free run —
// single assignment makes redelivered data harmless, message-id dedup makes
// non-idempotent tokens (ADDC, spawn-by-token) exactly-once, and the
// retired-context ledger swallows stragglers reordered past an instance's
// END. The sweeps run PODS_FAULT_SEEDS seeds (default 32; CI soak raises
// it) across engines and PE counts, on SIMPLE 16x16 and a recursive
// workload.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>

#include "core/pods.hpp"
#include "support/fault.hpp"
#include "workloads/kernels.hpp"
#include "workloads/simple.hpp"

namespace pods {
namespace {

constexpr const char* kFibSource = R"(
def fib(n: int) -> int {
  let r = if n < 2 then n else fib(n - 1) + fib(n - 2);
  return r;
}
def main() -> int { return fib(13); }
)";

std::unique_ptr<Compiled> compileOk(const std::string& src) {
  CompileResult cr = compile(src, {});
  EXPECT_TRUE(cr.ok) << cr.diagnostics;
  return std::move(cr.compiled);
}

/// Seed count for the fuzz sweeps: PODS_FAULT_SEEDS overrides (the CI soak
/// job raises it), default 32.
int faultSeeds() {
  if (const char* env = std::getenv("PODS_FAULT_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 32;
}

FaultConfig faultRates(std::uint64_t seed) {
  FaultConfig fc;
  EXPECT_TRUE(FaultConfig::parse("drop:0.05,dup:0.02,delay:0.05", fc));
  fc.seed = seed;
  // Keep the native sweeps fast: short retry/delay clocks.
  fc.retry.rtoUs = 50.0;
  fc.nativeDelayUs = 20.0;
  return fc;
}

std::map<std::string, std::int64_t> counterMap(const Counters& c) {
  std::map<std::string, std::int64_t> m;
  for (const auto& [k, v] : c.all()) m.emplace(k, v);
  return m;
}

/// Counter map with the engine-internal sim.eventq.* gauges stripped: the
/// two event engines must agree on every simulation-visible counter, while
/// their own health gauges (queue depth, bucket occupancy) are
/// engine-specific by construction.
std::map<std::string, std::int64_t> portableCounterMap(const Counters& c) {
  std::map<std::string, std::int64_t> m;
  for (const auto& [k, v] : c.all())
    if (k.rfind("sim.eventq.", 0) != 0) m.emplace(k, v);
  return m;
}

TEST(FaultConfigParse, AcceptsWellFormedSpecs) {
  FaultConfig fc;
  ASSERT_TRUE(FaultConfig::parse("drop:0.01,dup:0.005,delay:0.02", fc));
  EXPECT_DOUBLE_EQ(fc.dropProb, 0.01);
  EXPECT_DOUBLE_EQ(fc.dupProb, 0.005);
  EXPECT_DOUBLE_EQ(fc.delayProb, 0.02);
  EXPECT_DOUBLE_EQ(fc.stallProb, 0.0);
  EXPECT_TRUE(fc.enabled());

  FaultConfig one;
  ASSERT_TRUE(FaultConfig::parse("stall:0.5", one));
  EXPECT_DOUBLE_EQ(one.stallProb, 0.5);

  FaultConfig none;
  EXPECT_FALSE(none.enabled());
}

TEST(FaultConfigParse, RejectsMalformedSpecs) {
  FaultConfig fc;
  std::string err;
  EXPECT_FALSE(FaultConfig::parse("drop", fc, &err));
  EXPECT_NE(err.find("key:prob"), std::string::npos);
  EXPECT_FALSE(FaultConfig::parse("drop:0.6", fc, &err));  // > 0.5
  EXPECT_NE(err.find("not in [0, 0.5]"), std::string::npos);
  EXPECT_FALSE(FaultConfig::parse("drop:zap", fc, &err));
  EXPECT_FALSE(FaultConfig::parse("teleport:0.1", fc, &err));
  EXPECT_NE(err.find("unknown key"), std::string::npos);
  EXPECT_FALSE(FaultConfig::parse("drop:0.1,,dup:0.1", fc, &err));
  EXPECT_NE(err.find("empty entry"), std::string::npos);
}

TEST(FaultPlanDraws, DeterministicAndSeedSensitive) {
  FaultConfig fc = faultRates(7);
  FaultPlan a(fc), b(fc);
  for (std::uint64_t id = 0; id < 1000; ++id) {
    EXPECT_EQ(static_cast<int>(a.action(id)), static_cast<int>(b.action(id)));
  }
  fc.seed = 8;
  FaultPlan other(fc);
  int differs = 0;
  for (std::uint64_t id = 0; id < 1000; ++id) {
    if (a.action(id) != other.action(id)) ++differs;
  }
  EXPECT_GT(differs, 0);  // a new seed is a new schedule
}

// --- simulator sweeps -------------------------------------------------------

TEST(FaultFuzz, SimSimpleBitIdenticalToFaultFree) {
  auto c = compileOk(workloads::simpleSource(16, 2));
  const int seeds = faultSeeds();
  std::int64_t resent = 0, dedup = 0, injected = 0;
  for (int pes : {1, 4, 8}) {
    sim::MachineConfig clean;
    clean.numPEs = pes;
    PodsRun ref = runPods(*c, clean);
    ASSERT_TRUE(ref.stats.ok) << ref.stats.error;
    for (int seed = 1; seed <= seeds; ++seed) {
      sim::MachineConfig mc;
      mc.numPEs = pes;
      mc.faults = faultRates(static_cast<std::uint64_t>(seed));
      PodsRun run = runPods(*c, mc);
      ASSERT_TRUE(run.stats.ok)
          << "pes=" << pes << " seed=" << seed << ": " << run.stats.error;
      std::string why;
      ASSERT_TRUE(sameOutputs(run.out, ref.out, &why))
          << "pes=" << pes << " seed=" << seed << ": " << why;
      // Leaked-frame check: every instantiated SP must retire even when the
      // run completed through drops, duplicates, and delays.
      EXPECT_EQ(run.stats.counters.get("sp.instantiated"),
                run.stats.counters.get("sp.completed"))
          << "pes=" << pes << " seed=" << seed;
      resent += run.stats.counters.get("net.retx.resent");
      dedup += run.stats.counters.get("net.retx.dupSuppressed");
      injected += run.stats.counters.get("fault.drops") +
                  run.stats.counters.get("fault.dups") +
                  run.stats.counters.get("fault.delays");
    }
  }
  // The protocol must actually have been exercised across the sweep.
  EXPECT_GT(injected, 0);
  EXPECT_GT(resent, 0);
  EXPECT_GT(dedup, 0);
}

TEST(FaultFuzz, SimRecursiveWorkload) {
  auto c = compileOk(kFibSource);
  sim::MachineConfig clean;
  clean.numPEs = 4;
  PodsRun ref = runPods(*c, clean);
  ASSERT_TRUE(ref.stats.ok) << ref.stats.error;
  const int seeds = faultSeeds();
  for (int seed = 1; seed <= seeds; ++seed) {
    sim::MachineConfig mc;
    mc.numPEs = 4;
    mc.faults = faultRates(static_cast<std::uint64_t>(seed));
    mc.faults.stallProb = 0.02;
    PodsRun run = runPods(*c, mc);
    ASSERT_TRUE(run.stats.ok) << "seed=" << seed << ": " << run.stats.error;
    std::string why;
    ASSERT_TRUE(sameOutputs(run.out, ref.out, &why))
        << "seed=" << seed << ": " << why;
    EXPECT_EQ(run.stats.counters.get("sp.instantiated"),
              run.stats.counters.get("sp.completed"))
        << "seed=" << seed;
  }
}

// The calendar event engine against the reference binary heap, across the
// whole fault fuzz matrix plus fault-free runs: outputs, simulated
// completion time, and every simulation-visible counter (including the raw
// "events" dispatch count) must match bit for bit. This is the contract
// that lets the calendar queue be the default engine.
TEST(FaultFuzz, SimCalendarVsHeapBitIdentical) {
  auto c = compileOk(workloads::simpleSource(16, 2));
  const int seeds = faultSeeds();
  for (int pes : {4, 8}) {
    for (int seed = 0; seed <= seeds; ++seed) {  // seed 0 = fault-free
      sim::MachineConfig mc;
      mc.numPEs = pes;
      if (seed > 0) mc.faults = faultRates(static_cast<std::uint64_t>(seed));
      mc.eventEngine = sim::EventEngine::Calendar;
      PodsRun cal = runPods(*c, mc);
      mc.eventEngine = sim::EventEngine::BinaryHeap;
      PodsRun heap = runPods(*c, mc);
      ASSERT_TRUE(cal.stats.ok)
          << "pes=" << pes << " seed=" << seed << ": " << cal.stats.error;
      ASSERT_TRUE(heap.stats.ok)
          << "pes=" << pes << " seed=" << seed << ": " << heap.stats.error;
      EXPECT_EQ(cal.stats.total.ns, heap.stats.total.ns)
          << "pes=" << pes << " seed=" << seed;
      EXPECT_EQ(portableCounterMap(cal.stats.counters),
                portableCounterMap(heap.stats.counters))
          << "pes=" << pes << " seed=" << seed;
      std::string why;
      ASSERT_TRUE(sameOutputs(cal.out, heap.out, &why))
          << "pes=" << pes << " seed=" << seed << ": " << why;
    }
  }
}

TEST(FaultFuzz, SimBitDeterministicAcrossRepeats) {
  // Same seed => identical event schedule: simulated completion time and
  // every counter (including the injected-fault tallies) must match exactly.
  auto c = compileOk(workloads::simpleSource(16, 2));
  for (int seed : {1, 5, 23}) {
    sim::MachineConfig mc;
    mc.numPEs = 8;
    mc.faults = faultRates(static_cast<std::uint64_t>(seed));
    PodsRun a = runPods(*c, mc);
    PodsRun b = runPods(*c, mc);
    ASSERT_TRUE(a.stats.ok) << a.stats.error;
    ASSERT_TRUE(b.stats.ok) << b.stats.error;
    EXPECT_EQ(a.stats.total.ns, b.stats.total.ns) << "seed=" << seed;
    EXPECT_EQ(counterMap(a.stats.counters), counterMap(b.stats.counters))
        << "seed=" << seed;
    std::string why;
    EXPECT_TRUE(sameOutputs(a.out, b.out, &why)) << why;
  }
}

// --- native sweeps ----------------------------------------------------------

TEST(FaultFuzz, NativeSimpleBitIdenticalToFaultFree) {
  auto c = compileOk(workloads::simpleSource(16, 2));
  native::NativeConfig clean;
  clean.numWorkers = 4;
  NativeRun ref = runNative(*c, clean);
  ASSERT_TRUE(ref.stats.ok) << ref.stats.error;
  const int seeds = faultSeeds();
  std::int64_t injected = 0;
  for (int workers : {1, 4, 8}) {
    for (int seed = 1; seed <= seeds; ++seed) {
      native::NativeConfig nc;
      nc.numWorkers = workers;
      nc.faults = faultRates(static_cast<std::uint64_t>(seed));
      NativeRun run = runNative(*c, nc);
      ASSERT_TRUE(run.stats.ok)
          << "workers=" << workers << " seed=" << seed << ": "
          << run.stats.error;
      std::string why;
      ASSERT_TRUE(sameOutputs(run.out, ref.out, &why))
          << "workers=" << workers << " seed=" << seed << ": " << why;
      // Zero leaked frames: the ledger balances even with injected faults.
      EXPECT_EQ(run.stats.counters.get("native.framesCreated"),
                run.stats.counters.get("native.framesRetired"))
          << "workers=" << workers << " seed=" << seed;
      EXPECT_EQ(run.stats.counters.get("native.framesLive"), 0);
      injected += run.stats.counters.get("fault.drops") +
                  run.stats.counters.get("fault.dups") +
                  run.stats.counters.get("fault.delays");
    }
  }
  EXPECT_GT(injected, 0);
}

TEST(FaultFuzz, NativeRecursiveWorkload) {
  auto c = compileOk(kFibSource);
  native::NativeConfig clean;
  clean.numWorkers = 4;
  NativeRun ref = runNative(*c, clean);
  ASSERT_TRUE(ref.stats.ok) << ref.stats.error;
  const int seeds = faultSeeds();
  for (int seed = 1; seed <= seeds; ++seed) {
    native::NativeConfig nc;
    nc.numWorkers = 8;
    nc.faults = faultRates(static_cast<std::uint64_t>(seed));
    nc.faults.stallProb = 0.01;
    NativeRun run = runNative(*c, nc);
    ASSERT_TRUE(run.stats.ok) << "seed=" << seed << ": " << run.stats.error;
    std::string why;
    ASSERT_TRUE(sameOutputs(run.out, ref.out, &why))
        << "seed=" << seed << ": " << why;
    EXPECT_EQ(run.stats.counters.get("native.framesCreated"),
              run.stats.counters.get("native.framesRetired"));
  }
}

// --- wire-store sweeps ------------------------------------------------------
//
// With --store=wire the array plane rides the token transport, so the same
// fault dice that land on tokens now land on array reads, writes, shape
// queries, and value replies — by construction, not by a second shim. The
// sweeps fuzz an array-heavy adversarial-ownership workload (every read
// remotely owned) and must stay bit-identical to a fault-free run.

TEST(FaultFuzz, NativeWireStoreArrayHeavyBitIdenticalToFaultFree) {
  auto c = compileOk(workloads::reversalSource(64));
  native::NativeConfig clean;
  clean.numWorkers = 4;
  NativeRun ref = runNative(*c, clean);
  ASSERT_TRUE(ref.stats.ok) << ref.stats.error;
  const int seeds = faultSeeds();
  std::int64_t injected = 0;
  for (int seed = 1; seed <= seeds; ++seed) {
    native::NativeConfig nc;
    nc.numWorkers = 4;
    nc.pageElems = 8;
    nc.store = native::StoreKind::Wire;
    nc.faults = faultRates(static_cast<std::uint64_t>(seed));
    NativeRun run = runNative(*c, nc);
    ASSERT_TRUE(run.stats.ok) << "seed=" << seed << ": " << run.stats.error;
    std::string why;
    ASSERT_TRUE(sameOutputs(run.out, ref.out, &why))
        << "seed=" << seed << ": " << why;
    EXPECT_EQ(run.stats.counters.get("native.framesCreated"),
              run.stats.counters.get("native.framesRetired"))
        << "seed=" << seed;
    EXPECT_EQ(run.stats.counters.get("native.shmArrayOps"), 0)
        << "seed=" << seed;
    injected += run.stats.counters.get("fault.drops") +
                run.stats.counters.get("fault.dups") +
                run.stats.counters.get("fault.delays");
    // The workload is array-message dominated: remote reads must have
    // happened for the dice to have had anything array-shaped to hit.
    EXPECT_GT(run.stats.counters.get("net.am.readReqSent"), 0)
        << "seed=" << seed;
  }
  EXPECT_GT(injected, 0);
}

TEST(FaultFuzz, NativeWireStoreKillPlusLossyArrayHeavy) {
  // Kill × drop/dup/delay on the array-heavy workload: the respawned PE
  // rebuilds its owned elements, parked readers, and shape table from its
  // Am log while the lossy dice keep rolling.
  auto c = compileOk(workloads::reversalSource(64));
  native::NativeConfig clean;
  clean.numWorkers = 4;
  NativeRun ref = runNative(*c, clean);
  ASSERT_TRUE(ref.stats.ok) << ref.stats.error;
  const int seeds = std::max(4, faultSeeds() / 2);
  std::int64_t kills = 0;
  for (int seed = 1; seed <= seeds; ++seed) {
    native::NativeConfig nc;
    nc.numWorkers = 4;
    nc.pageElems = 8;
    nc.store = native::StoreKind::Wire;
    nc.faults = faultRates(static_cast<std::uint64_t>(seed));
    nc.faults.killPe = seed % 4;
    nc.faults.killTimeUs = 100.0 + (seed * 211) % 2500;
    nc.faults.killRestartUs = 100.0;
    NativeRun run = runNative(*c, nc);
    ASSERT_TRUE(run.stats.ok) << "seed=" << seed << ": " << run.stats.error;
    std::string why;
    ASSERT_TRUE(sameOutputs(run.out, ref.out, &why))
        << "seed=" << seed << ": " << why;
    EXPECT_EQ(run.stats.counters.get("native.framesCreated"),
              run.stats.counters.get("native.framesRetired"))
        << "seed=" << seed;
    kills += run.stats.counters.get("fault.kills");
  }
  EXPECT_GT(kills, 0);
}

// --- forensics & watchdog ---------------------------------------------------

TEST(MachineForensics, EventBudgetNamesTrippingEventAndLiveSps) {
  auto c = compileOk(workloads::simpleSource(12, 2));
  sim::MachineConfig mc;
  mc.numPEs = 4;
  mc.maxEvents = 100;
  PodsRun run = runPods(*c, mc);
  EXPECT_FALSE(run.stats.ok);
  EXPECT_NE(run.stats.error.find("event budget exhausted"), std::string::npos)
      << run.stats.error;
  EXPECT_NE(run.stats.error.find("maxEvents=100"), std::string::npos)
      << run.stats.error;
  EXPECT_NE(run.stats.error.find("on PE "), std::string::npos)
      << run.stats.error;
  EXPECT_NE(run.stats.error.find("SPs live"), std::string::npos)
      << run.stats.error;
  // stats.total is stamped from the tripping event itself, so the reported
  // total and the "t=...us" in the message agree exactly (they used to lag
  // one event apart: total was taken from `now` before it advanced).
  EXPECT_NE(run.stats.error.find(
                "t=" + std::to_string(run.stats.total.us()) + "us"),
            std::string::npos)
      << run.stats.error << " vs total=" << run.stats.total.us();
}

TEST(MachineForensics, SimAbortFlagStopsRun) {
  auto c = compileOk(workloads::simpleSource(12, 2));
  std::atomic<bool> abortFlag{true};  // pre-raised: stop on the first event
  sim::MachineConfig mc;
  mc.numPEs = 4;
  mc.abort = &abortFlag;
  PodsRun run = runPods(*c, mc);
  EXPECT_FALSE(run.stats.ok);
  EXPECT_NE(run.stats.error.find("aborted"), std::string::npos)
      << run.stats.error;
  // Same total/tripping-time consistency contract as the event budget.
  EXPECT_NE(run.stats.error.find(
                "t=" + std::to_string(run.stats.total.us()) + "us"),
            std::string::npos)
      << run.stats.error << " vs total=" << run.stats.total.us();
}

TEST(MachineForensics, NativeAbortFlagStopsRun) {
  auto c = compileOk(workloads::simpleSource(12, 2));
  std::atomic<bool> abortFlag{false};
  native::NativeConfig nc;
  nc.numWorkers = 4;
  nc.abort = &abortFlag;
  std::thread raiser([&] {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    abortFlag.store(true);
  });
  NativeRun run = runNative(*c, nc);
  raiser.join();
  // Either the run won the race (finished in time) or it was aborted — it
  // must never hang or crash, and an abort must be reported as one.
  if (!run.stats.ok) {
    EXPECT_NE(run.stats.error.find("aborted"), std::string::npos)
        << run.stats.error;
  }
}

TEST(MachineForensics, NativeAbortPreRaisedAlwaysAborts) {
  auto c = compileOk(workloads::simpleSource(16, 2));
  std::atomic<bool> abortFlag{true};
  native::NativeConfig nc;
  nc.numWorkers = 2;
  nc.faults = faultRates(3);  // slow the run so the monitor always wins
  nc.faults.retry.rtoUs = 5000.0;
  nc.abort = &abortFlag;
  NativeRun run = runNative(*c, nc);
  EXPECT_FALSE(run.stats.ok);
  EXPECT_NE(run.stats.error.find("aborted"), std::string::npos)
      << run.stats.error;
}

}  // namespace
}  // namespace pods
