// Livermore kernel pack: plan expectations (which kernels distribute) and
// cross-model result identity.
#include <gtest/gtest.h>

#include "core/pods.hpp"
#include "workloads/livermore.hpp"

namespace pods {
namespace {

class Livermore : public ::testing::TestWithParam<workloads::LivermoreKernel> {};

TEST_P(Livermore, PlanMatchesDependenceStructure) {
  const auto& k = GetParam();
  CompileResult cr = compile(workloads::livermoreSource(k.number, 64));
  ASSERT_TRUE(cr.ok) << cr.diagnostics;
  // The input-fill loop always distributes; the kernel's own main loop
  // distributes iff it has no LCD. Count replicated loops to tell.
  int expected = k.parallel ? 2 : 1;
  EXPECT_EQ(cr.compiled->plan.numReplicated, expected) << k.name;
}

TEST_P(Livermore, AllEnginesAgree) {
  const auto& k = GetParam();
  CompileResult cr = compile(workloads::livermoreSource(k.number, 100));
  ASSERT_TRUE(cr.ok) << cr.diagnostics;
  BaselineRun seq = runSequentialBaseline(*cr.compiled);
  ASSERT_TRUE(seq.stats.ok) << k.name << ": " << seq.stats.error;

  BaselineRun st = runStaticBaseline(*cr.compiled, 6);
  ASSERT_TRUE(st.stats.ok) << k.name << ": " << st.stats.error;
  std::string why;
  EXPECT_TRUE(sameOutputs(st.out, seq.out, &why)) << k.name << ": " << why;

  for (int pes : {1, 4, 9}) {
    sim::MachineConfig mc;
    mc.numPEs = pes;
    PodsRun run = runPods(*cr.compiled, mc);
    ASSERT_TRUE(run.stats.ok) << k.name << " pes=" << pes << ": "
                              << run.stats.error;
    EXPECT_TRUE(sameOutputs(run.out, seq.out, &why))
        << k.name << " pes=" << pes << ": " << why;
  }

  native::NativeConfig nc;
  nc.numWorkers = 4;
  NativeRun nat = runNative(*cr.compiled, nc);
  ASSERT_TRUE(nat.stats.ok) << k.name << ": " << nat.stats.error;
  EXPECT_TRUE(sameOutputs(nat.out, seq.out, &why)) << k.name << ": " << why;
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, Livermore, ::testing::ValuesIn(workloads::livermoreKernels()),
    [](const ::testing::TestParamInfo<workloads::LivermoreKernel>& info) {
      return "K" + std::to_string(info.param.number);
    });

TEST(LivermoreValues, PrefixSumExact) {
  CompileResult cr = compile(workloads::livermoreSource(11, 50));
  ASSERT_TRUE(cr.ok);
  BaselineRun seq = runSequentialBaseline(*cr.compiled);
  ASSERT_TRUE(seq.stats.ok);
  const auto& x = *seq.out.arrays[0];
  // x[k] = sum_{i<=k} y[i], y[i] = 0.2 + 0.001*i.
  double expect = 0.0;
  for (int k = 0; k < 50; ++k) {
    expect += 0.2 + 0.001 * k;
    EXPECT_NEAR(x.elems[static_cast<std::size_t>(k)].asReal(), expect, 1e-12);
  }
}

TEST(LivermoreValues, FirstDifferenceExact) {
  CompileResult cr = compile(workloads::livermoreSource(12, 64));
  ASSERT_TRUE(cr.ok);
  sim::MachineConfig mc;
  mc.numPEs = 8;
  PodsRun run = runPods(*cr.compiled, mc);
  ASSERT_TRUE(run.stats.ok);
  const auto& x = *run.out.arrays[0];
  for (int k = 0; k < 64; ++k) {
    // y[k+1] - y[k] = 0.001 everywhere.
    EXPECT_NEAR(x.elems[static_cast<std::size_t>(k)].asReal(), 0.001, 1e-12);
  }
}

TEST(LivermoreValues, InnerProductMatchesClosedForm) {
  CompileResult cr = compile(workloads::livermoreSource(3, 40));
  ASSERT_TRUE(cr.ok);
  BaselineRun seq = runSequentialBaseline(*cr.compiled);
  ASSERT_TRUE(seq.stats.ok);
  double expect = 0.0;
  for (int i = 0; i < 40; ++i) {
    double y = 0.2 + 0.001 * i;
    double z = 1.0 + 0.0005 * ((i * i) % 97);
    expect += z * y;
  }
  EXPECT_NEAR(seq.out.results[0].asReal(), expect, 1e-12);
}

}  // namespace
}  // namespace pods
