// IdLite lexer unit tests.
#include <gtest/gtest.h>

#include "frontend/lexer.hpp"

namespace pods::fe {
namespace {

std::vector<Token> lexOk(std::string_view src) {
  DiagSink d;
  auto toks = lex(src, d);
  EXPECT_FALSE(d.hasErrors()) << d.str();
  return toks;
}

TEST(Lexer, EmptyInput) {
  auto t = lexOk("");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].kind, Tok::Eof);
}

TEST(Lexer, KeywordsAndIdentifiers) {
  auto t = lexOk("def let next forx to downto yield _id $tmp carry");
  EXPECT_EQ(t[0].kind, Tok::KwDef);
  EXPECT_EQ(t[1].kind, Tok::KwLet);
  EXPECT_EQ(t[2].kind, Tok::KwNext);
  EXPECT_EQ(t[3].kind, Tok::Ident);  // "forx" is not "for"
  EXPECT_EQ(t[3].text, "forx");
  EXPECT_EQ(t[4].kind, Tok::KwTo);
  EXPECT_EQ(t[5].kind, Tok::KwDownto);
  EXPECT_EQ(t[6].kind, Tok::KwYield);
  EXPECT_EQ(t[7].kind, Tok::Ident);
  EXPECT_EQ(t[7].text, "_id");
  EXPECT_EQ(t[8].kind, Tok::Ident);
  EXPECT_EQ(t[8].text, "$tmp");  // inliner-generated names
  EXPECT_EQ(t[9].kind, Tok::KwCarry);
}

TEST(Lexer, IntegerAndRealLiterals) {
  auto t = lexOk("42 3.5 1e3 2.5e-2 7e+1 10");
  EXPECT_EQ(t[0].kind, Tok::IntLit);
  EXPECT_EQ(t[0].ival, 42);
  EXPECT_EQ(t[1].kind, Tok::RealLit);
  EXPECT_DOUBLE_EQ(t[1].fval, 3.5);
  EXPECT_EQ(t[2].kind, Tok::RealLit);
  EXPECT_DOUBLE_EQ(t[2].fval, 1000.0);
  EXPECT_EQ(t[3].kind, Tok::RealLit);
  EXPECT_DOUBLE_EQ(t[3].fval, 0.025);
  EXPECT_EQ(t[4].kind, Tok::RealLit);
  EXPECT_DOUBLE_EQ(t[4].fval, 70.0);
  EXPECT_EQ(t[5].kind, Tok::IntLit);
}

TEST(Lexer, DotWithoutDigitIsNotReal) {
  DiagSink d;
  auto t = lex("3.x", d);
  // "3" then error on '.'? '.' is not a valid token start.
  EXPECT_EQ(t[0].kind, Tok::IntLit);
  EXPECT_TRUE(d.hasErrors());
}

TEST(Lexer, Operators) {
  auto t = lexOk("+ - * / % < <= > >= == != && || ! = -> ( ) { } [ ] , ; :");
  Tok expect[] = {Tok::Plus, Tok::Minus, Tok::Star, Tok::Slash, Tok::Percent,
                  Tok::Lt, Tok::Le, Tok::Gt, Tok::Ge, Tok::EqEq, Tok::NotEq,
                  Tok::AndAnd, Tok::OrOr, Tok::Bang, Tok::Assign, Tok::Arrow,
                  Tok::LParen, Tok::RParen, Tok::LBrace, Tok::RBrace,
                  Tok::LBracket, Tok::RBracket, Tok::Comma, Tok::Semi,
                  Tok::Colon};
  for (std::size_t i = 0; i < std::size(expect); ++i) {
    EXPECT_EQ(t[i].kind, expect[i]) << "token " << i;
  }
}

TEST(Lexer, Comments) {
  auto t = lexOk("a // line comment\nb /* block\n comment */ c");
  ASSERT_GE(t.size(), 4u);
  EXPECT_EQ(t[0].text, "a");
  EXPECT_EQ(t[1].text, "b");
  EXPECT_EQ(t[2].text, "c");
  EXPECT_EQ(t[3].kind, Tok::Eof);
}

TEST(Lexer, UnterminatedBlockComment) {
  DiagSink d;
  lex("a /* never ends", d);
  EXPECT_TRUE(d.hasErrors());
}

TEST(Lexer, SourceLocations) {
  auto t = lexOk("a\n  b");
  EXPECT_EQ(t[0].loc.line, 1);
  EXPECT_EQ(t[0].loc.col, 1);
  EXPECT_EQ(t[1].loc.line, 2);
  EXPECT_EQ(t[1].loc.col, 3);
}

TEST(Lexer, UnexpectedCharacterRecovers) {
  DiagSink d;
  auto t = lex("a @ b", d);
  EXPECT_TRUE(d.hasErrors());
  // Lexing continues after the bad character.
  EXPECT_EQ(t[0].text, "a");
  EXPECT_EQ(t[1].text, "b");
}

TEST(Lexer, SingleAmpersandIsError) {
  DiagSink d;
  lex("a & b", d);
  EXPECT_TRUE(d.hasErrors());
}

}  // namespace
}  // namespace pods::fe
