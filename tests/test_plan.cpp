// Partition-planner tests: the for-loop distribution algorithm (4.2.4),
// Range-Filter selection, and distributed-context propagation.
#include <gtest/gtest.h>

#include "core/pods.hpp"
#include "workloads/kernels.hpp"
#include "workloads/simple.hpp"

namespace pods {
namespace {

using partition::LoopPlan;
using partition::RfMode;

std::unique_ptr<Compiled> compileOk(const std::string& src,
                                    CompileOptions opts = {}) {
  CompileResult cr = compile(src, opts);
  EXPECT_TRUE(cr.ok) << cr.diagnostics;
  return std::move(cr.compiled);
}

/// Finds a loop block by its generated name ("fn/idx#k").
const ir::Block* findLoop(const ir::Program& p, const std::string& name) {
  const ir::Block* found = nullptr;
  for (const ir::Function& f : p.fns) {
    ir::forEachItem(f.body, [&](const ir::Item& it) {
      if (it.kind == ir::ItemKind::Loop && it.loop->name == name) {
        found = it.loop.get();
      }
    });
  }
  return found;
}

TEST(Plan, DisabledMeansNoReplication) {
  auto c = compileOk(workloads::fill2dSource(8, 8), {.distribute = false});
  EXPECT_FALSE(c->plan.distributeArrays);
  EXPECT_EQ(c->plan.numReplicated, 0);
}

TEST(Plan, OutermostLcdFreeLevelIsReplicated) {
  auto c = compileOk(workloads::fill2dSource(8, 8));
  const ir::Block* iLoop = findLoop(c->graph, "main/i#0");
  const ir::Block* jLoop = findLoop(c->graph, "main/j#1");
  ASSERT_NE(iLoop, nullptr);
  ASSERT_NE(jLoop, nullptr);
  const LoopPlan* ip = c->plan.find(iLoop);
  ASSERT_NE(ip, nullptr);
  EXPECT_TRUE(ip->replicated);
  EXPECT_EQ(ip->mode, RfMode::OwnedRows);
  // Exactly one RF per nest: the inner level stays local.
  EXPECT_EQ(c->plan.find(jLoop), nullptr);
}

TEST(Plan, MatmulShape) {
  auto c = compileOk(workloads::matmulSource(8));
  // Init nest and compute nest both replicate at the i level; the dot
  // product (carried k loop) stays local.
  EXPECT_EQ(c->plan.numReplicated, 2);
  const ir::Block* kLoop = findLoop(c->graph, "main/k#4");
  ASSERT_NE(kLoop, nullptr);
  EXPECT_EQ(c->plan.find(kLoop), nullptr);
}

TEST(Plan, SimpleConductionShape) {
  auto c = compileOk(workloads::simpleSource(8, 1));
  // Row sweep: outer i replicated with row ownership.
  const ir::Block* rowI = findLoop(c->graph, "conduct_row/i#0");
  ASSERT_NE(rowI, nullptr);
  const LoopPlan* rp = c->plan.find(rowI);
  ASSERT_NE(rp, nullptr);
  EXPECT_TRUE(rp->replicated);
  EXPECT_EQ(rp->mode, RfMode::OwnedRows);

  // Column sweep: outer loops carry; inner j loops replicate with
  // i-dependent column ranges (the Figure-5 case).
  const ir::Block* colI = findLoop(c->graph, "conduct_col/i#0");
  ASSERT_NE(colI, nullptr);
  EXPECT_EQ(c->plan.find(colI), nullptr);
  const ir::Block* colJ = findLoop(c->graph, "conduct_col/j#1");
  ASSERT_NE(colJ, nullptr);
  const LoopPlan* cp = c->plan.find(colJ);
  ASSERT_NE(cp, nullptr);
  EXPECT_TRUE(cp->replicated);
  EXPECT_EQ(cp->mode, RfMode::OwnedColsOfRow);
  EXPECT_NE(cp->rowIndexVal, ir::kNoVal);

  // The descending back-substitution nest behaves the same.
  const ir::Block* colJ2 = findLoop(c->graph, "conduct_col/j#3");
  ASSERT_NE(colJ2, nullptr);
  const LoopPlan* cp2 = c->plan.find(colJ2);
  ASSERT_NE(cp2, nullptr);
  EXPECT_TRUE(cp2->replicated);
  EXPECT_EQ(cp2->mode, RfMode::OwnedColsOfRow);

  // The time-step while loop never distributes.
  const ir::Block* wl = findLoop(c->graph, "main/while#2");
  ASSERT_NE(wl, nullptr);
  EXPECT_EQ(c->plan.find(wl), nullptr);
}

TEST(Plan, FunctionsCalledFromReplicatedLoopsStayLocal) {
  auto c = compileOk(R"(
def kernel(m: matrix, n: int, i: int) {
  for j = 0 to n - 1 {
    m[i,j] = real(i + j);
  }
}
def main() -> matrix {
  let n = 8;
  let m = matrix(n, n);
  for i = 0 to n - 1 {
    kernel(m, n, i);
  }
  return m;
}
)");
  // kernel's j loop writes m[i, j]: in isolation it would replicate on
  // dim-1 ownership; but kernel is called per-iteration of a replicated
  // loop, so it must stay local or every PE would duplicate the work.
  const ir::Block* j = findLoop(c->graph, "kernel/j#0");
  ASSERT_NE(j, nullptr);
  EXPECT_EQ(c->plan.find(j), nullptr);
  // main's i loop: no array write with an i subscript at dim 0 inside the
  // loop body itself (the write is hidden in the callee), so main/i falls
  // back to block-range replication... unless the conservative call-LCD
  // rule kicks in. Either way exactly one of the two is replicated.
  EXPECT_EQ(c->plan.numReplicated, 1);
}

TEST(Plan, TriangularUsesRowOwnership) {
  auto c = compileOk(workloads::triangularSource(8));
  const ir::Block* first = findLoop(c->graph, "main/i#0");
  ASSERT_NE(first, nullptr);
  const LoopPlan* lp = c->plan.find(first);
  ASSERT_NE(lp, nullptr);
  EXPECT_TRUE(lp->replicated);
  EXPECT_EQ(lp->mode, RfMode::OwnedRows);
}

TEST(Plan, ForceBlockRangeAblation) {
  auto c = compileOk(workloads::fill2dSource(8, 8),
                     {.distribute = true, .forceBlockRange = true});
  const ir::Block* iLoop = findLoop(c->graph, "main/i#0");
  const LoopPlan* ip = c->plan.find(iLoop);
  ASSERT_NE(ip, nullptr);
  EXPECT_TRUE(ip->replicated);
  EXPECT_EQ(ip->mode, RfMode::BlockRange);
}

TEST(Plan, OffsetWritesCarryIntoRf) {
  auto c = compileOk(R"(
def main() -> array {
  let n = 16;
  let a = array(n);
  a[0] = 0.0;
  for i = 0 to n - 2 {
    a[i + 1] = real(i);
  }
  return a;
}
)");
  const ir::Block* loop = findLoop(c->graph, "main/i#0");
  const LoopPlan* lp = c->plan.find(loop);
  ASSERT_NE(lp, nullptr);
  EXPECT_TRUE(lp->replicated);
  EXPECT_EQ(lp->offset, 1);
}

TEST(Plan, DescribeMentionsDecisions) {
  auto c = compileOk(workloads::simpleSource(8, 1));
  std::string desc = c->plan.describe(c->graph);
  EXPECT_NE(desc.find("REPLICATED"), std::string::npos);
  EXPECT_NE(desc.find("owned-rows"), std::string::npos);
  EXPECT_NE(desc.find("owned-cols"), std::string::npos);
  EXPECT_NE(desc.find("local"), std::string::npos);
}

TEST(Plan, StencilWhileBodyLoopsReplicate) {
  auto c = compileOk(workloads::stencilSource(8, 2));
  // The i loop inside the while body replicates even though the while
  // itself is carried.
  const ir::Block* wl = findLoop(c->graph, "main/while#2");
  ASSERT_NE(wl, nullptr);
  EXPECT_EQ(c->plan.find(wl), nullptr);
  EXPECT_GE(c->plan.numReplicated, 2);  // init nest + step nest
}

}  // namespace
}  // namespace pods
