// Native threaded-runtime tests: the same SP programs executing on real
// host threads must produce bit-identical results to every other engine,
// under repetition (to shake out races) and across worker counts, and must
// detect the same program errors (violations, deadlocks).
#include <gtest/gtest.h>

#include "core/pods.hpp"
#include "workloads/kernels.hpp"
#include "workloads/simple.hpp"

namespace pods {
namespace {

std::unique_ptr<Compiled> compileOk(const std::string& src,
                                    CompileOptions opts = {}) {
  CompileResult cr = compile(src, opts);
  EXPECT_TRUE(cr.ok) << cr.diagnostics;
  return std::move(cr.compiled);
}

TEST(Native, MatchesSequentialOnKernels) {
  struct Case {
    const char* name;
    std::string src;
  };
  const Case cases[] = {
      {"fill2d", workloads::fill2dSource(12, 7)},
      {"matmul", workloads::matmulSource(10)},
      {"stencil", workloads::stencilSource(12, 2)},
      {"reduce", workloads::reduceSource(150)},
      {"triangular", workloads::triangularSource(20)},
  };
  for (const Case& c : cases) {
    auto compiled = compileOk(c.src);
    BaselineRun seq = runSequentialBaseline(*compiled);
    ASSERT_TRUE(seq.stats.ok) << c.name << ": " << seq.stats.error;
    native::NativeConfig nc;
    nc.numWorkers = 4;
    NativeRun run = runNative(*compiled, nc);
    ASSERT_TRUE(run.stats.ok) << c.name << ": " << run.stats.error;
    std::string why;
    EXPECT_TRUE(sameOutputs(run.out, seq.out, &why)) << c.name << ": " << why;
  }
}

TEST(Native, SimpleBenchmarkEndToEnd) {
  auto c = compileOk(workloads::simpleSource(12, 2));
  BaselineRun seq = runSequentialBaseline(*c);
  ASSERT_TRUE(seq.stats.ok);
  native::NativeConfig nc;
  nc.numWorkers = 8;
  NativeRun run = runNative(*c, nc);
  ASSERT_TRUE(run.stats.ok) << run.stats.error;
  std::string why;
  EXPECT_TRUE(sameOutputs(run.out, seq.out, &why)) << why;
  EXPECT_GT(run.stats.counters.get("native.frames"), 10);
  EXPECT_GT(run.stats.counters.get("native.instructions"), 1000);
  // Frame ledger balances: every created frame was retired through END.
  EXPECT_EQ(run.stats.counters.get("native.framesCreated"),
            run.stats.counters.get("native.framesRetired"));
  EXPECT_EQ(run.stats.counters.get("native.framesLive"), 0);
}

TEST(Native, DeterministicAcrossWorkerCountsAndReruns) {
  auto c = compileOk(workloads::stencilSource(10, 2));
  BaselineRun seq = runSequentialBaseline(*c);
  ASSERT_TRUE(seq.stats.ok);
  for (int workers : {1, 2, 3, 8, 16}) {
    for (int rep = 0; rep < 3; ++rep) {
      native::NativeConfig nc;
      nc.numWorkers = workers;
      NativeRun run = runNative(*c, nc);
      ASSERT_TRUE(run.stats.ok)
          << "workers=" << workers << " rep=" << rep << ": "
          << run.stats.error;
      std::string why;
      EXPECT_TRUE(sameOutputs(run.out, seq.out, &why))
          << "workers=" << workers << " rep=" << rep << ": " << why;
    }
  }
}

TEST(Native, SmallSliceBudgetStillCorrect) {
  // Tiny slices force frequent inbox drains and requeues.
  auto c = compileOk(workloads::matmulSource(8));
  BaselineRun seq = runSequentialBaseline(*c);
  native::NativeConfig nc;
  nc.numWorkers = 4;
  nc.sliceInstructions = 3;
  NativeRun run = runNative(*c, nc);
  ASSERT_TRUE(run.stats.ok) << run.stats.error;
  std::string why;
  EXPECT_TRUE(sameOutputs(run.out, seq.out, &why)) << why;
}

TEST(Native, SingleAssignmentViolationDetected) {
  auto c = compileOk(R"(
def main() -> real {
  let a = array(4);
  a[1] = 1.0;
  a[1] = 2.0;
  return a[1];
}
)", {.distribute = false});
  native::NativeConfig nc;
  nc.numWorkers = 2;
  NativeRun run = runNative(*c, nc);
  EXPECT_FALSE(run.stats.ok);
  EXPECT_NE(run.stats.error.find("single-assignment"), std::string::npos);
}

TEST(Native, DeadlockDetected) {
  auto c = compileOk(R"(
def main() -> real {
  let a = array(4);
  a[0] = 1.0;
  return a[3];
}
)", {.distribute = false});
  native::NativeConfig nc;
  nc.numWorkers = 3;
  NativeRun run = runNative(*c, nc);
  EXPECT_FALSE(run.stats.ok);
  EXPECT_NE(run.stats.error.find("deadlock"), std::string::npos);
}

TEST(Native, OutOfBoundsDetected) {
  auto c = compileOk(R"(
def main() -> real {
  let a = array(4);
  a[9] = 1.0;
  return 0.0;
}
)", {.distribute = false});
  native::NativeConfig nc;
  nc.numWorkers = 2;
  NativeRun run = runNative(*c, nc);
  EXPECT_FALSE(run.stats.ok);
  EXPECT_NE(run.stats.error.find("out of bounds"), std::string::npos);
}

TEST(Native, RecursionWorks) {
  auto c = compileOk(R"(
def fib(n: int) -> int {
  let r = if n < 2 then n else fib(n - 1) + fib(n - 2);
  return r;
}
def main() -> int { return fib(15); }
)");
  native::NativeConfig nc;
  nc.numWorkers = 4;
  NativeRun run = runNative(*c, nc);
  ASSERT_TRUE(run.stats.ok) << run.stats.error;
  EXPECT_EQ(run.out.results[0].asInt(), 610);
}

TEST(Native, TupleResultsGathered) {
  auto c = compileOk(R"(
def main() {
  let a = array(5);
  for i = 0 to 4 { a[i] = real(i) * 1.5; }
  return a, 99;
}
)");
  native::NativeConfig nc;
  nc.numWorkers = 3;
  NativeRun run = runNative(*c, nc);
  ASSERT_TRUE(run.stats.ok) << run.stats.error;
  ASSERT_EQ(run.out.results.size(), 2u);
  ASSERT_TRUE(run.out.arrays[0].has_value());
  EXPECT_DOUBLE_EQ((*run.out.arrays[0]).elems[4].asReal(), 6.0);
  EXPECT_EQ(run.out.results[1].asInt(), 99);
}

TEST(Native, MatchesSimulatorOutputs) {
  // The two machines implement the same model at different fidelity; their
  // *results* must agree exactly.
  auto c = compileOk(workloads::conductionOnlySource(10, 1));
  sim::MachineConfig mc;
  mc.numPEs = 4;
  PodsRun simRun = runPods(*c, mc);
  ASSERT_TRUE(simRun.stats.ok) << simRun.stats.error;
  native::NativeConfig nc;
  nc.numWorkers = 4;
  NativeRun natRun = runNative(*c, nc);
  ASSERT_TRUE(natRun.stats.ok) << natRun.stats.error;
  std::string why;
  EXPECT_TRUE(sameOutputs(natRun.out, simRun.out, &why)) << why;
}

// --- wire array store (--store=wire) ----------------------------------------

/// The net.am.* request/serve ledgers must balance in any fault-free run:
/// every remote read answered, every write applied, every shape query
/// served, every deferred read eventually filled.
void expectBalancedAmLedger(const NativeRun& run, const std::string& what) {
  EXPECT_EQ(run.stats.counters.get("net.am.readReqSent"),
            run.stats.counters.get("net.am.readReqServed"))
      << what;
  EXPECT_EQ(run.stats.counters.get("net.am.writeSent"),
            run.stats.counters.get("net.am.writeApplied"))
      << what;
  EXPECT_EQ(run.stats.counters.get("net.am.dimReqSent"),
            run.stats.counters.get("net.am.dimReqServed"))
      << what;
  EXPECT_EQ(run.stats.counters.get("net.am.parks"),
            run.stats.counters.get("net.am.parkFills"))
      << what;
  // The wire store must never touch the shared heap / shm segment.
  EXPECT_EQ(run.stats.counters.get("native.shmArrayOps"), 0) << what;
}

TEST(WireStore, KernelsBitIdenticalToLocalStore) {
  constexpr const char* kFib = R"(
def fib(n: int) -> int {
  let r = if n < 2 then n else fib(n - 1) + fib(n - 2);
  return r;
}
def main() -> int { return fib(13); }
)";
  const std::string sources[] = {
      workloads::simpleSource(16, 2),  std::string(kFib),
      workloads::fill2dSource(12, 7),  workloads::matmulSource(10),
      workloads::stencilSource(12, 2), workloads::reduceSource(150),
      workloads::triangularSource(20)};
  std::int64_t remoteWrites = 0;
  for (const std::string& src : sources) {
    auto c = compileOk(src);
    native::NativeConfig local;
    local.numWorkers = 4;
    NativeRun ref = runNative(*c, local);
    ASSERT_TRUE(ref.stats.ok) << ref.stats.error;

    native::NativeConfig wire = local;
    wire.store = native::StoreKind::Wire;
    NativeRun run = runNative(*c, wire);
    ASSERT_TRUE(run.stats.ok) << run.stats.error;
    std::string why;
    EXPECT_TRUE(sameOutputs(run.out, ref.out, &why)) << why;
    expectBalancedAmLedger(run, "kernel");
    EXPECT_EQ(run.stats.counters.get("native.framesCreated"),
              run.stats.counters.get("native.framesRetired"));
    remoteWrites += run.stats.counters.get("net.am.writeSent");
  }
  // Iteration placement keeps most writes owner-local, but the suite as a
  // whole must exercise the remote-write path (stencil boundary rows land
  // on foreign pages).
  EXPECT_GT(remoteWrites, 0);
}

TEST(WireStore, AdversarialOwnershipMatchesSequential) {
  // Every read in b's loop targets the block-layout mirror element — the
  // worst case for owner-serviced reads. Swept across uniform and skewed
  // page ownership; always compared against the sequential evaluator.
  auto c = compileOk(workloads::reversalSource(96));
  BaselineRun seq = runSequentialBaseline(*c);
  ASSERT_TRUE(seq.stats.ok) << seq.stats.error;
  for (const std::vector<std::int64_t>& weights :
       {std::vector<std::int64_t>{}, std::vector<std::int64_t>{1, 7, 1, 7}}) {
    native::NativeConfig nc;
    nc.numWorkers = 4;
    nc.pageElems = 8;  // small pages spread ownership across all PEs
    nc.peWeights = weights;
    nc.store = native::StoreKind::Wire;
    NativeRun run = runNative(*c, nc);
    const std::string what = weights.empty() ? "uniform" : "skewed";
    ASSERT_TRUE(run.stats.ok) << what << ": " << run.stats.error;
    std::string why;
    EXPECT_TRUE(sameOutputs(run.out, seq.out, &why)) << what << ": " << why;
    expectBalancedAmLedger(run, what);
    // The reversal pattern must actually generate remote reads. Writes
    // stay owner-local here by design: iteration placement follows the
    // written element's ownership (Data-Distributed Execution), and the
    // mirror read is what crosses PEs.
    EXPECT_GT(run.stats.counters.get("net.am.readReqSent"), 0) << what;
    EXPECT_EQ(run.stats.counters.get("net.am.writeSent"), 0) << what;
  }
}

TEST(WireStore, RepeatRunsBitIdentical) {
  auto c = compileOk(workloads::reversalSource(64));
  native::NativeConfig nc;
  nc.numWorkers = 4;
  nc.store = native::StoreKind::Wire;
  NativeRun first = runNative(*c, nc);
  ASSERT_TRUE(first.stats.ok) << first.stats.error;
  for (int rep = 0; rep < 3; ++rep) {
    NativeRun run = runNative(*c, nc);
    ASSERT_TRUE(run.stats.ok) << "rep=" << rep << ": " << run.stats.error;
    std::string why;
    EXPECT_TRUE(sameOutputs(run.out, first.out, &why))
        << "rep=" << rep << ": " << why;
  }
}

TEST(WireStore, SingleAssignmentViolationStillDetected) {
  // The owner-side write path must keep LocalStore's strictness: a remote
  // double write is a detected violation, not a silent overwrite.
  auto c = compileOk(R"(
def main() -> real {
  let a = array(4);
  a[1] = 1.0;
  a[1] = 2.0;
  return a[1];
}
)", {.distribute = false});
  native::NativeConfig nc;
  nc.numWorkers = 2;
  nc.store = native::StoreKind::Wire;
  NativeRun run = runNative(*c, nc);
  EXPECT_FALSE(run.stats.ok);
  EXPECT_NE(run.stats.error.find("single-assignment"), std::string::npos);
}

TEST(WireStore, DeadlockStillDetected) {
  // A read of a never-written element parks at the owner forever; counting
  // quiescence must still converge and call it a deadlock.
  auto c = compileOk(R"(
def main() -> real {
  let a = array(4);
  a[0] = 1.0;
  return a[3];
}
)", {.distribute = false});
  native::NativeConfig nc;
  nc.numWorkers = 3;
  nc.store = native::StoreKind::Wire;
  NativeRun run = runNative(*c, nc);
  EXPECT_FALSE(run.stats.ok);
  EXPECT_NE(run.stats.error.find("deadlock"), std::string::npos);
}

TEST(Native, UdpTransportMatchesInboxOnKernels) {
  // Smoke coverage of the real-socket transport inside the main suite; the
  // full sweeps (fault fuzz, kill+restart, per-link counters) live in
  // pods_transport_tests.
  for (const std::string& src :
       {workloads::matmulSource(10), workloads::reduceSource(150)}) {
    auto c = compileOk(src);
    native::NativeConfig inbox;
    inbox.numWorkers = 4;
    NativeRun ref = runNative(*c, inbox);
    ASSERT_TRUE(ref.stats.ok) << ref.stats.error;
    native::NativeConfig udp = inbox;
    udp.transport = native::TransportKind::Udp;
    NativeRun run = runNative(*c, udp);
    ASSERT_TRUE(run.stats.ok) << run.stats.error;
    std::string why;
    EXPECT_TRUE(sameOutputs(run.out, ref.out, &why)) << why;
    EXPECT_GT(run.stats.counters.get("net.udp.tokensSent"), 0);
    EXPECT_EQ(run.stats.counters.get("native.framesLive"), 0);
  }
}

}  // namespace
}  // namespace pods
