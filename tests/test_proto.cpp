// Delivery-protocol core tests (docs/ARCHITECTURE.md, "Delivery protocol
// core").
//
// Three kinds of property live here:
//   1. proto::Delivery driven directly through drop / duplicate / reorder /
//      give-up traces — the state machine alone, no engine, no clock;
//   2. counter parity: the same program + fault config on the simulator and
//      the native runtime must emit the identical *set* of protocol counter
//      names (the canonical `net.retx.*` / `fault.*` namespace), so
//      dashboards and the bench archive can diff engines field-for-field;
//   3. weighted ownership end-to-end: a skewed --pe-weights run completes
//      bit-exact (single assignment makes placement invisible to values)
//      while visibly shifting per-link traffic, and the recovery ledgers
//      stay bounded under kill + loss because retired contexts prune their
//      dedup keys and mint-log entries.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "core/pods.hpp"
#include "proto/delivery.hpp"
#include "support/fault.hpp"
#include "workloads/simple.hpp"

namespace pods {
namespace {

constexpr const char* kFibSource = R"(
def fib(n: int) -> int {
  let r = if n < 2 then n else fib(n - 1) + fib(n - 2);
  return r;
}
def main() -> int { return fib(13); }
)";

std::unique_ptr<Compiled> compileOk(const std::string& src) {
  CompileResult cr = compile(src, {});
  EXPECT_TRUE(cr.ok) << cr.diagnostics;
  return std::move(cr.compiled);
}

// --- RetryPolicy ------------------------------------------------------------

TEST(RetryPolicy, BackoffDoublesThenCaps) {
  proto::RetryPolicy p;
  p.rtoUs = 100.0;
  p.maxBackoffDoublings = 3;
  EXPECT_DOUBLE_EQ(p.backoffUs(1, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(p.backoffUs(2, 100.0), 200.0);
  EXPECT_DOUBLE_EQ(p.backoffUs(3, 100.0), 400.0);
  EXPECT_DOUBLE_EQ(p.backoffUs(4, 100.0), 800.0);
  EXPECT_DOUBLE_EQ(p.backoffUs(5, 100.0), 800.0);   // capped
  EXPECT_DOUBLE_EQ(p.backoffUs(50, 100.0), 800.0);  // still capped
}

TEST(RetryPolicy, GiveUpBoundaryIsInclusive) {
  proto::RetryPolicy p;
  p.maxAttempts = 3;
  EXPECT_FALSE(p.giveUpAt(1));
  EXPECT_FALSE(p.giveUpAt(2));
  EXPECT_TRUE(p.giveUpAt(3));
  EXPECT_TRUE(p.giveUpAt(4));
}

TEST(RetryPolicy, FaultFreeFloorOnlyRaises) {
  proto::RetryPolicy p;
  p.rtoUs = 500.0;
  p.faultFreeFloorUs = 5000.0;
  EXPECT_DOUBLE_EQ(p.baseRtoUs(/*faultsEnabled=*/true), 500.0);
  EXPECT_DOUBLE_EQ(p.baseRtoUs(/*faultsEnabled=*/false), 5000.0);
  p.rtoUs = 9000.0;  // already above the floor: honored as-is
  EXPECT_DOUBLE_EQ(p.baseRtoUs(false), 9000.0);
}

// --- Delivery sender window -------------------------------------------------

TEST(DeliverySender, AckRetiresTheMessage) {
  proto::Delivery d(proto::RetryPolicy{}, true);
  d.onSend(7);
  EXPECT_TRUE(d.inFlight(7));
  d.onAck(7);
  EXPECT_FALSE(d.inFlight(7));
  // A timeout racing the ack is stale, not a retransmit.
  EXPECT_EQ(d.onTimeout(7).kind, proto::TimeoutDecision::Kind::Stale);
  d.onAck(7);  // duplicate ack: harmless
  EXPECT_EQ(d.windowSize(), 0u);
}

TEST(DeliverySender, DropTraceRetransmitsThenGivesUp) {
  proto::RetryPolicy p;
  p.rtoUs = 100.0;
  p.maxAttempts = 5;
  p.maxBackoffDoublings = 2;
  proto::Delivery d(p, true);
  d.onSend(1);
  // Attempts 1..4 time out and retransmit with doubling (capped) backoff.
  double expected[] = {200.0, 400.0, 400.0};
  for (int i = 0; i < 3; ++i) {
    const proto::TimeoutDecision td = d.onTimeout(1);
    ASSERT_EQ(td.kind, proto::TimeoutDecision::Kind::Retransmit) << i;
    EXPECT_EQ(td.attempt, i + 2);
    EXPECT_DOUBLE_EQ(td.backoffUs, expected[i]);
  }
  ASSERT_EQ(d.onTimeout(1).kind, proto::TimeoutDecision::Kind::Retransmit);
  // Attempt 5 == maxAttempts: the next timeout gives up and evicts.
  const proto::TimeoutDecision gu = d.onTimeout(1);
  ASSERT_EQ(gu.kind, proto::TimeoutDecision::Kind::GiveUp);
  EXPECT_EQ(gu.attempt, 5);
  EXPECT_FALSE(d.inFlight(1));
  Counters c;
  d.addStats(c);
  EXPECT_EQ(c.get(proto::kResent), 4);
  EXPECT_EQ(c.get(proto::kGiveUps), 1);
}

TEST(DeliverySender, ExpectedAttemptGuardsSupersededTimers) {
  proto::Delivery d(proto::RetryPolicy{}, true);
  d.onSend(9);
  // The simulator's timer events carry the attempt they were armed for: an
  // old timer (attempt 1) firing after a retransmit bumped the window to 2
  // must be ignored.
  ASSERT_EQ(d.onTimeout(9, 1).kind, proto::TimeoutDecision::Kind::Retransmit);
  EXPECT_EQ(d.onTimeout(9, 1).kind, proto::TimeoutDecision::Kind::Stale);
  EXPECT_EQ(d.onTimeout(9, 2).kind, proto::TimeoutDecision::Kind::Retransmit);
  EXPECT_EQ(d.onTimeout(42).kind, proto::TimeoutDecision::Kind::Stale);
}

// --- Delivery per-link sequence windows (batched drivers) --------------------

TEST(DeliveryBatchWindow, PackLinkMsgIdRoundTripsAndStaysNonzero) {
  const std::uint64_t id = proto::Delivery::packLinkMsgId(3, 7, 42);
  EXPECT_EQ(proto::Delivery::linkMsgIdSeq(id), 42u);
  EXPECT_EQ(proto::Delivery::linkMsgIdLink(id),
            proto::Delivery::linkMsgIdLink(
                proto::Delivery::packLinkMsgId(3, 7, 9999)));
  EXPECT_NE(proto::Delivery::linkMsgIdLink(id),
            proto::Delivery::linkMsgIdLink(
                proto::Delivery::packLinkMsgId(7, 3, 42)));
  // seq is 1-based, so every link msgId is nonzero (accept()'s "0 means
  // unrouted" convention stays safe).
  EXPECT_NE(proto::Delivery::packLinkMsgId(0, 0, 1), 0u);
}

TEST(DeliveryBatchWindow, CumAckRetiresContiguousPrefix) {
  proto::Delivery d(proto::RetryPolicy{}, true);
  const std::uint64_t first = proto::Delivery::packLinkMsgId(1, 2, 1);
  d.onSendBatch(first, 5);  // seqs 1..5 in flight
  EXPECT_EQ(d.windowSize(), 5u);

  auto retired = d.onCumAck(1, 2, 3, 0);  // everything through seq 3
  ASSERT_EQ(retired.size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i)
    EXPECT_EQ(proto::Delivery::linkMsgIdSeq(retired[i]), i + 1);
  EXPECT_EQ(d.windowSize(), 2u);
  EXPECT_FALSE(d.inFlight(first));
  EXPECT_TRUE(d.inFlight(first + 3));

  // A later (cumulative) ack re-covering the prefix is a harmless no-op.
  EXPECT_TRUE(d.onCumAck(1, 2, 2, 0).empty());
  // Acks for a different link never touch this window.
  EXPECT_TRUE(d.onCumAck(2, 1, 5, 0).empty());
  EXPECT_EQ(d.windowSize(), 2u);
}

TEST(DeliveryBatchWindow, CumAckBitmapRetiresSelectively) {
  proto::Delivery d(proto::RetryPolicy{}, true);
  const std::uint64_t first = proto::Delivery::packLinkMsgId(0, 1, 1);
  d.onSendBatch(first, 6);  // seqs 1..6
  // cum=1, bitmap bit0 -> seq 2, bit3 -> seq 5: holes at 3, 4, 6.
  auto retired = d.onCumAck(0, 1, 1, 0b1001);
  ASSERT_EQ(retired.size(), 3u);
  EXPECT_EQ(d.windowSize(), 3u);
  EXPECT_TRUE(d.inFlight(first + 2));   // seq 3
  EXPECT_TRUE(d.inFlight(first + 3));   // seq 4
  EXPECT_FALSE(d.inFlight(first + 4));  // seq 5: bitmap-acked
  EXPECT_TRUE(d.inFlight(first + 5));   // seq 6
  // The holes still drive retransmission through the normal window path.
  EXPECT_EQ(d.onTimeout(first + 2).kind,
            proto::TimeoutDecision::Kind::Retransmit);
  EXPECT_EQ(d.onTimeout(first + 4).kind, proto::TimeoutDecision::Kind::Stale);
}

TEST(DeliveryBatchWindow, RetransmittedTokenIsNeverReRegistered) {
  proto::Delivery d(proto::RetryPolicy{}, true);
  const std::uint64_t first = proto::Delivery::packLinkMsgId(2, 4, 1);
  d.onSendBatch(first, 2);
  // A retransmit rides a later batch with its ORIGINAL msgId; only genuinely
  // fresh tokens are batch-registered, so the window stays at one entry per
  // logical message and attempt counts keep climbing monotonically.
  ASSERT_EQ(d.onTimeout(first).attempt, 2);
  EXPECT_EQ(d.windowSize(), 2u);
  ASSERT_EQ(d.onTimeout(first).attempt, 3);
  EXPECT_EQ(d.windowSize(), 2u);
  auto retired = d.onCumAck(2, 4, 2, 0);
  EXPECT_EQ(retired.size(), 2u);
  EXPECT_EQ(d.windowSize(), 0u);
}

TEST(DeliveryBatchWindow, AcceptSeqDedupsAndSeenSeqAgrees) {
  proto::Delivery d(proto::RetryPolicy{}, true);
  EXPECT_FALSE(d.seenSeq(1, 0, 1));
  EXPECT_TRUE(d.acceptSeq(1, 0, 1));
  EXPECT_TRUE(d.seenSeq(1, 0, 1));
  EXPECT_FALSE(d.acceptSeq(1, 0, 1));  // retransmitted duplicate
  // Out-of-order arrival: 3 before 2, both fresh exactly once.
  EXPECT_TRUE(d.acceptSeq(1, 0, 3));
  EXPECT_FALSE(d.acceptSeq(1, 0, 3));
  EXPECT_TRUE(d.acceptSeq(1, 0, 2));
  EXPECT_FALSE(d.acceptSeq(1, 0, 2));  // now inside the contiguous prefix
  // Links are independent: the reverse direction starts fresh.
  EXPECT_TRUE(d.acceptSeq(0, 1, 1));
  Counters c;
  d.addStats(c);
  EXPECT_EQ(c.get(proto::kDupSuppressed), 3);
}

TEST(DeliveryBatchWindow, CumAckViewTracksHolesThenCollapses) {
  proto::Delivery d(proto::RetryPolicy{}, true);
  EXPECT_EQ(d.cumAckView(2, 0).cum, 0u);
  EXPECT_EQ(d.cumAckView(2, 0).bitmap, 0u);
  EXPECT_TRUE(d.acceptSeq(2, 0, 1));
  EXPECT_TRUE(d.acceptSeq(2, 0, 4));
  EXPECT_TRUE(d.acceptSeq(2, 0, 5));
  auto v = d.cumAckView(2, 0);
  EXPECT_EQ(v.cum, 1u);
  EXPECT_EQ(v.bitmap, 0b1100u);  // bits for seqs 4 and 5 (cum+3, cum+4)
  EXPECT_TRUE(d.acceptSeq(2, 0, 2));
  EXPECT_TRUE(d.acceptSeq(2, 0, 3));
  v = d.cumAckView(2, 0);
  EXPECT_EQ(v.cum, 5u);  // prefix collapsed through the former holes
  EXPECT_EQ(v.bitmap, 0u);
}

TEST(DeliveryBatchWindow, ResetReceiverWipesLinkWindows) {
  proto::Delivery d(proto::RetryPolicy{}, true);
  EXPECT_TRUE(d.acceptSeq(3, 1, 1));
  EXPECT_TRUE(d.acceptSeq(3, 1, 2));
  d.resetReceiver();
  // Fail-stop: the link receive window is volatile PE state and rebuilds
  // from scratch; redelivered tokens are fresh again (recovery-log dedup
  // above this layer keeps non-idempotent effects exactly-once).
  EXPECT_FALSE(d.seenSeq(3, 1, 1));
  EXPECT_TRUE(d.acceptSeq(3, 1, 1));
}

// --- Delivery receiver ledger -----------------------------------------------

TEST(DeliveryReceiver, DuplicateMsgIdsAreSuppressedOnce) {
  proto::Delivery d(proto::RetryPolicy{}, true);
  EXPECT_TRUE(d.accept(5));
  EXPECT_FALSE(d.accept(5));  // network duplicate
  EXPECT_FALSE(d.accept(5));  // retransmitted duplicate
  EXPECT_TRUE(d.accept(6));
  // msgId 0 marks a token that never went through reliable delivery.
  EXPECT_TRUE(d.accept(0));
  EXPECT_TRUE(d.accept(0));
  Counters c;
  d.addStats(c);
  EXPECT_EQ(c.get(proto::kDupSuppressed), 2);
}

TEST(DeliveryReceiver, RetiredContextTriagesStragglers) {
  proto::Delivery d(proto::RetryPolicy{}, true);
  EXPECT_FALSE(d.straggler(11));  // live context: token proceeds
  d.retireCtx(11);
  EXPECT_TRUE(d.straggler(11));  // reordered duplicate past END: discard
  EXPECT_FALSE(d.straggler(12));
  Counters c;
  d.addStats(c);
  EXPECT_EQ(c.get(proto::kStragglers), 1);
}

TEST(DeliveryReceiver, FailStopWipesLedgersButKeepsCounters) {
  proto::Delivery d(proto::RetryPolicy{}, true);
  EXPECT_TRUE(d.accept(3));
  EXPECT_FALSE(d.accept(3));
  d.retireCtx(21);
  d.resetReceiver();
  // Ledgers are volatile PE state: gone after the fail-stop...
  EXPECT_TRUE(d.accept(3));
  EXPECT_FALSE(d.straggler(21));
  // ...but history counters describe the whole run and survive.
  Counters c;
  d.addStats(c);
  EXPECT_EQ(c.get(proto::kDupSuppressed), 1);
}

TEST(DeliveryAccounting, CanonicalNamesAreZeroRegistered) {
  proto::Delivery d;
  Counters c;
  d.addStats(c);
  proto::Delivery::registerInjectionCounters(c);
  for (const char* name :
       {proto::kResent, proto::kAcks, proto::kDupSuppressed, proto::kGiveUps,
        proto::kStragglers, proto::kFaultDrops, proto::kFaultDups,
        proto::kFaultDelays, proto::kFaultStalls}) {
    EXPECT_EQ(c.all().count(name), 1u) << name;
    EXPECT_EQ(c.get(name), 0) << name;
  }
}

TEST(DeliveryAccounting, LinkCounterNameFormat) {
  EXPECT_EQ(proto::linkCounterName(0, 3, "tokens"), "net.link.0->3.tokens");
  EXPECT_EQ(proto::linkCounterName(12, 7, "pages"), "net.link.12->7.pages");
}

TEST(DeliveryAccounting, LinkNameCacheKeysOnFullKindString) {
  proto::LinkNameCache cache;
  // "retx" and "rx" share a first letter: a cache keyed on what[0] (the old
  // bug) would alias them and charge one counter for both kinds.
  const std::string retx = cache.name(0, 1, "retx");
  const std::string rx = cache.name(0, 1, "rx");
  EXPECT_EQ(retx, "net.link.0->1.retx");
  EXPECT_EQ(rx, "net.link.0->1.rx");
  EXPECT_NE(retx, rx);
  // Same kind on a different link gets its own entry too.
  EXPECT_EQ(cache.name(1, 0, "retx"), "net.link.1->0.retx");
  // Repeated lookups are stable and return the identical cached string.
  const std::string* first = &cache.name(0, 1, "retx");
  EXPECT_EQ(first, &cache.name(0, 1, "retx"));
  EXPECT_EQ(*first, retx);
}

// --- engine counter parity --------------------------------------------------

/// Protocol-level counter names of a run: the canonical namespaces both
/// engines must agree on. Engine-private counters (sim.* / native.* /
/// net.udp.* / net.link.*) are deliberately outside the contract.
std::set<std::string> protocolNames(const Counters& c) {
  std::set<std::string> names;
  for (const auto& [k, v] : c.all()) {
    if (k.rfind("fault.", 0) == 0 || k.rfind("net.retx.", 0) == 0 ||
        k == "tokens.straggler") {
      names.insert(k);
    }
  }
  return names;
}

TEST(CounterParity, SimAndNativeEmitTheSameProtocolCounterSet) {
  auto c = compileOk(workloads::simpleSource(16, 2));
  FaultConfig fc;
  ASSERT_TRUE(FaultConfig::parse("drop:0.05,dup:0.02,delay:0.05", fc));
  fc.seed = 7;
  fc.retry.rtoUs = 50.0;
  fc.nativeDelayUs = 20.0;

  sim::MachineConfig mc;
  mc.numPEs = 4;
  mc.faults = fc;
  PodsRun simRun = runPods(*c, mc);
  ASSERT_TRUE(simRun.stats.ok) << simRun.stats.error;

  native::NativeConfig nc;
  nc.numWorkers = 4;
  nc.faults = fc;
  NativeRun natRun = runNative(*c, nc);
  ASSERT_TRUE(natRun.stats.ok) << natRun.stats.error;

  const std::set<std::string> simNames = protocolNames(simRun.stats.counters);
  const std::set<std::string> natNames = protocolNames(natRun.stats.counters);
  EXPECT_EQ(simNames, natNames);
  EXPECT_TRUE(simNames.count(proto::kResent));
  EXPECT_TRUE(simNames.count(proto::kDupSuppressed));
  EXPECT_TRUE(simNames.count(proto::kStragglers));
  EXPECT_TRUE(simNames.count(proto::kFaultDrops));
}

TEST(CounterParity, UdpAndInboxEmitTheSameProtocolCounterSet) {
  auto c = compileOk(workloads::simpleSource(16, 2));
  FaultConfig fc;
  ASSERT_TRUE(FaultConfig::parse("drop:0.05,dup:0.02", fc));
  fc.seed = 3;
  fc.retry.rtoUs = 50.0;

  native::NativeConfig inbox;
  inbox.numWorkers = 4;
  inbox.faults = fc;
  NativeRun a = runNative(*c, inbox);
  ASSERT_TRUE(a.stats.ok) << a.stats.error;

  native::NativeConfig udp = inbox;
  udp.transport = native::TransportKind::Udp;
  NativeRun b = runNative(*c, udp);
  ASSERT_TRUE(b.stats.ok) << b.stats.error;

  EXPECT_EQ(protocolNames(a.stats.counters), protocolNames(b.stats.counters));
  std::string why;
  EXPECT_TRUE(sameOutputs(a.out, b.out, &why)) << why;
}

// --- weighted ownership end-to-end ------------------------------------------

std::map<std::string, std::int64_t> linkCounters(const Counters& c) {
  std::map<std::string, std::int64_t> m;
  for (const auto& [k, v] : c.all())
    if (k.rfind("net.link.", 0) == 0) m.emplace(k, v);
  return m;
}

TEST(WeightedOwnership, EqualWeightsAreBitIdenticalOnSim) {
  auto c = compileOk(workloads::simpleSource(16, 2));
  sim::MachineConfig mc;
  mc.numPEs = 4;
  PodsRun ref = runPods(*c, mc);
  ASSERT_TRUE(ref.stats.ok) << ref.stats.error;

  sim::MachineConfig wc = mc;
  wc.peWeights = {3, 3, 3, 3};
  PodsRun run = runPods(*c, wc);
  ASSERT_TRUE(run.stats.ok) << run.stats.error;
  // Equal weights must reproduce the uniform cut exactly: same simulated
  // time, same counters, same outputs — the runs are indistinguishable.
  EXPECT_EQ(run.stats.total.ns, ref.stats.total.ns);
  EXPECT_EQ(run.stats.counters.all(), ref.stats.counters.all());
  std::string why;
  EXPECT_TRUE(sameOutputs(run.out, ref.out, &why)) << why;
}

TEST(WeightedOwnership, SkewedSimpleBitExactWithShiftedLinkTraffic) {
  auto c = compileOk(workloads::simpleSource(16, 2));
  sim::MachineConfig mc;
  mc.numPEs = 4;
  PodsRun ref = runPods(*c, mc);
  ASSERT_TRUE(ref.stats.ok) << ref.stats.error;

  sim::MachineConfig wc = mc;
  wc.peWeights = {6, 1, 1, 1};
  PodsRun run = runPods(*c, wc);
  ASSERT_TRUE(run.stats.ok) << run.stats.error;
  // Placement is invisible to values (single assignment): bit-exact result.
  std::string why;
  EXPECT_TRUE(sameOutputs(run.out, ref.out, &why)) << why;
  // But the traffic matrix must visibly shift: PE 0 owns ~2/3 of every
  // array, so per-link token/page flows cannot match the uniform run.
  EXPECT_NE(linkCounters(run.stats.counters), linkCounters(ref.stats.counters));
}

TEST(WeightedOwnership, SkewedNativeMatchesUniformOutputs) {
  auto c = compileOk(workloads::simpleSource(16, 2));
  native::NativeConfig nc;
  nc.numWorkers = 4;
  NativeRun ref = runNative(*c, nc);
  ASSERT_TRUE(ref.stats.ok) << ref.stats.error;

  native::NativeConfig wc = nc;
  wc.peWeights = {1, 5, 1, 1};
  NativeRun run = runNative(*c, wc);
  ASSERT_TRUE(run.stats.ok) << run.stats.error;
  std::string why;
  EXPECT_TRUE(sameOutputs(run.out, ref.out, &why)) << why;
}

// --- bounded recovery ledgers -----------------------------------------------

// Satellite property of dedup pruning: a long recursive run under kill +
// message loss retires instances continuously, and every END must shed its
// dedup keys and mint-log entries. At quiescence every instance has ENDed,
// so the live-residency counters must read zero — without pruning they grow
// with the total instance count of the run (fib(13) creates ~1100 frames).
TEST(RecoveryLedger, SimKeysAndMintsPrunedByEnd) {
  auto c = compileOk(kFibSource);
  sim::MachineConfig mc;
  mc.numPEs = 4;
  ASSERT_TRUE(FaultConfig::parse("drop:0.03,dup:0.02", mc.faults));
  mc.faults.seed = 5;
  mc.faults.killPe = 1;
  mc.faults.killTimeUs = 900.0;
  mc.faults.killRestartUs = 400.0;
  PodsRun run = runPods(*c, mc);
  ASSERT_TRUE(run.stats.ok) << run.stats.error;
  EXPECT_EQ(run.stats.counters.get("recovery.dedup.liveKeys"), 0);
  EXPECT_EQ(run.stats.counters.get("recovery.mints.live"), 0);
  // The ledger was actually exercised, not trivially empty: fib(13) makes
  // hundreds of instances, and the kill must have fired mid-run.
  EXPECT_GT(run.stats.counters.get("sp.instantiated"), 500);
  EXPECT_EQ(run.stats.counters.get("fault.kills"), 1);
}

TEST(RecoveryLedger, NativeKeysAndMintsPrunedByEnd) {
  auto c = compileOk(kFibSource);
  native::NativeConfig nc;
  nc.numWorkers = 4;
  ASSERT_TRUE(FaultConfig::parse("drop:0.03,dup:0.02", nc.faults));
  nc.faults.seed = 5;
  nc.faults.killPe = 2;
  nc.faults.killTimeUs = 700.0;
  nc.faults.killRestartUs = 100.0;
  nc.faults.retry.rtoUs = 50.0;
  NativeRun run = runNative(*c, nc);
  ASSERT_TRUE(run.stats.ok) << run.stats.error;
  EXPECT_EQ(run.stats.counters.get("recovery.dedup.liveKeys"), 0);
  EXPECT_EQ(run.stats.counters.get("recovery.mints.live"), 0);
  EXPECT_GT(run.stats.counters.get("native.framesCreated"), 500);
}

}  // namespace
}  // namespace pods
