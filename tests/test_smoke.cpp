// End-to-end smoke tests: source -> compile -> run on all three execution
// models, asserting identical outputs (Church-Rosser determinacy).
#include <gtest/gtest.h>

#include "core/pods.hpp"
#include "workloads/kernels.hpp"

namespace pods {
namespace {

TEST(Smoke, Fill2dSequential) {
  auto cr = compile(workloads::fill2dSource(10, 6), {.distribute = false});
  ASSERT_TRUE(cr.ok) << cr.diagnostics;
  BaselineRun seq = runSequentialBaseline(*cr.compiled);
  ASSERT_TRUE(seq.stats.ok) << seq.stats.error;
  ASSERT_EQ(seq.out.results.size(), 1u);
  ASSERT_TRUE(seq.out.arrays[0].has_value());
  const auto& a = *seq.out.arrays[0];
  EXPECT_EQ(a.shape.dim0, 10);
  EXPECT_EQ(a.shape.dim1, 6);
  // A[i,j] = i*10 + j
  EXPECT_DOUBLE_EQ(a.elems[3 * 6 + 4].asReal(), 34.0);
}

TEST(Smoke, Fill2dPodsOnePe) {
  auto cr = compile(workloads::fill2dSource(10, 6), {.distribute = false});
  ASSERT_TRUE(cr.ok) << cr.diagnostics;
  sim::MachineConfig mc;
  mc.numPEs = 1;
  PodsRun run = runPods(*cr.compiled, mc);
  ASSERT_TRUE(run.stats.ok) << run.stats.error;
  BaselineRun seq = runSequentialBaseline(*cr.compiled);
  std::string why;
  EXPECT_TRUE(sameOutputs(run.out, seq.out, &why)) << why;
  EXPECT_GT(run.stats.total.ns, 0);
}

TEST(Smoke, Fill2dPodsDistributed) {
  auto cr = compile(workloads::fill2dSource(10, 6), {.distribute = true});
  ASSERT_TRUE(cr.ok) << cr.diagnostics;
  BaselineRun seq = runSequentialBaseline(*cr.compiled);
  ASSERT_TRUE(seq.stats.ok) << seq.stats.error;
  for (int pes : {1, 2, 3, 4, 8}) {
    sim::MachineConfig mc;
    mc.numPEs = pes;
    PodsRun run = runPods(*cr.compiled, mc);
    ASSERT_TRUE(run.stats.ok) << "PEs=" << pes << ": " << run.stats.error;
    std::string why;
    EXPECT_TRUE(sameOutputs(run.out, seq.out, &why))
        << "PEs=" << pes << ": " << why;
  }
}

TEST(Smoke, ReduceAcrossModels) {
  auto cr = compile(workloads::reduceSource(100));
  ASSERT_TRUE(cr.ok) << cr.diagnostics;
  BaselineRun seq = runSequentialBaseline(*cr.compiled);
  ASSERT_TRUE(seq.stats.ok) << seq.stats.error;
  BaselineRun sta = runStaticBaseline(*cr.compiled, 4);
  ASSERT_TRUE(sta.stats.ok) << sta.stats.error;
  sim::MachineConfig mc;
  mc.numPEs = 4;
  PodsRun pods = runPods(*cr.compiled, mc);
  ASSERT_TRUE(pods.stats.ok) << pods.stats.error;
  std::string why;
  EXPECT_TRUE(sameOutputs(seq.out, sta.out, &why)) << why;
  EXPECT_TRUE(sameOutputs(seq.out, pods.out, &why)) << why;
}

}  // namespace
}  // namespace pods
