// Cross-model integration tests: every workload must produce bit-identical
// outputs on the PODS machine (across PE counts and page sizes), the static
// baseline, and the sequential evaluator — the Church-Rosser determinacy the
// paper argues for. Parameterized over (workload, PE count).
#include <gtest/gtest.h>

#include "core/pods.hpp"
#include "workloads/kernels.hpp"
#include "workloads/simple.hpp"

namespace pods {
namespace {

struct Scenario {
  const char* name;
  std::string source;
  int pes;
};

std::ostream& operator<<(std::ostream& os, const Scenario& s) {
  return os << s.name << "/PE" << s.pes;
}

class CrossModel : public ::testing::TestWithParam<Scenario> {};

TEST_P(CrossModel, AllModelsAgree) {
  const Scenario& s = GetParam();
  CompileResult cr = compile(s.source);
  ASSERT_TRUE(cr.ok) << cr.diagnostics;
  const Compiled& c = *cr.compiled;

  BaselineRun seq = runSequentialBaseline(c);
  ASSERT_TRUE(seq.stats.ok) << seq.stats.error;

  BaselineRun st = runStaticBaseline(c, s.pes);
  ASSERT_TRUE(st.stats.ok) << st.stats.error;
  std::string why;
  EXPECT_TRUE(sameOutputs(st.out, seq.out, &why)) << "static: " << why;

  sim::MachineConfig mc;
  mc.numPEs = s.pes;
  PodsRun pods = runPods(c, mc);
  ASSERT_TRUE(pods.stats.ok) << pods.stats.error;
  EXPECT_TRUE(sameOutputs(pods.out, seq.out, &why)) << "pods: " << why;
}

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  struct Src {
    const char* name;
    std::string text;
  };
  const Src sources[] = {
      {"fill2d", workloads::fill2dSource(13, 9)},
      {"matmul", workloads::matmulSource(10)},
      {"stencil", workloads::stencilSource(12, 3)},
      {"reduce", workloads::reduceSource(200)},
      {"triangular", workloads::triangularSource(24)},
      {"simple", workloads::simpleSource(8, 2)},
      {"conduction", workloads::conductionOnlySource(10, 2)},
  };
  for (const Src& s : sources) {
    for (int pes : {1, 2, 5, 8}) {
      out.push_back({s.name, s.text, pes});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Workloads, CrossModel, ::testing::ValuesIn(scenarios()),
                         [](const ::testing::TestParamInfo<Scenario>& info) {
                           return std::string(info.param.name) + "_PE" +
                                  std::to_string(info.param.pes);
                         });

TEST(Integration, CompileOncRunAnywhere) {
  // One compiled artifact runs correctly at every machine size.
  CompileResult cr = compile(workloads::stencilSource(10, 2));
  ASSERT_TRUE(cr.ok);
  BaselineRun seq = runSequentialBaseline(*cr.compiled);
  for (int pes : {1, 3, 7, 16, 32}) {
    sim::MachineConfig mc;
    mc.numPEs = pes;
    PodsRun run = runPods(*cr.compiled, mc);
    ASSERT_TRUE(run.stats.ok) << "pes=" << pes << ": " << run.stats.error;
    std::string why;
    EXPECT_TRUE(sameOutputs(run.out, seq.out, &why)) << why;
  }
}

TEST(Integration, SpeedupIsMonotoneEnough) {
  // Parallel work must not get slower when doubling PEs at small counts.
  CompileResult cr = compile(workloads::fill2dSource(64, 32));
  ASSERT_TRUE(cr.ok);
  sim::MachineConfig mc;
  mc.numPEs = 1;
  SimTime t1 = runPods(*cr.compiled, mc).stats.total;
  mc.numPEs = 2;
  SimTime t2 = runPods(*cr.compiled, mc).stats.total;
  mc.numPEs = 4;
  SimTime t4 = runPods(*cr.compiled, mc).stats.total;
  EXPECT_LT(t2.ns, t1.ns);
  EXPECT_LT(t4.ns, t2.ns);
}

TEST(Integration, PodsOverheadBounded) {
  // PODS on one PE is slower than the conventional sequential version but
  // "not grossly inefficient" (the paper saw about 2x on conduction).
  CompileResult cr = compile(workloads::conductionOnlySource(16, 1));
  ASSERT_TRUE(cr.ok);
  BaselineRun seq = runSequentialBaseline(*cr.compiled);
  sim::MachineConfig mc;
  mc.numPEs = 1;
  PodsRun pods = runPods(*cr.compiled, mc);
  ASSERT_TRUE(seq.stats.ok);
  ASSERT_TRUE(pods.stats.ok);
  double ratio = static_cast<double>(pods.stats.total.ns) /
                 static_cast<double>(seq.stats.total.ns);
  EXPECT_GE(ratio, 1.0);
  EXPECT_LE(ratio, 3.0);
}

TEST(Integration, RfPlacementAblationStaysCorrect) {
  CompileResult a = compile(workloads::stencilSource(12, 1));
  CompileResult b = compile(workloads::stencilSource(12, 1),
                            {.distribute = true, .forceBlockRange = true});
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  sim::MachineConfig mc;
  mc.numPEs = 6;
  PodsRun ra = runPods(*a.compiled, mc);
  PodsRun rb = runPods(*b.compiled, mc);
  ASSERT_TRUE(ra.stats.ok) << ra.stats.error;
  ASSERT_TRUE(rb.stats.ok) << rb.stats.error;
  std::string why;
  EXPECT_TRUE(sameOutputs(ra.out, rb.out, &why)) << why;
}

}  // namespace
}  // namespace pods
