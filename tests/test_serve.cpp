// Serving-daemon tests (src/serve/).
//
// Three layers, innermost first: the serve wire frames (Welcome / Submit /
// CacheRef / JobResult / Busy) through the same all-or-nothing decode
// discipline as every other ctl frame; JobRunner pure (warm pool, compiled
// cache, admission control, deadline abort) with no sockets; and the full
// Daemon + Client stack over a real Unix-domain socket — including the
// multi-tenancy contract this PR exists for: concurrent jobs are
// bit-identical to the sequential engine, per-job counters are identical
// across tenants, an aborted job leaves zero residue in survivors, and a
// garbage client is counted and dropped without taking the daemon down.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/pods.hpp"
#include "proto/ctl.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/serve.hpp"
#include "workloads/simple.hpp"

namespace pods {
namespace serve {
namespace {

using proto::ctl::BusyMsg;
using proto::ctl::JobResultMsg;
using proto::ctl::SubmitMsg;
using proto::ctl::WelcomeMsg;

// ---------------------------------------------------------------------------
// Wire frames
// ---------------------------------------------------------------------------

TEST(ServeProto, WelcomeRoundTrip) {
  WelcomeMsg m;
  m.cfgHash = 0x1234567890ABCDEFull;
  m.pes = 7;
  m.pageElems = 48;
  m.maxInflight = 3;
  m.maxQueue = 9;
  std::vector<std::uint8_t> buf;
  proto::ctl::encodeWelcome(m, buf);
  WelcomeMsg d;
  ASSERT_TRUE(proto::ctl::decodeWelcome(buf.data(), buf.size(), d));
  EXPECT_EQ(d.cfgHash, m.cfgHash);
  EXPECT_EQ(d.pes, m.pes);
  EXPECT_EQ(d.pageElems, m.pageElems);
  EXPECT_EQ(d.maxInflight, m.maxInflight);
  EXPECT_EQ(d.maxQueue, m.maxQueue);
}

TEST(ServeProto, SubmitAndCacheRefRoundTrip) {
  SubmitMsg m;
  m.cfgHash = 0xFEEDFACECAFEBEEFull;
  m.clientTag = 41;
  m.timeoutMs = 2500;
  m.source = "function main()\n  return 1\nend\n";
  std::vector<std::uint8_t> buf;
  proto::ctl::encodeSubmit(m, buf);
  SubmitMsg d;
  ASSERT_TRUE(proto::ctl::decodeSubmit(buf.data(), buf.size(), d));
  EXPECT_EQ(d.cfgHash, m.cfgHash);
  EXPECT_EQ(d.clientTag, m.clientTag);
  EXPECT_EQ(d.timeoutMs, m.timeoutMs);
  EXPECT_EQ(d.byHash, 0);
  EXPECT_EQ(d.source, m.source);

  SubmitMsg h;
  h.cfgHash = m.cfgHash;
  h.clientTag = 42;
  h.timeoutMs = 0;
  h.sourceHash = 0xA5A5A5A55A5A5A5Aull;
  buf.clear();
  proto::ctl::encodeCacheRef(h, buf);
  SubmitMsg hd;
  ASSERT_TRUE(proto::ctl::decodeCacheRef(buf.data(), buf.size(), hd));
  EXPECT_EQ(hd.byHash, 1);  // decode marks the wire form
  EXPECT_EQ(hd.sourceHash, h.sourceHash);
  EXPECT_EQ(hd.clientTag, h.clientTag);
}

JobResultMsg sampleJobResult() {
  JobResultMsg m;
  m.clientTag = 11;
  m.jobId = 3;
  m.ok = 1;
  m.cacheHit = 1;
  m.sourceHash = 0x0123456789ABCDEFull;
  m.wallMs = 12.75;
  m.resultSet = {1, 1, 0};
  m.results = {Value::intv(-5), Value::realv(0.0), Value::intv(0)};
  JobResultMsg::OutArray scalar;   // slot 0: plain scalar
  JobResultMsg::OutArray arr;      // slot 1: a 2x2 array result
  arr.present = 1;
  arr.rank = 2;
  arr.dim0 = 2;
  arr.dim1 = 2;
  arr.elems = {Value::realv(1.5), Value::realv(2.5), Value::realv(-3.0),
               Value::realv(4.0)};
  JobResultMsg::OutArray unset;    // slot 2: never stored
  m.arrays = {scalar, arr, unset};
  m.counters = {{"job.3.native.instructions", 1234},
                {"job.3.native.framesCreated", 56}};
  return m;
}

TEST(ServeProto, JobResultRoundTrip) {
  const JobResultMsg m = sampleJobResult();
  std::vector<std::uint8_t> buf;
  proto::ctl::encodeJobResult(m, buf);
  JobResultMsg d;
  ASSERT_TRUE(proto::ctl::decodeJobResult(buf.data(), buf.size(), d));
  EXPECT_EQ(d.clientTag, m.clientTag);
  EXPECT_EQ(d.jobId, m.jobId);
  EXPECT_EQ(d.ok, m.ok);
  EXPECT_EQ(d.cacheHit, m.cacheHit);
  EXPECT_EQ(d.sourceHash, m.sourceHash);
  EXPECT_EQ(d.wallMs, m.wallMs);
  ASSERT_EQ(d.results.size(), m.results.size());
  ASSERT_EQ(d.resultSet, m.resultSet);
  for (std::size_t i = 0; i < m.results.size(); ++i)
    EXPECT_TRUE(d.results[i].identical(m.results[i])) << "slot " << i;
  ASSERT_EQ(d.arrays.size(), m.arrays.size());
  EXPECT_EQ(d.arrays[0].present, 0);
  ASSERT_EQ(d.arrays[1].present, 1);
  EXPECT_EQ(d.arrays[1].rank, 2);
  EXPECT_EQ(d.arrays[1].dim0, 2);
  EXPECT_EQ(d.arrays[1].dim1, 2);
  ASSERT_EQ(d.arrays[1].elems.size(), m.arrays[1].elems.size());
  for (std::size_t i = 0; i < m.arrays[1].elems.size(); ++i)
    EXPECT_TRUE(d.arrays[1].elems[i].identical(m.arrays[1].elems[i]));
  EXPECT_EQ(d.counters, m.counters);
}

TEST(ServeProto, BusyRoundTrip) {
  BusyMsg m;
  m.clientTag = 77;
  m.inflight = 2;
  m.queued = 8;
  m.maxInflight = 2;
  m.maxQueue = 8;
  std::vector<std::uint8_t> buf;
  proto::ctl::encodeBusy(m, buf);
  BusyMsg d;
  ASSERT_TRUE(proto::ctl::decodeBusy(buf.data(), buf.size(), d));
  EXPECT_EQ(d.clientTag, m.clientTag);
  EXPECT_EQ(d.inflight, m.inflight);
  EXPECT_EQ(d.queued, m.queued);
  EXPECT_EQ(d.maxInflight, m.maxInflight);
  EXPECT_EQ(d.maxQueue, m.maxQueue);
}

// All-or-nothing decode: truncation at EVERY byte boundary and trailing
// junk must reject the frame, for every serve payload.
TEST(ServeProtoFuzz, TruncationAndTrailingJunkRejected) {
  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> payloads;

  WelcomeMsg w;
  w.cfgHash = 99;
  w.pes = 4;
  payloads.emplace_back("welcome", std::vector<std::uint8_t>{});
  proto::ctl::encodeWelcome(w, payloads.back().second);

  SubmitMsg s;
  s.cfgHash = 1;
  s.clientTag = 2;
  s.source = "function main() return 1 end";
  payloads.emplace_back("submit", std::vector<std::uint8_t>{});
  proto::ctl::encodeSubmit(s, payloads.back().second);

  SubmitMsg cr;
  cr.cfgHash = 1;
  cr.clientTag = 3;
  cr.sourceHash = 4;
  payloads.emplace_back("cacheref", std::vector<std::uint8_t>{});
  proto::ctl::encodeCacheRef(cr, payloads.back().second);

  payloads.emplace_back("jobresult", std::vector<std::uint8_t>{});
  proto::ctl::encodeJobResult(sampleJobResult(), payloads.back().second);

  BusyMsg b;
  b.clientTag = 5;
  payloads.emplace_back("busy", std::vector<std::uint8_t>{});
  proto::ctl::encodeBusy(b, payloads.back().second);

  for (const auto& [name, buf] : payloads) {
    for (std::size_t cut = 0; cut < buf.size(); ++cut) {
      WelcomeMsg dw;
      SubmitMsg ds;
      JobResultMsg dj;
      BusyMsg db;
      bool any = false;
      if (name == "welcome") any = proto::ctl::decodeWelcome(buf.data(), cut, dw);
      if (name == "submit") any = proto::ctl::decodeSubmit(buf.data(), cut, ds);
      if (name == "cacheref")
        any = proto::ctl::decodeCacheRef(buf.data(), cut, ds);
      if (name == "jobresult")
        any = proto::ctl::decodeJobResult(buf.data(), cut, dj);
      if (name == "busy") any = proto::ctl::decodeBusy(buf.data(), cut, db);
      EXPECT_FALSE(any) << name << " decoded a " << cut << "-byte prefix of "
                        << buf.size();
    }
    std::vector<std::uint8_t> junk = buf;
    junk.push_back(0xAB);
    WelcomeMsg dw;
    SubmitMsg ds;
    JobResultMsg dj;
    BusyMsg db;
    bool any = false;
    if (name == "welcome")
      any = proto::ctl::decodeWelcome(junk.data(), junk.size(), dw);
    if (name == "submit")
      any = proto::ctl::decodeSubmit(junk.data(), junk.size(), ds);
    if (name == "cacheref")
      any = proto::ctl::decodeCacheRef(junk.data(), junk.size(), ds);
    if (name == "jobresult")
      any = proto::ctl::decodeJobResult(junk.data(), junk.size(), dj);
    if (name == "busy") any = proto::ctl::decodeBusy(junk.data(), junk.size(), db);
    EXPECT_FALSE(any) << name << " accepted trailing junk";
  }
}

// The config hash must move when the machine shape moves: the same source
// partitioned for a different PE count is a different program, and a stale
// client must be turned away at the handshake, not served wrong answers.
TEST(ServeHash, ConfigHashTracksMachineShape) {
  ServeConfig a;                    // defaults
  ServeConfig b = a;
  EXPECT_EQ(configHash(a), configHash(b));
  b.pes = a.pes + 1;
  EXPECT_NE(configHash(a), configHash(b));
  b = a;
  b.pageElems = a.pageElems * 2;
  EXPECT_NE(configHash(a), configHash(b));
  // Admission limits are NOT part of the hash — they don't change results.
  b = a;
  b.maxInflight = a.maxInflight + 3;
  b.maxQueue = a.maxQueue + 3;
  b.cacheCapacity = a.cacheCapacity + 3;
  EXPECT_EQ(configHash(a), configHash(b));

  EXPECT_NE(sourceHash("function main() return 1 end"),
            sourceHash("function main() return 2 end"));
}

// ---------------------------------------------------------------------------
// JobRunner (no sockets)
// ---------------------------------------------------------------------------

ProgramOutputs seqReference(const std::string& source) {
  CompileResult cr = compile(source);
  EXPECT_TRUE(cr.ok) << cr.diagnostics;
  BaselineRun seq = runSequentialBaseline(*cr.compiled);
  EXPECT_TRUE(seq.stats.ok) << seq.stats.error;
  return std::move(seq.out);
}

TEST(ServeRunner, MissThenHitBothMatchSequentialEngine) {
  ServeConfig cfg;
  cfg.pes = 4;
  cfg.maxInflight = 1;
  JobRunner runner(cfg);
  const std::string src = workloads::simpleSource(16, 2);
  const ProgramOutputs ref = seqReference(src);

  JobRequest req;
  req.source = src;
  JobReply first = runner.run(req);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_FALSE(first.cacheHit);
  EXPECT_EQ(first.sourceHash, sourceHash(src));
  std::string why;
  EXPECT_TRUE(sameOutputs(first.out, ref, &why)) << why;

  JobReply second = runner.run(req);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_TRUE(second.cacheHit);
  EXPECT_TRUE(sameOutputs(second.out, ref, &why)) << why;
  // A hit is bit-identical to the miss, not merely "close".
  EXPECT_TRUE(sameOutputs(second.out, first.out, &why)) << why;

  // By-handle submit: no source bytes at all, same answer.
  JobRequest byHash;
  byHash.byHash = true;
  byHash.hash = first.sourceHash;
  JobReply third = runner.run(byHash);
  ASSERT_TRUE(third.ok) << third.error;
  EXPECT_TRUE(third.cacheHit);
  EXPECT_TRUE(sameOutputs(third.out, first.out, &why)) << why;

  const Counters st = runner.stats();
  EXPECT_EQ(st.get("serve.submits"), 3);
  EXPECT_EQ(st.get("serve.submits.byHandle"), 1);
  EXPECT_EQ(st.get("serve.cache.misses"), 1);
  EXPECT_EQ(st.get("serve.cache.hits"), 2);
  EXPECT_EQ(st.get("serve.jobs.ok"), 3);
  EXPECT_EQ(st.get("serve.cache.size"), 1);
  // Per-job canonical counters roll up un-namespaced into the aggregate.
  EXPECT_GT(st.get("native.instructions"), 0);
  EXPECT_EQ(st.get("native.framesLive"), 0);
}

TEST(ServeRunner, UnknownHandleIsAStructuredFailure) {
  ServeConfig cfg;
  cfg.pes = 2;
  JobRunner runner(cfg);
  JobRequest req;
  req.byHash = true;
  req.hash = 0xDEAD0000BEEF0000ull;
  JobReply rep = runner.run(req);
  EXPECT_FALSE(rep.busy);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("resubmit"), std::string::npos) << rep.error;
  EXPECT_EQ(runner.stats().get("serve.jobs.failed"), 1);
}

TEST(ServeRunner, CompileErrorIsAStructuredFailure) {
  ServeConfig cfg;
  cfg.pes = 2;
  JobRunner runner(cfg);
  JobRequest req;
  req.source = "function main( this is not IdLite";
  JobReply rep = runner.run(req);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("compile failed"), std::string::npos) << rep.error;
  // A broken program must not poison the cache.
  EXPECT_EQ(runner.stats().get("serve.cache.size"), 0);
}

TEST(ServeRunner, LruEvictionEvictsOldestAndStaysBitIdentical) {
  ServeConfig cfg;
  cfg.pes = 2;
  cfg.cacheCapacity = 2;
  JobRunner runner(cfg);
  const std::string a = workloads::simpleSource(8, 1);
  const std::string b = workloads::simpleSource(8, 2);
  const std::string c = workloads::simpleSource(10, 1);

  JobRequest req;
  req.source = a;
  JobReply firstA = runner.run(req);
  ASSERT_TRUE(firstA.ok) << firstA.error;
  req.source = b;
  ASSERT_TRUE(runner.run(req).ok);
  req.source = c;  // capacity 2: inserting C evicts A (the LRU tail)
  ASSERT_TRUE(runner.run(req).ok);

  Counters st = runner.stats();
  EXPECT_EQ(st.get("serve.cache.evictions"), 1);
  EXPECT_EQ(st.get("serve.cache.size"), 2);

  // A's handle is gone — the structured miss tells the client to resubmit.
  JobRequest stale;
  stale.byHash = true;
  stale.hash = firstA.sourceHash;
  JobReply gone = runner.run(stale);
  EXPECT_FALSE(gone.ok);
  EXPECT_NE(gone.error.find("resubmit"), std::string::npos);

  // Resubmitting the source recompiles: a miss, but bit-identical results.
  req.source = a;
  JobReply again = runner.run(req);
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_FALSE(again.cacheHit);
  std::string why;
  EXPECT_TRUE(sameOutputs(again.out, firstA.out, &why)) << why;

  // B was refreshed more recently than A's re-insert evicted it? No: the
  // re-insert of A evicts B (LRU order was C, B after A's eviction).
  st = runner.stats();
  EXPECT_EQ(st.get("serve.cache.evictions"), 2);
}

TEST(ServeRunner, SaturatedAdmissionRejectsWithCounts) {
  ServeConfig cfg;
  cfg.pes = 4;
  cfg.maxInflight = 1;
  cfg.maxQueue = 1;
  JobRunner runner(cfg);

  // Job 1: long enough (~1s of native compute) that jobs 2 and 3 are
  // submitted while it still owns the single executor.
  std::mutex m;
  std::condition_variable cv;
  int doneCount = 0;
  auto onDone = [&](JobReply) {
    std::lock_guard<std::mutex> g(m);
    ++doneCount;
    cv.notify_all();
  };
  JobRequest longJob;
  longJob.source = workloads::simpleSource(48, 80);
  ASSERT_TRUE(runner.submit(longJob, onDone));
  // Wait for it to actually start (occupy the executor, not the queue).
  while (runner.stats().get("serve.jobs.started") < 1)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  JobRequest quick;
  quick.source = workloads::simpleSource(8, 1);
  ASSERT_TRUE(runner.submit(quick, onDone));  // fills the one queue slot

  std::uint32_t inflight = 0, queued = 0;
  EXPECT_FALSE(runner.submit(quick, onDone, &inflight, &queued));
  EXPECT_EQ(inflight, 1u);
  EXPECT_EQ(queued, 1u);

  // The blocking wrapper reports the same rejection as a busy reply.
  JobReply busy = runner.run(quick);
  EXPECT_TRUE(busy.busy);
  EXPECT_EQ(busy.inflight, 1u);
  EXPECT_EQ(busy.queued, 1u);

  {
    std::unique_lock<std::mutex> g(m);
    cv.wait(g, [&] { return doneCount == 2; });
  }
  runner.drain();
  const Counters st = runner.stats();
  EXPECT_EQ(st.get("serve.busyRejects"), 2);
  EXPECT_EQ(st.get("serve.jobs.ok"), 2);
  EXPECT_EQ(st.get("serve.inflight"), 0);
  EXPECT_EQ(st.get("serve.queued"), 0);
}

TEST(ServeRunner, AbortedJobLeavesZeroResidueInSurvivors) {
  ServeConfig cfg;
  cfg.pes = 4;
  cfg.maxInflight = 2;  // victim and survivor genuinely concurrent
  JobRunner runner(cfg);

  std::mutex m;
  std::condition_variable cv;
  bool victimDone = false, survivorDone = false;
  JobReply victimRep, survivorRep;

  JobRequest victim;
  victim.source = workloads::simpleSource(48, 200);  // ~2.5s unaborted
  victim.timeoutMs = 120;
  ASSERT_TRUE(runner.submit(victim, [&](JobReply r) {
    std::lock_guard<std::mutex> g(m);
    victimRep = std::move(r);
    victimDone = true;
    cv.notify_all();
  }));

  JobRequest survivor;
  survivor.source = workloads::simpleSource(16, 4);
  ASSERT_TRUE(runner.submit(survivor, [&](JobReply r) {
    std::lock_guard<std::mutex> g(m);
    survivorRep = std::move(r);
    survivorDone = true;
    cv.notify_all();
  }));

  {
    std::unique_lock<std::mutex> g(m);
    cv.wait(g, [&] { return victimDone && survivorDone; });
  }

  EXPECT_FALSE(victimRep.ok);
  EXPECT_EQ(victimRep.error.rfind("aborted", 0), 0u) << victimRep.error;

  ASSERT_TRUE(survivorRep.ok) << survivorRep.error;
  std::string why;
  EXPECT_TRUE(sameOutputs(survivorRep.out,
                          seqReference(workloads::simpleSource(16, 4)), &why))
      << why;
  // The multi-tenancy contract: the survivor's machine is balanced — every
  // frame it created was retired, nothing from the victim leaked in.
  EXPECT_EQ(survivorRep.counters.get("native.framesLive"), 0);
  EXPECT_EQ(survivorRep.counters.get("native.framesCreated"),
            survivorRep.counters.get("native.framesRetired"));
  EXPECT_GT(survivorRep.counters.get("native.framesCreated"), 0);

  EXPECT_EQ(runner.stats().get("serve.jobs.aborted"), 1);

  // The runner is still serviceable after an abort.
  JobRequest again;
  again.source = workloads::simpleSource(16, 4);
  JobReply rep = runner.run(again);
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_TRUE(sameOutputs(rep.out, survivorRep.out, &why)) << why;
}

// ---------------------------------------------------------------------------
// Daemon + Client over a real Unix socket
// ---------------------------------------------------------------------------

struct TempSock {
  std::string dir;
  std::string path;
  TempSock() {
    char tmpl[] = "/tmp/pods_serve_XXXXXX";
    const char* d = ::mkdtemp(tmpl);
    EXPECT_NE(d, nullptr);
    dir = d != nullptr ? d : "/tmp";
    path = dir + "/podsd.sock";
  }
  ~TempSock() {
    ::unlink(path.c_str());
    ::rmdir(dir.c_str());
  }
};

TEST(ServeDaemon, EndToEndSubmitCacheAndHandles) {
  TempSock sock;
  ServeConfig cfg;
  cfg.pes = 4;
  cfg.maxInflight = 2;
  Endpoint ep;
  ep.unixPath = sock.path;
  Daemon daemon(cfg, ep);
  std::string err;
  ASSERT_TRUE(daemon.start(&err)) << err;

  Client cli;
  ASSERT_TRUE(cli.connectUnix(sock.path, &err)) << err;
  WelcomeMsg welcome;
  ASSERT_TRUE(cli.handshake(&welcome, &err)) << err;
  EXPECT_EQ(welcome.cfgHash, configHash(cfg));
  EXPECT_EQ(welcome.pes, cfg.pes);
  EXPECT_EQ(welcome.pageElems, static_cast<std::uint32_t>(cfg.pageElems));
  EXPECT_EQ(welcome.maxInflight, static_cast<std::uint32_t>(cfg.maxInflight));
  EXPECT_EQ(welcome.maxQueue, static_cast<std::uint32_t>(cfg.maxQueue));

  const std::string src = workloads::simpleSource(16, 2);
  const ProgramOutputs ref = seqReference(src);

  Client::Reply r1;
  ASSERT_TRUE(cli.submitSource(src, 0, &r1, &err)) << err;
  ASSERT_FALSE(r1.busy);
  ASSERT_EQ(r1.result.ok, 1) << r1.result.error;
  EXPECT_EQ(r1.result.cacheHit, 0);
  EXPECT_EQ(r1.result.sourceHash, sourceHash(src));
  std::string why;
  EXPECT_TRUE(sameOutputs(Client::toOutputs(r1.result), ref, &why)) << why;
  // Per-job counters come back namespaced under this job's id.
  const std::string prefix = "job." + std::to_string(r1.result.jobId) + ".";
  bool sawNamespaced = false;
  for (const auto& [k, v] : r1.result.counters) {
    EXPECT_EQ(k.rfind(prefix, 0), 0u) << k;
    if (k == prefix + "native.framesLive") {
      EXPECT_EQ(v, 0);
    }
    sawNamespaced = true;
  }
  EXPECT_TRUE(sawNamespaced);

  Client::Reply r2;
  ASSERT_TRUE(cli.submitSource(src, 0, &r2, &err)) << err;
  ASSERT_EQ(r2.result.ok, 1) << r2.result.error;
  EXPECT_EQ(r2.result.cacheHit, 1);
  EXPECT_NE(r2.result.jobId, r1.result.jobId);  // job ids are never reused
  EXPECT_TRUE(sameOutputs(Client::toOutputs(r2.result),
                          Client::toOutputs(r1.result), &why))
      << why;

  // A second client reuses the warm cache by handle alone.
  Client cli2;
  ASSERT_TRUE(cli2.connectUnix(sock.path, &err)) << err;
  WelcomeMsg w2;
  ASSERT_TRUE(cli2.handshake(&w2, &err)) << err;
  Client::Reply r3;
  ASSERT_TRUE(cli2.submitHash(r1.result.sourceHash, 0, &r3, &err)) << err;
  ASSERT_EQ(r3.result.ok, 1) << r3.result.error;
  EXPECT_EQ(r3.result.cacheHit, 1);
  EXPECT_TRUE(sameOutputs(Client::toOutputs(r3.result),
                          Client::toOutputs(r1.result), &why))
      << why;

  // An unknown handle fails the job, not the connection.
  Client::Reply r4;
  ASSERT_TRUE(cli2.submitHash(0x00C0FFEE00C0FFEEull, 0, &r4, &err)) << err;
  EXPECT_EQ(r4.result.ok, 0);
  EXPECT_NE(r4.result.error.find("resubmit"), std::string::npos);
  Client::Reply r5;  // the same connection still serves
  ASSERT_TRUE(cli2.submitHash(r1.result.sourceHash, 0, &r5, &err)) << err;
  EXPECT_EQ(r5.result.ok, 1);

  daemon.stop();
  const Counters st = daemon.stats();
  EXPECT_EQ(st.get("serve.connections"), 2);
  EXPECT_EQ(st.get("serve.submits"), 5);
  EXPECT_EQ(st.get("serve.submits.byHandle"), 3);
  EXPECT_EQ(st.get("serve.cache.hits"), 3);
  EXPECT_EQ(st.get("serve.jobs.ok"), 4);
  EXPECT_EQ(st.get("serve.jobs.failed"), 1);
  EXPECT_EQ(st.get("net.ctl.badFrames"), 0);
}

// The core multi-tenancy claim: N concurrent tenants running the same
// program all get the bit-identical answer AND identical deterministic
// per-job counters — context namespacing means no token, frame, or ledger
// entry of one job is ever visible to another.
TEST(ServeDaemon, ConcurrentTenantsAreBitIdenticalAndIsolated) {
  TempSock sock;
  ServeConfig cfg;
  cfg.pes = 2;
  cfg.maxInflight = 4;
  cfg.maxQueue = 16;
  Endpoint ep;
  ep.unixPath = sock.path;
  Daemon daemon(cfg, ep);
  std::string err;
  ASSERT_TRUE(daemon.start(&err)) << err;

  const std::string src = workloads::simpleSource(16, 3);
  constexpr int kClients = 6;
  std::vector<std::thread> threads;
  std::mutex m;
  std::vector<JobResultMsg> results;
  std::vector<std::string> errors;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&] {
      Client cli;
      std::string cerr;
      WelcomeMsg w;
      if (!cli.connectUnix(sock.path, &cerr) || !cli.handshake(&w, &cerr)) {
        std::lock_guard<std::mutex> g(m);
        errors.push_back(cerr);
        return;
      }
      Client::Reply reply;
      for (;;) {  // admission may bounce us; back off and retry
        if (!cli.submitSource(src, 0, &reply, &cerr)) {
          std::lock_guard<std::mutex> g(m);
          errors.push_back(cerr);
          return;
        }
        if (!reply.busy) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      std::lock_guard<std::mutex> g(m);
      results.push_back(std::move(reply.result));
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_TRUE(errors.empty()) << errors.front();
  ASSERT_EQ(results.size(), static_cast<std::size_t>(kClients));

  const ProgramOutputs ref = seqReference(src);
  // The deterministic per-job counters: identical for every tenant however
  // the jobs interleaved. (Scheduling-dependent counters — instruction
  // retries after a blocked operand, idle transitions, token batching —
  // legitimately differ.)
  const char* kDeterministic[] = {"native.framesCreated",
                                  "native.framesRetired"};
  std::map<std::string, std::int64_t> expect;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const JobResultMsg& r = results[i];
    ASSERT_EQ(r.ok, 1) << r.error;
    std::string why;
    EXPECT_TRUE(sameOutputs(Client::toOutputs(r), ref, &why))
        << "tenant " << i << ": " << why;
    const std::string prefix = "job." + std::to_string(r.jobId) + ".";
    std::map<std::string, std::int64_t> mine;
    for (const auto& [k, v] : r.counters) {
      ASSERT_EQ(k.rfind(prefix, 0), 0u) << k;  // no foreign job's counters
      mine[k.substr(prefix.size())] = v;
    }
    EXPECT_EQ(mine["native.framesLive"], 0) << "tenant " << i;
    EXPECT_GT(mine["native.instructions"], 0) << "tenant " << i;
    for (const char* name : kDeterministic) {
      if (expect.count(name) == 0) {
        expect[name] = mine[name];
        EXPECT_GT(mine[name], 0) << name;
      } else {
        EXPECT_EQ(mine[name], expect[name])
            << "tenant " << i << " diverged on " << name
            << " (cross-job bleed?)";
      }
    }
  }

  daemon.stop();
  const Counters st = daemon.stats();
  EXPECT_EQ(st.get("serve.jobs.ok"), kClients);
  // Tenants racing the first compile may each miss before the winner's
  // insert lands (the insert dedups); every non-racing tenant must hit.
  EXPECT_GE(st.get("serve.cache.misses"), 1);
  EXPECT_EQ(st.get("serve.cache.hits") + st.get("serve.cache.misses"),
            kClients);
  EXPECT_EQ(st.get("serve.cache.size"), 1);
}

TEST(ServeDaemon, GarbageFrameCountedConnectionDroppedDaemonAlive) {
  TempSock sock;
  ServeConfig cfg;
  cfg.pes = 2;
  Endpoint ep;
  ep.unixPath = sock.path;
  Daemon daemon(cfg, ep);
  std::string err;
  ASSERT_TRUE(daemon.start(&err)) << err;

  {  // corrupt header: out-of-range tag
    Client garbage;
    ASSERT_TRUE(garbage.connectUnix(sock.path, &err)) << err;
    const std::uint8_t wire[] = {4, 0, 0, 0, 99, 1, 2, 3, 4};
    ASSERT_TRUE(garbage.sendRaw(wire, sizeof(wire)));
    WelcomeMsg w;
    EXPECT_FALSE(garbage.handshake(&w, &err));  // daemon must have closed us
  }
  {  // well-framed Submit before Hello: unexpected tag, same discipline
    Client early;
    ASSERT_TRUE(early.connectUnix(sock.path, &err)) << err;
    SubmitMsg m;
    m.cfgHash = configHash(cfg);
    m.source = "function main() return 1 end";
    std::vector<std::uint8_t> payload, wire;
    proto::ctl::encodeSubmit(m, payload);
    proto::ctl::encodeFrame(proto::ctl::FrameTag::Submit, payload, wire);
    ASSERT_TRUE(early.sendRaw(wire.data(), wire.size()));
    WelcomeMsg w;
    EXPECT_FALSE(early.handshake(&w, &err));
  }
  // Poll: the counts are updated by the I/O thread, not synchronously.
  for (int i = 0; i < 2000 && daemon.stats().get("net.ctl.badFrames") < 2; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(daemon.stats().get("net.ctl.badFrames"), 2);

  // The daemon is untouched: a well-behaved client still gets served.
  Client cli;
  WelcomeMsg w;
  ASSERT_TRUE(cli.connectUnix(sock.path, &err)) << err;
  ASSERT_TRUE(cli.handshake(&w, &err)) << err;
  Client::Reply reply;
  ASSERT_TRUE(cli.submitSource(workloads::simpleSource(8, 1), 0, &reply, &err))
      << err;
  EXPECT_EQ(reply.result.ok, 1) << reply.result.error;
  daemon.stop();
}

TEST(ServeDaemon, ConfigHashMismatchIsCountedSeparately) {
  TempSock sock;
  ServeConfig cfg;
  cfg.pes = 2;
  Endpoint ep;
  ep.unixPath = sock.path;
  Daemon daemon(cfg, ep);
  std::string err;
  ASSERT_TRUE(daemon.start(&err)) << err;

  Client cli;
  WelcomeMsg w;
  ASSERT_TRUE(cli.connectUnix(sock.path, &err)) << err;
  ASSERT_TRUE(cli.handshake(&w, &err)) << err;
  // A well-FORMED Submit whose cfgHash is stale: rejected and closed, but
  // counted as a config mismatch, not a bad frame.
  SubmitMsg m;
  m.cfgHash = w.cfgHash ^ 1;
  m.clientTag = 1;
  m.source = "function main() return 1 end";
  std::vector<std::uint8_t> payload, wire;
  proto::ctl::encodeSubmit(m, payload);
  proto::ctl::encodeFrame(proto::ctl::FrameTag::Submit, payload, wire);
  ASSERT_TRUE(cli.sendRaw(wire.data(), wire.size()));
  for (int i = 0; i < 2000 && daemon.stats().get("serve.cfgMismatches") < 1;
       ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const Counters st = daemon.stats();
  EXPECT_EQ(st.get("serve.cfgMismatches"), 1);
  EXPECT_EQ(st.get("net.ctl.badFrames"), 0);
  EXPECT_EQ(st.get("serve.submits"), 0);  // never reached the runner
  daemon.stop();
}

TEST(ServeDaemon, TcpLoopbackEphemeralPortServes) {
  ServeConfig cfg;
  cfg.pes = 2;
  Endpoint ep;
  ep.tcp = true;
  ep.tcpPort = 0;  // ephemeral
  Daemon daemon(cfg, ep);
  std::string err;
  ASSERT_TRUE(daemon.start(&err)) << err;
  ASSERT_NE(daemon.boundPort(), 0);

  Client cli;
  WelcomeMsg w;
  ASSERT_TRUE(cli.connectTcp(daemon.boundPort(), &err)) << err;
  ASSERT_TRUE(cli.handshake(&w, &err)) << err;
  EXPECT_EQ(w.cfgHash, configHash(cfg));
  Client::Reply reply;
  ASSERT_TRUE(cli.submitSource(workloads::simpleSource(8, 1), 0, &reply, &err))
      << err;
  ASSERT_EQ(reply.result.ok, 1) << reply.result.error;
  std::string why;
  EXPECT_TRUE(sameOutputs(Client::toOutputs(reply.result),
                          seqReference(workloads::simpleSource(8, 1)), &why))
      << why;
  daemon.stop();
}

}  // namespace
}  // namespace serve
}  // namespace pods
