// Control-channel protocol tests (src/proto/ctl.hpp).
//
// The ctl wire is the supervisor<->worker stream that carries everything
// that is not a token: program + config at boot, the pessimistic recovery
// log, heartbeats, termination polls, results. Decoding is all-or-nothing,
// mirroring the UDP batch wire: truncation at ANY byte boundary, trailing
// junk, an out-of-range tag, an over-limit length, a config-hash mismatch —
// each must reject the whole frame, never decode garbage. These tests drive
// the codec pure (no sockets, no processes); the multiproc suite exercises
// the same frames end-to-end.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "proto/ctl.hpp"
#include "runtime/isa.hpp"
#include "runtime/value.hpp"
#include "support/recovery.hpp"

namespace pods {
namespace proto {
namespace ctl {
namespace {

// A small but representative program: two SPs, an instruction with every
// field populated (including a negative RF offset and a Value immediate),
// debug slot names — enough to catch field-order or width drift.
SpProgram sampleProgram() {
  SpProgram prog;
  prog.mainSp = 0;
  prog.numResults = 2;
  SpCode main;
  main.id = 0;
  main.name = "main";
  main.kind = SpKind::Function;
  main.numSlots = 6;
  main.numArgs = 0;
  main.slotNames = {"a", "b"};
  Instr i1;
  i1.op = Op::SENDA;
  i1.dim = 2;
  i1.dst = 3;
  i1.a = 1;
  i1.b = 2;
  i1.c = 4;
  i1.aux = Instr::packTarget(1, 5);
  i1.off = -7;
  i1.imm = Value::realv(2.5);
  main.code = {i1};
  SpCode worker;
  worker.id = 1;
  worker.name = "worker";
  worker.kind = SpKind::ForLoop;
  worker.numSlots = 9;
  worker.numArgs = 3;
  worker.replicated = true;
  Instr i2;
  i2.op = Op::END;
  i2.imm = Value::intv(-42);
  worker.code = {i2, i1};
  prog.sps = {main, worker};
  return prog;
}

// One record of every log kind: the RecEntry kinds 0..5 plus kMint and
// kResult, with distinctive payloads so a transposed field shows.
std::vector<LogRec> sampleLog() {
  LogRec boot;
  boot.kind = static_cast<std::uint8_t>(RecEntry::Kind::Boot);
  boot.entry.kind = RecEntry::Kind::Boot;
  boot.entry.spCode = 0;
  boot.entry.ctx = 1;
  LogRec ctx;
  ctx.kind = static_cast<std::uint8_t>(RecEntry::Kind::CtxToken);
  ctx.entry.spCode = 1;
  ctx.entry.ctx = 77;
  ctx.entry.slot = 3;
  ctx.entry.v = Value::intv(9);
  ctx.entry.frame = 5;
  ctx.entry.gen = 2;
  LogRec con;
  con.kind = static_cast<std::uint8_t>(RecEntry::Kind::ConToken);
  con.entry.kind = RecEntry::Kind::ConToken;
  con.entry.v = Value::realv(-0.5);
  con.entry.add = true;
  con.entry.frame = 11;
  con.entry.gen = 4;
  con.entry.senderCtx = 88;
  con.entry.sendKey = (std::uint64_t(3) << 32) | 12;
  con.entry.msgId = 9001;
  LogRec end;
  end.kind = static_cast<std::uint8_t>(RecEntry::Kind::End);
  end.entry.kind = RecEntry::Kind::End;
  end.entry.ctx = 77;
  end.entry.frame = 5;
  LogRec recv;
  recv.kind = static_cast<std::uint8_t>(RecEntry::Kind::Recv);
  recv.entry.kind = RecEntry::Kind::Recv;
  recv.entry.msgId = (std::uint64_t(1) << 56) | 19;
  recv.entry.gen = 1;
  LogRec am;  // wire-store array message (spCode carries the AmKind)
  am.kind = static_cast<std::uint8_t>(RecEntry::Kind::Am);
  am.entry.kind = RecEntry::Kind::Am;
  am.entry.spCode = 1;       // AmKind::ReadReq
  am.entry.ctx = 12;         // array id
  am.entry.slot = 2;         // requester PE
  am.entry.senderCtx = 7;    // element offset
  am.entry.sendKey = 0xABCDEF;  // packed requester continuation
  am.entry.msgId = 4242;
  LogRec mint;
  mint.kind = LogRec::kMint;
  mint.mintCtx = 77;
  mint.mintSeq = 1;
  mint.mintV = Value::arrayv(12);
  mint.ctxCounter = 3;
  LogRec res;
  res.kind = LogRec::kResult;
  res.mintSeq = 1;
  res.mintV = Value::realv(6.25);
  return {boot, ctx, con, end, recv, am, mint, res};
}

BootMsg sampleBoot(bool withLog) {
  BootMsg m;
  m.numPes = 4;
  m.localPe = 2;
  m.epoch = withLog ? 1 : 0;
  m.resume = withLog ? 1 : 0;
  m.pageElems = 16;
  m.sliceInstructions = 512;
  m.heartbeatPeriodMs = 10;
  m.heartbeatTimeoutMs = 500;
  m.shmBytes = 1u << 20;
  m.shmName = "/pods.test.1";
  m.store = 1;  // wire store
  m.peerPorts = {40001, 40002, 40003, 40004};
  m.peWeights = {1, 2, 1, 1};
  m.faults.killPe = 1;
  m.faults.killTimeUs = 5000.0;
  m.program = sampleProgram();
  if (withLog) m.log = sampleLog();
  return m;
}

void expectLogRecEq(const LogRec& a, const LogRec& b, const char* what) {
  EXPECT_EQ(a.kind, b.kind) << what;
  EXPECT_EQ(a.entry.kind, b.entry.kind) << what;
  EXPECT_EQ(a.entry.spCode, b.entry.spCode) << what;
  EXPECT_EQ(a.entry.ctx, b.entry.ctx) << what;
  EXPECT_EQ(a.entry.slot, b.entry.slot) << what;
  EXPECT_TRUE(a.entry.v.identical(b.entry.v)) << what;
  EXPECT_EQ(a.entry.add, b.entry.add) << what;
  EXPECT_EQ(a.entry.frame, b.entry.frame) << what;
  EXPECT_EQ(a.entry.gen, b.entry.gen) << what;
  EXPECT_EQ(a.entry.senderCtx, b.entry.senderCtx) << what;
  EXPECT_EQ(a.entry.sendKey, b.entry.sendKey) << what;
  EXPECT_EQ(a.entry.msgId, b.entry.msgId) << what;
  EXPECT_EQ(a.mintCtx, b.mintCtx) << what;
  EXPECT_EQ(a.mintSeq, b.mintSeq) << what;
  EXPECT_TRUE(a.mintV.identical(b.mintV)) << what;
  EXPECT_EQ(a.ctxCounter, b.ctxCounter) << what;
}

void expectProgramEq(const SpProgram& a, const SpProgram& b) {
  EXPECT_EQ(a.mainSp, b.mainSp);
  EXPECT_EQ(a.numResults, b.numResults);
  ASSERT_EQ(a.sps.size(), b.sps.size());
  for (std::size_t s = 0; s < a.sps.size(); ++s) {
    const SpCode& x = a.sps[s];
    const SpCode& y = b.sps[s];
    EXPECT_EQ(x.id, y.id);
    EXPECT_EQ(x.name, y.name);
    EXPECT_EQ(x.kind, y.kind);
    EXPECT_EQ(x.numSlots, y.numSlots);
    EXPECT_EQ(x.numArgs, y.numArgs);
    EXPECT_EQ(x.replicated, y.replicated);
    EXPECT_EQ(x.slotNames, y.slotNames);
    ASSERT_EQ(x.code.size(), y.code.size());
    for (std::size_t k = 0; k < x.code.size(); ++k) {
      EXPECT_EQ(x.code[k].op, y.code[k].op);
      EXPECT_EQ(x.code[k].dim, y.code[k].dim);
      EXPECT_EQ(x.code[k].dst, y.code[k].dst);
      EXPECT_EQ(x.code[k].a, y.code[k].a);
      EXPECT_EQ(x.code[k].b, y.code[k].b);
      EXPECT_EQ(x.code[k].c, y.code[k].c);
      EXPECT_EQ(x.code[k].aux, y.code[k].aux);
      EXPECT_EQ(x.code[k].off, y.code[k].off);
      EXPECT_TRUE(x.code[k].imm.identical(y.code[k].imm));
    }
  }
}

// --- round trips ------------------------------------------------------------

TEST(CtlProto, HelloRoundTrip) {
  HelloMsg m;
  std::vector<std::uint8_t> out;
  encodeHello(m, out);
  HelloMsg got;
  got.magic = 0;
  got.version = 0;
  ASSERT_TRUE(decodeHello(out.data(), out.size(), got));
  EXPECT_EQ(got.magic, kMagic);
  EXPECT_EQ(got.version, kVersion);
}

TEST(CtlProto, BootRoundTripFreshAndResume) {
  for (const bool withLog : {false, true}) {
    const BootMsg m = sampleBoot(withLog);
    std::vector<std::uint8_t> out;
    encodeBoot(m, out);
    BootMsg got;
    std::uint64_t want = 0, gotHash = 0;
    ASSERT_TRUE(decodeBoot(out.data(), out.size(), got, &want, &gotHash))
        << "withLog=" << withLog;
    EXPECT_EQ(want, gotHash);
    EXPECT_EQ(got.numPes, m.numPes);
    EXPECT_EQ(got.localPe, m.localPe);
    EXPECT_EQ(got.epoch, m.epoch);
    EXPECT_EQ(got.resume, m.resume);
    EXPECT_EQ(got.pageElems, m.pageElems);
    EXPECT_EQ(got.sliceInstructions, m.sliceInstructions);
    EXPECT_EQ(got.heartbeatPeriodMs, m.heartbeatPeriodMs);
    EXPECT_EQ(got.heartbeatTimeoutMs, m.heartbeatTimeoutMs);
    EXPECT_EQ(got.shmBytes, m.shmBytes);
    EXPECT_EQ(got.shmName, m.shmName);
    EXPECT_EQ(got.store, m.store);
    EXPECT_EQ(got.peerPorts, m.peerPorts);
    EXPECT_EQ(got.peWeights, m.peWeights);
    EXPECT_EQ(got.faults.killPe, m.faults.killPe);
    EXPECT_EQ(got.faults.killTimeUs, m.faults.killTimeUs);
    expectProgramEq(got.program, m.program);
    ASSERT_EQ(got.log.size(), m.log.size());
    for (std::size_t i = 0; i < m.log.size(); ++i) {
      expectLogRecEq(got.log[i], m.log[i],
                     ("log rec " + std::to_string(i)).c_str());
    }
  }
}

TEST(CtlProto, LogRoundTripEveryRecordKind) {
  LogMsg lm;
  lm.firstSeq = 41;
  lm.recs = sampleLog();
  std::vector<std::uint8_t> out;
  encodeLog(lm, out);
  LogMsg got;
  ASSERT_TRUE(decodeLog(out.data(), out.size(), got));
  EXPECT_EQ(got.firstSeq, 41u);
  ASSERT_EQ(got.recs.size(), lm.recs.size());
  for (std::size_t i = 0; i < lm.recs.size(); ++i) {
    expectLogRecEq(got.recs[i], lm.recs[i],
                   ("rec " + std::to_string(i)).c_str());
  }
  // The kResult record (the durable home of program RESULT stores) must
  // carry slot + value exactly.
  const LogRec& res = got.recs.back();
  EXPECT_EQ(res.kind, LogRec::kResult);
  EXPECT_EQ(res.mintSeq, 1u);
  EXPECT_TRUE(res.mintV.identical(Value::realv(6.25)));
}

// RecEntry::Kind::Am took the raw value 5 the old kMint used to hold, so
// kMint/kResult were renumbered to the reserved top of the byte (250/251).
// The kind byte must disambiguate: 5 is an Am ENTRY record now, never a
// mint — a codec that kept the old constants would replay array messages
// as context mints.
TEST(CtlProto, AmRecordKindIsNotAMint) {
  ASSERT_EQ(static_cast<std::uint8_t>(RecEntry::Kind::Am), 5);
  ASSERT_EQ(LogRec::kMint, 250);
  ASSERT_EQ(LogRec::kResult, 251);
  LogMsg lm;
  LogRec am;
  am.kind = static_cast<std::uint8_t>(RecEntry::Kind::Am);
  am.entry.kind = RecEntry::Kind::Am;
  am.entry.spCode = 2;  // AmKind::Write
  am.entry.ctx = 9;
  am.entry.senderCtx = 3;
  am.entry.v = Value::realv(1.5);
  lm.recs = {am};
  std::vector<std::uint8_t> out;
  encodeLog(lm, out);
  LogMsg got;
  ASSERT_TRUE(decodeLog(out.data(), out.size(), got));
  ASSERT_EQ(got.recs.size(), 1u);
  EXPECT_EQ(got.recs[0].kind, 5);
  EXPECT_EQ(got.recs[0].entry.kind, RecEntry::Kind::Am);
  EXPECT_EQ(got.recs[0].entry.spCode, 2);
  EXPECT_EQ(got.recs[0].mintCtx, 0u);  // no mint fields were populated
  // The gap between the entry kinds and the reserved constants rejects.
  const std::size_t kindOff = 8 + 4;
  for (const std::uint8_t bad : {std::uint8_t{6}, std::uint8_t{128},
                                 std::uint8_t{249}, std::uint8_t{252}}) {
    std::vector<std::uint8_t> tampered = out;
    tampered[kindOff] = bad;
    LogMsg rejected;
    EXPECT_FALSE(decodeLog(tampered.data(), tampered.size(), rejected))
        << "kind=" << static_cast<int>(bad);
  }
}

// Wire store: each worker's Result frame carries its owned array slice.
TEST(CtlProto, ResultOwnedArraysRoundTrip) {
  ResultMsg rm;
  rm.ok = true;
  rm.results = {Value::intv(1)};
  rm.resultSet = {1};
  ResultMsg::OwnedArray meta;  // the allocator's part: shape + its elements
  meta.id = 42;
  meta.hasMeta = 1;
  meta.rank = 2;
  meta.dim0 = 3;
  meta.dim1 = 4;
  meta.elems = {{0, Value::realv(0.5)}, {7, Value::intv(-9)}};
  ResultMsg::OwnedArray slice;  // a non-allocating owner: elements only
  slice.id = 42;
  slice.hasMeta = 0;
  slice.elems = {{3, Value::realv(2.25)}};
  rm.arrays = {meta, slice};
  std::vector<std::uint8_t> out;
  encodeResult(rm, out);
  ResultMsg got;
  ASSERT_TRUE(decodeResult(out.data(), out.size(), got));
  ASSERT_EQ(got.arrays.size(), 2u);
  EXPECT_EQ(got.arrays[0].id, 42u);
  EXPECT_EQ(got.arrays[0].hasMeta, 1);
  EXPECT_EQ(got.arrays[0].rank, 2);
  EXPECT_EQ(got.arrays[0].dim0, 3);
  EXPECT_EQ(got.arrays[0].dim1, 4);
  ASSERT_EQ(got.arrays[0].elems.size(), 2u);
  EXPECT_EQ(got.arrays[0].elems[1].first, 7);
  EXPECT_TRUE(got.arrays[0].elems[1].second.identical(Value::intv(-9)));
  EXPECT_EQ(got.arrays[1].hasMeta, 0);
  ASSERT_EQ(got.arrays[1].elems.size(), 1u);
  EXPECT_TRUE(got.arrays[1].elems[0].second.identical(Value::realv(2.25)));
  // Truncation at every boundary rejects (all-or-nothing, like every frame).
  for (std::size_t cut = 0; cut < out.size(); ++cut) {
    ResultMsg r;
    EXPECT_FALSE(decodeResult(out.data(), cut, r)) << "cut=" << cut;
  }
}

// --- JobResult strict decode (serve protocol) --------------------------------

JobResultMsg sampleJobResult() {
  JobResultMsg m;
  m.clientTag = 3;
  m.jobId = 17;
  m.ok = 1;
  m.wallMs = 1.5;
  m.results = {Value::arrayv(1), Value::intv(5)};
  m.resultSet = {1, 1};
  JobResultMsg::OutArray a;
  a.present = 1;
  a.rank = 2;
  a.dim0 = 2;
  a.dim1 = 3;
  a.elems = {Value::realv(0.0), Value::realv(1.0), Value::realv(2.0),
             Value::realv(3.0), Value::realv(4.0), Value::realv(5.0)};
  m.arrays = {a, {}};
  m.counters = {{"native.frames", 4}};
  return m;
}

TEST(CtlProto, JobResultRoundTripsArrays) {
  const JobResultMsg m = sampleJobResult();
  std::vector<std::uint8_t> out;
  encodeJobResult(m, out);
  JobResultMsg got;
  ASSERT_TRUE(decodeJobResult(out.data(), out.size(), got));
  ASSERT_EQ(got.results.size(), 2u);
  ASSERT_EQ(got.arrays.size(), 2u);
  EXPECT_EQ(got.arrays[0].present, 1);
  EXPECT_EQ(got.arrays[0].rank, 2);
  ASSERT_EQ(got.arrays[0].elems.size(), 6u);
  EXPECT_TRUE(got.arrays[0].elems[5].identical(Value::realv(5.0)));
  EXPECT_EQ(got.arrays[1].present, 0);
}

// A JobResult whose element count disagrees with its shape used to be
// silently clamped client-side; it must now be a structured decode failure
// (the client reports "malformed JobResult", the daemon's counter is
// net.ctl.badFrames) — never a truncated array presented as complete.
TEST(CtlProtoFuzz, JobResultShapeElementMismatchRejected) {
  {
    JobResultMsg m = sampleJobResult();
    m.arrays[0].dim0 = 4;  // claims 4x3 = 12 elements, ships 6
    std::vector<std::uint8_t> out;
    encodeJobResult(m, out);
    JobResultMsg got;
    EXPECT_FALSE(decodeJobResult(out.data(), out.size(), got));
  }
  {
    JobResultMsg m = sampleJobResult();
    m.arrays[0].dim1 = -3;  // negative dimension
    std::vector<std::uint8_t> out;
    encodeJobResult(m, out);
    JobResultMsg got;
    EXPECT_FALSE(decodeJobResult(out.data(), out.size(), got));
  }
  {
    JobResultMsg m = sampleJobResult();
    m.arrays[0].rank = 1;  // rank-1 of dim0=2 but 6 elements shipped
    std::vector<std::uint8_t> out;
    encodeJobResult(m, out);
    JobResultMsg got;
    EXPECT_FALSE(decodeJobResult(out.data(), out.size(), got));
  }
  {
    JobResultMsg m = sampleJobResult();
    // A hostile header claiming a gigantic product must reject on the shape
    // check, before the element loop ever tries to materialize it.
    m.arrays[0].dim0 = std::int64_t{1} << 30;
    m.arrays[0].dim1 = std::int64_t{1} << 30;
    std::vector<std::uint8_t> out;
    encodeJobResult(m, out);
    JobResultMsg got;
    EXPECT_FALSE(decodeJobResult(out.data(), out.size(), got));
  }
}

TEST(CtlProtoFuzz, JobResultTruncationAtEveryBoundaryRejected) {
  const JobResultMsg m = sampleJobResult();
  std::vector<std::uint8_t> out;
  encodeJobResult(m, out);
  for (std::size_t cut = 0; cut < out.size(); ++cut) {
    JobResultMsg got;
    EXPECT_FALSE(decodeJobResult(out.data(), cut, got)) << "cut=" << cut;
  }
  out.push_back(0);  // trailing junk
  JobResultMsg got;
  EXPECT_FALSE(decodeJobResult(out.data(), out.size(), got));
}

TEST(CtlProto, PortTableStatusResultErrorScalarRoundTrip) {
  std::vector<PeerEndpoint> peers = {{40001, 0}, {40002, 3}, {40003, 0}};
  std::vector<std::uint8_t> out;
  encodePortTable(peers, out);
  std::vector<PeerEndpoint> gotPeers;
  ASSERT_TRUE(decodePortTable(out.data(), out.size(), gotPeers));
  ASSERT_EQ(gotPeers.size(), peers.size());
  for (std::size_t i = 0; i < peers.size(); ++i) {
    EXPECT_EQ(gotPeers[i].port, peers[i].port);
    EXPECT_EQ(gotPeers[i].epoch, peers[i].epoch);
  }

  StatusMsg sm;
  sm.statusSeq = 9;
  sm.idle = 1;
  sm.pending = -3;  // signedness must survive (the ledger can dip negative)
  sm.inboxTokens = 2;
  sm.outstanding = 7;
  sm.logAppended = 55;
  sm.activity = 1234;
  out.clear();
  encodeStatus(sm, out);
  StatusMsg sg;
  ASSERT_TRUE(decodeStatus(out.data(), out.size(), sg));
  EXPECT_EQ(sg.statusSeq, 9u);
  EXPECT_EQ(sg.idle, 1);
  EXPECT_EQ(sg.pending, -3);
  EXPECT_EQ(sg.inboxTokens, 2);
  EXPECT_EQ(sg.outstanding, 7);
  EXPECT_EQ(sg.logAppended, 55u);
  EXPECT_EQ(sg.activity, 1234u);

  ResultMsg rm;
  rm.ok = false;
  rm.error = "boom";
  rm.resultSet = {1, 0};
  rm.results = {Value::intv(5), Value{}};
  rm.counters = {{"native.frames", 12}};
  rm.workerCounters = {{"tokensIn", 7}, {"tokensOut", 8}};
  out.clear();
  encodeResult(rm, out);
  ResultMsg rg;
  ASSERT_TRUE(decodeResult(out.data(), out.size(), rg));
  EXPECT_EQ(rg.ok, false);
  EXPECT_EQ(rg.error, "boom");
  EXPECT_EQ(rg.resultSet, rm.resultSet);
  ASSERT_EQ(rg.results.size(), 2u);
  EXPECT_TRUE(rg.results[0].identical(rm.results[0]));
  EXPECT_TRUE(rg.results[1].empty());
  EXPECT_EQ(rg.counters, rm.counters);
  EXPECT_EQ(rg.workerCounters, rm.workerCounters);

  ErrorMsg em;
  em.code = 17;
  em.text = "config hash mismatch";
  out.clear();
  encodeError(em, out);
  ErrorMsg eg;
  ASSERT_TRUE(decodeError(out.data(), out.size(), eg));
  EXPECT_EQ(eg.code, 17u);
  EXPECT_EQ(eg.text, em.text);

  out.clear();
  encodeU64(0xDEADBEEFCAFE1234ull, out);
  std::uint64_t v = 0;
  ASSERT_TRUE(decodeU64(out.data(), out.size(), v));
  EXPECT_EQ(v, 0xDEADBEEFCAFE1234ull);
  out.clear();
  encodeU16(40123, out);
  std::uint16_t port = 0;
  ASSERT_TRUE(decodeU16(out.data(), out.size(), port));
  EXPECT_EQ(port, 40123);
}

// --- all-or-nothing decode --------------------------------------------------

// Truncation at EVERY byte boundary must fail the decode — a partial
// message accepted once would boot a worker with a half-read program.
TEST(CtlProtoFuzz, BootTruncationAtEveryBoundaryRejected) {
  const BootMsg m = sampleBoot(true);
  std::vector<std::uint8_t> out;
  encodeBoot(m, out);
  for (std::size_t cut = 0; cut < out.size(); ++cut) {
    BootMsg got;
    EXPECT_FALSE(decodeBoot(out.data(), cut, got)) << "cut=" << cut;
  }
  BootMsg whole;
  ASSERT_TRUE(decodeBoot(out.data(), out.size(), whole));
}

TEST(CtlProtoFuzz, LogAndStatusTruncationRejected) {
  LogMsg lm;
  lm.firstSeq = 7;
  lm.recs = sampleLog();
  std::vector<std::uint8_t> out;
  encodeLog(lm, out);
  for (std::size_t cut = 0; cut < out.size(); ++cut) {
    LogMsg got;
    EXPECT_FALSE(decodeLog(out.data(), cut, got)) << "cut=" << cut;
  }
  StatusMsg sm;
  out.clear();
  encodeStatus(sm, out);
  for (std::size_t cut = 0; cut < out.size(); ++cut) {
    StatusMsg got;
    EXPECT_FALSE(decodeStatus(out.data(), cut, got)) << "cut=" << cut;
  }
}

TEST(CtlProtoFuzz, TrailingJunkRejected) {
  {
    const BootMsg m = sampleBoot(false);
    std::vector<std::uint8_t> out;
    encodeBoot(m, out);
    out.push_back(0);
    BootMsg got;
    EXPECT_FALSE(decodeBoot(out.data(), out.size(), got));
  }
  {
    HelloMsg m;
    std::vector<std::uint8_t> out;
    encodeHello(m, out);
    out.push_back(0xFF);
    HelloMsg got;
    EXPECT_FALSE(decodeHello(out.data(), out.size(), got));
  }
  {
    StatusMsg m;
    std::vector<std::uint8_t> out;
    encodeStatus(m, out);
    out.push_back(7);
    StatusMsg got;
    EXPECT_FALSE(decodeStatus(out.data(), out.size(), got));
  }
  {
    std::vector<std::uint8_t> out;
    encodeU64(1, out);
    out.push_back(0);
    std::uint64_t v = 0;
    EXPECT_FALSE(decodeU64(out.data(), out.size(), v));
  }
}

// The Boot payload leads with an FNV-1a hash of everything after it; a
// single flipped bit anywhere in the body must fail the decode — this is
// what catches a worker binary whose codec drifted from the supervisor's.
TEST(CtlProtoFuzz, BootConfigHashMismatchRejected) {
  const BootMsg m = sampleBoot(false);
  std::vector<std::uint8_t> out;
  encodeBoot(m, out);
  for (const std::size_t at :
       {std::size_t{8}, out.size() / 2, out.size() - 1}) {
    std::vector<std::uint8_t> bad = out;
    bad[at] ^= 0x01;
    BootMsg got;
    std::uint64_t want = 0, gotHash = 0;
    EXPECT_FALSE(decodeBoot(bad.data(), bad.size(), got, &want, &gotHash))
        << "flip at " << at;
    EXPECT_NE(want, gotHash) << "flip at " << at;
  }
}

TEST(CtlProtoFuzz, LogRecBadKindRejected) {
  LogMsg lm;
  LogRec r;
  r.kind = LogRec::kResult;
  r.mintSeq = 0;
  r.mintV = Value::intv(1);
  lm.recs = {r};
  std::vector<std::uint8_t> out;
  encodeLog(lm, out);
  // Layout: firstSeq u64, count u32, then the first record's kind byte.
  const std::size_t kindOff = 8 + 4;
  ASSERT_EQ(out[kindOff], LogRec::kResult);
  out[kindOff] = LogRec::kResult + 1;  // one past the highest valid kind
  LogMsg got;
  EXPECT_FALSE(decodeLog(out.data(), out.size(), got));
}

// --- frame stream -----------------------------------------------------------

TEST(CtlFrame, IncrementalFeedReassembles) {
  std::vector<std::uint8_t> wire;
  encodeFrame(FrameTag::Heartbeat, {}, wire);
  const std::vector<std::uint8_t> p2 = {1, 2, 3};
  encodeFrame(FrameTag::Log, p2, wire);

  FrameReader rd;
  Frame f;
  bool bad = false;
  int got = 0;
  // Feed one byte at a time: frames must pop exactly at their boundaries.
  for (const std::uint8_t b : wire) {
    rd.feed(&b, 1);
    while (rd.next(f, &bad)) {
      ++got;
      if (got == 1) {
        EXPECT_EQ(f.tag, FrameTag::Heartbeat);
        EXPECT_TRUE(f.payload.empty());
      }
      if (got == 2) {
        EXPECT_EQ(f.tag, FrameTag::Log);
        EXPECT_EQ(f.payload, p2);
      }
    }
    EXPECT_FALSE(bad);
  }
  EXPECT_EQ(got, 2);
}

TEST(CtlFrame, UnknownTagPoisonsStream) {
  // 22 is the first tag past Welcome — keep this in step with FrameTag.
  for (const std::uint8_t tag :
       {std::uint8_t{0}, std::uint8_t{22}, std::uint8_t{255}}) {
    const std::vector<std::uint8_t> wire = {1, 0, 0, 0, tag, 0xAB};
    FrameReader rd;
    rd.feed(wire.data(), wire.size());
    Frame f;
    bool bad = false;
    EXPECT_FALSE(rd.next(f, &bad));
    EXPECT_TRUE(bad) << "tag " << int(tag);
    // Poisoned for good: a following well-formed frame must not decode —
    // there is no resynchronizing a length-prefixed stream after a corrupt
    // header.
    std::vector<std::uint8_t> good;
    encodeFrame(FrameTag::Heartbeat, {}, good);
    rd.feed(good.data(), good.size());
    bad = false;
    EXPECT_FALSE(rd.next(f, &bad));
    EXPECT_TRUE(bad);
  }
}

TEST(CtlFrame, OverLimitLengthPoisonsStream) {
  const std::uint32_t len = kMaxFrameBytes + 1;
  std::vector<std::uint8_t> wire = {
      static_cast<std::uint8_t>(len & 0xFF),
      static_cast<std::uint8_t>((len >> 8) & 0xFF),
      static_cast<std::uint8_t>((len >> 16) & 0xFF),
      static_cast<std::uint8_t>((len >> 24) & 0xFF),
      static_cast<std::uint8_t>(FrameTag::Log)};
  FrameReader rd;
  rd.feed(wire.data(), wire.size());
  Frame f;
  bool bad = false;
  EXPECT_FALSE(rd.next(f, &bad));
  EXPECT_TRUE(bad);
}

// Version skew surfaces at the handshake: the wire image decodes fine (it
// is a well-formed Hello), the VALUES disagree — the receiving side
// compares against its own kMagic/kVersion and fails fast. This pins the
// fields that check depends on.
TEST(CtlFrame, VersionSkewIsVisibleToHandshake) {
  HelloMsg skew;
  skew.version = kVersion + 1;
  std::vector<std::uint8_t> out;
  encodeHello(skew, out);
  HelloMsg got;
  ASSERT_TRUE(decodeHello(out.data(), out.size(), got));
  EXPECT_EQ(got.magic, kMagic);
  EXPECT_NE(got.version, kVersion);

  HelloMsg wrongMagic;
  wrongMagic.magic = kMagic ^ 0x20;
  out.clear();
  encodeHello(wrongMagic, out);
  ASSERT_TRUE(decodeHello(out.data(), out.size(), got));
  EXPECT_NE(got.magic, kMagic);
}

}  // namespace
}  // namespace ctl
}  // namespace proto
}  // namespace pods
