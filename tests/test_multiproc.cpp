// Multi-process PODS tests (docs/ARCHITECTURE.md, "Multi-process execution").
//
// The supervisor in this binary forks worker processes from THIS BINARY
// (fork + exec of /proc/self/exe with --pods-worker=CTLFD,SOCKFD), so main()
// below hands forked invocations to the worker entry point before gtest ever
// parses argv.
//
// Properties under test:
//   - parity: a multi-process run is bit-identical to the in-process engine
//     on the same program (Church-Rosser — placement and process boundaries
//     must not show in the answer);
//   - supervised kill -9 recovery: SIGKILLing a worker at a seeded time (or
//     externally, from outside the supervisor) respawns it from the
//     supervisor's copy of its receive/allocate log and the run still
//     completes bit-identical, with balanced frame ledgers;
//   - hung-PE recovery: a worker that stops heartbeating (but stays alive)
//     is SIGKILLed by the supervisor's watchdog and recovered the same way;
//   - canonical counter namespaces (net.ctl.*, proc.*, native.*) survive the
//     supervisor's merge.
//
// PODS_MULTIPROC_SEEDS raises the kill-soak width (the CI multiproc-soak job
// sets it); the default keeps local runs fast.
#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>

#include "core/pods.hpp"
#include "native/procmgr.hpp"
#include "support/fault.hpp"
#include "workloads/kernels.hpp"
#include "workloads/simple.hpp"

namespace pods {
namespace {

constexpr const char* kFibSource = R"(
def fib(n: int) -> int {
  let r = if n < 2 then n else fib(n - 1) + fib(n - 2);
  return r;
}
def main() -> int { return fib(13); }
)";

std::unique_ptr<Compiled> compileOk(const std::string& src) {
  CompileResult cr = compile(src, {});
  EXPECT_TRUE(cr.ok) << cr.diagnostics;
  return std::move(cr.compiled);
}

/// Seed count for the kill soak: PODS_MULTIPROC_SEEDS overrides (the CI
/// multiproc-soak job raises it), default 6 — each seed is a full
/// fork-per-PE run, so the local default stays modest.
int multiprocSeeds() {
  if (const char* env = std::getenv("PODS_MULTIPROC_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 6;
}

native::NativeConfig multiprocConfig(int pes) {
  native::NativeConfig nc;
  nc.numWorkers = pes;
  nc.transport = native::TransportKind::UdpMultiproc;
  return nc;
}

// --- parity -----------------------------------------------------------------

TEST(Multiproc, SimpleBitIdenticalToInProcess) {
  auto c = compileOk(workloads::simpleSource(16, 2));
  native::NativeConfig inproc;
  inproc.numWorkers = 4;
  NativeRun ref = runNative(*c, inproc);
  ASSERT_TRUE(ref.stats.ok) << ref.stats.error;

  NativeRun run = runNative(*c, multiprocConfig(4));
  ASSERT_TRUE(run.stats.ok) << run.stats.error;
  std::string why;
  ASSERT_TRUE(sameOutputs(run.out, ref.out, &why)) << why;
  EXPECT_EQ(run.stats.counters.get("native.workers"), 4);
  EXPECT_EQ(run.stats.counters.get("net.ctl.badFrames"), 0);
  EXPECT_GT(run.stats.counters.get("net.ctl.frames"), 0);
  EXPECT_EQ(run.stats.counters.get("native.framesCreated"),
            run.stats.counters.get("native.framesRetired"));
}

TEST(Multiproc, FibBitIdenticalToInProcessEightPes) {
  auto c = compileOk(kFibSource);
  native::NativeConfig inproc;
  inproc.numWorkers = 8;
  NativeRun ref = runNative(*c, inproc);
  ASSERT_TRUE(ref.stats.ok) << ref.stats.error;

  NativeRun run = runNative(*c, multiprocConfig(8));
  ASSERT_TRUE(run.stats.ok) << run.stats.error;
  std::string why;
  ASSERT_TRUE(sameOutputs(run.out, ref.out, &why)) << why;
  EXPECT_EQ(run.stats.counters.get("proc.respawns"), 0);
}

// The canonical namespaces must survive the supervisor's merge: a rename on
// either side of the ctl channel would silently break dashboards and the CI
// stats checks keyed on these names.
TEST(Multiproc, CanonicalCounterNamespaces) {
  auto c = compileOk(workloads::simpleSource(8, 1));
  NativeRun run = runNative(*c, multiprocConfig(2));
  ASSERT_TRUE(run.stats.ok) << run.stats.error;
  for (const char* name :
       {"native.workers", "native.framesCreated", "native.framesRetired",
        "net.ctl.frames", "net.ctl.badFrames", "proc.respawns",
        "proc.heartbeatTimeouts"}) {
    bool found = false;
    for (const auto& [k, v] : run.stats.counters.all()) {
      (void)v;
      if (k == name) found = true;
    }
    EXPECT_TRUE(found) << "missing canonical counter: " << name;
  }
}

// --- wire array store (no shm segment at all) --------------------------------
//
// --store=wire is the layering remote-host workers need: the supervisor
// creates NO shm segment, each PE holds only the array pages it owns, every
// cross-PE access is an owner-serviced message on the UDP data plane, and
// the workers ship their owned slices back inside their Result frames.

TEST(MultiprocWire, SimpleBitIdenticalWithZeroShmOps) {
  auto c = compileOk(workloads::simpleSource(16, 2));
  native::NativeConfig inproc;
  inproc.numWorkers = 4;
  NativeRun ref = runNative(*c, inproc);
  ASSERT_TRUE(ref.stats.ok) << ref.stats.error;

  native::NativeConfig nc = multiprocConfig(4);
  nc.store = native::StoreKind::Wire;
  NativeRun run = runNative(*c, nc);
  ASSERT_TRUE(run.stats.ok) << run.stats.error;
  std::string why;
  ASSERT_TRUE(sameOutputs(run.out, ref.out, &why)) << why;
  // The whole point: not one array element moved through shared memory.
  EXPECT_EQ(run.stats.counters.get("native.shmArrayOps"), 0);
  EXPECT_EQ(run.stats.counters.get("net.am.readReqSent"),
            run.stats.counters.get("net.am.readReqServed"));
  EXPECT_EQ(run.stats.counters.get("net.am.writeSent"),
            run.stats.counters.get("net.am.writeApplied"));
  EXPECT_EQ(run.stats.counters.get("net.am.dimReqSent"),
            run.stats.counters.get("net.am.dimReqServed"));
  EXPECT_EQ(run.stats.counters.get("net.am.parks"),
            run.stats.counters.get("net.am.parkFills"));
  EXPECT_EQ(run.stats.counters.get("native.framesCreated"),
            run.stats.counters.get("native.framesRetired"));
  EXPECT_EQ(run.stats.counters.get("net.ctl.badFrames"), 0);
}

TEST(MultiprocWire, AdversarialOwnershipAcrossWeights) {
  auto c = compileOk(workloads::reversalSource(96));
  BaselineRun seq = runSequentialBaseline(*c);
  ASSERT_TRUE(seq.stats.ok) << seq.stats.error;
  for (const std::vector<std::int64_t>& weights :
       {std::vector<std::int64_t>{}, std::vector<std::int64_t>{1, 7, 1, 7}}) {
    native::NativeConfig nc = multiprocConfig(4);
    nc.pageElems = 8;
    nc.peWeights = weights;
    nc.store = native::StoreKind::Wire;
    NativeRun run = runNative(*c, nc);
    const std::string what = weights.empty() ? "uniform" : "skewed";
    ASSERT_TRUE(run.stats.ok) << what << ": " << run.stats.error;
    std::string why;
    ASSERT_TRUE(sameOutputs(run.out, seq.out, &why)) << what << ": " << why;
    EXPECT_EQ(run.stats.counters.get("native.shmArrayOps"), 0) << what;
    EXPECT_GT(run.stats.counters.get("net.am.readReqSent"), 0) << what;
    EXPECT_EQ(run.stats.counters.get("net.am.parks"),
              run.stats.counters.get("net.am.parkFills"))
        << what;
  }
}

TEST(MultiprocWireKill, KillRecoveryBitIdentical) {
  // kill -9 a worker mid-run under the wire store: its owned elements,
  // parked readers, and shape table are rebuilt from the supervisor's copy
  // of its Am log; deferred replies regenerate on replay.
  auto c = compileOk(workloads::reversalSource(96));
  BaselineRun seq = runSequentialBaseline(*c);
  ASSERT_TRUE(seq.stats.ok) << seq.stats.error;

  const int seeds = std::max(3, multiprocSeeds() / 2);
  std::int64_t kills = 0;
  for (int seed = 1; seed <= seeds; ++seed) {
    native::NativeConfig nc = multiprocConfig(4);
    nc.pageElems = 8;
    nc.store = native::StoreKind::Wire;
    nc.faults.killPe = seed % 4;
    nc.faults.killTimeUs = 200.0 + (seed * 1733) % 12000;
    nc.faults.killRestartUs = 200.0;
    NativeRun run = runNative(*c, nc);
    ASSERT_TRUE(run.stats.ok) << "seed=" << seed << ": " << run.stats.error;
    std::string why;
    ASSERT_TRUE(sameOutputs(run.out, seq.out, &why))
        << "seed=" << seed << ": " << why;
    EXPECT_EQ(run.stats.counters.get("native.shmArrayOps"), 0)
        << "seed=" << seed;
    EXPECT_EQ(run.stats.counters.get("native.framesCreated"),
              run.stats.counters.get("native.framesRetired"))
        << "seed=" << seed;
    kills += run.stats.counters.get("fault.kills");
  }
  EXPECT_GT(kills, 0);
}

// --- supervised kill -9 recovery --------------------------------------------

TEST(MultiprocKill, SeededSoakBitIdentical) {
  auto c = compileOk(workloads::simpleSource(16, 2));
  native::NativeConfig inproc;
  inproc.numWorkers = 4;
  NativeRun ref = runNative(*c, inproc);
  ASSERT_TRUE(ref.stats.ok) << ref.stats.error;

  const int seeds = multiprocSeeds();
  for (int seed = 1; seed <= seeds; ++seed) {
    native::NativeConfig nc = multiprocConfig(4);
    nc.faults.killPe = seed % 4;
    // Spread kills across the whole run including "too late to fire".
    nc.faults.killTimeUs = 200.0 + (seed * 1733) % 12000;
    nc.faults.killRestartUs = 200.0;
    NativeRun run = runNative(*c, nc);
    ASSERT_TRUE(run.stats.ok) << "seed=" << seed << ": " << run.stats.error;
    std::string why;
    ASSERT_TRUE(sameOutputs(run.out, ref.out, &why))
        << "seed=" << seed << ": " << why;
    const std::int64_t kills = run.stats.counters.get("fault.kills");
    EXPECT_EQ(run.stats.counters.get("proc.respawns"), kills)
        << "seed=" << seed;
    EXPECT_EQ(run.stats.counters.get("native.framesCreated"),
              run.stats.counters.get("native.framesRetired"))
        << "seed=" << seed;
    EXPECT_EQ(run.stats.counters.get("net.ctl.badFrames"), 0)
        << "seed=" << seed;
  }
}

TEST(MultiprocKill, FibKillEveryPe) {
  auto c = compileOk(kFibSource);
  native::NativeConfig inproc;
  inproc.numWorkers = 4;
  NativeRun ref = runNative(*c, inproc);
  ASSERT_TRUE(ref.stats.ok) << ref.stats.error;

  for (int pe = 0; pe < 4; ++pe) {
    native::NativeConfig nc = multiprocConfig(4);
    nc.faults.killPe = pe;
    nc.faults.killTimeUs = 1500.0;
    nc.faults.killRestartUs = 200.0;
    NativeRun run = runNative(*c, nc);
    ASSERT_TRUE(run.stats.ok) << "pe=" << pe << ": " << run.stats.error;
    std::string why;
    ASSERT_TRUE(sameOutputs(run.out, ref.out, &why))
        << "pe=" << pe << ": " << why;
  }
}

// A real external `kill -9` — sent by this test from outside the supervisor,
// exactly as an operator (or the OOM killer) would. PODS_TEST_PIDFILE makes
// the supervisor append "pe pid epoch" per spawned worker; the test snipes a
// worker as soon as its pid appears and the run must still come out
// bit-identical, with the kill visible in proc.respawns.
TEST(MultiprocKill, ExternalSigkillRecovered) {
  auto c = compileOk(workloads::simpleSource(16, 2));
  native::NativeConfig inproc;
  inproc.numWorkers = 4;
  NativeRun ref = runNative(*c, inproc);
  ASSERT_TRUE(ref.stats.ok) << ref.stats.error;

  const std::string pidfile =
      "/tmp/pods_multiproc_pids." + std::to_string(::getpid());
  std::remove(pidfile.c_str());
  ::setenv("PODS_TEST_PIDFILE", pidfile.c_str(), 1);

  std::thread sniper([&] {
    // Poll for worker PE 2, epoch 0, then SIGKILL it. If the run finishes
    // first (pid never appears), the test degenerates to fault-free parity.
    for (int i = 0; i < 2000; ++i) {
      std::ifstream in(pidfile);
      int pe = 0, epoch = 0;
      long pid = 0;
      while (in >> pe >> pid >> epoch) {
        if (pe == 2 && epoch == 0) {
          ::kill(static_cast<pid_t>(pid), SIGKILL);
          return;
        }
      }
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });
  NativeRun run = runNative(*c, multiprocConfig(4));
  sniper.join();
  ::unsetenv("PODS_TEST_PIDFILE");
  std::remove(pidfile.c_str());

  ASSERT_TRUE(run.stats.ok) << run.stats.error;
  std::string why;
  ASSERT_TRUE(sameOutputs(run.out, ref.out, &why)) << why;
  EXPECT_GE(run.stats.counters.get("proc.respawns"), 1);
  EXPECT_EQ(run.stats.counters.get("native.framesCreated"),
            run.stats.counters.get("native.framesRetired"));
}

// --- hung-PE heartbeat recovery ---------------------------------------------

// PODS_TEST_STOP_HEARTBEAT="pe@ms" freezes worker PE 1's ctl thread 5 ms in
// (epoch 0 only): no heartbeats, no Status replies, no log shipping — alive
// but indistinguishable from a wedged process. Only the supervisor's
// heartbeat watchdog can recover the run; the respawned epoch-1 incarnation
// (which the hook leaves alone) must finish it bit-identically.
TEST(MultiprocHang, HeartbeatTimeoutRestartsHungPe) {
  auto c = compileOk(workloads::simpleSource(16, 2));
  native::NativeConfig inproc;
  inproc.numWorkers = 4;
  NativeRun ref = runNative(*c, inproc);
  ASSERT_TRUE(ref.stats.ok) << ref.stats.error;

  ::setenv("PODS_TEST_STOP_HEARTBEAT", "1@5", 1);
  native::NativeConfig nc = multiprocConfig(4);
  nc.heartbeatPeriodMs = 10;
  nc.heartbeatTimeoutMs = 300;  // keep the stall (and the test) short
  NativeRun run = runNative(*c, nc);
  ::unsetenv("PODS_TEST_STOP_HEARTBEAT");

  ASSERT_TRUE(run.stats.ok) << run.stats.error;
  std::string why;
  ASSERT_TRUE(sameOutputs(run.out, ref.out, &why)) << why;
  EXPECT_GE(run.stats.counters.get("proc.heartbeatTimeouts"), 1);
  EXPECT_GE(run.stats.counters.get("proc.respawns"), 1);
}

}  // namespace
}  // namespace pods

int main(int argc, char** argv) {
  // Forked worker invocations (--pods-worker=CTLFD,SOCKFD) never reach
  // gtest: the worker entry point takes over the process and _exits.
  pods::native::procmgr::maybeRunPodsWorker(argc, argv);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
