// Cost-model property tests: simulated/modeled times must respond to the
// timing knobs in the physically sensible direction, and composite costs
// must decompose the way the paper's section 5.1 describes.
#include <gtest/gtest.h>

#include "core/pods.hpp"
#include "workloads/kernels.hpp"
#include "workloads/simple.hpp"

namespace pods {
namespace {

std::unique_ptr<Compiled> compileOk(const std::string& src) {
  CompileResult cr = compile(src);
  EXPECT_TRUE(cr.ok) << cr.diagnostics;
  return std::move(cr.compiled);
}

SimTime podsTime(const Compiled& c, int pes,
                 const sim::Timing& t = {}) {
  sim::MachineConfig mc;
  mc.numPEs = pes;
  mc.timing = t;
  PodsRun run = runPods(c, mc);
  EXPECT_TRUE(run.stats.ok) << run.stats.error;
  return run.stats.total;
}

TEST(CostModel, SlowerFloatingPointSlowsEverything) {
  auto c = compileOk(workloads::stencilSource(12, 1));
  sim::Timing slow;
  slow.fAdd = slow.fAdd * 10;
  slow.fMul = slow.fMul * 10;
  EXPECT_GT(podsTime(*c, 4, slow).ns, podsTime(*c, 4).ns);
}

TEST(CostModel, FreeNetworkNeverHurts) {
  auto c = compileOk(workloads::simpleSource(12, 1));
  sim::Timing freeNet;
  freeNet.smallMessage = SimTime{0};
  freeNet.largeMessageBase = SimTime{0};
  freeNet.perByte = SimTime{0};
  freeNet.networkHop = SimTime{0};
  freeNet.matchTime = SimTime{0};
  EXPECT_LE(podsTime(*c, 8, freeNet).ns, podsTime(*c, 8).ns);
}

TEST(CostModel, ContextSwitchCostVisible) {
  auto c = compileOk(workloads::stencilSource(10, 2));
  sim::Timing heavySwitch;
  heavySwitch.contextSwitch = usec(200.0);
  EXPECT_GT(podsTime(*c, 4, heavySwitch).ns, podsTime(*c, 4).ns);
}

TEST(CostModel, MatchTimeCostVisible) {
  auto c = compileOk(workloads::fill2dSource(16, 16));
  sim::Timing heavyMatch;
  heavyMatch.matchTime = usec(500.0);
  EXPECT_GT(podsTime(*c, 4, heavyMatch).ns, podsTime(*c, 4).ns);
}

TEST(CostModel, SequentialTimeDecomposes) {
  // A program with exactly k fp additions must grow linearly in fAdd.
  auto c = compileOk(R"(
def main() -> real {
  let s = for i = 0 to 99 carry (acc = 0.0) {
    next acc = acc + 1.5;
  } yield acc;
  return s;
}
)");
  sim::Timing base;
  BaselineRun a = runSequentialBaseline(*c, base);
  sim::Timing fat = base;
  fat.fAdd = base.fAdd + usec(10.0);
  BaselineRun b = runSequentialBaseline(*c, fat);
  ASSERT_TRUE(a.stats.ok);
  ASSERT_TRUE(b.stats.ok);
  // 100 fp additions: the delta must be exactly 100 * 10us.
  EXPECT_EQ(b.stats.total.ns - a.stats.total.ns, 100 * usec(10.0).ns);
}

TEST(CostModel, StaticPageCostMatters) {
  auto c = compileOk(workloads::stencilSource(24, 2));
  sim::Timing cheapPages;
  cheapPages.largeMessageBase = SimTime{0};
  cheapPages.perByte = SimTime{0};
  BaselineRun slow = runStaticBaseline(*c, 8);
  BaselineRun fast = runStaticBaseline(*c, 8, cheapPages);
  ASSERT_TRUE(slow.stats.ok);
  ASSERT_TRUE(fast.stats.ok);
  EXPECT_LT(fast.stats.total.ns, slow.stats.total.ns);
}

TEST(CostModel, SimulatedTimeIndependentOfHostSpeed) {
  // Determinism guard: two identical runs give identical simulated times
  // (already asserted elsewhere) and the time is a pure function of the
  // timing struct — scaling every constant by 2 exactly doubles fill2d.
  auto c = compileOk(workloads::fill2dSource(10, 10));
  sim::Timing t2;
  auto dbl = [](SimTime& x) { x = x * 2; };
  dbl(t2.intAdd); dbl(t2.intSub); dbl(t2.bitLogical); dbl(t2.fNeg);
  dbl(t2.fCmp); dbl(t2.fPow); dbl(t2.fAbs); dbl(t2.fSqrt); dbl(t2.fMul);
  dbl(t2.fDiv); dbl(t2.fAdd); dbl(t2.fSub); dbl(t2.intMul); dbl(t2.intDiv);
  dbl(t2.intCmp); dbl(t2.fExp); dbl(t2.fLog); dbl(t2.fSin); dbl(t2.fCos);
  dbl(t2.contextSwitch); dbl(t2.localArrayRead); dbl(t2.addrCalc);
  dbl(t2.frameListOp); dbl(t2.matchTime); dbl(t2.memRead); dbl(t2.memWrite);
  dbl(t2.unitSignal); dbl(t2.enqueueRead); dbl(t2.allocArray);
  dbl(t2.smallMessage); dbl(t2.largeMessageBase); dbl(t2.perByte);
  dbl(t2.networkHop);
  SimTime base = podsTime(*c, 3);
  SimTime doubled = podsTime(*c, 3, t2);
  EXPECT_EQ(doubled.ns, base.ns * 2);
}

TEST(CostModel, EuUtilizationInvariantUnderUniformScaling) {
  auto c = compileOk(workloads::fill2dSource(12, 12));
  sim::MachineConfig mc;
  mc.numPEs = 4;
  PodsRun a = runPods(*c, mc);
  mc.timing.fAdd = mc.timing.fAdd * 1;  // unchanged: identical runs
  PodsRun b = runPods(*c, mc);
  EXPECT_DOUBLE_EQ(a.stats.avgUtilization(sim::Unit::EU),
                   b.stats.avgUtilization(sim::Unit::EU));
}

}  // namespace
}  // namespace pods
