// Inline-function expansion unit tests.
#include <gtest/gtest.h>

#include "frontend/inliner.hpp"
#include "frontend/parser.hpp"
#include "frontend/sema.hpp"

namespace pods::fe {
namespace {

Module expandOk(std::string_view src) {
  DiagSink d;
  Module m = parse(src, d);
  EXPECT_FALSE(d.hasErrors()) << d.str();
  expandInlines(m, d);
  EXPECT_FALSE(d.hasErrors()) << d.str();
  // The expanded module must still pass sema.
  analyze(m, d, /*requireMain=*/false);
  EXPECT_FALSE(d.hasErrors()) << d.str();
  return m;
}

std::string expandErr(std::string_view src) {
  DiagSink d;
  Module m = parse(src, d);
  EXPECT_FALSE(d.hasErrors()) << d.str();
  expandInlines(m, d);
  EXPECT_TRUE(d.hasErrors());
  return d.str();
}

/// Counts calls to named user functions anywhere in a statement tree.
int countCalls(const std::vector<StmtPtr>& body, const std::string& name);

int countCallsExpr(const Expr& e, const std::string& name) {
  int n = (e.kind == ExKind::Call && e.name == name) ? 1 : 0;
  for (const auto& a : e.args) n += countCallsExpr(*a, name);
  if (e.loop) {
    if (e.loop->init) n += countCallsExpr(*e.loop->init, name);
    if (e.loop->limit) n += countCallsExpr(*e.loop->limit, name);
    if (e.loop->cond) n += countCallsExpr(*e.loop->cond, name);
    for (const auto& c : e.loop->carries) n += countCallsExpr(*c.init, name);
    n += countCalls(e.loop->body, name);
    if (e.loop->yieldExpr) n += countCallsExpr(*e.loop->yieldExpr, name);
  }
  return n;
}

int countCalls(const std::vector<StmtPtr>& body, const std::string& name) {
  int n = 0;
  for (const auto& s : body) {
    if (s->value) n += countCallsExpr(*s->value, name);
    for (const auto& v : s->values) n += countCallsExpr(*v, name);
    for (const auto& v : s->subs) n += countCallsExpr(*v, name);
    if (s->cond) n += countCallsExpr(*s->cond, name);
    n += countCalls(s->thenBody, name);
    n += countCalls(s->elseBody, name);
  }
  return n;
}

TEST(Inliner, SimpleExpansion) {
  Module m = expandOk(R"(
inline def sq(x: real) -> real { return x * x; }
def f(a: real) -> real { return sq(a) + sq(a + 1.0); }
)");
  EXPECT_EQ(countCalls(m.find("f")->body, "sq"), 0);
  // The body gained hoisted lets for args and results.
  EXPECT_GT(m.find("f")->body.size(), 1u);
}

TEST(Inliner, NestedInlineCalls) {
  Module m = expandOk(R"(
inline def sq(x: real) -> real { return x * x; }
inline def quad(x: real) -> real { return sq(sq(x)); }
def f(a: real) -> real { return quad(a); }
)");
  EXPECT_EQ(countCalls(m.find("f")->body, "quad"), 0);
  EXPECT_EQ(countCalls(m.find("f")->body, "sq"), 0);
}

TEST(Inliner, MultiStatementBodyWithArrays) {
  Module m = expandOk(R"(
inline def put2(a: array, i: int, v: real) {
  a[i] = v;
  a[i + 1] = v * 2.0;
}
def f(a: array) {
  put2(a, 0, 1.5);
}
)");
  EXPECT_EQ(countCalls(m.find("f")->body, "put2"), 0);
  // The array writes were spliced in.
  int writes = 0;
  for (const auto& s : m.find("f")->body) {
    if (s->kind == StKind::ArrayWrite) ++writes;
  }
  EXPECT_EQ(writes, 2);
}

TEST(Inliner, HygieneNoCapture) {
  // The inline body's local `t` must not collide with the caller's `t`.
  Module m = expandOk(R"(
inline def g(x: int) -> int {
  let t = x + 1;
  return t;
}
def f() -> int {
  let t = 10;
  return g(t) + t;
}
)");
  (void)m;  // sema passing (no duplicate-binding error) is the assertion
}

TEST(Inliner, InsideLoopsAndIfs) {
  Module m = expandOk(R"(
inline def g(x: int) -> int { return x * 2; }
def f(n: int) -> int {
  let r = for i = 0 to n carry (s = 0) {
    if i % 2 == 0 {
      next s = s + g(i);
    }
  } yield s;
  return r;
}
)");
  EXPECT_EQ(countCalls(m.find("f")->body, "g"), 0);
}

TEST(Inliner, InLoopBoundsIsHoisted) {
  Module m = expandOk(R"(
inline def half(x: int) -> int { return x / 2; }
def f(n: int) {
  for i = 0 to half(n) { }
}
)");
  EXPECT_EQ(countCalls(m.find("f")->body, "half"), 0);
}

TEST(Inliner, RecursionRejected) {
  std::string e = expandErr(R"(
inline def r(x: int) -> int { return r(x); }
def f() -> int { return r(1); }
)");
  EXPECT_NE(e.find("too deep"), std::string::npos);
}

TEST(Inliner, MutualRecursionRejected) {
  expandErr(R"(
inline def a(x: int) -> int { return b(x); }
inline def b(x: int) -> int { return a(x); }
def f() -> int { return a(1); }
)");
}

TEST(Inliner, ReturnNotLastRejected) {
  std::string e = expandErr(R"(
inline def g(x: int) -> int { return x; let y = 1; }
def f() -> int { return g(1); }
)");
  EXPECT_NE(e.find("final statement"), std::string::npos);
}

TEST(Inliner, WhileCondCallRejected) {
  std::string e = expandErr(R"(
inline def g(x: int) -> int { return x; }
def f() {
  loop carry (k = 0) while g(k) < 3 { next k = k + 1; }
}
)");
  EXPECT_NE(e.find("not allowed"), std::string::npos);
}

TEST(Inliner, YieldCallRejected) {
  expandErr(R"(
inline def g(x: int) -> int { return x; }
def f() -> int {
  let r = for i = 0 to 3 carry (s = 0) { next s = s + 1; } yield g(s);
  return r;
}
)");
}

TEST(Inliner, VoidInlineAsStatement) {
  Module m = expandOk(R"(
inline def touch(a: array, i: int) { a[i] = 0.0; }
def f(a: array) { touch(a, 3); }
)");
  EXPECT_EQ(countCalls(m.find("f")->body, "touch"), 0);
}

TEST(Inliner, VoidInlineAsValueRejected) {
  std::string e = expandErr(R"(
inline def nop() { }
def f() -> int { let x = nop(); return 0; }
)");
  EXPECT_NE(e.find("used as a value"), std::string::npos);
}

TEST(Inliner, NonInlineCallsUntouched) {
  Module m = expandOk(R"(
def g(x: int) -> int { return x; }
def f() -> int { return g(1); }
)");
  EXPECT_EQ(countCalls(m.find("f")->body, "g"), 1);
}

}  // namespace
}  // namespace pods::fe
