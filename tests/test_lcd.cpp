// Loop-carried dependency analysis tests (paper section 4.2.4).
#include <gtest/gtest.h>

#include "frontend/inliner.hpp"
#include "frontend/parser.hpp"
#include "frontend/sema.hpp"
#include "ir/graphgen.hpp"
#include "partition/lcd.hpp"

namespace pods::partition {
namespace {

struct Built {
  ir::Program prog;
  std::vector<FnSummary> summaries;
};

Built build(std::string_view src) {
  DiagSink d;
  fe::Module m = fe::parse(src, d);
  EXPECT_FALSE(d.hasErrors()) << d.str();
  fe::expandInlines(m, d);
  fe::analyze(m, d, /*requireMain=*/false);
  EXPECT_FALSE(d.hasErrors()) << d.str();
  Built b{ir::buildGraph(m, d), {}};
  b.summaries = summarizeFunctions(b.prog);
  return b;
}

const ir::Function& fn(const ir::Program& p, const std::string& name) {
  for (const ir::Function& f : p.fns) {
    if (f.name == name) return f;
  }
  ADD_FAILURE() << "no function " << name;
  return p.fns[0];
}

/// Finds the k-th loop at the top level of a function body.
const ir::Block& loopAt(const ir::Function& f, int k = 0) {
  int seen = 0;
  for (const ir::Item& it : f.body.body) {
    if (it.kind == ir::ItemKind::Loop && seen++ == k) return *it.loop;
  }
  ADD_FAILURE() << "no loop " << k;
  return f.body;
}

const ir::Block& innerLoop(const ir::Block& b, int k = 0) {
  int seen = 0;
  for (const ir::Item& it : b.body) {
    if (it.kind == ir::ItemKind::Loop && seen++ == k) return *it.loop;
  }
  ADD_FAILURE() << "no inner loop";
  return b;
}

bool lcdOf(const Built& b, const ir::Function& f, const ir::Block& loop) {
  FnTables tables(f);
  return hasLoopCarriedDependency(loop, tables, b.summaries);
}

TEST(Lcd, ElementWiseLoopHasNone) {
  Built b = build(R"(
def f(n: int, a: matrix, out: matrix) {
  for i = 0 to n - 1 {
    for j = 0 to n - 1 { out[i,j] = a[i,j] * 2.0; }
  }
}
)");
  const ir::Function& f = fn(b.prog, "f");
  EXPECT_FALSE(lcdOf(b, f, loopAt(f)));
  EXPECT_FALSE(lcdOf(b, f, innerLoop(loopAt(f))));
}

TEST(Lcd, CarriedVariableIsLcd) {
  Built b = build(R"(
def f(n: int, a: array) -> real {
  let s = for i = 0 to n - 1 carry (acc = 0.0) { next acc = acc + a[i]; } yield acc;
  return s;
}
)");
  const ir::Function& f = fn(b.prog, "f");
  EXPECT_TRUE(lcdOf(b, f, loopAt(f)));
}

TEST(Lcd, WhileLoopIsAlwaysLcd) {
  Built b = build(R"(
def f(n: int) -> int {
  let r = loop carry (k = 0) while k < n { next k = k + 1; } yield k;
  return r;
}
)");
  const ir::Function& f = fn(b.prog, "f");
  EXPECT_TRUE(lcdOf(b, f, loopAt(f)));
}

TEST(Lcd, ForwardRecurrenceIsLcd) {
  Built b = build(R"(
def f(n: int, a: array) {
  for i = 1 to n - 1 { a[i] = a[i-1] + 1.0; }
}
)");
  const ir::Function& f = fn(b.prog, "f");
  EXPECT_TRUE(lcdOf(b, f, loopAt(f)));
}

TEST(Lcd, SameIterationReadIsNotLcd) {
  // Writes and reads the same element slice (offset 0 at dim 0): no carry.
  Built b = build(R"(
def f(n: int, m: matrix) {
  for i = 0 to n - 1 {
    for j = 1 to n - 1 { m[i,j] = m[i,0] * 2.0; }
  }
}
)");
  const ir::Function& f = fn(b.prog, "f");
  // Outer i: writes m[i,j] and reads m[i,0]; dim0 offsets agree -> no LCD.
  EXPECT_FALSE(lcdOf(b, f, loopAt(f)));
  // Inner j: at dim1 the read (const 0) is not affine in j -> LCD.
  EXPECT_TRUE(lcdOf(b, f, innerLoop(loopAt(f))));
}

TEST(Lcd, RowSweepOuterFreeInnerCarried) {
  // The conduction row-sweep pattern.
  Built b = build(R"(
def f(n: int, t: matrix, cp: matrix) {
  for i = 0 to n - 1 {
    for j = 1 to n - 1 {
      cp[i,j] = cp[i,j-1] * 0.5 + t[i,j];
    }
  }
}
)");
  const ir::Function& f = fn(b.prog, "f");
  EXPECT_FALSE(lcdOf(b, f, loopAt(f)));
  EXPECT_TRUE(lcdOf(b, f, innerLoop(loopAt(f))));
}

TEST(Lcd, ColumnSweepOuterCarriedInnerFree) {
  Built b = build(R"(
def f(n: int, t: matrix, cp: matrix) {
  for i = 1 to n - 1 {
    for j = 0 to n - 1 {
      cp[i,j] = cp[i-1,j] * 0.5 + t[i,j];
    }
  }
}
)");
  const ir::Function& f = fn(b.prog, "f");
  EXPECT_TRUE(lcdOf(b, f, loopAt(f)));
  EXPECT_FALSE(lcdOf(b, f, innerLoop(loopAt(f))));
}

TEST(Lcd, ReadOnlyNeighborAccessIsNotLcd) {
  // Stencil: reads a *different* array with shifted subscripts.
  Built b = build(R"(
def f(n: int, told: matrix, tnew: matrix) {
  for i = 1 to n - 2 {
    for j = 1 to n - 2 {
      tnew[i,j] = 0.25 * (told[i-1,j] + told[i+1,j] + told[i,j-1] + told[i,j+1]);
    }
  }
}
)");
  const ir::Function& f = fn(b.prog, "f");
  EXPECT_FALSE(lcdOf(b, f, loopAt(f)));
  EXPECT_FALSE(lcdOf(b, f, innerLoop(loopAt(f))));
}

TEST(Lcd, NonAffineWriteIsConservativelyLcd) {
  Built b = build(R"(
def f(n: int, a: array) {
  for i = 1 to n - 1 {
    a[i * 2] = a[i] + 1.0;
  }
}
)");
  const ir::Function& f = fn(b.prog, "f");
  EXPECT_TRUE(lcdOf(b, f, loopAt(f)));
}

TEST(Lcd, AffineOffsetChainsRecognized) {
  // i + 2 - 1 == i + 1 on both sides: same offset, no LCD.
  Built b = build(R"(
def f(n: int, a: array, b: array) {
  for i = 0 to n - 3 {
    a[i + 2 - 1] = a[1 + i] + b[i];
  }
}
)");
  const ir::Function& f = fn(b.prog, "f");
  EXPECT_FALSE(lcdOf(b, f, loopAt(f)));
}

TEST(Summaries, DirectReadsAndWrites) {
  Built b = build(R"(
def f(a: array, bb: array, c: array) {
  a[0] = bb[0];
}
)");
  const FnSummary& s = b.summaries[0];
  EXPECT_TRUE(s.paramWrite[0]);
  EXPECT_FALSE(s.paramRead[0]);
  EXPECT_TRUE(s.paramRead[1]);
  EXPECT_FALSE(s.paramWrite[1]);
  EXPECT_FALSE(s.paramRead[2]);
  EXPECT_FALSE(s.paramWrite[2]);
}

TEST(Summaries, PropagateThroughCalls) {
  Built b = build(R"(
def writer(x: array) { x[0] = 1.0; }
def outer(y: array) { writer(y); }
)");
  const ir::Function& outer = fn(b.prog, "outer");
  std::size_t idx = static_cast<std::size_t>(&outer - b.prog.fns.data());
  EXPECT_TRUE(b.summaries[idx].paramWrite[0]);
}

TEST(Summaries, RecursionReachesFixpoint) {
  Built b = build(R"(
def rec(a: array, k: int) {
  if k > 0 {
    a[k] = 1.0;
    rec(a, k - 1);
  }
}
)");
  EXPECT_TRUE(b.summaries[0].paramWrite[0]);
}

TEST(Lcd, CallWritingSharedArrayIsLcd) {
  Built b = build(R"(
def put(a: array, i: int) { a[i] = 1.0; }
def f(n: int, a: array) {
  for i = 0 to n - 1 {
    let x = a[i];
    put(a, i);
  }
}
)");
  const ir::Function& f = fn(b.prog, "f");
  // The call's write shape is unknown -> conservative LCD.
  EXPECT_TRUE(lcdOf(b, f, loopAt(f)));
}

TEST(Lcd, CallOnUnrelatedArrayIsFine) {
  Built b = build(R"(
def put(a: array, i: int) { a[i] = 1.0; }
def f(n: int, a: array, b: array) {
  for i = 0 to n - 1 {
    b[i] = 2.0;
  }
}
)");
  const ir::Function& f = fn(b.prog, "f");
  EXPECT_FALSE(lcdOf(b, f, loopAt(f)));
}

TEST(Lcd, DisjointRowsViaInvariantBase) {
  // Pascal's-triangle inner loop: writes row i while reading row i-1 with a
  // *shifted* column — the column offsets differ, but dim 0 proves the
  // accesses disjoint (same invariant base i, offsets 0 vs -1), so the
  // inner j loop carries nothing.
  Built b = build(R"(
def f(n: int, p: matrix) {
  for i = 1 to n - 1 {
    for j = 1 to n - 1 {
      p[i,j] = p[i-1,j-1] + p[i-1,j];
    }
  }
}
)");
  const ir::Function& f = fn(b.prog, "f");
  EXPECT_TRUE(lcdOf(b, f, loopAt(f)));               // rows do depend
  EXPECT_FALSE(lcdOf(b, f, innerLoop(loopAt(f))));   // columns do not
}

TEST(Lcd, DisjointConstantCoordinates) {
  // Writes column 5 while reading column 3: never the same element.
  Built b = build(R"(
def f(n: int, m: matrix) {
  for i = 0 to n - 1 {
    m[i, 5] = m[i, 3] * 2.0;
  }
}
)");
  const ir::Function& f = fn(b.prog, "f");
  EXPECT_FALSE(lcdOf(b, f, loopAt(f)));
}

TEST(Lcd, EqualInvariantBaseOffsetsStillCarry) {
  // Reading and writing the same row r (invariant, equal offsets) with a
  // j-shift: a genuine carried dependency in j.
  Built b = build(R"(
def f(n: int, r: int, m: matrix) {
  for j = 1 to n - 1 {
    m[r, j] = m[r, j-1] + 1.0;
  }
}
)");
  const ir::Function& f = fn(b.prog, "f");
  EXPECT_TRUE(lcdOf(b, f, loopAt(f)));
}

TEST(Lcd, VaryingBaseGivesNoDisjointnessProof) {
  // k varies inside the loop (inner index): k vs k-1 do overlap across
  // iterations, so no disjointness may be concluded.
  Built b = build(R"(
def f(n: int, m: matrix) {
  for i = 0 to n - 1 {
    for k = 1 to n - 1 {
      m[k, i] = m[k - 1, i] + 1.0;
    }
  }
}
)");
  const ir::Function& f = fn(b.prog, "f");
  // Outer i: dim-1 slices agree (both i+0): independent.
  EXPECT_FALSE(lcdOf(b, f, loopAt(f)));
  // Inner k: carried (dim-0 offsets differ in k, dim-1 equal but that
  // proves same-slice only for... i, not k; dim-0 rules it).
  EXPECT_TRUE(lcdOf(b, f, innerLoop(loopAt(f))));
}

TEST(Affine, BaseForms) {
  Built b = build(R"(
def f(n: int, r: int, a: array) {
  for i = 0 to n - 1 {
    a[r + 2] = real(i);
  }
}
)");
  const ir::Function& f = fn(b.prog, "f");
  const ir::Block& loop = loopAt(f);
  FnTables tables(f);
  auto accesses = collectAccesses(loop, tables, b.summaries);
  ASSERT_EQ(accesses.size(), 1u);
  BaseForm form = baseOf(accesses[0].sub[0], tables);
  EXPECT_EQ(form.kind, BaseForm::Kind::Var);
  EXPECT_EQ(form.base, f.params[1]);  // r
  EXPECT_EQ(form.offset, 2);
}

TEST(Affine, ConstBaseForm) {
  Built b = build(R"(
def f(a: array) {
  a[4 + 3] = 1.0;
}
)");
  const ir::Function& f = fn(b.prog, "f");
  FnTables tables(f);
  // Find the write node's subscript.
  ir::ValId sub = ir::kNoVal;
  ir::forEachItem(f.body, [&](const ir::Item& it) {
    if (it.kind == ir::ItemKind::Node && it.node.op == ir::NodeOp::AWrite) {
      sub = it.node.in[1];
    }
  });
  ASSERT_NE(sub, ir::kNoVal);
  BaseForm form = baseOf(sub, tables);
  EXPECT_EQ(form.kind, BaseForm::Kind::Const);
  EXPECT_EQ(form.offset, 7);
}

TEST(Affine, Forms) {
  Built b = build(R"(
def f(n: int, a: array) {
  for i = 0 to n - 1 {
    a[i + 3] = 1.0;
  }
}
)");
  const ir::Function& f = fn(b.prog, "f");
  const ir::Block& loop = loopAt(f);
  FnTables tables(f);
  auto accesses = collectAccesses(loop, tables, b.summaries);
  ASSERT_EQ(accesses.size(), 1u);
  AffineForm form = affineIn(accesses[0].sub[0], loop.indexVal, tables);
  EXPECT_EQ(form.kind, AffineForm::Kind::Affine);
  EXPECT_EQ(form.offset, 3);
}

TEST(Affine, MovChainsResolved) {
  Built b = build(R"(
def f(n: int, a: array) {
  for i = 0 to n - 1 {
    let k = i;
    a[k - 2] = 1.0;
  }
}
)");
  const ir::Function& f = fn(b.prog, "f");
  const ir::Block& loop = loopAt(f);
  FnTables tables(f);
  auto accesses = collectAccesses(loop, tables, b.summaries);
  ASSERT_EQ(accesses.size(), 1u);
  AffineForm form = affineIn(accesses[0].sub[0], loop.indexVal, tables);
  EXPECT_EQ(form.kind, AffineForm::Kind::Affine);
  EXPECT_EQ(form.offset, -2);
}

}  // namespace
}  // namespace pods::partition
