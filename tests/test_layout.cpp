// Array partitioning & distribution math (paper section 4.1, Figures 4/6).
// Property-style sweeps over shapes, PE counts, and page sizes check the
// invariants the Range-Filter machinery depends on: segments partition the
// pages, row ownership partitions the rows, per-row column ranges partition
// each row.
#include <gtest/gtest.h>

#include "runtime/array_layout.hpp"

namespace pods {
namespace {

TEST(ArrayLayout, PaperFigure4Example) {
  // "A two dimensional 6 x 256 array is to be partitioned and distributed
  //  over 4 PEs. There are 1536 elements in the array, resulting in 48
  //  pages, i.e., 12 pages per PE."
  ArrayLayout l({2, 6, 256}, 4, 32);
  EXPECT_EQ(l.numPages(), 48);
  for (int pe = 0; pe < 4; ++pe) {
    EXPECT_EQ(l.pageSegment(pe).size(), 12);
  }
  // PE0 holds the first 12 pages = flat elements [0, 383].
  EXPECT_EQ(l.elemSegment(0).lo, 0);
  EXPECT_EQ(l.elemSegment(0).hi, 383);
  // First-element-of-row ownership (Figure 6): PE0 is responsible for rows
  // 0 and 1 (it holds element (1,0) even though the second half of row 1
  // lives on PE1); PE1 computes only row 2.
  EXPECT_EQ(l.ownedRows(0).lo, 0);
  EXPECT_EQ(l.ownedRows(0).hi, 1);
  EXPECT_EQ(l.ownedRows(1).lo, 2);
  EXPECT_EQ(l.ownedRows(1).hi, 2);
  EXPECT_EQ(l.ownedRows(3).hi, 5);
}

TEST(ArrayLayout, Figure5ColumnRanges) {
  // Fig. 5 narrative: "the RF in PE1 produces the j range 0:255 when i is 0
  // but only 0:127 when i is 1" (0-based PE numbering here: PE0).
  ArrayLayout l({2, 6, 256}, 4, 32);
  IdxRange r0 = l.ownedColsOfRow(0, 0);
  EXPECT_EQ(r0.lo, 0);
  EXPECT_EQ(r0.hi, 255);
  IdxRange r1 = l.ownedColsOfRow(0, 1);
  EXPECT_EQ(r1.lo, 0);
  EXPECT_EQ(r1.hi, 127);
  IdxRange r1b = l.ownedColsOfRow(1, 1);
  EXPECT_EQ(r1b.lo, 128);
  EXPECT_EQ(r1b.hi, 255);
}

TEST(ArrayLayout, OwnerOfOffsetMatchesSegments) {
  ArrayLayout l({2, 10, 37}, 5, 8);
  for (std::int64_t off = 0; off < l.shape().numElems(); ++off) {
    int owner = l.ownerOfOffset(off);
    EXPECT_TRUE(l.elemSegment(owner).contains(off)) << "offset " << off;
  }
}

struct LayoutCase {
  int rank;
  std::int64_t d0, d1;
  int pes;
  int page;
};

class LayoutProperty : public ::testing::TestWithParam<LayoutCase> {};

TEST_P(LayoutProperty, PageSegmentsPartitionPages) {
  const LayoutCase& c = GetParam();
  ArrayLayout l({c.rank, c.d0, c.d1}, c.pes, c.page);
  std::int64_t covered = 0;
  std::int64_t prevHi = -1;
  for (int pe = 0; pe < c.pes; ++pe) {
    IdxRange seg = l.pageSegment(pe);
    if (seg.empty()) continue;
    EXPECT_EQ(seg.lo, prevHi + 1);  // contiguous, in PE order
    prevHi = seg.hi;
    covered += seg.size();
  }
  EXPECT_EQ(covered, l.numPages());
  // Balance: sizes differ by at most one page.
  std::int64_t mn = l.numPages(), mx = 0;
  for (int pe = 0; pe < c.pes; ++pe) {
    std::int64_t s = l.pageSegment(pe).size();
    mn = std::min(mn, s);
    mx = std::max(mx, s);
  }
  EXPECT_LE(mx - mn, 1);
}

TEST_P(LayoutProperty, RowOwnershipPartitionsRows) {
  const LayoutCase& c = GetParam();
  ArrayLayout l({c.rank, c.d0, c.d1}, c.pes, c.page);
  std::vector<int> ownersSeen(static_cast<std::size_t>(l.shape().dim0), 0);
  for (int pe = 0; pe < c.pes; ++pe) {
    IdxRange rows = l.ownedRows(pe);
    for (std::int64_t r = rows.lo; r <= rows.hi; ++r) {
      ASSERT_GE(r, 0);
      ASSERT_LT(r, l.shape().dim0);
      ownersSeen[static_cast<std::size_t>(r)]++;
      // The owner must hold the row's first element.
      EXPECT_EQ(l.ownerOfOffset(r * l.shape().dim1), pe);
    }
  }
  for (std::int64_t r = 0; r < l.shape().dim0; ++r) {
    EXPECT_EQ(ownersSeen[static_cast<std::size_t>(r)], 1) << "row " << r;
  }
}

TEST_P(LayoutProperty, ColumnRangesPartitionEveryRow) {
  const LayoutCase& c = GetParam();
  ArrayLayout l({c.rank, c.d0, c.d1}, c.pes, c.page);
  for (std::int64_t row = 0; row < l.shape().dim0; ++row) {
    std::vector<int> seen(static_cast<std::size_t>(l.shape().dim1), 0);
    for (int pe = 0; pe < c.pes; ++pe) {
      IdxRange cols = l.ownedColsOfRow(pe, row);
      for (std::int64_t j = cols.lo; j <= cols.hi; ++j) {
        seen[static_cast<std::size_t>(j)]++;
        // Consistency with flat ownership.
        EXPECT_EQ(l.ownerOfOffset(row * l.shape().dim1 + j), pe);
      }
    }
    for (std::int64_t j = 0; j < l.shape().dim1; ++j) {
      EXPECT_EQ(seen[static_cast<std::size_t>(j)], 1)
          << "row " << row << " col " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LayoutProperty,
    ::testing::Values(LayoutCase{2, 6, 256, 4, 32},   // the paper's example
                      LayoutCase{2, 16, 16, 32, 32},  // more PEs than pages
                      LayoutCase{2, 64, 64, 32, 32},
                      LayoutCase{2, 7, 13, 3, 4},     // nothing divides
                      LayoutCase{2, 1, 100, 8, 16},   // single row
                      LayoutCase{2, 100, 1, 8, 16},   // single column
                      LayoutCase{1, 1000, 1, 7, 32},  // vector
                      LayoutCase{1, 5, 1, 16, 64},    // tiny vector, many PEs
                      LayoutCase{2, 33, 17, 5, 1}));  // one-element pages

TEST(ArrayLayout, ZeroElementArrayIsWellDefined) {
  for (auto shape : {ArrayShape{1, 0, 1}, ArrayShape{2, 0, 64},
                     ArrayShape{2, 64, 0}}) {
    ArrayLayout l(shape, 4, 32);
    EXPECT_EQ(l.numPages(), 0);
    for (int pe = 0; pe < 4; ++pe) {
      EXPECT_TRUE(l.pageSegment(pe).empty());
      EXPECT_TRUE(l.elemSegment(pe).empty());
      EXPECT_TRUE(l.ownedRows(pe).empty());
      EXPECT_TRUE(l.ownedColsOfRow(pe, 0).empty());
    }
    // Probing the empty layout's page 0 still answers (PE 0 is its home).
    EXPECT_EQ(l.pageOwner(0), 0);
    EXPECT_EQ(l.ownerOfOffset(0), 0);
  }
}

TEST(ArrayLayout, FewerPagesThanPEs) {
  // 2 pages over 4 PEs: the first two PEs get one page each, the rest none,
  // and every owner probe answers a PE that actually holds the page.
  ArrayLayout l({1, 64, 1}, 4, 32);
  ASSERT_EQ(l.numPages(), 2);
  EXPECT_EQ(l.pageSegment(0).size(), 1);
  EXPECT_EQ(l.pageSegment(1).size(), 1);
  EXPECT_TRUE(l.pageSegment(2).empty());
  EXPECT_TRUE(l.pageSegment(3).empty());
  for (std::int64_t p = 0; p < l.numPages(); ++p) {
    EXPECT_TRUE(l.pageSegment(l.pageOwner(p)).contains(p)) << "page " << p;
  }
}

// Shared check: after any sequence of migrations the surviving PEs' page
// segments are still disjoint, contiguous in page order, and covering, and
// no probe answers a dead PE.
void expectMigratedInvariants(const ArrayLayout& l) {
  std::vector<int> owners(static_cast<std::size_t>(l.numPages()), 0);
  for (int pe = 0; pe < l.numPEs(); ++pe) {
    IdxRange seg = l.pageSegment(pe);
    if (seg.empty()) continue;
    EXPECT_FALSE(l.peDead(pe)) << "dead PE " << pe << " still owns pages";
    for (std::int64_t p = seg.lo; p <= seg.hi; ++p) {
      ASSERT_GE(p, 0);
      ASSERT_LT(p, l.numPages());
      owners[static_cast<std::size_t>(p)]++;
      EXPECT_EQ(l.pageOwner(p), pe);
    }
  }
  for (std::int64_t p = 0; p < l.numPages(); ++p) {
    EXPECT_EQ(owners[static_cast<std::size_t>(p)], 1) << "page " << p;
  }
  // Element / row / column ownership all derive from pageOwner, so the
  // first-element-of-row partition must survive migration too.
  std::vector<int> rowSeen(static_cast<std::size_t>(l.shape().dim0), 0);
  for (int pe = 0; pe < l.numPEs(); ++pe) {
    IdxRange rows = l.ownedRows(pe);
    for (std::int64_t r = rows.lo; r <= rows.hi; ++r) {
      rowSeen[static_cast<std::size_t>(r)]++;
    }
  }
  for (std::int64_t r = 0; r < l.shape().dim0; ++r) {
    EXPECT_EQ(rowSeen[static_cast<std::size_t>(r)], 1) << "row " << r;
  }
}

TEST(ArrayLayoutMigration, SingleKillKeepsPartition) {
  // Every victim position, including PE 0 (whose heir is the next higher
  // survivor) and the last PE, on shapes with even, ragged, and sparse
  // (fewer pages than PEs) segment maps.
  for (LayoutCase c : {LayoutCase{2, 6, 256, 4, 32}, LayoutCase{2, 7, 13, 3, 4},
                       LayoutCase{1, 64, 1, 4, 32},  // 2 pages, 4 PEs
                       LayoutCase{2, 16, 16, 5, 32}}) {
    for (int victim = 0; victim < c.pes; ++victim) {
      ArrayLayout l({c.rank, c.d0, c.d1}, c.pes, c.page);
      l.migratePe(victim);
      EXPECT_TRUE(l.migrated());
      EXPECT_TRUE(l.peDead(victim));
      EXPECT_TRUE(l.pageSegment(victim).empty());
      expectMigratedInvariants(l);
    }
  }
}

TEST(ArrayLayoutMigration, CascadingKillsDownToOneSurvivor) {
  // Kill PEs one at a time in an interleaved order; after each step the
  // partition invariants hold, and the last survivor owns every page.
  ArrayLayout l({2, 16, 16}, 6, 8);
  const int order[] = {2, 0, 5, 1, 4};
  for (int victim : order) {
    l.migratePe(victim);
    expectMigratedInvariants(l);
  }
  IdxRange all = l.pageSegment(3);
  EXPECT_EQ(all.lo, 0);
  EXPECT_EQ(all.hi, l.numPages() - 1);
}

TEST(ArrayLayoutMigration, Idempotent) {
  ArrayLayout l({2, 6, 256}, 4, 32);
  l.migratePe(1);
  IdxRange after = l.pageSegment(0);
  l.migratePe(1);  // second kill of the same PE is a no-op
  EXPECT_EQ(l.pageSegment(0).lo, after.lo);
  EXPECT_EQ(l.pageSegment(0).hi, after.hi);
  expectMigratedInvariants(l);
}

TEST(ArrayLayoutMigration, VictimWithNoPagesStillMarkedDead) {
  ArrayLayout l({1, 64, 1}, 4, 32);  // 2 pages: PEs 2 and 3 own nothing
  l.migratePe(3);
  EXPECT_TRUE(l.peDead(3));
  expectMigratedInvariants(l);
  // The non-empty segments are untouched.
  EXPECT_EQ(l.pageSegment(0).size(), 1);
  EXPECT_EQ(l.pageSegment(1).size(), 1);
}

// --- weight-parameterized ownership ------------------------------------
//
// The weighted cut must be a strict generalization: equal weights reproduce
// the uniform quotient/remainder segmentation *exactly* (so existing runs
// stay bit-identical), and skewed weights keep every partition invariant the
// Range-Filter machinery depends on while shifting segment sizes by
// largest-remainder apportionment.

TEST(WeightedLayout, EqualWeightsMatchUniformExactly) {
  for (LayoutCase c : {LayoutCase{2, 6, 256, 4, 32}, LayoutCase{2, 7, 13, 3, 4},
                       LayoutCase{1, 64, 1, 4, 32}, LayoutCase{2, 16, 16, 5, 32},
                       LayoutCase{1, 1000, 1, 7, 32}}) {
    ArrayLayout plain({c.rank, c.d0, c.d1}, c.pes, c.page);
    for (std::int64_t w : {std::int64_t{1}, std::int64_t{5}}) {
      ArrayLayout weighted({c.rank, c.d0, c.d1}, c.pes, c.page,
                           std::vector<std::int64_t>(
                               static_cast<std::size_t>(c.pes), w));
      EXPECT_TRUE(weighted.weighted());
      for (int pe = 0; pe < c.pes; ++pe) {
        EXPECT_EQ(weighted.pageSegment(pe).lo, plain.pageSegment(pe).lo)
            << "pe " << pe << " w " << w;
        EXPECT_EQ(weighted.pageSegment(pe).hi, plain.pageSegment(pe).hi)
            << "pe " << pe << " w " << w;
        EXPECT_EQ(weighted.ownedRows(pe).lo, plain.ownedRows(pe).lo);
        EXPECT_EQ(weighted.ownedRows(pe).hi, plain.ownedRows(pe).hi);
      }
      for (std::int64_t p = 0; p < plain.numPages(); ++p) {
        EXPECT_EQ(weighted.pageOwner(p), plain.pageOwner(p)) << "page " << p;
      }
    }
  }
}

TEST(WeightedLayout, UnweightedReportsUnweighted) {
  ArrayLayout l({2, 6, 256}, 4, 32);
  EXPECT_FALSE(l.weighted());
  ArrayLayout w({2, 6, 256}, 4, 32, {2, 1, 1, 1});
  EXPECT_TRUE(w.weighted());
}

TEST(WeightedLayout, LargestRemainderApportionment) {
  // 48 pages, weights 6:1:1:1 (total 9). Exact quotas are 32 and 5.33...;
  // floors assign 32+5+5+5 = 47, and the one leftover page goes to the
  // highest remainder — PE1 (ties broken toward lower PE ids).
  ArrayLayout l({2, 6, 256}, 4, 32, {6, 1, 1, 1});
  ASSERT_EQ(l.numPages(), 48);
  EXPECT_EQ(l.pageSegment(0).size(), 32);
  EXPECT_EQ(l.pageSegment(1).size(), 6);
  EXPECT_EQ(l.pageSegment(2).size(), 5);
  EXPECT_EQ(l.pageSegment(3).size(), 5);
}

TEST(WeightedLayout, SkewedPartitionInvariantsHold) {
  const std::vector<std::vector<std::int64_t>> weightSets3 = {
      {5, 1, 1}, {1, 1, 7}, {100, 1, 100}};
  for (LayoutCase c : {LayoutCase{2, 6, 256, 3, 32}, LayoutCase{2, 7, 13, 3, 4},
                       LayoutCase{1, 64, 1, 3, 32},  // fewer pages than quota
                       LayoutCase{2, 33, 17, 3, 1}}) {
    for (const auto& weights : weightSets3) {
      ArrayLayout l({c.rank, c.d0, c.d1}, c.pes, c.page, weights);
      // Page segments: contiguous in PE order, disjoint, covering.
      std::int64_t covered = 0, prevHi = -1;
      for (int pe = 0; pe < c.pes; ++pe) {
        IdxRange seg = l.pageSegment(pe);
        if (seg.empty()) continue;
        EXPECT_EQ(seg.lo, prevHi + 1);
        prevHi = seg.hi;
        covered += seg.size();
      }
      EXPECT_EQ(covered, l.numPages());
      // Probes agree with the segments.
      for (std::int64_t p = 0; p < l.numPages(); ++p) {
        EXPECT_TRUE(l.pageSegment(l.pageOwner(p)).contains(p)) << "page " << p;
      }
      for (std::int64_t off = 0; off < l.shape().numElems(); ++off) {
        EXPECT_TRUE(l.elemSegment(l.ownerOfOffset(off)).contains(off))
            << "offset " << off;
      }
      // First-element-of-row ownership still partitions the rows.
      std::vector<int> rowSeen(static_cast<std::size_t>(l.shape().dim0), 0);
      for (int pe = 0; pe < c.pes; ++pe) {
        IdxRange rows = l.ownedRows(pe);
        for (std::int64_t r = rows.lo; r <= rows.hi; ++r) {
          ASSERT_GE(r, 0);
          ASSERT_LT(r, l.shape().dim0);
          rowSeen[static_cast<std::size_t>(r)]++;
        }
      }
      for (std::int64_t r = 0; r < l.shape().dim0; ++r) {
        EXPECT_EQ(rowSeen[static_cast<std::size_t>(r)], 1) << "row " << r;
      }
    }
  }
}

TEST(WeightedLayout, ProportionalWithinOnePage) {
  // Largest remainder guarantees every PE's share is within one page of its
  // exact quota numPages * w_i / totalW.
  ArrayLayout l({2, 64, 64}, 5, 8, {3, 1, 4, 1, 5});
  const std::int64_t totalW = 3 + 1 + 4 + 1 + 5;
  const std::int64_t weights[] = {3, 1, 4, 1, 5};
  for (int pe = 0; pe < 5; ++pe) {
    const double exact =
        static_cast<double>(l.numPages() * weights[pe]) / totalW;
    const double got = static_cast<double>(l.pageSegment(pe).size());
    EXPECT_GE(got, exact - 1.0) << "pe " << pe;
    EXPECT_LE(got, exact + 1.0) << "pe " << pe;
  }
}

TEST(WeightedLayoutMigration, WeightedCutSurvivesKills) {
  // Migration seeds its explicit segment map from the weighted cut, so a
  // kill inherits the skew: surviving segments still partition the pages
  // and the heavy PE keeps (at least) its share.
  for (int victim = 0; victim < 4; ++victim) {
    ArrayLayout l({2, 16, 16}, 4, 8, {6, 1, 1, 1});
    const std::int64_t before = l.pageSegment(0).size();
    l.migratePe(victim);
    EXPECT_TRUE(l.migrated());
    EXPECT_TRUE(l.peDead(victim));
    expectMigratedInvariants(l);
    if (victim != 0) {
      EXPECT_GE(l.pageSegment(0).size(), before);
    }
  }
}

TEST(BlockPartition, CoversExactlyAndBalanced) {
  for (int pes : {1, 2, 3, 7, 16}) {
    for (std::int64_t lo : {-5, 0, 3}) {
      for (std::int64_t n : {0, 1, 5, 100, 101}) {
        std::int64_t hi = lo + n - 1;
        std::int64_t covered = 0;
        std::int64_t prev = lo - 1;
        for (int pe = 0; pe < pes; ++pe) {
          IdxRange r = blockPartition(lo, hi, pe, pes);
          if (r.empty()) continue;
          EXPECT_EQ(r.lo, prev + 1);
          prev = r.hi;
          covered += r.size();
        }
        EXPECT_EQ(covered, n);
      }
    }
  }
}

TEST(BlockPartition, EmptyRange) {
  EXPECT_TRUE(blockPartition(5, 4, 0, 3).empty());
}

TEST(ArrayShape, FlattenAndBounds) {
  ArrayShape s{2, 4, 7};
  EXPECT_EQ(s.numElems(), 28);
  EXPECT_EQ(s.flatten(2, 3), 17);
  EXPECT_TRUE(s.inBounds(3, 6));
  EXPECT_FALSE(s.inBounds(4, 0));
  EXPECT_FALSE(s.inBounds(0, 7));
  EXPECT_FALSE(s.inBounds(-1, 0));
}

}  // namespace
}  // namespace pods
