// Array partitioning & distribution math (paper section 4.1, Figures 4/6).
// Property-style sweeps over shapes, PE counts, and page sizes check the
// invariants the Range-Filter machinery depends on: segments partition the
// pages, row ownership partitions the rows, per-row column ranges partition
// each row.
#include <gtest/gtest.h>

#include "runtime/array_layout.hpp"

namespace pods {
namespace {

TEST(ArrayLayout, PaperFigure4Example) {
  // "A two dimensional 6 x 256 array is to be partitioned and distributed
  //  over 4 PEs. There are 1536 elements in the array, resulting in 48
  //  pages, i.e., 12 pages per PE."
  ArrayLayout l({2, 6, 256}, 4, 32);
  EXPECT_EQ(l.numPages(), 48);
  for (int pe = 0; pe < 4; ++pe) {
    EXPECT_EQ(l.pageSegment(pe).size(), 12);
  }
  // PE0 holds the first 12 pages = flat elements [0, 383].
  EXPECT_EQ(l.elemSegment(0).lo, 0);
  EXPECT_EQ(l.elemSegment(0).hi, 383);
  // First-element-of-row ownership (Figure 6): PE0 is responsible for rows
  // 0 and 1 (it holds element (1,0) even though the second half of row 1
  // lives on PE1); PE1 computes only row 2.
  EXPECT_EQ(l.ownedRows(0).lo, 0);
  EXPECT_EQ(l.ownedRows(0).hi, 1);
  EXPECT_EQ(l.ownedRows(1).lo, 2);
  EXPECT_EQ(l.ownedRows(1).hi, 2);
  EXPECT_EQ(l.ownedRows(3).hi, 5);
}

TEST(ArrayLayout, Figure5ColumnRanges) {
  // Fig. 5 narrative: "the RF in PE1 produces the j range 0:255 when i is 0
  // but only 0:127 when i is 1" (0-based PE numbering here: PE0).
  ArrayLayout l({2, 6, 256}, 4, 32);
  IdxRange r0 = l.ownedColsOfRow(0, 0);
  EXPECT_EQ(r0.lo, 0);
  EXPECT_EQ(r0.hi, 255);
  IdxRange r1 = l.ownedColsOfRow(0, 1);
  EXPECT_EQ(r1.lo, 0);
  EXPECT_EQ(r1.hi, 127);
  IdxRange r1b = l.ownedColsOfRow(1, 1);
  EXPECT_EQ(r1b.lo, 128);
  EXPECT_EQ(r1b.hi, 255);
}

TEST(ArrayLayout, OwnerOfOffsetMatchesSegments) {
  ArrayLayout l({2, 10, 37}, 5, 8);
  for (std::int64_t off = 0; off < l.shape().numElems(); ++off) {
    int owner = l.ownerOfOffset(off);
    EXPECT_TRUE(l.elemSegment(owner).contains(off)) << "offset " << off;
  }
}

struct LayoutCase {
  int rank;
  std::int64_t d0, d1;
  int pes;
  int page;
};

class LayoutProperty : public ::testing::TestWithParam<LayoutCase> {};

TEST_P(LayoutProperty, PageSegmentsPartitionPages) {
  const LayoutCase& c = GetParam();
  ArrayLayout l({c.rank, c.d0, c.d1}, c.pes, c.page);
  std::int64_t covered = 0;
  std::int64_t prevHi = -1;
  for (int pe = 0; pe < c.pes; ++pe) {
    IdxRange seg = l.pageSegment(pe);
    if (seg.empty()) continue;
    EXPECT_EQ(seg.lo, prevHi + 1);  // contiguous, in PE order
    prevHi = seg.hi;
    covered += seg.size();
  }
  EXPECT_EQ(covered, l.numPages());
  // Balance: sizes differ by at most one page.
  std::int64_t mn = l.numPages(), mx = 0;
  for (int pe = 0; pe < c.pes; ++pe) {
    std::int64_t s = l.pageSegment(pe).size();
    mn = std::min(mn, s);
    mx = std::max(mx, s);
  }
  EXPECT_LE(mx - mn, 1);
}

TEST_P(LayoutProperty, RowOwnershipPartitionsRows) {
  const LayoutCase& c = GetParam();
  ArrayLayout l({c.rank, c.d0, c.d1}, c.pes, c.page);
  std::vector<int> ownersSeen(static_cast<std::size_t>(l.shape().dim0), 0);
  for (int pe = 0; pe < c.pes; ++pe) {
    IdxRange rows = l.ownedRows(pe);
    for (std::int64_t r = rows.lo; r <= rows.hi; ++r) {
      ASSERT_GE(r, 0);
      ASSERT_LT(r, l.shape().dim0);
      ownersSeen[static_cast<std::size_t>(r)]++;
      // The owner must hold the row's first element.
      EXPECT_EQ(l.ownerOfOffset(r * l.shape().dim1), pe);
    }
  }
  for (std::int64_t r = 0; r < l.shape().dim0; ++r) {
    EXPECT_EQ(ownersSeen[static_cast<std::size_t>(r)], 1) << "row " << r;
  }
}

TEST_P(LayoutProperty, ColumnRangesPartitionEveryRow) {
  const LayoutCase& c = GetParam();
  ArrayLayout l({c.rank, c.d0, c.d1}, c.pes, c.page);
  for (std::int64_t row = 0; row < l.shape().dim0; ++row) {
    std::vector<int> seen(static_cast<std::size_t>(l.shape().dim1), 0);
    for (int pe = 0; pe < c.pes; ++pe) {
      IdxRange cols = l.ownedColsOfRow(pe, row);
      for (std::int64_t j = cols.lo; j <= cols.hi; ++j) {
        seen[static_cast<std::size_t>(j)]++;
        // Consistency with flat ownership.
        EXPECT_EQ(l.ownerOfOffset(row * l.shape().dim1 + j), pe);
      }
    }
    for (std::int64_t j = 0; j < l.shape().dim1; ++j) {
      EXPECT_EQ(seen[static_cast<std::size_t>(j)], 1)
          << "row " << row << " col " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LayoutProperty,
    ::testing::Values(LayoutCase{2, 6, 256, 4, 32},   // the paper's example
                      LayoutCase{2, 16, 16, 32, 32},  // more PEs than pages
                      LayoutCase{2, 64, 64, 32, 32},
                      LayoutCase{2, 7, 13, 3, 4},     // nothing divides
                      LayoutCase{2, 1, 100, 8, 16},   // single row
                      LayoutCase{2, 100, 1, 8, 16},   // single column
                      LayoutCase{1, 1000, 1, 7, 32},  // vector
                      LayoutCase{1, 5, 1, 16, 64},    // tiny vector, many PEs
                      LayoutCase{2, 33, 17, 5, 1}));  // one-element pages

TEST(BlockPartition, CoversExactlyAndBalanced) {
  for (int pes : {1, 2, 3, 7, 16}) {
    for (std::int64_t lo : {-5, 0, 3}) {
      for (std::int64_t n : {0, 1, 5, 100, 101}) {
        std::int64_t hi = lo + n - 1;
        std::int64_t covered = 0;
        std::int64_t prev = lo - 1;
        for (int pe = 0; pe < pes; ++pe) {
          IdxRange r = blockPartition(lo, hi, pe, pes);
          if (r.empty()) continue;
          EXPECT_EQ(r.lo, prev + 1);
          prev = r.hi;
          covered += r.size();
        }
        EXPECT_EQ(covered, n);
      }
    }
  }
}

TEST(BlockPartition, EmptyRange) {
  EXPECT_TRUE(blockPartition(5, 4, 0, 3).empty());
}

TEST(ArrayShape, FlattenAndBounds) {
  ArrayShape s{2, 4, 7};
  EXPECT_EQ(s.numElems(), 28);
  EXPECT_EQ(s.flatten(2, 3), 17);
  EXPECT_TRUE(s.inBounds(3, 6));
  EXPECT_FALSE(s.inBounds(4, 0));
  EXPECT_FALSE(s.inBounds(0, 7));
  EXPECT_FALSE(s.inBounds(-1, 0));
}

}  // namespace
}  // namespace pods
