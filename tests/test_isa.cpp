// SP instruction-set tests: encoding helpers, classification, timing table
// coverage, and disassembly.
#include <gtest/gtest.h>

#include "runtime/isa.hpp"
#include "sim/timing.hpp"

namespace pods {
namespace {

TEST(Isa, TargetPacking) {
  std::uint32_t aux = Instr::packTarget(0x1234, 0x5678);
  Instr in;
  in.aux = aux;
  EXPECT_EQ(in.targetSp(), 0x1234);
  EXPECT_EQ(in.targetSlot(), 0x5678);
}

TEST(Isa, OpNamesAreUniqueAndNonEmpty) {
  std::set<std::string> names;
  for (int o = 0; o <= static_cast<int>(Op::END); ++o) {
    std::string n = opName(static_cast<Op>(o));
    EXPECT_FALSE(n.empty());
    EXPECT_NE(n, "?");
    EXPECT_TRUE(names.insert(n).second) << "duplicate op name " << n;
  }
}

TEST(Isa, LocalComputeClassification) {
  // Local compute ops never touch another functional unit.
  EXPECT_TRUE(opIsLocalCompute(Op::ADD));
  EXPECT_TRUE(opIsLocalCompute(Op::JMP));
  EXPECT_TRUE(opIsLocalCompute(Op::NEWCTX));
  EXPECT_FALSE(opIsLocalCompute(Op::ARD));
  EXPECT_FALSE(opIsLocalCompute(Op::AWR));
  EXPECT_FALSE(opIsLocalCompute(Op::SENDA));
  EXPECT_FALSE(opIsLocalCompute(Op::SENDD));
  EXPECT_FALSE(opIsLocalCompute(Op::ALLOCD));
  EXPECT_FALSE(opIsLocalCompute(Op::END));
}

TEST(Isa, EveryOpHasPositiveEuCost) {
  sim::Timing t;
  for (int o = 0; o <= static_cast<int>(Op::END); ++o) {
    Op op = static_cast<Op>(o);
    EXPECT_GT(t.euCost(op, false).ns, 0) << opName(op);
    EXPECT_GT(t.euCost(op, true).ns, 0) << opName(op);
  }
}

TEST(Isa, FloatingCostsDominateIntegerCosts) {
  sim::Timing t;
  for (Op op : {Op::ADD, Op::SUB, Op::MUL, Op::DIV, Op::CMPLT, Op::NEG}) {
    EXPECT_GT(t.euCost(op, true).ns, t.euCost(op, false).ns) << opName(op);
  }
}

TEST(Isa, PaperInstructionCostsExact) {
  sim::Timing t;
  EXPECT_EQ(t.euCost(Op::ADD, false).ns, 300);
  EXPECT_EQ(t.euCost(Op::ADD, true).ns, 6753);
  EXPECT_EQ(t.euCost(Op::SUB, true).ns, 6757);
  EXPECT_EQ(t.euCost(Op::MUL, true).ns, 7217);
  EXPECT_EQ(t.euCost(Op::DIV, true).ns, 10707);
  EXPECT_EQ(t.euCost(Op::POW, true).ns, 96418);
  EXPECT_EQ(t.euCost(Op::SQRT, true).ns, 18929);
  EXPECT_EQ(t.euCost(Op::ABS, true).ns, 12626);
  EXPECT_EQ(t.euCost(Op::CMPLT, true).ns, 5803);
  EXPECT_EQ(t.euCost(Op::ARD, false).ns, 2700);
}

TEST(Isa, TokenRouteAndPageMessage) {
  sim::Timing t;
  EXPECT_EQ(t.tokenRoute().ns, 19500);  // 390 / 20
  // 697 + 0.4 * (32 * 8) = 799.4 us
  EXPECT_EQ(t.pageMessage().ns, 799400);
  t.tokenBatch = 1;
  EXPECT_EQ(t.tokenRoute().ns, 390000);
  t.pageElems = 64;
  EXPECT_EQ(t.pageMessage().ns, 697000 + 400 * 64 * 8);
}

TEST(Isa, DisasmRendersEveryFormat) {
  SpCode sp;
  sp.id = 3;
  sp.name = "demo";
  sp.kind = SpKind::ForLoop;
  sp.replicated = true;
  sp.numSlots = 8;
  sp.numArgs = 2;
  sp.slotNames = {"a", "b", "c", "d", "e", "f", "g", "h"};
  auto add = [&](Op op) -> Instr& {
    sp.code.emplace_back();
    sp.code.back().op = op;
    return sp.code.back();
  };
  Instr& lit = add(Op::LIT);
  lit.dst = 0;
  lit.imm = Value::intv(7);
  Instr& brf = add(Op::BRF);
  brf.a = 0;
  brf.aux = 5;
  Instr& ard = add(Op::ARD);
  ard.dst = 1;
  ard.a = 2;
  ard.b = 3;
  ard.c = 4;
  Instr& awr = add(Op::AWR);
  awr.dst = 1;
  awr.a = 2;
  awr.b = 3;
  Instr& rf = add(Op::RFLO);
  rf.dst = 5;
  rf.a = 2;
  rf.dim = 1;
  rf.off = -1;
  rf.b = 3;
  Instr& snd = add(Op::SENDD);
  snd.a = 0;
  snd.b = 6;
  snd.aux = Instr::packTarget(9, 4);
  Instr& mk = add(Op::MKCONT);
  mk.dst = 7;
  mk.aux = 2;
  Instr& aw = add(Op::AWAITN);
  aw.a = 6;
  aw.b = 0;
  Instr& res = add(Op::RESULT);
  res.a = 0;
  res.aux = 1;
  add(Op::END);

  std::string d = disasmSp(sp);
  EXPECT_NE(d.find("demo"), std::string::npos);
  EXPECT_NE(d.find("[for-loop]"), std::string::npos);
  EXPECT_NE(d.find("[replicated/LD]"), std::string::npos);
  EXPECT_NE(d.find("a <- 7"), std::string::npos);
  EXPECT_NE(d.find("if !a -> 5"), std::string::npos);
  EXPECT_NE(d.find("b <- c[d,e]"), std::string::npos);
  EXPECT_NE(d.find("c[d] <- b"), std::string::npos);
  EXPECT_NE(d.find("rf(c, dim=1, off=-1, row=d)"), std::string::npos);
  EXPECT_NE(d.find("sp9.slot4"), std::string::npos);
  EXPECT_NE(d.find("cont(self, slot 2)"), std::string::npos);
  EXPECT_NE(d.find("until g >= a"), std::string::npos);
  EXPECT_NE(d.find("#1 <- a"), std::string::npos);
}

TEST(Isa, SlotNameFallbacks) {
  SpCode sp;
  sp.numSlots = 3;
  EXPECT_EQ(sp.slotName(kNoSlot), "-");
  EXPECT_EQ(sp.slotName(1), "s1");  // no debug names present
  sp.slotNames = {"x"};
  EXPECT_EQ(sp.slotName(0), "x");
  EXPECT_EQ(sp.slotName(2), "s2");
}

}  // namespace
}  // namespace pods
