// PE fail-stop recovery tests (docs/ARCHITECTURE.md, "Fail-stop recovery").
//
// The property under test: killing any single PE at any point in the run and
// restarting it from its receive/allocate log must leave the results
// bit-identical to a fault-free run, with no leaked frames and no hang.
// Recovery is deterministic replay — single assignment makes re-executed
// frames produce identical tokens, the mint log makes NEWCTX/ALLOC
// idempotent, and logical send keys (not message ids, which a re-executed
// send mints afresh) deduplicate the replayed traffic.
//
// The sweeps spread the kill time across the whole run (the simulator kills
// at a fraction of the fault-free simulated completion time; the native
// runtime sweeps a wall-clock grid, where late kills may simply not fire
// before completion — also a case worth covering) and rotate the victim PE
// through every position. PODS_KILL_SEEDS raises the sweep width in CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <string>

#include "core/pods.hpp"
#include "support/fault.hpp"
#include "workloads/simple.hpp"

namespace pods {
namespace {

constexpr const char* kFibSource = R"(
def fib(n: int) -> int {
  let r = if n < 2 then n else fib(n - 1) + fib(n - 2);
  return r;
}
def main() -> int { return fib(13); }
)";

std::unique_ptr<Compiled> compileOk(const std::string& src) {
  CompileResult cr = compile(src, {});
  EXPECT_TRUE(cr.ok) << cr.diagnostics;
  return std::move(cr.compiled);
}

/// Seed count for the kill sweeps: PODS_KILL_SEEDS overrides (the CI
/// recovery-soak job raises it), default 32.
int killSeeds() {
  if (const char* env = std::getenv("PODS_KILL_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 32;
}

/// Kill `pe` at a simulated time `frac` of the way through a run that takes
/// `totalUs` fault-free. The restart delay stays at its default.
FaultConfig killAt(int pe, double timeUs) {
  FaultConfig fc;
  fc.killPe = pe;
  fc.killTimeUs = timeUs;
  return fc;
}

std::map<std::string, std::int64_t> counterMap(const Counters& c) {
  std::map<std::string, std::int64_t> m;
  for (const auto& [k, v] : c.all()) m.emplace(k, v);
  return m;
}

/// Counter map without the engine-internal sim.eventq.* gauges (queue
/// depth / bucket occupancy differ between event engines by construction;
/// everything else must be bit-identical).
std::map<std::string, std::int64_t> portableCounterMap(const Counters& c) {
  std::map<std::string, std::int64_t> m;
  for (const auto& [k, v] : c.all())
    if (k.rfind("sim.eventq.", 0) != 0) m.emplace(k, v);
  return m;
}

/// PE counts for the simulator kill sweeps. PODS_KILL_PES_EXTRA appends one
/// larger machine (the CI recovery-soak job sets 32, exercising the
/// calendar engine's indexed triage at the paper's full Figure 10 width).
std::vector<int> killPes() {
  std::vector<int> pes = {4, 8};
  if (const char* env = std::getenv("PODS_KILL_PES_EXTRA")) {
    const int n = std::atoi(env);
    if (n > 0) pes.push_back(n);
  }
  return pes;
}

// --- spec parsing -----------------------------------------------------------

TEST(KillSpecParse, AcceptsWellFormedSpecs) {
  FaultConfig fc;
  ASSERT_TRUE(FaultConfig::parse("kill:2@350", fc));
  EXPECT_EQ(fc.killPe, 2);
  EXPECT_DOUBLE_EQ(fc.killTimeUs, 350.0);
  EXPECT_DOUBLE_EQ(fc.killRestartUs, 400.0);  // default restart delay
  EXPECT_TRUE(fc.killEnabled());
  EXPECT_TRUE(fc.enabled());  // a kill alone turns the delivery layer on

  FaultConfig withRestart;
  ASSERT_TRUE(FaultConfig::parse("kill:0@125+800", withRestart));
  EXPECT_EQ(withRestart.killPe, 0);
  EXPECT_DOUBLE_EQ(withRestart.killTimeUs, 125.0);
  EXPECT_DOUBLE_EQ(withRestart.killRestartUs, 800.0);

  FaultConfig combined;
  ASSERT_TRUE(FaultConfig::parse("drop:0.01,kill:1@100,dup:0.005", combined));
  EXPECT_EQ(combined.killPe, 1);
  EXPECT_DOUBLE_EQ(combined.dropProb, 0.01);
  EXPECT_DOUBLE_EQ(combined.dupProb, 0.005);
}

TEST(KillSpecParse, RejectsMalformedSpecs) {
  FaultConfig fc;
  std::string err;
  EXPECT_FALSE(FaultConfig::parse("kill", fc, &err));
  EXPECT_FALSE(FaultConfig::parse("kill:1", fc, &err));
  EXPECT_NE(err.find("kill:PE@TIMEUS"), std::string::npos) << err;
  EXPECT_FALSE(FaultConfig::parse("kill:x@5", fc, &err));
  EXPECT_FALSE(FaultConfig::parse("kill:-1@5", fc, &err));
  EXPECT_FALSE(FaultConfig::parse("kill:1@zap", fc, &err));
  EXPECT_FALSE(FaultConfig::parse("kill:1@-5", fc, &err));
  EXPECT_FALSE(FaultConfig::parse("kill:1@5+", fc, &err));
  EXPECT_FALSE(FaultConfig::parse("kill:1@5+-2", fc, &err));
  EXPECT_FALSE(fc.killEnabled());  // failed parses left the config alone
}

// --- simulator sweeps -------------------------------------------------------

// Kill each PE in turn at times spread over the whole run; the results must
// be bit-identical to the fault-free reference on every seed.
TEST(KillFuzz, SimSimpleBitIdenticalToFaultFree) {
  auto c = compileOk(workloads::simpleSource(16, 2));
  const int seeds = killSeeds();
  std::int64_t replayed = 0;
  for (int pes : killPes()) {
    sim::MachineConfig clean;
    clean.numPEs = pes;
    PodsRun ref = runPods(*c, clean);
    ASSERT_TRUE(ref.stats.ok) << ref.stats.error;
    const double totalUs = ref.stats.total.ns / 1e3;
    for (int seed = 1; seed <= seeds; ++seed) {
      sim::MachineConfig mc;
      mc.numPEs = pes;
      mc.faults = killAt(seed % pes, totalUs * seed / (seeds + 1.0));
      PodsRun run = runPods(*c, mc);
      ASSERT_TRUE(run.stats.ok)
          << "pes=" << pes << " seed=" << seed << ": " << run.stats.error;
      std::string why;
      ASSERT_TRUE(sameOutputs(run.out, ref.out, &why))
          << "pes=" << pes << " seed=" << seed << ": " << why;
      EXPECT_EQ(run.stats.counters.get("fault.kills"), 1);
      EXPECT_EQ(run.stats.counters.get("fault.restarts"), 1);
      // No leaked SP instances: every instantiation completed despite the
      // wipe (rebuilt frames are the *same* instances, not new ones).
      EXPECT_EQ(run.stats.counters.get("sp.instantiated"),
                run.stats.counters.get("sp.completed"))
          << "pes=" << pes << " seed=" << seed;
      replayed += run.stats.counters.get("recovery.replayedFrames");
    }
  }
  // The sweep must actually exercise recovery, not just early/late kills
  // with nothing live on the victim.
  EXPECT_GT(replayed, 0);
}

// A long dead window forces allocations to happen while the victim is down:
// distributed arrays born then must remap the dead PE's page segment onto a
// survivor (and stay remapped after the restart), still bit-exact.
TEST(KillFuzz, SimDeadWindowAllocationsMigrate) {
  auto c = compileOk(workloads::simpleSource(16, 2));
  sim::MachineConfig clean;
  clean.numPEs = 4;
  PodsRun ref = runPods(*c, clean);
  ASSERT_TRUE(ref.stats.ok) << ref.stats.error;
  const double totalUs = ref.stats.total.ns / 1e3;
  // Victim 0 is excluded: the driver frame doing the allocating lives on
  // PE 0, so while it is down nothing allocates and nothing can migrate.
  for (int victim : {1, 3}) {
    sim::MachineConfig mc;
    mc.numPEs = 4;
    mc.faults.killPe = victim;
    mc.faults.killTimeUs = totalUs * 0.05;
    mc.faults.killRestartUs = totalUs * 0.5;  // down for half the run
    PodsRun run = runPods(*c, mc);
    ASSERT_TRUE(run.stats.ok) << "victim=" << victim << ": "
                              << run.stats.error;
    std::string why;
    ASSERT_TRUE(sameOutputs(run.out, ref.out, &why))
        << "victim=" << victim << ": " << why;
    EXPECT_GT(run.stats.counters.get("recovery.migratedArrays"), 0)
        << "victim=" << victim;
    EXPECT_EQ(run.stats.counters.get("sp.instantiated"),
              run.stats.counters.get("sp.completed"))
        << "victim=" << victim;
  }
}

TEST(KillFuzz, SimRecursiveWorkload) {
  auto c = compileOk(kFibSource);
  sim::MachineConfig clean;
  clean.numPEs = 4;
  PodsRun ref = runPods(*c, clean);
  ASSERT_TRUE(ref.stats.ok) << ref.stats.error;
  const double totalUs = ref.stats.total.ns / 1e3;
  const int seeds = killSeeds();
  std::int64_t replayed = 0;
  for (int seed = 1; seed <= seeds; ++seed) {
    sim::MachineConfig mc;
    mc.numPEs = 4;
    mc.faults = killAt(seed % 4, totalUs * seed / (seeds + 1.0));
    PodsRun run = runPods(*c, mc);
    ASSERT_TRUE(run.stats.ok) << "seed=" << seed << ": " << run.stats.error;
    std::string why;
    ASSERT_TRUE(sameOutputs(run.out, ref.out, &why))
        << "seed=" << seed << ": " << why;
    EXPECT_EQ(run.stats.counters.get("sp.instantiated"),
              run.stats.counters.get("sp.completed"))
        << "seed=" << seed;
    replayed += run.stats.counters.get("recovery.replayedFrames");
  }
  EXPECT_GT(replayed, 0);
}

// A fail-stop on top of a lossy, duplicating, delaying network: the kill's
// recovery traffic itself rides the unreliable transport.
TEST(KillFuzz, SimKillPlusLossyNetwork) {
  auto c = compileOk(workloads::simpleSource(16, 2));
  sim::MachineConfig clean;
  clean.numPEs = 4;
  PodsRun ref = runPods(*c, clean);
  ASSERT_TRUE(ref.stats.ok) << ref.stats.error;
  const double totalUs = ref.stats.total.ns / 1e3;
  const int seeds = killSeeds();
  for (int seed = 1; seed <= seeds; ++seed) {
    sim::MachineConfig mc;
    mc.numPEs = 4;
    ASSERT_TRUE(
        FaultConfig::parse("drop:0.03,dup:0.02,delay:0.03", mc.faults));
    mc.faults.seed = static_cast<std::uint64_t>(seed);
    mc.faults.killPe = seed % 4;
    mc.faults.killTimeUs = totalUs * seed / (seeds + 1.0);
    PodsRun run = runPods(*c, mc);
    ASSERT_TRUE(run.stats.ok) << "seed=" << seed << ": " << run.stats.error;
    std::string why;
    ASSERT_TRUE(sameOutputs(run.out, ref.out, &why))
        << "seed=" << seed << ": " << why;
    EXPECT_EQ(run.stats.counters.get("fault.kills"), 1);
  }
}

// Weighted ownership (--pe-weights) composes with fail-stop recovery: the
// skewed page cut changes which allocations/tokens land on the victim and
// the migrated segment map inherits the skew, but the results must still be
// bit-identical — both to the fault-free *weighted* run and to the uniform
// reference (placement is invisible under single assignment).
TEST(KillFuzz, SimWeightedOwnershipBitIdentical) {
  auto c = compileOk(workloads::simpleSource(16, 2));
  sim::MachineConfig clean;
  clean.numPEs = 4;
  PodsRun uniform = runPods(*c, clean);
  ASSERT_TRUE(uniform.stats.ok) << uniform.stats.error;

  sim::MachineConfig weightedClean = clean;
  weightedClean.peWeights = {6, 1, 1, 1};
  PodsRun ref = runPods(*c, weightedClean);
  ASSERT_TRUE(ref.stats.ok) << ref.stats.error;
  std::string why;
  ASSERT_TRUE(sameOutputs(ref.out, uniform.out, &why)) << why;

  const double totalUs = ref.stats.total.ns / 1e3;
  const int seeds = std::max(4, killSeeds() / 4);
  for (int seed = 1; seed <= seeds; ++seed) {
    sim::MachineConfig mc = weightedClean;
    ASSERT_TRUE(FaultConfig::parse("drop:0.03,dup:0.02", mc.faults));
    mc.faults.seed = static_cast<std::uint64_t>(seed);
    mc.faults.killPe = seed % 4;  // includes the heavy PE 0
    mc.faults.killTimeUs = totalUs * seed / (seeds + 1.0);
    PodsRun run = runPods(*c, mc);
    ASSERT_TRUE(run.stats.ok) << "seed=" << seed << ": " << run.stats.error;
    ASSERT_TRUE(sameOutputs(run.out, ref.out, &why))
        << "seed=" << seed << ": " << why;
    EXPECT_EQ(run.stats.counters.get("fault.kills"), 1);
    EXPECT_EQ(run.stats.counters.get("sp.instantiated"),
              run.stats.counters.get("sp.completed"))
        << "seed=" << seed;
  }
}

// Same on the native runtime: a wall-clock kill under a skewed cut, checked
// against the uniform fault-free outputs.
TEST(KillFuzz, NativeWeightedOwnershipBitIdentical) {
  auto c = compileOk(workloads::simpleSource(16, 2));
  native::NativeConfig clean;
  clean.numWorkers = 4;
  NativeRun ref = runNative(*c, clean);
  ASSERT_TRUE(ref.stats.ok) << ref.stats.error;

  const int seeds = std::max(4, killSeeds() / 4);
  for (int seed = 1; seed <= seeds; ++seed) {
    native::NativeConfig nc = clean;
    nc.peWeights = {1, 1, 5, 1};
    ASSERT_TRUE(FaultConfig::parse("drop:0.03,dup:0.02", nc.faults));
    nc.faults.seed = static_cast<std::uint64_t>(seed);
    nc.faults.retry.rtoUs = 50.0;
    nc.faults.killPe = seed % 4;
    nc.faults.killTimeUs = 100.0 + (seed * 211) % 2500;
    nc.faults.killRestartUs = 100.0;
    NativeRun run = runNative(*c, nc);
    ASSERT_TRUE(run.stats.ok) << "seed=" << seed << ": " << run.stats.error;
    std::string why;
    ASSERT_TRUE(sameOutputs(run.out, ref.out, &why))
        << "seed=" << seed << ": " << why;
    EXPECT_EQ(run.stats.counters.get("native.framesCreated"),
              run.stats.counters.get("native.framesRetired"))
        << "seed=" << seed;
  }
}

// Same seed => the killed run replays the exact same schedule: simulated
// completion time and every counter (including the recovery tallies) match.
// Calendar engine vs the reference binary heap across the kill fuzz matrix
// (including kill + lossy network): the indexed eager triage at the kill
// event must reproduce dispatch-time triage exactly — outputs, stats.total,
// and all simulation-visible counters (recovery.droppedEvents,
// recovery.heldEvents, raw "events", ...) bit-identical. Also checks the
// per-PE index actually did the triage (sim.eventq.indexTaken) somewhere in
// the sweep.
TEST(KillFuzz, SimCalendarVsHeapBitIdentical) {
  auto c = compileOk(workloads::simpleSource(16, 2));
  const int seeds = killSeeds();
  std::int64_t indexTaken = 0;
  for (int pes : killPes()) {
    sim::MachineConfig clean;
    clean.numPEs = pes;
    PodsRun ref = runPods(*c, clean);
    ASSERT_TRUE(ref.stats.ok) << ref.stats.error;
    const double totalUs = ref.stats.total.ns / 1e3;
    for (int seed = 1; seed <= seeds; ++seed) {
      sim::MachineConfig mc;
      mc.numPEs = pes;
      mc.faults = killAt(seed % pes, totalUs * seed / (seeds + 1.0));
      if (seed % 2 == 0) {
        // Half the sweep also rides the lossy network, so retransmit-timer
        // collapse and triage interact with drops/dups/delays.
        FaultConfig fc;
        ASSERT_TRUE(FaultConfig::parse("drop:0.03,dup:0.02,delay:0.03", fc));
        fc.seed = static_cast<std::uint64_t>(seed);
        fc.killPe = seed % pes;
        fc.killTimeUs = totalUs * seed / (seeds + 1.0);
        mc.faults = fc;
      }
      mc.eventEngine = sim::EventEngine::Calendar;
      PodsRun cal = runPods(*c, mc);
      mc.eventEngine = sim::EventEngine::BinaryHeap;
      PodsRun heap = runPods(*c, mc);
      ASSERT_TRUE(cal.stats.ok)
          << "pes=" << pes << " seed=" << seed << ": " << cal.stats.error;
      ASSERT_TRUE(heap.stats.ok)
          << "pes=" << pes << " seed=" << seed << ": " << heap.stats.error;
      EXPECT_EQ(cal.stats.total.ns, heap.stats.total.ns)
          << "pes=" << pes << " seed=" << seed;
      EXPECT_EQ(portableCounterMap(cal.stats.counters),
                portableCounterMap(heap.stats.counters))
          << "pes=" << pes << " seed=" << seed;
      std::string why;
      ASSERT_TRUE(sameOutputs(cal.out, heap.out, &why))
          << "pes=" << pes << " seed=" << seed << ": " << why;
      indexTaken += cal.stats.counters.get("sim.eventq.indexTaken");
    }
  }
  // The per-PE index must have carried real triage work somewhere in the
  // sweep (kills with nothing pending on the victim legitimately take 0).
  EXPECT_GT(indexTaken, 0);
}

TEST(KillFuzz, SimBitDeterministicAcrossRepeats) {
  auto c = compileOk(workloads::simpleSource(16, 2));
  for (int seed : {1, 9, 17}) {
    sim::MachineConfig mc;
    mc.numPEs = 8;
    mc.faults = killAt(seed % 8, 150.0 + 70.0 * seed);
    mc.faults.seed = static_cast<std::uint64_t>(seed);
    PodsRun a = runPods(*c, mc);
    PodsRun b = runPods(*c, mc);
    ASSERT_TRUE(a.stats.ok) << a.stats.error;
    ASSERT_TRUE(b.stats.ok) << b.stats.error;
    EXPECT_EQ(a.stats.total.ns, b.stats.total.ns) << "seed=" << seed;
    EXPECT_EQ(counterMap(a.stats.counters), counterMap(b.stats.counters))
        << "seed=" << seed;
    std::string why;
    EXPECT_TRUE(sameOutputs(a.out, b.out, &why)) << why;
  }
}

// --- native sweeps ----------------------------------------------------------

// Wall-clock kill grid on the real threaded runtime. Late grid points may
// land after completion (the kill never fires) — that must also be clean.
TEST(KillFuzz, NativeSimpleBitIdenticalToFaultFree) {
  auto c = compileOk(workloads::simpleSource(16, 2));
  native::NativeConfig clean;
  clean.numWorkers = 4;
  NativeRun ref = runNative(*c, clean);
  ASSERT_TRUE(ref.stats.ok) << ref.stats.error;
  const int seeds = killSeeds();
  std::int64_t fired = 0, replayed = 0;
  for (int workers : {4, 8}) {
    for (int seed = 1; seed <= seeds; ++seed) {
      native::NativeConfig nc;
      nc.numWorkers = workers;
      nc.faults = killAt(seed % workers, 100.0 + (seed * 173) % 4000);
      nc.faults.killRestartUs = 100.0;
      NativeRun run = runNative(*c, nc);
      ASSERT_TRUE(run.stats.ok)
          << "workers=" << workers << " seed=" << seed << ": "
          << run.stats.error;
      std::string why;
      ASSERT_TRUE(sameOutputs(run.out, ref.out, &why))
          << "workers=" << workers << " seed=" << seed << ": " << why;
      // Zero leaked frames: rebuilt frames are the wiped instances, so the
      // created/retired ledger still balances exactly.
      EXPECT_EQ(run.stats.counters.get("native.framesCreated"),
                run.stats.counters.get("native.framesRetired"))
          << "workers=" << workers << " seed=" << seed;
      EXPECT_EQ(run.stats.counters.get("native.framesLive"), 0);
      fired += run.stats.counters.get("fault.kills");
      replayed += run.stats.counters.get("recovery.replayedFrames");
    }
  }
  // The grid must hit the live window often enough to mean something.
  EXPECT_GT(fired, 0);
  EXPECT_GT(replayed, 0);
}

TEST(KillFuzz, NativeRecursiveWorkload) {
  auto c = compileOk(kFibSource);
  native::NativeConfig clean;
  clean.numWorkers = 4;
  NativeRun ref = runNative(*c, clean);
  ASSERT_TRUE(ref.stats.ok) << ref.stats.error;
  const int seeds = killSeeds();
  for (int seed = 1; seed <= seeds; ++seed) {
    native::NativeConfig nc;
    nc.numWorkers = 8;
    // fib(13) finishes in about a millisecond of wall clock, so the sweep
    // leans early; a kill grid point past completion simply never fires,
    // which must also leave the run clean.
    nc.faults = killAt(seed % 8, (seed * 131) % 900);
    nc.faults.killRestartUs = 100.0;
    NativeRun run = runNative(*c, nc);
    ASSERT_TRUE(run.stats.ok) << "seed=" << seed << ": " << run.stats.error;
    std::string why;
    ASSERT_TRUE(sameOutputs(run.out, ref.out, &why))
        << "seed=" << seed << ": " << why;
    EXPECT_EQ(run.stats.counters.get("native.framesCreated"),
              run.stats.counters.get("native.framesRetired"))
        << "seed=" << seed;
  }
  // A kill of worker 0 at t=0 always fires: main is pinned to worker 0, so
  // the run cannot complete before that thread's first scheduling point —
  // unlike an arbitrary victim, whose thread may never iterate before a
  // fast run finishes. This pins a deterministic "the kill actually fired
  // and the Boot frame was rebuilt" case for the recursive shape.
  native::NativeConfig nc0;
  nc0.numWorkers = 8;
  nc0.faults = killAt(0, 0.0);
  nc0.faults.killRestartUs = 100.0;
  NativeRun atBoot = runNative(*c, nc0);
  ASSERT_TRUE(atBoot.stats.ok) << atBoot.stats.error;
  std::string why;
  ASSERT_TRUE(sameOutputs(atBoot.out, ref.out, &why)) << why;
  EXPECT_EQ(atBoot.stats.counters.get("fault.kills"), 1);
}

TEST(KillFuzz, NativeKillPlusLossyNetwork) {
  auto c = compileOk(workloads::simpleSource(16, 2));
  native::NativeConfig clean;
  clean.numWorkers = 4;
  NativeRun ref = runNative(*c, clean);
  ASSERT_TRUE(ref.stats.ok) << ref.stats.error;
  const int seeds = killSeeds();
  for (int seed = 1; seed <= seeds; ++seed) {
    native::NativeConfig nc;
    nc.numWorkers = 4;
    ASSERT_TRUE(FaultConfig::parse("drop:0.03,dup:0.02", nc.faults));
    nc.faults.seed = static_cast<std::uint64_t>(seed);
    nc.faults.killPe = seed % 4;
    nc.faults.killTimeUs = 100.0 + (seed * 211) % 2500;
    nc.faults.killRestartUs = 100.0;
    nc.faults.retry.rtoUs = 50.0;
    NativeRun run = runNative(*c, nc);
    ASSERT_TRUE(run.stats.ok) << "seed=" << seed << ": " << run.stats.error;
    std::string why;
    ASSERT_TRUE(sameOutputs(run.out, ref.out, &why))
        << "seed=" << seed << ": " << why;
    EXPECT_EQ(run.stats.counters.get("native.framesCreated"),
              run.stats.counters.get("native.framesRetired"))
        << "seed=" << seed;
  }
}

// --- configuration errors ---------------------------------------------------

TEST(KillErrors, SimKillPeOutOfRangeIsARuntimeError) {
  auto c = compileOk(workloads::simpleSource(12, 2));
  sim::MachineConfig mc;
  mc.numPEs = 4;
  mc.faults = killAt(7, 100.0);
  PodsRun run = runPods(*c, mc);
  EXPECT_FALSE(run.stats.ok);
  EXPECT_NE(run.stats.error.find("kill fault targets PE"), std::string::npos)
      << run.stats.error;
}

TEST(KillErrors, NativeKillPeOutOfRangeIsARuntimeError) {
  auto c = compileOk(workloads::simpleSource(12, 2));
  native::NativeConfig nc;
  nc.numWorkers = 4;
  nc.faults = killAt(4, 100.0);
  NativeRun run = runNative(*c, nc);
  EXPECT_FALSE(run.stats.ok);
  EXPECT_NE(run.stats.error.find("kill fault targets worker"),
            std::string::npos)
      << run.stats.error;
}

}  // namespace
}  // namespace pods
