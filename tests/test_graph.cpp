// Dataflow-graph IR tests: graph generation shapes, def/use computation,
// the verifier, and the graphviz writer.
#include <gtest/gtest.h>

#include "frontend/inliner.hpp"
#include "frontend/parser.hpp"
#include "frontend/sema.hpp"
#include "ir/defuse.hpp"
#include "ir/dot.hpp"
#include "ir/graphgen.hpp"
#include "ir/verify.hpp"

namespace pods::ir {
namespace {

Program build(std::string_view src) {
  DiagSink d;
  fe::Module m = fe::parse(src, d);
  EXPECT_FALSE(d.hasErrors()) << d.str();
  fe::expandInlines(m, d);
  fe::analyze(m, d, /*requireMain=*/false);
  EXPECT_FALSE(d.hasErrors()) << d.str();
  Program p = buildGraph(m, d);
  if (m.find("main") == nullptr) {
    // buildGraph demands a main; tests without one report the error but
    // the per-function graphs are still usable.
  }
  return p;
}

Program buildVerified(std::string_view src) {
  Program p = build(src);
  std::string err;
  EXPECT_TRUE(verify(p, err)) << err;
  return p;
}

const Function& fn(const Program& p, const std::string& name) {
  for (const Function& f : p.fns) {
    if (f.name == name) return f;
  }
  ADD_FAILURE() << "function " << name << " not lowered";
  return p.fns[0];
}

const Block& firstLoop(const Block& b) {
  for (const Item& it : b.body) {
    if (it.kind == ItemKind::Loop) return *it.loop;
  }
  ADD_FAILURE() << "no loop in block";
  return b;
}

TEST(GraphGen, Figure2Shape) {
  // The paper's Figure-2 program: three nested code blocks.
  Program p = buildVerified(R"(
def main() -> matrix {
  let A = matrix(50, 10);
  for i = 0 to 49 {
    for j = 0 to 9 {
      A[i,j] = real(i) + real(j);
    }
  }
  return A;
}
)");
  const Function& m = fn(p, "main");
  const Block& iLoop = firstLoop(m.body);
  EXPECT_EQ(iLoop.kind, BlockKind::ForLoop);
  EXPECT_TRUE(iLoop.ascending);
  const Block& jLoop = firstLoop(iLoop);
  EXPECT_EQ(jLoop.kind, BlockKind::ForLoop);
  // The inner loop writes the array allocated in the outermost scope: the
  // array value must flow in through the L operators (external use).
  auto ext = blockExternalUses(jLoop);
  EXPECT_FALSE(ext.empty());
  ASSERT_EQ(m.retVals.size(), 1u);
}

TEST(GraphGen, CarriedLoop) {
  Program p = buildVerified(R"(
def f(n: int, a: array) -> real {
  let s = for i = 0 to n - 1 carry (acc = 0.0) {
    next acc = acc + a[i];
  } yield acc;
  return s;
}
)");
  const Block& loop = firstLoop(fn(p, "f").body);
  ASSERT_EQ(loop.carried.size(), 1u);
  EXPECT_NE(loop.carried[0].cur, kNoVal);
  EXPECT_NE(loop.carried[0].shadow, kNoVal);
  EXPECT_NE(loop.carried[0].init, kNoVal);
  EXPECT_NE(loop.yieldVal, kNoVal);
  // The yield of `acc` is the carried current value itself.
  EXPECT_EQ(loop.yieldVal, loop.carried[0].cur);
  // Body contains a Next item.
  bool sawNext = false;
  for (const Item& it : loop.body) {
    if (it.kind == ItemKind::Next) sawNext = true;
  }
  EXPECT_TRUE(sawNext);
}

TEST(GraphGen, WhileLoopCondItems) {
  Program p = buildVerified(R"(
def f(n: int) -> int {
  let r = loop carry (k = 0) while k < n { next k = k + 1; } yield k;
  return r;
}
)");
  const Block& loop = firstLoop(fn(p, "f").body);
  EXPECT_EQ(loop.kind, BlockKind::WhileLoop);
  EXPECT_FALSE(loop.condItems.empty());
  EXPECT_NE(loop.condVal, kNoVal);
}

TEST(GraphGen, IfExprMergesBothArms) {
  Program p = buildVerified(R"(
def f(c: int) -> real {
  let x = if c then 1.5 else 2.5;
  return x;
}
)");
  const Function& f = fn(p, "f");
  // Find the If item; both arms must define the same merge value.
  bool found = false;
  for (const Item& it : f.body.body) {
    if (it.kind != ItemKind::If) continue;
    std::vector<ValId> thenDefs, elseDefs;
    for (const Item& t : it.ifi->thenItems) itemDefs(t, thenDefs);
    for (const Item& e : it.ifi->elseItems) itemDefs(e, elseDefs);
    for (ValId v : thenDefs) {
      for (ValId w : elseDefs) {
        if (v == w) found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(GraphGen, CallItem) {
  Program p = buildVerified(R"(
def g(x: real) -> real { return x * 2.0; }
def f(a: real) -> real { return g(a + 1.0); }
)");
  const Function& f = fn(p, "f");
  bool sawCall = false;
  for (const Item& it : f.body.body) {
    if (it.kind == ItemKind::Call) {
      sawCall = true;
      EXPECT_EQ(it.call->args.size(), 1u);
      EXPECT_NE(it.call->dst, kNoVal);
    }
  }
  EXPECT_TRUE(sawCall);
}

TEST(GraphGen, VoidCallHasNoDst) {
  Program p = buildVerified(R"(
def g(a: array) { a[0] = 1.0; }
def f(a: array) { g(a); }
)");
  const Function& f = fn(p, "f");
  for (const Item& it : f.body.body) {
    if (it.kind == ItemKind::Call) {
      EXPECT_EQ(it.call->dst, kNoVal);
    }
  }
}

TEST(GraphGen, DescendingLoop) {
  Program p = buildVerified(R"(
def f(n: int, a: array) {
  for i = n - 1 downto 0 { a[i] = real(i); }
}
)");
  EXPECT_FALSE(firstLoop(fn(p, "f").body).ascending);
}

TEST(DefUse, LoopItemUsesIncludeBoundsAndExternals) {
  Program p = buildVerified(R"(
def f(n: int, a: array, scale: real) {
  for i = 0 to n - 1 { a[i] = scale * real(i); }
}
)");
  const Function& f = fn(p, "f");
  const Item* loopItem = nullptr;
  for (const Item& it : f.body.body) {
    if (it.kind == ItemKind::Loop) loopItem = &it;
  }
  ASSERT_NE(loopItem, nullptr);
  std::vector<ValId> uses;
  itemUses(*loopItem, uses);
  // Bounds + array + scale all flow in: params a (ValId 1) and scale (2).
  auto has = [&](ValId v) {
    return std::find(uses.begin(), uses.end(), v) != uses.end();
  };
  EXPECT_TRUE(has(f.params[1]));  // a
  EXPECT_TRUE(has(f.params[2]));  // scale
}

TEST(DefUse, NestedValueFlowsThroughBothBlocks) {
  Program p = buildVerified(R"(
def f(n: int, m: matrix, scale: real) {
  for i = 0 to n - 1 {
    for j = 0 to n - 1 {
      m[i,j] = scale;
    }
  }
}
)");
  const Function& f = fn(p, "f");
  const Block& iLoop = firstLoop(f.body);
  const Block& jLoop = firstLoop(iLoop);
  auto extI = blockExternalUses(iLoop);
  auto extJ = blockExternalUses(jLoop);
  auto has = [](const std::vector<ValId>& v, ValId x) {
    return std::find(v.begin(), v.end(), x) != v.end();
  };
  // `scale` (param 2) is used only by the inner block but must appear as an
  // external use of both, so the parent can forward it.
  EXPECT_TRUE(has(extJ, f.params[2]));
  EXPECT_TRUE(has(extI, f.params[2]));
  // The inner loop's index is internal to it.
  EXPECT_FALSE(has(extJ, jLoop.indexVal));
}

TEST(Verify, CatchesUseBeforeDef) {
  // Build a tiny program, then corrupt it.
  Program p = buildVerified("def main() -> int { let x = 1; return x; }");
  Function& m = p.fns[p.mainIndex];
  // Point the return at a value that is never defined.
  m.retVals[0] = m.numVals + 100;
  m.numVals += 200;
  std::string err;
  EXPECT_FALSE(verify(p, err));
  EXPECT_NE(err.find("never defined"), std::string::npos);
}

TEST(Verify, CatchesMissingOperand) {
  Program p = buildVerified("def main() -> int { let x = 1 + 2; return x; }");
  Function& m = p.fns[p.mainIndex];
  for (Item& it : m.body.body) {
    if (it.kind == ItemKind::Node && it.node.op == NodeOp::Add) {
      it.node.in[1] = m.numVals + 5;  // out of range
      m.numVals += 10;
    }
  }
  std::string err;
  EXPECT_FALSE(verify(p, err));
}

TEST(Dot, ProducesClustersPerBlock) {
  Program p = buildVerified(R"(
def main() -> matrix {
  let A = matrix(4, 4);
  for i = 0 to 3 {
    for j = 0 to 3 { A[i,j] = 1.0; }
  }
  return A;
}
)");
  std::string dot = toDot(p.main());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  // function body + 2 loops = at least 3 clusters
  EXPECT_NE(dot.find("cluster_0"), std::string::npos);
  EXPECT_NE(dot.find("cluster_1"), std::string::npos);
  EXPECT_NE(dot.find("cluster_2"), std::string::npos);
  EXPECT_NE(dot.find("alloc"), std::string::npos);
}

TEST(Dump, FunctionDumpMentionsLoops) {
  Program p = buildVerified(R"(
def main() -> int {
  let s = for i = 0 to 3 carry (acc = 0) { next acc = acc + i; } yield acc;
  return s;
}
)");
  std::string s = dumpFunction(p.main());
  EXPECT_NE(s.find("for"), std::string::npos);
  EXPECT_NE(s.find("carry"), std::string::npos);
}

}  // namespace
}  // namespace pods::ir
