// IdLite parser unit tests.
#include <gtest/gtest.h>

#include "frontend/parser.hpp"

namespace pods::fe {
namespace {

Module parseOk(std::string_view src) {
  DiagSink d;
  Module m = parse(src, d);
  EXPECT_FALSE(d.hasErrors()) << d.str();
  return m;
}

std::string parseErr(std::string_view src) {
  DiagSink d;
  parse(src, d);
  EXPECT_TRUE(d.hasErrors());
  return d.str();
}

TEST(Parser, EmptyModule) {
  Module m = parseOk("");
  EXPECT_TRUE(m.fns.empty());
}

TEST(Parser, FunctionHeader) {
  Module m = parseOk(
      "def f(a: int, b: real, c: array, d: matrix) -> real { return 1.0; }");
  ASSERT_EQ(m.fns.size(), 1u);
  const FnDecl& f = *m.fns[0];
  EXPECT_EQ(f.name, "f");
  EXPECT_FALSE(f.isInline);
  ASSERT_EQ(f.params.size(), 4u);
  EXPECT_EQ(f.params[0].type, Ty::Int);
  EXPECT_EQ(f.params[1].type, Ty::Real);
  EXPECT_EQ(f.params[2].type, Ty::Array1);
  EXPECT_EQ(f.params[3].type, Ty::Array2);
  EXPECT_EQ(f.retType, Ty::Real);
}

TEST(Parser, InlineAndVoid) {
  Module m = parseOk("inline def g() { }");
  EXPECT_TRUE(m.fns[0]->isInline);
  EXPECT_EQ(m.fns[0]->retType, Ty::Void);
}

TEST(Parser, Precedence) {
  Module m = parseOk("def f() -> int { return 1 + 2 * 3 < 4 && 5 == 6; }");
  const Expr& e = *m.fns[0]->body[0]->values[0];
  // Top: &&
  ASSERT_EQ(e.kind, ExKind::Binary);
  EXPECT_EQ(e.bop, BinOp::And);
  // Left of &&: (1 + 2*3) < 4
  const Expr& lt = *e.args[0];
  EXPECT_EQ(lt.bop, BinOp::Lt);
  const Expr& add = *lt.args[0];
  EXPECT_EQ(add.bop, BinOp::Add);
  const Expr& mul = *add.args[1];
  EXPECT_EQ(mul.bop, BinOp::Mul);
}

TEST(Parser, UnaryBinding) {
  Module m = parseOk("def f() -> int { return -1 - -2; }");
  const Expr& e = *m.fns[0]->body[0]->values[0];
  EXPECT_EQ(e.bop, BinOp::Sub);
  EXPECT_EQ(e.args[0]->kind, ExKind::Unary);
  EXPECT_EQ(e.args[1]->kind, ExKind::Unary);
}

TEST(Parser, IfExpressionAndStatement) {
  Module m = parseOk(R"(
def f(x: int) -> int {
  let y = if x > 0 then 1 else 2;
  if y == 1 { return 7; } else if y == 2 { } else { }
}
)");
  const Stmt& let = *m.fns[0]->body[0];
  EXPECT_EQ(let.kind, StKind::Let);
  EXPECT_EQ(let.value->kind, ExKind::IfExpr);
  const Stmt& ifs = *m.fns[0]->body[1];
  EXPECT_EQ(ifs.kind, StKind::If);
  ASSERT_EQ(ifs.elseBody.size(), 1u);  // else-if chain
  EXPECT_EQ(ifs.elseBody[0]->kind, StKind::If);
}

TEST(Parser, ForLoopForms) {
  Module m = parseOk(R"(
def f(n: int) {
  for i = 0 to n - 1 { }
  for i = n - 1 downto 0 { }
  let s = for i = 0 to n carry (acc = 0.0, k = 1) {
    next acc = acc + 1.0;
  } yield acc;
}
)");
  const LoopInfo& up = *m.fns[0]->body[0]->value->loop;
  EXPECT_TRUE(up.isFor);
  EXPECT_TRUE(up.ascending);
  EXPECT_TRUE(up.carries.empty());
  const LoopInfo& down = *m.fns[0]->body[1]->value->loop;
  EXPECT_FALSE(down.ascending);
  const Stmt& let = *m.fns[0]->body[2];
  const LoopInfo& carry = *let.value->loop;
  ASSERT_EQ(carry.carries.size(), 2u);
  EXPECT_EQ(carry.carries[0].name, "acc");
  EXPECT_EQ(carry.carries[1].name, "k");
  ASSERT_TRUE(carry.yieldExpr != nullptr);
}

TEST(Parser, WhileLoop) {
  Module m = parseOk(R"(
def f() -> int {
  let r = loop carry (k = 0) while k < 10 {
    next k = k + 1;
  } yield k;
  return r;
}
)");
  const LoopInfo& w = *m.fns[0]->body[0]->value->loop;
  EXPECT_FALSE(w.isFor);
  ASSERT_TRUE(w.cond != nullptr);
  ASSERT_EQ(w.carries.size(), 1u);
}

TEST(Parser, ArrayOps) {
  Module m = parseOk(R"(
def f(a: array, b: matrix) -> real {
  a[0] = 1.0;
  b[1, 2] = a[0] + 0.5;
  return b[1, 2];
}
)");
  const Stmt& w1 = *m.fns[0]->body[0];
  EXPECT_EQ(w1.kind, StKind::ArrayWrite);
  EXPECT_EQ(w1.subs.size(), 1u);
  const Stmt& w2 = *m.fns[0]->body[1];
  EXPECT_EQ(w2.subs.size(), 2u);
  EXPECT_EQ(w2.value->kind, ExKind::Binary);
}

TEST(Parser, AllocationAndConversions) {
  Module m = parseOk(R"(
def f(n: int) {
  let a = array(n);
  let b = matrix(n, 2 * n);
  let x = real(n);
  let k = int(3.7);
}
)");
  EXPECT_EQ(m.fns[0]->body[0]->value->builtin, Builtin::ArrayAlloc);
  EXPECT_EQ(m.fns[0]->body[1]->value->builtin, Builtin::MatrixAlloc);
  EXPECT_EQ(m.fns[0]->body[2]->value->name, "real");
  EXPECT_EQ(m.fns[0]->body[3]->value->name, "int");
}

TEST(Parser, CallsAndTupleReturn) {
  Module m = parseOk(R"(
def main() {
  return 1, 2.0;
}
)");
  EXPECT_EQ(m.fns[0]->body[0]->values.size(), 2u);
}

TEST(Parser, LoopAsBareStatementOptionalSemi) {
  parseOk("def f() { for i = 0 to 3 { } for j = 0 to 3 { }; }");
}

TEST(Parser, ErrorMissingSemicolon) {
  std::string e = parseErr("def f() { let x = 1 }");
  EXPECT_NE(e.find("expected ';'"), std::string::npos);
}

TEST(Parser, ErrorRecoversToNextDef) {
  DiagSink d;
  Module m = parse("def broken( { } def ok() { }", d);
  EXPECT_TRUE(d.hasErrors());
  // The second function is still parsed.
  EXPECT_TRUE(m.find("ok") != nullptr);
}

TEST(Parser, ErrorBadType) {
  parseErr("def f(x: banana) { }");
}

TEST(Parser, ErrorWhileWithoutCarry) {
  parseErr("def f() { loop while 1 { } }");
}

TEST(Parser, NestedIndexExpressions) {
  Module m = parseOk("def f(a: array, b: array) -> real { return a[int(b[0])]; }");
  const Expr& idx = *m.fns[0]->body[0]->values[0];
  EXPECT_EQ(idx.kind, ExKind::Index);
  EXPECT_EQ(idx.args[0]->kind, ExKind::Call);
}

}  // namespace
}  // namespace pods::fe
