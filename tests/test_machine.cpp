// PODS machine simulator tests: determinism, unit accounting, I-structure
// semantics (deferred reads, single-assignment violations), page caching,
// distributed allocation, deadlock diagnosis, and failure injection.
#include <gtest/gtest.h>

#include "core/pods.hpp"
#include "workloads/kernels.hpp"

namespace pods {
namespace {

std::unique_ptr<Compiled> compileOk(const std::string& src,
                                    CompileOptions opts = {}) {
  CompileResult cr = compile(src, opts);
  EXPECT_TRUE(cr.ok) << cr.diagnostics;
  return std::move(cr.compiled);
}

PodsRun runP(const Compiled& c, int pes, bool cache = true) {
  sim::MachineConfig mc;
  mc.numPEs = pes;
  mc.cachePages = cache;
  return runPods(c, mc);
}

TEST(Machine, DeterministicAcrossRuns) {
  auto c = compileOk(workloads::stencilSource(8, 2));
  PodsRun a = runP(*c, 4);
  PodsRun b = runP(*c, 4);
  ASSERT_TRUE(a.stats.ok) << a.stats.error;
  EXPECT_EQ(a.stats.total.ns, b.stats.total.ns);
  EXPECT_EQ(a.stats.counters.get("events"), b.stats.counters.get("events"));
  std::string why;
  EXPECT_TRUE(sameOutputs(a.out, b.out, &why)) << why;
}

TEST(Machine, UtilizationsAreSane) {
  auto c = compileOk(workloads::fill2dSource(16, 16));
  PodsRun run = runP(*c, 4);
  ASSERT_TRUE(run.stats.ok);
  for (int pe = 0; pe < 4; ++pe) {
    for (int u = 0; u < sim::kNumUnits; ++u) {
      double util = run.stats.utilization(pe, static_cast<sim::Unit>(u));
      EXPECT_GE(util, 0.0);
      EXPECT_LE(util, 1.0 + 1e-9) << "pe " << pe << " unit " << u;
    }
  }
  // The Execution Unit dominates (the paper's Figure-8 observation).
  EXPECT_GT(run.stats.avgUtilization(sim::Unit::EU),
            run.stats.avgUtilization(sim::Unit::MM));
  EXPECT_GT(run.stats.avgUtilization(sim::Unit::EU),
            run.stats.avgUtilization(sim::Unit::AM));
}

TEST(Machine, SingleAssignmentViolationDetected) {
  auto c = compileOk(R"(
def main() -> real {
  let a = array(4);
  a[1] = 1.0;
  a[1] = 2.0;
  return a[1];
}
)", {.distribute = false});
  PodsRun run = runP(*c, 1);
  EXPECT_FALSE(run.stats.ok);
  EXPECT_NE(run.stats.error.find("single-assignment"), std::string::npos);
}

TEST(Machine, OutOfBoundsDetected) {
  auto c = compileOk(R"(
def main() -> real {
  let a = array(4);
  a[7] = 1.0;
  return 0.0;
}
)", {.distribute = false});
  PodsRun run = runP(*c, 1);
  EXPECT_FALSE(run.stats.ok);
  EXPECT_NE(run.stats.error.find("out of bounds"), std::string::npos);
}

TEST(Machine, DeadlockOnUnwrittenElementDiagnosed) {
  // Reads an element nobody ever writes: the read defers forever and the
  // machine reports which SPs never completed.
  auto c = compileOk(R"(
def main() -> real {
  let a = array(4);
  a[0] = 1.0;
  return a[3];
}
)", {.distribute = false});
  PodsRun run = runP(*c, 1);
  EXPECT_FALSE(run.stats.ok);
  EXPECT_NE(run.stats.error.find("deadlock"), std::string::npos);
  EXPECT_NE(run.stats.error.find("main"), std::string::npos);
}

TEST(Machine, DeferredReadResolvedByLaterWrite) {
  auto c = compileOk(R"(
def slowwrite(a: array) {
  let x = for i = 0 to 50 carry (s = 0.0) { next s = s + sqrt(real(i)); } yield s;
  a[0] = x * 0.0 + 1.5;
}
def main() -> real {
  let a = array(1);
  slowwrite(a);
  return a[0] * 2.0;
}
)", {.distribute = false});
  PodsRun run = runP(*c, 1);
  ASSERT_TRUE(run.stats.ok) << run.stats.error;
  EXPECT_DOUBLE_EQ(run.out.results[0].asReal(), 3.0);
  EXPECT_GE(run.stats.counters.get("array.reads.deferred"), 1);
}

TEST(Machine, CacheOffStillCorrectAndSlower) {
  auto c = compileOk(workloads::stencilSource(12, 2));
  PodsRun with = runP(*c, 4, /*cache=*/true);
  PodsRun without = runP(*c, 4, /*cache=*/false);
  ASSERT_TRUE(with.stats.ok) << with.stats.error;
  ASSERT_TRUE(without.stats.ok) << without.stats.error;
  std::string why;
  EXPECT_TRUE(sameOutputs(with.out, without.out, &why)) << why;
  // No cache -> at least as many page transfers and no less time.
  EXPECT_GE(without.stats.counters.get("array.pagesSent"),
            with.stats.counters.get("array.pagesSent"));
  EXPECT_GE(without.stats.total.ns, with.stats.total.ns);
  EXPECT_EQ(without.stats.counters.get("array.reads.cacheHit"), 0);
}

TEST(Machine, PageSizeVariantsAgreeOnResults) {
  auto c = compileOk(workloads::stencilSource(10, 1));
  PodsRun ref = runP(*c, 4);
  for (int page : {1, 8, 64, 256}) {
    sim::MachineConfig mc;
    mc.numPEs = 4;
    mc.timing.pageElems = page;
    PodsRun run = runPods(*c, mc);
    ASSERT_TRUE(run.stats.ok) << "page=" << page << ": " << run.stats.error;
    std::string why;
    EXPECT_TRUE(sameOutputs(run.out, ref.out, &why)) << "page=" << page << ": "
                                                     << why;
  }
}

TEST(Machine, MorePEsThanWork) {
  auto c = compileOk(workloads::fill2dSource(3, 3));
  PodsRun run = runP(*c, 16);  // more PEs than rows
  ASSERT_TRUE(run.stats.ok) << run.stats.error;
  ASSERT_TRUE(run.out.arrays[0].has_value());
  EXPECT_DOUBLE_EQ((*run.out.arrays[0]).elems[4].asReal(), 11.0);
}

TEST(Machine, DistributedAllocationBroadcasts) {
  auto c = compileOk(workloads::fill2dSource(8, 8));
  PodsRun run = runP(*c, 4);
  ASSERT_TRUE(run.stats.ok);
  EXPECT_EQ(run.stats.counters.get("array.allocs"), 1);
  // Replicated loop instances ran on every PE: 1 main + 4 i-loop replicas
  // + 8 j-loop instances.
  EXPECT_EQ(run.stats.counters.get("sp.instantiated"), 13);
  EXPECT_EQ(run.stats.counters.get("sp.completed"), 13);
}

TEST(Machine, NoDroppedTokens) {
  const std::string sources[] = {workloads::stencilSource(8, 2),
                                 workloads::matmulSource(6),
                                 workloads::triangularSource(12)};
  for (const std::string& src : sources) {
    auto c = compileOk(src);
    PodsRun run = runP(*c, 8);
    ASSERT_TRUE(run.stats.ok);
    EXPECT_EQ(run.stats.counters.get("tokens.dropped"), 0);
  }
}

TEST(Machine, EventBudgetStopsRunaway) {
  auto c = compileOk(workloads::stencilSource(16, 4));
  sim::MachineConfig mc;
  mc.numPEs = 4;
  mc.maxEvents = 100;  // absurdly small
  PodsRun run = runPods(*c, mc);
  EXPECT_FALSE(run.stats.ok);
  EXPECT_NE(run.stats.error.find("event budget"), std::string::npos);
}

TEST(Machine, TimeScalesWithWork) {
  auto small = compileOk(workloads::fill2dSource(8, 8));
  auto large = compileOk(workloads::fill2dSource(32, 32));
  PodsRun a = runP(*small, 2);
  PodsRun b = runP(*large, 2);
  ASSERT_TRUE(a.stats.ok);
  ASSERT_TRUE(b.stats.ok);
  EXPECT_GT(b.stats.total.ns, a.stats.total.ns * 4);
}

TEST(Machine, RemoteWritesLandAtOwners) {
  // Force remote writes: distribute by block range so iterations do not
  // follow the data distribution (the ablation mode).
  auto c = compileOk(workloads::fill2dSource(16, 4),
                     {.distribute = true, .forceBlockRange = true});
  PodsRun run = runP(*c, 4);
  ASSERT_TRUE(run.stats.ok) << run.stats.error;
  // Block partitioning of rows coincides with row ownership here, so force
  // a mismatch with a column-writing program instead.
  auto c2 = compileOk(R"(
def main() -> matrix {
  let m = matrix(16, 16);
  for j = 0 to 15 {
    for i = 0 to 15 {
      m[i,j] = real(i * 16 + j);
    }
  }
  return m;
}
)");
  PodsRun run2 = runP(*c2, 4);
  ASSERT_TRUE(run2.stats.ok) << run2.stats.error;
  EXPECT_GT(run2.stats.counters.get("array.writes.remote"), 0);
  ASSERT_TRUE(run2.out.arrays[0].has_value());
  EXPECT_DOUBLE_EQ((*run2.out.arrays[0]).elems[255].asReal(), 255.0);
}

}  // namespace
}  // namespace pods
