// Baseline evaluator tests: the sequential cost model and the static
// (Pingali/Rogers-style) distributed model.
#include <gtest/gtest.h>

#include "core/pods.hpp"
#include "workloads/kernels.hpp"

namespace pods {
namespace {

std::unique_ptr<Compiled> compileOk(const std::string& src,
                                    CompileOptions opts = {}) {
  CompileResult cr = compile(src, opts);
  EXPECT_TRUE(cr.ok) << cr.diagnostics;
  return std::move(cr.compiled);
}

TEST(Sequential, ComputesKnownValues) {
  auto c = compileOk(workloads::reduceSource(100), {.distribute = false});
  BaselineRun run = runSequentialBaseline(*c);
  ASSERT_TRUE(run.stats.ok) << run.stats.error;
  // sum_{i=0..99} (1 + i/1000) = 100 + 4.950
  EXPECT_NEAR(run.out.results[0].asReal(), 104.95, 1e-9);
  EXPECT_GT(run.stats.total.ns, 0);
}

TEST(Sequential, CostGrowsWithWork) {
  auto small = compileOk(workloads::matmulSource(4));
  auto large = compileOk(workloads::matmulSource(8));
  BaselineRun a = runSequentialBaseline(*small);
  BaselineRun b = runSequentialBaseline(*large);
  // 8^3 / 4^3 = 8x the multiply work.
  EXPECT_GT(b.stats.total.ns, a.stats.total.ns * 4);
}

TEST(Sequential, AntiDependenceIsDiagnosed) {
  // Reads an element that is only written by a *later* iteration: a
  // control-driven schedule cannot execute this (dataflow could).
  auto c = compileOk(R"(
def main() -> real {
  let n = 8;
  let a = array(n);
  a[7] = 1.0;
  for i = 6 downto 0 { a[i] = a[i+1] * 0.5; }
  let bad = array(n);
  bad[7] = 1.0;
  for i = 0 to 6 { bad[i] = bad[i+1] * 0.5; }
  return bad[0];
}
)", {.distribute = false});
  BaselineRun run = runSequentialBaseline(*c);
  EXPECT_FALSE(run.stats.ok);
  EXPECT_NE(run.stats.error.find("never written"), std::string::npos);
}

TEST(Sequential, SingleAssignmentViolation) {
  auto c = compileOk(R"(
def main() -> real {
  let a = array(2);
  a[0] = 1.0;
  a[0] = 2.0;
  return a[0];
}
)", {.distribute = false});
  BaselineRun run = runSequentialBaseline(*c);
  EXPECT_FALSE(run.stats.ok);
  EXPECT_NE(run.stats.error.find("single-assignment"), std::string::npos);
}

TEST(Static, ResultsIndependentOfPeCount) {
  auto c = compileOk(workloads::stencilSource(10, 2));
  BaselineRun ref = runSequentialBaseline(*c);
  ASSERT_TRUE(ref.stats.ok) << ref.stats.error;
  for (int pes : {1, 2, 3, 8, 32}) {
    BaselineRun run = runStaticBaseline(*c, pes);
    ASSERT_TRUE(run.stats.ok) << "pes=" << pes << ": " << run.stats.error;
    std::string why;
    EXPECT_TRUE(sameOutputs(run.out, ref.out, &why)) << "pes=" << pes << ": "
                                                     << why;
  }
}

TEST(Static, SpeedsUpOnParallelWork) {
  auto c = compileOk(workloads::fill2dSource(64, 64));
  BaselineRun p1 = runStaticBaseline(*c, 1);
  BaselineRun p8 = runStaticBaseline(*c, 8);
  ASSERT_TRUE(p1.stats.ok);
  ASSERT_TRUE(p8.stats.ok);
  EXPECT_LT(p8.stats.total.ns, p1.stats.total.ns / 3);
}

TEST(Static, OnePeMatchesSequentialCost) {
  // With one PE and no remote traffic the static model degenerates to the
  // sequential model (compiled once with distribution enabled).
  auto c = compileOk(workloads::matmulSource(6));
  BaselineRun st = runStaticBaseline(*c, 1);
  BaselineRun seq = runSequentialBaseline(*c);
  ASSERT_TRUE(st.stats.ok);
  ASSERT_TRUE(seq.stats.ok);
  EXPECT_EQ(st.stats.total.ns, seq.stats.total.ns);
}

TEST(Static, RemoteTrafficCountedAtScale) {
  auto c = compileOk(workloads::stencilSource(16, 1));
  BaselineRun run = runStaticBaseline(*c, 8);
  ASSERT_TRUE(run.stats.ok);
  EXPECT_GT(run.stats.counters.get("array.reads.remote"), 0);
  EXPECT_GT(run.stats.counters.get("array.pageFetches"), 0);
  EXPECT_GT(run.stats.counters.get("loops.distributed"), 0);
}

TEST(Static, PerPeClocksReported) {
  auto c = compileOk(workloads::fill2dSource(16, 16));
  BaselineRun run = runStaticBaseline(*c, 4);
  ASSERT_TRUE(run.stats.ok);
  ASSERT_EQ(run.stats.peTime.size(), 4u);
  SimTime mx{};
  for (SimTime t : run.stats.peTime) mx = std::max(mx, t);
  EXPECT_EQ(mx.ns, run.stats.total.ns);
}

TEST(Static, LoadImbalanceShowsUp) {
  // Triangular work: later rows do more; block row ownership puts them on
  // the last PEs, so per-PE clocks must differ noticeably.
  auto c = compileOk(workloads::triangularSource(64));
  BaselineRun run = runStaticBaseline(*c, 4);
  ASSERT_TRUE(run.stats.ok);
  SimTime mn = run.stats.peTime[0], mx = run.stats.peTime[0];
  for (SimTime t : run.stats.peTime) {
    mn = std::min(mn, t);
    mx = std::max(mx, t);
  }
  EXPECT_GT(mx.ns, mn.ns);
}

TEST(Static, FasterThanPodsAtOnePe) {
  // The static/sequential model has no token, matching, or process
  // overheads, so at 1 PE it is at least as fast as PODS (section 5.3.4).
  auto c = compileOk(workloads::matmulSource(8));
  BaselineRun st = runStaticBaseline(*c, 1);
  sim::MachineConfig mc;
  mc.numPEs = 1;
  PodsRun pods = runPods(*c, mc);
  ASSERT_TRUE(st.stats.ok);
  ASSERT_TRUE(pods.stats.ok);
  EXPECT_LE(st.stats.total.ns, pods.stats.total.ns);
}

}  // namespace
}  // namespace pods
