// Simulator path-coverage tests: the rarer Array-Manager and token flows
// (header races, deferred remote reads answered with value tokens, request
// coalescing, broadcast accounting, live-SP tracking) must actually fire
// on realistic distributed runs — these assert via counters that the code
// paths execute, and via outputs that they execute *correctly*.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/pods.hpp"
#include "workloads/kernels.hpp"
#include "workloads/simple.hpp"

namespace pods {
namespace {

std::unique_ptr<Compiled> compileOk(const std::string& src,
                                    CompileOptions opts = {}) {
  CompileResult cr = compile(src, opts);
  EXPECT_TRUE(cr.ok) << cr.diagnostics;
  return std::move(cr.compiled);
}

TEST(MachinePaths, ColumnSweepExercisesRemoteDeferredReads) {
  // The conduction column sweep pipelines rows: replicas read the previous
  // row before it is written at segment boundaries, so owner-side queued
  // remote reads and their value-token responses must fire.
  auto c = compileOk(workloads::conductionOnlySource(24, 1));
  sim::MachineConfig mc;
  mc.numPEs = 12;
  PodsRun run = runPods(*c, mc);
  ASSERT_TRUE(run.stats.ok) << run.stats.error;
  EXPECT_GT(run.stats.counters.get("array.reads.remoteDeferred"), 0);
  BaselineRun seq = runSequentialBaseline(*c);
  std::string why;
  EXPECT_TRUE(sameOutputs(run.out, seq.out, &why)) << why;
}

TEST(MachinePaths, HeaderInstallPrecedesUse) {
  // The Array Manager parks any request that reaches a PE before that
  // array's ALLOCD broadcast installs its header (pendingHeader). Under
  // the compiled programs' topology this safety net should never trigger:
  // an array id can only reach a remote PE through tokens that left the
  // allocating PE's FIFO Routing Unit *after* the header broadcast, so the
  // install always arrives first. Assert that invariant (a change to spawn
  // routing or RU ordering that breaks it would surface here), and that
  // results stay correct under a grossly inflated install cost.
  auto c = compileOk(workloads::simpleSource(16, 1));
  sim::MachineConfig mc;
  mc.numPEs = 16;
  mc.timing.allocArray = usec(4000.0);
  PodsRun run = runPods(*c, mc);
  ASSERT_TRUE(run.stats.ok) << run.stats.error;
  EXPECT_EQ(run.stats.counters.get("am.deferredOnHeader"), 0);
  BaselineRun seq = runSequentialBaseline(*c);
  std::string why;
  EXPECT_TRUE(sameOutputs(run.out, seq.out, &why)) << why;
}

TEST(MachinePaths, CoalescedRemoteReads) {
  // Many iterations on one PE reading the same remote element in quick
  // succession: only one request per element may go out while in flight.
  auto c = compileOk(R"(
def main() -> real {
  let n = 64;
  let a = array(n);
  for i = 0 to n - 1 { a[i] = real(i) + 0.5; }
  let b = array(n);
  for i = 0 to n - 1 {
    b[i] = a[0] + a[n - 1];   // everyone hammers two elements
  }
  let s = for i = 0 to n - 1 carry (acc = 0.0) { next acc = acc + b[i]; } yield acc;
  return s;
}
)");
  sim::MachineConfig mc;
  mc.numPEs = 2;
  mc.timing.pageElems = 4;  // keep the two hot elements on distinct pages
  PodsRun run = runPods(*c, mc);
  ASSERT_TRUE(run.stats.ok) << run.stats.error;
  BaselineRun seq = runSequentialBaseline(*c);
  std::string why;
  EXPECT_TRUE(sameOutputs(run.out, seq.out, &why)) << why;
  EXPECT_DOUBLE_EQ(run.out.results[0].asReal(), 64.0 * (0.5 + 63.5));
}

TEST(MachinePaths, BroadcastTokensCounted) {
  auto c = compileOk(workloads::fill2dSource(8, 8));
  sim::MachineConfig mc;
  mc.numPEs = 8;
  PodsRun run = runPods(*c, mc);
  ASSERT_TRUE(run.stats.ok);
  // Spawning the replicated i loop broadcast each argument token once.
  EXPECT_GT(run.stats.counters.get("net.broadcastTokens"), 0);
  // And every PE's MU matched its copy: matched >= broadcast * numPEs.
  EXPECT_GE(run.stats.counters.get("tokens.matched"),
            run.stats.counters.get("net.broadcastTokens") * 8);
}

TEST(MachinePaths, PeakLiveSpsTracksPipelining) {
  // Unthrottled (no k-bounding) spawning: the stencil's time steps overlap,
  // so more steps raise the peak number of live SPs.
  auto c1 = compileOk(workloads::stencilSource(12, 1));
  auto c3 = compileOk(workloads::stencilSource(12, 6));
  sim::MachineConfig mc;
  mc.numPEs = 4;
  PodsRun r1 = runPods(*c1, mc);
  PodsRun r3 = runPods(*c3, mc);
  ASSERT_TRUE(r1.stats.ok);
  ASSERT_TRUE(r3.stats.ok);
  EXPECT_GT(r1.stats.counters.get("sp.peakLive"), 0);
  EXPECT_GT(r3.stats.counters.get("sp.peakLive"),
            r1.stats.counters.get("sp.peakLive"));
}

TEST(MachinePaths, AllSpsDieAtQuiescence) {
  auto c = compileOk(workloads::simpleSource(8, 2));
  sim::MachineConfig mc;
  mc.numPEs = 8;
  PodsRun run = runPods(*c, mc);
  ASSERT_TRUE(run.stats.ok);
  EXPECT_EQ(run.stats.counters.get("sp.instantiated"),
            run.stats.counters.get("sp.completed"));
}

TEST(MachinePaths, DescendingDistributedLoop) {
  // A replicated *descending* loop: the Figure-5 clamps swap roles.
  auto c = compileOk(R"(
def main() -> array {
  let n = 40;
  let a = array(n);
  for i = n - 1 downto 0 {
    a[i] = real(i) * 2.0;
  }
  return a;
}
)");
  sim::MachineConfig mc;
  mc.numPEs = 8;
  PodsRun run = runPods(*c, mc);
  ASSERT_TRUE(run.stats.ok) << run.stats.error;
  const auto& a = *run.out.arrays[0];
  for (int i = 0; i < 40; ++i) {
    EXPECT_DOUBLE_EQ(a.elems[static_cast<std::size_t>(i)].asReal(), 2.0 * i);
  }
}

TEST(MachinePaths, OffsetRangeFilterWritesEveryElementOnce) {
  // Write subscript i+1: RF bounds shift by the offset; coverage must stay
  // exact (no misses, no single-assignment violations) at every PE count.
  auto c = compileOk(R"(
def main() -> array {
  let n = 33;
  let a = array(n);
  a[0] = -1.0;
  for i = 0 to n - 2 {
    a[i + 1] = real(i);
  }
  return a;
}
)");
  for (int pes : {1, 2, 7, 16}) {
    sim::MachineConfig mc;
    mc.numPEs = pes;
    PodsRun run = runPods(*c, mc);
    ASSERT_TRUE(run.stats.ok) << "pes=" << pes << ": " << run.stats.error;
    const auto& a = *run.out.arrays[0];
    EXPECT_DOUBLE_EQ(a.elems[0].asReal(), -1.0);
    for (int i = 1; i < 33; ++i) {
      EXPECT_DOUBLE_EQ(a.elems[static_cast<std::size_t>(i)].asReal(),
                       double(i - 1))
          << "pes=" << pes;
    }
  }
}

TEST(MachinePaths, TinyArraysManyPEs) {
  // Arrays smaller than one page on a big machine: a single PE owns
  // everything; all other replicas get empty RF ranges.
  auto c = compileOk(R"(
def main() -> array {
  let a = array(3);
  for i = 0 to 2 { a[i] = real(i * i); }
  return a;
}
)");
  sim::MachineConfig mc;
  mc.numPEs = 32;
  PodsRun run = runPods(*c, mc);
  ASSERT_TRUE(run.stats.ok) << run.stats.error;
  EXPECT_DOUBLE_EQ((*run.out.arrays[0]).elems[2].asReal(), 4.0);
}

TEST(MachinePaths, ChromeTraceWritten) {
  auto c = compileOk(workloads::fill2dSource(8, 8));
  sim::MachineConfig mc;
  mc.numPEs = 4;
  mc.tracePath = ::testing::TempDir() + "/pods_trace.json";
  PodsRun run = runPods(*c, mc);
  ASSERT_TRUE(run.stats.ok) << run.stats.error;
  std::ifstream in(mc.tracePath);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  std::string trace = ss.str();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("main/i#0"), std::string::npos);  // an EU slice name
  EXPECT_NE(trace.find("\"RU\""), std::string::npos);    // lane metadata
  EXPECT_EQ(trace.find("trace.dropped"), std::string::npos);
  std::remove(mc.tracePath.c_str());
}

TEST(MachinePaths, ChromeTraceTruncationIsCountedAndMarked) {
  auto c = compileOk(workloads::fill2dSource(8, 8));
  sim::MachineConfig mc;
  mc.numPEs = 4;
  mc.tracePath = ::testing::TempDir() + "/pods_trace_trunc.json";
  mc.maxTraceEvents = 64;  // far below what this workload emits
  PodsRun run = runPods(*c, mc);
  ASSERT_TRUE(run.stats.ok) << run.stats.error;
  const std::int64_t dropped = run.stats.counters.get("trace.dropped");
  EXPECT_GT(dropped, 0);
  std::ifstream in(mc.tracePath);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  std::string trace = ss.str();
  EXPECT_NE(trace.find("trace truncated: " + std::to_string(dropped) +
                       " events dropped"),
            std::string::npos);
  std::remove(mc.tracePath.c_str());
}

TEST(MachinePaths, ZeroIterationDistributedLoop) {
  auto c = compileOk(R"(
def main() -> real {
  let a = array(8);
  for i = 5 to 4 { a[i] = 1.0; }   // empty range, still broadcast/joined
  a[0] = 3.5;
  return a[0];
}
)");
  sim::MachineConfig mc;
  mc.numPEs = 4;
  PodsRun run = runPods(*c, mc);
  ASSERT_TRUE(run.stats.ok) << run.stats.error;
  EXPECT_DOUBLE_EQ(run.out.results[0].asReal(), 3.5);
}

}  // namespace
}  // namespace pods
