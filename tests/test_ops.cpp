// Value representation and the shared instruction semantics that guarantee
// bit-identical results across the PODS machine and the baseline evaluators.
#include <gtest/gtest.h>

#include "runtime/ops.hpp"
#include "runtime/value.hpp"

namespace pods {
namespace {

TEST(Value, TagsAndAccessors) {
  Value e;
  EXPECT_TRUE(e.empty());
  Value i = Value::intv(-7);
  EXPECT_TRUE(i.isInt());
  EXPECT_EQ(i.asInt(), -7);
  EXPECT_DOUBLE_EQ(i.asReal(), -7.0);  // numeric coercion on read
  Value r = Value::realv(2.5);
  EXPECT_TRUE(r.isReal());
  EXPECT_DOUBLE_EQ(r.asReal(), 2.5);
  Value a = Value::arrayv(123);
  EXPECT_TRUE(a.isArray());
  EXPECT_EQ(a.asArray(), 123u);
}

TEST(Value, ContRoundTrip) {
  Cont c{31, 0xABCDEF, 512};
  Value v = Value::contv(c);
  Cont d = v.asCont();
  EXPECT_EQ(d.pe, 31);
  EXPECT_EQ(d.frame, 0xABCDEFu);
  EXPECT_EQ(d.slot, 512);
  EXPECT_EQ(d.gen, 0);
}

TEST(Value, ContRoundTripAtFieldLimits) {
  // Extremes of the packed layout (pe:12 | gen:12 | frame:24 | slot:16):
  // every field must survive independently, including kNoSlot.
  Cont c{4095, Cont::kMaxFrame, kNoSlot, Cont::kGenMask};
  Cont d = Value::contv(c).asCont();
  EXPECT_EQ(d.pe, 4095);
  EXPECT_EQ(d.frame, Cont::kMaxFrame);
  EXPECT_EQ(d.slot, kNoSlot);
  EXPECT_EQ(d.gen, Cont::kGenMask);
  // Generations distinguish reuses of the same frame index.
  Cont g1{2, 77, 5, 1}, g2{2, 77, 5, 2};
  EXPECT_NE(Value::contv(g1).asCont().gen, Value::contv(g2).asCont().gen);
}

TEST(Value, Truthiness) {
  EXPECT_TRUE(Value::intv(1).truthy());
  EXPECT_FALSE(Value::intv(0).truthy());
  EXPECT_TRUE(Value::realv(0.5).truthy());
  EXPECT_FALSE(Value::realv(0.0).truthy());
}

TEST(Value, IdenticalIsExact) {
  EXPECT_TRUE(Value::intv(1).identical(Value::intv(1)));
  EXPECT_FALSE(Value::intv(1).identical(Value::realv(1.0)));  // tag matters
  EXPECT_TRUE(Value::realv(0.1).identical(Value::realv(0.1)));
  EXPECT_FALSE(Value{}.identical(Value::intv(0)));
}

TEST(Value, Str) {
  EXPECT_EQ(Value::intv(42).str(), "42");
  EXPECT_EQ(Value{}.str(), "<empty>");
  EXPECT_EQ(Value::arrayv(3).str(), "arr#3");
}

TEST(Ops, IntArithmetic) {
  EXPECT_EQ(applyBin(Op::ADD, Value::intv(3), Value::intv(4)).asInt(), 7);
  EXPECT_EQ(applyBin(Op::SUB, Value::intv(3), Value::intv(4)).asInt(), -1);
  EXPECT_EQ(applyBin(Op::MUL, Value::intv(-3), Value::intv(4)).asInt(), -12);
  EXPECT_EQ(applyBin(Op::DIV, Value::intv(7), Value::intv(2)).asInt(), 3);
  EXPECT_EQ(applyBin(Op::MOD, Value::intv(7), Value::intv(3)).asInt(), 1);
  EXPECT_TRUE(applyBin(Op::DIV, Value::intv(7), Value::intv(2)).isInt());
}

TEST(Ops, MixedPromotesToReal) {
  Value v = applyBin(Op::ADD, Value::intv(1), Value::realv(0.5));
  EXPECT_TRUE(v.isReal());
  EXPECT_DOUBLE_EQ(v.asReal(), 1.5);
  EXPECT_TRUE(applyBin(Op::DIV, Value::intv(7), Value::realv(2.0)).isReal());
  EXPECT_DOUBLE_EQ(
      applyBin(Op::DIV, Value::intv(7), Value::realv(2.0)).asReal(), 3.5);
}

TEST(Ops, MinMax) {
  EXPECT_EQ(applyBin(Op::MIN2, Value::intv(3), Value::intv(-2)).asInt(), -2);
  EXPECT_EQ(applyBin(Op::MAX2, Value::intv(3), Value::intv(-2)).asInt(), 3);
  EXPECT_DOUBLE_EQ(
      applyBin(Op::MIN2, Value::realv(1.5), Value::intv(2)).asReal(), 1.5);
}

TEST(Ops, Comparisons) {
  EXPECT_EQ(applyBin(Op::CMPLT, Value::intv(1), Value::intv(2)).asInt(), 1);
  EXPECT_EQ(applyBin(Op::CMPGE, Value::intv(1), Value::intv(2)).asInt(), 0);
  EXPECT_EQ(applyBin(Op::CMPEQ, Value::realv(1.0), Value::intv(1)).asInt(), 1);
  EXPECT_EQ(applyBin(Op::CMPNE, Value::intv(5), Value::intv(5)).asInt(), 0);
  // Comparison results are Int regardless of operand types.
  EXPECT_TRUE(applyBin(Op::CMPLE, Value::realv(1.0), Value::realv(2.0)).isInt());
}

TEST(Ops, Logical) {
  EXPECT_EQ(applyBin(Op::AND, Value::intv(1), Value::intv(2)).asInt(), 1);
  EXPECT_EQ(applyBin(Op::AND, Value::intv(1), Value::intv(0)).asInt(), 0);
  EXPECT_EQ(applyBin(Op::OR, Value::intv(0), Value::intv(0)).asInt(), 0);
  EXPECT_EQ(applyUn(Op::NOT, Value::intv(0)).asInt(), 1);
  EXPECT_EQ(applyUn(Op::NOT, Value::intv(9)).asInt(), 0);
}

TEST(Ops, Unaries) {
  EXPECT_EQ(applyUn(Op::NEG, Value::intv(4)).asInt(), -4);
  EXPECT_DOUBLE_EQ(applyUn(Op::NEG, Value::realv(4.0)).asReal(), -4.0);
  EXPECT_EQ(applyUn(Op::ABS, Value::intv(-4)).asInt(), 4);
  EXPECT_DOUBLE_EQ(applyUn(Op::SQRT, Value::realv(9.0)).asReal(), 3.0);
  EXPECT_DOUBLE_EQ(applyUn(Op::FLOOR, Value::realv(2.9)).asReal(), 2.0);
  EXPECT_EQ(applyUn(Op::CVTI, Value::realv(2.9)).asInt(), 2);   // truncation
  EXPECT_EQ(applyUn(Op::CVTI, Value::intv(5)).asInt(), 5);
  EXPECT_TRUE(applyUn(Op::CVTR, Value::intv(5)).isReal());
  EXPECT_EQ(applyUn(Op::CVTI, Value::realv(-2.9)).asInt(), -2);
}

TEST(Ops, PowIsAlwaysReal) {
  Value v = applyBin(Op::POW, Value::intv(2), Value::intv(10));
  EXPECT_TRUE(v.isReal());
  EXPECT_DOUBLE_EQ(v.asReal(), 1024.0);
}

TEST(Ops, Classification) {
  EXPECT_TRUE(isBinaryOp(Op::ADD));
  EXPECT_TRUE(isBinaryOp(Op::CMPNE));
  EXPECT_FALSE(isBinaryOp(Op::NEG));
  EXPECT_FALSE(isBinaryOp(Op::ARD));
  EXPECT_TRUE(isUnaryOp(Op::SQRT));
  EXPECT_TRUE(isUnaryOp(Op::MOV));
  EXPECT_FALSE(isUnaryOp(Op::ADD));
  EXPECT_FALSE(isUnaryOp(Op::SENDA));
}

TEST(Ops, BinIsReal) {
  EXPECT_FALSE(binIsReal(Value::intv(1), Value::intv(2)));
  EXPECT_TRUE(binIsReal(Value::realv(1), Value::intv(2)));
  EXPECT_TRUE(binIsReal(Value::intv(1), Value::realv(2)));
}

}  // namespace
}  // namespace pods
