// SPSC inbox-ring tests (docs/ARCHITECTURE.md, "Native transport").
//
// The ring carries every cross-PE token of the native machine, so the
// properties under test are exactly the ones the quiescence protocol leans
// on: FIFO order per lane, no loss, no duplication, a conclusive full/empty
// discipline (a failed push must leave the value intact for the overflow
// fallback), and wrap-safety of the 32-bit indices. Test names start with
// NativeSpscRing so the sanitizer jobs' `Native*` filters include them —
// the two-thread transfer test is the interesting one under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "native/spsc_ring.hpp"

namespace pods::native {
namespace {

TEST(NativeSpscRing, FifoSingleThread) {
  SpscRing<int> r(8);
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.capacity(), 8u);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(r.tryPush(int{i}));
  EXPECT_FALSE(r.empty());
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(r.tryPop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(r.empty());
  EXPECT_FALSE(r.tryPop(out));
}

TEST(NativeSpscRing, FullRingRejectsPushAndKeepsValue) {
  SpscRing<std::vector<int>> r(4);
  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(r.tryPush(std::vector<int>{i, i, i}));
  // The failed push must NOT consume the moved-from value: the machine
  // falls back to the overflow deque with the same token.
  std::vector<int> v{9, 9, 9};
  EXPECT_FALSE(r.tryPush(std::move(v)));
  EXPECT_EQ(v.size(), 3u) << "rejected push must leave the payload intact";
  std::vector<int> out;
  ASSERT_TRUE(r.tryPop(out));
  EXPECT_EQ(out, (std::vector<int>{0, 0, 0}));
  // One slot freed: the push succeeds now.
  EXPECT_TRUE(r.tryPush(std::move(v)));
}

TEST(NativeSpscRing, WrapAroundPreservesFifo) {
  SpscRing<std::uint32_t> r(4);
  std::uint32_t next = 0, expect = 0, out = 0;
  // Many laps around the 4-slot ring: indices keep increasing, slots wrap.
  for (int lap = 0; lap < 1000; ++lap) {
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(r.tryPush(std::uint32_t{next++}));
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(r.tryPop(out));
      ASSERT_EQ(out, expect++);
    }
  }
  EXPECT_TRUE(r.empty());
}

TEST(NativeSpscRing, TwoThreadTransferIsLosslessAndOrdered) {
  constexpr std::uint32_t kItems = 200000;
  SpscRing<std::uint32_t> r(64);
  std::atomic<std::uint64_t> popped{0};
  std::thread consumer([&] {
    std::uint32_t expect = 0;
    std::uint32_t out = 0;
    while (expect < kItems) {
      if (r.tryPop(out)) {
        ASSERT_EQ(out, expect);  // FIFO, no loss, no duplication
        ++expect;
        popped.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  for (std::uint32_t i = 0; i < kItems;) {
    if (r.tryPush(std::uint32_t{i})) ++i;
  }
  consumer.join();
  EXPECT_EQ(popped.load(), kItems);
  EXPECT_TRUE(r.empty());
}

TEST(NativeSpscRing, EmptyProbeIsSafeFromBothSides) {
  SpscRing<int> r(2);
  EXPECT_TRUE(r.empty());
  ASSERT_TRUE(r.tryPush(1));
  EXPECT_FALSE(r.empty());
  ASSERT_TRUE(r.tryPush(2));
  int out = 0;
  ASSERT_TRUE(r.tryPop(out));
  ASSERT_TRUE(r.tryPop(out));
  EXPECT_TRUE(r.empty());
}

}  // namespace
}  // namespace pods::native
