// Native transport tests (docs/ARCHITECTURE.md, "Native transport").
//
// The property under test is transport transparency: the UDP loopback
// transport — real sockets, serialized datagrams, ack/retransmit reliable
// delivery — must produce results bit-identical to the in-process inbox
// transport on every workload, PE count, fault seed, and kill schedule.
// Single assignment gives Church-Rosser confluence, the transport-level
// msgId dedup gives exactly-once delivery, and the quiescence charges ride
// with each token through kernel socket buffers, so termination stays
// exact. The fuzz sweeps run PODS_TRANSPORT_SEEDS seeds (default 8; the CI
// socket-soak job raises it to 32+).
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>

#include "core/pods.hpp"
#include "native/transport.hpp"
#include "proto/delivery.hpp"
#include "support/fault.hpp"
#include "workloads/kernels.hpp"
#include "workloads/simple.hpp"

namespace pods {
namespace {

constexpr const char* kFibSource = R"(
def fib(n: int) -> int {
  let r = if n < 2 then n else fib(n - 1) + fib(n - 2);
  return r;
}
def main() -> int { return fib(13); }
)";

std::unique_ptr<Compiled> compileOk(const std::string& src) {
  CompileResult cr = compile(src, {});
  EXPECT_TRUE(cr.ok) << cr.diagnostics;
  return std::move(cr.compiled);
}

/// Seed count for the UDP fuzz sweeps: PODS_TRANSPORT_SEEDS overrides (the
/// CI socket-soak job raises it), default 8 to keep local runs quick.
int transportSeeds() {
  if (const char* env = std::getenv("PODS_TRANSPORT_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 8;
}

FaultConfig lossyRates(std::uint64_t seed) {
  FaultConfig fc;
  EXPECT_TRUE(FaultConfig::parse("drop:0.05,dup:0.02,delay:0.05", fc));
  fc.seed = seed;
  fc.retry.rtoUs = 50.0;
  fc.nativeDelayUs = 20.0;
  return fc;
}

void expectBalancedLedger(const NativeRun& run, const std::string& what) {
  EXPECT_EQ(run.stats.counters.get("native.framesCreated"),
            run.stats.counters.get("native.framesRetired"))
      << what;
  EXPECT_EQ(run.stats.counters.get("native.framesLive"), 0) << what;
}

// --- wire format ------------------------------------------------------------

TEST(TransportWire, RoundTripsEveryField) {
  native::NToken tok;
  tok.toCont = true;
  tok.spCode = 0xBEEF;
  tok.ctx = 0x123456789ABCDEFULL;
  tok.slot = 0x7A5C;
  tok.cont = Cont{311, 0x00ABCDEF, 0x1234, 0x0FFF};
  tok.v = Value::realv(-2.5e300);
  tok.add = true;
  tok.msgId = 0xFEDCBA9876543210ULL;
  tok.senderCtx = 0x1111222233334444ULL;
  tok.sendKey = 0x5555666677778888ULL;
  tok.wakeKey = (1ULL << 63) | 42;
  tok.amKind = static_cast<std::uint8_t>(native::AmKind::DimReply);

  std::uint8_t wire[native::kTokenWireBytes];
  native::wireEncodeToken(tok, 777, wire);

  native::NToken back;
  std::uint16_t srcPe = 0;
  ASSERT_TRUE(
      native::wireDecodeToken(wire, native::kTokenWireBytes, back, &srcPe));
  EXPECT_EQ(srcPe, 777);
  EXPECT_EQ(back.toCont, tok.toCont);
  EXPECT_EQ(back.spCode, tok.spCode);
  EXPECT_EQ(back.ctx, tok.ctx);
  EXPECT_EQ(back.slot, tok.slot);
  EXPECT_EQ(back.cont.pack(), tok.cont.pack());
  EXPECT_EQ(static_cast<int>(back.v.tag), static_cast<int>(tok.v.tag));
  EXPECT_EQ(back.v.bits, tok.v.bits);
  EXPECT_EQ(back.add, tok.add);
  EXPECT_EQ(back.msgId, tok.msgId);
  EXPECT_EQ(back.senderCtx, tok.senderCtx);
  EXPECT_EQ(back.sendKey, tok.sendKey);
  EXPECT_EQ(back.wakeKey, tok.wakeKey);
  EXPECT_EQ(back.amKind, tok.amKind);
}

TEST(TransportWire, RoundTripsDefaultToken) {
  native::NToken tok;  // all-defaults spawn token (Empty value, zero keys)
  tok.spCode = 3;
  tok.ctx = 9;
  std::uint8_t wire[native::kTokenWireBytes];
  native::wireEncodeToken(tok, 0, wire);
  native::NToken back;
  ASSERT_TRUE(
      native::wireDecodeToken(wire, native::kTokenWireBytes, back, nullptr));
  EXPECT_FALSE(back.toCont);
  EXPECT_FALSE(back.add);
  EXPECT_EQ(back.spCode, 3u);
  EXPECT_EQ(back.ctx, 9u);
  EXPECT_TRUE(back.v.empty());
  EXPECT_EQ(back.msgId, 0u);
}

TEST(TransportWire, RejectsMalformedDatagrams) {
  native::NToken tok;
  tok.v = Value::intv(17);
  std::uint8_t wire[native::kTokenWireBytes];
  native::wireEncodeToken(tok, 1, wire);

  native::NToken out;
  // Truncated / oversized.
  EXPECT_FALSE(
      native::wireDecodeToken(wire, native::kTokenWireBytes - 1, out, nullptr));
  EXPECT_FALSE(native::wireDecodeToken(wire, 0, out, nullptr));
  // Wrong type byte.
  std::uint8_t bad[native::kTokenWireBytes];
  std::copy(wire, wire + native::kTokenWireBytes, bad);
  bad[0] = 0x7F;
  EXPECT_FALSE(
      native::wireDecodeToken(bad, native::kTokenWireBytes, out, nullptr));
  // Reserved flag bits set.
  std::copy(wire, wire + native::kTokenWireBytes, bad);
  bad[1] = 0xF0;
  EXPECT_FALSE(
      native::wireDecodeToken(bad, native::kTokenWireBytes, out, nullptr));
  // Array-message kind above the wire maximum (AllocMeta and beyond are
  // log-only and must never decode off a datagram).
  std::copy(wire, wire + native::kTokenWireBytes, bad);
  bad[1] = static_cast<std::uint8_t>((native::kMaxWireAmKind + 1) << 2);
  EXPECT_FALSE(
      native::wireDecodeToken(bad, native::kTokenWireBytes, out, nullptr));
  // ...while the highest legal kind decodes.
  std::copy(wire, wire + native::kTokenWireBytes, bad);
  bad[1] = static_cast<std::uint8_t>(native::kMaxWireAmKind << 2);
  EXPECT_TRUE(
      native::wireDecodeToken(bad, native::kTokenWireBytes, out, nullptr));
  EXPECT_EQ(out.amKind, native::kMaxWireAmKind);
  // Out-of-range value tag.
  std::copy(wire, wire + native::kTokenWireBytes, bad);
  bad[24] = 0xEE;
  EXPECT_FALSE(
      native::wireDecodeToken(bad, native::kTokenWireBytes, out, nullptr));
  // The untouched image still decodes.
  EXPECT_TRUE(
      native::wireDecodeToken(wire, native::kTokenWireBytes, out, nullptr));
  EXPECT_EQ(out.v.asInt(), 17);
}

// --- batch wire format ------------------------------------------------------

native::NToken wireFuzzToken(std::uint64_t i) {
  native::NToken tok;
  tok.toCont = (i & 1) != 0;
  tok.add = (i & 2) != 0;
  tok.spCode = static_cast<std::uint16_t>(0x1000 + i);
  tok.ctx = 0x0123456789ABCDEFULL ^ (i * 0x9E3779B97F4A7C15ULL);
  tok.slot = static_cast<std::uint16_t>(i * 7);
  tok.v = Value::intv(static_cast<std::int64_t>(i) - 3);
  tok.msgId = proto::Delivery::packLinkMsgId(3, 5, i + 1);
  tok.senderCtx = i * 31;
  tok.sendKey = i * 17;
  tok.wakeKey = i % 3 == 0 ? 0 : (1ULL << 62) | i;
  return tok;
}

TEST(TransportWire, BatchRoundTripsAtEverySize) {
  for (int count = 2; count <= native::kBatchMaxTokens; ++count) {
    std::vector<native::NToken> toks;
    for (int i = 0; i < count; ++i)
      toks.push_back(wireFuzzToken(static_cast<std::uint64_t>(i)));
    std::uint8_t dgram[native::kBatchMaxBytes];
    const std::size_t len =
        native::wireEncodeBatch(toks.data(), count, 3, dgram);
    ASSERT_EQ(len, native::kBatchHeaderBytes +
                       static_cast<std::size_t>(count) *
                           native::kTokenWireBytes);
    std::vector<native::NToken> back;
    std::uint16_t srcPe = 0;
    ASSERT_TRUE(native::wireDecodeBatch(dgram, len, back, &srcPe))
        << "count=" << count;
    EXPECT_EQ(srcPe, 3);
    ASSERT_EQ(back.size(), static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      EXPECT_EQ(back[static_cast<std::size_t>(i)].msgId,
                toks[static_cast<std::size_t>(i)].msgId);
      EXPECT_EQ(back[static_cast<std::size_t>(i)].ctx,
                toks[static_cast<std::size_t>(i)].ctx);
      EXPECT_EQ(back[static_cast<std::size_t>(i)].v.bits,
                toks[static_cast<std::size_t>(i)].v.bits);
    }
  }
}

TEST(TransportWire, SingleTokenBatchIsBitIdenticalToLegacyFormat) {
  const native::NToken tok = wireFuzzToken(9);
  std::uint8_t legacy[native::kTokenWireBytes];
  native::wireEncodeToken(tok, 3, legacy);
  std::uint8_t batched[native::kBatchMaxBytes];
  const std::size_t len = native::wireEncodeBatch(&tok, 1, 3, batched);
  ASSERT_EQ(len, native::kTokenWireBytes);
  EXPECT_EQ(0, std::memcmp(legacy, batched, len));
  // And the batch decoder accepts the legacy image as a 1-token batch.
  std::vector<native::NToken> back;
  std::uint16_t srcPe = 0;
  ASSERT_TRUE(native::wireDecodeBatch(legacy, len, back, &srcPe));
  EXPECT_EQ(srcPe, 3);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].msgId, tok.msgId);
}

TEST(TransportWire, BatchDecodeIsAllOrNothing) {
  std::vector<native::NToken> toks;
  for (int i = 0; i < 3; ++i)
    toks.push_back(wireFuzzToken(static_cast<std::uint64_t>(i)));
  std::uint8_t dgram[native::kBatchMaxBytes];
  const std::size_t len = native::wireEncodeBatch(toks.data(), 3, 4, dgram);

  std::vector<native::NToken> out;
  // Every truncation point rejects — including cuts that leave a whole
  // number of records (the header count must match exactly).
  for (std::size_t cut = 0; cut < len; ++cut) {
    EXPECT_FALSE(native::wireDecodeBatch(dgram, cut, out, nullptr))
        << "cut=" << cut;
    EXPECT_TRUE(out.empty()) << "cut=" << cut;
  }
  // Trailing junk rejects.
  std::uint8_t extended[native::kBatchMaxBytes + 8];
  std::memcpy(extended, dgram, len);
  extended[len] = 0xAB;
  EXPECT_FALSE(native::wireDecodeBatch(extended, len + 1, out, nullptr));
  EXPECT_TRUE(out.empty());
  // A corrupt record mid-batch rejects the whole datagram.
  std::uint8_t corrupt[native::kBatchMaxBytes];
  std::memcpy(corrupt, dgram, len);
  corrupt[native::kBatchHeaderBytes + native::kTokenWireBytes + 24] =
      0xEE;  // second record's value tag out of range
  EXPECT_FALSE(native::wireDecodeBatch(corrupt, len, out, nullptr));
  EXPECT_TRUE(out.empty());
  // A record whose srcPe disagrees with the batch header rejects.
  std::memcpy(corrupt, dgram, len);
  corrupt[native::kBatchHeaderBytes + 2] = 0x77;  // first record's srcPe
  EXPECT_FALSE(native::wireDecodeBatch(corrupt, len, out, nullptr));
  EXPECT_TRUE(out.empty());
  // The untouched image still decodes.
  EXPECT_TRUE(native::wireDecodeBatch(dgram, len, out, nullptr));
  EXPECT_EQ(out.size(), 3u);
}

TEST(TransportWire, BatchHeaderRejectsBadCounts) {
  std::vector<native::NToken> toks;
  for (int i = 0; i < 2; ++i)
    toks.push_back(wireFuzzToken(static_cast<std::uint64_t>(i)));
  std::uint8_t dgram[native::kBatchMaxBytes];
  const std::size_t len = native::wireEncodeBatch(toks.data(), 2, 4, dgram);
  std::vector<native::NToken> out;

  // count < 2 in explicit batch framing is malformed (a real single token
  // ships as the bare legacy record).
  std::uint8_t bad[native::kBatchMaxBytes];
  std::memcpy(bad, dgram, len);
  bad[3] = 0;
  bad[4] = 0;
  EXPECT_FALSE(native::wireDecodeBatch(bad, len, out, nullptr));
  bad[3] = 1;
  EXPECT_FALSE(native::wireDecodeBatch(bad, len, out, nullptr));
  // count beyond the MTU budget is malformed no matter the length.
  std::memcpy(bad, dgram, len);
  bad[3] = static_cast<std::uint8_t>(native::kBatchMaxTokens + 1);
  EXPECT_FALSE(native::wireDecodeBatch(bad, len, out, nullptr));
  // count disagreeing with the datagram length is malformed.
  std::memcpy(bad, dgram, len);
  bad[3] = 3;
  EXPECT_FALSE(native::wireDecodeBatch(bad, len, out, nullptr));
  EXPECT_TRUE(out.empty());
}

TEST(TransportKindParse, NamesRoundTrip) {
  native::TransportKind k = native::TransportKind::Udp;
  ASSERT_TRUE(native::parseTransportKind("inbox", k));
  EXPECT_EQ(k, native::TransportKind::Inbox);
  ASSERT_TRUE(native::parseTransportKind("udp", k));
  EXPECT_EQ(k, native::TransportKind::Udp);
  EXPECT_FALSE(native::parseTransportKind("tcp", k));
  EXPECT_FALSE(native::parseTransportKind("", k));
  EXPECT_STREQ(native::transportKindName(native::TransportKind::Inbox),
               "inbox");
  EXPECT_STREQ(native::transportKindName(native::TransportKind::Udp), "udp");
}

// --- bit-exactness vs the inbox transport -----------------------------------

TEST(UdpTransport, SimpleBitIdenticalToInboxAcrossPeCounts) {
  auto c = compileOk(workloads::simpleSource(16, 2));
  for (int workers : {1, 4, 8}) {
    native::NativeConfig inbox;
    inbox.numWorkers = workers;
    NativeRun ref = runNative(*c, inbox);
    ASSERT_TRUE(ref.stats.ok) << ref.stats.error;

    native::NativeConfig udp = inbox;
    udp.transport = native::TransportKind::Udp;
    NativeRun run = runNative(*c, udp);
    ASSERT_TRUE(run.stats.ok) << "workers=" << workers << ": "
                              << run.stats.error;
    std::string why;
    ASSERT_TRUE(sameOutputs(run.out, ref.out, &why))
        << "workers=" << workers << ": " << why;
    expectBalancedLedger(run, "workers=" + std::to_string(workers));
    // Real datagrams must actually have crossed sockets (multi-PE only).
    if (workers > 1) {
      EXPECT_GT(run.stats.counters.get("net.udp.tokensSent"), 0)
          << "workers=" << workers;
      EXPECT_EQ(run.stats.counters.get("net.udp.acksRecv"),
                run.stats.counters.get("net.udp.acksSent"))
          << "workers=" << workers;
      // Batching must be live: fewer datagrams than tokens.
      EXPECT_GT(run.stats.counters.get("net.udp.batch.datagrams"), 0)
          << "workers=" << workers;
      EXPECT_LT(run.stats.counters.get("net.udp.batch.datagrams"),
                run.stats.counters.get("net.udp.tokensSent"))
          << "workers=" << workers;
    } else {
      EXPECT_EQ(run.stats.counters.get("net.udp.tokensSent"), 0);
    }
    // The UDP counter set is registered unconditionally — a run that never
    // hits a send error still reports the zero (satellite: sendErrors must
    // be visible in `podsc --stats`).
    for (const char* key :
         {"net.udp.sendErrors", "net.udp.badDatagrams",
          "net.udp.batch.datagrams", "net.udp.batch.tokensPerDgram",
          "net.udp.batch.flushFull", "net.udp.batch.flushDeadline",
          "net.udp.batch.flushDrain", "net.udp.batch.flushRetx"}) {
      EXPECT_EQ(run.stats.counters.all().count(key), 1u)
          << "workers=" << workers << " missing " << key;
    }
  }
}

TEST(UdpTransport, RecursiveWorkloadBitIdenticalToInbox) {
  auto c = compileOk(kFibSource);
  for (int workers : {1, 4, 8}) {
    native::NativeConfig inbox;
    inbox.numWorkers = workers;
    NativeRun ref = runNative(*c, inbox);
    ASSERT_TRUE(ref.stats.ok) << ref.stats.error;

    native::NativeConfig udp = inbox;
    udp.transport = native::TransportKind::Udp;
    NativeRun run = runNative(*c, udp);
    ASSERT_TRUE(run.stats.ok) << "workers=" << workers << ": "
                              << run.stats.error;
    std::string why;
    ASSERT_TRUE(sameOutputs(run.out, ref.out, &why))
        << "workers=" << workers << ": " << why;
    expectBalancedLedger(run, "workers=" + std::to_string(workers));
  }
}

TEST(UdpTransport, RepeatRunsBitIdentical) {
  // Church-Rosser across the real-socket path: scheduling and datagram
  // interleavings differ run to run, outputs must not.
  auto c = compileOk(workloads::simpleSource(16, 2));
  native::NativeConfig udp;
  udp.numWorkers = 4;
  udp.transport = native::TransportKind::Udp;
  NativeRun first = runNative(*c, udp);
  ASSERT_TRUE(first.stats.ok) << first.stats.error;
  for (int rep = 0; rep < 5; ++rep) {
    NativeRun run = runNative(*c, udp);
    ASSERT_TRUE(run.stats.ok) << "rep=" << rep << ": " << run.stats.error;
    std::string why;
    ASSERT_TRUE(sameOutputs(run.out, first.out, &why))
        << "rep=" << rep << ": " << why;
  }
}

// --- per-link visibility ----------------------------------------------------

TEST(UdpTransport, PerLinkCountersSumToAggregates) {
  auto c = compileOk(workloads::simpleSource(16, 2));
  native::NativeConfig udp;
  udp.numWorkers = 4;
  udp.transport = native::TransportKind::Udp;
  NativeRun run = runNative(*c, udp);
  ASSERT_TRUE(run.stats.ok) << run.stats.error;

  std::int64_t linkTokens = 0, linkDatagrams = 0, linkBytes = 0, links = 0;
  for (const auto& [k, v] : run.stats.counters.all()) {
    if (k.rfind("net.link.", 0) != 0) continue;
    if (k.size() >= 7 && k.compare(k.size() - 7, 7, ".tokens") == 0) {
      linkTokens += v;
      ++links;
      EXPECT_GT(v, 0) << k;  // zero links are omitted entirely
    } else if (k.size() >= 10 &&
               k.compare(k.size() - 10, 10, ".datagrams") == 0) {
      linkDatagrams += v;
    } else if (k.size() >= 6 && k.compare(k.size() - 6, 6, ".bytes") == 0) {
      linkBytes += v;
    }
  }
  EXPECT_GT(links, 0);
  EXPECT_EQ(linkTokens, run.stats.counters.get("net.udp.tokensSent"));
  EXPECT_EQ(linkDatagrams, run.stats.counters.get("net.udp.datagramsSent"));
  EXPECT_EQ(linkBytes, run.stats.counters.get("net.udp.bytesSent"));
  // Batched wire: every datagram carries at least one 65-byte record (a
  // single-token flush has no batch header) and at most a full MTU batch.
  EXPECT_GE(linkBytes, linkDatagrams * static_cast<std::int64_t>(
                                           native::kTokenWireBytes));
  EXPECT_LE(linkBytes, linkDatagrams * static_cast<std::int64_t>(
                                           native::kBatchMaxBytes));
  // Token records dominate the byte stream: everything beyond the records
  // themselves is batch headers, at most kBatchHeaderBytes per datagram.
  const std::int64_t records = run.stats.counters.get("net.udp.batch.tokens");
  EXPECT_GE(records, linkTokens);  // >= : retransmitted tokens recount
  EXPECT_LE(linkBytes - records * static_cast<std::int64_t>(
                                      native::kTokenWireBytes),
            linkDatagrams * static_cast<std::int64_t>(
                                native::kBatchHeaderBytes));
}

// --- fault injection over real sockets --------------------------------------

TEST(UdpTransport, LossyFuzzBitIdenticalToFaultFree) {
  auto c = compileOk(workloads::simpleSource(16, 2));
  native::NativeConfig clean;
  clean.numWorkers = 4;
  NativeRun ref = runNative(*c, clean);
  ASSERT_TRUE(ref.stats.ok) << ref.stats.error;

  const int seeds = transportSeeds();
  std::int64_t injected = 0, dupDropped = 0;
  for (int workers : {1, 4, 8}) {
    for (int seed = 1; seed <= seeds; ++seed) {
      native::NativeConfig nc;
      nc.numWorkers = workers;
      nc.transport = native::TransportKind::Udp;
      nc.faults = lossyRates(static_cast<std::uint64_t>(seed));
      NativeRun run = runNative(*c, nc);
      ASSERT_TRUE(run.stats.ok) << "workers=" << workers << " seed=" << seed
                                << ": " << run.stats.error;
      std::string why;
      ASSERT_TRUE(sameOutputs(run.out, ref.out, &why))
          << "workers=" << workers << " seed=" << seed << ": " << why;
      expectBalancedLedger(run, "workers=" + std::to_string(workers) +
                                    " seed=" + std::to_string(seed));
      injected += run.stats.counters.get("fault.drops") +
                  run.stats.counters.get("fault.dups") +
                  run.stats.counters.get("fault.delays");
      dupDropped += run.stats.counters.get("net.retx.dupSuppressed");
      // Transport-level dedup (the link receive windows) must fire BEFORE
      // the inbox-ring deposit: if a duplicate ever reached the machine,
      // its msgId dedup would count here — and the token would have
      // double-released a single quiescence charge.
      EXPECT_EQ(run.stats.counters.get("native.dupSuppressed"), 0)
          << "workers=" << workers << " seed=" << seed;
    }
  }
  // The protocol must actually have been exercised across the sweep.
  EXPECT_GT(injected, 0);
  EXPECT_GT(dupDropped, 0);
}

TEST(UdpTransport, LossyFuzzRecursiveWorkload) {
  auto c = compileOk(kFibSource);
  native::NativeConfig clean;
  clean.numWorkers = 4;
  NativeRun ref = runNative(*c, clean);
  ASSERT_TRUE(ref.stats.ok) << ref.stats.error;

  const int seeds = transportSeeds();
  for (int seed = 1; seed <= seeds; ++seed) {
    native::NativeConfig nc;
    nc.numWorkers = 8;
    nc.transport = native::TransportKind::Udp;
    nc.faults = lossyRates(static_cast<std::uint64_t>(seed));
    NativeRun run = runNative(*c, nc);
    ASSERT_TRUE(run.stats.ok) << "seed=" << seed << ": " << run.stats.error;
    std::string why;
    ASSERT_TRUE(sameOutputs(run.out, ref.out, &why))
        << "seed=" << seed << ": " << why;
    expectBalancedLedger(run, "seed=" + std::to_string(seed));
  }
}

// --- kill + restart over real sockets ---------------------------------------

TEST(UdpTransport, KillRestartBitIdenticalToFaultFree) {
  auto c = compileOk(workloads::simpleSource(16, 2));
  native::NativeConfig clean;
  clean.numWorkers = 4;
  NativeRun ref = runNative(*c, clean);
  ASSERT_TRUE(ref.stats.ok) << ref.stats.error;

  const int seeds = transportSeeds();
  std::int64_t kills = 0;
  for (int seed = 1; seed <= seeds; ++seed) {
    native::NativeConfig nc;
    nc.numWorkers = 4;
    nc.transport = native::TransportKind::Udp;
    nc.faults.seed = static_cast<std::uint64_t>(seed);
    nc.faults.killPe = seed % 4;
    nc.faults.killTimeUs = 100.0 + (seed * 211) % 2500;
    nc.faults.killRestartUs = 100.0;
    NativeRun run = runNative(*c, nc);
    ASSERT_TRUE(run.stats.ok) << "seed=" << seed << ": " << run.stats.error;
    std::string why;
    ASSERT_TRUE(sameOutputs(run.out, ref.out, &why))
        << "seed=" << seed << ": " << why;
    expectBalancedLedger(run, "seed=" + std::to_string(seed));
    kills += run.stats.counters.get("fault.kills");
  }
  // Some kills must have landed mid-run for the sweep to mean anything.
  EXPECT_GT(kills, 0);
}

// --- wire array store over real sockets -------------------------------------
//
// Under --store=wire every non-local ARD/AWR/shape query is a typed array
// message on the same datagrams, sequence windows, and retransmit machinery
// as ordinary tokens — so the transport-transparency property extends to
// the array plane: outputs bit-identical to the local store on every
// workload, weight split, fault seed, and kill schedule.

void expectBalancedAmLedger(const NativeRun& run, const std::string& what) {
  EXPECT_EQ(run.stats.counters.get("net.am.readReqSent"),
            run.stats.counters.get("net.am.readReqServed"))
      << what;
  EXPECT_EQ(run.stats.counters.get("net.am.writeSent"),
            run.stats.counters.get("net.am.writeApplied"))
      << what;
  EXPECT_EQ(run.stats.counters.get("net.am.dimReqSent"),
            run.stats.counters.get("net.am.dimReqServed"))
      << what;
  EXPECT_EQ(run.stats.counters.get("net.am.parks"),
            run.stats.counters.get("net.am.parkFills"))
      << what;
  EXPECT_EQ(run.stats.counters.get("native.shmArrayOps"), 0) << what;
}

TEST(UdpWireStore, SimpleAndFibBitIdenticalToLocalStore) {
  for (const std::string& src :
       {workloads::simpleSource(16, 2), std::string(kFibSource)}) {
    auto c = compileOk(src);
    native::NativeConfig local;
    local.numWorkers = 4;
    NativeRun ref = runNative(*c, local);
    ASSERT_TRUE(ref.stats.ok) << ref.stats.error;

    native::NativeConfig wire = local;
    wire.transport = native::TransportKind::Udp;
    wire.store = native::StoreKind::Wire;
    NativeRun run = runNative(*c, wire);
    ASSERT_TRUE(run.stats.ok) << run.stats.error;
    std::string why;
    ASSERT_TRUE(sameOutputs(run.out, ref.out, &why)) << why;
    expectBalancedLedger(run, "wire");
    expectBalancedAmLedger(run, "wire");
  }
}

TEST(UdpWireStore, AdversarialOwnershipAcrossWeights) {
  auto c = compileOk(workloads::reversalSource(96));
  native::NativeConfig local;
  local.numWorkers = 4;
  NativeRun ref = runNative(*c, local);
  ASSERT_TRUE(ref.stats.ok) << ref.stats.error;

  for (const std::vector<std::int64_t>& weights :
       {std::vector<std::int64_t>{}, std::vector<std::int64_t>{1, 7, 1, 7}}) {
    native::NativeConfig nc;
    nc.numWorkers = 4;
    nc.pageElems = 8;
    nc.peWeights = weights;
    nc.transport = native::TransportKind::Udp;
    nc.store = native::StoreKind::Wire;
    NativeRun run = runNative(*c, nc);
    const std::string what = weights.empty() ? "uniform" : "skewed";
    ASSERT_TRUE(run.stats.ok) << what << ": " << run.stats.error;
    std::string why;
    ASSERT_TRUE(sameOutputs(run.out, ref.out, &why)) << what << ": " << why;
    expectBalancedLedger(run, what);
    expectBalancedAmLedger(run, what);
    // Array messages really crossed sockets, batched with ordinary tokens.
    EXPECT_GT(run.stats.counters.get("net.am.readReqSent"), 0) << what;
    EXPECT_GT(run.stats.counters.get("net.udp.batch.datagrams"), 0) << what;
    // Fault-free: the reliable-delivery layer never had to retransmit.
    EXPECT_EQ(run.stats.counters.get("net.retx.resent"), 0) << what;
  }
}

TEST(UdpWireStore, LossyFuzzBitIdenticalToFaultFree) {
  auto c = compileOk(workloads::reversalSource(64));
  native::NativeConfig clean;
  clean.numWorkers = 4;
  NativeRun ref = runNative(*c, clean);
  ASSERT_TRUE(ref.stats.ok) << ref.stats.error;

  const int seeds = transportSeeds();
  std::int64_t injected = 0;
  for (int seed = 1; seed <= seeds; ++seed) {
    native::NativeConfig nc;
    nc.numWorkers = 4;
    nc.pageElems = 8;
    nc.transport = native::TransportKind::Udp;
    nc.store = native::StoreKind::Wire;
    nc.faults = lossyRates(static_cast<std::uint64_t>(seed));
    NativeRun run = runNative(*c, nc);
    ASSERT_TRUE(run.stats.ok) << "seed=" << seed << ": " << run.stats.error;
    std::string why;
    ASSERT_TRUE(sameOutputs(run.out, ref.out, &why))
        << "seed=" << seed << ": " << why;
    expectBalancedLedger(run, "seed=" + std::to_string(seed));
    EXPECT_EQ(run.stats.counters.get("native.shmArrayOps"), 0)
        << "seed=" << seed;
    injected += run.stats.counters.get("fault.drops") +
                run.stats.counters.get("fault.dups") +
                run.stats.counters.get("fault.delays");
  }
  // Dropped/duplicated/delayed ARRAY messages must actually have happened —
  // the workload is read/write dominated, so the dice land on them.
  EXPECT_GT(injected, 0);
}

TEST(UdpWireStore, KillPlusLossyComposition) {
  auto c = compileOk(workloads::reversalSource(64));
  native::NativeConfig clean;
  clean.numWorkers = 4;
  NativeRun ref = runNative(*c, clean);
  ASSERT_TRUE(ref.stats.ok) << ref.stats.error;

  const int seeds = std::max(2, transportSeeds() / 2);
  for (int seed = 1; seed <= seeds; ++seed) {
    native::NativeConfig nc;
    nc.numWorkers = 4;
    nc.pageElems = 8;
    nc.transport = native::TransportKind::Udp;
    nc.store = native::StoreKind::Wire;
    nc.faults = lossyRates(static_cast<std::uint64_t>(seed));
    nc.faults.killPe = seed % 4;
    nc.faults.killTimeUs = 200.0 + (seed * 367) % 2000;
    nc.faults.killRestartUs = 100.0;
    NativeRun run = runNative(*c, nc);
    ASSERT_TRUE(run.stats.ok) << "seed=" << seed << ": " << run.stats.error;
    std::string why;
    ASSERT_TRUE(sameOutputs(run.out, ref.out, &why))
        << "seed=" << seed << ": " << why;
    expectBalancedLedger(run, "seed=" + std::to_string(seed));
  }
}

TEST(UdpTransport, KillPlusLossyComposition) {
  auto c = compileOk(kFibSource);
  native::NativeConfig clean;
  clean.numWorkers = 4;
  NativeRun ref = runNative(*c, clean);
  ASSERT_TRUE(ref.stats.ok) << ref.stats.error;

  const int seeds = std::max(2, transportSeeds() / 2);
  for (int seed = 1; seed <= seeds; ++seed) {
    native::NativeConfig nc;
    nc.numWorkers = 4;
    nc.transport = native::TransportKind::Udp;
    nc.faults = lossyRates(static_cast<std::uint64_t>(seed));
    nc.faults.killPe = seed % 4;
    nc.faults.killTimeUs = 200.0 + (seed * 367) % 2000;
    nc.faults.killRestartUs = 100.0;
    NativeRun run = runNative(*c, nc);
    ASSERT_TRUE(run.stats.ok) << "seed=" << seed << ": " << run.stats.error;
    std::string why;
    ASSERT_TRUE(sameOutputs(run.out, ref.out, &why))
        << "seed=" << seed << ": " << why;
    expectBalancedLedger(run, "seed=" + std::to_string(seed));
  }
}

}  // namespace
}  // namespace pods
