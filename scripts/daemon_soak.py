#!/usr/bin/env python3
"""Soak the serving daemon with real processes and concurrent clients.

    daemon_soak.py --build-dir build [--duration 60] [--clients 8]
                   [--repeat 3] [--garbage-clients 1] [--pes 4]
                   [--max-inflight 4] [--max-queue 16]

Starts one podsd on a Unix socket, then hammers it for --duration seconds:

  - N worker clients loop `podsd_client --by-hash --verify-seq` over a mix
    of programs — the two repo sample programs plus comment-mutated copies
    (different source hash, identical semantics), so the compiled-program
    cache sees both hits and misses the whole run. podsd_client itself
    enforces the correctness contract per job: bit-identical to the
    sequential engine, and bit-identical across repeats (cross-job bleed);
  - one garbage client loops malformed frames (corrupt tag, over-limit
    length, wrong-magic Hello, truncated Submit) and checks the daemon
    drops the connection but keeps serving.

Then SIGTERM, which must produce exit 0 + "clean shutdown", and the final
counter registry (--stats-json) must show: every client-observed job
counted, cache hits AND misses, every malformed frame counted into
net.ctl.badFrames, zero leaked frames in the aggregated native ledger, and
the artifact itself conforming to scripts/stats_schema.json.

Exit 0 only if every client exited 0 and every assertion held. Used by the
podsd_smoke ctest (seconds-scale) and the CI daemon-soak job (60 s, and
again at reduced scale against a TSan build via --build-dir build-tsan).
"""

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class Soak:
    def __init__(self, args):
        self.args = args
        self.deadline = time.monotonic() + args.duration
        self.lock = threading.Lock()
        self.failures = []
        self.jobs_done = 0
        self.garbage_rounds = 0

    def fail(self, msg):
        with self.lock:
            self.failures.append(msg)

    def worker(self, idx, podsd_client, socket_path, programs):
        # Stagger program mixes across workers so concurrent tenants run
        # DIFFERENT programs against each other, not just the same one.
        mix = programs[idx % len(programs):] + programs[:idx % len(programs)]
        mix = mix[:3]
        while time.monotonic() < self.deadline and not self.failures:
            cmd = [podsd_client, f"--socket={socket_path}",
                   f"--repeat={self.args.repeat}", "--by-hash",
                   "--verify-seq", "--quiet", *mix]
            proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                                  stderr=subprocess.STDOUT, text=True)
            if proc.returncode != 0:
                self.fail(f"worker {idx}: podsd_client exited "
                          f"{proc.returncode}:\n{proc.stdout}")
                return
            with self.lock:
                self.jobs_done += self.args.repeat * len(mix)

    def garbage(self, podsd_client, socket_path):
        while time.monotonic() < self.deadline and not self.failures:
            cmd = [podsd_client, f"--socket={socket_path}", "--garbage=4",
                   "--quiet"]
            proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                                  stderr=subprocess.STDOUT, text=True)
            if proc.returncode != 0:
                self.fail(f"garbage client: podsd_client exited "
                          f"{proc.returncode}:\n{proc.stdout}")
                return
            with self.lock:
                self.garbage_rounds += 1
            time.sleep(0.05)


def make_programs(tmpdir):
    """The repo sample programs plus comment-mutated copies: a mutated copy
    has a different FNV-1a source hash but identical semantics, so it is a
    guaranteed cache MISS whose results still verify."""
    out = []
    for name in ("heat.idl", "dotprod.idl"):
        src = os.path.join(ROOT, "programs", name)
        with open(src) as f:
            body = f.read()
        base = os.path.join(tmpdir, name)
        with open(base, "w") as f:
            f.write(body)
        out.append(base)
        for k in (1, 2):
            variant = os.path.join(tmpdir, f"{name[:-4]}_v{k}.idl")
            with open(variant, "w") as f:
                f.write(f"// soak cache-miss variant {k}\n" + body)
            out.append(variant)
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", required=True)
    ap.add_argument("--duration", type=float, default=60.0)
    ap.add_argument("--clients", type=int, default=8)
    ap.add_argument("--repeat", type=int, default=3)
    ap.add_argument("--garbage-clients", type=int, default=1)
    ap.add_argument("--pes", type=int, default=4)
    ap.add_argument("--max-inflight", type=int, default=4)
    ap.add_argument("--max-queue", type=int, default=16)
    args = ap.parse_args()

    podsd = os.path.join(args.build_dir, "podsd")
    podsd_client = os.path.join(args.build_dir, "podsd_client")
    for binary in (podsd, podsd_client):
        if not os.path.exists(binary):
            print(f"daemon_soak: missing binary {binary}", file=sys.stderr)
            return 1

    tmpdir = tempfile.mkdtemp(prefix="pods_soak_")
    socket_path = os.path.join(tmpdir, "podsd.sock")
    stats_path = os.path.join(tmpdir, "podsd_stats.json")
    try:
        programs = make_programs(tmpdir)
        daemon = subprocess.Popen(
            [podsd, f"--socket={socket_path}", f"--pes={args.pes}",
             f"--max-inflight={args.max_inflight}",
             f"--max-queue={args.max_queue}",
             f"--stats-json={stats_path}"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        # The readiness line is printed (and flushed) once the socket is
        # bound and the I/O thread is up.
        ready = daemon.stdout.readline()
        if "serving on" not in ready:
            daemon.kill()
            print(f"daemon_soak: podsd failed to start: {ready!r}",
                  file=sys.stderr)
            return 1
        print(f"daemon_soak: {ready.strip()}")

        soak = Soak(args)
        threads = [
            threading.Thread(target=soak.worker,
                             args=(i, podsd_client, socket_path, programs))
            for i in range(args.clients)
        ]
        threads += [
            threading.Thread(target=soak.garbage,
                             args=(podsd_client, socket_path))
            for _ in range(args.garbage_clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        daemon.send_signal(signal.SIGTERM)
        try:
            out, _ = daemon.communicate(timeout=120)
        except subprocess.TimeoutExpired:
            daemon.kill()
            print("daemon_soak: podsd did not shut down within 120 s",
                  file=sys.stderr)
            return 1

        failures = list(soak.failures)
        if daemon.returncode != 0:
            failures.append(f"podsd exited {daemon.returncode}:\n{out}")
        if "clean shutdown" not in out:
            failures.append(f"podsd did not report a clean shutdown:\n{out}")

        # ---- counter-registry assertions --------------------------------
        counters = {}
        if not os.path.exists(stats_path):
            failures.append("podsd wrote no --stats-json artifact")
        else:
            with open(stats_path) as f:
                counters = json.load(f).get("counters", {})

        def expect(cond, msg):
            if not cond:
                failures.append(msg)

        if counters:
            expect(counters.get("serve.jobs.ok", 0) >= soak.jobs_done,
                   f"daemon counted {counters.get('serve.jobs.ok', 0)} ok "
                   f"jobs, clients completed {soak.jobs_done}")
            expect(counters.get("serve.jobs.failed", 0) == 0,
                   f"{counters.get('serve.jobs.failed', 0)} jobs failed")
            expect(counters.get("serve.cache.hits", 0) > 0,
                   "no compiled-cache hits in a soak designed to hit")
            expect(counters.get("serve.cache.misses", 0) > 0,
                   "no compiled-cache misses despite mutated variants")
            expect(counters.get("net.ctl.badFrames", 0)
                   >= 4 * soak.garbage_rounds,
                   f"badFrames={counters.get('net.ctl.badFrames', 0)} < "
                   f"4 * {soak.garbage_rounds} garbage rounds")
            expect(counters.get("native.framesLive", 0) == 0,
                   f"{counters.get('native.framesLive', 0)} frames leaked "
                   "across the whole soak")
            expect(counters.get("native.framesCreated", 0)
                   == counters.get("native.framesRetired", 0),
                   "aggregated frame ledger is unbalanced: "
                   f"created={counters.get('native.framesCreated', 0)} "
                   f"retired={counters.get('native.framesRetired', 0)}")

            schema_check = subprocess.run(
                [sys.executable,
                 os.path.join(ROOT, "scripts", "check_stats_schema.py"),
                 stats_path],
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
            if schema_check.returncode != 0:
                failures.append("stats artifact violates the schema:\n"
                                + schema_check.stdout)

        hit = counters.get("serve.cache.hits", 0)
        miss = counters.get("serve.cache.misses", 0)
        total = hit + miss
        print(f"daemon_soak: {soak.jobs_done} client jobs, "
              f"{soak.garbage_rounds} garbage rounds, "
              f"cache hit rate {hit}/{total} "
              f"({100.0 * hit / total if total else 0:.0f}%), "
              f"busy rejects {counters.get('serve.busyRejects', 0)}, "
              f"bad frames {counters.get('net.ctl.badFrames', 0)}")
        if failures:
            for f in failures:
                print(f"daemon_soak: FAIL: {f}", file=sys.stderr)
            return 1
        print("daemon_soak: PASS")
        return 0
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
