#!/usr/bin/env bash
# Reproduce every table and figure of the paper's evaluation (plus the
# ablations and the Livermore extension), capturing outputs next to the
# sources. Usage:
#
#   ./scripts/reproduce.sh            # full problem sizes (~30 s)
#   PODS_BENCH_SMALL=1 ./scripts/reproduce.sh   # trimmed quick pass
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

echo "== tests =="
ctest --test-dir build 2>&1 | tee test_output.txt

echo "== benches (tables & figures) =="
for b in build/bench/*; do
  "$b"
done 2>&1 | tee bench_output.txt

echo
echo "Wrote test_output.txt and bench_output.txt."
echo "Compare against EXPERIMENTS.md for the paper-vs-measured discussion."
