#!/usr/bin/env python3
"""Validate --stats-json artifacts against scripts/stats_schema.json.

    check_stats_schema.py [--schema scripts/stats_schema.json] FILE...
    check_stats_schema.py --bench-report BENCH_PR.json

The counter registry is a cross-tool contract: podsc, podsd, podsd_client
and the bench-gate archives all emit the same JSON shape, and dashboards
plus the soak scripts key on exact counter names. This gate pins:

  - the top-level shape (engine / pes / time_ms / counters, optional
    "derived" with a whitelisted key set);
  - every counter name lives in a registered namespace (or is a registered
    bare name), with integer values — a per-job "job.<id>." prefix must
    itself wrap a registered namespace;
  - per-engine required counters are present (a rename fails loudly).

--bench-report validates each entry of a bench_gate report's "_stats"
archive instead of a standalone file.
"""

import argparse
import json
import os
import re
import sys

JOB_PREFIX = re.compile(r"^job\.\d+\.(.+)$")


def load_schema(path):
    with open(path) as f:
        return json.load(f)


def check_counter_name(name, schema):
    """Returns None if the name is registered, else an error string."""
    if name in schema["bare_counters"]:
        return None
    # A per-job namespace wraps another registered namespace:
    # job.7.native.framesCreated is fine, job.7.bogus is not.
    m = JOB_PREFIX.match(name)
    if m:
        return check_counter_name(m.group(1), schema)
    for ns in schema["counter_namespaces"]:
        if name.startswith(ns) and len(name) > len(ns):
            return None
    return f"counter '{name}' is not in a registered namespace"


def check_stats(doc, schema, where):
    errors = []

    def err(msg):
        errors.append(f"{where}: {msg}")

    if not isinstance(doc, dict):
        err("top level is not an object")
        return errors
    for key in schema["required_keys"]:
        if key not in doc:
            err(f"missing required key '{key}'")
    allowed = set(schema["required_keys"]) | set(schema["optional_keys"])
    for key in doc:
        if key not in allowed:
            err(f"unexpected top-level key '{key}'")
    if errors:
        return errors

    engine = doc["engine"]
    if engine not in schema["engines"]:
        err(f"unknown engine '{engine}'")
    if not isinstance(doc["pes"], int) or doc["pes"] < 1:
        err(f"pes must be a positive integer, got {doc['pes']!r}")
    if not isinstance(doc["time_ms"], (int, float)) or doc["time_ms"] < 0:
        err(f"time_ms must be a non-negative number, got {doc['time_ms']!r}")

    derived = doc.get("derived", {})
    if not isinstance(derived, dict):
        err("derived is not an object")
    else:
        for key, value in derived.items():
            if key not in schema["derived_keys"]:
                err(f"unregistered derived key '{key}'")
            if not isinstance(value, (int, float)):
                err(f"derived '{key}' is not a number: {value!r}")

    counters = doc["counters"]
    if not isinstance(counters, dict):
        err("counters is not an object")
        return errors
    for name, value in counters.items():
        bad = check_counter_name(name, schema)
        if bad:
            err(bad)
        if not isinstance(value, int) or isinstance(value, bool):
            err(f"counter '{name}' is not an integer: {value!r}")
    for name in schema["required_counters"].get(engine, []):
        if name not in counters:
            err(f"engine '{engine}' is missing required counter '{name}'")
    return errors


def main():
    here = os.path.dirname(os.path.abspath(__file__))
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--schema", default=os.path.join(here, "stats_schema.json"))
    ap.add_argument("--bench-report", action="store_true",
                    help="treat each FILE as a bench_gate report and "
                         "validate every entry of its _stats archive")
    ap.add_argument("files", nargs="+")
    args = ap.parse_args()

    schema = load_schema(args.schema)
    errors = []
    checked = 0
    for path in args.files:
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            errors.append(f"{path}: cannot read as JSON: {e}")
            continue
        if args.bench_report:
            stats = doc.get("_stats", {})
            if not stats:
                errors.append(f"{path}: bench report has no _stats archive")
                continue
            for name, entry in sorted(stats.items()):
                errors.extend(check_stats(entry, schema, f"{path}:{name}"))
                checked += 1
        else:
            errors.extend(check_stats(doc, schema, path))
            checked += 1

    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print(f"check_stats_schema: FAIL — {len(errors)} error(s) over "
              f"{checked} document(s)", file=sys.stderr)
        return 1
    print(f"check_stats_schema: {checked} document(s) conform")
    return 0


if __name__ == "__main__":
    sys.exit(main())
