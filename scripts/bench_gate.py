#!/usr/bin/env python3
"""Benchmark regression gate.

Measures whole-binary wall-clock time for a fixed set of benchmark binaries
at a small fixed configuration (PODS_BENCH_SMALL=1) and gates pull requests
against a committed baseline.

    bench_gate.py measure --build-dir build --out BENCH_PR.json [--reps 5]
    bench_gate.py compare BENCH_BASELINE.json BENCH_PR.json [--tolerance 0.20]

Schema of the JSON files: {bench name: median wall-us over N reps}, plus a
"_meta" object (host, date, reps) that the comparison ignores.

Whole-binary wall time is deliberately coarse: it absorbs per-iteration
noise that google-benchmark's own counters would surface, which is what a
cross-machine gate with a generous tolerance wants. The committed baseline
should be refreshed (re-run `measure` and commit the output as
BENCH_BASELINE.json) whenever the benchmark set changes or a deliberate
perf-affecting change lands.
"""

import argparse
import json
import os
import platform
import statistics
import subprocess
import sys
import tempfile
import time
from datetime import datetime, timezone

# Bench name -> path relative to the build dir. Small, fixed configs: the
# point is trajectory, not precision.
BENCHES = {
    "fig10_speedup": "bench/fig10_speedup",
    "micro_engine": "bench/micro_engine",
    "micro_serve": "bench/micro_serve",
    "micro_eventq": "bench/micro_eventq",
    "micro_arrays": "bench/micro_arrays",
}

# Counter-registry snapshots (podsc --stats-json) archived alongside the
# wall-time medians: (engine, program, pes, extra podsc flags). Keys are
# "_"-prefixed in the report so compare() ignores them — they are forensic
# context for a regression, not a gated quantity.
STATS_RUNS = {
    "heat_pods_4pe": ("pods", "programs/heat.idl", 4, ()),
    "heat_native_4pe": ("native", "programs/heat.idl", 4, ()),
    "heat_native_udp_4pe": ("native", "programs/heat.idl", 4,
                            ("--transport=udp",)),
    "heat_native_udp_wire_4pe": ("native", "programs/heat.idl", 4,
                                 ("--transport=udp", "--store=wire")),
}

# Counters whose baseline-vs-candidate drift compare() prints (never gates):
# the UDP hot-path quantities a wall-time regression usually traces back to.
STATS_DELTA_COUNTERS = (
    "net.udp.tokensSent",
    "net.udp.datagramsSent",
    "net.udp.acksSent",
    "net.udp.batch.flushFull",
    "net.udp.batch.flushDeadline",
    "net.retx.resent",
    "native.inboxOverflow",
    "net.am.readReqSent",
    "net.am.parks",
    "native.shmArrayOps",
)


def archive_stats(build_dir):
    """Run podsc --stats-json for each STATS_RUNS entry; returns name->dict."""
    podsc = os.path.join(build_dir, "podsc")
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    out = {}
    for name, (engine, program, pes, extra) in STATS_RUNS.items():
        src = os.path.join(root, program)
        if not (os.path.exists(podsc) and os.path.exists(src)):
            print(f"bench_gate: skipping stats run {name} (missing binary "
                  "or program)", file=sys.stderr)
            continue
        with tempfile.NamedTemporaryFile(suffix=".json") as tmp:
            proc = subprocess.run(
                [podsc, f"--engine={engine}", "--pes", str(pes),
                 f"--stats-json={tmp.name}", *extra, src],
                stdout=subprocess.DEVNULL, stderr=subprocess.STDOUT)
            if proc.returncode != 0:
                print(f"bench_gate: stats run {name} exited "
                      f"{proc.returncode}", file=sys.stderr)
                continue
            with open(tmp.name) as f:
                out[name] = json.load(f)
        print(f"  archived counter registry for {name}")
    return out


def measure(args):
    env = dict(os.environ, PODS_BENCH_SMALL="1")
    paths = {}
    for name, rel in BENCHES.items():
        path = os.path.join(args.build_dir, rel)
        if not os.path.exists(path):
            print(f"bench_gate: missing benchmark binary {path}", file=sys.stderr)
            return 1
        paths[name] = path
    # Reps are interleaved round-robin across the benches (A B A B ...)
    # rather than blocked per bench, so slow drift on the host — thermal
    # state, a background job ramping up — biases every bench's sample set
    # the same way instead of landing entirely on whichever bench ran last.
    samples = {name: [] for name in BENCHES}
    for rep in range(args.reps):
        for name in BENCHES:
            t0 = time.monotonic()
            proc = subprocess.run(
                [paths[name]], env=env, stdout=subprocess.DEVNULL,
                stderr=subprocess.STDOUT)
            elapsed_us = (time.monotonic() - t0) * 1e6
            if proc.returncode != 0:
                print(f"bench_gate: {name} rep {rep} exited "
                      f"{proc.returncode}", file=sys.stderr)
                return 1
            samples[name].append(elapsed_us)
            print(f"  {name} rep {rep + 1}/{args.reps}: "
                  f"{elapsed_us / 1e3:.1f} ms")
    results = {}
    for name in BENCHES:
        results[name] = round(statistics.median(samples[name]), 1)
        print(f"{name}: median {results[name] / 1e3:.1f} ms "
              f"over {args.reps} reps")
    results["_meta"] = {
        "host": platform.node(),
        "platform": platform.platform(),
        "date": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "reps": args.reps,
        "env": {"PODS_BENCH_SMALL": "1"},
    }
    results["_stats"] = archive_stats(args.build_dir)
    with open(args.out, "w") as f:
        json.dump(results, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out}")
    return 0


def load(path):
    with open(path) as f:
        data = json.load(f)
    return {k: v for k, v in data.items() if not k.startswith("_")}


def load_stats(path):
    with open(path) as f:
        return json.load(f).get("_stats", {})


def tokens_per_datagram(counters):
    """Mean batched-token occupancy, from the raw sums (the archived
    net.udp.batch.tokensPerDgram counter is integer-truncated)."""
    dgrams = counters.get("net.udp.batch.datagrams", 0)
    if dgrams <= 0:
        return None
    return counters.get("net.udp.batch.tokens", 0) / dgrams


def print_stats_deltas(baseline_path, candidate_path):
    """Forensic (never gated) drift report over the archived counter
    registries: wall time, batching occupancy, and the hot-path counters in
    STATS_DELTA_COUNTERS. Runs present on only one side are skipped."""
    base, pr = load_stats(baseline_path), load_stats(candidate_path)
    common = sorted(set(base) & set(pr))
    if not common:
        return
    print("\ncounter-registry drift (forensic, not gated):")
    for name in common:
        b, p = base[name], pr[name]
        line = f"  {name}: {b.get('time_ms', 0):.1f} -> " \
               f"{p.get('time_ms', 0):.1f} ms"
        btpd = tokens_per_datagram(b.get("counters", {}))
        ptpd = tokens_per_datagram(p.get("counters", {}))
        if btpd is not None or ptpd is not None:
            line += (f", tokens/datagram "
                     f"{btpd if btpd is not None else 0:.1f} -> "
                     f"{ptpd if ptpd is not None else 0:.1f}")
        print(line)
        bc, pc = b.get("counters", {}), p.get("counters", {})
        for key in STATS_DELTA_COUNTERS:
            bv, pv = bc.get(key), pc.get(key)
            if bv is None and pv is None:
                continue
            if (bv or 0) != (pv or 0):
                print(f"    {key}: {bv if bv is not None else '-'} -> "
                      f"{pv if pv is not None else '-'}")


def compare(args):
    base = load(args.baseline)
    pr = load(args.candidate)
    failed = []
    for name in sorted(base):
        if name not in pr:
            print(f"MISSING  {name}: in baseline but not measured")
            failed.append(name)
            continue
        b, p = base[name], pr[name]
        delta = (p - b) / b if b > 0 else 0.0
        status = "OK"
        if delta > args.tolerance:
            status = "REGRESSED"
            failed.append(name)
        print(f"{status:9s}{name}: baseline {b / 1e3:.1f} ms, "
              f"candidate {p / 1e3:.1f} ms ({delta:+.1%}, "
              f"tolerance +{args.tolerance:.0%})")
    for name in sorted(set(pr) - set(base)):
        print(f"NEW      {name}: {pr[name] / 1e3:.1f} ms "
              "(not in baseline; not gated)")
    print_stats_deltas(args.baseline, args.candidate)
    if failed:
        print(f"bench_gate: FAIL — {', '.join(failed)}", file=sys.stderr)
        return 1
    print("bench_gate: all benchmarks within tolerance")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    sub = ap.add_subparsers(dest="cmd", required=True)

    m = sub.add_parser("measure", help="run the benches, write a JSON report")
    m.add_argument("--build-dir", default="build")
    m.add_argument("--out", default="BENCH_PR.json")
    m.add_argument("--reps", type=int, default=5)
    m.set_defaults(func=measure)

    c = sub.add_parser("compare", help="gate a candidate against a baseline")
    c.add_argument("baseline")
    c.add_argument("candidate")
    c.add_argument("--tolerance", type=float, default=0.20,
                   help="max allowed median regression (fraction, def 0.20)")
    c.set_defaults(func=compare)

    args = ap.parse_args()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
