// Loop-carried dependency (LCD) analysis (paper section 4.2.4).
//
// The distribution algorithm distributes the outermost loop level that has no
// LCD. Thanks to the declarative source language the only possible dependency
// is a *flow* dependency through an I-structure (or an explicitly carried
// variable), and there is no aliasing through pointers — which is exactly why
// the paper calls LCD detection "considerably simplified". It also notes the
// analysis is only a heuristic: missing a dependency cannot break program
// determinacy (single assignment guarantees the result), it only affects the
// quality of the distribution choice.
//
// A for-loop with index i carries a dependency iff some (write, read) pair
// on the same I-structure inside its subtree *may* communicate across
// iterations. A pair provably does not when, at some dimension d, either
//  (a) both subscripts are i + c with the *same* c — the pair always sits in
//      the same iteration's slice, so any dependence is intra-iteration; or
//  (b) both subscripts are `base + c` for the same loop-invariant base (or
//      plain constants) with *different* offsets — the accesses can never
//      touch the same element at all (e.g. writing row `r` while reading
//      row `r-1`, with r an outer-loop index).
// Carried variables and while-loops are LCDs by definition. Calls are
// summarized interprocedurally (which array parameters a function may read
// or write) and contribute accesses of unknown shape.
#pragma once

#include <unordered_map>
#include <vector>

#include "ir/graph.hpp"

namespace pods::partition {

/// Which array parameters a function may read / write (directly or through
/// further calls). Computed to a fixpoint so recursion is handled.
struct FnSummary {
  std::vector<bool> paramRead;
  std::vector<bool> paramWrite;
};

std::vector<FnSummary> summarizeFunctions(const ir::Program& prog);

/// Per-function helper tables used by LCD analysis and the planner.
class FnTables {
 public:
  explicit FnTables(const ir::Function& fn);

  /// The node that defines a value, or nullptr (params, index vars, carried
  /// values, call results, merge values).
  const ir::Node* defNode(ir::ValId v) const;

  /// The block in whose item lists / header the value is defined; nullptr for
  /// parameters (defined at function entry).
  const ir::Block* defBlock(ir::ValId v) const;

  /// True if `v` is invariant with respect to loop `loop`: its definition is
  /// outside the loop's whole subtree.
  bool isInvariant(ir::ValId v, const ir::Block& loop) const;

  /// Resolves Mov chains (array aliases introduced by plain copies).
  ir::ValId resolve(ir::ValId v) const;

 private:
  void indexBlock(const ir::Block& b);
  void indexItems(const std::vector<ir::Item>& items, const ir::Block& owner);

  std::unordered_map<ir::ValId, const ir::Node*> defNode_;
  std::unordered_map<ir::ValId, const ir::Block*> defBlock_;
  std::unordered_map<const ir::Block*, const ir::Block*> parent_;
};

/// Subscript shape relative to a loop index.
struct AffineForm {
  enum class Kind { Affine, NotAffine } kind = Kind::NotAffine;
  std::int64_t offset = 0;  // subscript == index + offset when Affine
};

/// Classifies subscript `v` relative to `indexVal`, following constant-add/
/// subtract chains: i, i+c, c+i, i-c are Affine; anything else is NotAffine.
AffineForm affineIn(ir::ValId v, ir::ValId indexVal, const FnTables& tables);

/// Subscript shape as `base + c`: a constant, a variable plus a constant
/// offset, or unknown. Used for pairwise disjointness proofs (two accesses
/// through the same loop-invariant base with different offsets can never
/// touch the same element).
struct BaseForm {
  enum class Kind { Const, Var, Unknown } kind = Kind::Unknown;
  ir::ValId base = ir::kNoVal;  // Var
  std::int64_t offset = 0;      // Var: base + offset; Const: the value
};

BaseForm baseOf(ir::ValId v, const FnTables& tables);

/// One I-structure access found inside a loop subtree.
struct ArrayAccess {
  ir::ValId array = ir::kNoVal;  // resolved through Mov chains
  bool isWrite = false;
  int rank = 1;
  ir::ValId sub[2] = {ir::kNoVal, ir::kNoVal};
  bool shapeKnown = true;  // false for accesses hidden inside calls
};

/// Collects every array access in the loop subtree (body + cond + final,
/// nested loops included; calls expand to unknown-shape accesses using the
/// interprocedural summaries).
std::vector<ArrayAccess> collectAccesses(const ir::Block& loop,
                                         const FnTables& tables,
                                         const std::vector<FnSummary>& summaries);

/// The LCD test described above.
bool hasLoopCarriedDependency(const ir::Block& loop, const FnTables& tables,
                              const std::vector<FnSummary>& summaries);

}  // namespace pods::partition
