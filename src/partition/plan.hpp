// The PODS Partitioner's distribution plan (paper section 4.2).
//
// For every loop nest, the plan marks at most one level as *replicated*: its
// parent's L operator becomes a distributing LD that spawns a copy of the
// loop's SP on every PE, and a Range Filter clamps each copy's index range
// to that PE's area of responsibility (Figure 5). The level chosen is the
// outermost one without a loop-carried dependency (the for-loop distribution
// algorithm of section 4.2.4); everything below runs locally with its full
// index range, relying on the first-element-of-row ownership rule; everything
// above stays centralized.
//
// Functions reachable from a replicated loop body never replicate their own
// loops (each PE's copy would re-distribute, duplicating every iteration and
// violating single assignment); the planner propagates that context over the
// call graph.
#pragma once

#include <string>
#include <unordered_map>

#include "ir/graph.hpp"
#include "partition/lcd.hpp"

namespace pods::partition {

/// How a replicated loop's Range Filter computes this PE's index subrange.
enum class RfMode : std::uint8_t {
  OwnedRows,       // loop index selects dim-0 of the governing array:
                   // clamp to the rows owned under first-element-of-row rule
  OwnedColsOfRow,  // loop index selects dim-1 for a fixed (invariant) row:
                   // clamp to the columns of that row held locally (Fig. 5)
  BlockRange,      // fallback: even block partition of the iteration range
                   // (the "simple global algorithm")
};

struct LoopPlan {
  bool replicated = false;
  RfMode mode = RfMode::BlockRange;
  ir::ValId governingArray = ir::kNoVal;  // array whose header drives the RF
  int filteredDim = 0;
  std::int32_t offset = 0;                // write subscript == index + offset
  ir::ValId rowIndexVal = ir::kNoVal;     // OwnedColsOfRow: the fixed row
};

// The plan is independent of the PE count: Range-Filter bounds are computed
// at run time from array headers, so a program compiled once with
// distribution enabled runs correctly on any machine size (including 1 PE).
struct PlanOptions {
  bool distribute = true;  // false: everything local (testing / sequential)
  /// Ablation: ignore array-ownership Range Filters and always fall back to
  /// even block partitioning of the index range (Data-Distributed Execution
  /// off). Computation then no longer follows the data distribution.
  bool forceBlockRange = false;
};

struct Plan {
  PlanOptions options;
  std::unordered_map<const ir::Block*, LoopPlan> loops;
  bool distributeArrays = false;
  int numReplicated = 0;

  const LoopPlan* find(const ir::Block* b) const {
    auto it = loops.find(b);
    return it == loops.end() ? nullptr : &it->second;
  }

  /// Human-readable plan listing (for tests and the partitioning demo).
  std::string describe(const ir::Program& prog) const;
};

/// Runs LCD analysis and the for-loop distribution algorithm over the whole
/// program.
Plan makePlan(const ir::Program& prog, const PlanOptions& options);

}  // namespace pods::partition
