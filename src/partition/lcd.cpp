#include "partition/lcd.hpp"

#include <unordered_set>

#include "ir/defuse.hpp"

#include "support/check.hpp"

namespace pods::partition {

using ir::Block;
using ir::Item;
using ir::ItemKind;
using ir::kNoVal;
using ir::Node;
using ir::NodeOp;
using ir::ValId;

// ---------------------------------------------------------------------------
// Interprocedural read/write summaries
// ---------------------------------------------------------------------------

namespace {

/// One pass over a function body, ORing access bits into `sum` using the
/// current summaries for callees. Returns true if anything changed.
bool scanFunction(const ir::Function& fn, const std::vector<FnSummary>& all,
                  FnSummary& sum) {
  // Map from ValId to parameter position (following Mov chains is overkill
  // here; parameters used as arrays are referenced directly).
  std::unordered_map<ValId, std::size_t> paramOf;
  for (std::size_t i = 0; i < fn.params.size(); ++i) paramOf[fn.params[i]] = i;

  bool changed = false;
  auto mark = [&](ValId arr, bool write) {
    auto it = paramOf.find(arr);
    if (it == paramOf.end()) return;
    auto& vec = write ? sum.paramWrite : sum.paramRead;
    if (!vec[it->second]) {
      vec[it->second] = true;
      changed = true;
    }
  };

  ir::forEachItem(fn.body, [&](const Item& item) {
    if (item.kind == ItemKind::Node) {
      const Node& n = item.node;
      if (n.op == NodeOp::ARead) mark(n.in[0], false);
      if (n.op == NodeOp::AWrite) mark(n.in[0], true);
    } else if (item.kind == ItemKind::Call) {
      const FnSummary& callee = all[item.call->fnIndex];
      for (std::size_t i = 0; i < item.call->args.size(); ++i) {
        if (i < callee.paramRead.size() && callee.paramRead[i])
          mark(item.call->args[i], false);
        if (i < callee.paramWrite.size() && callee.paramWrite[i])
          mark(item.call->args[i], true);
      }
    }
  });
  return changed;
}

}  // namespace

std::vector<FnSummary> summarizeFunctions(const ir::Program& prog) {
  std::vector<FnSummary> out(prog.fns.size());
  for (std::size_t i = 0; i < prog.fns.size(); ++i) {
    out[i].paramRead.assign(prog.fns[i].params.size(), false);
    out[i].paramWrite.assign(prog.fns[i].params.size(), false);
  }
  // Fixpoint iteration (monotone; bounded by total param count).
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t i = 0; i < prog.fns.size(); ++i) {
      if (scanFunction(prog.fns[i], out, out[i])) changed = true;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// FnTables
// ---------------------------------------------------------------------------

FnTables::FnTables(const ir::Function& fn) {
  parent_[&fn.body] = nullptr;
  indexBlock(fn.body);
}

void FnTables::indexBlock(const Block& b) {
  if (b.indexVal != kNoVal) defBlock_[b.indexVal] = &b;
  for (const ir::Carried& c : b.carried) {
    defBlock_[c.cur] = &b;
    defBlock_[c.shadow] = &b;
  }
  indexItems(b.condItems, b);
  indexItems(b.body, b);
  indexItems(b.finalItems, b);
}

void FnTables::indexItems(const std::vector<Item>& items, const Block& owner) {
  for (const Item& it : items) {
    switch (it.kind) {
      case ItemKind::Node:
        if (it.node.dst != kNoVal) {
          defNode_[it.node.dst] = &it.node;
          defBlock_[it.node.dst] = &owner;
        }
        break;
      case ItemKind::If:
        // Merge values: defined in the owner block but with no single node.
        {
          std::vector<ValId> defs;
          ir::itemDefs(it, defs);
          for (ValId d : defs) defBlock_[d] = &owner;
        }
        indexItems(it.ifi->thenItems, owner);
        indexItems(it.ifi->elseItems, owner);
        break;
      case ItemKind::Call:
        if (it.call->dst != kNoVal) defBlock_[it.call->dst] = &owner;
        break;
      case ItemKind::Loop:
        parent_[it.loop.get()] = &owner;
        indexBlock(*it.loop);
        // The yield value is produced inside the nested block but is visible
        // to the owner; keep its defBlock as the nested block so invariance
        // checks see it as *outside* any loop that doesn't contain it.
        break;
      case ItemKind::Next:
        break;
    }
  }
}

// Note on If-items: indexItems records merge defs against the owner *before*
// descending, then the arm nodes overwrite defBlock for their own dsts with
// the same owner block — consistent either way.

const Node* FnTables::defNode(ValId v) const {
  auto it = defNode_.find(v);
  return it == defNode_.end() ? nullptr : it->second;
}

const Block* FnTables::defBlock(ValId v) const {
  auto it = defBlock_.find(v);
  return it == defBlock_.end() ? nullptr : it->second;
}

bool FnTables::isInvariant(ValId v, const Block& loop) const {
  const Block* b = defBlock(v);
  // Defined at function entry (parameter): invariant w.r.t. any loop.
  if (b == nullptr) return true;
  // Walk up from the defining block; if we meet `loop`, the definition is
  // inside the loop's subtree.
  for (const Block* cur = b; cur != nullptr;) {
    if (cur == &loop) return false;
    auto it = parent_.find(cur);
    cur = it == parent_.end() ? nullptr : it->second;
  }
  return true;
}

ValId FnTables::resolve(ValId v) const {
  for (int guard = 0; guard < 64; ++guard) {
    const Node* n = defNode(v);
    if (n && n->op == NodeOp::Mov) {
      v = n->in[0];
      continue;
    }
    return v;
  }
  return v;
}

// ---------------------------------------------------------------------------
// Affine subscript analysis
// ---------------------------------------------------------------------------

AffineForm affineIn(ValId v, ValId indexVal, const FnTables& tables) {
  std::int64_t offset = 0;
  for (int guard = 0; guard < 64; ++guard) {
    if (v == indexVal) return {AffineForm::Kind::Affine, offset};
    const Node* n = tables.defNode(v);
    if (!n) return {};
    switch (n->op) {
      case NodeOp::Mov:
        v = n->in[0];
        continue;
      case NodeOp::Add: {
        const Node* lhs = tables.defNode(n->in[0]);
        const Node* rhs = tables.defNode(n->in[1]);
        if (rhs && rhs->op == NodeOp::Const && rhs->imm.isInt()) {
          offset += rhs->imm.asInt();
          v = n->in[0];
          continue;
        }
        if (lhs && lhs->op == NodeOp::Const && lhs->imm.isInt()) {
          offset += lhs->imm.asInt();
          v = n->in[1];
          continue;
        }
        return {};
      }
      case NodeOp::Sub: {
        const Node* rhs = tables.defNode(n->in[1]);
        if (rhs && rhs->op == NodeOp::Const && rhs->imm.isInt()) {
          offset -= rhs->imm.asInt();
          v = n->in[0];
          continue;
        }
        return {};
      }
      default:
        return {};
    }
  }
  return {};
}

// ---------------------------------------------------------------------------
// Access collection and the LCD test
// ---------------------------------------------------------------------------

std::vector<ArrayAccess> collectAccesses(
    const Block& loop, const FnTables& tables,
    const std::vector<FnSummary>& summaries) {
  std::vector<ArrayAccess> out;
  ir::forEachItem(loop, [&](const Item& item) {
    if (item.kind == ItemKind::Node) {
      const Node& n = item.node;
      if (n.op == NodeOp::ARead || n.op == NodeOp::AWrite) {
        ArrayAccess a;
        a.array = tables.resolve(n.in[0]);
        a.isWrite = n.op == NodeOp::AWrite;
        // ARead: arr, i0 (, i1). AWrite: arr, i0 (, i1), value.
        int subCount = n.nin - 1 - (a.isWrite ? 1 : 0);
        a.rank = subCount;
        for (int i = 0; i < subCount && i < 2; ++i) a.sub[i] = n.in[1 + i];
        out.push_back(a);
      }
    } else if (item.kind == ItemKind::Call) {
      const FnSummary& callee = summaries[item.call->fnIndex];
      for (std::size_t i = 0; i < item.call->args.size(); ++i) {
        bool reads = i < callee.paramRead.size() && callee.paramRead[i];
        bool writes = i < callee.paramWrite.size() && callee.paramWrite[i];
        if (reads || writes) {
          ArrayAccess a;
          a.array = tables.resolve(item.call->args[i]);
          a.shapeKnown = false;
          if (reads) {
            a.isWrite = false;
            out.push_back(a);
          }
          if (writes) {
            a.isWrite = true;
            out.push_back(a);
          }
        }
      }
    }
  });
  return out;
}

BaseForm baseOf(ValId v, const FnTables& tables) {
  std::int64_t offset = 0;
  for (int guard = 0; guard < 64; ++guard) {
    const Node* n = tables.defNode(v);
    if (!n) return {BaseForm::Kind::Var, v, offset};  // index/param/merge/...
    switch (n->op) {
      case NodeOp::Const:
        if (!n->imm.isInt()) return {};
        return {BaseForm::Kind::Const, ir::kNoVal, offset + n->imm.asInt()};
      case NodeOp::Mov:
        v = n->in[0];
        continue;
      case NodeOp::Add: {
        const Node* lhs = tables.defNode(n->in[0]);
        const Node* rhs = tables.defNode(n->in[1]);
        if (rhs && rhs->op == NodeOp::Const && rhs->imm.isInt()) {
          offset += rhs->imm.asInt();
          v = n->in[0];
          continue;
        }
        if (lhs && lhs->op == NodeOp::Const && lhs->imm.isInt()) {
          offset += lhs->imm.asInt();
          v = n->in[1];
          continue;
        }
        return {};
      }
      case NodeOp::Sub: {
        const Node* rhs = tables.defNode(n->in[1]);
        if (rhs && rhs->op == NodeOp::Const && rhs->imm.isInt()) {
          offset -= rhs->imm.asInt();
          v = n->in[0];
          continue;
        }
        return {};
      }
      default:
        return {BaseForm::Kind::Var, v, offset};
    }
  }
  return {};
}

namespace {

/// May a dependence flow from write W to read R across iterations of `loop`?
bool pairMayCarry(const ArrayAccess& w, const ArrayAccess& r,
                  const Block& loop, const FnTables& tables) {
  if (!w.shapeKnown || !r.shapeKnown) return true;
  const int dims = std::min(w.rank, r.rank);
  for (int d = 0; d < dims; ++d) {
    // (a) Same slice of the loop's index at this dimension: any dependence
    // is within one iteration, not carried.
    AffineForm fw = affineIn(w.sub[d], loop.indexVal, tables);
    AffineForm fr = affineIn(r.sub[d], loop.indexVal, tables);
    if (fw.kind == AffineForm::Kind::Affine &&
        fr.kind == AffineForm::Kind::Affine) {
      if (fw.offset == fr.offset) return false;
      continue;  // different slices of the index: carried at this dim
    }
    // (b) Provably different coordinates at this dimension: no dependence
    // at all. Requires a common loop-invariant base (or two constants) with
    // distinct offsets.
    BaseForm bw = baseOf(w.sub[d], tables);
    BaseForm br = baseOf(r.sub[d], tables);
    if (bw.kind == BaseForm::Kind::Const && br.kind == BaseForm::Kind::Const &&
        bw.offset != br.offset) {
      return false;
    }
    if (bw.kind == BaseForm::Kind::Var && br.kind == BaseForm::Kind::Var &&
        bw.base == br.base && bw.offset != br.offset &&
        tables.isInvariant(bw.base, loop)) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool hasLoopCarriedDependency(const Block& loop, const FnTables& tables,
                              const std::vector<FnSummary>& summaries) {
  // Carried variables and while-loops circulate values: LCD by definition.
  if (loop.kind == ir::BlockKind::WhileLoop) return true;
  if (!loop.carried.empty()) return true;
  PODS_CHECK(loop.kind == ir::BlockKind::ForLoop);

  std::vector<ArrayAccess> accesses = collectAccesses(loop, tables, summaries);
  for (const ArrayAccess& w : accesses) {
    if (!w.isWrite) continue;
    for (const ArrayAccess& r : accesses) {
      if (r.isWrite || r.array != w.array) continue;
      if (pairMayCarry(w, r, loop, tables)) return true;
    }
  }
  return false;
}

}  // namespace pods::partition
