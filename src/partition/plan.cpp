#include "partition/plan.hpp"

#include <functional>

#include "support/check.hpp"

namespace pods::partition {

using ir::Block;
using ir::BlockKind;
using ir::Item;
using ir::ItemKind;
using ir::kNoVal;
using ir::Node;
using ir::NodeOp;
using ir::ValId;

namespace {

class Planner {
 public:
  Planner(const ir::Program& prog, const PlanOptions& options)
      : prog_(prog), options_(options) {
    summaries_ = summarizeFunctions(prog);
  }

  Plan run() {
    Plan plan;
    plan.options = options_;
    plan.distributeArrays = options_.distribute;
    if (!plan.distributeArrays) return plan;  // everything local

    // Which functions may execute inside a replicated loop body. Seeded by
    // planning from main; iterate because marking a function "distributed
    // context" changes its own plan, which changes the contexts of its
    // callees.
    inDistributedContext_.assign(prog_.fns.size(), false);

    // Process in BFS order over the call graph from main. A function is
    // planned once; if later discovered to be called from a replicated
    // context, it is re-planned as all-local and its callees re-examined.
    plan_ = &plan;
    planFunction(prog_.mainIndex);
    for (bool changed = true; changed;) {
      changed = false;
      for (std::uint32_t f = 0; f < prog_.fns.size(); ++f) {
        if (needsReplan_.size() > f && needsReplan_[f]) {
          needsReplan_[f] = false;
          planFunction(f);
          changed = true;
        }
      }
    }
    plan.numReplicated = numReplicated_;
    return plan;
  }

 private:
  void planFunction(std::uint32_t fnIndex) {
    const ir::Function& fn = prog_.fns[fnIndex];
    if (planned_.size() <= fnIndex) planned_.resize(prog_.fns.size(), false);
    if (needsReplan_.size() <= fnIndex) needsReplan_.resize(prog_.fns.size(), false);

    FnTables tables(fn);
    bool allLocal = inDistributedContext_[fnIndex];

    // Clear any previous decisions for this function's loops.
    std::function<void(const std::vector<Item>&)> clear =
        [&](const std::vector<Item>& items) {
          for (const Item& it : items) {
            if (it.kind == ItemKind::Loop) {
              auto found = plan_->loops.find(it.loop.get());
              if (found != plan_->loops.end() && found->second.replicated) {
                --numReplicated_;
                plan_->loops.erase(found);
              }
              clear(it.loop->condItems);
              clear(it.loop->body);
              clear(it.loop->finalItems);
            } else if (it.kind == ItemKind::If) {
              clear(it.ifi->thenItems);
              clear(it.ifi->elseItems);
            }
          }
        };
    if (planned_[fnIndex]) clear(fn.body.body);
    planned_[fnIndex] = true;

    planItems(fn.body.body, tables, /*inReplicated=*/allLocal);
    // Calls outside loops run in whatever context the function itself runs.
    propagateCalls(fn.body.body, allLocal);
  }

  /// Depth-first over loop nests: distribute the outermost LCD-free level.
  void planItems(const std::vector<Item>& items, const FnTables& tables,
                 bool inReplicated) {
    for (const Item& it : items) {
      switch (it.kind) {
        case ItemKind::Loop:
          planLoop(*it.loop, tables, inReplicated);
          break;
        case ItemKind::If:
          planItems(it.ifi->thenItems, tables, inReplicated);
          planItems(it.ifi->elseItems, tables, inReplicated);
          break;
        default:
          break;
      }
    }
  }

  void planLoop(const Block& loop, const FnTables& tables, bool inReplicated) {
    if (!inReplicated && loop.kind == BlockKind::ForLoop &&
        !hasLoopCarriedDependency(loop, tables, summaries_)) {
      LoopPlan lp = chooseRangeFilter(loop, tables);
      lp.replicated = true;
      plan_->loops[&loop] = lp;
      ++numReplicated_;
      // Everything below the replicated level runs locally (4.2.3): RFs
      // below are eliminated; callees inside run in distributed context.
      // Yield expressions (finalItems) execute once per replica, so they
      // count as distributed context too.
      planItems(loop.body, tables, /*inReplicated=*/true);
      planItems(loop.finalItems, tables, /*inReplicated=*/true);
      propagateCalls(loop.body, /*distributedContext=*/true);
      propagateCalls(loop.finalItems, /*distributedContext=*/true);
      return;
    }
    // This level stays local; recurse to find distributable inner levels.
    planItems(loop.condItems, tables, inReplicated);
    planItems(loop.body, tables, inReplicated);
    planItems(loop.finalItems, tables, inReplicated);
    propagateCallsShallow(loop, inReplicated);
  }

  /// Marks callee functions reachable from `items` (recursively through
  /// nested regions) as running in a distributed context when requested.
  void propagateCalls(const std::vector<Item>& items, bool distributedContext) {
    for (const Item& it : items) {
      switch (it.kind) {
        case ItemKind::Call:
          noteCall(it.call->fnIndex, distributedContext);
          break;
        case ItemKind::If:
          propagateCalls(it.ifi->thenItems, distributedContext);
          propagateCalls(it.ifi->elseItems, distributedContext);
          break;
        case ItemKind::Loop:
          propagateCalls(it.loop->condItems, distributedContext);
          propagateCalls(it.loop->body, distributedContext);
          propagateCalls(it.loop->finalItems, distributedContext);
          break;
        default:
          break;
      }
    }
  }

  /// Calls directly in a local loop's own lists (not inside nested loops,
  /// which planLoop handles itself).
  void propagateCallsShallow(const Block& loop, bool inReplicated) {
    // Nested loops were already visited by planLoop; visiting them again via
    // propagateCalls would be wrong only if contexts differed — they do:
    // a nested replicated loop switches its subtree to distributed context.
    // To keep this simple we only handle calls NOT inside nested loops here.
    auto walk = [&](const std::vector<Item>& items, auto&& self) -> void {
      for (const Item& it : items) {
        if (it.kind == ItemKind::Call) {
          noteCall(it.call->fnIndex, inReplicated);
        } else if (it.kind == ItemKind::If) {
          self(it.ifi->thenItems, self);
          self(it.ifi->elseItems, self);
        }
        // ItemKind::Loop: skip; handled by planLoop recursion.
      }
    };
    walk(loop.condItems, walk);
    walk(loop.body, walk);
    walk(loop.finalItems, walk);
  }

  void noteCall(std::uint32_t callee, bool distributedContext) {
    if (planned_.size() <= callee) planned_.resize(prog_.fns.size(), false);
    if (needsReplan_.size() <= callee)
      needsReplan_.resize(prog_.fns.size(), false);
    if (distributedContext && !inDistributedContext_[callee]) {
      inDistributedContext_[callee] = true;
      needsReplan_[callee] = true;
    } else if (!planned_[callee] && !needsReplan_[callee]) {
      needsReplan_[callee] = true;
    }
  }

  /// Picks the Range Filter for a loop being replicated: prefer a write whose
  /// dim-0 subscript is index+c (OwnedRows); else a write whose dim-1
  /// subscript is index+c with a loop-invariant row (OwnedColsOfRow); else
  /// fall back to an even block split of the index range.
  LoopPlan chooseRangeFilter(const Block& loop, const FnTables& tables) {
    LoopPlan lp;
    if (options_.forceBlockRange) {
      lp.mode = RfMode::BlockRange;
      return lp;
    }
    std::vector<ArrayAccess> accesses =
        collectAccesses(loop, tables, summaries_);
    // First pass: dim-0 matches on arrays defined outside the loop.
    for (const ArrayAccess& a : accesses) {
      if (!a.isWrite || !a.shapeKnown) continue;
      if (!tables.isInvariant(a.array, loop)) continue;
      AffineForm f0 = affineIn(a.sub[0], loop.indexVal, tables);
      if (f0.kind == AffineForm::Kind::Affine) {
        lp.mode = RfMode::OwnedRows;
        lp.governingArray = a.array;
        lp.filteredDim = 0;
        lp.offset = static_cast<std::int32_t>(f0.offset);
        return lp;
      }
    }
    // Second pass: dim-1 matches with invariant row subscripts. Invariance
    // of sub[0] also guarantees it is an *external use* of the loop block,
    // i.e. an argument token available before the replica's prologue runs
    // its RFLO/RFHI — a row index computed inside the body would leave the
    // Range Filter reading an empty slot.
    for (const ArrayAccess& a : accesses) {
      if (!a.isWrite || !a.shapeKnown || a.rank < 2) continue;
      if (!tables.isInvariant(a.array, loop)) continue;
      AffineForm f1 = affineIn(a.sub[1], loop.indexVal, tables);
      if (f1.kind == AffineForm::Kind::Affine &&
          tables.isInvariant(a.sub[0], loop)) {
        lp.mode = RfMode::OwnedColsOfRow;
        lp.governingArray = a.array;
        lp.filteredDim = 1;
        lp.offset = static_cast<std::int32_t>(f1.offset);
        lp.rowIndexVal = a.sub[0];
        return lp;
      }
    }
    lp.mode = RfMode::BlockRange;
    return lp;
  }

  const ir::Program& prog_;
  PlanOptions options_;
  std::vector<FnSummary> summaries_;
  std::vector<bool> inDistributedContext_;
  std::vector<bool> planned_;
  std::vector<bool> needsReplan_;
  Plan* plan_ = nullptr;
  int numReplicated_ = 0;
};

void describeItems(const std::vector<Item>& items, const Plan& plan, int depth,
                   std::string& out) {
  std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  for (const Item& it : items) {
    if (it.kind == ItemKind::Loop) {
      const Block& b = *it.loop;
      out += pad + b.name + ": ";
      const LoopPlan* lp = plan.find(&b);
      if (lp && lp->replicated) {
        out += "REPLICATED (LD) rf=";
        switch (lp->mode) {
          case RfMode::OwnedRows:
            out += "owned-rows of %" + std::to_string(lp->governingArray) +
                   " offset=" + std::to_string(lp->offset);
            break;
          case RfMode::OwnedColsOfRow:
            out += "owned-cols of %" + std::to_string(lp->governingArray) +
                   " row=%" + std::to_string(lp->rowIndexVal) +
                   " offset=" + std::to_string(lp->offset);
            break;
          case RfMode::BlockRange:
            out += "block-range";
            break;
        }
      } else {
        out += "local";
      }
      out += "\n";
      describeItems(b.condItems, plan, depth + 1, out);
      describeItems(b.body, plan, depth + 1, out);
      describeItems(b.finalItems, plan, depth + 1, out);
    } else if (it.kind == ItemKind::If) {
      describeItems(it.ifi->thenItems, plan, depth, out);
      describeItems(it.ifi->elseItems, plan, depth, out);
    }
  }
}

}  // namespace

std::string Plan::describe(const ir::Program& prog) const {
  std::string out;
  for (const ir::Function& fn : prog.fns) {
    out += "fn " + fn.name + ":\n";
    describeItems(fn.body.body, *this, 1, out);
  }
  return out;
}

Plan makePlan(const ir::Program& prog, const PlanOptions& options) {
  return Planner(prog, options).run();
}

}  // namespace pods::partition
