// Generic IdLite workload generators ("a few generic examples, such as
// matrix multiply", paper section 5.2) used by examples, tests and benches.
#pragma once

#include <string>

namespace pods::workloads {

/// The paper's Figure-2 example: fill a rows x cols matrix element-wise
/// through an (inlined) function f(i, j). main returns the matrix.
std::string fill2dSource(int rows, int cols);

/// Dense n x n matrix multiply C = A * B with generated inputs; the inner
/// dot product is a carried (LCD) loop. main returns C.
std::string matmulSource(int n);

/// Five-point Jacobi heat relaxation on an n x n grid for `steps` steps,
/// time-stepped by a while-loop carrying the grid. main returns the grid.
std::string stencilSource(int n, int steps);

/// Sum reduction over an n-element vector (a pure LCD loop reading a
/// distributed array). main returns the sum.
std::string reduceSource(int n);

/// Adversarial array ownership for the wire store: iteration i writes b[i]
/// but reads the block-layout mirror a[n-1-i], remotely owned for nearly
/// every i (and racing a's fill, so reads park as deferred reads at the
/// owner). main returns b and a checksum.
std::string reversalSource(int n);

/// Triangular workload: row i does i+1 writes — deliberate load imbalance
/// across the row-partitioned iteration space. main returns the row sums.
std::string triangularSource(int n);

}  // namespace pods::workloads
