// Livermore-loop style kernels in IdLite.
//
// SIMPLE came from Lawrence Livermore, and the classic Livermore Fortran
// Kernels are the canonical probe set for exactly the question PODS asks:
// how much *iteration-level* parallelism does scientific code expose? This
// pack implements a representative subset with contrasting dependence
// structure — the LCD analysis distributes the data-parallel ones and keeps
// the recurrences sequential, which the bench makes visible.
//
//   K1  hydro fragment            x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])
//       — parallel (reads run ahead of the index but only of z, never
//         written here).
//   K3  inner product             q += z[k]*x[k]
//       — a carried reduction (sequential by design).
//   K5  tri-diagonal elimination  x[i] = z[i]*(y[i] - x[i-1])
//       — first-order linear recurrence: a true LCD.
//   K7  equation of state         heavy arithmetic, fully parallel.
//   K11 first sum (prefix)        x[k] = x[k-1] + y[k] — a true LCD.
//   K12 first difference          x[k] = y[k+1] - y[k] — parallel.
#pragma once

#include <string>
#include <vector>

namespace pods::workloads {

struct LivermoreKernel {
  int number;        // the classic kernel number
  const char* name;
  bool parallel;     // expected: does the main loop distribute?
};

/// The kernels provided by livermoreSource, in order.
const std::vector<LivermoreKernel>& livermoreKernels();

/// IdLite source for one kernel over problem size n. main returns the
/// kernel's result vector (and scalar, for the reduction).
std::string livermoreSource(int kernelNumber, int n);

}  // namespace pods::workloads
