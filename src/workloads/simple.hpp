// The SIMPLE benchmark (paper section 5.2), written in IdLite.
//
// SIMPLE [Crowley et al., UCID-17715] is a Lagrangian hydrodynamics + heat
// conduction simulation. Our version keeps the structure the paper's
// evaluation depends on:
//
//  - velocity_position: one element-wise nested loop, no LCDs, no calls —
//    parallelizes perfectly (outer loop replicated across PEs);
//  - hydrodynamics: "basically one big nested loop" over neighbor reads
//    with an inlined equation-of-state;
//  - conduction: the hard routine — two ADI-style sweep phases (row solve,
//    then column solve) built from tridiagonal forward recurrences and
//    *descending* back-substitutions, so it has LCDs with both ascending
//    and descending for-loops plus multiple function calls. The row sweep
//    distributes its outer loop; the column sweep's recurrences carry over
//    rows, so only its inner loops distribute (the Figure-5 i-dependent
//    Range-Filter case), running in the staggered doacross fashion the
//    paper describes.
//
// The driver advances `steps` time steps in a while-loop carrying the whole
// state (every step allocates fresh single-assignment arrays).
#pragma once

#include <string>

namespace pods::workloads {

/// IdLite source of SIMPLE for an n x n mesh advancing `steps` time steps.
/// main returns the final energy field.
std::string simpleSource(int n, int steps);

/// Just the conduction routine (both sweep phases) applied `steps` times to
/// an n x n temperature field — the configuration of the paper's section
/// 5.3.4 efficiency comparison ("a 32 x 32 input conduction").
std::string conductionOnlySource(int n, int steps);

}  // namespace pods::workloads
