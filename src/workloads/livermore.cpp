#include "workloads/livermore.hpp"

#include "support/check.hpp"

namespace pods::workloads {

const std::vector<LivermoreKernel>& livermoreKernels() {
  static const std::vector<LivermoreKernel> k = {
      {1, "hydro fragment", true},
      {3, "inner product", false},
      {5, "tri-diagonal elimination", false},
      {7, "equation of state", true},
      {11, "first sum", false},
      {12, "first difference", true},
  };
  return k;
}

namespace {

/// Shared input-vector setup: deterministic pseudo-data, filled in parallel.
std::string inputs(int n, int extra) {
  return "  let n = " + std::to_string(n) + ";\n" +
         "  let m = " + std::to_string(n + extra) + ";\n" + R"(
  let y = array(m);
  let z = array(m);
  for i = 0 to m - 1 {
    y[i] = 0.2 + 0.001 * real(i);
    z[i] = 1.0 + 0.0005 * real(i * i % 97);
  }
)";
}

}  // namespace

std::string livermoreSource(int kernelNumber, int n) {
  switch (kernelNumber) {
    case 1:
      // x[k] = q + y[k] * (r * z[k+10] + t * z[k+11])
      return "def main() -> array {\n" + inputs(n, 11) + R"(
  let q = 0.5;
  let r = 0.25;
  let t = 0.125;
  let x = array(n);
  for k = 0 to n - 1 {
    x[k] = q + y[k] * (r * z[k + 10] + t * z[k + 11]);
  }
  return x;
}
)";
    case 3:
      // q = sum z[k] * y[k]
      return "def main() -> real {\n" + inputs(n, 0) + R"(
  let q = for k = 0 to n - 1 carry (acc = 0.0) {
    next acc = acc + z[k] * y[k];
  } yield acc;
  return q;
}
)";
    case 5:
      // x[i] = z[i] * (y[i] - x[i-1])
      return "def main() -> array {\n" + inputs(n, 0) + R"(
  let x = array(n);
  x[0] = z[0] * y[0];
  for i = 1 to n - 1 {
    x[i] = z[i] * (y[i] - x[i-1]);
  }
  return x;
}
)";
    case 7:
      // Equation-of-state fragment: long parallel expression per element.
      return "def main() -> array {\n" + inputs(n, 6) + R"(
  let r = 0.5;
  let t = 0.75;
  let x = array(n);
  for k = 0 to n - 1 {
    x[k] = y[k] + r * (z[k] + r * y[k + 1]) +
           t * (z[k + 3] + r * (z[k + 2] + r * z[k + 1]) +
                t * (z[k + 6] + r * (z[k + 5] + r * z[k + 4])));
  }
  return x;
}
)";
    case 11:
      // x[k] = x[k-1] + y[k]  (prefix sum)
      return "def main() -> array {\n" + inputs(n, 0) + R"(
  let x = array(n);
  x[0] = y[0];
  for k = 1 to n - 1 {
    x[k] = x[k-1] + y[k];
  }
  return x;
}
)";
    case 12:
      // x[k] = y[k+1] - y[k]
      return "def main() -> array {\n" + inputs(n, 1) + R"(
  let x = array(n);
  for k = 0 to n - 1 {
    x[k] = y[k + 1] - y[k];
  }
  return x;
}
)";
    default:
      PODS_UNREACHABLE("unknown Livermore kernel");
  }
}

}  // namespace pods::workloads
