#include "workloads/simple.hpp"

namespace pods::workloads {

namespace {

/// The routine definitions shared by the full benchmark and the
/// conduction-only configuration.
std::string simpleRoutines() {
  return R"(
// Gamma-law equation of state (inlined into hydrodynamics' loop, like the
// Id compiler inlines small function bodies).
inline def eos(rho: real, e: real) -> real {
  return 0.4 * rho * e;
}

// Velocity & position update: element-wise, no loop-carried dependencies.
def velocity_position(n: int, dt: real,
                      u: matrix, v: matrix, r: matrix, z: matrix,
                      p: matrix, q: matrix,
                      un: matrix, vn: matrix, rn: matrix, zn: matrix) {
  for i = 0 to n - 1 {
    for j = 0 to n - 1 {
      let pl = if j == 0 then p[i,j] else p[i,j-1];
      let pr = if j == n - 1 then p[i,j] else p[i,j+1];
      let pu = if i == 0 then p[i,j] else p[i-1,j];
      let pd = if i == n - 1 then p[i,j] else p[i+1,j];
      let ql = if j == 0 then q[i,j] else q[i,j-1];
      let qr = if j == n - 1 then q[i,j] else q[i,j+1];
      let uv = u[i,j] - dt * (pr - pl + qr - ql) * 0.5;
      let vv = v[i,j] - dt * (pd - pu) * 0.5;
      un[i,j] = uv;
      vn[i,j] = vv;
      rn[i,j] = r[i,j] + dt * uv;
      zn[i,j] = z[i,j] + dt * vv;
    }
  }
}

// Hydrodynamics: one big nested loop computing divergence, density,
// artificial viscosity, energy, and pressure.
def hydrodynamics(n: int, dt: real,
                  u: matrix, v: matrix, rho: matrix, e: matrix,
                  p: matrix, q: matrix,
                  rhon: matrix, en: matrix, pn: matrix, qn: matrix) {
  for i = 0 to n - 1 {
    for j = 0 to n - 1 {
      let ul = if j == 0 then u[i,j] else u[i,j-1];
      let ur = if j == n - 1 then u[i,j] else u[i,j+1];
      let vu = if i == 0 then v[i,j] else v[i-1,j];
      let vd = if i == n - 1 then v[i,j] else v[i+1,j];
      let div = 0.5 * (ur - ul + vd - vu);
      let rhov = rho[i,j] * (1.0 - dt * div);
      let qv = if div < 0.0 then 2.0 * rhov * div * div else 0.0;
      let ev = e[i,j] - dt * (p[i,j] + qv) * div / rhov;
      rhon[i,j] = rhov;
      qn[i,j] = qv;
      en[i,j] = ev;
      pn[i,j] = eos(rhov, ev);
    }
  }
}

// Heat conduction, row phase: a tridiagonal (Thomas) solve along every row.
// The forward recurrence and the descending back-substitution both carry a
// dependency in j, so only the outer i loop distributes.
def conduct_row(n: int, lam: real, T: matrix, Tn: matrix,
                cp: matrix, dq: matrix) {
  for i = 0 to n - 1 {
    for j = 0 to n - 1 {
      let cpPrev = if j == 0 then 0.0 else cp[i,j-1];
      let dqPrev = if j == 0 then 0.0 else dq[i,j-1];
      let m = 1.0 + 2.0 * lam - lam * cpPrev;
      cp[i,j] = lam / m;
      dq[i,j] = (T[i,j] + lam * dqPrev) / m;
    }
    for j = n - 1 downto 0 {
      let nxt = if j == n - 1 then 0.0 else Tn[i,j+1];
      Tn[i,j] = dq[i,j] + cp[i,j] * nxt;
    }
  }
}

// Heat conduction, column phase: the same solve down every column. The
// recurrences carry over i, so the *inner* j loops distribute (per-row
// broadcast with i-dependent Range-Filter bounds) and rows pipeline in a
// staggered, doacross-like fashion.
def conduct_col(n: int, lam: real, T: matrix, Tn: matrix,
                cp: matrix, dq: matrix) {
  for i = 0 to n - 1 {
    for j = 0 to n - 1 {
      let cpPrev = if i == 0 then 0.0 else cp[i-1,j];
      let dqPrev = if i == 0 then 0.0 else dq[i-1,j];
      let m = 1.0 + 2.0 * lam - lam * cpPrev;
      cp[i,j] = lam / m;
      dq[i,j] = (T[i,j] + lam * dqPrev) / m;
    }
  }
  for i = n - 1 downto 0 {
    for j = 0 to n - 1 {
      let nxt = if i == n - 1 then 0.0 else Tn[i+1,j];
      Tn[i,j] = dq[i,j] + cp[i,j] * nxt;
    }
  }
}

// Conduction driver: both sweep phases ("every element is recalculated
// twice, based upon its neighbors").
def conduction(n: int, dt: real, T: matrix, Tn: matrix) {
  let lam = dt * 4.0;
  let Th = matrix(n, n);
  let cp1 = matrix(n, n);
  let dq1 = matrix(n, n);
  conduct_row(n, lam, T, Th, cp1, dq1);
  let cp2 = matrix(n, n);
  let dq2 = matrix(n, n);
  conduct_col(n, lam, Th, Tn, cp2, dq2);
}
)";
}

}  // namespace

std::string simpleSource(int n, int steps) {
  const std::string N = std::to_string(n);
  const std::string S = std::to_string(steps);
  std::string src = "// SIMPLE: Lagrangian hydrodynamics + heat conduction (" +
                    N + "x" + N + " mesh).\n";
  src += simpleRoutines();
  src += R"(
def main() -> matrix {
  let n = )" + N + R"(;
  let steps = )" + S + R"(;
  let dt = 0.002;

  let u0 = matrix(n, n);
  let v0 = matrix(n, n);
  let r0 = matrix(n, n);
  let z0 = matrix(n, n);
  let rho0 = matrix(n, n);
  let e0 = matrix(n, n);
  let p0 = matrix(n, n);
  let q0 = matrix(n, n);
  for i = 0 to n - 1 {
    for j = 0 to n - 1 {
      let x = real(i) * 0.1;
      let y = real(j) * 0.1;
      u0[i,j] = 0.05 * sin(x) * cos(y);
      v0[i,j] = 0.05 * cos(x) * sin(y);
      r0[i,j] = real(j) * 0.5;
      z0[i,j] = real(i) * 0.5;
      rho0[i,j] = 1.0 + 0.1 * sin(x + y);
      e0[i,j] = 2.0 + cos(x) * 0.5;
      p0[i,j] = 0.4 * (1.0 + 0.1 * sin(x + y)) * (2.0 + cos(x) * 0.5);
      q0[i,j] = 0.0;
    }
  }

  let efinal = loop carry (u = u0, v = v0, r = r0, z = z0,
                           rho = rho0, e = e0, p = p0, q = q0, t = 0)
               while t < steps {
    let un = matrix(n, n);
    let vn = matrix(n, n);
    let rn = matrix(n, n);
    let zn = matrix(n, n);
    velocity_position(n, dt, u, v, r, z, p, q, un, vn, rn, zn);

    let rhon = matrix(n, n);
    let en = matrix(n, n);
    let pn = matrix(n, n);
    let qn = matrix(n, n);
    hydrodynamics(n, dt, un, vn, rho, e, p, q, rhon, en, pn, qn);

    let Tn = matrix(n, n);
    conduction(n, dt, en, Tn);

    next u = un;
    next v = vn;
    next r = rn;
    next z = zn;
    next rho = rhon;
    next e = Tn;
    next p = pn;
    next q = qn;
    next t = t + 1;
  } yield e;
  return efinal;
}
)";
  return src;
}

std::string conductionOnlySource(int n, int steps) {
  const std::string N = std::to_string(n);
  const std::string S = std::to_string(steps);
  std::string src = "// SIMPLE conduction only (" + N + "x" + N + " input).\n";
  src += simpleRoutines();
  src += R"(
def main() -> matrix {
  let n = )" + N + R"(;
  let steps = )" + S + R"(;
  let dt = 0.002;
  let T0 = matrix(n, n);
  for i = 0 to n - 1 {
    for j = 0 to n - 1 {
      T0[i,j] = 2.0 + 0.5 * cos(real(i) * 0.1) + 0.01 * real(j);
    }
  }
  let Tfinal = loop carry (T = T0, t = 0) while t < steps {
    let Tn = matrix(n, n);
    conduction(n, dt, T, Tn);
    next T = Tn;
    next t = t + 1;
  } yield T;
  return Tfinal;
}
)";
  return src;
}

}  // namespace pods::workloads
