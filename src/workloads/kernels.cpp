#include "workloads/kernels.hpp"

namespace pods::workloads {

std::string fill2dSource(int rows, int cols) {
  return R"(
// Figure 2 of the paper: A[i,j] = f(i,j) over a )" +
         std::to_string(rows) + "x" + std::to_string(cols) + R"( matrix.
inline def f(i: int, j: int) -> real {
  return real(i) * 10.0 + real(j);
}

def main() -> matrix {
  let A = matrix()" + std::to_string(rows) + ", " + std::to_string(cols) + R"();
  for i = 0 to )" + std::to_string(rows - 1) + R"( {
    for j = 0 to )" + std::to_string(cols - 1) + R"( {
      A[i,j] = f(i, j);
    }
  }
  return A;
}
)";
}

std::string matmulSource(int n) {
  const std::string N1 = std::to_string(n - 1);
  return R"(
def main() -> matrix {
  let n = )" + std::to_string(n) + R"(;
  let A = matrix(n, n);
  let B = matrix(n, n);
  for i = 0 to n - 1 {
    for j = 0 to n - 1 {
      A[i,j] = real(i) * 0.5 + real(j) * 0.125;
      B[i,j] = real(i) * 0.25 - real(j) * 0.0625;
    }
  }
  let C = matrix(n, n);
  for i = 0 to n - 1 {
    for j = 0 to n - 1 {
      let dot = for k = 0 to n - 1 carry (acc = 0.0) {
        next acc = acc + A[i,k] * B[k,j];
      } yield acc;
      C[i,j] = dot;
    }
  }
  return C;
}
)";
}

std::string stencilSource(int n, int steps) {
  return R"(
def main() -> matrix {
  let n = )" + std::to_string(n) + R"(;
  let steps = )" + std::to_string(steps) + R"(;
  let T0 = matrix(n, n);
  for i = 0 to n - 1 {
    for j = 0 to n - 1 {
      T0[i,j] = if i == 0 then 100.0 else real(i + j) * 0.01;
    }
  }
  let Tfinal = loop carry (T = T0, s = 0) while s < steps {
    let Tn = matrix(n, n);
    for i = 0 to n - 1 {
      for j = 0 to n - 1 {
        if i == 0 || i == n - 1 || j == 0 || j == n - 1 {
          Tn[i,j] = T[i,j];
        } else {
          Tn[i,j] = 0.25 * (T[i-1,j] + T[i+1,j] + T[i,j-1] + T[i,j+1]);
        }
      }
    }
    next T = Tn;
    next s = s + 1;
  } yield T;
  return Tfinal;
}
)";
}

std::string reduceSource(int n) {
  return R"(
def main() -> real {
  let n = )" + std::to_string(n) + R"(;
  let a = array(n);
  for i = 0 to n - 1 {
    a[i] = 1.0 + real(i) * 0.001;
  }
  let total = for i = 0 to n - 1 carry (acc = 0.0) {
    next acc = acc + a[i];
  } yield acc;
  return total;
}
)";
}

std::string reversalSource(int n) {
  return R"(
// Adversarial array ownership: iteration i writes b[i] but reads the
// block-layout mirror element a[n-1-i], owned by a different PE for nearly
// every i. Under the wire store almost every read is a remote ReadReq, and
// because b's loop races a's fill, many of them park as deferred reads at
// the owner until the write arrives.
def main() {
  let n = )" + std::to_string(n) + R"(;
  let a = array(n);
  let b = array(n);
  for i = 0 to n - 1 {
    a[i] = real(i) * 0.5 + 1.0;
  }
  for i = 0 to n - 1 {
    b[i] = a[n - 1 - i] * 2.0 + real(i) * 0.125;
  }
  let s = for i = 0 to n - 1 carry (acc = 0.0) {
    next acc = acc + b[i];
  } yield acc;
  return b, s;
}
)";
}

std::string triangularSource(int n) {
  return R"(
def main() -> array {
  let n = )" + std::to_string(n) + R"(;
  let W = matrix(n, n);
  for i = 0 to n - 1 {
    for j = 0 to i {
      W[i,j] = sqrt(real(i * n + j) + 1.0);
    }
  }
  let sums = array(n);
  for i = 0 to n - 1 {
    let s = for j = 0 to i carry (acc = 0.0) {
      next acc = acc + W[i,j];
    } yield acc;
    sums[i] = s;
  }
  return sums;
}
)";
}

}  // namespace pods::workloads
