#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace pods::serve {

namespace ctl = proto::ctl;

namespace {

bool sendAll(int fd, const std::uint8_t* p, std::size_t n) {
  while (n > 0) {
    const ssize_t k = ::send(fd, p, n, MSG_NOSIGNAL);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += static_cast<std::size_t>(k);
    n -= static_cast<std::size_t>(k);
  }
  return true;
}

}  // namespace

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

bool Client::connectUnix(const std::string& path, std::string* err) {
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (err) *err = "socket: " + std::string(std::strerror(errno));
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    if (err) *err = "unix socket path too long: " + path;
    return false;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (err) *err = "connect " + path + ": " + std::strerror(errno);
    close();
    return false;
  }
  return true;
}

bool Client::connectTcp(std::uint16_t port, std::string* err) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (err) *err = "socket: " + std::string(std::strerror(errno));
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (err)
      *err = "connect 127.0.0.1:" + std::to_string(port) + ": " +
             std::strerror(errno);
    close();
    return false;
  }
  return true;
}

bool Client::readFrame(ctl::Frame* f, std::string* err) {
  std::uint8_t buf[64 * 1024];
  for (;;) {
    bool bad = false;
    if (reader_.next(*f, &bad)) return true;
    if (bad) {
      if (err) *err = "corrupt frame from daemon";
      return false;
    }
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      if (err) *err = "daemon closed the connection";
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (err) *err = "recv: " + std::string(std::strerror(errno));
      return false;
    }
    reader_.feed(buf, static_cast<std::size_t>(n));
  }
}

bool Client::handshake(ctl::WelcomeMsg* welcome, std::string* err) {
  ctl::HelloMsg hello;
  std::vector<std::uint8_t> payload, wire;
  ctl::encodeHello(hello, payload);
  ctl::encodeFrame(ctl::FrameTag::Hello, payload, wire);
  if (!sendAll(fd_, wire.data(), wire.size())) {
    if (err) *err = "send Hello: " + std::string(std::strerror(errno));
    return false;
  }
  ctl::Frame f;
  if (!readFrame(&f, err)) return false;
  ctl::HelloMsg ack;
  if (f.tag != ctl::FrameTag::HelloAck ||
      !ctl::decodeHello(f.payload.data(), f.payload.size(), ack) ||
      ack.magic != ctl::kMagic || ack.version != ctl::kVersion) {
    if (err) *err = "handshake: expected HelloAck";
    return false;
  }
  if (!readFrame(&f, err)) return false;
  if (f.tag != ctl::FrameTag::Welcome ||
      !ctl::decodeWelcome(f.payload.data(), f.payload.size(), welcome_)) {
    if (err) *err = "handshake: expected Welcome";
    return false;
  }
  if (welcome) *welcome = welcome_;
  return true;
}

bool Client::submit(const ctl::SubmitMsg& m, bool byHash, Reply* out,
                    std::string* err) {
  std::vector<std::uint8_t> payload, wire;
  if (byHash) {
    ctl::encodeCacheRef(m, payload);
    ctl::encodeFrame(ctl::FrameTag::CacheRef, payload, wire);
  } else {
    ctl::encodeSubmit(m, payload);
    ctl::encodeFrame(ctl::FrameTag::Submit, payload, wire);
  }
  if (!sendAll(fd_, wire.data(), wire.size())) {
    if (err) *err = "send Submit: " + std::string(std::strerror(errno));
    return false;
  }
  ctl::Frame f;
  if (!readFrame(&f, err)) return false;
  *out = Reply{};
  switch (f.tag) {
    case ctl::FrameTag::JobResult:
      if (!ctl::decodeJobResult(f.payload.data(), f.payload.size(),
                                out->result)) {
        if (err) *err = "malformed JobResult from daemon";
        return false;
      }
      if (out->result.clientTag != m.clientTag) {
        if (err) *err = "JobResult for a different request (tag mismatch)";
        return false;
      }
      return true;
    case ctl::FrameTag::Busy:
      if (!ctl::decodeBusy(f.payload.data(), f.payload.size(),
                           out->busyInfo)) {
        if (err) *err = "malformed Busy from daemon";
        return false;
      }
      out->busy = true;
      return true;
    case ctl::FrameTag::Error: {
      ctl::ErrorMsg e;
      if (ctl::decodeError(f.payload.data(), f.payload.size(), e)) {
        if (err) *err = "daemon error " + std::to_string(e.code) + ": " + e.text;
      } else if (err) {
        *err = "daemon error (malformed Error frame)";
      }
      return false;
    }
    default:
      if (err) *err = "unexpected reply tag";
      return false;
  }
}

bool Client::submitSource(const std::string& source, std::uint32_t timeoutMs,
                          Reply* out, std::string* err) {
  ctl::SubmitMsg m;
  m.cfgHash = welcome_.cfgHash;
  m.clientTag = ++nextTag_;
  m.timeoutMs = timeoutMs;
  m.source = source;
  return submit(m, false, out, err);
}

bool Client::submitHash(std::uint64_t sourceHash, std::uint32_t timeoutMs,
                        Reply* out, std::string* err) {
  ctl::SubmitMsg m;
  m.cfgHash = welcome_.cfgHash;
  m.clientTag = ++nextTag_;
  m.timeoutMs = timeoutMs;
  m.byHash = 1;
  m.sourceHash = sourceHash;
  return submit(m, true, out, err);
}

bool Client::sendRaw(const std::uint8_t* p, std::size_t n) {
  return sendAll(fd_, p, n);
}

ProgramOutputs Client::toOutputs(const ctl::JobResultMsg& m) {
  ProgramOutputs out;
  out.results = m.results;
  out.arrays.resize(m.results.size());
  // decodeJobResult materializes exactly one arrays entry per result and
  // rejects shape/count mismatches, so no defensive clamp is needed here —
  // a malformed frame never reaches this function.
  for (std::size_t i = 0; i < m.results.size(); ++i) {
    if (m.arrays[i].present == 0) continue;
    ProgramOutputs::OutArray a;
    a.shape.rank = m.arrays[i].rank;
    a.shape.dim0 = m.arrays[i].dim0;
    a.shape.dim1 = m.arrays[i].dim1;
    a.elems = m.arrays[i].elems;
    out.arrays[i] = std::move(a);
  }
  return out;
}

}  // namespace pods::serve
