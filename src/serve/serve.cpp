#include "serve/serve.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <list>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "proto/ctl.hpp"
#include "support/check.hpp"

namespace pods::serve {

std::uint64_t configHash(const ServeConfig& c) {
  proto::ctl::Writer w;
  w.u16(proto::ctl::kVersion);
  w.u32(static_cast<std::uint32_t>(c.pes));
  w.u32(static_cast<std::uint32_t>(c.pageElems));
  return proto::ctl::fnv1a(w.out.data(), w.out.size());
}

std::uint64_t sourceHash(const std::string& source) {
  return proto::ctl::fnv1a(
      reinterpret_cast<const std::uint8_t*>(source.data()), source.size());
}

struct JobRunner::Impl : native::ExecPool {
  const ServeConfig cfg;

  // ---- Warm worker pool (native::ExecPool) -------------------------------
  // Sized maxInflight * pes: every executing job parks exactly `pes` bodies
  // on the pool for its whole run, so the bound is exact — a smaller pool
  // would deadlock, a larger one would idle.
  std::mutex poolM;
  std::condition_variable poolCv;
  std::deque<std::function<void()>> poolQ;
  bool poolStop = false;
  std::vector<std::thread> poolThreads;

  void dispatch(std::function<void()> fn) override {
    {
      std::lock_guard<std::mutex> g(poolM);
      poolQ.push_back(std::move(fn));
    }
    poolCv.notify_one();
  }

  void poolMain() {
    for (;;) {
      std::function<void()> fn;
      {
        std::unique_lock<std::mutex> g(poolM);
        poolCv.wait(g, [&] { return poolStop || !poolQ.empty(); });
        if (poolQ.empty()) return;  // poolStop and drained
        fn = std::move(poolQ.front());
        poolQ.pop_front();
      }
      fn();
    }
  }

  // ---- Admission + executors --------------------------------------------
  struct PendingJob {
    JobRequest req;
    std::function<void(JobReply)> done;
    std::uint32_t jobId = 0;
  };
  mutable std::mutex m;  // guards jobQ, inflight, jobSeq, cache, st
  std::condition_variable cv;
  std::deque<PendingJob> jobQ;
  bool stopFlag = false;
  int inflight = 0;
  std::uint32_t jobSeq = 0;
  std::vector<std::thread> executors;
  Counters st;

  // ---- Compiled-program cache (LRU) -------------------------------------
  struct CacheEntry {
    std::shared_ptr<const Compiled> compiled;
    std::list<std::uint64_t>::iterator lruIt;
  };
  std::unordered_map<std::uint64_t, CacheEntry> cache;
  std::list<std::uint64_t> lru;  // front = most recently used

  // ---- Per-job deadline watchdog ----------------------------------------
  // One shared timer thread arms every timed job's abort flag. Entries for
  // jobs that finished early fire into a dead flag — harmless, the flag is
  // shared_ptr-kept and the machine that watched it is gone.
  struct Deadline {
    std::chrono::steady_clock::time_point at;
    std::shared_ptr<std::atomic<bool>> flag;
  };
  std::mutex dlM;
  std::condition_variable dlCv;
  std::vector<Deadline> deadlines;
  bool dlStop = false;
  std::thread dlThread;

  explicit Impl(const ServeConfig& c) : cfg(c) {
    PODS_CHECK_MSG(cfg.pes >= 1 && cfg.maxInflight >= 1 && cfg.maxQueue >= 0 &&
                       cfg.cacheCapacity >= 1,
                   "invalid serve config");
    const int poolSize = cfg.maxInflight * cfg.pes;
    poolThreads.reserve(static_cast<std::size_t>(poolSize));
    for (int i = 0; i < poolSize; ++i)
      poolThreads.emplace_back([this] { poolMain(); });
    executors.reserve(static_cast<std::size_t>(cfg.maxInflight));
    for (int i = 0; i < cfg.maxInflight; ++i)
      executors.emplace_back([this] { execMain(); });
    dlThread = std::thread([this] { watchdogMain(); });
  }

  ~Impl() override {
    {
      std::lock_guard<std::mutex> g(m);
      stopFlag = true;
    }
    cv.notify_all();
    // Executors finish every admitted job before exiting, which in turn
    // returns all pool bodies; only then may the pool threads stop.
    for (std::thread& t : executors) t.join();
    {
      std::lock_guard<std::mutex> g(poolM);
      poolStop = true;
    }
    poolCv.notify_all();
    for (std::thread& t : poolThreads) t.join();
    {
      std::lock_guard<std::mutex> g(dlM);
      dlStop = true;
    }
    dlCv.notify_all();
    dlThread.join();
  }

  void watchdogMain() {
    std::unique_lock<std::mutex> g(dlM);
    for (;;) {
      if (dlStop) return;
      if (deadlines.empty()) {
        dlCv.wait(g);
        continue;
      }
      auto next = deadlines.front().at;
      for (const Deadline& d : deadlines)
        if (d.at < next) next = d.at;
      dlCv.wait_until(g, next);
      const auto now = std::chrono::steady_clock::now();
      for (auto it = deadlines.begin(); it != deadlines.end();) {
        if (it->at <= now) {
          it->flag->store(true);
          it = deadlines.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  void armDeadline(std::shared_ptr<std::atomic<bool>> flag,
                   std::uint32_t afterMs) {
    {
      std::lock_guard<std::mutex> g(dlM);
      deadlines.push_back(
          {std::chrono::steady_clock::now() +
               std::chrono::milliseconds(afterMs),
           std::move(flag)});
    }
    dlCv.notify_all();
  }

  /// Cache lookup under `m`; refreshes LRU position and counts hit/miss.
  std::shared_ptr<const Compiled> cacheLookup(std::uint64_t h) {
    auto it = cache.find(h);
    if (it == cache.end()) {
      st.add("serve.cache.misses");
      return nullptr;
    }
    lru.erase(it->second.lruIt);
    lru.push_front(h);
    it->second.lruIt = lru.begin();
    st.add("serve.cache.hits");
    return it->second.compiled;
  }

  /// Cache insert under `m`; evicts the LRU tail past capacity. Evicted
  /// programs stay alive (shared_ptr) for any job still executing them.
  void cacheInsert(std::uint64_t h, std::shared_ptr<const Compiled> c) {
    if (cache.count(h) != 0) return;  // lost a compile race — keep the first
    lru.push_front(h);
    cache.emplace(h, CacheEntry{std::move(c), lru.begin()});
    while (cache.size() > static_cast<std::size_t>(cfg.cacheCapacity)) {
      cache.erase(lru.back());
      lru.pop_back();
      st.add("serve.cache.evictions");
    }
  }

  void execMain() {
    for (;;) {
      PendingJob job;
      {
        std::unique_lock<std::mutex> g(m);
        cv.wait(g, [&] { return stopFlag || !jobQ.empty(); });
        if (jobQ.empty()) return;  // stopFlag and drained
        job = std::move(jobQ.front());
        jobQ.pop_front();
        ++inflight;
        st.add("serve.jobs.started");
      }
      cv.notify_all();  // a submit may be waiting on queue headroom checks
      JobReply rep = execute(job);
      {
        std::lock_guard<std::mutex> g(m);
        --inflight;
        if (rep.ok) {
          st.add("serve.jobs.ok");
        } else if (rep.error.rfind("aborted", 0) == 0) {
          st.add("serve.jobs.aborted");
        } else {
          st.add("serve.jobs.failed");
        }
        // Canonical per-job counters aggregated un-namespaced: names are a
        // fixed set, so daemon totals stay bounded however many jobs run.
        st.merge(rep.counters);
      }
      cv.notify_all();
      job.done(std::move(rep));
    }
  }

  JobReply execute(PendingJob& job) {
    JobReply rep;
    rep.jobId = job.jobId;
    std::shared_ptr<const Compiled> compiled;
    std::uint64_t h = 0;
    if (job.req.byHash) {
      h = job.req.hash;
      {
        std::lock_guard<std::mutex> g(m);
        compiled = cacheLookup(h);
      }
      rep.sourceHash = h;
      if (compiled == nullptr) {
        rep.error =
            "unknown compiled handle (evicted or never submitted); "
            "resubmit the program source";
        return rep;
      }
      rep.cacheHit = true;
    } else {
      h = sourceHash(job.req.source);
      rep.sourceHash = h;
      {
        std::lock_guard<std::mutex> g(m);
        compiled = cacheLookup(h);
      }
      if (compiled != nullptr) {
        rep.cacheHit = true;
      } else {
        CompileResult cr = compile(job.req.source);
        if (!cr.ok) {
          rep.error = "compile failed: " + cr.diagnostics;
          return rep;
        }
        compiled = std::shared_ptr<const Compiled>(std::move(cr.compiled));
        std::lock_guard<std::mutex> g(m);
        cacheInsert(h, compiled);
      }
    }

    native::NativeConfig nc;
    nc.numWorkers = cfg.pes;
    nc.pageElems = cfg.pageElems;
    nc.jobId = job.jobId;
    nc.pool = this;
    std::shared_ptr<std::atomic<bool>> abortFlag;
    if (job.req.timeoutMs != 0) {
      abortFlag = std::make_shared<std::atomic<bool>>(false);
      nc.abort = abortFlag.get();
      armDeadline(abortFlag, job.req.timeoutMs);
    }
    NativeRun run = runNative(*compiled, nc);
    rep.ok = run.stats.ok;
    rep.error = run.stats.error;
    rep.wallMs = run.stats.wallSeconds * 1e3;
    rep.out = std::move(run.out);
    rep.counters = std::move(run.stats.counters);
    return rep;
  }
};

JobRunner::JobRunner(const ServeConfig& cfg)
    : impl_(std::make_unique<Impl>(cfg)) {}

JobRunner::~JobRunner() = default;

bool JobRunner::submit(JobRequest req, std::function<void(JobReply)> done,
                       std::uint32_t* inflight, std::uint32_t* queued) {
  Impl& im = *impl_;
  {
    std::lock_guard<std::mutex> g(im.m);
    im.st.add("serve.submits");
    if (req.byHash) im.st.add("serve.submits.byHandle");
    const int admitted = im.inflight + static_cast<int>(im.jobQ.size());
    if (admitted >= im.cfg.maxInflight + im.cfg.maxQueue) {
      im.st.add("serve.busyRejects");
      if (inflight) *inflight = static_cast<std::uint32_t>(im.inflight);
      if (queued) *queued = static_cast<std::uint32_t>(im.jobQ.size());
      return false;
    }
    Impl::PendingJob job;
    job.req = std::move(req);
    job.done = std::move(done);
    job.jobId = ++im.jobSeq;
    im.jobQ.push_back(std::move(job));
  }
  im.cv.notify_all();
  return true;
}

JobReply JobRunner::run(JobRequest req) {
  std::mutex m;
  std::condition_variable cv;
  bool ready = false;
  JobReply out;
  std::uint32_t inflight = 0, queued = 0;
  const bool admitted = submit(
      std::move(req),
      [&](JobReply rep) {
        std::lock_guard<std::mutex> g(m);
        out = std::move(rep);
        ready = true;
        cv.notify_all();
      },
      &inflight, &queued);
  if (!admitted) {
    out.busy = true;
    out.inflight = inflight;
    out.queued = queued;
    return out;
  }
  std::unique_lock<std::mutex> g(m);
  cv.wait(g, [&] { return ready; });
  return out;
}

void JobRunner::drain() {
  Impl& im = *impl_;
  std::unique_lock<std::mutex> g(im.m);
  im.cv.wait(g, [&] { return im.inflight == 0 && im.jobQ.empty(); });
}

Counters JobRunner::stats() const {
  const Impl& im = *impl_;
  std::lock_guard<std::mutex> g(im.m);
  Counters out = im.st;
  // Pre-register the counters the stats schema requires for the serve
  // engine: an idle daemon's artifact must carry them at zero, not omit
  // them (add(name, 0) creates the key without changing a live value).
  for (const char* name : {"serve.submits", "serve.jobs.ok",
                           "serve.cache.hits", "serve.cache.misses"})
    out.add(name, 0);
  out.add("serve.inflight", im.inflight);
  out.add("serve.queued", static_cast<std::int64_t>(im.jobQ.size()));
  out.add("serve.cache.size", static_cast<std::int64_t>(im.cache.size()));
  return out;
}

const ServeConfig& JobRunner::config() const { return impl_->cfg; }

}  // namespace pods::serve
