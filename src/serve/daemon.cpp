#include "serve/daemon.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "proto/ctl.hpp"

namespace pods::serve {

namespace ctl = proto::ctl;

namespace {

/// Whole-buffer blocking send; MSG_NOSIGNAL so a client that vanished
/// mid-write surfaces as EPIPE instead of killing the process.
bool sendAll(int fd, const std::uint8_t* p, std::size_t n) {
  while (n > 0) {
    const ssize_t k = ::send(fd, p, n, MSG_NOSIGNAL);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += static_cast<std::size_t>(k);
    n -= static_cast<std::size_t>(k);
  }
  return true;
}

}  // namespace

struct Daemon::Impl {
  const ServeConfig cfg;
  const Endpoint ep;
  JobRunner runner;

  int listenFd = -1;
  int wakePipe[2] = {-1, -1};  // poke the poll loop (stop)
  std::uint16_t port = 0;
  std::thread ioThread;
  std::atomic<bool> stopping{false};
  bool started = false;
  bool stopped = false;

  struct Conn {
    int fd = -1;
    ctl::FrameReader reader;
    bool gotHello = false;
    std::mutex writeM;  // io thread (handshake/errors) vs executors (results)
    std::atomic<bool> open{true};
  };
  // Owned by the io thread; executors hold shared_ptrs for result delivery.
  std::unordered_map<int, std::shared_ptr<Conn>> conns;

  mutable std::mutex statsM;
  Counters st;  // net.ctl.* + serve.connections etc.

  Impl(const ServeConfig& c, Endpoint e) : cfg(c), ep(std::move(e)), runner(c) {
    // Pre-register the wire counters the stats schema requires: a counter
    // that only materializes on first increment would vanish from a clean
    // run's artifact (zero bad frames is the GOOD case) and fail the gate.
    st.add("net.ctl.frames", 0);
    st.add("net.ctl.badFrames", 0);
    st.add("serve.connections", 0);
    st.add("serve.cfgMismatches", 0);
  }

  void count(const char* name, std::int64_t delta = 1) {
    std::lock_guard<std::mutex> g(statsM);
    st.add(name, delta);
  }

  bool bindListen(std::string* err) {
    if (!ep.unixPath.empty()) {
      listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (listenFd < 0) {
        if (err) *err = "socket: " + std::string(std::strerror(errno));
        return false;
      }
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      if (ep.unixPath.size() >= sizeof(addr.sun_path)) {
        if (err) *err = "unix socket path too long: " + ep.unixPath;
        return false;
      }
      std::strncpy(addr.sun_path, ep.unixPath.c_str(),
                   sizeof(addr.sun_path) - 1);
      ::unlink(ep.unixPath.c_str());
      if (::bind(listenFd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0) {
        if (err)
          *err = "bind " + ep.unixPath + ": " + std::strerror(errno);
        return false;
      }
    } else {
      listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (listenFd < 0) {
        if (err) *err = "socket: " + std::string(std::strerror(errno));
        return false;
      }
      const int one = 1;
      ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(ep.tcpPort);
      if (::bind(listenFd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0) {
        if (err)
          *err = "bind 127.0.0.1:" + std::to_string(ep.tcpPort) + ": " +
                 std::strerror(errno);
        return false;
      }
      sockaddr_in bound{};
      socklen_t blen = sizeof(bound);
      ::getsockname(listenFd, reinterpret_cast<sockaddr*>(&bound), &blen);
      port = ntohs(bound.sin_port);
    }
    if (::listen(listenFd, 64) < 0) {
      if (err) *err = "listen: " + std::string(std::strerror(errno));
      return false;
    }
    return true;
  }

  void writeFrame(const std::shared_ptr<Conn>& c, ctl::FrameTag tag,
                  const std::vector<std::uint8_t>& payload) {
    std::vector<std::uint8_t> wire;
    ctl::encodeFrame(tag, payload, wire);
    std::lock_guard<std::mutex> g(c->writeM);
    if (!c->open.load()) {
      count("serve.droppedReplies");
      return;
    }
    if (!sendAll(c->fd, wire.data(), wire.size())) {
      count("serve.droppedReplies");
      c->open.store(false);
    }
  }

  void sendError(const std::shared_ptr<Conn>& c, std::uint32_t code,
                 const std::string& text) {
    ctl::ErrorMsg e;
    e.code = code;
    e.text = text;
    std::vector<std::uint8_t> payload;
    ctl::encodeError(e, payload);
    writeFrame(c, ctl::FrameTag::Error, payload);
  }

  /// Marks the connection closed for writers; the io thread owns the fd
  /// close so executors never race a reused descriptor number.
  void closeConn(int fd) {
    auto it = conns.find(fd);
    if (it == conns.end()) return;
    it->second->open.store(false);
    {
      // Serialize against an executor mid-write on this fd.
      std::lock_guard<std::mutex> g(it->second->writeM);
      ::close(fd);
      it->second->fd = -1;
    }
    conns.erase(it);
  }

  void onSubmit(const std::shared_ptr<Conn>& c, const ctl::SubmitMsg& m) {
    if (m.cfgHash != configHash(cfg)) {
      count("serve.cfgMismatches");
      sendError(c, 2,
                "config hash mismatch: daemon serves pes=" +
                    std::to_string(cfg.pes) +
                    " page=" + std::to_string(cfg.pageElems) +
                    "; reconnect and use the Welcome hash");
      c->open.store(false);
      return;
    }
    JobRequest req;
    req.byHash = m.byHash != 0;
    req.hash = m.sourceHash;
    req.source = m.source;
    req.timeoutMs = m.timeoutMs;
    const std::uint32_t clientTag = m.clientTag;
    std::uint32_t inflight = 0, queued = 0;
    const bool admitted = runner.submit(
        std::move(req),
        [this, c, clientTag](JobReply rep) {
          ctl::JobResultMsg out;
          out.clientTag = clientTag;
          out.jobId = rep.jobId;
          out.ok = rep.ok ? 1 : 0;
          out.cacheHit = rep.cacheHit ? 1 : 0;
          out.sourceHash = rep.sourceHash;
          out.wallMs = rep.wallMs;
          out.error = rep.error;
          const std::string prefix = "job." + std::to_string(rep.jobId) + ".";
          for (const auto& [k, v] : rep.counters.all())
            out.counters.emplace_back(prefix + k, v);
          out.resultSet.reserve(rep.out.results.size());
          for (std::size_t i = 0; i < rep.out.results.size(); ++i) {
            out.resultSet.push_back(1);
            out.results.push_back(rep.out.results[i]);
            ctl::JobResultMsg::OutArray a;
            if (i < rep.out.arrays.size() && rep.out.arrays[i]) {
              a.present = 1;
              a.rank = static_cast<std::uint8_t>(rep.out.arrays[i]->shape.rank);
              a.dim0 = rep.out.arrays[i]->shape.dim0;
              a.dim1 = rep.out.arrays[i]->shape.dim1;
              a.elems = rep.out.arrays[i]->elems;
            }
            out.arrays.push_back(std::move(a));
          }
          std::vector<std::uint8_t> payload;
          ctl::encodeJobResult(out, payload);
          writeFrame(c, ctl::FrameTag::JobResult, payload);
        },
        &inflight, &queued);
    if (!admitted) {
      ctl::BusyMsg busy;
      busy.clientTag = clientTag;
      busy.inflight = inflight;
      busy.queued = queued;
      busy.maxInflight = static_cast<std::uint32_t>(cfg.maxInflight);
      busy.maxQueue = static_cast<std::uint32_t>(cfg.maxQueue);
      std::vector<std::uint8_t> payload;
      ctl::encodeBusy(busy, payload);
      writeFrame(c, ctl::FrameTag::Busy, payload);
    }
  }

  /// Handles one well-framed message. Returns false when the connection
  /// must be torn down (protocol violation — already counted + answered).
  bool onFrame(const std::shared_ptr<Conn>& c, const ctl::Frame& f) {
    count(ctl::kFrames);
    if (!c->gotHello) {
      ctl::HelloMsg hello;
      if (f.tag != ctl::FrameTag::Hello ||
          !ctl::decodeHello(f.payload.data(), f.payload.size(), hello) ||
          hello.magic != ctl::kMagic || hello.version != ctl::kVersion) {
        count(ctl::kBadFrames);
        sendError(c, 1, "expected Hello (magic PCTL, version 1)");
        return false;
      }
      c->gotHello = true;
      std::vector<std::uint8_t> payload;
      ctl::encodeHello(hello, payload);
      writeFrame(c, ctl::FrameTag::HelloAck, payload);
      ctl::WelcomeMsg w;
      w.cfgHash = configHash(cfg);
      w.pes = static_cast<std::uint16_t>(cfg.pes);
      w.pageElems = static_cast<std::uint32_t>(cfg.pageElems);
      w.maxInflight = static_cast<std::uint32_t>(cfg.maxInflight);
      w.maxQueue = static_cast<std::uint32_t>(cfg.maxQueue);
      payload.clear();
      ctl::encodeWelcome(w, payload);
      writeFrame(c, ctl::FrameTag::Welcome, payload);
      return true;
    }
    ctl::SubmitMsg m;
    switch (f.tag) {
      case ctl::FrameTag::Submit:
        if (!ctl::decodeSubmit(f.payload.data(), f.payload.size(), m)) {
          count(ctl::kBadFrames);
          sendError(c, 3, "malformed Submit payload");
          return false;
        }
        onSubmit(c, m);
        return c->open.load();
      case ctl::FrameTag::CacheRef:
        if (!ctl::decodeCacheRef(f.payload.data(), f.payload.size(), m)) {
          count(ctl::kBadFrames);
          sendError(c, 3, "malformed CacheRef payload");
          return false;
        }
        onSubmit(c, m);
        return c->open.load();
      default:
        count(ctl::kBadFrames);
        sendError(c, 4, "unexpected frame tag");
        return false;
    }
  }

  void ioMain() {
    std::vector<std::uint8_t> buf(64 * 1024);
    for (;;) {
      std::vector<pollfd> fds;
      fds.push_back({wakePipe[0], POLLIN, 0});
      if (!stopping.load() && listenFd >= 0)
        fds.push_back({listenFd, POLLIN, 0});
      for (const auto& [fd, c] : conns) fds.push_back({fd, POLLIN, 0});
      if (::poll(fds.data(), static_cast<nfds_t>(fds.size()), 250) < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (stopping.load()) {
        // Drain delivered below by stop(); just stop reading and exit.
        return;
      }
      for (const pollfd& p : fds) {
        if ((p.revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        if (p.fd == wakePipe[0]) {
          std::uint8_t sink[16];
          while (::read(wakePipe[0], sink, sizeof(sink)) > 0) {
          }
          continue;
        }
        if (p.fd == listenFd) {
          const int cfd = ::accept(listenFd, nullptr, nullptr);
          if (cfd >= 0) {
            auto conn = std::make_shared<Conn>();
            conn->fd = cfd;
            conns.emplace(cfd, std::move(conn));
            count("serve.connections");
          }
          continue;
        }
        auto it = conns.find(p.fd);
        if (it == conns.end()) continue;
        std::shared_ptr<Conn> c = it->second;
        const ssize_t n = ::recv(p.fd, buf.data(), buf.size(), 0);
        if (n <= 0) {
          if (n < 0 && (errno == EAGAIN || errno == EINTR)) continue;
          closeConn(p.fd);
          continue;
        }
        c->reader.feed(buf.data(), static_cast<std::size_t>(n));
        ctl::Frame f;
        bool bad = false;
        bool drop = false;
        while (c->reader.next(f, &bad)) {
          if (!onFrame(c, f)) {
            drop = true;
            break;
          }
        }
        if (bad) {
          // Corrupt header: the stream is poisoned (no resync possible).
          count(ctl::kBadFrames);
          sendError(c, 5, "corrupt frame header; closing");
          drop = true;
        }
        if (drop || !c->open.load()) closeConn(p.fd);
      }
    }
  }
};

Daemon::Daemon(const ServeConfig& cfg, Endpoint ep)
    : impl_(std::make_unique<Impl>(cfg, std::move(ep))) {}

Daemon::~Daemon() { stop(); }

bool Daemon::start(std::string* err) {
  Impl& im = *impl_;
  if (im.started) return true;
  if (::pipe(im.wakePipe) < 0) {
    if (err) *err = "pipe: " + std::string(std::strerror(errno));
    return false;
  }
  // Nonblocking read end: the io thread drains it opportunistically.
  ::fcntl(im.wakePipe[0], F_SETFL, O_NONBLOCK);
  if (!im.bindListen(err)) return false;
  im.ioThread = std::thread([&im] { im.ioMain(); });
  im.started = true;
  return true;
}

void Daemon::stop() {
  Impl& im = *impl_;
  if (!im.started || im.stopped) return;
  im.stopped = true;
  im.stopping.store(true);
  // Stop accepting + reading, but deliver every admitted job's result
  // before tearing connections down: executors write directly to conns.
  const std::uint8_t poke = 1;
  const ssize_t ignored = ::write(im.wakePipe[1], &poke, 1);
  (void)ignored;
  im.ioThread.join();
  im.runner.drain();
  for (const auto& [fd, c] : im.conns) {
    c->open.store(false);
    std::lock_guard<std::mutex> g(c->writeM);
    ::close(fd);
    c->fd = -1;
  }
  im.conns.clear();
  if (im.listenFd >= 0) ::close(im.listenFd);
  im.listenFd = -1;
  ::close(im.wakePipe[0]);
  ::close(im.wakePipe[1]);
  if (!im.ep.unixPath.empty()) ::unlink(im.ep.unixPath.c_str());
}

std::uint16_t Daemon::boundPort() const { return impl_->port; }

Counters Daemon::stats() const {
  Counters out = impl_->runner.stats();
  std::lock_guard<std::mutex> g(impl_->statsM);
  out.merge(impl_->st);
  return out;
}

const ServeConfig& Daemon::config() const { return impl_->cfg; }

}  // namespace pods::serve
