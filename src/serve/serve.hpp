// Multi-tenant job execution for the serving daemon (podsd).
//
// One-shot `podsc` pays process startup, parse, translate, partition, and
// worker-pool spin-up per run. The paper's thesis is that iteration-level
// parallelism amortizes per-program setup across iterations; `JobRunner`
// extends that amortization across *jobs*:
//
//  - a warm host-thread pool (native::ExecPool) survives across jobs, so a
//    job's NativeMachine::run() spawns no threads;
//  - a compiled-program cache keyed by the FNV-1a hash of the IdLite source
//    skips parse/translate/partition on a hit (compilation is deterministic,
//    so a hit is bit-identical to a miss);
//  - admission control bounds concurrently executing jobs (maxInflight
//    executors) plus a bounded wait queue (maxQueue) — beyond that a submit
//    is rejected with a structured busy reply instead of queuing unboundedly;
//  - every job runs in its own NativeMachine under its own context
//    namespace (NativeConfig::jobId), so tokens, frames, straggler-ledger
//    entries, and dedup keys of concurrent jobs can never collide, and a
//    job aborted mid-run cannot leak state into survivors.
//
// JobRunner is transport-agnostic; the socket front end lives in
// serve/daemon.hpp.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/pods.hpp"
#include "support/stats.hpp"

namespace pods::serve {

struct ServeConfig {
  int pes = 4;          // worker count of every job's NativeMachine
  int pageElems = 32;   // array-layout granularity of every job
  int maxInflight = 2;  // concurrently executing jobs (executor threads)
  int maxQueue = 8;     // admitted-but-waiting jobs beyond the executors
  int cacheCapacity = 64;  // compiled programs kept warm (LRU eviction)
};

/// FNV-1a over {protocol version, pes, pageElems} — the Welcome/Submit
/// compatibility check. Machine shape is part of the contract: the same
/// source partitioned for a different PE count is a different program.
std::uint64_t configHash(const ServeConfig& c);

/// FNV-1a of the IdLite source — the compiled-program cache key and the
/// CacheRef handle clients use to skip re-sending (and re-compiling) source.
std::uint64_t sourceHash(const std::string& source);

struct JobRequest {
  std::string source;  // IdLite source (byHash == false)
  bool byHash = false;
  std::uint64_t hash = 0;       // compiled handle (byHash == true)
  std::uint32_t timeoutMs = 0;  // 0 = no per-job deadline
};

struct JobReply {
  bool busy = false;  // admission rejected; only inflight/queued are valid
  std::uint32_t inflight = 0;
  std::uint32_t queued = 0;
  bool ok = false;
  bool cacheHit = false;
  std::uint32_t jobId = 0;
  std::uint64_t sourceHash = 0;
  std::string error;
  double wallMs = 0.0;
  ProgramOutputs out;
  /// Per-job counters, canonical (unprefixed) names. The wire layer
  /// namespaces them as job.<id>.* ; the runner's stats() aggregates them
  /// un-namespaced so daemon totals stay bounded.
  Counters counters;
};

class JobRunner {
 public:
  explicit JobRunner(const ServeConfig& cfg);
  /// Finishes every admitted job, then winds down executors and the pool.
  ~JobRunner();

  JobRunner(const JobRunner&) = delete;
  JobRunner& operator=(const JobRunner&) = delete;

  /// Asynchronous submit. The admission decision is made synchronously:
  /// returns false (and fills *inflight / *queued) when the executors and
  /// the queue are both full — `done` is then never invoked. Otherwise the
  /// job is admitted and `done` fires exactly once, from an executor
  /// thread, when the job completes. Thread-safe.
  bool submit(JobRequest req, std::function<void(JobReply)> done,
              std::uint32_t* inflight = nullptr,
              std::uint32_t* queued = nullptr);

  /// Blocking convenience over submit(): busy rejections come back as a
  /// reply with busy == true.
  JobReply run(JobRequest req);

  /// Blocks until no job is executing or queued.
  void drain();

  /// serve.* counters (submits, busy rejects, cache hits/misses/evictions,
  /// jobs ok/failed/aborted, inflight/queued gauges) plus the canonical
  /// per-job counters aggregated across all completed jobs.
  Counters stats() const;

  const ServeConfig& config() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace pods::serve
