// Client side of the podsd serve protocol, shared by the podsd_client tool,
// the serve tests, and the micro_serve bench. Blocking, one outstanding
// request per call — the daemon multiplexes many such clients.
#pragma once

#include <cstdint>
#include <string>

#include "core/pods.hpp"
#include "proto/ctl.hpp"

namespace pods::serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connectUnix(const std::string& path, std::string* err);
  bool connectTcp(std::uint16_t port, std::string* err);  // 127.0.0.1

  /// Hello -> HelloAck + Welcome. Must be the first exchange.
  bool handshake(proto::ctl::WelcomeMsg* welcome, std::string* err);

  /// One submit -> one reply. False only on transport/protocol failure
  /// (including a daemon Error frame, surfaced via *err); Busy and job
  /// failures are successful exchanges reported in *out.
  struct Reply {
    bool busy = false;
    proto::ctl::BusyMsg busyInfo{};
    proto::ctl::JobResultMsg result{};
  };
  bool submitSource(const std::string& source, std::uint32_t timeoutMs,
                    Reply* out, std::string* err);
  bool submitHash(std::uint64_t sourceHash, std::uint32_t timeoutMs,
                  Reply* out, std::string* err);

  /// Sends raw bytes on the socket — the garbage-frame soak client.
  bool sendRaw(const std::uint8_t* p, std::size_t n);

  void close();

  const proto::ctl::WelcomeMsg& welcome() const { return welcome_; }

  /// Converts a decoded JobResult into the engine-comparison form used by
  /// sameOutputs() — array results re-materialized from the wire expansion.
  static ProgramOutputs toOutputs(const proto::ctl::JobResultMsg& m);

 private:
  bool submit(const proto::ctl::SubmitMsg& m, bool byHash, Reply* out,
              std::string* err);
  bool readFrame(proto::ctl::Frame* f, std::string* err);

  int fd_ = -1;
  proto::ctl::FrameReader reader_;
  proto::ctl::WelcomeMsg welcome_{};
  std::uint32_t nextTag_ = 0;
};

}  // namespace pods::serve
