// Socket front end of the serving daemon (podsd).
//
// Speaks the PR 7 ctl-frame format ([u32 len][u8 tag], little-endian,
// all-or-nothing decode) over a Unix-domain or loopback-TCP listener:
//
//   client                daemon
//   Hello          ---->            magic + version check
//                  <----  HelloAck
//                  <----  Welcome   config hash + machine shape + limits
//   Submit/CacheRef --->            admission + cache + execute
//                  <----  JobResult (or Busy, or Error)
//
// Protocol discipline mirrors the supervisor<->worker channel: a malformed
// frame (corrupt header, truncated payload, trailing junk, unexpected tag)
// is counted into net.ctl.badFrames, answered with a best-effort Error
// frame, and the connection is closed — the daemon itself never goes down
// with a client. A config-hash mismatch in Submit is a *well-formed* frame
// with incompatible values: same Error-and-close, counted separately.
//
// One poll()-based I/O thread owns every read; job results are written by
// JobRunner executor threads directly, under a per-connection write lock.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "serve/serve.hpp"
#include "support/stats.hpp"

namespace pods::serve {

/// Where to listen. Exactly one of unixPath / tcp must be chosen: a
/// non-empty unixPath wins; otherwise a loopback TCP socket is bound on
/// tcpPort (0 = ephemeral; see boundPort()).
struct Endpoint {
  std::string unixPath;
  std::uint16_t tcpPort = 0;
  bool tcp = false;
};

class Daemon {
 public:
  Daemon(const ServeConfig& cfg, Endpoint ep);
  ~Daemon();  // stop() if still running

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds, listens, and starts the I/O thread. False (with *err) on any
  /// socket failure.
  bool start(std::string* err);

  /// Clean shutdown: stop accepting, finish every admitted job (results
  /// are still delivered), then close connections and join. Idempotent.
  void stop();

  /// TCP only: the actually-bound port (useful with tcpPort == 0).
  std::uint16_t boundPort() const;

  /// JobRunner stats plus the daemon's own net.ctl.* / serve.connections
  /// counters — the podsd --stats-json payload.
  Counters stats() const;

  const ServeConfig& config() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace pods::serve
