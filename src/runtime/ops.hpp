// Shared arithmetic semantics for SP instructions.
//
// Both the PODS machine simulator and the baseline/sequential evaluators use
// these helpers, which guarantees bit-identical results across execution
// models — the property the determinism tests (Church-Rosser) rely on.
//
// Numeric rules: binary ops on two Ints are integer ops (Div truncates like
// C); if either side is Real the op is a double op. Comparisons yield Int
// 0/1. Transcendentals always produce Real.
#pragma once

#include <cmath>

#include "runtime/isa.hpp"
#include "runtime/value.hpp"
#include "support/check.hpp"

namespace pods {

/// True if the binary op will execute as a floating-point operation.
inline bool binIsReal(const Value& a, const Value& b) {
  return a.isReal() || b.isReal();
}

inline Value applyBin(Op op, const Value& a, const Value& b) {
  const bool real = binIsReal(a, b);
  switch (op) {
    case Op::ADD:
      return real ? Value::realv(a.asReal() + b.asReal())
                  : Value::intv(a.asInt() + b.asInt());
    case Op::SUB:
      return real ? Value::realv(a.asReal() - b.asReal())
                  : Value::intv(a.asInt() - b.asInt());
    case Op::MUL:
      return real ? Value::realv(a.asReal() * b.asReal())
                  : Value::intv(a.asInt() * b.asInt());
    case Op::DIV:
      if (real) return Value::realv(a.asReal() / b.asReal());
      PODS_CHECK_MSG(b.asInt() != 0, "integer division by zero");
      return Value::intv(a.asInt() / b.asInt());
    case Op::MOD:
      PODS_CHECK_MSG(b.asInt() != 0, "modulo by zero");
      return Value::intv(a.asInt() % b.asInt());
    case Op::POW:
      return Value::realv(std::pow(a.asReal(), b.asReal()));
    case Op::MIN2:
      if (real) return Value::realv(std::min(a.asReal(), b.asReal()));
      return Value::intv(std::min(a.asInt(), b.asInt()));
    case Op::MAX2:
      if (real) return Value::realv(std::max(a.asReal(), b.asReal()));
      return Value::intv(std::max(a.asInt(), b.asInt()));
    case Op::CMPLT:
      return Value::intv(real ? a.asReal() < b.asReal() : a.asInt() < b.asInt());
    case Op::CMPLE:
      return Value::intv(real ? a.asReal() <= b.asReal()
                              : a.asInt() <= b.asInt());
    case Op::CMPGT:
      return Value::intv(real ? a.asReal() > b.asReal() : a.asInt() > b.asInt());
    case Op::CMPGE:
      return Value::intv(real ? a.asReal() >= b.asReal()
                              : a.asInt() >= b.asInt());
    case Op::CMPEQ:
      return Value::intv(real ? a.asReal() == b.asReal()
                              : a.asInt() == b.asInt());
    case Op::CMPNE:
      return Value::intv(real ? a.asReal() != b.asReal()
                              : a.asInt() != b.asInt());
    case Op::AND:
      return Value::intv((a.asInt() != 0 && b.asInt() != 0) ? 1 : 0);
    case Op::OR:
      return Value::intv((a.asInt() != 0 || b.asInt() != 0) ? 1 : 0);
    default:
      PODS_UNREACHABLE("not a binary op");
  }
}

inline Value applyUn(Op op, const Value& a) {
  switch (op) {
    case Op::NEG:
      return a.isReal() ? Value::realv(-a.asReal()) : Value::intv(-a.asInt());
    case Op::ABS:
      return a.isReal() ? Value::realv(std::fabs(a.asReal()))
                        : Value::intv(a.asInt() < 0 ? -a.asInt() : a.asInt());
    case Op::SQRT: return Value::realv(std::sqrt(a.asReal()));
    case Op::EXP: return Value::realv(std::exp(a.asReal()));
    case Op::LOG: return Value::realv(std::log(a.asReal()));
    case Op::SIN: return Value::realv(std::sin(a.asReal()));
    case Op::COS: return Value::realv(std::cos(a.asReal()));
    case Op::FLOOR: return Value::realv(std::floor(a.asReal()));
    case Op::CVTI:
      return Value::intv(a.isInt() ? a.asInt()
                                   : static_cast<std::int64_t>(a.asReal()));
    case Op::CVTR: return Value::realv(a.asReal());
    case Op::NOT: return Value::intv(a.asInt() == 0 ? 1 : 0);
    case Op::MOV: return a;
    default:
      PODS_UNREACHABLE("not a unary op");
  }
}

inline bool isBinaryOp(Op op) {
  switch (op) {
    case Op::ADD: case Op::SUB: case Op::MUL: case Op::DIV: case Op::MOD:
    case Op::POW: case Op::MIN2: case Op::MAX2:
    case Op::CMPLT: case Op::CMPLE: case Op::CMPGT: case Op::CMPGE:
    case Op::CMPEQ: case Op::CMPNE: case Op::AND: case Op::OR:
      return true;
    default:
      return false;
  }
}

inline bool isUnaryOp(Op op) {
  switch (op) {
    case Op::NEG: case Op::ABS: case Op::SQRT: case Op::EXP: case Op::LOG:
    case Op::SIN: case Op::COS: case Op::FLOOR: case Op::CVTI: case Op::CVTR:
    case Op::NOT: case Op::MOV:
      return true;
    default:
      return false;
  }
}

}  // namespace pods
