// The Subcompact Process (SP) instruction set.
//
// The PODS Translator turns each code block of the dataflow graph (one per
// function body and per loop-nest level) into one SpCode: a *sequential*
// instruction stream over a frame of token slots. Execution within an SP is
// control-driven (a plain program counter); everything across SPs stays
// data-driven:
//
//  - an operand slot that is Empty disables the instruction and blocks the SP
//    (the PE then context-switches to another ready SP);
//  - SPs are instantiated by the arrival of argument tokens at the Matching
//    Unit (spawn-by-token, keyed by (sp code, context tag));
//  - array reads are split-phase: ARD clears its destination slot and issues
//    the request; the SP keeps running until some instruction actually uses
//    the slot.
//
// This is exactly the hybrid model of paper section 3.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/value.hpp"

namespace pods {

/// Sentinel for "no slot" operand.
inline constexpr std::uint16_t kNoSlot = 0xFFFF;

enum class Op : std::uint8_t {
  // ---- local compute (tokens produced and consumed within the SP) ----
  LIT,     // dst <- imm
  MOV,     // dst <- [a]
  ADD, SUB, MUL, DIV, MOD, POW, MIN2, MAX2,  // dst <- [a] op [b]
  NEG, ABS, SQRT, EXP, LOG, SIN, COS, FLOOR, // dst <- op [a]
  CVTI,    // dst <- int([a])   (truncation)
  CVTR,    // dst <- real([a])
  CMPLT, CMPLE, CMPGT, CMPGE, CMPEQ, CMPNE,  // dst <- Int 0/1
  AND, OR, NOT,                               // logical on Int

  // ---- control within the SP ----
  JMP,     // pc <- aux
  BRF,     // if ![a] then pc <- aux   (the switch operator, sequentialized)

  // ---- I-structure arrays ----
  ALLOC,   // dst <- new local array; dims [a] (and [b] if dim==2)
  ALLOCD,  // distributing allocate: same, pages spread over all PEs (4.1)
  ARD,     // split-phase read:  dst <- A[a][b(,c)]; clears dst, issues request
  AWR,     // single-assignment write: A[a][b(,c)] <- [dst]
  DIMQ,    // dst <- dimension `dim` of array [a]'s header (len/rows/cols)

  // ---- Range Filter support (4.2.2, Figure 5) ----
  RFLO,    // dst <- low bound of my responsibility range of array [a],
           //        filtered dim `dim`, subscript offset `off`;
           //        [b] = enclosing row index when dim == 1 (i-dependent)
  RFHI,    // dst <- high bound, same operands
  BLKLO,   // dst <- low bound of even block partition of [[a], [b]] (fallback)
  BLKHI,   // dst <- high bound of same
  MYPE,    // dst <- this PE's id
  NUMPE,   // dst <- number of PEs

  // ---- processes & tokens ----
  NEWCTX,  // dst <- fresh context tag (for spawning one child SP instance)
  MKCONT,  // dst <- continuation to (this frame, slot aux)
  SENDA,   // send [a] to SP code (aux>>16), ctx [b], slot (aux&0xFFFF), this PE
  SENDD,   // distributing send: same token broadcast to ALL PEs (the LD op)
  SENDC,   // send [a] to continuation [b]    (results back to parent)
  ADDC,    // send Int [a] as an *add* token to continuation [b] (join counters)
  AWAITN,  // block until counter slot [a] >= [b]  (completion join)
  CLEAR,   // mark slot a Empty (reuse of cross-SP-filled slots in loops)

  // ---- program results / termination ----
  RESULT,  // report [a] as program result #aux (main SP only)
  END      // SP terminates; frame is released
};

const char* opName(Op op);

/// True for ops whose cost is a pure Execution Unit operation (no other
/// functional unit involved and no effect outside the frame).
bool opIsLocalCompute(Op op);

struct Instr {
  Op op = Op::END;
  std::uint8_t dim = 0;          // array rank / filtered dimension
  std::uint16_t dst = kNoSlot;
  std::uint16_t a = kNoSlot;
  std::uint16_t b = kNoSlot;
  std::uint16_t c = kNoSlot;
  std::uint32_t aux = 0;         // jump target | (spCode<<16|slot) | cont slot | result idx
  std::int32_t off = 0;          // RF subscript offset
  Value imm{};                   // LIT payload

  static std::uint32_t packTarget(std::uint16_t spCode, std::uint16_t slot) {
    return (std::uint32_t(spCode) << 16) | slot;
  }
  std::uint16_t targetSp() const { return static_cast<std::uint16_t>(aux >> 16); }
  std::uint16_t targetSlot() const { return static_cast<std::uint16_t>(aux & 0xFFFF); }
};

enum class SpKind : std::uint8_t { Function, ForLoop, WhileLoop };

/// One Subcompact Process: the sequential code for one code block.
struct SpCode {
  std::uint16_t id = 0;
  std::string name;
  SpKind kind = SpKind::Function;
  std::uint16_t numSlots = 0;
  std::uint16_t numArgs = 0;          // argument tokens land in slots [0, numArgs)
  bool replicated = false;            // spawned via LD on every PE (4.2.1)
  std::vector<Instr> code;
  std::vector<std::string> slotNames; // debug info, parallel to slots

  std::string slotName(std::uint16_t s) const {
    if (s == kNoSlot) return "-";
    if (s < slotNames.size() && !slotNames[s].empty()) return slotNames[s];
    return "s" + std::to_string(s);
  }
};

/// A complete translated program: the output of Translator + Partitioner.
struct SpProgram {
  std::vector<SpCode> sps;
  std::uint16_t mainSp = 0;
  int numResults = 0;

  const SpCode& sp(std::uint16_t id) const { return sps.at(id); }
  std::size_t totalInstrs() const {
    std::size_t n = 0;
    for (const auto& s : sps) n += s.code.size();
    return n;
  }
  std::string disasm() const;
};

/// Human-readable listing of one SP (for tests and debugging).
std::string disasmSp(const SpCode& sp);

}  // namespace pods
