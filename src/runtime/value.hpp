// Runtime values ("tokens") exchanged between Subcompact Processes and stored
// in I-structure array elements and SP frame slots.
//
// A slot with Tag::Empty has no token yet: an instruction whose operand slot
// is Empty is *disabled*, which is what blocks an SP (paper section 3). The
// same emptiness encodes I-structure presence bits in array memory.
#pragma once

#include <cstdint>
#include <string>

#include "support/check.hpp"

namespace pods {

/// Global identifier of an I-structure array. IDs are minted PE-locally and
/// kept globally unique by striding them by the PE count (paper section 4.1:
/// "all PEs receive the same ID for the same array").
using ArrayId = std::uint32_t;

/// A continuation: the address of one slot of one SP frame on one PE.
/// Parents pass continuations to children so results / completion signals
/// can be sent back as tokens.
///
/// `gen` is a generation tag: runtimes that recycle retired frame storage
/// (the native machine's per-worker free list) bump the slot's generation on
/// every reuse, so a token addressed to a stale continuation is detected and
/// dropped instead of landing in an unrelated frame. Engines with
/// monotonically numbered frames (the simulator) leave it 0.
///
/// Packed layout (64 bits): pe:12 | gen:12 | frame:24 | slot:16. The field
/// widths mirror the machine limits (<= 4096 PEs, 16M live frames per PE);
/// pack() checks them so an overflow fails loudly instead of aliasing.
/// A generation wraps after 4096 reuses of one frame index — an erroneous
/// continuation held across a full wrap could alias, which we accept: within
/// one run, well-formed programs only send to live continuations.
struct Cont {
  std::uint16_t pe = 0;
  std::uint32_t frame = 0;
  std::uint16_t slot = 0;
  std::uint16_t gen = 0;

  static constexpr std::uint32_t kMaxFrame = (1u << 24) - 1;
  static constexpr std::uint16_t kGenMask = 0xFFF;

  std::uint64_t pack() const {
    PODS_CHECK_MSG(pe < (1u << 12) && frame <= kMaxFrame && gen <= kGenMask,
                   "continuation field out of packable range");
    return (std::uint64_t(pe) << 52) | (std::uint64_t(gen) << 40) |
           (std::uint64_t(frame) << 16) | slot;
  }
  static Cont unpack(std::uint64_t bits) {
    return Cont{static_cast<std::uint16_t>(bits >> 52),
                static_cast<std::uint32_t>((bits >> 16) & 0xFFFFFFULL),
                static_cast<std::uint16_t>(bits & 0xFFFFULL),
                static_cast<std::uint16_t>((bits >> 40) & 0xFFFULL)};
  }
};

enum class Tag : std::uint8_t { Empty, Int, Real, Array, Cont };

struct Value {
  Tag tag = Tag::Empty;
  union {
    std::int64_t i;
    double f;
    std::uint64_t bits;
  };

  Value() : bits(0) {}

  static Value intv(std::int64_t v) { Value x; x.tag = Tag::Int; x.i = v; return x; }
  static Value realv(double v) { Value x; x.tag = Tag::Real; x.f = v; return x; }
  static Value arrayv(ArrayId id) { Value x; x.tag = Tag::Array; x.bits = id; return x; }
  static Value contv(Cont c) { Value x; x.tag = Tag::Cont; x.bits = c.pack(); return x; }

  bool empty() const { return tag == Tag::Empty; }
  bool isInt() const { return tag == Tag::Int; }
  bool isReal() const { return tag == Tag::Real; }
  bool isArray() const { return tag == Tag::Array; }
  bool isCont() const { return tag == Tag::Cont; }
  bool isNumeric() const { return isInt() || isReal(); }

  std::int64_t asInt() const {
    PODS_CHECK_MSG(tag == Tag::Int, "value is not an int");
    return i;
  }
  double asReal() const {
    PODS_CHECK_MSG(isNumeric(), "value is not numeric");
    return tag == Tag::Real ? f : static_cast<double>(i);
  }
  ArrayId asArray() const {
    PODS_CHECK_MSG(tag == Tag::Array, "value is not an array id");
    return static_cast<ArrayId>(bits);
  }
  Cont asCont() const {
    PODS_CHECK_MSG(tag == Tag::Cont, "value is not a continuation");
    return Cont::unpack(bits);
  }
  /// Truthiness for branches: nonzero numeric.
  bool truthy() const {
    PODS_CHECK_MSG(isNumeric(), "branch condition is not numeric");
    return tag == Tag::Int ? i != 0 : f != 0.0;
  }

  /// Exact equality (same tag, same payload). Int 1 != Real 1.0.
  bool identical(const Value& o) const { return tag == o.tag && bits == o.bits; }

  std::string str() const;
};

inline std::string Value::str() const {
  switch (tag) {
    case Tag::Empty: return "<empty>";
    case Tag::Int: return std::to_string(i);
    case Tag::Real: {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%g", f);
      return buf;
    }
    case Tag::Array: return "arr#" + std::to_string(bits);
    case Tag::Cont: {
      Cont c = Cont::unpack(bits);
      return "cont(pe=" + std::to_string(c.pe) + ",fr=" + std::to_string(c.frame) +
             ",slot=" + std::to_string(c.slot) +
             (c.gen ? ",gen=" + std::to_string(c.gen) : "") + ")";
    }
  }
  return "<bad>";
}

}  // namespace pods
