#include "runtime/isa.hpp"

namespace pods {

const char* opName(Op op) {
  switch (op) {
    case Op::LIT: return "LIT";
    case Op::MOV: return "MOV";
    case Op::ADD: return "ADD";
    case Op::SUB: return "SUB";
    case Op::MUL: return "MUL";
    case Op::DIV: return "DIV";
    case Op::MOD: return "MOD";
    case Op::POW: return "POW";
    case Op::MIN2: return "MIN2";
    case Op::MAX2: return "MAX2";
    case Op::NEG: return "NEG";
    case Op::ABS: return "ABS";
    case Op::SQRT: return "SQRT";
    case Op::EXP: return "EXP";
    case Op::LOG: return "LOG";
    case Op::SIN: return "SIN";
    case Op::COS: return "COS";
    case Op::FLOOR: return "FLOOR";
    case Op::CVTI: return "CVTI";
    case Op::CVTR: return "CVTR";
    case Op::CMPLT: return "CMPLT";
    case Op::CMPLE: return "CMPLE";
    case Op::CMPGT: return "CMPGT";
    case Op::CMPGE: return "CMPGE";
    case Op::CMPEQ: return "CMPEQ";
    case Op::CMPNE: return "CMPNE";
    case Op::AND: return "AND";
    case Op::OR: return "OR";
    case Op::NOT: return "NOT";
    case Op::JMP: return "JMP";
    case Op::BRF: return "BRF";
    case Op::ALLOC: return "ALLOC";
    case Op::ALLOCD: return "ALLOCD";
    case Op::ARD: return "ARD";
    case Op::AWR: return "AWR";
    case Op::DIMQ: return "DIMQ";
    case Op::RFLO: return "RFLO";
    case Op::RFHI: return "RFHI";
    case Op::BLKLO: return "BLKLO";
    case Op::BLKHI: return "BLKHI";
    case Op::MYPE: return "MYPE";
    case Op::NUMPE: return "NUMPE";
    case Op::NEWCTX: return "NEWCTX";
    case Op::MKCONT: return "MKCONT";
    case Op::SENDA: return "SENDA";
    case Op::SENDD: return "SENDD";
    case Op::SENDC: return "SENDC";
    case Op::ADDC: return "ADDC";
    case Op::AWAITN: return "AWAITN";
    case Op::CLEAR: return "CLEAR";
    case Op::RESULT: return "RESULT";
    case Op::END: return "END";
  }
  return "?";
}

bool opIsLocalCompute(Op op) {
  switch (op) {
    case Op::LIT:
    case Op::MOV:
    case Op::ADD:
    case Op::SUB:
    case Op::MUL:
    case Op::DIV:
    case Op::MOD:
    case Op::POW:
    case Op::MIN2:
    case Op::MAX2:
    case Op::NEG:
    case Op::ABS:
    case Op::SQRT:
    case Op::EXP:
    case Op::LOG:
    case Op::SIN:
    case Op::COS:
    case Op::FLOOR:
    case Op::CVTI:
    case Op::CVTR:
    case Op::CMPLT:
    case Op::CMPLE:
    case Op::CMPGT:
    case Op::CMPGE:
    case Op::CMPEQ:
    case Op::CMPNE:
    case Op::AND:
    case Op::OR:
    case Op::NOT:
    case Op::JMP:
    case Op::BRF:
    case Op::BLKLO:
    case Op::BLKHI:
    case Op::MYPE:
    case Op::NUMPE:
    case Op::NEWCTX:
    case Op::MKCONT:
    case Op::CLEAR:
      return true;
    default:
      return false;
  }
}

std::string disasmSp(const SpCode& sp) {
  std::string out = "SP " + std::to_string(sp.id) + " '" + sp.name + "' ";
  switch (sp.kind) {
    case SpKind::Function: out += "[function]"; break;
    case SpKind::ForLoop: out += "[for-loop]"; break;
    case SpKind::WhileLoop: out += "[while-loop]"; break;
  }
  if (sp.replicated) out += " [replicated/LD]";
  out += " slots=" + std::to_string(sp.numSlots) +
         " args=" + std::to_string(sp.numArgs) + "\n";
  for (std::size_t pc = 0; pc < sp.code.size(); ++pc) {
    const Instr& in = sp.code[pc];
    char head[32];
    std::snprintf(head, sizeof head, "  %4zu: %-7s", pc, opName(in.op));
    out += head;
    auto slot = [&](std::uint16_t s) { return sp.slotName(s); };
    switch (in.op) {
      case Op::LIT:
        out += slot(in.dst) + " <- " + in.imm.str();
        break;
      case Op::JMP:
        out += "-> " + std::to_string(in.aux);
        break;
      case Op::BRF:
        out += "if !" + slot(in.a) + " -> " + std::to_string(in.aux);
        break;
      case Op::ALLOC:
      case Op::ALLOCD:
        out += slot(in.dst) + " <- dims(" + slot(in.a) +
               (in.dim == 2 ? "," + slot(in.b) : "") + ")";
        break;
      case Op::ARD:
        out += slot(in.dst) + " <- " + slot(in.a) + "[" + slot(in.b) +
               (in.c != kNoSlot ? "," + slot(in.c) : "") + "]";
        break;
      case Op::AWR:
        out += slot(in.a) + "[" + slot(in.b) +
               (in.c != kNoSlot ? "," + slot(in.c) : "") + "] <- " + slot(in.dst);
        break;
      case Op::RFLO:
      case Op::RFHI:
        out += slot(in.dst) + " <- rf(" + slot(in.a) + ", dim=" +
               std::to_string(in.dim) + ", off=" + std::to_string(in.off) +
               (in.b != kNoSlot ? ", row=" + slot(in.b) : "") + ")";
        break;
      case Op::SENDA:
      case Op::SENDD:
        out += slot(in.a) + " -> sp" + std::to_string(in.targetSp()) + ".slot" +
               std::to_string(in.targetSlot()) + " ctx=" + slot(in.b);
        break;
      case Op::SENDC:
      case Op::ADDC:
        out += slot(in.a) + " -> cont " + slot(in.b);
        break;
      case Op::AWAITN:
        out += "until " + slot(in.a) + " >= " + slot(in.b);
        break;
      case Op::MKCONT:
        out += slot(in.dst) + " <- cont(self, slot " + std::to_string(in.aux) + ")";
        break;
      case Op::RESULT:
        out += "#" + std::to_string(in.aux) + " <- " + slot(in.a);
        break;
      case Op::CLEAR:
        out += slot(in.a);
        break;
      case Op::END:
        break;
      default: {
        // Generic three-address rendering.
        if (in.dst != kNoSlot) out += slot(in.dst) + " <- ";
        if (in.a != kNoSlot) out += slot(in.a);
        if (in.b != kNoSlot) out += ", " + slot(in.b);
        if (in.c != kNoSlot) out += ", " + slot(in.c);
        break;
      }
    }
    out += "\n";
  }
  return out;
}

std::string SpProgram::disasm() const {
  std::string out;
  for (const SpCode& s : sps) {
    out += disasmSp(s);
    out += "\n";
  }
  return out;
}

}  // namespace pods
