#include "runtime/array_layout.hpp"

#include <algorithm>

namespace pods {

int ArrayLayout::pageOwner(std::int64_t page) const {
  // A zero-element array has no pages at all; treat page 0 of the empty
  // layout as home of PE 0 so callers probing a degenerate array get a
  // well-defined owner instead of dividing by numPages_ == 0.
  if (numPages_ == 0) {
    PODS_CHECK(page == 0);
    return 0;
  }
  PODS_CHECK(page >= 0 && page < numPages_);
  if (!pageSeg_.empty()) {
    for (int pe = 0; pe < numPEs_; ++pe)
      if (pageSeg_[pe].contains(page)) return pe;
    PODS_UNREACHABLE("migrated page segments do not cover all pages");
  }
  if (!weightSeg_.empty()) {
    for (int pe = 0; pe < numPEs_; ++pe)
      if (weightSeg_[pe].contains(page)) return pe;
    PODS_UNREACHABLE("weighted page segments do not cover all pages");
  }
  const std::int64_t q = numPages_ / numPEs_;
  const std::int64_t r = numPages_ % numPEs_;
  // First r PEs hold q+1 pages each, covering the first r*(q+1) pages.
  const std::int64_t firstBlock = r * (q + 1);
  if (page < firstBlock) return static_cast<int>(page / (q + 1));
  if (q == 0) return numPEs_ - 1;  // degenerate: fewer pages than PEs
  return static_cast<int>(r + (page - firstBlock) / q);
}

void ArrayLayout::buildWeightedSegments(
    const std::vector<std::int64_t>& peWeights) {
  PODS_CHECK_MSG(static_cast<int>(peWeights.size()) == numPEs_,
                 "peWeights must have one entry per PE");
  std::int64_t totalW = 0;
  for (const std::int64_t w : peWeights) {
    PODS_CHECK_MSG(w >= 1, "peWeights entries must be >= 1");
    PODS_CHECK_MSG(!__builtin_add_overflow(totalW, w, &totalW),
                   "peWeights sum overflows int64");
  }
  // Integer largest-remainder apportionment: PE i's ideal share is
  // numPages * w_i / totalW; floors are assigned first and the leftover
  // pages go to the largest fractional remainders, ties to the lower PE.
  // Equal weights reduce to q = numPages / numPEs with the first
  // numPages % numPEs PEs taking one extra page — exactly the uniform cut.
  std::vector<std::int64_t> count(static_cast<std::size_t>(numPEs_), 0);
  std::vector<std::int64_t> rem(static_cast<std::size_t>(numPEs_), 0);
  std::int64_t assigned = 0;
  for (int pe = 0; pe < numPEs_; ++pe) {
    std::int64_t quota = 0;
    PODS_CHECK_MSG(
        !__builtin_mul_overflow(numPages_, peWeights[static_cast<std::size_t>(pe)],
                                &quota),
        "numPages * weight overflows int64");
    count[static_cast<std::size_t>(pe)] = quota / totalW;
    rem[static_cast<std::size_t>(pe)] = quota % totalW;
    assigned += quota / totalW;
  }
  std::int64_t leftover = numPages_ - assigned;
  std::vector<int> order(static_cast<std::size_t>(numPEs_));
  for (int pe = 0; pe < numPEs_; ++pe) order[static_cast<std::size_t>(pe)] = pe;
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return rem[static_cast<std::size_t>(a)] > rem[static_cast<std::size_t>(b)];
  });
  for (int i = 0; leftover > 0; ++i, --leftover)
    count[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] += 1;
  weightSeg_.assign(static_cast<std::size_t>(numPEs_), IdxRange{});
  std::int64_t lo = 0;
  for (int pe = 0; pe < numPEs_; ++pe) {
    const std::int64_t n = count[static_cast<std::size_t>(pe)];
    if (n > 0) weightSeg_[static_cast<std::size_t>(pe)] = {lo, lo + n - 1};
    lo += n;
  }
  PODS_CHECK(lo == numPages_);
}

void ArrayLayout::migratePe(int deadPe) {
  PODS_CHECK(deadPe >= 0 && deadPe < numPEs_);
  if (dead_.empty()) dead_.assign(numPEs_, false);
  if (dead_[deadPe]) return;  // idempotent
  dead_[deadPe] = true;
  int survivors = 0;
  for (int pe = 0; pe < numPEs_; ++pe)
    if (!dead_[pe]) ++survivors;
  PODS_CHECK_MSG(survivors >= 1, "cannot migrate the last surviving PE");
  if (pageSeg_.empty()) {
    // Build into a local first: pageSegment() returns pageSeg_[pe] verbatim
    // once the remap vector is non-empty, so resizing pageSeg_ before
    // filling it would make every segment read back as empty.
    std::vector<IdxRange> segs(numPEs_);
    for (int pe = 0; pe < numPEs_; ++pe) segs[pe] = pageSegment(pe);
    pageSeg_ = std::move(segs);
  }
  IdxRange moved = pageSeg_[deadPe];
  pageSeg_[deadPe] = {};
  if (moved.empty()) return;  // nothing to hand over
  // Nearest surviving lower neighbor absorbs the block (its segment is
  // adjacent from below after any earlier merges); if the dead PE had no
  // live predecessor, the nearest higher survivor takes it instead.
  int heir = -1;
  for (int pe = deadPe - 1; pe >= 0; --pe)
    if (!dead_[pe]) { heir = pe; break; }
  if (heir < 0)
    for (int pe = deadPe + 1; pe < numPEs_; ++pe)
      if (!dead_[pe]) { heir = pe; break; }
  IdxRange& h = pageSeg_[heir];
  h = h.empty() ? moved
                : IdxRange{std::min(h.lo, moved.lo), std::max(h.hi, moved.hi)};
}

IdxRange ArrayLayout::ownedRows(int pe) const {
  PODS_CHECK(pe >= 0 && pe < numPEs_);
  if (shape_.numElems() == 0) return {};
  // PE p is responsible for row i iff it holds flat offset i*dim1.
  // Segments are contiguous in flat offsets, so responsible rows are the
  // contiguous range of i with segLo <= i*dim1 <= segHi.
  IdxRange seg = elemSegment(pe);
  if (seg.empty()) return {};
  const std::int64_t d1 = shape_.dim1;
  const std::int64_t lo = (seg.lo + d1 - 1) / d1;  // ceil(segLo / dim1)
  const std::int64_t hi = std::min(shape_.dim0 - 1, seg.hi / d1);
  return {lo, hi};
}

IdxRange ArrayLayout::ownedColsOfRow(int pe, std::int64_t row) const {
  PODS_CHECK(pe >= 0 && pe < numPEs_);
  if (row < 0 || row >= shape_.dim0) return {};
  IdxRange seg = elemSegment(pe);
  if (seg.empty()) return {};
  const std::int64_t base = row * shape_.dim1;
  const std::int64_t lo = std::max<std::int64_t>(0, seg.lo - base);
  const std::int64_t hi = std::min<std::int64_t>(shape_.dim1 - 1, seg.hi - base);
  return {lo, hi};
}

IdxRange blockPartition(std::int64_t lo, std::int64_t hi, int pe, int numPEs) {
  PODS_CHECK(numPEs >= 1 && pe >= 0 && pe < numPEs);
  if (lo > hi) return {};
  const std::int64_t n = hi - lo + 1;
  const std::int64_t q = n / numPEs;
  const std::int64_t r = n % numPEs;
  const std::int64_t start = lo + pe * q + std::min<std::int64_t>(pe, r);
  const std::int64_t len = q + (pe < r ? 1 : 0);
  return {start, start + len - 1};
}

}  // namespace pods
