#include "runtime/array_layout.hpp"

#include <algorithm>

namespace pods {

int ArrayLayout::pageOwner(std::int64_t page) const {
  PODS_CHECK(page >= 0 && page < std::max<std::int64_t>(numPages_, 1));
  const std::int64_t q = numPages_ / numPEs_;
  const std::int64_t r = numPages_ % numPEs_;
  // First r PEs hold q+1 pages each, covering the first r*(q+1) pages.
  const std::int64_t firstBlock = r * (q + 1);
  if (page < firstBlock) return static_cast<int>(page / (q + 1));
  if (q == 0) return numPEs_ - 1;  // degenerate: fewer pages than PEs
  return static_cast<int>(r + (page - firstBlock) / q);
}

IdxRange ArrayLayout::ownedRows(int pe) const {
  PODS_CHECK(pe >= 0 && pe < numPEs_);
  if (shape_.numElems() == 0) return {};
  // PE p is responsible for row i iff it holds flat offset i*dim1.
  // Segments are contiguous in flat offsets, so responsible rows are the
  // contiguous range of i with segLo <= i*dim1 <= segHi.
  IdxRange seg = elemSegment(pe);
  if (seg.empty()) return {};
  const std::int64_t d1 = shape_.dim1;
  const std::int64_t lo = (seg.lo + d1 - 1) / d1;  // ceil(segLo / dim1)
  const std::int64_t hi = std::min(shape_.dim0 - 1, seg.hi / d1);
  return {lo, hi};
}

IdxRange ArrayLayout::ownedColsOfRow(int pe, std::int64_t row) const {
  PODS_CHECK(pe >= 0 && pe < numPEs_);
  if (row < 0 || row >= shape_.dim0) return {};
  IdxRange seg = elemSegment(pe);
  if (seg.empty()) return {};
  const std::int64_t base = row * shape_.dim1;
  const std::int64_t lo = std::max<std::int64_t>(0, seg.lo - base);
  const std::int64_t hi = std::min<std::int64_t>(shape_.dim1 - 1, seg.hi - base);
  return {lo, hi};
}

IdxRange blockPartition(std::int64_t lo, std::int64_t hi, int pe, int numPEs) {
  PODS_CHECK(numPEs >= 1 && pe >= 0 && pe < numPEs);
  if (lo > hi) return {};
  const std::int64_t n = hi - lo + 1;
  const std::int64_t q = n / numPEs;
  const std::int64_t r = n % numPEs;
  const std::int64_t start = lo + pe * q + std::min<std::int64_t>(pe, r);
  const std::int64_t len = q + (pe < r ? 1 : 0);
  return {start, start + len - 1};
}

}  // namespace pods
