// Array partitioning & distribution math (paper section 4.1, Figures 4 and 6).
//
// An array is stored row-major, cut into pages of a fixed number of elements
// (32 on the iPSC/2), and the pages are grouped into contiguous segments of
// approximately equal size, one segment per PE, assigned sequentially. On top
// of that the *iteration space* of a loop writing the array is divided by the
// first-element-of-row ownership rule (section 4.2.3): the PE holding the
// first element of a row is responsible for the entire row.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "support/check.hpp"

namespace pods {

/// Shape of an I-structure array. rank 1 arrays use dim1 == 1 semantics
/// internally but are addressed with a single subscript.
struct ArrayShape {
  int rank = 1;
  std::int64_t dim0 = 0;  ///< rows (or length for rank 1)
  std::int64_t dim1 = 1;  ///< columns (1 for rank 1)

  /// Element count with an overflow-checked multiply: adversarial dims must
  /// fail loudly here instead of wrapping and corrupting paging math.
  std::int64_t numElems() const {
    std::int64_t n = 0;
    if (__builtin_mul_overflow(dim0, dim1, &n)) {
      char msg[96];
      std::snprintf(msg, sizeof msg,
                    "ArrayShape %lld x %lld overflows int64 element count",
                    static_cast<long long>(dim0), static_cast<long long>(dim1));
      checkFailed("dim0 * dim1 fits in int64", __FILE__, __LINE__, msg);
    }
    return n;
  }
  std::int64_t flatten(std::int64_t i, std::int64_t j) const { return i * dim1 + j; }
  bool inBounds(std::int64_t i, std::int64_t j) const {
    return i >= 0 && i < dim0 && j >= 0 && j < dim1;
  }
};

/// An inclusive range [lo, hi]; empty when lo > hi.
struct IdxRange {
  std::int64_t lo = 0;
  std::int64_t hi = -1;
  bool empty() const { return lo > hi; }
  std::int64_t size() const { return empty() ? 0 : hi - lo + 1; }
  bool contains(std::int64_t v) const { return v >= lo && v <= hi; }
};

/// Row-major page/segment layout of one array across the machine.
class ArrayLayout {
 public:
  ArrayLayout(ArrayShape shape, int numPEs, int pageElems)
      : ArrayLayout(shape, numPEs, pageElems, {}) {}

  /// Weight-parameterized ownership: PE i's page segment is sized
  /// proportionally to peWeights[i] (integer largest-remainder rounding, ties
  /// to the lower PE), segments staying contiguous and assigned in PE order.
  /// An empty weight vector — or all-equal weights — reproduces the uniform
  /// layout exactly. Everything downstream of pageSegment() (Range Filters,
  /// row ownership, recovery migration) inherits the skew unchanged.
  ArrayLayout(ArrayShape shape, int numPEs, int pageElems,
              const std::vector<std::int64_t>& peWeights)
      : shape_(shape), numPEs_(numPEs), pageElems_(pageElems) {
    PODS_CHECK(numPEs >= 1);
    PODS_CHECK(pageElems >= 1);
    PODS_CHECK(shape.numElems() >= 0);
    numPages_ = (shape.numElems() + pageElems - 1) / pageElems;
    if (!peWeights.empty()) buildWeightedSegments(peWeights);
  }

  const ArrayShape& shape() const { return shape_; }
  int numPEs() const { return numPEs_; }
  int pageElems() const { return pageElems_; }
  std::int64_t numPages() const { return numPages_; }

  std::int64_t pageOfOffset(std::int64_t offset) const { return offset / pageElems_; }

  /// Pages are grouped into numPEs contiguous segments of approximately equal
  /// size (the first `numPages % numPEs` PEs get one extra page). After a
  /// migratePe() the remap table takes over; segments stay contiguous because
  /// a dead PE's block is merged into an adjacent survivor's.
  IdxRange pageSegment(int pe) const {
    PODS_CHECK(pe >= 0 && pe < numPEs_);
    if (!pageSeg_.empty()) return pageSeg_[pe];
    if (!weightSeg_.empty()) return weightSeg_[pe];
    const std::int64_t q = numPages_ / numPEs_;
    const std::int64_t r = numPages_ % numPEs_;
    const std::int64_t lo = pe * q + std::min<std::int64_t>(pe, r);
    const std::int64_t n = q + (pe < r ? 1 : 0);
    if (n <= 0) return {};
    return {lo, lo + n - 1};
  }

  /// Ownership migration after a fail-stop: reassigns `deadPe`'s page
  /// segment to the nearest surviving neighbor (lower-numbered if one
  /// exists, else the next higher). Segments remain contiguous, so
  /// pageOwner / ownedRows / ownedColsOfRow stay disjoint and covering over
  /// the surviving PEs. Requires at least one survivor; idempotent per PE.
  void migratePe(int deadPe);

  bool migrated() const { return !pageSeg_.empty(); }
  bool weighted() const { return !weightSeg_.empty(); }
  bool peDead(int pe) const {
    PODS_CHECK(pe >= 0 && pe < numPEs_);
    return !dead_.empty() && dead_[pe];
  }

  /// Which PE owns a page.
  int pageOwner(std::int64_t page) const;

  /// Which PE owns a flat element offset.
  int ownerOfOffset(std::int64_t offset) const { return pageOwner(pageOfOffset(offset)); }

  /// Flat element range [lo, hi] held in this PE's local segment.
  IdxRange elemSegment(int pe) const {
    IdxRange pages = pageSegment(pe);
    if (pages.empty()) return {};
    return {pages.lo * pageElems_,
            std::min(shape_.numElems() - 1, (pages.hi + 1) * pageElems_ - 1)};
  }

  /// Rows this PE is *responsible for* under the first-element-of-row rule
  /// (section 4.2.3): pe owns row i iff it holds element (i, 0). The result
  /// ranges over all PEs are disjoint and cover [0, dim0).
  IdxRange ownedRows(int pe) const;

  /// Columns of row `row` whose elements live in this PE's segment (the
  /// i-dependent Range-Filter bounds of Figure 5). Disjoint across PEs and
  /// covering [0, dim1) for every row.
  IdxRange ownedColsOfRow(int pe, std::int64_t row) const;

 private:
  void buildWeightedSegments(const std::vector<std::int64_t>& peWeights);

  ArrayShape shape_;
  int numPEs_;
  int pageElems_;
  std::int64_t numPages_;
  // Weighted cut: empty for the uniform layout (the lazy q/r math applies),
  // else the per-PE page ranges computed once from the weights.
  std::vector<IdxRange> weightSeg_;
  // Migration remap: empty until the first migratePe(). Once populated,
  // pageSeg_[pe] is the authoritative (possibly empty) page range of pe.
  std::vector<IdxRange> pageSeg_;
  std::vector<bool> dead_;
};

/// Even block partitioning of an inclusive index range [lo, hi] over numPEs
/// (the paper's "simple global algorithm" fallback used when a loop's index
/// does not address the governing array's distributed dimension).
IdxRange blockPartition(std::int64_t lo, std::int64_t hi, int pe, int numPEs);

}  // namespace pods
