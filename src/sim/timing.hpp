// The simulator's timing model (paper section 5.1).
//
// All constants default to the values measured or assumed by the paper for
// the Intel iPSC/2 (16 MHz 80386/80387 with Direct-Connect modules). They
// are plain data so the ablation benches can override them.
#pragma once

#include "runtime/isa.hpp"
#include "support/simtime.hpp"

namespace pods::sim {

struct Timing {
  // --- Execution Unit instruction times, measured on the iPSC/2 (table in
  //     section 5.1) --------------------------------------------------------
  SimTime intAdd = usec(0.300);
  SimTime intSub = usec(0.300);
  SimTime bitLogical = usec(0.558);
  SimTime fNeg = usec(0.555);
  SimTime fCmp = usec(5.803);
  SimTime fPow = usec(96.418);
  SimTime fAbs = usec(12.626);
  SimTime fSqrt = usec(18.929);
  SimTime fMul = usec(7.217);
  SimTime fDiv = usec(10.707);
  SimTime fAdd = usec(6.753);
  SimTime fSub = usec(6.757);
  // Integer multiply/divide/compare are not in the paper's table; they are
  // derived from its 2.7 us local-array-read budget (1 int multiply + 1 int
  // add + 3 int comparisons + 1 local read = 2.7 us with read = 0.3 us).
  SimTime intMul = usec(1.200);
  SimTime intDiv = usec(2.400);
  SimTime intCmp = usec(0.300);
  // Transcendentals beyond the paper's table, extrapolated from fPow/fSqrt.
  SimTime fExp = usec(60.0);
  SimTime fLog = usec(60.0);
  SimTime fSin = usec(40.0);
  SimTime fCos = usec(40.0);

  // --- Execution Unit structural costs -------------------------------------
  SimTime contextSwitch = usec(1.312);   // 80386 CALL ptr16:32, worst case
  SimTime localArrayRead = usec(2.7);    // addr calc + 3 checks + read
  SimTime addrCalc = usec(2.4);          // addr calc + checks (writes, RF)

  // --- Memory Manager -------------------------------------------------------
  SimTime frameListOp = usec(0.9);       // 3 memory references

  // --- Matching Unit --------------------------------------------------------
  SimTime matchTime = usec(15.0);        // hash lookup on (SP id, frame ptr)

  // --- Array Manager (section 5.1 task table) -------------------------------
  SimTime memRead = usec(0.3);
  SimTime memWrite = usec(0.4);
  SimTime unitSignal = usec(1.0);        // signal between units on one PE
  SimTime enqueueRead = usec(2.9);       // push an early read: 3r + 5w
  SimTime allocArray = usec(100.0);

  // --- Routing Unit / network ----------------------------------------------
  // Dunigan: <=100 bytes -> 390 us; tokens are batched in groups of 20, so
  // each token costs 390/20 = 19.5 us of Routing Unit time.
  int tokenBatch = 20;
  SimTime smallMessage = usec(390.0);
  // Dunigan: > 100 bytes -> 697 + 0.4 * length us (page transfers).
  SimTime largeMessageBase = usec(697.0);
  SimTime perByte = usec(0.4);
  SimTime networkHop = usec(2.5);        // 100 MB/s, ~100 B, average 2.5 hops

  // --- Array layout ---------------------------------------------------------
  int pageElems = 32;  // "32 elements or approximately 2 kilobytes"
  int elemBytes = 8;   // we store 8-byte values; page messages are 256 bytes

  /// Routing Unit service time for one (batched) token.
  SimTime tokenRoute() const { return {smallMessage.ns / tokenBatch}; }

  /// Routing Unit service time for one page message.
  SimTime pageMessage() const {
    return largeMessageBase + perByte * (static_cast<std::int64_t>(pageElems) *
                                         elemBytes);
  }

  /// Execution Unit cost of one instruction. `realOp` selects the floating
  /// point cost for arithmetic executed on Real operands.
  SimTime euCost(Op op, bool realOp) const;
};

}  // namespace pods::sim
