#include "sim/machine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "proto/delivery.hpp"
#include "runtime/ops.hpp"
#include "sim/event_queue.hpp"
#include "support/check.hpp"
#include "support/recovery.hpp"

// Implementation notes.
//
// Event granularity: the Execution Unit executes straight-line runs of
// instructions inside one event dispatch, yielding back to the global queue
// whenever its local time passes the queue's next event time, so cross-PE
// interleaving is exact at instruction granularity. Array Manager tasks are
// single-phase: state mutations apply at task arrival while their *effects*
// (responses, page sends) are scheduled at the service-completion time; this
// makes state visible at most one AM service time early, which is a
// deterministic and negligible approximation. Frame creation charges the
// Memory Manager's list-operation time as busy work without delaying the
// first token's delivery (0.9 us, likewise negligible).
//
// Fault injection & reliable delivery: with any nonzero rate in
// MachineConfig::faults, every remote message (tokens, array messages,
// pages, broadcast copies) is carried by an ack/retransmit protocol instead
// of the direct push. The sender registers the message in a retransmit
// buffer, transmits a copy (which the seeded FaultPlan may drop, duplicate,
// or delay), and arms a timeout; the receiver deduplicates by message id —
// exactly-once delivery on top of an at-least-once wire, which is what makes
// non-idempotent tokens (ADDC join counters, spawn-by-token) safe — then
// acknowledges (acks roll their own fault dice; a lost ack just means one
// more retransmission gets suppressed). Timeouts back off exponentially.
// Everything runs in *simulated* time through the one global event queue,
// so a faulty run is bit-deterministic for a fixed seed. Stale timer events
// that fire after their message was acked are skipped without extending the
// reported completion time.
//
// Fail-stop recovery (kill mode, see support/recovery.hpp): a PeKill event
// wipes one PE's volatile state (frames, match table, caches, deferred-read
// queues, protocol dedup sets) and bumps its incarnation; a PeRestart event
// rebuilds it from the per-PE receive log and re-executes every frame that
// was live at the kill from pc 0. Local events from the old incarnation
// (EuKick, SlotFill) are dropped — re-execution regenerates them — while
// in-flight token and Array Manager deliveries are *held* and re-delivered
// after the rebuild, because their senders may have retired before the kill
// and will never resend. Logical send keys deduplicate everything a replay
// re-sends. Quiescence needs no special accounting: the PeRestart event
// keeps the queue non-empty across the dead window, and messages addressed
// to the dead PE are simply not acked, so the sender-side retransmit timers
// redeliver them after the restart.

namespace pods::sim {

const char* unitName(Unit u) {
  switch (u) {
    case Unit::EU: return "EU";
    case Unit::MU: return "MU";
    case Unit::MM: return "MM";
    case Unit::AM: return "AM";
    case Unit::RU: return "RU";
  }
  return "?";
}

namespace {

enum class FrameState : std::uint8_t { Ready, Running, Blocked, Dead };

struct Frame {
  std::uint16_t spCode = 0;
  std::uint64_t ctx = 0;
  std::uint32_t pc = 0;
  FrameState state = FrameState::Ready;
  std::uint16_t blockedSlot = kNoSlot;
  std::vector<Value> slots;
  // Kill mode: deterministic per-frame streams so a re-executed frame
  // reproduces the same send keys and minted identities.
  std::uint32_t sendSeq = 0;
  std::uint32_t mintSeq = 0;
  // Kill mode: true on frames rebuilt from the receive log. A replaying
  // frame only accepts continuation results from contexts it has re-sent to
  // (sentCtxs); earlier arrivals are parked so a multi-round slot cannot be
  // filled with a later round's value before the earlier round re-runs.
  bool replaying = false;
  std::unordered_set<std::uint64_t> sentCtxs;
};

struct Token {
  bool toCont = false;   // continuation-addressed vs (sp, ctx, slot)
  std::uint16_t spCode = 0;
  std::uint64_t ctx = 0;
  std::uint16_t slot = 0;
  Cont cont{};
  Value v{};
  bool add = false;  // join-counter token: add to the slot instead of set
  // Kill mode: logical identity of a continuation-addressed send, stable
  // under sender re-execution (msgIds are not — a replayed send is a new
  // message). 0 = unstamped (AM responses, which replay regenerates).
  std::uint64_t senderCtx = 0;
  std::uint64_t sendKey = 0;
};

/// Presence-mask snapshot of one cached remote page (up to 256 elems/page).
struct PageMask {
  std::array<std::uint64_t, 4> bits{};
  bool test(int i) const { return (bits[i >> 6] >> (i & 63)) & 1; }
  void set(int i) { bits[i >> 6] |= 1ULL << (i & 63); }
  void merge(const PageMask& o) {
    for (int i = 0; i < 4; ++i) bits[i] |= o.bits[i];
  }
};

struct AmTask {
  enum class Kind : std::uint8_t {
    Read,           // local SP reads (i0[,i1]) of arr -> cont
    Write,          // write value v at (i0[,i1]) of arr (local or forwarded)
    RemoteReadReq,  // another PE requests `offset` of arr (we are the owner)
    PageArrive,     // a fetched page lands here: install cache + respond
    Alloc,          // local distributing/plain allocate -> cont receives id
    AllocInstall,   // broadcast allocate arriving at a remote PE
    Rf,             // range-filter bound of arr (split-phase when deferred)
    DimQ,           // header dimension query (split-phase when deferred)
    ValueArrive,    // a deferred remote read completes with a value token
  };
  Kind kind = Kind::Read;
  ArrayId arr = 0;
  std::int64_t i0 = 0, i1 = 0;  // subscripts (Read/Write); Rf row in i0
  std::int64_t offset = 0;      // RemoteReadReq element / PageArrive page
  Value v{};                    // write value
  Cont cont{};                  // requester slot
  std::uint16_t fromPe = 0;     // requesting PE (RemoteReadReq) / home PE
  bool forwarded = false;       // Write arriving from the writing PE: the
                                // value is already committed; only wake
                                // deferred readers here
  std::uint8_t rank = 1;
  // Alloc / AllocInstall:
  ArrayShape shape{};
  bool distributed = false;
  // Kill mode, Alloc only: the minting frame's (ctx, mint sequence), so a
  // replayed allocation returns the original array id from the mint log.
  std::uint64_t senderCtx = 0;
  std::uint32_t mintSeq = 0;
  // Rf:
  std::uint8_t dim = 0;
  std::int32_t rfOff = 0;
  bool isHi = false;
  bool hasRow = false;
  // PageArrive:
  PageMask mask{};
};

enum class EvKind : std::uint8_t {
  EuKick,        // run the Execution Unit scheduler on a PE
  TokenAtMu,     // token arrival at a PE's Matching Unit
  TokenDeliver,  // MU done: deliver token into the frame
  AmArrive,      // task arrival at a PE's Array Manager
  SlotFill,      // direct response into a frame slot (AM -> EU path)
  NetDeliver,    // lossy mode: reliable message copy reaches the receiver
  NetAckArrive,  // lossy mode: acknowledgment reaches the sender
  NetTimeout,    // lossy mode: sender retransmit timer fires
  PeKill,        // kill mode: fail-stop one PE (wipe its volatile state)
  PeRestart,     // kill mode: rebuild the killed PE from its receive log
  LinkTimer,     // calendar engine: one link's earliest retransmit deadline
};

const char* evKindName(EvKind k) {
  switch (k) {
    case EvKind::EuKick: return "EuKick";
    case EvKind::TokenAtMu: return "TokenAtMu";
    case EvKind::TokenDeliver: return "TokenDeliver";
    case EvKind::AmArrive: return "AmArrive";
    case EvKind::SlotFill: return "SlotFill";
    case EvKind::NetDeliver: return "NetDeliver";
    case EvKind::NetAckArrive: return "NetAckArrive";
    case EvKind::NetTimeout: return "NetTimeout";
    case EvKind::PeKill: return "PeKill";
    case EvKind::PeRestart: return "PeRestart";
    case EvKind::LinkTimer: return "LinkTimer";
  }
  return "?";
}

struct Ev {
  SimTime t{};
  std::uint64_t seq = 0;
  EvKind kind = EvKind::EuKick;
  std::uint16_t pe = 0;
  Token tok{};
  AmTask am{};
  // Reliable-delivery fields (lossy mode only).
  std::uint64_t msgId = 0;   // NetDeliver / NetAckArrive / NetTimeout
  std::uint16_t netFrom = 0; // NetDeliver: sending PE (ack destination)
  std::uint32_t attempt = 0; // NetTimeout: transmission this timer covers
  bool isToken = false;      // NetDeliver payload discriminator
  // Kill mode: the target PE's incarnation when this (PE-local) event was
  // scheduled; a mismatch at dispatch means the PE died in between.
  std::uint32_t inc = 0;
};

struct EvLater {
  bool operator()(const Ev& a, const Ev& b) const {
    if (a.t.ns != b.t.ns) return a.t.ns > b.t.ns;
    return a.seq > b.seq;
  }
};

/// Deferred reads parked on one absent element (at its owner).
struct Deferred {
  std::vector<Cont> localWaiters;
  std::vector<std::uint16_t> remotePes;
};

struct PeState {
  // Execution memory.
  std::vector<Frame> frames;
  std::unordered_map<std::uint64_t, std::uint32_t> match;  // ctx -> frame
  std::deque<std::uint32_t> readyQ;
  std::int64_t current = -1;
  std::uint32_t lastFrame = 0xFFFFFFFFu;
  SimTime euFree{};
  bool kickScheduled = false;
  SimTime kickAt{};
  std::uint64_t ctxCounter = 0;

  // Unit resources (EU accounted separately through euFree/busy).
  std::array<SimTime, kNumUnits> unitFree{};
  std::array<SimTime, kNumUnits> unitBusy{};

  // Array Manager state.
  std::unordered_map<ArrayId, char> headers;  // headers installed here
  std::unordered_map<ArrayId, std::vector<AmTask>> pendingHeader;
  std::unordered_map<std::uint64_t, PageMask> cache;  // (arr<<24|page)
  std::unordered_map<ArrayId, std::unordered_map<std::int64_t, std::vector<Cont>>>
      pendingRemote;  // reads in flight to a remote owner
  std::unordered_map<ArrayId, std::unordered_map<std::int64_t, Deferred>>
      deferred;  // absent elements we own with waiting readers

  // Reliable-delivery receiver half (lossy mode): msgId dedup (so
  // retransmissions and injected duplicates are suppressed) and the
  // retired-instance ledger. NEWCTX never reuses a context, so a token
  // matching a retired context is a straggler its instance provably never
  // needed (the instance retired without it) — delivered late only because
  // injected delays/retransmits broke the network's normal FIFO order. It
  // must be discarded, not allowed to spawn a zombie instance. All of that
  // logic lives in proto::Delivery; this PE just drives it.
  proto::Delivery rx;

  // Kill mode.
  bool dead = false;           // inside the fail-stop window
  std::uint32_t incarnation = 0;
  ReplayDedup dedup;           // logical exactly-once filter (see recovery.hpp)
  // Logged continuation-addressed deliveries awaiting on-demand re-delivery
  // after a restart: sender ctx -> indices into the PE's receive log. They
  // are handed out when a re-executing frame re-sends to that sender's
  // context, which is exactly after the slot's CLEAR of the matching round.
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> pendingReplay;
};

/// Sender-side payload copy of one unacknowledged reliable message (lossy
/// mode). The attempt count lives in the proto::Delivery sender window.
struct RetxEntry {
  std::uint16_t fromPe = 0;
  std::uint16_t toPe = 0;
  bool isToken = false;
  bool pageSized = false;
  Token tok{};
  AmTask am{};
};

std::uint64_t pageKey(ArrayId arr, std::int64_t page) {
  return (static_cast<std::uint64_t>(arr) << 24) |
         static_cast<std::uint64_t>(page);
}

/// One Chrome-trace timeline slice.
struct TraceEv {
  std::uint16_t pe;
  std::uint8_t unit;
  const std::string* name;  // nullptr -> the unit's name
  SimTime start;
  SimTime dur;
};

}  // namespace

struct Machine::Impl {
  const SpProgram& prog;
  MachineConfig cfg;
  Timing tm;
  ArrayStore store;
  std::vector<PeState> pes;
  // Event engine: the calendar queue is the production path; the original
  // binary heap stays selectable (MachineConfig::eventEngine) as the
  // reference the fuzz suites diff against, bit for bit.
  const bool calendar;
  CalendarQueue<Ev> cq;
  std::priority_queue<Ev, std::vector<Ev>, EvLater> q;  // BinaryHeap engine
  std::int64_t heapPeak = 0;                            // BinaryHeap depth gauge
  std::uint64_t seq = 0;
  std::uint64_t eventsProcessed = 0;
  SimTime now{};
  // Live-SP tracking: PODS removed the k-bounded-loop throttling, so the
  // only bound on concurrently-live SP frames is data availability. The
  // peak is reported as counter "sp.peakLive".
  std::int64_t liveSps = 0;
  std::int64_t peakLiveSps = 0;
  RunStats stats;
  std::vector<bool> resultSet;
  int errorCount = 0;
  // Reliable-delivery sender half (lossy mode): the protocol core tracks
  // attempts/backoff/give-up; `retx` keeps the payload copies by id.
  FaultPlan plan;
  proto::Delivery sender;
  std::uint64_t netSeq = 0;  // message ids and fault-decision stream
  std::unordered_map<std::uint64_t, RetxEntry> retx;
  // Per-link traffic counter names, built lazily ("net.link.F->T.<what>").
  proto::LinkNameCache linkNames;
  // Calendar engine, lossy mode: per-link retransmit-timer collapse. Every
  // armed timeout still *reserves* a global sequence number (so the (t, seq)
  // stream — and with it every tie-break — matches the binary heap engine
  // exactly), but instead of one queue event per arm, each link keeps its
  // own little (deadline, seq) min-heap and the global queue carries at most
  // one live LinkTimer wakeup per link, keyed by the link's earliest
  // reserved (t, seq). Entries cancelled by an ack are pre-counted there
  // (the heap engine pops them later as stale events) and lazily discarded.
  struct TimerEnt {
    EvKey key;
    std::uint64_t msgId = 0;
    std::uint32_t attempt = 0;
  };
  struct TimerEntLater {
    bool operator()(const TimerEnt& a, const TimerEnt& b) const {
      return b.key < a.key;
    }
  };
  struct LinkTimerState {
    std::priority_queue<TimerEnt, std::vector<TimerEnt>, TimerEntLater> heap;
    EvKey scheduled{-1, 0};  // key of the in-flight wakeup; t < 0 = none
  };
  std::unordered_map<std::uint32_t, LinkTimerState> linkTimers;
  // msgId -> (link, reserved seq of its live timer): the ack path cancels
  // through this, and stale heap entries are recognized by its absence.
  std::unordered_map<std::uint64_t, std::pair<std::uint32_t, std::uint64_t>>
      armedTimers;
  // Calendar engine, kill mode: the (t, seq) key of the PeRestart event.
  // peKill triages every indexed event ordered before it; later ones take
  // the ordinary already-restarted dispatch path.
  EvKey restartKey_{-1, 0};
  bool killTriaged_ = false;
  // Completion time excluding stale retransmit timers that fire (and are
  // ignored) after the last real work; `now` still tracks the raw queue.
  SimTime lastUseful{};
  // Kill mode: per-PE stable recovery logs (conceptually off-PE storage —
  // they survive the fail-stop) and the events held during the dead window.
  std::vector<RecoveryLog> recLogs;
  std::vector<Ev> deadHeld;

  Impl(const SpProgram& p, MachineConfig c)
      : prog(p),
        cfg(c),
        tm(c.timing),
        store(c.numPEs, c.timing.pageElems, c.peWeights),
        pes(static_cast<std::size_t>(c.numPEs)),
        calendar(c.eventEngine == EventEngine::Calendar) {
    PODS_CHECK(c.numPEs >= 1 && c.numPEs <= 4096);
    PODS_CHECK_MSG(c.timing.pageElems >= 1 && c.timing.pageElems <= 256,
                   "pageElems must be in [1, 256]");
    PODS_CHECK_MSG(c.peWeights.empty() ||
                       static_cast<int>(c.peWeights.size()) == c.numPEs,
                   "peWeights must be empty or have one entry per PE");
    stats.busy.resize(static_cast<std::size_t>(c.numPEs));
    stats.results.resize(static_cast<std::size_t>(prog.numResults));
    resultSet.assign(static_cast<std::size_t>(prog.numResults), false);
    stats.spProfiles.resize(prog.sps.size());
    for (std::size_t i = 0; i < prog.sps.size(); ++i) {
      stats.spProfiles[i].name = prog.sps[i].name;
    }
    tracing = !cfg.tracePath.empty();
    plan = FaultPlan(c.faults);
    sender = proto::Delivery(c.faults.retry, /*faultsEnabled=*/true);
    for (PeState& P : pes)
      P.rx = proto::Delivery(c.faults.retry, /*faultsEnabled=*/true);
    if (killMode()) recLogs.resize(pes.size());
  }

  /// Memoized canonical per-link counter name.
  const std::string& linkName(std::uint16_t from, std::uint16_t to,
                              const char* what) {
    return linkNames.name(from, to, what);
  }

  /// True when the lossy network + reliable-delivery protocol is active.
  bool faulty() const { return plan.enabled(); }
  /// True when a fail-stop kill is scheduled (implies faulty()).
  bool killMode() const { return cfg.faults.killEnabled(); }

  // --- infrastructure ------------------------------------------------------

  void push(Ev ev) {
    ev.seq = ++seq;
    // Stamp PE-local events with the target's incarnation: if the PE dies
    // before the event fires, dispatch can tell it belongs to a lost life.
    bool peLocal = false;
    switch (ev.kind) {
      case EvKind::EuKick:
      case EvKind::TokenAtMu:
      case EvKind::TokenDeliver:
      case EvKind::AmArrive:
      case EvKind::SlotFill:
        ev.inc = pes[ev.pe].incarnation;
        peLocal = true;
        break;
      default:
        break;
    }
    if (calendar) {
      // Index the kill victim's PE-local events so peKill can collect them
      // without touching the rest of the queue. The single kill fires once;
      // after triage nothing new needs indexing.
      const bool indexed = peLocal && killMode() && !killTriaged_ &&
                           static_cast<int>(ev.pe) == cfg.faults.killPe;
      const EvKey key{ev.t.ns, ev.seq};
      cq.push(key, std::move(ev), indexed);
    } else {
      q.push(std::move(ev));
      if (static_cast<std::int64_t>(q.size()) > heapPeak)
        heapPeak = static_cast<std::int64_t>(q.size());
    }
  }

  // --- event-queue access (engine-neutral) ---------------------------------

  bool queueEmpty() {
    return calendar ? cq.empty() : q.empty();
  }

  /// `ghost` is set when the popped slot was already triaged at peKill time
  /// (calendar engine only): the payload is a copy of the triaged event and
  /// the pop must be counted but not re-dispatched.
  Ev popEvent(bool* ghost = nullptr) {
    if (ghost) *ghost = false;
    if (calendar) return cq.pop(nullptr, ghost);
    Ev ev = q.top();
    q.pop();
    return ev;
  }

  /// O(1) peek used by the EU's per-step yield check: is the global head
  /// strictly earlier than local time `t`?
  bool headEarlierThan(SimTime t) {
    if (calendar) {
      const EvKey* k = cq.peekKey();
      return k != nullptr && k->t < t.ns;
    }
    return !q.empty() && q.top().t < t;
  }

  void runtimeError(const std::string& msg) {
    if (errorCount++ == 0) stats.error = msg;
    stats.counters.add("runtime.errors");
  }

  /// Serial-resource scheduling: returns completion time, accrues busy time.
  SimTime unitSched(std::uint16_t pe, Unit u, SimTime ready, SimTime svc) {
    PeState& P = pes[pe];
    SimTime start = std::max(ready, P.unitFree[static_cast<int>(u)]);
    SimTime done = start + svc;
    P.unitFree[static_cast<int>(u)] = done;
    P.unitBusy[static_cast<int>(u)] += svc;
    if (tracing && svc.ns > 0) addTrace(pe, u, nullptr, start, svc);
    return done;
  }

  bool tracing = false;
  std::vector<TraceEv> trace;
  std::int64_t traceDropped = 0;

  void addTrace(std::uint16_t pe, Unit u, const std::string* name,
                SimTime start, SimTime dur) {
    if (trace.size() >= cfg.maxTraceEvents) {
      // Keep recording the *fact* of truncation: the counter counts every
      // drop and writeTrace() emits one marker event, so a consumer can
      // tell a short trace from a clipped one.
      stats.counters.add("trace.dropped");
      ++traceDropped;
      return;
    }
    trace.push_back({pe, static_cast<std::uint8_t>(u), name, start, dur});
  }

  void writeTrace() {
    std::FILE* f = std::fopen(cfg.tracePath.c_str(), "w");
    if (!f) {
      runtimeError("cannot open trace file " + cfg.tracePath);
      return;
    }
    std::fputs("{\"traceEvents\":[\n", f);
    bool first = true;
    for (const TraceEv& ev : trace) {
      const char* name =
          ev.name ? ev.name->c_str() : unitName(static_cast<Unit>(ev.unit));
      std::fprintf(f,
                   "%s{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%u,\"tid\":%u,"
                   "\"ts\":%.3f,\"dur\":%.3f}",
                   first ? "" : ",\n", name, ev.pe, ev.unit, ev.start.us(),
                   ev.dur.us());
      first = false;
    }
    if (traceDropped > 0) {
      // One instant marker at the end of the recorded window: the timeline
      // was truncated, not complete.
      SimTime lastEnd{};
      for (const TraceEv& ev : trace)
        lastEnd = std::max(lastEnd, ev.start + ev.dur);
      std::fprintf(f,
                   "%s{\"name\":\"trace truncated: %lld events dropped\","
                   "\"ph\":\"i\",\"pid\":0,\"tid\":0,\"ts\":%.3f,\"s\":\"g\"}",
                   first ? "" : ",\n",
                   static_cast<long long>(traceDropped), lastEnd.us());
      first = false;
    }
    // Thread names so the viewer shows EU/MU/MM/AM/RU lanes per PE.
    for (int pe = 0; pe < cfg.numPEs; ++pe) {
      for (int u = 0; u < kNumUnits; ++u) {
        std::fprintf(f,
                     ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,"
                     "\"tid\":%d,\"args\":{\"name\":\"%s\"}}",
                     pe, u, unitName(static_cast<Unit>(u)));
      }
    }
    std::fputs("\n]}\n", f);
    std::fclose(f);
  }

  void euBusy(std::uint16_t pe, SimTime span) {
    pes[pe].unitBusy[static_cast<int>(Unit::EU)] += span;
  }

  // --- reliable delivery over a lossy network (lossy mode only) ------------

  /// Transmits one copy of reliable message `msgId` onto the wire at `at`
  /// (the Routing Unit charge has already been paid), letting the seeded
  /// FaultPlan drop, duplicate, or delay it.
  void netTransmit(std::uint64_t msgId, const RetxEntry& e, SimTime at) {
    auto deliverAt = [&](SimTime when) {
      Ev ev;
      ev.t = when;
      ev.kind = EvKind::NetDeliver;
      ev.pe = e.toPe;
      ev.msgId = msgId;
      ev.netFrom = e.fromPe;
      ev.isToken = e.isToken;
      if (e.isToken) {
        ev.tok = e.tok;
      } else {
        ev.am = e.am;
      }
      push(std::move(ev));
    };
    const SimTime arrive = at + tm.networkHop;
    switch (plan.action(++netSeq)) {
      case FaultAction::Drop:
        stats.counters.add("fault.drops");
        break;  // the retransmit timer recovers it
      case FaultAction::Duplicate:
        stats.counters.add("fault.dups");
        deliverAt(arrive);
        deliverAt(arrive + tm.networkHop);
        break;
      case FaultAction::Delay:
        stats.counters.add("fault.delays");
        deliverAt(arrive + usec(cfg.faults.simDelayUs));
        break;
      case FaultAction::Deliver:
        deliverAt(arrive);
        break;
    }
  }

  static std::uint32_t linkOf(std::uint16_t from, std::uint16_t to) {
    return (static_cast<std::uint32_t>(from) << 16) | to;
  }

  void armTimeout(std::uint64_t msgId, std::uint32_t attempt, SimTime at) {
    if (!calendar) {
      Ev ev;
      ev.t = at;
      ev.kind = EvKind::NetTimeout;
      ev.msgId = msgId;
      ev.attempt = attempt;
      push(std::move(ev));
      return;
    }
    // Calendar engine: reserve the sequence number the binary heap engine
    // would have stamped on this timer event (keeping the global tie-break
    // stream identical), but park the entry in its link's local heap; the
    // global queue only carries the link's earliest deadline as a LinkTimer
    // wakeup.
    const std::uint64_t s = ++seq;
    auto it = retx.find(msgId);
    PODS_CHECK_MSG(it != retx.end(), "arming a timer for an unknown message");
    const std::uint32_t link = linkOf(it->second.fromPe, it->second.toPe);
    LinkTimerState& L = linkTimers[link];
    const TimerEnt ent{EvKey{at.ns, s}, msgId, attempt};
    armedTimers[msgId] = {link, s};
    L.heap.push(ent);
    scheduleLinkWakeup(link, L);
  }

  /// Ensures a LinkTimer wakeup is queued at the link heap's top key.
  /// Invariant: the top entry — live or ack-cancelled — always has a wakeup
  /// at exactly its reserved (t, seq), so the global queue presents the
  /// same head times the binary heap engine would (cancelled entries pop as
  /// no-ops at their reserved position, just like the heap engine's stale
  /// NetTimeout events). Superseded wakeups from previously later heads
  /// stay queued; the key guard at dispatch neutralizes them.
  void scheduleLinkWakeup(std::uint32_t link, LinkTimerState& L) {
    if (L.heap.empty()) {
      L.scheduled = EvKey{-1, 0};
      return;
    }
    const EvKey k = L.heap.top().key;
    if (L.scheduled == k) return;
    L.scheduled = k;
    Ev ev;
    ev.t = SimTime{k.t};
    ev.seq = k.seq;  // ride the entry's reserved sequence number
    ev.kind = EvKind::LinkTimer;
    ev.msgId = link;
    cq.push(k, std::move(ev), /*indexed=*/false);
  }

  /// A link's wakeup fired: pop the heap top it was scheduled for (unless a
  /// duplicate wakeup already consumed it), run it if it is still armed —
  /// an ack may have cancelled it, making this pop the no-op the heap
  /// engine's stale-timer pop would have been — and re-schedule the next
  /// head.
  void linkTimerFire(Ev& ev) {
    const std::uint32_t link = static_cast<std::uint32_t>(ev.msgId);
    auto lit = linkTimers.find(link);
    if (lit == linkTimers.end()) return;
    LinkTimerState& L = lit->second;
    const EvKey k{ev.t.ns, ev.seq};
    if (L.scheduled == k) L.scheduled = EvKey{-1, 0};
    if (!L.heap.empty() && L.heap.top().key == k) {
      const TimerEnt ent = L.heap.top();
      L.heap.pop();
      auto a = armedTimers.find(ent.msgId);
      if (a != armedTimers.end() && a->second.second == ent.key.seq) {
        armedTimers.erase(a);
        // This is the pop the binary heap engine counts for the NetTimeout
        // event carrying this reserved sequence number. (Cancelled entries
        // were pre-counted when their ack arrived.)
        ++eventsProcessed;
        fireTimeout(ent.msgId, ent.attempt, ev.t);
      }
    }
    // fireTimeout may have re-armed (rehash risk on linkTimers): re-find.
    scheduleLinkWakeup(link, linkTimers[link]);
  }

  /// Entry point of the reliable-delivery layer: registers the message in
  /// the retransmit buffer, transmits the first copy, and arms the timeout.
  /// `sentAt` is the Routing Unit completion time of the initial injection.
  void netSend(std::uint16_t fromPe, std::uint16_t toPe, SimTime sentAt,
               bool isToken, bool pageSized, Token tok, AmTask am) {
    const std::uint64_t msgId = ++netSeq;
    RetxEntry e;
    e.fromPe = fromPe;
    e.toPe = toPe;
    e.isToken = isToken;
    e.pageSized = pageSized;
    e.tok = std::move(tok);
    e.am = std::move(am);
    auto [it, inserted] = retx.emplace(msgId, std::move(e));
    PODS_CHECK(inserted);
    sender.onSend(msgId);
    netTransmit(msgId, it->second, sentAt);
    armTimeout(msgId, 1, sentAt + usec(sender.initialRtoUs()));
  }

  /// Receiver side: dedup, dispatch to MU/AM, inject the optional PE stall,
  /// and acknowledge (again — a duplicate means our previous ack may have
  /// been lost, so re-ack unconditionally). Returns true when the message
  /// was fresh (delivered payload, not a suppressed duplicate).
  bool netDeliver(Ev& ev) {
    PeState& P = pes[ev.pe];
    if (P.dead) {
      // A dead PE neither receives nor acknowledges: the sender's
      // retransmit timer re-offers the message until after the restart.
      stats.counters.add("fault.deadDrops");
      return false;
    }
    const bool fresh = P.rx.accept(ev.msgId);
    if (fresh) {
      if (plan.stallHit(++netSeq)) {
        stats.counters.add("fault.stalls");
        const SimTime stallEnd = ev.t + usec(cfg.faults.simStallUs);
        if (stallEnd > P.euFree) P.euFree = stallEnd;
      }
      Ev fwd;
      fwd.t = ev.t;
      fwd.pe = ev.pe;
      if (ev.isToken) {
        fwd.kind = EvKind::TokenAtMu;
        fwd.tok = std::move(ev.tok);
      } else {
        fwd.kind = EvKind::AmArrive;
        fwd.am = std::move(ev.am);
      }
      push(std::move(fwd));
    }
    const SimTime done =
        unitSched(ev.pe, Unit::RU, ev.t + tm.unitSignal, tm.tokenRoute());
    P.rx.count(proto::kAcks);
    auto ackAt = [&](SimTime when) {
      Ev ack;
      ack.t = when;
      ack.kind = EvKind::NetAckArrive;
      ack.pe = ev.netFrom;
      ack.msgId = ev.msgId;
      push(std::move(ack));
    };
    const SimTime arrive = done + tm.networkHop;
    switch (plan.action(++netSeq)) {
      case FaultAction::Drop:
        stats.counters.add("fault.drops");
        break;  // sender retransmits; we will dedup and re-ack
      case FaultAction::Duplicate:
        stats.counters.add("fault.dups");
        ackAt(arrive);
        ackAt(arrive + tm.networkHop);  // second copy erases nothing
        break;
      case FaultAction::Delay:
        stats.counters.add("fault.delays");
        ackAt(arrive + usec(cfg.faults.simDelayUs));
        break;
      case FaultAction::Deliver:
        ackAt(arrive);
        break;
    }
    return fresh;
  }

  /// Sender side: a retransmit timer fired. Stale timers (message already
  /// acked, or superseded by a newer transmission's timer) are ignored and
  /// do not count as progress; live ones pay the Routing Unit again and
  /// back off exponentially. Returns true when the event did real work.
  /// Shared by both engines: the heap engine calls it from NetTimeout
  /// events, the calendar engine from linkTimerFire().
  bool fireTimeout(std::uint64_t msgId, std::uint32_t attempt, SimTime t) {
    auto it = retx.find(msgId);
    if (it == retx.end()) return false;
    const proto::TimeoutDecision d =
        sender.onTimeout(msgId, static_cast<int>(attempt));
    switch (d.kind) {
      case proto::TimeoutDecision::Kind::Stale:
        return false;
      case proto::TimeoutDecision::Kind::GiveUp:
        runtimeError("reliable delivery gave up on a message to PE " +
                     std::to_string(it->second.toPe) + " after " +
                     std::to_string(d.attempt) + " attempts");
        retx.erase(it);
        return true;
      case proto::TimeoutDecision::Kind::Retransmit:
        break;
    }
    RetxEntry& e = it->second;
    stats.counters.add(linkName(e.fromPe, e.toPe, "retx"));
    const SimTime svc = e.pageSized ? tm.pageMessage() : tm.tokenRoute();
    const SimTime done = unitSched(e.fromPe, Unit::RU, t, svc);
    netTransmit(msgId, e, done);
    armTimeout(msgId, static_cast<std::uint32_t>(d.attempt),
               done + usec(d.backoffUs));
    return true;
  }

  // --- token plumbing ------------------------------------------------------

  /// EU (or AM) hands a token to this PE's Matching Unit.
  void tokenToLocalMu(std::uint16_t pe, SimTime t, Token tok) {
    Ev ev;
    ev.t = t + tm.unitSignal;
    ev.kind = EvKind::TokenAtMu;
    ev.pe = pe;
    ev.tok = std::move(tok);
    push(std::move(ev));
  }

  /// EU (or AM) sends a token to another PE through the Routing Unit.
  void tokenToRemote(std::uint16_t fromPe, std::uint16_t toPe, SimTime t,
                     Token tok) {
    SimTime done = unitSched(fromPe, Unit::RU, t + tm.unitSignal, tm.tokenRoute());
    stats.counters.add("net.tokens");
    stats.counters.add(linkName(fromPe, toPe, "tokens"));
    if (faulty()) {
      netSend(fromPe, toPe, done, /*isToken=*/true, /*pageSized=*/false,
              std::move(tok), AmTask{});
      return;
    }
    Ev ev;
    ev.t = done + tm.networkHop;
    ev.kind = EvKind::TokenAtMu;
    ev.pe = toPe;
    ev.tok = std::move(tok);
    push(std::move(ev));
  }

  void sendToken(std::uint16_t fromPe, std::uint16_t toPe, SimTime t, Token tok) {
    if (fromPe == toPe) {
      tokenToLocalMu(fromPe, t, std::move(tok));
    } else {
      tokenToRemote(fromPe, toPe, t, std::move(tok));
    }
  }

  /// The distributing LD operator's token replication. The Routing Unit
  /// forms the message once (one batched-token charge, as for any send); the
  /// hypercube's Direct-Connect routing replicates it along a spanning tree
  /// without involving intermediate CPUs, so every PE's Matching Unit — not
  /// the sender's Routing Unit — pays the per-copy cost. This keeps the RU
  /// lightly loaded, as the paper's Figure 8 reports.
  void broadcastToken(std::uint16_t fromPe, SimTime t, const Token& tok) {
    SimTime done =
        unitSched(fromPe, Unit::RU, t + tm.unitSignal, tm.tokenRoute());
    stats.counters.add("net.broadcastTokens");
    for (int dest = 0; dest < cfg.numPEs; ++dest) {
      if (dest == fromPe) {
        tokenToLocalMu(fromPe, t, tok);
        continue;
      }
      stats.counters.add(
          linkName(fromPe, static_cast<std::uint16_t>(dest), "tokens"));
      if (faulty()) {
        // Every spanning-tree copy is its own reliable message.
        netSend(fromPe, static_cast<std::uint16_t>(dest), done,
                /*isToken=*/true, /*pageSized=*/false, tok, AmTask{});
        continue;
      }
      Ev ev;
      ev.t = done + tm.networkHop;
      ev.kind = EvKind::TokenAtMu;
      ev.pe = static_cast<std::uint16_t>(dest);
      ev.tok = tok;
      push(std::move(ev));
    }
  }

  /// AM task transfer to another PE's AM (read requests, forwarded writes,
  /// allocate broadcasts ride token-sized messages; pages use the page cost).
  void amToRemote(std::uint16_t fromPe, std::uint16_t toPe, SimTime t,
                  AmTask task, bool pageSized) {
    SimTime svc = pageSized ? tm.pageMessage() : tm.tokenRoute();
    SimTime done = unitSched(fromPe, Unit::RU, t + tm.unitSignal, svc);
    stats.counters.add(pageSized ? "net.pages" : "net.arrayMsgs");
    stats.counters.add(linkName(fromPe, toPe, pageSized ? "pages" : "arrayMsgs"));
    if (faulty()) {
      netSend(fromPe, toPe, done, /*isToken=*/false, pageSized, Token{},
              std::move(task));
      return;
    }
    Ev ev;
    ev.t = done + tm.networkHop;
    ev.kind = EvKind::AmArrive;
    ev.pe = toPe;
    ev.am = std::move(task);
    push(std::move(ev));
  }

  void amLocal(std::uint16_t pe, SimTime t, AmTask task) {
    Ev ev;
    ev.t = t + tm.unitSignal;
    ev.kind = EvKind::AmArrive;
    ev.pe = pe;
    ev.am = std::move(task);
    push(std::move(ev));
  }

  void fillSlotLater(std::uint16_t pe, SimTime t, Cont cont, Value v) {
    PODS_CHECK(cont.pe == pe);  // responses are delivered on the owner PE path
    Ev ev;
    ev.t = t;
    ev.kind = EvKind::SlotFill;
    ev.pe = pe;
    ev.tok.toCont = true;
    ev.tok.cont = cont;
    ev.tok.v = v;
    push(std::move(ev));
  }

  // --- Execution Unit ------------------------------------------------------

  void pushKick(std::uint16_t pe, SimTime t) {
    PeState& P = pes[pe];
    SimTime want = std::max(t, P.euFree);
    if (P.kickScheduled && P.kickAt <= want) return;
    P.kickScheduled = true;
    P.kickAt = want;
    Ev ev;
    ev.t = want;
    ev.kind = EvKind::EuKick;
    ev.pe = pe;
    push(std::move(ev));
  }

  void wakeIfBlockedOn(std::uint16_t pe, std::uint32_t frameIdx,
                       std::uint16_t slot, SimTime t) {
    PeState& P = pes[pe];
    Frame& f = P.frames[frameIdx];
    if (f.state == FrameState::Blocked && f.blockedSlot == slot) {
      f.state = FrameState::Ready;
      f.blockedSlot = kNoSlot;
      P.readyQ.push_back(frameIdx);
      pushKick(pe, t);
    }
  }

  std::uint32_t createFrame(std::uint16_t pe, std::uint16_t spCode,
                            std::uint64_t ctx, SimTime t) {
    PeState& P = pes[pe];
    const SpCode& sp = prog.sp(spCode);
    unitSched(pe, Unit::MM, t, tm.frameListOp);  // execution-memory allocation
    Frame f;
    f.spCode = spCode;
    f.ctx = ctx;
    f.slots.assign(sp.numSlots, Value{});
    f.state = FrameState::Ready;
    std::uint32_t idx = static_cast<std::uint32_t>(P.frames.size());
    P.frames.push_back(std::move(f));
    P.match[ctx] = idx;
    P.readyQ.push_back(idx);
    stats.counters.add("sp.instantiated");
    ++stats.spProfiles[spCode].instances;
    peakLiveSps = std::max(peakLiveSps, ++liveSps);
    pushKick(pe, t);
    return idx;
  }

  /// `fromMu` distinguishes real token traffic (logged + logically
  /// deduplicated in kill mode) from local Array Manager slot fills, which
  /// a replayed frame regenerates by re-issuing its requests.
  void deliverToken(std::uint16_t pe, SimTime t, const Token& tok,
                    bool fromMu) {
    PeState& P = pes[pe];
    std::uint32_t frameIdx;
    std::uint16_t slot;
    if (tok.toCont) {
      frameIdx = tok.cont.frame;
      slot = tok.cont.slot;
      if (frameIdx >= P.frames.size() ||
          P.frames[frameIdx].state == FrameState::Dead) {
        stats.counters.add("tokens.dropped");
        return;
      }
      Frame& fr = P.frames[frameIdx];
      if (killMode() && fromMu && tok.sendKey != 0 &&
          !P.dedup.firstCont(fr.ctx, tok.senderCtx, tok.sendKey)) {
        // A re-executed sender re-sent this logical token (or a held copy
        // raced a replayed one): it was already applied exactly once. The
        // ledger is keyed by the *consumer's* context — safe because dead
        // consumers drop their tokens above, before dedup is consulted —
        // so END can prune a retired instance's keys.
        stats.counters.add("tokens.replayDup");
        return;
      }
      if (killMode() && fromMu && tok.sendKey != 0 && fr.replaying &&
          fr.sentCtxs.count(tok.senderCtx) == 0) {
        // Fresh result racing the replay (e.g. a survivor child finishing
        // after the restart): the rebuilt consumer has not re-sent to this
        // context yet, so applying now could clobber an earlier round's
        // slot. Park it; the re-send trigger delivers it in program order.
        P.pendingReplay[tok.senderCtx].push_back(recLogs[pe].entries.size());
        logToken(pe, tok, frameIdx);
        stats.counters.add("recovery.parkedEarly");
        return;
      }
    } else {
      if (killMode() && fromMu && !P.dedup.firstCtx(tok.ctx, tok.slot)) {
        stats.counters.add("tokens.replayDup");
        return;
      }
      auto it = P.match.find(tok.ctx);
      if (it == P.match.end()) {
        if (faulty() && P.rx.straggler(tok.ctx)) {
          // Straggler to a retired instance: reordered by injected delay or
          // retransmission. Spawning here would create a zombie frame.
          return;
        }
        frameIdx = createFrame(pe, tok.spCode, tok.ctx, t);
      } else {
        frameIdx = it->second;
      }
      slot = tok.slot;
    }
    if (killMode() && fromMu) logToken(pe, tok, frameIdx);
    Frame& f = P.frames[frameIdx];
    PODS_CHECK_MSG(slot < f.slots.size(), "token slot out of range");
    if (tok.add) {
      std::int64_t cur = f.slots[slot].empty() ? 0 : f.slots[slot].asInt();
      f.slots[slot] = Value::intv(cur + tok.v.asInt());
    } else {
      f.slots[slot] = tok.v;
    }
    wakeIfBlockedOn(pe, frameIdx, slot, t);
  }

  /// Appends one applied delivery to the PE's stable receive log.
  void logToken(std::uint16_t pe, const Token& tok, std::uint32_t frameIdx) {
    RecEntry e;
    if (tok.toCont) {
      e.kind = RecEntry::Kind::ConToken;
      e.frame = frameIdx;
      e.slot = tok.cont.slot;
      e.senderCtx = tok.senderCtx;
      e.sendKey = tok.sendKey;
      e.add = tok.add;
    } else {
      e.kind = RecEntry::Kind::CtxToken;
      e.ctx = tok.ctx;
      e.slot = tok.slot;
      e.spCode = tok.spCode;
    }
    e.v = tok.v;
    recLogs[pe].entries.push_back(e);
  }

  // --- per-instruction execution -------------------------------------------

  enum class StepResult { Continue, Blocked, Ended };

  bool ensure(PeState& P, Frame& f, std::uint16_t slot) {
    (void)P;
    if (slot == kNoSlot) return true;
    if (!f.slots[slot].empty()) return true;
    f.state = FrameState::Blocked;
    f.blockedSlot = slot;
    return false;
  }

  /// True when the header of `arr` is installed on `pe`.
  bool headerPresent(std::uint16_t pe, ArrayId arr) const {
    return pes[pe].headers.count(arr) != 0;
  }

  /// Computes the flat offset; returns false (and records an error) on a
  /// bad subscript.
  bool resolveOffset(const ArrayInfo& info, std::int64_t i0, std::int64_t i1,
                     std::int64_t& offset) {
    if (info.shape.rank == 1) {
      if (i0 < 0 || i0 >= info.shape.dim0 * info.shape.dim1) return false;
      offset = i0;
      return true;
    }
    if (!info.shape.inBounds(i0, i1)) return false;
    offset = info.shape.flatten(i0, i1);
    return true;
  }

  /// Range-filter bounds (both ends) for array `arr` on `pe`.
  IdxRange rfRange(std::uint16_t pe, const ArrayInfo& info, std::uint8_t dim,
                   bool hasRow, std::int64_t row) const {
    if (!info.distributed) {
      // Undistributed array: its single home PE is responsible for all of it.
      if (static_cast<int>(pe) != info.homePe) return {};
      if (dim == 0) return {0, info.shape.rank == 1
                                   ? info.shape.numElems() - 1
                                   : info.shape.dim0 - 1};
      return {0, info.shape.dim1 - 1};
    }
    if (dim == 0) return info.layout.ownedRows(pe);
    PODS_CHECK(hasRow);
    return info.layout.ownedColsOfRow(pe, row);
  }

  StepResult step(std::uint16_t pe, SimTime& t, Frame& f) {
    PeState& P = pes[pe];
    const SpCode& sp = prog.sp(f.spCode);
    PODS_CHECK_MSG(f.pc < sp.code.size(), "pc ran off the end of an SP");
    const Instr& in = sp.code[f.pc];

    // Operand availability: blocking on an empty slot is the data-driven part
    // of the hybrid model.
    switch (in.op) {
      case Op::LIT: case Op::JMP: case Op::MYPE: case Op::NUMPE:
      case Op::NEWCTX: case Op::MKCONT: case Op::CLEAR: case Op::END:
        break;
      case Op::AWAITN:
        if (!ensure(P, f, in.b)) return StepResult::Blocked;
        break;
      case Op::AWR:
        if (!ensure(P, f, in.a) || !ensure(P, f, in.b) ||
            !ensure(P, f, in.c) || !ensure(P, f, in.dst))
          return StepResult::Blocked;
        break;
      case Op::RFLO: case Op::RFHI:
        if (!ensure(P, f, in.a) || !ensure(P, f, in.b))
          return StepResult::Blocked;
        break;
      default:
        if (!ensure(P, f, in.a)) return StepResult::Blocked;
        if (!ensure(P, f, in.b)) return StepResult::Blocked;
        if (!ensure(P, f, in.c)) return StepResult::Blocked;
        break;
    }

    SpProfile& profile = stats.spProfiles[f.spCode];
    auto charge = [&](bool realOp) {
      SimTime c = tm.euCost(in.op, realOp);
      t += c;
      euBusy(pe, c);
      ++profile.instructions;
      profile.euTime += c;
    };

    std::uint32_t nextPc = f.pc + 1;

    if (isBinaryOp(in.op)) {
      const Value& a = f.slots[in.a];
      const Value& b = f.slots[in.b];
      charge(binIsReal(a, b));
      f.slots[in.dst] = applyBin(in.op, a, b);
      f.pc = nextPc;
      return StepResult::Continue;
    }
    if (isUnaryOp(in.op)) {
      const Value& a = f.slots[in.a];
      charge(a.isReal());
      f.slots[in.dst] = applyUn(in.op, a);
      f.pc = nextPc;
      return StepResult::Continue;
    }

    switch (in.op) {
      case Op::LIT:
        charge(false);
        f.slots[in.dst] = in.imm;
        break;
      case Op::JMP:
        charge(false);
        nextPc = in.aux;
        break;
      case Op::BRF:
        charge(false);
        if (!f.slots[in.a].truthy()) nextPc = in.aux;
        break;
      case Op::MYPE:
        charge(false);
        f.slots[in.dst] = Value::intv(pe);
        break;
      case Op::NUMPE:
        charge(false);
        f.slots[in.dst] = Value::intv(cfg.numPEs);
        break;
      case Op::NEWCTX:
        charge(false);
        if (killMode()) {
          // Idempotent mint: the n-th NEWCTX of a replayed frame must
          // return the context it handed out before the kill — children
          // spawned under it (and their continuations back to us) already
          // carry that identity. The counter lives in the stable log so a
          // restart never re-mints a pre-kill context.
          RecoveryLog& L = recLogs[pe];
          const std::uint32_t mseq = f.mintSeq++;
          if (const Value* m = L.findMint(f.ctx, mseq)) {
            f.slots[in.dst] = *m;
            break;
          }
          Value v = Value::intv(static_cast<std::int64_t>(
              (std::uint64_t(pe) << 40) | ++L.ctxCounter));
          L.recordMint(f.ctx, mseq, v);
          f.slots[in.dst] = v;
          break;
        }
        // PE-unique, monotonically increasing context tags.
        f.slots[in.dst] = Value::intv(
            static_cast<std::int64_t>((std::uint64_t(pe) << 40) |
                                      ++P.ctxCounter));
        break;
      case Op::MKCONT: {
        charge(false);
        Cont c;
        c.pe = pe;
        c.frame = static_cast<std::uint32_t>(P.current);
        c.slot = static_cast<std::uint16_t>(in.aux);
        f.slots[in.dst] = Value::contv(c);
        break;
      }
      case Op::CLEAR:
        charge(false);
        f.slots[in.a] = Value{};
        break;
      case Op::ALLOC:
      case Op::ALLOCD: {
        charge(false);
        f.slots[in.dst] = Value{};  // split-phase: AM fills in the id
        AmTask task;
        task.kind = AmTask::Kind::Alloc;
        task.distributed = in.op == Op::ALLOCD;
        task.shape.rank = in.dim;
        task.shape.dim0 = f.slots[in.a].asInt();
        task.shape.dim1 = in.dim == 2 ? f.slots[in.b].asInt() : 1;
        task.cont = {pe, static_cast<std::uint32_t>(P.current), in.dst};
        if (killMode()) {
          // Stamp the mint identity so a replayed allocation resolves to the
          // array created before the kill instead of a fresh (empty) one.
          task.senderCtx = f.ctx;
          task.mintSeq = f.mintSeq++;
        }
        if (task.shape.dim0 < 0 || task.shape.dim1 < 0 ||
            task.shape.numElems() > (std::int64_t(1) << 24)) {
          runtimeError("bad allocation dimensions");
          break;
        }
        amLocal(pe, t, std::move(task));
        break;
      }
      case Op::ARD: {
        charge(false);  // flat 2.7 us local-read budget
        stats.counters.add("array.reads");
        const ArrayId arr = f.slots[in.a].asArray();
        const std::int64_t i0 = f.slots[in.b].asInt();
        const std::int64_t i1 = in.c != kNoSlot ? f.slots[in.c].asInt() : 0;
        f.slots[in.dst] = Value{};  // split-phase
        const Cont cont{pe, static_cast<std::uint32_t>(P.current), in.dst};
        if (headerPresent(pe, arr)) {
          const ArrayInfo* info = store.find(arr);
          std::int64_t offset;
          if (!resolveOffset(*info, i0, i1, offset)) {
            runtimeError("array read out of bounds in " + sp.name);
            break;
          }
          if (info->owner(offset) == pe &&
              !info->elems[static_cast<std::size_t>(offset)].empty()) {
            // Local present element: the fast path the 2.7 us covers.
            f.slots[in.dst] = info->elems[static_cast<std::size_t>(offset)];
            stats.counters.add("array.reads.localHit");
            break;
          }
        }
        AmTask task;
        task.kind = AmTask::Kind::Read;
        task.arr = arr;
        task.i0 = i0;
        task.i1 = i1;
        task.rank = in.c != kNoSlot ? 2 : 1;
        task.cont = cont;
        amLocal(pe, t, std::move(task));
        break;
      }
      case Op::AWR: {
        charge(false);
        stats.counters.add("array.writes");
        AmTask task;
        task.kind = AmTask::Kind::Write;
        task.arr = f.slots[in.a].asArray();
        task.i0 = f.slots[in.b].asInt();
        task.i1 = in.c != kNoSlot ? f.slots[in.c].asInt() : 0;
        task.rank = in.c != kNoSlot ? 2 : 1;
        task.v = f.slots[in.dst];
        amLocal(pe, t, std::move(task));
        break;
      }
      case Op::RFLO:
      case Op::RFHI: {
        charge(false);
        const ArrayId arr = f.slots[in.a].asArray();
        const bool hasRow = in.b != kNoSlot;
        const std::int64_t row = hasRow ? f.slots[in.b].asInt() : 0;
        if (headerPresent(pe, arr)) {
          const ArrayInfo* info = store.find(arr);
          IdxRange r = rfRange(pe, *info, in.dim, hasRow, row);
          f.slots[in.dst] = Value::intv(
              (in.op == Op::RFHI ? r.hi : r.lo) - in.off);
        } else {
          f.slots[in.dst] = Value{};  // split-phase via the Array Manager
          AmTask task;
          task.kind = AmTask::Kind::Rf;
          task.arr = arr;
          task.i0 = row;
          task.hasRow = hasRow;
          task.dim = in.dim;
          task.rfOff = in.off;
          task.isHi = in.op == Op::RFHI;
          task.cont = {pe, static_cast<std::uint32_t>(P.current), in.dst};
          amLocal(pe, t, std::move(task));
        }
        break;
      }
      case Op::BLKLO:
      case Op::BLKHI: {
        charge(false);
        IdxRange r = blockPartition(f.slots[in.a].asInt(),
                                    f.slots[in.b].asInt(), pe, cfg.numPEs);
        f.slots[in.dst] = Value::intv(in.op == Op::BLKHI ? r.hi : r.lo);
        break;
      }
      case Op::DIMQ: {
        charge(false);
        const ArrayId arr = f.slots[in.a].asArray();
        if (headerPresent(pe, arr)) {
          const ArrayInfo* info = store.find(arr);
          f.slots[in.dst] = Value::intv(in.dim == 1 ? info->shape.dim1
                                                    : info->shape.dim0);
        } else {
          f.slots[in.dst] = Value{};  // split-phase via the Array Manager
          AmTask task;
          task.kind = AmTask::Kind::DimQ;
          task.arr = arr;
          task.dim = in.dim;
          task.cont = {pe, static_cast<std::uint32_t>(P.current), in.dst};
          amLocal(pe, t, std::move(task));
        }
        break;
      }
      case Op::SENDA:
      case Op::SENDD: {
        charge(false);
        Token tok;
        tok.spCode = in.targetSp();
        tok.slot = in.targetSlot();
        tok.ctx = static_cast<std::uint64_t>(f.slots[in.b].asInt());
        tok.v = f.slots[in.a];
        stats.counters.add("tokens.sent");
        const std::uint64_t targetCtx = tok.ctx;
        if (in.op == Op::SENDA) {
          sendToken(pe, pe, t, std::move(tok));
        } else {
          broadcastToken(pe, t, tok);
        }
        // A restarted PE parks logged continuation results until the frame
        // that consumed them re-runs; the first send *to* the callee's
        // context is the replay point where its logged replies re-apply.
        if (killMode() && f.replaying) {
          f.sentCtxs.insert(targetCtx);
          if (!P.pendingReplay.empty())
            replayResponsesFor(pe, targetCtx,
                               static_cast<std::uint32_t>(P.current));
        }
        break;
      }
      case Op::SENDC:
      case Op::ADDC: {
        charge(false);
        Cont c = f.slots[in.b].asCont();
        Token tok;
        tok.toCont = true;
        tok.cont = c;
        tok.v = f.slots[in.a];
        tok.add = in.op == Op::ADDC;
        if (killMode()) {
          // Logical send identity: deterministic re-execution reproduces the
          // same (sender ctx, sender PE, seq) triple, so receivers can drop
          // the duplicate even though it travels as a brand-new message.
          tok.senderCtx = f.ctx;
          // Pre-increment: seq 0 on PE 0 would pack to the "unkeyed" 0.
          tok.sendKey = packSendKey(pe, ++f.sendSeq);
        }
        stats.counters.add("tokens.sent");
        sendToken(pe, c.pe, t, std::move(tok));
        break;
      }
      case Op::AWAITN: {
        charge(false);
        std::int64_t count =
            f.slots[in.a].empty() ? 0 : f.slots[in.a].asInt();
        if (count < f.slots[in.b].asInt()) {
          f.state = FrameState::Blocked;
          f.blockedSlot = in.a;
          return StepResult::Blocked;
        }
        break;
      }
      case Op::RESULT: {
        charge(false);
        std::size_t idx = in.aux;
        PODS_CHECK(idx < stats.results.size());
        stats.results[idx] = f.slots[in.a];
        resultSet[idx] = true;
        break;
      }
      case Op::END: {
        charge(false);
        f.state = FrameState::Dead;
        if (faulty()) P.rx.retireCtx(f.ctx);
        if (killMode()) {
          RecEntry e;
          e.kind = RecEntry::Kind::End;
          e.ctx = f.ctx;
          recLogs[pe].entries.push_back(e);
          // The instance is over: its logical-dedup keys and minted values
          // can never be consulted again (tokens to a dead frame are dropped
          // or triaged as stragglers first), so the recovery ledgers shed
          // them here — this is what keeps long runs' logs bounded.
          P.dedup.retire(f.ctx);
          recLogs[pe].mints.erase(f.ctx);
        }
        P.match.erase(f.ctx);
        f.slots.clear();
        f.slots.shrink_to_fit();
        unitSched(pe, Unit::MM, t, tm.frameListOp);  // frame release
        stats.counters.add("sp.completed");
        --liveSps;
        return StepResult::Ended;
      }
      default:
        PODS_UNREACHABLE("unhandled opcode");
    }
    f.pc = nextPc;
    return StepResult::Continue;
  }

  /// The EU scheduler: runs ready SPs, blocking and switching per the paper.
  void euRun(std::uint16_t pe, SimTime tStart) {
    PeState& P = pes[pe];
    SimTime t = std::max(tStart, P.euFree);
    std::uint64_t steps = 0;
    // Trace bookkeeping: one slice per contiguous run of one SP.
    SimTime sliceStart{};
    const std::string* sliceName = nullptr;
    auto endSlice = [&](SimTime end) {
      if (tracing && sliceName && end > sliceStart) {
        addTrace(pe, Unit::EU, sliceName, sliceStart, end - sliceStart);
      }
      sliceName = nullptr;
    };
    for (;;) {
      if (++steps > 50'000'000ULL) {
        runtimeError("livelock: one EU slice exceeded 50M instructions");
        endSlice(t);
        P.euFree = t;
        return;
      }
      if (P.current < 0) {
        if (P.readyQ.empty()) {
          P.euFree = t;
          return;
        }
        std::uint32_t idx = P.readyQ.front();
        P.readyQ.pop_front();
        Frame& f = P.frames[idx];
        if (f.state == FrameState::Dead) continue;
        P.current = idx;
        f.state = FrameState::Running;
        if (idx != P.lastFrame) {
          t += tm.contextSwitch;
          euBusy(pe, tm.contextSwitch);
          stats.counters.add("eu.contextSwitches");
          P.lastFrame = idx;
        }
        sliceStart = t;
        sliceName = &prog.sp(f.spCode).name;
      }
      // Yield to the global queue whenever our local time passes its head,
      // so cross-PE interactions are exact. The calendar engine answers
      // this from its cached minimum in O(1).
      if (headEarlierThan(t)) {
        Frame& f = P.frames[static_cast<std::size_t>(P.current)];
        f.state = FrameState::Ready;
        P.readyQ.push_front(static_cast<std::uint32_t>(P.current));
        P.current = -1;
        P.euFree = t;
        endSlice(t);
        pushKick(pe, t);
        return;
      }
      Frame& f = P.frames[static_cast<std::size_t>(P.current)];
      StepResult r = step(pe, t, f);
      if (r == StepResult::Blocked) {
        P.current = -1;
        stats.counters.add("eu.blocks");
        endSlice(t);
        continue;  // pick the next ready SP (context switch charged at pick)
      }
      if (r == StepResult::Ended) {
        P.current = -1;
        endSlice(t);
        continue;
      }
      if (errorCount > 0 && stats.counters.get("runtime.errors") > 64) {
        // Runaway error loop: stop making progress on this PE.
        endSlice(t);
        P.euFree = t;
        return;
      }
    }
  }

  // --- Array Manager -------------------------------------------------------

  void amHandle(std::uint16_t pe, SimTime t, AmTask& task) {
    PeState& P = pes[pe];
    // Allocation requests install headers; everything else needs one.
    if (task.kind != AmTask::Kind::Alloc &&
        task.kind != AmTask::Kind::AllocInstall &&
        !headerPresent(pe, task.arr)) {
      unitSched(pe, Unit::AM, t, tm.memRead);
      P.pendingHeader[task.arr].push_back(task);
      stats.counters.add("am.deferredOnHeader");
      return;
    }
    switch (task.kind) {
      case AmTask::Kind::Alloc: {
        SimTime done = unitSched(pe, Unit::AM, t, tm.allocArray);
        if (killMode()) {
          // Replayed allocation: hand back the array created before the kill
          // (its elements — possibly already written — survive in the global
          // store) instead of minting a fresh empty one.
          if (const Value* m =
                  recLogs[pe].findMint(task.senderCtx, task.mintSeq)) {
            P.headers.emplace(m->asArray(), 0);
            fillSlotLater(pe, done + tm.unitSignal, task.cont, *m);
            stats.counters.add("array.allocs.replayDup");
            flushPendingHeader(pe, done, m->asArray());
            break;
          }
        }
        ArrayId id = store.create(pe, task.shape, task.distributed);
        if (killMode()) {
          recLogs[pe].recordMint(task.senderCtx, task.mintSeq,
                                 Value::arrayv(id));
          // Arrays born while a PE is down never home pages on it: remap the
          // dead PE's segment onto a surviving neighbor so writes and reads
          // of this array need not stall until the restart. (Ownership is
          // fixed for an array's lifetime, so the remap is permanent — the
          // restarted PE simply owns nothing of arrays it never saw born.)
          if (task.distributed) {
            ArrayInfo* born = store.find(id);
            for (int d = 0; d < cfg.numPEs; ++d)
              if (pes[d].dead) {
                born->layout.migratePe(d);
                stats.counters.add("recovery.migratedArrays");
              }
          }
        }
        P.headers.emplace(id, 0);
        fillSlotLater(pe, done + tm.unitSignal, task.cont, Value::arrayv(id));
        stats.counters.add("array.allocs");
        if (task.distributed && cfg.numPEs > 1) {
          // Broadcast the allocation to all other PEs (one message injection,
          // replicated by the network like the LD broadcast).
          SimTime sent =
              unitSched(pe, Unit::RU, done + tm.unitSignal, tm.tokenRoute());
          for (int dest = 0; dest < cfg.numPEs; ++dest) {
            if (dest == pe) continue;
            AmTask inst;
            inst.kind = AmTask::Kind::AllocInstall;
            inst.arr = id;
            inst.shape = task.shape;
            inst.distributed = true;
            inst.fromPe = pe;
            if (faulty()) {
              netSend(pe, static_cast<std::uint16_t>(dest), sent,
                      /*isToken=*/false, /*pageSized=*/false, Token{},
                      std::move(inst));
              continue;
            }
            Ev ev;
            ev.t = sent + tm.networkHop;
            ev.kind = EvKind::AmArrive;
            ev.pe = static_cast<std::uint16_t>(dest);
            ev.am = std::move(inst);
            push(std::move(ev));
          }
        }
        // Any ops that raced ahead of this allocation on this PE.
        flushPendingHeader(pe, done, id);
        break;
      }
      case AmTask::Kind::AllocInstall: {
        SimTime done = unitSched(pe, Unit::AM, t, tm.allocArray);
        P.headers.emplace(task.arr, 0);
        flushPendingHeader(pe, done, task.arr);
        break;
      }
      case AmTask::Kind::Read:
        amRead(pe, t, task);
        break;
      case AmTask::Kind::Write:
        amWrite(pe, t, task);
        break;
      case AmTask::Kind::RemoteReadReq:
        amRemoteReadReq(pe, t, task);
        break;
      case AmTask::Kind::PageArrive:
        amPageArrive(pe, t, task);
        break;
      case AmTask::Kind::Rf: {
        SimTime done = unitSched(pe, Unit::AM, t, tm.memRead);
        const ArrayInfo* info = store.find(task.arr);
        IdxRange r = rfRange(pe, *info, task.dim, task.hasRow, task.i0);
        fillSlotLater(pe, done + tm.unitSignal, task.cont,
                      Value::intv((task.isHi ? r.hi : r.lo) - task.rfOff));
        break;
      }
      case AmTask::Kind::DimQ: {
        SimTime done = unitSched(pe, Unit::AM, t, tm.memRead);
        const ArrayInfo* info = store.find(task.arr);
        fillSlotLater(pe, done + tm.unitSignal, task.cont,
                      Value::intv(task.dim == 1 ? info->shape.dim1
                                                : info->shape.dim0));
        break;
      }
      case AmTask::Kind::ValueArrive: {
        // A remote owner answered a read that had been queued on an absent
        // element: satisfy every local reader waiting on that element.
        SimTime done = unitSched(pe, Unit::AM, t, tm.memWrite);
        auto ait = P.pendingRemote.find(task.arr);
        if (ait == P.pendingRemote.end()) break;
        auto oit = ait->second.find(task.offset);
        if (oit == ait->second.end()) break;
        for (const Cont& c : oit->second) {
          fillSlotLater(pe, done + tm.unitSignal, c, task.v);
        }
        ait->second.erase(oit);
        break;
      }
    }
  }

  void flushPendingHeader(std::uint16_t pe, SimTime t, ArrayId id) {
    PeState& P = pes[pe];
    auto it = P.pendingHeader.find(id);
    if (it == P.pendingHeader.end()) return;
    std::vector<AmTask> tasks = std::move(it->second);
    P.pendingHeader.erase(it);
    for (AmTask& task : tasks) {
      Ev ev;
      ev.t = t;
      ev.kind = EvKind::AmArrive;
      ev.pe = pe;
      ev.am = std::move(task);
      push(std::move(ev));
    }
  }

  void amRead(std::uint16_t pe, SimTime t, AmTask& task) {
    PeState& P = pes[pe];
    const ArrayInfo* info = store.find(task.arr);
    std::int64_t offset;
    if (!resolveOffset(*info, task.i0, task.i1, offset)) {
      unitSched(pe, Unit::AM, t, tm.memRead);
      runtimeError("array read out of bounds");
      return;
    }
    const int owner = info->owner(offset);
    if (owner == pe) {
      const Value& v = info->elems[static_cast<std::size_t>(offset)];
      if (!v.empty()) {
        SimTime done = unitSched(pe, Unit::AM, t, tm.memRead);
        fillSlotLater(pe, done + tm.unitSignal, task.cont, v);
      } else {
        unitSched(pe, Unit::AM, t, tm.enqueueRead);
        P.deferred[task.arr][offset].localWaiters.push_back(task.cont);
        stats.counters.add("array.reads.deferred");
      }
      return;
    }
    // Remote element: consult the software page cache first.
    stats.counters.add("array.reads.remote");
    const std::int64_t page = info->layout.pageOfOffset(offset);
    const int within = static_cast<int>(offset % tm.pageElems);
    if (cfg.cachePages) {
      auto c = P.cache.find(pageKey(task.arr, page));
      if (c != P.cache.end() && c->second.test(within)) {
        SimTime done = unitSched(pe, Unit::AM, t, tm.memRead);
        fillSlotLater(pe, done + tm.unitSignal, task.cont,
                      info->elems[static_cast<std::size_t>(offset)]);
        stats.counters.add("array.reads.cacheHit");
        return;
      }
    }
    // Coalesce with an already-in-flight request for the same element.
    auto& pending = P.pendingRemote[task.arr];
    auto pit = pending.find(offset);
    if (pit != pending.end()) {
      unitSched(pe, Unit::AM, t, tm.memRead);
      pit->second.push_back(task.cont);
      stats.counters.add("array.reads.coalesced");
      return;
    }
    pending[offset].push_back(task.cont);
    SimTime done = unitSched(pe, Unit::AM, t, tm.memRead);
    AmTask req;
    req.kind = AmTask::Kind::RemoteReadReq;
    req.arr = task.arr;
    req.offset = offset;
    req.fromPe = pe;
    amToRemote(pe, static_cast<std::uint16_t>(owner), done, req,
               /*pageSized=*/false);
  }

  /// Ships the page containing `offset` to `toPe` with the current presence
  /// mask snapshot.
  void sendPage(std::uint16_t pe, SimTime t, const ArrayInfo& info,
                std::int64_t page, std::uint16_t toPe) {
    SimTime done = unitSched(
        pe, Unit::AM, t,
        tm.memRead * tm.pageElems + tm.unitSignal);  // "Send Page"
    AmTask pg;
    pg.kind = AmTask::Kind::PageArrive;
    pg.arr = info.id;
    pg.offset = page;
    const std::int64_t base = page * tm.pageElems;
    for (int i = 0; i < tm.pageElems; ++i) {
      const std::int64_t off = base + i;
      if (off >= info.shape.numElems()) break;
      if (!info.elems[static_cast<std::size_t>(off)].empty()) pg.mask.set(i);
    }
    stats.counters.add("array.pagesSent");
    amToRemote(pe, toPe, done, pg, /*pageSized=*/true);
  }

  void amRemoteReadReq(std::uint16_t pe, SimTime t, AmTask& task) {
    PeState& P = pes[pe];
    const ArrayInfo* info = store.find(task.arr);
    const Value& v = info->elems[static_cast<std::size_t>(task.offset)];
    if (!v.empty()) {
      sendPage(pe, t, *info, info->layout.pageOfOffset(task.offset),
               task.fromPe);
      return;
    }
    // Queue the remote request on the absent element.
    unitSched(pe, Unit::AM, t, tm.enqueueRead);
    Deferred& d = P.deferred[task.arr][task.offset];
    for (std::uint16_t waiting : d.remotePes) {
      if (waiting == task.fromPe) return;  // already queued
    }
    d.remotePes.push_back(task.fromPe);
    stats.counters.add("array.reads.remoteDeferred");
  }

  void amPageArrive(std::uint16_t pe, SimTime t, AmTask& task) {
    PeState& P = pes[pe];
    SimTime done =
        unitSched(pe, Unit::AM, t, tm.memWrite * tm.pageElems);  // "Receive Page"
    if (cfg.cachePages) {
      P.cache[pageKey(task.arr, task.offset)].merge(task.mask);
    }
    stats.counters.add("array.pagesReceived");
    // Satisfy every waiting read that this page covers.
    const ArrayInfo* info = store.find(task.arr);
    auto ait = P.pendingRemote.find(task.arr);
    if (ait == P.pendingRemote.end()) return;
    const std::int64_t lo = task.offset * tm.pageElems;
    const std::int64_t hi = lo + tm.pageElems - 1;
    for (auto it = ait->second.begin(); it != ait->second.end();) {
      const std::int64_t off = it->first;
      const int within = static_cast<int>(off - lo);
      if (off >= lo && off <= hi && task.mask.test(within)) {
        for (const Cont& c : it->second) {
          fillSlotLater(pe, done + tm.unitSignal, c,
                        info->elems[static_cast<std::size_t>(off)]);
        }
        it = ait->second.erase(it);
      } else {
        ++it;
      }
    }
  }

  void amWrite(std::uint16_t pe, SimTime t, AmTask& task) {
    PeState& P = pes[pe];
    ArrayInfo* info = store.find(task.arr);
    std::int64_t offset;
    if (!resolveOffset(*info, task.i0, task.i1, offset)) {
      unitSched(pe, Unit::AM, t, tm.memRead);
      runtimeError("array write out of bounds");
      return;
    }
    const int owner = info->owner(offset);
    // Under fail-stop replay a re-executed frame rewrites elements it wrote
    // before the kill. Single assignment makes the replay value identical,
    // so the rewrite is a no-op (nobody can still be waiting on a present
    // element) rather than a violation; a *different* value still faults.
    if (killMode() && !task.forwarded &&
        !info->elems[static_cast<std::size_t>(offset)].empty() &&
        info->elems[static_cast<std::size_t>(offset)].identical(task.v)) {
      unitSched(pe, Unit::AM, t, tm.memWrite);
      stats.counters.add("array.writes.replayDup");
      return;
    }
    if (owner != pe) {
      // Remote write: commit the value here (single assignment makes it
      // final, so the writer may also cache it — its own read-after-write,
      // e.g. a recurrence over a distributed array, then stays local), and
      // forward a token-sized notification to the owner, which wakes any
      // readers queued on the element there.
      if (!store.write(task.arr, offset, task.v)) {
        unitSched(pe, Unit::AM, t, tm.memWrite);
        runtimeError("single-assignment violation: array #" +
                     std::to_string(task.arr) + " element " +
                     std::to_string(offset) + " written twice");
        return;
      }
      if (cfg.cachePages) {
        P.cache[pageKey(task.arr, info->layout.pageOfOffset(offset))].set(
            static_cast<int>(offset % tm.pageElems));
      }
      SimTime done = unitSched(pe, Unit::AM, t, tm.memWrite + tm.memRead);
      stats.counters.add("array.writes.remote");
      task.forwarded = true;
      amToRemote(pe, static_cast<std::uint16_t>(owner), done, task,
                 /*pageSized=*/false);
      return;
    }
    if (!task.forwarded && !store.write(task.arr, offset, task.v)) {
      unitSched(pe, Unit::AM, t, tm.memWrite);
      runtimeError("single-assignment violation: array #" +
                   std::to_string(task.arr) + " element " +
                   std::to_string(offset) + " written twice");
      return;
    }
    // "Array Write: memory_write_time + number_queued_reads * message_time".
    auto dit = P.deferred.find(task.arr);
    Deferred* d = nullptr;
    if (dit != P.deferred.end()) {
      auto oit = dit->second.find(offset);
      if (oit != dit->second.end()) d = &oit->second;
    }
    const std::int64_t queued =
        d ? static_cast<std::int64_t>(d->localWaiters.size()) : 0;
    SimTime done = unitSched(pe, Unit::AM, t,
                             tm.memWrite + tm.unitSignal * queued);
    if (d) {
      for (const Cont& c : d->localWaiters) {
        fillSlotLater(pe, done + tm.unitSignal, c, task.v);
      }
      // Remote readers queued on this element get the value itself as a
      // token-sized response (the write "reactivates all PEs blocked on that
      // location"); future reads of the page still fetch and cache it whole.
      for (std::uint16_t toPe : d->remotePes) {
        AmTask resp;
        resp.kind = AmTask::Kind::ValueArrive;
        resp.arr = task.arr;
        resp.offset = offset;
        resp.v = task.v;
        amToRemote(pe, toPe, done, resp, /*pageSized=*/false);
      }
      dit->second.erase(offset);
    }
  }

  // --- fail-stop recovery (kill mode) --------------------------------------

  /// True for Array Manager tasks a PE enqueues against itself on behalf of
  /// its own frames (reads, writes, allocations, header queries). After a
  /// kill these are volatile-state artifacts of the dead incarnation — the
  /// replayed frames re-issue every one of them — and must be dropped, not
  /// held: a stale Read, for instance, would re-register its continuation
  /// under the *old* round's element and poison a multi-round slot with a
  /// later iteration's value once the response lands. Network-origin tasks
  /// (forwarded writes, remote read requests, page/value responses, header
  /// installs) stay held: their senders acked and moved on, so the held
  /// copy can be the only one left.
  static bool amTaskIsLocalRequest(const AmTask& task) {
    switch (task.kind) {
      case AmTask::Kind::Read:
      case AmTask::Kind::Alloc:
      case AmTask::Kind::Rf:
      case AmTask::Kind::DimQ:
        return true;
      case AmTask::Kind::Write:
        return !task.forwarded;
      default:
        return false;
    }
  }

  /// Filters events touching the killed PE. Events from a previous
  /// incarnation are volatile-state artifacts: EU kicks, AM slot fills and
  /// the PE's own Array Manager requests are dropped (re-execution
  /// regenerates them), while token and network-origin Array Manager
  /// deliveries are *held* — their senders may have retired before the
  /// kill and will never resend — and re-injected after the rebuild,
  /// where the logical dedup filters absorb any copy a replay also
  /// regenerates. Returns true when the event must not be dispatched.
  bool staleOrHeld(Ev& ev) {
    switch (ev.kind) {
      case EvKind::EuKick:
      case EvKind::TokenAtMu:
      case EvKind::TokenDeliver:
      case EvKind::AmArrive:
      case EvKind::SlotFill:
        break;
      default:
        return false;  // network-layer + kill events are never PE-volatile
    }
    PeState& P = pes[ev.pe];
    if (ev.inc == P.incarnation && !P.dead) return false;
    if (ev.kind == EvKind::EuKick || ev.kind == EvKind::SlotFill ||
        (ev.kind == EvKind::AmArrive && amTaskIsLocalRequest(ev.am))) {
      stats.counters.add("recovery.droppedEvents");
      return true;
    }
    if (P.dead) {
      stats.counters.add("recovery.heldEvents");
      deadHeld.push_back(std::move(ev));
      return true;
    }
    // Already restarted: deliver as a fresh arrival; dedup does the rest.
    if (ev.kind == EvKind::TokenDeliver) {
      deliverToken(ev.pe, ev.t, ev.tok, /*fromMu=*/true);
      return true;
    }
    ev.inc = P.incarnation;
    return false;
  }

  void peKill(std::uint16_t pe, SimTime t) {
    PeState& P = pes[pe];
    stats.counters.add("fault.kills");
    P.incarnation += 1;
    P.dead = true;
    if (calendar) {
      // Triage the victim's pending events NOW, straight off its index, in
      // the same (t, seq) order the binary heap engine would have popped
      // them across the dead window. Only events ordered before the
      // PeRestart event qualify: anything later pops after the rebuild and
      // takes the ordinary already-restarted path. No PE-local event
      // targeting a dead PE is ever pushed during the dead window (the PE
      // itself is not running, and remote arrivals ride NetDeliver, which
      // drops at a dead receiver), so this captures exactly the set
      // dispatch-time triage would have seen. The taken slots stay queued
      // as ghosts: until each one's (t, seq) comes up, its key must keep
      // steering the EU yield check exactly as the still-queued event does
      // in the heap engine, and its pop is counted when it happens.
      for (Ev& held : cq.takeIndexed(restartKey_)) {
        if (held.kind == EvKind::EuKick || held.kind == EvKind::SlotFill ||
            (held.kind == EvKind::AmArrive && amTaskIsLocalRequest(held.am))) {
          stats.counters.add("recovery.droppedEvents");
        } else {
          stats.counters.add("recovery.heldEvents");
          deadHeld.push_back(std::move(held));
        }
      }
      killTriaged_ = true;
    }
    for (const Frame& f : P.frames)
      if (f.state != FrameState::Dead) --liveSps;
    P.frames.clear();
    P.match.clear();
    P.readyQ.clear();
    P.current = -1;
    P.lastFrame = 0xFFFFFFFFu;
    P.euFree = t;
    P.kickScheduled = false;
    P.headers.clear();
    P.pendingHeader.clear();
    P.cache.clear();
    P.pendingRemote.clear();
    P.deferred.clear();
    P.rx.resetReceiver();
    P.dedup.clear();
    P.pendingReplay.clear();
  }

  /// Rebuilds the killed PE from its receive log, then re-injects the held
  /// in-flight deliveries and asks surviving PEs to re-announce reads that
  /// were parked at the dead owner (whose deferred-read queues died with it).
  void peRestart(std::uint16_t pe, SimTime t) {
    PeState& P = pes[pe];
    PODS_CHECK(P.dead);
    P.dead = false;
    stats.counters.add("fault.restarts");
    RecoveryLog& L = recLogs[pe];
    for (std::size_t i = 0; i < L.entries.size(); ++i) {
      const RecEntry& e = L.entries[i];
      switch (e.kind) {
        case RecEntry::Kind::Boot:
        case RecEntry::Kind::CtxToken: {
          std::uint32_t idx;
          if (e.kind == RecEntry::Kind::Boot) {
            idx = rebuildFrame(P, e.spCode, e.ctx);
          } else {
            P.dedup.firstCtx(e.ctx, e.slot);
            auto it = P.match.find(e.ctx);
            idx = it != P.match.end() ? it->second
                                      : rebuildFrame(P, e.spCode, e.ctx);
            P.frames[idx].slots[e.slot] = e.v;
          }
          break;
        }
        case RecEntry::Kind::ConToken:
          // Not applied here: held back until the re-executing consumer
          // re-sends to the original sender's context (after the matching
          // round's CLEAR), so multi-round slots refill in program order.
          // The consumer frame exists by log order (its creating record
          // precedes every delivery into it).
          PODS_CHECK_MSG(e.frame < P.frames.size(),
                         "replayed delivery targets an unknown frame");
          P.dedup.firstCont(P.frames[e.frame].ctx, e.senderCtx, e.sendKey);
          P.pendingReplay[e.senderCtx].push_back(i);
          break;
        case RecEntry::Kind::End: {
          auto it = P.match.find(e.ctx);
          PODS_CHECK_MSG(it != P.match.end(),
                         "recovery log retires an unknown context");
          Frame& f = P.frames[it->second];
          f.state = FrameState::Dead;
          f.slots.clear();
          P.rx.retireCtx(e.ctx);
          P.dedup.retire(e.ctx);
          L.mints.erase(e.ctx);
          P.match.erase(it);
          --liveSps;
          break;
        }
      }
    }
    // Every frame that was live at the kill restarts from pc 0. Headers come
    // back from the global store: every distributed array broadcast its
    // header to all PEs, and an undistributed array homed here was installed
    // by this PE's own allocation (which the mint log replays identically).
    std::int64_t replayed = 0;
    for (std::uint32_t idx = 0; idx < P.frames.size(); ++idx) {
      if (P.frames[idx].state == FrameState::Dead) continue;
      P.frames[idx].replaying = true;
      P.readyQ.push_back(idx);
      ++replayed;
    }
    stats.counters.add("recovery.replayedFrames", replayed);
    for (const auto& [id, info] : store.all()) {
      if (info.distributed || info.homePe == static_cast<int>(pe))
        P.headers.emplace(id, 0);
    }
    for (Ev held : deadHeld) {
      // In-flight continuation tokens were acked before the kill, so this
      // held copy is the only one left. Delivering it now could land in a
      // multi-round (CLEARed) slot ahead of the round that consumes it and
      // be wiped; park it with the logged responses instead, so the trigger
      // re-delivers it in program order. Context tokens are one-shot per
      // (ctx, slot) and safe to deliver at any time.
      if (held.kind != EvKind::AmArrive && held.tok.toCont &&
          held.tok.sendKey != 0) {
        // A held copy into a frame that has since retired (or never came
        // back) was never going to be applied: parked entries are only
        // re-delivered into live re-sending frames. Dropping it here keeps
        // the dedup ledger consumer-keyed.
        const std::uint32_t cf = held.tok.cont.frame;
        if (cf >= P.frames.size() ||
            P.frames[cf].state == FrameState::Dead) {
          stats.counters.add("tokens.dropped");
          continue;
        }
        if (P.dedup.firstCont(P.frames[cf].ctx, held.tok.senderCtx,
                              held.tok.sendKey)) {
          RecEntry e;
          e.kind = RecEntry::Kind::ConToken;
          e.frame = held.tok.cont.frame;
          e.slot = held.tok.cont.slot;
          e.v = held.tok.v;
          e.add = held.tok.add;
          e.senderCtx = held.tok.senderCtx;
          e.sendKey = held.tok.sendKey;
          P.pendingReplay[e.senderCtx].push_back(L.entries.size());
          L.entries.push_back(e);
        }
        continue;
      }
      held.t = t;
      held.kind = held.kind == EvKind::AmArrive ? EvKind::AmArrive
                                                : EvKind::TokenAtMu;
      push(std::move(held));
    }
    deadHeld.clear();
    // Survivors re-announce reads whose owner-side deferral died with `pe`.
    for (std::size_t from = 0; from < pes.size(); ++from) {
      if (from == pe) continue;
      for (const auto& [arr, offs] : pes[from].pendingRemote) {
        const ArrayInfo* info = store.find(arr);
        for (const auto& [offset, conts] : offs) {
          if (info->owner(offset) != static_cast<int>(pe)) continue;
          AmTask req;
          req.kind = AmTask::Kind::RemoteReadReq;
          req.arr = arr;
          req.offset = offset;
          req.fromPe = static_cast<std::uint16_t>(from);
          amToRemote(static_cast<std::uint16_t>(from), pe, t, req,
                     /*pageSized=*/false);
          stats.counters.add("recovery.reRequestedReads");
        }
      }
    }
    pushKick(pe, t);
  }

  /// Frame reconstruction during restart: no stats/profile counting (these
  /// are the same instances that were already counted at first creation).
  std::uint32_t rebuildFrame(PeState& P, std::uint16_t spCode,
                             std::uint64_t ctx) {
    Frame f;
    f.spCode = spCode;
    f.ctx = ctx;
    f.slots.assign(prog.sp(spCode).numSlots, Value{});
    const std::uint32_t idx = static_cast<std::uint32_t>(P.frames.size());
    P.frames.push_back(std::move(f));
    P.match[ctx] = idx;
    ++liveSps;
    return idx;
  }

  /// On-demand re-delivery of logged responses: frame `frameIdx` (re-)sent a
  /// token to context `target`, so every logged continuation-addressed
  /// delivery *from* that context *into* this frame is due now. Entries
  /// addressed to other frames stay parked (e.g. array-read wakeups — their
  /// consumers refill by re-reading the surviving I-structure instead).
  void replayResponsesFor(std::uint16_t pe, std::uint64_t target,
                          std::uint32_t frameIdx) {
    PeState& P = pes[pe];
    auto it = P.pendingReplay.find(target);
    if (it == P.pendingReplay.end()) return;
    auto& idxs = it->second;
    for (std::size_t i = 0; i < idxs.size();) {
      const RecEntry& e = recLogs[pe].entries[idxs[i]];
      if (e.frame != frameIdx) {
        ++i;
        continue;
      }
      Frame& f = P.frames[frameIdx];
      PODS_CHECK_MSG(e.slot < f.slots.size(), "replayed slot out of range");
      if (e.add) {
        std::int64_t cur = f.slots[e.slot].empty() ? 0 : f.slots[e.slot].asInt();
        f.slots[e.slot] = Value::intv(cur + e.v.asInt());
      } else {
        f.slots[e.slot] = e.v;
      }
      stats.counters.add("recovery.replayedTokens");
      idxs.erase(idxs.begin() + static_cast<std::ptrdiff_t>(i));
    }
    if (idxs.empty()) P.pendingReplay.erase(it);
  }

  // --- main loop ------------------------------------------------------------

  RunStats run() {
    // Boot: instantiate main's frame on PE 0 with context 0.
    {
      PeState& P0 = pes[0];
      Frame f;
      f.spCode = prog.mainSp;
      f.ctx = 0;
      f.slots.assign(prog.sp(prog.mainSp).numSlots, Value{});
      P0.frames.push_back(std::move(f));
      P0.match[0] = 0;
      P0.readyQ.push_back(0);
      stats.counters.add("sp.instantiated");
      ++stats.spProfiles[prog.mainSp].instances;
      peakLiveSps = std::max(peakLiveSps, ++liveSps);
      pushKick(0, kTimeZero);
    }
    if (killMode()) {
      if (cfg.faults.killPe >= cfg.numPEs) {
        runtimeError("kill fault targets PE " +
                     std::to_string(cfg.faults.killPe) + " but only " +
                     std::to_string(cfg.numPEs) + " PEs exist");
        stats.ok = false;
        return finalize();
      }
      // The boot frame is not spawned by a token; log it so a kill of PE 0
      // can rebuild main.
      RecEntry boot;
      boot.kind = RecEntry::Kind::Boot;
      boot.spCode = prog.mainSp;
      boot.ctx = 0;
      recLogs[0].entries.push_back(boot);
      Ev kill;
      kill.kind = EvKind::PeKill;
      kill.pe = static_cast<std::uint16_t>(cfg.faults.killPe);
      kill.t = usec(cfg.faults.killTimeUs);
      push(std::move(kill));
      Ev restart;
      restart.kind = EvKind::PeRestart;
      restart.pe = static_cast<std::uint16_t>(cfg.faults.killPe);
      restart.t = usec(cfg.faults.killTimeUs + cfg.faults.killRestartUs);
      const SimTime restartAt = restart.t;
      push(std::move(restart));
      restartKey_ = EvKey{restartAt.ns, seq};  // push() stamped seq on it
    }
    while (!queueEmpty()) {
      bool ghost = false;
      Ev ev = popEvent(&ghost);
      // LinkTimer wakeups are calendar-engine plumbing, not simulation
      // events: the pop they stand in for is counted where the underlying
      // timer entry is consumed (fire or ack-cancel).
      const bool isWakeup = ev.kind == EvKind::LinkTimer;
      if (!isWakeup) ++eventsProcessed;
      if (cfg.abort != nullptr &&
          cfg.abort->load(std::memory_order_relaxed)) {
        stats.ok = false;
        stats.error = "aborted: external stop requested (watchdog) after " +
                      std::to_string(eventsProcessed) +
                      " events at simulated t=" + std::to_string(ev.t.us()) +
                      "us";
        stats.total = ev.t;
        return finalize();
      }
      if (cfg.maxEvents && eventsProcessed > cfg.maxEvents) {
        // Forensic report for the safety valve: which event tripped it,
        // where, and what was still live at that moment. stats.total is
        // stamped from the tripping event itself (`now` still holds the
        // previous event's time here), so the reported total and tripping
        // time agree.
        int alive = 0;
        const std::string sample = liveSpSample(alive);
        stats.ok = false;
        stats.error =
            "event budget exhausted (possible livelock): event " +
            std::to_string(eventsProcessed) + " exceeds maxEvents=" +
            std::to_string(cfg.maxEvents) + "; tripping event was " +
            evKindName(ev.kind) + " on PE " + std::to_string(ev.pe) +
            " at simulated t=" + std::to_string(ev.t.us()) + "us; " +
            std::to_string(alive) + " SPs live;" + sample;
        stats.total = ev.t;
        return finalize();
      }
      now = ev.t;
      // Protocol bookkeeping (acks, retransmit timers, suppressed
      // duplicates) can trail past the last real work; `lastUseful` tracks
      // the completion time the program actually observed.
      bool useful = true;
      // A ghost is a kill-triaged event popping at its reserved (t, seq):
      // the drop/hold bookkeeping already happened at peKill, so the pop is
      // counted (above) but not dispatched — the same no-op the heap engine
      // performs when staleOrHeld swallows the event here.
      if (ghost) continue;
      if (killMode() && staleOrHeld(ev)) continue;
      switch (ev.kind) {
        case EvKind::EuKick: {
          PeState& P = pes[ev.pe];
          if (P.kickScheduled && ev.t >= P.kickAt) P.kickScheduled = false;
          euRun(ev.pe, ev.t);
          break;
        }
        case EvKind::TokenAtMu: {
          SimTime done = unitSched(ev.pe, Unit::MU, ev.t, tm.matchTime);
          stats.counters.add("tokens.matched");
          Ev del;
          del.t = done;
          del.kind = EvKind::TokenDeliver;
          del.pe = ev.pe;
          del.tok = std::move(ev.tok);
          push(std::move(del));
          break;
        }
        case EvKind::TokenDeliver:
          deliverToken(ev.pe, ev.t, ev.tok, /*fromMu=*/true);
          break;
        case EvKind::AmArrive:
          amHandle(ev.pe, ev.t, ev.am);
          break;
        case EvKind::SlotFill:
          deliverToken(ev.pe, ev.t, ev.tok, /*fromMu=*/false);
          break;
        case EvKind::NetDeliver:
          useful = netDeliver(ev);
          break;
        case EvKind::NetAckArrive: {
          sender.onAck(ev.msgId);
          retx.erase(ev.msgId);
          if (calendar) {
            // Cancel the message's armed timer entry. Its reserved-seq slot
            // still pops (as a no-op) at its deadline; count that pop here,
            // where the heap engine's stale NetTimeout becomes inevitable.
            auto a = armedTimers.find(ev.msgId);
            if (a != armedTimers.end()) {
              armedTimers.erase(a);
              ++eventsProcessed;
            }
          }
          useful = false;
          break;
        }
        case EvKind::NetTimeout:
          fireTimeout(ev.msgId, ev.attempt, ev.t);
          useful = false;
          break;
        case EvKind::LinkTimer:
          linkTimerFire(ev);
          useful = false;
          break;
        case EvKind::PeKill:
          peKill(ev.pe, ev.t);
          useful = false;
          break;
        case EvKind::PeRestart:
          peRestart(ev.pe, ev.t);
          useful = false;
          break;
      }
      if (useful && now > lastUseful) lastUseful = now;
    }
    // Index hygiene: after a drained run every indexed entry was either
    // triaged at the kill or popped (and unlinked) normally.
    if (calendar && killTriaged_)
      PODS_CHECK_MSG(cq.indexedEmpty(),
                     "stale per-PE indexed events survived kill triage");
    stats.total = faulty() ? lastUseful : now;
    // EU time may extend past the last event.
    for (const PeState& P : pes) stats.total = std::max(stats.total, P.euFree);
    return finalize();
  }

  /// Samples live (non-Dead) frames for diagnostics: "[pe0 conduction pc=3
  /// blocked on row]" entries, capped at ~200 chars. Sets `alive` to the
  /// full count. Shared by the deadlock, event-budget, and abort reports.
  std::string liveSpSample(int& alive) const {
    alive = 0;
    std::string sample;
    for (std::size_t pe = 0; pe < pes.size(); ++pe) {
      for (const Frame& f : pes[pe].frames) {
        if (f.state != FrameState::Dead) {
          ++alive;
          if (sample.size() < 200) {
            sample += " [pe" + std::to_string(pe) + " " +
                      prog.sp(f.spCode).name + " pc=" + std::to_string(f.pc) +
                      (f.state == FrameState::Blocked
                           ? " blocked on " +
                                 prog.sp(f.spCode).slotName(f.blockedSlot)
                           : "") +
                      "]";
          }
        }
      }
    }
    return sample;
  }

  RunStats finalize() {
    for (std::size_t pe = 0; pe < pes.size(); ++pe) {
      stats.busy[pe] = pes[pe].unitBusy;
    }
    stats.counters.add("events", static_cast<std::int64_t>(eventsProcessed));
    stats.counters.add("sp.peakLive", peakLiveSps);
    stats.events = eventsProcessed;
    // Event-engine health gauges. Deterministic (derived from the event
    // stream alone), but engine-specific: the bit-identity suites compare
    // counter maps with the sim.eventq.* prefix stripped.
    if (calendar) {
      const EventQStats& eq = cq.stats();
      stats.counters.add("sim.eventq.peakDepth", eq.peakDepth);
      stats.counters.add("sim.eventq.peakBucket", eq.peakBucket);
      stats.counters.add("sim.eventq.pours", eq.pours);
      stats.counters.add("sim.eventq.widthDoublings", eq.widthDoublings);
      stats.counters.add("sim.eventq.ghostPops", eq.ghostPops);
      stats.counters.add("sim.eventq.indexTaken", eq.indexTaken);
      stats.counters.add("sim.eventq.pushedNear", eq.pushedNear);
      stats.counters.add("sim.eventq.pushedRing", eq.pushedRing);
      stats.counters.add("sim.eventq.pushedOverflow", eq.pushedOverflow);
      stats.counters.add("sim.eventq.bucketWidthNs", cq.bucketWidthNs());
    } else {
      stats.counters.add("sim.eventq.peakDepth", heapPeak);
    }
    if (faulty()) {
      // Protocol counters accumulate inside the delivery endpoints; roll
      // them (plus canonical zero registrations, so every faulty run
      // reports the same counter-name set) into the run's registry.
      sender.addStats(stats.counters);
      for (const PeState& P : pes) P.rx.addStats(stats.counters);
      proto::Delivery::registerInjectionCounters(stats.counters);
    }
    if (killMode()) {
      // Recovery-ledger residency after END-pruning: bounded by the number
      // of *live* instances, not the length of the run (see recovery.hpp).
      std::int64_t liveKeys = 0, liveMints = 0;
      for (const PeState& P : pes) liveKeys += P.dedup.liveKeys();
      for (const RecoveryLog& L : recLogs)
        for (const auto& [ctx, m] : L.mints) liveMints += static_cast<std::int64_t>(m.size());
      stats.counters.add("recovery.dedup.liveKeys", liveKeys);
      stats.counters.add("recovery.mints.live", liveMints);
    }
    if (tracing) writeTrace();
    // Diagnose incomplete executions.
    if (stats.error.empty()) {
      int alive = 0;
      const std::string sample = liveSpSample(alive);
      if (alive > 0) {
        stats.error = "deadlock: " + std::to_string(alive) +
                      " SPs never completed;" + sample;
      } else {
        for (std::size_t r = 0; r < resultSet.size(); ++r) {
          if (!resultSet[r]) {
            stats.error = "program result " + std::to_string(r) + " never set";
            break;
          }
        }
      }
    }
    stats.ok = stats.error.empty();
    return stats;
  }
};

Machine::Machine(const SpProgram& prog, MachineConfig cfg)
    : impl_(std::make_unique<Impl>(prog, cfg)) {}

Machine::~Machine() = default;

RunStats Machine::run() {
  const auto t0 = std::chrono::steady_clock::now();
  RunStats s = impl_->run();
  s.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return s;
}

const ArrayStore& Machine::arrays() const { return impl_->store; }

}  // namespace pods::sim
