// Authoritative I-structure array state for the simulated machine.
//
// Thanks to single assignment an element has exactly one value ever, so the
// simulator keeps one authoritative copy of each array (the union of all
// owners' segments) plus per-PE *metadata* (headers, page caches, deferred
// queues) inside the machine. Presence in this store is, at any simulated
// instant, exactly the owner's presence-bit view; cached copies remember the
// presence mask snapshot taken when their page was shipped.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/array_layout.hpp"
#include "runtime/value.hpp"

namespace pods::sim {

struct ArrayInfo {
  ArrayId id = 0;
  ArrayShape shape{};
  bool distributed = false;
  int homePe = 0;  // owner of everything when not distributed
  ArrayLayout layout;
  std::vector<Value> elems;  // Tag::Empty == absent

  ArrayInfo(ArrayId i, ArrayShape s, bool dist, int home, int numPEs,
            int pageElems, const std::vector<std::int64_t>& peWeights)
      : id(i),
        shape(s),
        distributed(dist),
        homePe(home),
        layout(s, numPEs, pageElems, peWeights),
        elems(static_cast<std::size_t>(s.numElems())) {}

  int owner(std::int64_t offset) const {
    return distributed ? layout.ownerOfOffset(offset) : homePe;
  }
};

class ArrayStore {
 public:
  ArrayStore(int numPEs, int pageElems,
             std::vector<std::int64_t> peWeights = {})
      : numPEs_(numPEs),
        pageElems_(pageElems),
        peWeights_(std::move(peWeights)),
        nextId_(numPEs, 0) {}

  /// Mints a globally-unique id for an allocation initiated on `pe`
  /// (id = pe + k * numPEs, the striping that makes broadcast ids agree).
  ArrayId create(int pe, ArrayShape shape, bool distributed);

  ArrayInfo* find(ArrayId id);
  const ArrayInfo* find(ArrayId id) const;

  /// Writes an element. Returns false on a single-assignment violation
  /// (the I-structure memory "reports any attempt to rewrite a value").
  bool write(ArrayId id, std::int64_t offset, Value v);

  const std::unordered_map<ArrayId, ArrayInfo>& all() const { return arrays_; }

  int numPEs() const { return numPEs_; }
  int pageElems() const { return pageElems_; }

 private:
  int numPEs_;
  int pageElems_;
  std::vector<std::int64_t> peWeights_;  // empty = uniform layout
  std::vector<ArrayId> nextId_;
  std::unordered_map<ArrayId, ArrayInfo> arrays_;
};

}  // namespace pods::sim
