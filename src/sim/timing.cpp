#include "sim/timing.hpp"

namespace pods::sim {

SimTime Timing::euCost(Op op, bool realOp) const {
  switch (op) {
    case Op::ADD: return realOp ? fAdd : intAdd;
    case Op::SUB: return realOp ? fSub : intSub;
    case Op::MUL: return realOp ? fMul : intMul;
    case Op::DIV: return realOp ? fDiv : intDiv;
    case Op::MOD: return intDiv;
    case Op::POW: return fPow;
    case Op::MIN2:
    case Op::MAX2:
      return realOp ? fCmp : intCmp;
    case Op::NEG: return realOp ? fNeg : intAdd;
    case Op::ABS: return realOp ? fAbs : intAdd;
    case Op::SQRT: return fSqrt;
    case Op::EXP: return fExp;
    case Op::LOG: return fLog;
    case Op::SIN: return fSin;
    case Op::COS: return fCos;
    case Op::FLOOR: return fCmp;
    case Op::CVTI:
    case Op::CVTR:
      return bitLogical;
    case Op::CMPLT:
    case Op::CMPLE:
    case Op::CMPGT:
    case Op::CMPGE:
    case Op::CMPEQ:
    case Op::CMPNE:
      return realOp ? fCmp : intCmp;
    case Op::AND:
    case Op::OR:
    case Op::NOT:
      return bitLogical;
    case Op::JMP:
    case Op::BRF:
      return intAdd;
    case Op::LIT:
    case Op::MOV:
    case Op::MYPE:
    case Op::NUMPE:
    case Op::NEWCTX:
    case Op::MKCONT:
    case Op::CLEAR:
      return memRead + memWrite;  // one fetch + one store in the frame
    case Op::ALLOC:
    case Op::ALLOCD:
      return intAdd;  // the Array Manager carries the real cost
    case Op::ARD:
      return localArrayRead;
    case Op::AWR:
      return addrCalc;
    case Op::DIMQ:
    case Op::RFLO:
    case Op::RFHI:
    case Op::BLKLO:
    case Op::BLKHI:
      return addrCalc;
    case Op::SENDA:
    case Op::SENDD:
    case Op::SENDC:
    case Op::ADDC:
      return memRead + memWrite;  // hand the token to the Routing/Matching Unit
    case Op::AWAITN:
      return intCmp;
    case Op::RESULT:
    case Op::END:
      return intAdd;
  }
  return intAdd;
}

}  // namespace pods::sim
