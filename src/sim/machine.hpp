// The PODS machine simulator (paper section 5.1, Figure 7).
//
// A distributed-memory MIMD machine of `numPEs` processing elements in a
// hypercube-like network. Each PE models five concurrently-operating
// functional units, each a serial resource with its own busy-time meter:
//
//   EU  Execution Unit   — runs the current SP control-driven; context
//                          switches on a disabled (empty-operand) instruction
//   MU  Matching Unit    — matches inter-SP tokens to frames by
//                          (SP id, context); instantiates frames on demand
//   MM  Memory Manager   — allocates/frees execution-memory frames
//   AM  Array Manager    — I-structure memory: presence bits, deferred
//                          reads, distributed allocation, remote page
//                          fetches with software caching
//   RU  Routing Unit     — forms messages (tokens batched by 20, pages via
//                          the Dunigan cost model) and injects them into the
//                          network (fixed 2.5-hop latency)
//
// The whole machine advances through one global discrete-event queue ordered
// by (time, sequence number), which makes every run bit-deterministic.
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "runtime/isa.hpp"
#include "sim/array_store.hpp"
#include "sim/timing.hpp"
#include "support/fault.hpp"
#include "support/stats.hpp"

namespace pods::sim {

enum class Unit : std::uint8_t { EU = 0, MU = 1, MM = 2, AM = 3, RU = 4 };
inline constexpr int kNumUnits = 5;
const char* unitName(Unit u);

/// Which event-queue implementation drives the run. Calendar is the indexed
/// calendar queue (sim/event_queue.hpp) — the default and the fast path.
/// BinaryHeap keeps the original std::priority_queue engine alive as the
/// reference implementation: the fuzz suites run both and require
/// bit-identical outputs, counters, and stats.total.
enum class EventEngine : std::uint8_t { Calendar = 0, BinaryHeap = 1 };

struct MachineConfig {
  int numPEs = 1;
  Timing timing{};
  bool cachePages = true;        // remote-page software caching (4.x)
  /// Per-PE ownership weights for distributed-array page segmentation
  /// (runtime/array_layout.hpp). Empty = uniform; otherwise one entry >= 1
  /// per PE, and PE i's share of every array's pages is proportional to
  /// peWeights[i]. Iteration partitioning (Range Filters, row ownership)
  /// follows the skewed segments automatically.
  std::vector<std::int64_t> peWeights;
  std::uint64_t maxEvents = 0;   // 0 = unlimited (safety valve for tests)
  /// When non-empty, write a Chrome-trace-format (chrome://tracing /
  /// Perfetto) JSON timeline of the run to this path: one row per
  /// functional unit per PE, with EU rows showing each SP execution slice.
  /// Capped at `maxTraceEvents`; simulated microseconds map to trace "us".
  /// A truncated trace carries one instant marker event and counts the
  /// overflow in the trace.dropped counter.
  std::string tracePath;
  std::size_t maxTraceEvents = 200'000;
  EventEngine eventEngine = EventEngine::Calendar;
  /// Fault injection + reliable delivery (support/fault.hpp). All-zero
  /// probabilities (the default) keep the exact lossless network path; any
  /// nonzero rate switches remote messages onto the ack/retransmit protocol,
  /// modeled entirely in simulated time so runs stay bit-deterministic for a
  /// fixed `faults.seed`. Counters: fault.* (injections), net.retx.*.
  FaultConfig faults;
  /// Optional external abort flag (e.g. a wall-clock watchdog): polled
  /// between events; when it becomes true the run stops with a structured
  /// "aborted" error and whatever statistics were accumulated. The pointee
  /// must outlive run(). nullptr = never aborted.
  std::atomic<bool>* abort = nullptr;
};

/// Per-SP-code profile: how many instances ran and what they cost. This is
/// the machine's built-in profiler; examples/benches use it to show where
/// Execution Unit time goes (e.g. conduction dominating SIMPLE).
struct SpProfile {
  std::string name;
  std::int64_t instances = 0;
  std::int64_t instructions = 0;
  SimTime euTime{};
};

struct RunStats {
  bool ok = false;
  std::string error;
  SimTime total{};
  std::vector<std::array<SimTime, kNumUnits>> busy;  // [pe][unit]
  Counters counters;
  std::vector<Value> results;
  std::vector<SpProfile> spProfiles;  // indexed by SP code id
  /// Host-side wall clock spent inside run() and the number of simulator
  /// events dispatched. Kept out of `counters` on purpose: counters must be
  /// bit-deterministic (the fuzz suites compare full counter maps across
  /// runs), wall time is not. podsc derives sim.events.persec from these
  /// for --stats-json.
  double wallSeconds = 0.0;
  std::uint64_t events = 0;

  double utilization(int pe, Unit u) const {
    if (total.ns <= 0) return 0.0;
    return static_cast<double>(
               busy[static_cast<std::size_t>(pe)][static_cast<int>(u)].ns) /
           static_cast<double>(total.ns);
  }
  /// The paper's "average utilization of each functional unit" (Figure 8).
  double avgUtilization(Unit u) const {
    double s = 0.0;
    for (std::size_t pe = 0; pe < busy.size(); ++pe)
      s += utilization(static_cast<int>(pe), u);
    return busy.empty() ? 0.0 : s / static_cast<double>(busy.size());
  }
};

class Machine {
 public:
  Machine(const SpProgram& prog, MachineConfig cfg);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// Runs the program to quiescence and returns timing/statistics. May be
  /// called once per Machine instance.
  RunStats run();

  /// Post-run access to array contents (for result extraction and tests).
  const ArrayStore& arrays() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace pods::sim
