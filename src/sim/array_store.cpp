#include "sim/array_store.hpp"

#include "support/check.hpp"

namespace pods::sim {

ArrayId ArrayStore::create(int pe, ArrayShape shape, bool distributed) {
  PODS_CHECK(pe >= 0 && pe < numPEs_);
  ArrayId id = static_cast<ArrayId>(pe) +
               static_cast<ArrayId>(nextId_[static_cast<std::size_t>(pe)]++) *
                   static_cast<ArrayId>(numPEs_);
  arrays_.emplace(id, ArrayInfo(id, shape, distributed, pe, numPEs_,
                                pageElems_, peWeights_));
  return id;
}

ArrayInfo* ArrayStore::find(ArrayId id) {
  auto it = arrays_.find(id);
  return it == arrays_.end() ? nullptr : &it->second;
}

const ArrayInfo* ArrayStore::find(ArrayId id) const {
  auto it = arrays_.find(id);
  return it == arrays_.end() ? nullptr : &it->second;
}

bool ArrayStore::write(ArrayId id, std::int64_t offset, Value v) {
  ArrayInfo* info = find(id);
  PODS_CHECK_MSG(info != nullptr, "write to unknown array");
  PODS_CHECK(offset >= 0 && offset < info->shape.numElems());
  Value& slot = info->elems[static_cast<std::size_t>(offset)];
  if (!slot.empty()) return false;
  slot = v;
  return true;
}

}  // namespace pods::sim
