// Calendar-queue event engine for the discrete-event simulator.
//
// The simulator used to run on a single std::priority_queue<Ev>: every push
// and pop paid O(log n) sift steps, and each sift step moved a fat (~300 B)
// Ev by value. This header replaces it with the classic calendar queue
// (Brown 1988): events are hashed by timestamp into fixed-width time buckets
// arranged in a ring, the current bucket is drained through a small binary
// heap, and events beyond the ring's horizon wait in an overflow list that is
// poured back into the ring when the cursor reaches it. Push and pop are
// O(1) amortized, and the Ev payloads live in a slab pool — the buckets and
// heaps only shuffle 24-byte (key, index) slots.
//
// Ordering contract: pops come out strictly ordered by (t, seq), exactly the
// order the old binary heap produced, so simulation outputs stay
// bit-identical. seq is the caller's global push counter; callers may also
// push with a previously reserved seq (used by the per-link retransmit-timer
// collapse in machine.cpp) as long as every (t, seq) key pushed is unique
// and never earlier than the last key popped.
//
// A second, orthogonal service: entries can be pushed *indexed*, which links
// them into an intrusive doubly linked list threaded through the pool. The
// simulator indexes the kill victim's PE-local events so fail-stop triage
// (peKill) can collect exactly that PE's pending events in O(victim) instead
// of filtering the whole queue. takeIndexed() copies out every indexed entry
// below a key bound, sorted by (t, seq) — the same order dispatch-time triage
// would have seen them in — and turns the slots into *ghosts*: they stay
// queued, keep presenting their key to peekKey() (a reference engine that
// triages at dispatch still has these events at the head, where they steer
// the EU yield check), and pop at their exact (t, seq) flagged as ghosts so
// the caller can count the pop without re-dispatching the event.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace pods::sim {

/// Total order on simulator events: earlier simulated time first, push order
/// (sequence number) breaking ties.
struct EvKey {
  std::int64_t t = 0;      ///< simulated nanoseconds
  std::uint64_t seq = 0;   ///< global push order

  friend constexpr bool operator<(const EvKey& a, const EvKey& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.seq < b.seq;
  }
  friend constexpr bool operator==(const EvKey& a, const EvKey& b) {
    return a.t == b.t && a.seq == b.seq;
  }
  friend constexpr bool operator!=(const EvKey& a, const EvKey& b) {
    return !(a == b);
  }
};

/// Engine health/occupancy numbers, surfaced as sim.eventq.* counters.
struct EventQStats {
  std::int64_t peakDepth = 0;       ///< max live entries at any instant
  std::int64_t peakBucket = 0;      ///< largest single bucket ever drained
  std::int64_t pours = 0;           ///< overflow redistributions
  std::int64_t widthDoublings = 0;  ///< bucket-width adaptations
  std::int64_t ghostPops = 0;       ///< triaged slots popped as no-ops
  std::int64_t indexTaken = 0;      ///< entries removed via takeIndexed()
  // Placement census: where pushes landed (current-bucket heap, ring
  // bucket, or overflow) — the per-tier occupancy picture of the calendar.
  std::int64_t pushedNear = 0;
  std::int64_t pushedRing = 0;
  std::int64_t pushedOverflow = 0;
};

template <typename E>
class CalendarQueue {
 public:
  /// `widthNs` must be a power of two (bucket lookup is a shift); `buckets`
  /// must be a power of two as well. Defaults suit the PODS machine model,
  /// whose event deltas are a few microseconds (unit signal 1 us, token
  /// route 19.5 us) with occasional 0.5–32 ms retransmit timers: 4.096 us
  /// buckets x 1024 give a ~4.2 ms ring horizon.
  explicit CalendarQueue(std::int64_t widthNs = 4096, std::size_t buckets = 1024)
      : widthShift_(shiftFor(widthNs)), ring_(buckets), ringMask_(buckets - 1) {
    PODS_CHECK_MSG((buckets & (buckets - 1)) == 0, "bucket count must be a power of two");
  }

  bool empty() const { return live_ == 0; }
  std::int64_t size() const { return live_; }

  /// Key of the next event to pop, or nullptr when empty. O(1) amortized —
  /// this is what the per-step "is the global head earlier than my local
  /// clock" check reads instead of a heap top.
  const EvKey* peekKey() {
    if (!settle()) return nullptr;
    return &cur_.front().key;
  }

  /// Pop the minimum-(t, seq) event. Must be nonempty. `ghost` (when
  /// non-null) is set when the popped slot was consumed by takeIndexed():
  /// the payload is a copy of the triaged event, and the pop stands in for
  /// the dispatch the reference engine would have counted here.
  E pop(EvKey* keyOut = nullptr, bool* ghost = nullptr) {
    PODS_CHECK_MSG(settle(), "pop on empty CalendarQueue");
    const Slot s = cur_.front();
    std::pop_heap(cur_.begin(), cur_.end(), SlotLater{});
    cur_.pop_back();
    Node& n = pool_[s.idx];
    if (keyOut) *keyOut = s.key;
    if (ghost) *ghost = n.ghost;
    if (n.ghost) ++stats_.ghostPops;
    E ev = std::move(n.ev);
    unlink(s.idx);
    freeNode(s.idx);
    --live_;
    return ev;
  }

  /// Insert `ev` at `key`. `indexed` additionally links the entry into the
  /// side index consumed by takeIndexed().
  void push(const EvKey& key, E ev, bool indexed = false) {
    const std::uint32_t idx = allocNode();
    Node& n = pool_[idx];
    n.key = key;
    n.ev = std::move(ev);
    n.ghost = false;
    if (indexed) linkIndexed(idx);
    const Slot s{key, idx};
    const std::int64_t b = key.t >> widthShift_;
    if (b <= curBucket_) {
      // Due now (or in the bucket being drained): straight into the heap.
      cur_.push_back(s);
      std::push_heap(cur_.begin(), cur_.end(), SlotLater{});
      ++stats_.pushedNear;
    } else if (b < baseBucket_ + static_cast<std::int64_t>(ring_.size())) {
      ring_[static_cast<std::size_t>(b) & ringMask_].push_back(s);
      ++stats_.pushedRing;
    } else {
      overflow_.push_back(s);
      ++stats_.pushedOverflow;
    }
    ++live_;
    if (live_ > stats_.peakDepth) stats_.peakDepth = live_;
  }

  /// Copy out every *indexed* entry with key < `bound`, sorted by (t, seq).
  /// Entries at or past `bound` stay queued (and stay indexed). The taken
  /// slots stay queued as ghosts: they are unlinked from the index, but
  /// their keys remain visible to peekKey() and they still pop — flagged —
  /// at their reserved (t, seq), so ordering-sensitive observers (the EU
  /// yield check) and the pop count see exactly what a dispatch-time-triage
  /// engine would.
  std::vector<E> takeIndexed(const EvKey& bound) {
    std::vector<std::pair<EvKey, std::uint32_t>> picked;
    std::int32_t i = indexHead_;
    while (i >= 0) {
      const auto idx = static_cast<std::uint32_t>(i);
      Node& n = pool_[idx];
      const std::int32_t next = n.inext;
      if (n.key < bound) picked.emplace_back(n.key, idx);
      i = next;
    }
    std::sort(picked.begin(), picked.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<E> out;
    out.reserve(picked.size());
    for (const auto& [key, idx] : picked) {
      Node& n = pool_[idx];
      out.push_back(n.ev);  // copy: the ghost pop still reports the event
      unlink(idx);
      n.ghost = true;
      ++stats_.indexTaken;
    }
    return out;
  }

  /// True when no indexed entries remain (triage invariant check).
  bool indexedEmpty() const { return indexHead_ < 0; }

  const EventQStats& stats() const { return stats_; }

  /// Per-bucket occupancy snapshot of the ring (live, non-ghost slots),
  /// for --stats-json observability. Index 0 is the cursor's bucket.
  std::vector<std::size_t> ringOccupancy() const {
    std::vector<std::size_t> occ(ring_.size(), 0);
    for (std::size_t k = 0; k < ring_.size(); ++k) {
      const std::size_t slot = static_cast<std::size_t>(curBucket_ + static_cast<std::int64_t>(k)) & ringMask_;
      std::size_t liveHere = 0;
      for (const Slot& s : ring_[slot])
        if (!pool_[s.idx].ghost) ++liveHere;
      occ[k] = liveHere;
    }
    return occ;
  }

  std::int64_t bucketWidthNs() const { return std::int64_t{1} << widthShift_; }

 private:
  struct Slot {
    EvKey key;
    std::uint32_t idx = 0;
  };
  // Max-comparator so std::push_heap/pop_heap realize a min-heap on EvKey.
  struct SlotLater {
    bool operator()(const Slot& a, const Slot& b) const { return b.key < a.key; }
  };
  struct Node {
    EvKey key;            // mirrors the slot key; read by takeIndexed
    E ev{};
    std::int32_t iprev = -1;  // intrusive index list; -1 = not linked / end
    std::int32_t inext = -1;
    bool linked = false;
    bool ghost = false;  // taken by takeIndexed; pops as a flagged no-op
  };

  static std::uint32_t shiftFor(std::int64_t widthNs) {
    PODS_CHECK_MSG(widthNs > 0 && (widthNs & (widthNs - 1)) == 0,
                   "bucket width must be a power of two");
    std::uint32_t s = 0;
    while ((std::int64_t{1} << s) < widthNs) ++s;
    return s;
  }

  std::uint32_t allocNode() {
    std::uint32_t idx;
    if (!free_.empty()) {
      idx = free_.back();
      free_.pop_back();
    } else {
      idx = static_cast<std::uint32_t>(pool_.size());
      pool_.emplace_back();
    }
    return idx;
  }

  void freeNode(std::uint32_t idx) {
    pool_[idx].ev = E{};  // release any heap storage the payload owns
    free_.push_back(idx);
  }

  void linkIndexed(std::uint32_t idx) {
    Node& n = pool_[idx];
    n.linked = true;
    n.iprev = -1;
    n.inext = indexHead_;
    if (indexHead_ >= 0) pool_[static_cast<std::uint32_t>(indexHead_)].iprev = static_cast<std::int32_t>(idx);
    indexHead_ = static_cast<std::int32_t>(idx);
  }

  void unlink(std::uint32_t idx) {
    Node& n = pool_[idx];
    if (!n.linked) return;
    if (n.iprev >= 0)
      pool_[static_cast<std::uint32_t>(n.iprev)].inext = n.inext;
    else
      indexHead_ = n.inext;
    if (n.inext >= 0) pool_[static_cast<std::uint32_t>(n.inext)].iprev = n.iprev;
    n.linked = false;
    n.iprev = n.inext = -1;
  }

  /// Advance the cursor until the current-bucket heap holds the minimum.
  /// Returns false iff the queue is empty. Ghosts are NOT skipped here:
  /// their keys must stay visible until their pop moment.
  bool settle() {
    for (;;) {
      if (!cur_.empty()) return true;
      if (live_ == 0) return false;
      // Current bucket exhausted: walk the ring forward.
      const std::int64_t horizon = baseBucket_ + static_cast<std::int64_t>(ring_.size());
      ++curBucket_;
      if (curBucket_ >= horizon) {
        pour();
        continue;
      }
      auto& bucket = ring_[static_cast<std::size_t>(curBucket_) & ringMask_];
      if (bucket.empty()) continue;
      if (static_cast<std::int64_t>(bucket.size()) > stats_.peakBucket)
        stats_.peakBucket = static_cast<std::int64_t>(bucket.size());
      cur_ = std::move(bucket);
      bucket.clear();
      std::make_heap(cur_.begin(), cur_.end(), SlotLater{});
    }
  }

  /// Ring exhausted: re-base it at the earliest overflow event and pour the
  /// overflow back in, doubling the bucket width first when the overflow
  /// spans far beyond one ring revolution (bounds the number of pours for
  /// pathological far-future schedules, e.g. exponential retransmit
  /// backoff).
  void pour() {
    ++stats_.pours;
    std::vector<Slot> pending = std::move(overflow_);
    overflow_.clear();
    if (pending.empty()) {
      baseBucket_ = curBucket_;
      return;
    }
    std::int64_t minT = pending.front().key.t;
    std::int64_t maxT = pending.front().key.t;
    for (const Slot& s : pending) {
      minT = std::min(minT, s.key.t);
      maxT = std::max(maxT, s.key.t);
    }
    // Adapt: if the span would not fit in ~4 ring revolutions, widen.
    while (((maxT - minT) >> widthShift_) >=
           4 * static_cast<std::int64_t>(ring_.size())) {
      ++widthShift_;
      ++stats_.widthDoublings;
    }
    baseBucket_ = curBucket_ = minT >> widthShift_;
    const std::int64_t horizon = baseBucket_ + static_cast<std::int64_t>(ring_.size());
    for (const Slot& s : pending) {
      const std::int64_t b = s.key.t >> widthShift_;
      if (b <= curBucket_) {
        cur_.push_back(s);
      } else if (b < horizon) {
        ring_[static_cast<std::size_t>(b) & ringMask_].push_back(s);
      } else {
        overflow_.push_back(s);
      }
    }
    std::make_heap(cur_.begin(), cur_.end(), SlotLater{});
  }

  std::uint32_t widthShift_;
  std::vector<std::vector<Slot>> ring_;
  std::size_t ringMask_;
  std::vector<Slot> cur_;        // min-heap draining the current bucket
  std::vector<Slot> overflow_;   // events beyond the ring horizon
  std::int64_t baseBucket_ = 0;  // first bucket the ring currently maps
  std::int64_t curBucket_ = 0;   // bucket the cursor is draining
  std::int64_t live_ = 0;        // queued entries (ghosts included)
  std::vector<Node> pool_;
  std::vector<std::uint32_t> free_;
  std::int32_t indexHead_ = -1;
  EventQStats stats_;
};

}  // namespace pods::sim
