#include "baseline/evaluator.hpp"

#include <stdexcept>

#include "runtime/ops.hpp"
#include "support/check.hpp"
#include "translate/translator.hpp"

namespace pods::baseline {

using ir::Block;
using ir::BlockKind;
using ir::Item;
using ir::ItemKind;
using ir::kNoVal;
using ir::Node;
using ir::NodeOp;
using ir::ValId;

namespace {

struct EvalError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Charging target: SPMD (scalar code executed by every PE) or one PE's
/// portion of a distributed loop.
struct Mode {
  bool spmd = true;
  int pe = 0;
};

class Interp {
 public:
  Interp(const ir::Program& prog, const partition::Plan* plan, int numPEs,
         const sim::Timing& tm)
      : prog_(prog), plan_(plan), numPEs_(numPEs), tm_(tm) {
    clock_.assign(static_cast<std::size_t>(numPEs), SimTime{});
  }

  BaselineResult run() {
    BaselineResult out;
    try {
      const ir::Function& main = prog_.main();
      Env env(main.numVals);
      evalBlockBody(main.body, env, Mode{});
      for (ValId r : main.retVals) out.results.push_back(env.at(r));
      out.ok = true;
    } catch (const EvalError& e) {
      out.ok = false;
      out.error = e.what();
    }
    out.peTime = clock_;
    for (SimTime t : clock_) out.total = std::max(out.total, t);
    out.counters = counters_;
    out.arrays = std::move(heap_);
    return out;
  }

 private:
  struct Env {
    explicit Env(std::uint32_t n) : vals(n) {}
    std::vector<Value> vals;
    Value& at(ValId v) { return vals[v]; }
  };

  // --- cost charging -------------------------------------------------------

  void charge(const Mode& m, SimTime c) {
    if (m.spmd) {
      for (SimTime& t : clock_) t += c;
    } else {
      clock_[static_cast<std::size_t>(m.pe)] += c;
    }
  }

  SimTime localReadCost() const { return tm_.intMul + tm_.intAdd + tm_.memRead; }
  SimTime localWriteCost() const { return tm_.intMul + tm_.intAdd + tm_.memWrite; }
  SimTime loopIterCost() const { return tm_.intCmp + tm_.intAdd + tm_.intAdd; }

  // --- arrays --------------------------------------------------------------

  ArrayId alloc(ArrayShape shape, const Mode& m) {
    if (shape.dim0 < 0 || shape.dim1 < 0 ||
        shape.numElems() > (std::int64_t(1) << 24)) {
      throw EvalError("bad allocation dimensions");
    }
    charge(m, tm_.allocArray);
    const bool dist = plan_ && plan_->distributeArrays;
    heap_.emplace_back(shape, dist, numPEs_, tm_.pageElems);
    counters_.add("array.allocs");
    return static_cast<ArrayId>(heap_.size() - 1);
  }

  BArray& arr(const Value& v) {
    if (!v.isArray() || v.asArray() >= heap_.size())
      throw EvalError("not an array value");
    return heap_[v.asArray()];
  }

  std::int64_t resolveOffset(const BArray& a, std::int64_t i0, std::int64_t i1,
                             int rank) {
    if (rank == 1) {
      if (i0 < 0 || i0 >= a.shape.numElems())
        throw EvalError("array read/write out of bounds");
      return i0;
    }
    if (!a.shape.inBounds(i0, i1))
      throw EvalError("array read/write out of bounds");
    return a.shape.flatten(i0, i1);
  }

  int ownerOf(const BArray& a, std::int64_t offset) const {
    return a.distributed ? a.layout.ownerOfOffset(offset) : 0;
  }

  std::uint64_t fetchKey(ArrayId id, std::int64_t page, int pe) const {
    return (static_cast<std::uint64_t>(id) << 28) ^
           (static_cast<std::uint64_t>(page) << 12) ^
           static_cast<std::uint64_t>(pe);
  }

  /// One PE reads one element under the static availability model.
  Value readOne(ArrayId id, std::int64_t offset, int pe) {
    BArray& a = heap_[id];
    const Value& v = a.elems[static_cast<std::size_t>(offset)];
    if (v.empty()) {
      throw EvalError(
          "read of an element never written (a control-driven schedule "
          "cannot satisfy this dependence)");
    }
    SimTime& t = clock_[static_cast<std::size_t>(pe)];
    const SimTime produced = a.producedAt[static_cast<std::size_t>(offset)];
    const int owner = ownerOf(a, offset);
    if (owner == pe) {
      t = std::max(t, produced) + localReadCost();
      return v;
    }
    counters_.add("array.reads.remote");
    const std::int64_t page = a.layout.pageOfOffset(offset);
    const std::uint64_t key = fetchKey(id, page, pe);
    auto it = fetched_.find(key);
    if (it != fetched_.end() && produced <= it->second) {
      t += localReadCost();  // available in the local page copy
      counters_.add("array.reads.cacheHit");
      return v;
    }
    // Wait for the producer's push, then receive the page.
    const SimTime avail = produced + tm_.pageMessage() + tm_.networkHop;
    t = std::max(t, avail) + tm_.memWrite * tm_.pageElems + localReadCost();
    fetched_[key] = std::max(it == fetched_.end() ? SimTime{} : it->second,
                             produced);
    counters_.add("array.pageFetches");
    return v;
  }

  Value readElem(ArrayId id, std::int64_t offset, const Mode& m) {
    if (!m.spmd) return readOne(id, offset, m.pe);
    Value out{};
    for (int p = 0; p < numPEs_; ++p) out = readOne(id, offset, p);
    return out;
  }

  void writeElem(ArrayId id, std::int64_t offset, Value v, const Mode& m) {
    BArray& a = heap_[id];
    Value& slot = a.elems[static_cast<std::size_t>(offset)];
    if (!slot.empty()) {
      throw EvalError("single-assignment violation: array element " +
                      std::to_string(offset) + " written twice");
    }
    const int owner = ownerOf(a, offset);
    SimTime produced;
    if (m.spmd) {
      // Every PE computes; the owner stores.
      for (int p = 0; p < numPEs_; ++p)
        clock_[static_cast<std::size_t>(p)] += localWriteCost();
      produced = clock_[static_cast<std::size_t>(owner)];
    } else if (owner == m.pe) {
      clock_[static_cast<std::size_t>(m.pe)] += localWriteCost();
      produced = clock_[static_cast<std::size_t>(m.pe)];
    } else {
      // Remote write: ship the value to the owner.
      SimTime& t = clock_[static_cast<std::size_t>(m.pe)];
      t += localWriteCost() + tm_.tokenRoute();
      produced = t + tm_.networkHop;
      counters_.add("array.writes.remote");
    }
    slot = v;
    a.producedAt[static_cast<std::size_t>(offset)] = produced;
  }

  // --- expression/item evaluation -------------------------------------------

  void evalNode(const Node& n, Env& env, const Mode& m) {
    switch (n.op) {
      case NodeOp::Const:
        charge(m, tm_.memRead + tm_.memWrite);
        env.at(n.dst) = n.imm;
        return;
      case NodeOp::Alloc: {
        ArrayShape shape;
        shape.rank = n.nin;
        shape.dim0 = env.at(n.in[0]).asInt();
        shape.dim1 = n.nin == 2 ? env.at(n.in[1]).asInt() : 1;
        env.at(n.dst) = Value::arrayv(alloc(shape, m));
        return;
      }
      case NodeOp::ARead: {
        const BArray& a = arr(env.at(n.in[0]));
        const int rank = n.nin - 1;
        std::int64_t off = resolveOffset(
            a, env.at(n.in[1]).asInt(),
            rank == 2 ? env.at(n.in[2]).asInt() : 0, rank);
        counters_.add("array.reads");
        env.at(n.dst) = readElem(env.at(n.in[0]).asArray(), off, m);
        return;
      }
      case NodeOp::Dim0:
      case NodeOp::Dim1: {
        const BArray& a = arr(env.at(n.in[0]));
        charge(m, tm_.memRead);
        env.at(n.dst) = Value::intv(n.op == NodeOp::Dim1 ? a.shape.dim1
                                                         : a.shape.dim0);
        return;
      }
      case NodeOp::AWrite: {
        const BArray& a = arr(env.at(n.in[0]));
        const int rank = n.nin - 2;
        std::int64_t off = resolveOffset(
            a, env.at(n.in[1]).asInt(),
            rank == 2 ? env.at(n.in[2]).asInt() : 0, rank);
        counters_.add("array.writes");
        writeElem(env.at(n.in[0]).asArray(), off,
                  env.at(n.in[rank + 1]), m);
        return;
      }
      default:
        break;
    }
    const Op op = translate::nodeToOp(n.op);
    if (isBinaryOp(op)) {
      const Value& a = env.at(n.in[0]);
      const Value& b = env.at(n.in[1]);
      charge(m, tm_.euCost(op, binIsReal(a, b)));
      env.at(n.dst) = applyBin(op, a, b);
      return;
    }
    PODS_CHECK(isUnaryOp(op));
    const Value& a = env.at(n.in[0]);
    charge(m, tm_.euCost(op, a.isReal()));
    env.at(n.dst) = applyUn(op, a);
  }

  void evalItems(const std::vector<Item>& items, Env& env, const Mode& m) {
    for (const Item& it : items) {
      switch (it.kind) {
        case ItemKind::Node:
          evalNode(it.node, env, m);
          break;
        case ItemKind::If:
          charge(m, tm_.intCmp);
          if (env.at(it.ifi->cond).truthy()) {
            evalItems(it.ifi->thenItems, env, m);
          } else {
            evalItems(it.ifi->elseItems, env, m);
          }
          break;
        case ItemKind::Call: {
          const ir::Function& fn = prog_.fns[it.call->fnIndex];
          charge(m, tm_.contextSwitch);  // conventional call overhead
          Env callee(fn.numVals);
          for (std::size_t i = 0; i < it.call->args.size(); ++i)
            callee.at(fn.params[i]) = env.at(it.call->args[i]);
          evalBlockBody(fn.body, callee, m);
          if (it.call->dst != kNoVal) {
            PODS_CHECK(!fn.retVals.empty());
            env.at(it.call->dst) = callee.at(fn.retVals[0]);
          }
          break;
        }
        case ItemKind::Loop:
          evalLoop(*it.loop, env, m);
          break;
        case ItemKind::Next:
          charge(m, tm_.memRead + tm_.memWrite);
          // Write the carried shadow of the *owning* loop; the loop driver
          // reads shadows at the bottom of each iteration.
          PODS_CHECK(curLoop_ != nullptr);
          env.at(curLoop_->carried[it.carryIndex].shadow) = env.at(it.nextVal);
          break;
      }
    }
  }

  void evalBlockBody(const Block& b, Env& env, const Mode& m) {
    evalItems(b.body, env, m);
  }

  /// Runs the iterations of `loop` for indices [lo, hi] (respecting loop
  /// direction) under mode `m`.
  void runRange(const Block& loop, Env& env, const Mode& m, std::int64_t lo,
                std::int64_t hi) {
    const Block* savedLoop = curLoop_;
    curLoop_ = &loop;
    if (loop.ascending) {
      for (std::int64_t i = lo; i <= hi; ++i) {
        charge(m, loopIterCost());
        env.at(loop.indexVal) = Value::intv(i);
        iterBody(loop, env, m);
      }
    } else {
      for (std::int64_t i = lo; i >= hi; --i) {
        charge(m, loopIterCost());
        env.at(loop.indexVal) = Value::intv(i);
        iterBody(loop, env, m);
      }
    }
    curLoop_ = savedLoop;
  }

  void iterBody(const Block& loop, Env& env, const Mode& m) {
    for (const ir::Carried& c : loop.carried)
      env.at(c.shadow) = env.at(c.cur);
    evalItems(loop.body, env, m);
    for (const ir::Carried& c : loop.carried)
      env.at(c.cur) = env.at(c.shadow);
  }

  void evalLoop(const Block& loop, Env& env, const Mode& m) {
    for (const ir::Carried& c : loop.carried) env.at(c.cur) = env.at(c.init);

    if (loop.kind == BlockKind::WhileLoop) {
      const Block* savedLoop = curLoop_;
      curLoop_ = &loop;
      for (;;) {
        evalItems(loop.condItems, env, m);
        charge(m, tm_.intCmp);
        if (!env.at(loop.condVal).truthy()) break;
        iterBody(loop, env, m);
      }
      curLoop_ = savedLoop;
      evalItems(loop.finalItems, env, m);
      return;
    }

    const std::int64_t init = env.at(loop.initVal).asInt();
    const std::int64_t limit = env.at(loop.limitVal).asInt();
    const partition::LoopPlan* lp = plan_ ? plan_->find(&loop) : nullptr;
    if (m.spmd && lp && lp->replicated && numPEs_ > 1) {
      counters_.add("loops.distributed");
      for (int p = 0; p < numPEs_; ++p) {
        IdxRange r = rfBounds(loop, *lp, env, p, init, limit);
        Mode one{false, p};
        if (!r.empty()) {
          if (loop.ascending) {
            runRange(loop, env, one, r.lo, r.hi);
          } else {
            runRange(loop, env, one, r.hi, r.lo);
          }
        }
      }
    } else {
      counters_.add("loops.local");
      runRange(loop, env, m, init, limit);
    }
    evalItems(loop.finalItems, env, m);
  }

  /// Range-Filter bounds for PE p, as an ascending inclusive range clamped to
  /// the loop's own bounds.
  IdxRange rfBounds(const Block& loop, const partition::LoopPlan& lp, Env& env,
                    int p, std::int64_t init, std::int64_t limit) {
    const std::int64_t lo0 = loop.ascending ? init : limit;
    const std::int64_t hi0 = loop.ascending ? limit : init;
    IdxRange r;
    switch (lp.mode) {
      case partition::RfMode::OwnedRows: {
        const BArray& a = arr(env.at(lp.governingArray));
        IdxRange rows = a.distributed
                            ? a.layout.ownedRows(p)
                            : (p == 0 ? IdxRange{0, a.shape.dim0 - 1}
                                      : IdxRange{});
        r = {rows.lo - lp.offset, rows.hi - lp.offset};
        break;
      }
      case partition::RfMode::OwnedColsOfRow: {
        const BArray& a = arr(env.at(lp.governingArray));
        std::int64_t row = env.at(lp.rowIndexVal).asInt();
        IdxRange cols = a.distributed
                            ? a.layout.ownedColsOfRow(p, row)
                            : (p == 0 ? IdxRange{0, a.shape.dim1 - 1}
                                      : IdxRange{});
        r = {cols.lo - lp.offset, cols.hi - lp.offset};
        break;
      }
      case partition::RfMode::BlockRange:
        r = blockPartition(lo0, hi0, p, numPEs_);
        break;
    }
    return {std::max(r.lo, lo0), std::min(r.hi, hi0)};
  }

  const ir::Program& prog_;
  const partition::Plan* plan_;
  int numPEs_;
  sim::Timing tm_;
  std::vector<SimTime> clock_;
  std::vector<BArray> heap_;
  std::unordered_map<std::uint64_t, SimTime> fetched_;
  Counters counters_;
  const Block* curLoop_ = nullptr;
};

}  // namespace

BaselineResult runStatic(const ir::Program& prog, const partition::Plan& plan,
                         int numPEs, const sim::Timing& timing) {
  return Interp(prog, &plan, numPEs, timing).run();
}

BaselineResult runSequential(const ir::Program& prog,
                             const sim::Timing& timing) {
  return Interp(prog, nullptr, 1, timing).run();
}

}  // namespace pods::baseline
