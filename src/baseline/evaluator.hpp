// Baseline execution models (paper sections 5.3.4 and 6, Figure 10).
//
// A direct interpreter over the dataflow-graph IR with a pluggable machine
// cost model. Two configurations matter:
//
//  1. Sequential ("the most efficient sequential version written in a
//     conventional language", section 5.3.4): one PE, plain compiled-code
//     costs — address arithmetic without presence checks, no tokens, no
//     matching, no process management. This is the denominator of the
//     paper's efficiency comparison and the oracle for result checking.
//
//  2. Static / Pingali-Rogers style (section 6): the same distribution plan
//     as PODS (block-distributed loops over PEs, SPMD execution of scalar
//     code), but completely control-driven: one thread of control per PE,
//     remote reads fetch pages and *stall* the reading PE (no context
//     switch can hide latency), no dynamic process creation overheads.
//     Producer-side availability is tracked per element so consumers wait
//     for data to have been produced — a generous point-to-point model of
//     compiled message passing (no global barriers).
//
// Because the interpreter uses the same value semantics (runtime/ops.hpp)
// as the PODS machine, results are bit-identical across all three models —
// the Church-Rosser determinacy the tests assert.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "ir/graph.hpp"
#include "partition/plan.hpp"
#include "runtime/array_layout.hpp"
#include "runtime/value.hpp"
#include "sim/timing.hpp"
#include "support/stats.hpp"

namespace pods::baseline {

/// One I-structure array in the baseline heap, with per-element produce
/// times for the static machine's availability model.
struct BArray {
  ArrayShape shape{};
  bool distributed = false;
  ArrayLayout layout;
  std::vector<Value> elems;
  std::vector<SimTime> producedAt;

  BArray(ArrayShape s, bool dist, int numPEs, int pageElems)
      : shape(s),
        distributed(dist),
        layout(s, numPEs, pageElems),
        elems(static_cast<std::size_t>(s.numElems())),
        producedAt(static_cast<std::size_t>(s.numElems())) {}
};

struct BaselineResult {
  bool ok = false;
  std::string error;
  std::vector<Value> results;
  SimTime total{};                // max over PE clocks
  std::vector<SimTime> peTime;    // final clock per PE
  Counters counters;
  std::vector<BArray> arrays;     // heap snapshot (ArrayId == index)

  /// Contents of a result array by its Value handle.
  const BArray* array(const Value& v) const {
    if (!v.isArray() || v.asArray() >= arrays.size()) return nullptr;
    return &arrays[v.asArray()];
  }
};

/// Runs the static (control-driven, statically distributed) model.
BaselineResult runStatic(const ir::Program& prog, const partition::Plan& plan,
                         int numPEs, const sim::Timing& timing = {});

/// Runs the plain sequential model (one PE, conventional-code costs).
BaselineResult runSequential(const ir::Program& prog,
                             const sim::Timing& timing = {});

}  // namespace pods::baseline
