#include "proto/ctl.hpp"

#include <cstring>

namespace pods {
namespace proto {
namespace ctl {

namespace {

// Count-driven decode loops are safe without explicit caps: every element
// consumes at least one payload byte, so a lying count field exhausts the
// Reader (ok_ drops) after at most payload-size iterations, and frame
// payloads are capped at kMaxFrameBytes before decoding starts.

bool validTag(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(FrameTag::Hello) &&
         t <= static_cast<std::uint8_t>(FrameTag::Welcome);
}

}  // namespace

// ---- Framing --------------------------------------------------------------

void encodeFrame(FrameTag tag, const std::uint8_t* payload, std::size_t len,
                 std::vector<std::uint8_t>& out) {
  PODS_CHECK_MSG(len <= kMaxFrameBytes, "ctl frame payload over limit");
  const std::uint32_t n = static_cast<std::uint32_t>(len);
  const std::size_t base = out.size();
  out.resize(base + 5 + len);
  std::memcpy(out.data() + base, &n, 4);
  out[base + 4] = static_cast<std::uint8_t>(tag);
  if (len != 0) std::memcpy(out.data() + base + 5, payload, len);
}

void FrameReader::feed(const std::uint8_t* data, std::size_t n) {
  buf_.insert(buf_.end(), data, data + n);
}

bool FrameReader::next(Frame& f, bool* bad) {
  *bad = bad_;
  if (bad_) return false;
  // Compact the consumed prefix lazily so feed() stays amortized O(n).
  if (off_ > 0 && off_ == buf_.size()) {
    buf_.clear();
    off_ = 0;
  }
  if (buf_.size() - off_ < 5) return false;
  std::uint32_t len = 0;
  std::memcpy(&len, buf_.data() + off_, 4);
  const std::uint8_t tag = buf_[off_ + 4];
  if (len > kMaxFrameBytes || !validTag(tag)) {
    bad_ = true;
    *bad = true;
    return false;
  }
  if (buf_.size() - off_ - 5 < len) return false;
  f.tag = static_cast<FrameTag>(tag);
  f.payload.assign(buf_.begin() + static_cast<std::ptrdiff_t>(off_ + 5),
                   buf_.begin() + static_cast<std::ptrdiff_t>(off_ + 5 + len));
  off_ += 5 + len;
  return true;
}

// ---- Primitives -----------------------------------------------------------

void Writer::u16(std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}
void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void Writer::f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, 8);
  u64(bits);
}
void Writer::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}
void Writer::value(const Value& v) {
  u8(static_cast<std::uint8_t>(v.tag));
  u64(v.bits);
}

bool Reader::u8(std::uint8_t& v) {
  if (!ok_ || n_ - off_ < 1) return ok_ = false;
  v = p_[off_++];
  return true;
}
bool Reader::u16(std::uint16_t& v) {
  if (!ok_ || n_ - off_ < 2) return ok_ = false;
  std::memcpy(&v, p_ + off_, 2);
  off_ += 2;
  return true;
}
bool Reader::u32(std::uint32_t& v) {
  if (!ok_ || n_ - off_ < 4) return ok_ = false;
  std::memcpy(&v, p_ + off_, 4);
  off_ += 4;
  return true;
}
bool Reader::u64(std::uint64_t& v) {
  if (!ok_ || n_ - off_ < 8) return ok_ = false;
  std::memcpy(&v, p_ + off_, 8);
  off_ += 8;
  return true;
}
bool Reader::i64(std::int64_t& v) {
  std::uint64_t u = 0;
  if (!u64(u)) return false;
  v = static_cast<std::int64_t>(u);
  return true;
}
bool Reader::f64(double& v) {
  std::uint64_t bits = 0;
  if (!u64(bits)) return false;
  std::memcpy(&v, &bits, 8);
  return true;
}
bool Reader::str(std::string& s) {
  std::uint32_t len = 0;
  if (!u32(len)) return false;
  if (n_ - off_ < len) return ok_ = false;
  s.assign(reinterpret_cast<const char*>(p_ + off_), len);
  off_ += len;
  return true;
}
bool Reader::value(Value& v) {
  std::uint8_t tag = 0;
  std::uint64_t bits = 0;
  if (!u8(tag) || !u64(bits)) return false;
  if (tag > static_cast<std::uint8_t>(Tag::Cont)) return ok_ = false;
  v.tag = static_cast<Tag>(tag);
  v.bits = bits;
  return true;
}

std::uint64_t fnv1a(const std::uint8_t* p, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

// ---- Hello ----------------------------------------------------------------

void encodeHello(const HelloMsg& m, std::vector<std::uint8_t>& out) {
  Writer w;
  w.u32(m.magic);
  w.u16(m.version);
  out = std::move(w.out);
}

bool decodeHello(const std::uint8_t* p, std::size_t n, HelloMsg& m) {
  Reader r(p, n);
  if (!r.u32(m.magic) || !r.u16(m.version)) return false;
  return r.done();
}

// ---- Log records ----------------------------------------------------------

void encodeLogRec(const LogRec& r, Writer& w) {
  w.u8(r.kind);
  if (r.kind == LogRec::kResult) {
    w.u32(r.mintSeq);
    w.value(r.mintV);
    return;
  }
  if (r.kind == LogRec::kMint) {
    w.u64(r.mintCtx);
    w.u32(r.mintSeq);
    w.value(r.mintV);
    w.u64(r.ctxCounter);
    return;
  }
  const RecEntry& e = r.entry;
  w.u16(e.spCode);
  w.u64(e.ctx);
  w.u16(e.slot);
  w.value(e.v);
  w.u8(e.add ? 1 : 0);
  w.u32(e.frame);
  w.u16(e.gen);
  w.u64(e.senderCtx);
  w.u64(e.sendKey);
  w.u64(e.msgId);
}

bool decodeLogRec(Reader& r, LogRec& out) {
  if (!r.u8(out.kind)) return false;
  if (out.kind > LogRec::kMaxRecKind && out.kind != LogRec::kMint &&
      out.kind != LogRec::kResult) {
    return false;
  }
  if (out.kind == LogRec::kResult) {
    return r.u32(out.mintSeq) && r.value(out.mintV);
  }
  if (out.kind == LogRec::kMint) {
    return r.u64(out.mintCtx) && r.u32(out.mintSeq) && r.value(out.mintV) &&
           r.u64(out.ctxCounter);
  }
  RecEntry& e = out.entry;
  e.kind = static_cast<RecEntry::Kind>(out.kind);
  std::uint8_t add = 0;
  if (!(r.u16(e.spCode) && r.u64(e.ctx) && r.u16(e.slot) && r.value(e.v) &&
        r.u8(add) && r.u32(e.frame) && r.u16(e.gen) && r.u64(e.senderCtx) &&
        r.u64(e.sendKey) && r.u64(e.msgId))) {
    return false;
  }
  if (add > 1) return false;
  e.add = add != 0;
  return true;
}

// ---- Boot -----------------------------------------------------------------

namespace {

void encodeProgram(const SpProgram& prog, Writer& w) {
  w.u16(prog.mainSp);
  w.u32(static_cast<std::uint32_t>(prog.numResults));
  w.u16(static_cast<std::uint16_t>(prog.sps.size()));
  for (const SpCode& sp : prog.sps) {
    w.u16(sp.id);
    w.str(sp.name);
    w.u8(static_cast<std::uint8_t>(sp.kind));
    w.u16(sp.numSlots);
    w.u16(sp.numArgs);
    w.u8(sp.replicated ? 1 : 0);
    w.u32(static_cast<std::uint32_t>(sp.slotNames.size()));
    for (const std::string& s : sp.slotNames) w.str(s);
    w.u32(static_cast<std::uint32_t>(sp.code.size()));
    for (const Instr& in : sp.code) {
      w.u8(static_cast<std::uint8_t>(in.op));
      w.u8(in.dim);
      w.u16(in.dst);
      w.u16(in.a);
      w.u16(in.b);
      w.u16(in.c);
      w.u32(in.aux);
      w.u32(static_cast<std::uint32_t>(in.off));
      w.value(in.imm);
    }
  }
}

bool decodeProgram(Reader& r, SpProgram& prog) {
  std::uint32_t numResults = 0;
  std::uint16_t numSps = 0;
  if (!r.u16(prog.mainSp) || !r.u32(numResults) || !r.u16(numSps)) return false;
  prog.numResults = static_cast<int>(numResults);
  prog.sps.clear();
  for (std::uint16_t i = 0; i < numSps; ++i) {
    SpCode sp;
    std::uint8_t kind = 0, replicated = 0;
    std::uint32_t numNames = 0, numInstrs = 0;
    if (!(r.u16(sp.id) && r.str(sp.name) && r.u8(kind) && r.u16(sp.numSlots) &&
          r.u16(sp.numArgs) && r.u8(replicated) && r.u32(numNames))) {
      return false;
    }
    if (kind > static_cast<std::uint8_t>(SpKind::WhileLoop) || replicated > 1)
      return false;
    sp.kind = static_cast<SpKind>(kind);
    sp.replicated = replicated != 0;
    for (std::uint32_t s = 0; s < numNames; ++s) {
      std::string name;
      if (!r.str(name)) return false;
      sp.slotNames.push_back(std::move(name));
    }
    if (!r.u32(numInstrs)) return false;
    for (std::uint32_t c = 0; c < numInstrs; ++c) {
      Instr in;
      std::uint8_t op = 0;
      std::uint32_t off = 0;
      if (!(r.u8(op) && r.u8(in.dim) && r.u16(in.dst) && r.u16(in.a) &&
            r.u16(in.b) && r.u16(in.c) && r.u32(in.aux) && r.u32(off) &&
            r.value(in.imm))) {
        return false;
      }
      if (op > static_cast<std::uint8_t>(Op::END)) return false;
      in.op = static_cast<Op>(op);
      in.off = static_cast<std::int32_t>(off);
      sp.code.push_back(in);
    }
    prog.sps.push_back(std::move(sp));
  }
  return true;
}

void encodeFaults(const FaultConfig& f, Writer& w) {
  w.f64(f.dropProb);
  w.f64(f.dupProb);
  w.f64(f.delayProb);
  w.f64(f.stallProb);
  w.u64(f.seed);
  w.f64(f.retry.rtoUs);
  w.u32(static_cast<std::uint32_t>(f.retry.maxAttempts));
  w.u32(static_cast<std::uint32_t>(f.retry.maxBackoffDoublings));
  w.f64(f.retry.faultFreeFloorUs);
  w.f64(f.simDelayUs);
  w.f64(f.simStallUs);
  w.f64(f.nativeDelayUs);
  w.f64(f.nativeStallUs);
  w.u32(static_cast<std::uint32_t>(f.killPe));
  w.f64(f.killTimeUs);
  w.f64(f.killRestartUs);
}

bool decodeFaults(Reader& r, FaultConfig& f) {
  std::uint32_t maxAttempts = 0, maxDoublings = 0, killPe = 0;
  if (!(r.f64(f.dropProb) && r.f64(f.dupProb) && r.f64(f.delayProb) &&
        r.f64(f.stallProb) && r.u64(f.seed) && r.f64(f.retry.rtoUs) &&
        r.u32(maxAttempts) && r.u32(maxDoublings) &&
        r.f64(f.retry.faultFreeFloorUs) && r.f64(f.simDelayUs) &&
        r.f64(f.simStallUs) && r.f64(f.nativeDelayUs) &&
        r.f64(f.nativeStallUs) && r.u32(killPe) && r.f64(f.killTimeUs) &&
        r.f64(f.killRestartUs))) {
    return false;
  }
  f.retry.maxAttempts = static_cast<int>(maxAttempts);
  f.retry.maxBackoffDoublings = static_cast<int>(maxDoublings);
  f.killPe = static_cast<int>(killPe);
  return true;
}

}  // namespace

void encodeBoot(const BootMsg& m, std::vector<std::uint8_t>& out) {
  Writer w;
  w.u16(m.numPes);
  w.u16(m.localPe);
  w.u8(m.epoch);
  w.u8(m.resume);
  w.u8(m.store);
  w.u32(m.pageElems);
  w.u32(m.sliceInstructions);
  w.u32(m.heartbeatPeriodMs);
  w.u32(m.heartbeatTimeoutMs);
  w.u64(m.shmBytes);
  w.str(m.shmName);
  w.u16(static_cast<std::uint16_t>(m.peerPorts.size()));
  for (std::uint16_t p : m.peerPorts) w.u16(p);
  w.u16(static_cast<std::uint16_t>(m.peWeights.size()));
  for (std::int64_t x : m.peWeights) w.i64(x);
  encodeFaults(m.faults, w);
  encodeProgram(m.program, w);
  w.u32(static_cast<std::uint32_t>(m.log.size()));
  for (const LogRec& r : m.log) encodeLogRec(r, w);

  Writer full;
  full.u64(fnv1a(w.out.data(), w.out.size()));
  full.out.insert(full.out.end(), w.out.begin(), w.out.end());
  out = std::move(full.out);
}

bool decodeBoot(const std::uint8_t* p, std::size_t n, BootMsg& m,
                std::uint64_t* wantHash, std::uint64_t* gotHash) {
  Reader r(p, n);
  std::uint64_t hash = 0;
  if (!r.u64(hash)) return false;
  const std::uint64_t computed = fnv1a(p + 8, n - 8);
  if (wantHash) *wantHash = hash;
  if (gotHash) *gotHash = computed;
  if (computed != hash) return false;
  std::uint16_t numPorts = 0, numWeights = 0;
  if (!(r.u16(m.numPes) && r.u16(m.localPe) && r.u8(m.epoch) &&
        r.u8(m.resume) && r.u8(m.store) && m.store <= 1 &&
        r.u32(m.pageElems) && r.u32(m.sliceInstructions) &&
        r.u32(m.heartbeatPeriodMs) && r.u32(m.heartbeatTimeoutMs) &&
        r.u64(m.shmBytes) && r.str(m.shmName) && r.u16(numPorts))) {
    return false;
  }
  m.peerPorts.clear();
  for (std::uint16_t i = 0; i < numPorts; ++i) {
    std::uint16_t port = 0;
    if (!r.u16(port)) return false;
    m.peerPorts.push_back(port);
  }
  if (!r.u16(numWeights)) return false;
  m.peWeights.clear();
  for (std::uint16_t i = 0; i < numWeights; ++i) {
    std::int64_t x = 0;
    if (!r.i64(x)) return false;
    m.peWeights.push_back(x);
  }
  if (!decodeFaults(r, m.faults)) return false;
  if (!decodeProgram(r, m.program)) return false;
  std::uint32_t numRecs = 0;
  if (!r.u32(numRecs)) return false;
  m.log.clear();
  for (std::uint32_t i = 0; i < numRecs; ++i) {
    LogRec rec;
    if (!decodeLogRec(r, rec)) return false;
    m.log.push_back(rec);
  }
  return r.done();
}

// ---- PortTable ------------------------------------------------------------

void encodePortTable(const std::vector<PeerEndpoint>& peers,
                     std::vector<std::uint8_t>& out) {
  Writer w;
  w.u16(static_cast<std::uint16_t>(peers.size()));
  for (const PeerEndpoint& pe : peers) {
    w.u16(pe.port);
    w.u8(pe.epoch);
  }
  out = std::move(w.out);
}

bool decodePortTable(const std::uint8_t* p, std::size_t n,
                     std::vector<PeerEndpoint>& peers) {
  Reader r(p, n);
  std::uint16_t count = 0;
  if (!r.u16(count)) return false;
  peers.clear();
  for (std::uint16_t i = 0; i < count; ++i) {
    PeerEndpoint pe;
    if (!r.u16(pe.port) || !r.u8(pe.epoch)) return false;
    peers.push_back(pe);
  }
  return r.done();
}

// ---- Log ------------------------------------------------------------------

void encodeLog(const LogMsg& m, std::vector<std::uint8_t>& out) {
  Writer w;
  w.u64(m.firstSeq);
  w.u32(static_cast<std::uint32_t>(m.recs.size()));
  for (const LogRec& r : m.recs) encodeLogRec(r, w);
  out = std::move(w.out);
}

bool decodeLog(const std::uint8_t* p, std::size_t n, LogMsg& m) {
  Reader r(p, n);
  std::uint32_t count = 0;
  if (!r.u64(m.firstSeq) || !r.u32(count)) return false;
  m.recs.clear();
  for (std::uint32_t i = 0; i < count; ++i) {
    LogRec rec;
    if (!decodeLogRec(r, rec)) return false;
    m.recs.push_back(rec);
  }
  return r.done();
}

// ---- Status ---------------------------------------------------------------

void encodeStatus(const StatusMsg& m, std::vector<std::uint8_t>& out) {
  Writer w;
  w.u64(m.statusSeq);
  w.u8(m.idle);
  w.i64(m.pending);
  w.i64(m.inboxTokens);
  w.i64(m.outstanding);
  w.u64(m.logAppended);
  w.u64(m.activity);
  out = std::move(w.out);
}

bool decodeStatus(const std::uint8_t* p, std::size_t n, StatusMsg& m) {
  Reader r(p, n);
  if (!(r.u64(m.statusSeq) && r.u8(m.idle) && r.i64(m.pending) &&
        r.i64(m.inboxTokens) && r.i64(m.outstanding) && r.u64(m.logAppended) &&
        r.u64(m.activity))) {
    return false;
  }
  return r.done() && m.idle <= 1;
}

// ---- Result ---------------------------------------------------------------

void encodeResult(const ResultMsg& m, std::vector<std::uint8_t>& out) {
  Writer w;
  w.u8(m.ok ? 1 : 0);
  w.str(m.error);
  w.u32(static_cast<std::uint32_t>(m.results.size()));
  for (std::size_t i = 0; i < m.results.size(); ++i) {
    w.u8(i < m.resultSet.size() ? m.resultSet[i] : 0);
    w.value(m.results[i]);
  }
  w.u32(static_cast<std::uint32_t>(m.arrays.size()));
  for (const ResultMsg::OwnedArray& a : m.arrays) {
    w.u32(a.id);
    w.u8(a.hasMeta);
    w.u8(a.rank);
    w.i64(a.dim0);
    w.i64(a.dim1);
    w.u32(static_cast<std::uint32_t>(a.elems.size()));
    for (const auto& [off, v] : a.elems) {
      w.i64(off);
      w.value(v);
    }
  }
  w.u32(static_cast<std::uint32_t>(m.counters.size()));
  for (const auto& [k, v] : m.counters) {
    w.str(k);
    w.i64(v);
  }
  w.u32(static_cast<std::uint32_t>(m.workerCounters.size()));
  for (const auto& [k, v] : m.workerCounters) {
    w.str(k);
    w.i64(v);
  }
  out = std::move(w.out);
}

bool decodeResult(const std::uint8_t* p, std::size_t n, ResultMsg& m) {
  Reader r(p, n);
  std::uint8_t ok = 0;
  std::uint32_t numResults = 0;
  if (!r.u8(ok) || ok > 1 || !r.str(m.error) || !r.u32(numResults))
    return false;
  m.ok = ok != 0;
  m.resultSet.clear();
  m.results.clear();
  for (std::uint32_t i = 0; i < numResults; ++i) {
    std::uint8_t set = 0;
    Value v;
    if (!r.u8(set) || set > 1 || !r.value(v)) return false;
    m.resultSet.push_back(set);
    m.results.push_back(v);
  }
  std::uint32_t numArrays = 0;
  if (!r.u32(numArrays)) return false;
  m.arrays.clear();
  for (std::uint32_t i = 0; i < numArrays; ++i) {
    ResultMsg::OwnedArray a;
    std::uint32_t numElems = 0;
    if (!(r.u32(a.id) && r.u8(a.hasMeta) && r.u8(a.rank) && r.i64(a.dim0) &&
          r.i64(a.dim1) && r.u32(numElems)) ||
        a.hasMeta > 1 || a.rank < 1 || a.rank > 2 || a.dim0 < 0 ||
        a.dim1 < 0) {
      return false;
    }
    a.elems.reserve(numElems);
    for (std::uint32_t e = 0; e < numElems; ++e) {
      std::int64_t off = 0;
      Value v;
      if (!r.i64(off) || off < 0 || !r.value(v)) return false;
      a.elems.emplace_back(off, v);
    }
    m.arrays.push_back(std::move(a));
  }
  auto readMap = [&](std::vector<std::pair<std::string, std::int64_t>>& out2) {
    std::uint32_t count = 0;
    if (!r.u32(count)) return false;
    out2.clear();
    for (std::uint32_t i = 0; i < count; ++i) {
      std::string k;
      std::int64_t v = 0;
      if (!r.str(k) || !r.i64(v)) return false;
      out2.emplace_back(std::move(k), v);
    }
    return true;
  };
  if (!readMap(m.counters) || !readMap(m.workerCounters)) return false;
  return r.done();
}

// ---- Error + scalars ------------------------------------------------------

void encodeError(const ErrorMsg& m, std::vector<std::uint8_t>& out) {
  Writer w;
  w.u32(m.code);
  w.str(m.text);
  out = std::move(w.out);
}

bool decodeError(const std::uint8_t* p, std::size_t n, ErrorMsg& m) {
  Reader r(p, n);
  if (!r.u32(m.code) || !r.str(m.text)) return false;
  return r.done();
}

// ---- Serving-daemon messages ---------------------------------------------

void encodeWelcome(const WelcomeMsg& m, std::vector<std::uint8_t>& out) {
  Writer w;
  w.u64(m.cfgHash);
  w.u16(m.pes);
  w.u32(m.pageElems);
  w.u32(m.maxInflight);
  w.u32(m.maxQueue);
  out = std::move(w.out);
}

bool decodeWelcome(const std::uint8_t* p, std::size_t n, WelcomeMsg& m) {
  Reader r(p, n);
  if (!(r.u64(m.cfgHash) && r.u16(m.pes) && r.u32(m.pageElems) &&
        r.u32(m.maxInflight) && r.u32(m.maxQueue))) {
    return false;
  }
  return r.done();
}

void encodeSubmit(const SubmitMsg& m, std::vector<std::uint8_t>& out) {
  Writer w;
  w.u64(m.cfgHash);
  w.u32(m.clientTag);
  w.u32(m.timeoutMs);
  w.str(m.source);
  out = std::move(w.out);
}

bool decodeSubmit(const std::uint8_t* p, std::size_t n, SubmitMsg& m) {
  Reader r(p, n);
  if (!(r.u64(m.cfgHash) && r.u32(m.clientTag) && r.u32(m.timeoutMs) &&
        r.str(m.source))) {
    return false;
  }
  m.byHash = 0;
  m.sourceHash = 0;
  return r.done();
}

void encodeCacheRef(const SubmitMsg& m, std::vector<std::uint8_t>& out) {
  Writer w;
  w.u64(m.cfgHash);
  w.u32(m.clientTag);
  w.u32(m.timeoutMs);
  w.u64(m.sourceHash);
  out = std::move(w.out);
}

bool decodeCacheRef(const std::uint8_t* p, std::size_t n, SubmitMsg& m) {
  Reader r(p, n);
  if (!(r.u64(m.cfgHash) && r.u32(m.clientTag) && r.u32(m.timeoutMs) &&
        r.u64(m.sourceHash))) {
    return false;
  }
  m.byHash = 1;
  m.source.clear();
  return r.done();
}

void encodeJobResult(const JobResultMsg& m, std::vector<std::uint8_t>& out) {
  Writer w;
  w.u32(m.clientTag);
  w.u32(m.jobId);
  w.u8(m.ok);
  w.u8(m.cacheHit);
  w.u64(m.sourceHash);
  w.f64(m.wallMs);
  w.str(m.error);
  w.u32(static_cast<std::uint32_t>(m.results.size()));
  for (std::size_t i = 0; i < m.results.size(); ++i) {
    w.u8(i < m.resultSet.size() ? m.resultSet[i] : 0);
    w.value(m.results[i]);
    const JobResultMsg::OutArray* a =
        i < m.arrays.size() ? &m.arrays[i] : nullptr;
    if (a == nullptr || a->present == 0) {
      w.u8(0);
      continue;
    }
    w.u8(1);
    w.u8(a->rank);
    w.i64(a->dim0);
    w.i64(a->dim1);
    w.u32(static_cast<std::uint32_t>(a->elems.size()));
    for (const Value& v : a->elems) w.value(v);
  }
  w.u32(static_cast<std::uint32_t>(m.counters.size()));
  for (const auto& [k, v] : m.counters) {
    w.str(k);
    w.i64(v);
  }
  out = std::move(w.out);
}

bool decodeJobResult(const std::uint8_t* p, std::size_t n, JobResultMsg& m) {
  Reader r(p, n);
  std::uint32_t numResults = 0;
  if (!(r.u32(m.clientTag) && r.u32(m.jobId) && r.u8(m.ok) &&
        r.u8(m.cacheHit) && r.u64(m.sourceHash) && r.f64(m.wallMs) &&
        r.str(m.error) && r.u32(numResults))) {
    return false;
  }
  if (m.ok > 1 || m.cacheHit > 1) return false;
  m.resultSet.clear();
  m.results.clear();
  m.arrays.clear();
  for (std::uint32_t i = 0; i < numResults; ++i) {
    std::uint8_t set = 0;
    Value v;
    JobResultMsg::OutArray a;
    if (!r.u8(set) || set > 1 || !r.value(v) || !r.u8(a.present) ||
        a.present > 1) {
      return false;
    }
    if (a.present != 0) {
      std::uint32_t numElems = 0;
      if (!(r.u8(a.rank) && r.i64(a.dim0) && r.i64(a.dim1) &&
            r.u32(numElems)) ||
          a.rank < 1 || a.rank > 2) {
        return false;
      }
      // The daemon always ships the full materialized array, so the element
      // count is not free-form: it must equal the shape's product. A frame
      // whose count disagrees (truncated mid-stream, corrupted length) is a
      // decode failure, not a silently clamped result. The product bound
      // mirrors the machine's allocation cap so a hostile header can't make
      // us reserve gigabytes before the element loop fails.
      if (a.dim0 < 0 || a.dim1 < 0) return false;
      const std::int64_t expect = a.rank == 1 ? a.dim0 : a.dim0 * a.dim1;
      if (a.rank == 2 && a.dim1 != 0 &&
          a.dim0 > (std::int64_t{1} << 26) / a.dim1) {
        return false;
      }
      if (expect > (std::int64_t{1} << 26) ||
          static_cast<std::int64_t>(numElems) != expect) {
        return false;
      }
      for (std::uint32_t e = 0; e < numElems; ++e) {
        Value ev;
        if (!r.value(ev)) return false;
        a.elems.push_back(ev);
      }
    }
    m.resultSet.push_back(set);
    m.results.push_back(v);
    m.arrays.push_back(std::move(a));
  }
  std::uint32_t numCounters = 0;
  if (!r.u32(numCounters)) return false;
  m.counters.clear();
  for (std::uint32_t i = 0; i < numCounters; ++i) {
    std::string k;
    std::int64_t v = 0;
    if (!r.str(k) || !r.i64(v)) return false;
    m.counters.emplace_back(std::move(k), v);
  }
  return r.done();
}

void encodeBusy(const BusyMsg& m, std::vector<std::uint8_t>& out) {
  Writer w;
  w.u32(m.clientTag);
  w.u32(m.inflight);
  w.u32(m.queued);
  w.u32(m.maxInflight);
  w.u32(m.maxQueue);
  out = std::move(w.out);
}

bool decodeBusy(const std::uint8_t* p, std::size_t n, BusyMsg& m) {
  Reader r(p, n);
  if (!(r.u32(m.clientTag) && r.u32(m.inflight) && r.u32(m.queued) &&
        r.u32(m.maxInflight) && r.u32(m.maxQueue))) {
    return false;
  }
  return r.done();
}

void encodeU64(std::uint64_t v, std::vector<std::uint8_t>& out) {
  Writer w;
  w.u64(v);
  out = std::move(w.out);
}

bool decodeU64(const std::uint8_t* p, std::size_t n, std::uint64_t& v) {
  Reader r(p, n);
  if (!r.u64(v)) return false;
  return r.done();
}

void encodeU16(std::uint16_t v, std::vector<std::uint8_t>& out) {
  Writer w;
  w.u16(v);
  out = std::move(w.out);
}

bool decodeU16(const std::uint8_t* p, std::size_t n, std::uint16_t& v) {
  Reader r(p, n);
  if (!r.u16(v)) return false;
  return r.done();
}

}  // namespace ctl
}  // namespace proto
}  // namespace pods
