// Control-channel protocol for multi-process PODS.
//
// When `podsc --transport=udp-multiproc` runs, the tool process becomes a
// *supervisor* and each PE a forked worker process. Tokens travel PE-to-PE
// over the UDP batch wire exactly as in-process `--transport=udp`; this
// module defines the second, supervisor<->worker wire: a length-prefixed
// frame stream over a socketpair that carries everything that is NOT a
// token — the compiled SP program and machine configuration at boot, the
// pessimistic receive/allocate log stream (the stable storage that makes
// `kill -9` recovery possible), heartbeats, the UDP port/epoch table,
// termination polling, and the final results/counters.
//
// Framing: [u32 len][u8 tag][len payload bytes], little-endian. Decoding is
// all-or-nothing, mirroring the UDP batch wire: a truncated payload,
// trailing junk, an out-of-range tag, an over-limit length, a magic or
// version mismatch — any of these rejects the whole frame into
// `net.ctl.badFrames` and surfaces a structured error instead of decoding
// garbage. The handshake (Hello/HelloAck with magic + protocol version,
// then a config hash over the Boot payload) is what lets a stale or
// mismatched worker binary fail fast.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/isa.hpp"
#include "runtime/value.hpp"
#include "support/fault.hpp"
#include "support/recovery.hpp"

namespace pods {
namespace proto {
namespace ctl {

inline constexpr std::uint32_t kMagic = 0x5043544Cu;  // "PCTL"
inline constexpr std::uint16_t kVersion = 1;
/// Hard cap on one frame's payload — a Boot frame carries the whole SP
/// program plus (on respawn) the full recovery log stream.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Canonical counter names (mirroring net.udp.badDatagrams).
inline constexpr const char* kBadFrames = "net.ctl.badFrames";
inline constexpr const char* kFrames = "net.ctl.frames";

enum class FrameTag : std::uint8_t {
  Hello = 1,      // sup->wrk: magic + protocol version
  HelloAck = 2,   // wrk->sup: magic + version echo
  Boot = 3,       // sup->wrk: config hash + program + config (+ resume log)
  BootAck = 4,    // wrk->sup: config hash echo
  PortAnnounce = 5,  // wrk->sup: the worker's bound UDP port
  PortTable = 6,  // sup->wrk: (port, epoch) of every PE; re-sent on respawn
  PortTableAck = 7,  // wrk->sup: table applied (respawn barrier)
  Start = 8,      // sup->wrk: begin (or resume) execution
  Log = 9,        // wrk->sup: recovery-log records (pessimistic logging)
  LogAck = 10,    // sup->wrk: log stable up to sequence N
  Heartbeat = 11,  // wrk->sup: liveness
  Status = 12,    // wrk->sup: termination-snapshot reply
  Poll = 13,      // sup->wrk: termination-snapshot request
  End = 14,       // sup->wrk: global quiescence reached — report and exit
  Result = 15,    // wrk->sup: results, counters, error state
  Error = 16,     // either way: structured fatal error
  // Serving-daemon (podsd) frames. Same stream rules apply: the daemon
  // replies to a malformed client frame with Error, counts it into
  // net.ctl.badFrames, and closes the connection.
  Submit = 17,     // cli->srv: IdLite source + job options
  CacheRef = 18,   // cli->srv: job by compiled-program handle (source hash)
  JobResult = 19,  // srv->cli: results + per-job counters
  Busy = 20,       // srv->cli: admission rejected (bounded queue full)
  Welcome = 21,    // srv->cli: config hash + serving limits after HelloAck
};

/// One decoded control frame.
struct Frame {
  FrameTag tag = FrameTag::Error;
  std::vector<std::uint8_t> payload;
};

/// Appends the wire image of one frame to `out`.
void encodeFrame(FrameTag tag, const std::uint8_t* payload, std::size_t len,
                 std::vector<std::uint8_t>& out);
inline void encodeFrame(FrameTag tag, const std::vector<std::uint8_t>& payload,
                        std::vector<std::uint8_t>& out) {
  encodeFrame(tag, payload.data(), payload.size(), out);
}

/// Incremental frame extractor over a byte stream. feed() buffered bytes,
/// then next() until it returns false. A malformed header (unknown tag /
/// over-limit length) poisons the stream: next() sets `*bad` and the
/// connection must be torn down — there is no way to resynchronize a
/// length-prefixed stream after a corrupt header.
class FrameReader {
 public:
  void feed(const std::uint8_t* data, std::size_t n);
  bool next(Frame& f, bool* bad);

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t off_ = 0;
  bool bad_ = false;
};

// ---- Payload primitives ---------------------------------------------------

/// Bounds-checked little-endian payload writer.
class Writer {
 public:
  std::vector<std::uint8_t> out;
  void u8(std::uint8_t v) { out.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void str(const std::string& s);
  void value(const Value& v);
};

/// Bounds-checked little-endian payload reader. Every accessor returns
/// false once the payload is exhausted or a field is malformed; decoders
/// finish with done(), which additionally rejects trailing junk.
class Reader {
 public:
  Reader(const std::uint8_t* p, std::size_t n) : p_(p), n_(n) {}
  bool u8(std::uint8_t& v);
  bool u16(std::uint16_t& v);
  bool u32(std::uint32_t& v);
  bool u64(std::uint64_t& v);
  bool i64(std::int64_t& v);
  bool f64(double& v);
  bool str(std::string& s);
  bool value(Value& v);
  bool ok() const { return ok_; }
  bool done() const { return ok_ && off_ == n_; }

 private:
  const std::uint8_t* p_;
  std::size_t n_;
  std::size_t off_ = 0;
  bool ok_ = true;
};

/// FNV-1a over a byte range — the Boot config hash. Both sides hash the
/// Boot payload after the hash field; a worker built from different source
/// (struct layout drift, different program) almost surely disagrees.
std::uint64_t fnv1a(const std::uint8_t* p, std::size_t n);

// ---- Messages -------------------------------------------------------------

struct HelloMsg {
  std::uint32_t magic = kMagic;
  std::uint16_t version = kVersion;
};
void encodeHello(const HelloMsg& m, std::vector<std::uint8_t>& out);
bool decodeHello(const std::uint8_t* p, std::size_t n, HelloMsg& m);

/// One recovery-log record on the wire: the worker mirrors every RecEntry
/// append and every mint to the supervisor (pessimistic logging — the
/// supervisor is the "stable storage" a respawned worker replays from).
struct LogRec {
  // Kinds 0..kMaxRecKind are RecEntry kinds verbatim (5 = Am: wire-store
  // array message). Mint/Result live far above so new RecEntry kinds never
  // collide with them.
  static constexpr std::uint8_t kMaxRecKind =
      static_cast<std::uint8_t>(RecEntry::Kind::Am);
  static constexpr std::uint8_t kMint = 250;    // NEWCTX / ALLOC identity
  static constexpr std::uint8_t kResult = 251;  // program RESULT store
  std::uint8_t kind = 0;
  RecEntry entry{};            // kind 0..kMaxRecKind (4 = Recv: msgId only)
  std::uint64_t mintCtx = 0;   // kMint
  std::uint32_t mintSeq = 0;   // kMint: mint seq; kResult: result slot
  Value mintV{};               // kMint: minted identity; kResult: the value
  std::uint64_t ctxCounter = 0;  // minting PE's counter high-water
};
void encodeLogRec(const LogRec& r, Writer& w);
bool decodeLogRec(Reader& r, LogRec& out);

struct BootMsg {
  std::uint16_t numPes = 0;
  std::uint16_t localPe = 0;
  std::uint8_t epoch = 0;
  std::uint8_t resume = 0;
  /// Array-store backend (native::StoreKind numeric value): 0 = shm
  /// LocalStore, 1 = wire store. Covered by the Boot config hash, so a
  /// supervisor/worker store mismatch fails fast at the handshake.
  std::uint8_t store = 0;
  std::uint32_t pageElems = 32;
  std::uint32_t sliceInstructions = 1024;
  std::uint32_t heartbeatPeriodMs = 25;
  std::uint32_t heartbeatTimeoutMs = 2000;
  std::uint64_t shmBytes = 0;
  std::string shmName;
  /// Loopback UDP data-plane port of every PE, indexed by pe. The
  /// supervisor binds all sockets up front and workers inherit their own
  /// fd across fork, so the table is fixed for the whole run — a respawned
  /// worker reuses the same socket (port + buffered datagrams survive).
  std::vector<std::uint16_t> peerPorts;
  std::vector<std::int64_t> peWeights;
  FaultConfig faults{};
  SpProgram program{};
  std::vector<LogRec> log;  // resume only: the PE's full recovery stream
};
/// Encodes `m` with a leading FNV-1a hash of everything after it.
void encodeBoot(const BootMsg& m, std::vector<std::uint8_t>& out);
/// All-or-nothing decode; also fails on a config-hash mismatch.
bool decodeBoot(const std::uint8_t* p, std::size_t n, BootMsg& m,
                std::uint64_t* wantHash = nullptr,
                std::uint64_t* gotHash = nullptr);

struct PeerEndpoint {
  std::uint16_t port = 0;
  std::uint8_t epoch = 0;
};
void encodePortTable(const std::vector<PeerEndpoint>& peers,
                     std::vector<std::uint8_t>& out);
bool decodePortTable(const std::uint8_t* p, std::size_t n,
                     std::vector<PeerEndpoint>& peers);

struct LogMsg {
  std::uint64_t firstSeq = 0;  // 0-based index of recs[0] in the PE's stream
  std::vector<LogRec> recs;
};
void encodeLog(const LogMsg& m, std::vector<std::uint8_t>& out);
bool decodeLog(const std::uint8_t* p, std::size_t n, LogMsg& m);

/// Worker's reply to a termination Poll: a snapshot of the quiescence
/// inputs. The supervisor runs a two-round Dijkstra–Safra-style check over
/// these (see procmgr.cpp).
struct StatusMsg {
  std::uint64_t statusSeq = 0;  // echoes the Poll's sequence number
  std::uint8_t idle = 0;        // the worker thread is cv-parked
  std::int64_t pending = 0;     // live frames + undrained deposited tokens
  std::int64_t inboxTokens = 0;
  std::int64_t outstanding = 0;  // unacked + outbox-buffered sends
  std::uint64_t logAppended = 0;  // log records appended so far
  std::uint64_t activity = 0;    // monotone work counter (deposits + wakes)
};
void encodeStatus(const StatusMsg& m, std::vector<std::uint8_t>& out);
bool decodeStatus(const std::uint8_t* p, std::size_t n, StatusMsg& m);

struct ResultMsg {
  /// Wire store: one array's slice owned by the reporting worker — its
  /// (offset, value) pairs plus, from the allocator PE only, the shape.
  /// With no shm segment, the Result frame is how materialized arrays reach
  /// the supervisor for post-run gather().
  struct OwnedArray {
    std::uint32_t id = 0;
    std::uint8_t hasMeta = 0;
    std::uint8_t rank = 1;
    std::int64_t dim0 = 0;
    std::int64_t dim1 = 1;
    std::vector<std::pair<std::int64_t, Value>> elems;
  };
  bool ok = true;
  std::string error;
  std::vector<std::uint8_t> resultSet;  // parallel to results: value present?
  std::vector<Value> results;
  std::vector<OwnedArray> arrays;  // wire store only; empty under LocalStore
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> workerCounters;
};
void encodeResult(const ResultMsg& m, std::vector<std::uint8_t>& out);
bool decodeResult(const std::uint8_t* p, std::size_t n, ResultMsg& m);

struct ErrorMsg {
  std::uint32_t code = 0;
  std::string text;
};
void encodeError(const ErrorMsg& m, std::vector<std::uint8_t>& out);
bool decodeError(const std::uint8_t* p, std::size_t n, ErrorMsg& m);

// ---- Serving-daemon messages ---------------------------------------------

/// Daemon's half of the serve handshake, sent right after HelloAck. The
/// config hash covers {protocol version, pes, pageElems}; a Submit must echo
/// it, so a client pointed at a daemon with a different machine shape fails
/// fast instead of getting silently different partitioning.
struct WelcomeMsg {
  std::uint64_t cfgHash = 0;
  std::uint16_t pes = 0;
  std::uint32_t pageElems = 0;
  std::uint32_t maxInflight = 0;
  std::uint32_t maxQueue = 0;
};
void encodeWelcome(const WelcomeMsg& m, std::vector<std::uint8_t>& out);
bool decodeWelcome(const std::uint8_t* p, std::size_t n, WelcomeMsg& m);

/// A job submission. One struct backs both wire frames: Submit carries the
/// IdLite source (byHash == 0), CacheRef carries only the FNV-1a source hash
/// of a program the daemon is expected to still have compiled (byHash == 1).
struct SubmitMsg {
  std::uint64_t cfgHash = 0;    // Welcome echo — config compatibility check
  std::uint32_t clientTag = 0;  // echoed verbatim in JobResult/Busy
  std::uint32_t timeoutMs = 0;  // 0 = no per-job deadline
  std::uint8_t byHash = 0;
  std::uint64_t sourceHash = 0;  // byHash == 1
  std::string source;            // byHash == 0
};
void encodeSubmit(const SubmitMsg& m, std::vector<std::uint8_t>& out);
bool decodeSubmit(const std::uint8_t* p, std::size_t n, SubmitMsg& m);
void encodeCacheRef(const SubmitMsg& m, std::vector<std::uint8_t>& out);
bool decodeCacheRef(const std::uint8_t* p, std::size_t n, SubmitMsg& m);

/// A finished (or failed) job. Array results are expanded to shape +
/// elements on the wire — an ArrayId is a handle into the *job's* machine,
/// which is gone by the time the client reads this.
struct JobResultMsg {
  struct OutArray {
    std::uint8_t present = 0;  // 0: the result slot is a scalar (or unset)
    std::uint8_t rank = 1;
    std::int64_t dim0 = 0;
    std::int64_t dim1 = 1;
    std::vector<Value> elems;
  };
  std::uint32_t clientTag = 0;
  std::uint32_t jobId = 0;
  std::uint8_t ok = 0;
  std::uint8_t cacheHit = 0;
  std::uint64_t sourceHash = 0;  // the compiled handle for future CacheRefs
  double wallMs = 0;
  std::string error;
  std::vector<std::uint8_t> resultSet;  // parallel to results
  std::vector<Value> results;
  std::vector<OutArray> arrays;  // parallel to results
  std::vector<std::pair<std::string, std::int64_t>> counters;  // job.<id>.*
};
void encodeJobResult(const JobResultMsg& m, std::vector<std::uint8_t>& out);
bool decodeJobResult(const std::uint8_t* p, std::size_t n, JobResultMsg& m);

/// Structured admission rejection: the in-flight executors and the wait
/// queue are both full. Clients are expected to back off and resubmit.
struct BusyMsg {
  std::uint32_t clientTag = 0;
  std::uint32_t inflight = 0;
  std::uint32_t queued = 0;
  std::uint32_t maxInflight = 0;
  std::uint32_t maxQueue = 0;
};
void encodeBusy(const BusyMsg& m, std::vector<std::uint8_t>& out);
bool decodeBusy(const std::uint8_t* p, std::size_t n, BusyMsg& m);

// Single-u64 payloads (BootAck hash echo, LogAck upTo, Poll statusSeq).
void encodeU64(std::uint64_t v, std::vector<std::uint8_t>& out);
bool decodeU64(const std::uint8_t* p, std::size_t n, std::uint64_t& v);
// Single-u16 payload (PortAnnounce).
void encodeU16(std::uint16_t v, std::vector<std::uint8_t>& out);
bool decodeU16(const std::uint8_t* p, std::size_t n, std::uint16_t& v);

}  // namespace ctl
}  // namespace proto
}  // namespace pods
