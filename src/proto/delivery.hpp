// Engine-agnostic reliable-delivery protocol core.
//
// Three drivers share this state machine: the simulator's Routing Unit
// (driving it with simulated time), the native InboxTransport (wall-clock
// retransmit daemon), and the native UdpTransport (wall-clock timer thread
// over real sockets). The core is pure, thread-free, and clock-free: events
// go in (send / ack / timeout / deliver / context-retired), decisions come
// out (retransmit-at-deadline, give up, deposit, suppress duplicate, discard
// straggler). Drivers own threads, clocks, sockets, and — critically — the
// fault-injection dice: the simulator numbers transmissions in deterministic
// event order and its bit-exact fault schedules depend on that ordering, so
// FaultPlan rolls stay outside this class.
//
// The protocol (established across the fault/recovery/transport PRs, now in
// one place):
//   * Sender window: every in-flight message has a 1-based attempt count.
//     A timeout either retransmits with exponential backoff (RetryPolicy:
//     rto << min(attempt-1, cap)) or gives up after maxAttempts with a
//     structured error — never silent loss. Stale timeouts (message already
//     acked, or superseded by a newer retransmit timer) are ignored.
//   * Receiver dedup: tokens carry msgIds; redelivery of a seen msgId is
//     suppressed (and re-acked by drivers that ack at all, healing lost
//     acks). Single-assignment slots make redelivery of *data* harmless;
//     dedup is what protects the non-idempotent tokens (ADDC counters,
//     spawn-by-token).
//   * Straggler triage: contexts are never reused, so a token addressed to
//     a retired (ENDed) context is a reordered duplicate from a previous
//     delivery attempt and is discarded, not an error.
//   * Counter accounting: one canonical `net.*` / `fault.*` namespace, zero
//     registered up front so both engines emit the identical *set* of
//     counter names whether or not an event ever fired.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "support/fault.hpp"
#include "support/stats.hpp"

namespace pods {
namespace proto {

// Canonical counter names. Drivers must not invent their own spellings for
// these events; everything protocol-level funnels through this table (see
// docs/ARCHITECTURE.md, "Delivery protocol core").
inline constexpr const char* kResent = "net.retx.resent";
inline constexpr const char* kAcks = "net.retx.acks";
inline constexpr const char* kDupSuppressed = "net.retx.dupSuppressed";
inline constexpr const char* kGiveUps = "net.retx.giveUps";
inline constexpr const char* kStragglers = "tokens.straggler";
inline constexpr const char* kFaultDrops = "fault.drops";
inline constexpr const char* kFaultDups = "fault.dups";
inline constexpr const char* kFaultDelays = "fault.delays";
inline constexpr const char* kFaultStalls = "fault.stalls";

/// Canonical per-link counter name: "net.link.F->T.<what>" with
/// what in {tokens, datagrams, bytes, retx}.
std::string linkCounterName(int fromPe, int toPe, const char* what);

/// Memoization cache over linkCounterName keyed on the *full* (from, to,
/// what) triple. (An earlier machine.cpp-local cache keyed on what[0] only,
/// which silently aliases two counter kinds sharing a first letter on the
/// same link — e.g. "retx" and "rx" — to whichever name was built first.)
class LinkNameCache {
 public:
  const std::string& name(std::uint16_t from, std::uint16_t to,
                          const char* what);

 private:
  // Transparent comparator: lookups compare the const char* against the
  // stored std::string without constructing a temporary.
  std::map<std::tuple<std::uint16_t, std::uint16_t, std::string>, std::string,
           std::less<>>
      names_;
};

/// What a driver must do when a retransmit timer fires.
struct TimeoutDecision {
  enum class Kind {
    Stale,       ///< message already acked or timer superseded — do nothing
    Retransmit,  ///< send again; re-arm a timer `backoffUs` from now
    GiveUp,      ///< maxAttempts exhausted — surface a structured error
  };
  Kind kind = Kind::Stale;
  int attempt = 0;      ///< attempt count after this decision (1-based)
  double backoffUs = 0.0;  ///< next timer distance (Retransmit only)
};

/// One endpoint's half of the reliable-delivery protocol: a sender window
/// (msgId -> attempt) and/or a receiver ledger (seen msgIds + retired
/// contexts). Drivers may use one instance for both halves (UDP per-PE) or
/// split them (the simulator keeps one global sender window in the event
/// queue's timeline and one receiver per PE).
class Delivery {
 public:
  Delivery() = default;
  /// `faultsEnabled` selects the base RTO: the configured value under
  /// injection, the lossless floor otherwise (see RetryPolicy).
  Delivery(const RetryPolicy& policy, bool faultsEnabled)
      : policy_(policy), baseRtoUs_(policy.baseRtoUs(faultsEnabled)) {}

  const RetryPolicy& policy() const { return policy_; }

  // ---- Sender window -------------------------------------------------
  /// Timeout to arm for a fresh send (attempt 1).
  double initialRtoUs() const { return baseRtoUs_; }

  /// Register a fresh outbound message (attempt 1). msgIds are never
  /// reused, so double-registration indicates a driver bug.
  void onSend(std::uint64_t msgId) { window_[msgId] = 1; }

  /// An acknowledgment arrived; retires the message from the window.
  /// Duplicate / late acks are harmless no-ops.
  void onAck(std::uint64_t msgId);

  bool inFlight(std::uint64_t msgId) const { return window_.count(msgId) != 0; }
  std::size_t windowSize() const { return window_.size(); }

  // ---- Per-link sequence windows (batched drivers) ---------------------
  // A batching driver numbers tokens per (srcPe,dstPe) link with a dense
  // 1-based sequence and packs the link into the msgId so one cumulative
  // ack can retire a whole prefix of the window. The plain onSend/onAck
  // path and these batch entry points share window_ — a driver uses one
  // style per Delivery instance, and a retransmitted token riding a later
  // batch keeps its original msgId, so it is never re-registered (no
  // double entry in the window, no double quiescence charge downstream).

  /// msgId layout: [63:56]=srcPe, [55:48]=dstPe, [47:0]=seq (1-based).
  /// PE ids fit 8 bits (NativeConfig caps workers at 256); seq 1 keeps
  /// msgId nonzero so accept()'s "0 = unrouted" convention still holds.
  static std::uint64_t packLinkMsgId(int srcPe, int dstPe, std::uint64_t seq) {
    return (static_cast<std::uint64_t>(srcPe & 0xFF) << 56) |
           (static_cast<std::uint64_t>(dstPe & 0xFF) << 48) |
           (seq & 0xFFFFFFFFFFFFULL);
  }
  static std::uint64_t linkMsgIdSeq(std::uint64_t msgId) {
    return msgId & 0xFFFFFFFFFFFFULL;
  }
  static std::uint32_t linkMsgIdLink(std::uint64_t msgId) {
    return static_cast<std::uint32_t>(msgId >> 48);
  }

  /// Register `count` fresh consecutive messages (attempt 1 each) starting
  /// at `firstMsgId` — the fresh tokens of one flushed batch. Retransmits
  /// riding the same batch are already in the window and must not be
  /// re-registered.
  void onSendBatch(std::uint64_t firstMsgId, int count);

  /// A cumulative ack for link (srcPe,dstPe) arrived: every seq <= cumSeq
  /// is delivered, plus seq cumSeq+1+i for each set bit i of `bitmap`
  /// (selective acks above the contiguous prefix). Retires all newly-acked
  /// messages and returns their msgIds so the driver can drop buffered
  /// wire images.
  std::vector<std::uint64_t> onCumAck(int srcPe, int dstPe,
                                      std::uint64_t cumSeq,
                                      std::uint64_t bitmap);

  /// Receiver half of the link window: first delivery of (srcPe,dstPe,seq)?
  /// Counts kDupSuppressed and returns false on a redelivery. Unlike the
  /// flat seen_ set this state is bounded by the reordering span: the
  /// contiguous prefix collapses into one cursor.
  bool acceptSeq(int srcPe, int dstPe, std::uint64_t seq);

  /// True when (srcPe,dstPe,seq) has already been recorded by acceptSeq —
  /// the receive-before-deposit ordering assertion (a token must be in the
  /// dedup ledger before its inbox-ring deposit charges quiescence).
  bool seenSeq(int srcPe, int dstPe, std::uint64_t seq) const;

  /// Snapshot of the receive window for composing a cumulative ack:
  /// highest contiguously received seq + bitmap of cum+1..cum+64.
  struct CumAckView {
    std::uint64_t cum = 0;
    std::uint64_t bitmap = 0;
  };
  CumAckView cumAckView(int srcPe, int dstPe) const;

  /// Respawn support (multi-process transport): wipes the sender window of
  /// link (srcPe,dstPe) and returns the seqs that were still in flight, in
  /// order — the driver re-sends their payloads under fresh sequence
  /// numbers once the reborn peer's endpoint is known.
  std::vector<std::uint64_t> resetSendLink(int srcPe, int dstPe);

  /// Respawn support: wipes the receive window of link (srcPe,dstPe) — a
  /// reborn peer renumbers its sends from 1.
  void resetRecvLink(int srcPe, int dstPe);

  /// Lowest sequence still unacked on link (srcPe,dstPe); 0 when the link
  /// is fully drained. Drives the multi-process END-retire barrier (a
  /// frame's End may enter the recovery log only after its sends are safe).
  std::uint64_t lowestUnackedSeq(int srcPe, int dstPe) const;

  /// A retransmit timer fired. `expectedAttempt` guards against stale
  /// timers in drivers whose timer events carry the attempt they were armed
  /// for (the simulator); pass 0 when the driver keeps at most one live
  /// timer per message (the native transports).
  TimeoutDecision onTimeout(std::uint64_t msgId, int expectedAttempt = 0);

  // ---- Receiver ledger -----------------------------------------------
  /// First delivery of msgId? Counts kDupSuppressed and returns false on a
  /// redelivery. msgId 0 means "not routed through reliable delivery" and
  /// is always fresh.
  bool accept(std::uint64_t msgId);

  /// The context finished (END executed); tokens still addressed to it are
  /// stragglers from past delivery attempts.
  void retireCtx(std::uint64_t ctx) { retired_.insert(ctx); }

  /// True (counting kStragglers) when `ctx` has retired and the token must
  /// be discarded.
  bool straggler(std::uint64_t ctx);

  /// Fail-stop wipe: a killed PE loses its volatile ledgers (they rebuild
  /// from the recovery log) but its counters describe history and survive.
  void resetReceiver() {
    seen_.clear();
    retired_.clear();
    linkRecv_.clear();
  }

  // ---- Accounting ----------------------------------------------------
  /// Count a protocol event the driver observed (acks sent, injected
  /// faults, ...) into this endpoint's ledger under its canonical name.
  void count(const char* name, std::int64_t delta = 1) { counters_.add(name, delta); }

  /// Merge this endpoint's counters into `out`, pre-registering zeros for
  /// the protocol counter set so every engine reports the same names.
  void addStats(Counters& out) const;

  /// Zero-register the injection counters (kFault*) — for drivers that run
  /// fault dice themselves and count hits via count().
  static void registerInjectionCounters(Counters& out);

 private:
  /// Per-link receive window: cursor for the contiguous prefix plus the
  /// (sparse, reordering-bounded) set of seqs received above it.
  struct RecvWin {
    std::uint64_t cum = 0;
    std::set<std::uint64_t> above;
  };

  void eraseLinkInFlight(std::uint64_t msgId);

  RetryPolicy policy_{};
  double baseRtoUs_ = RetryPolicy{}.rtoUs;
  std::unordered_map<std::uint64_t, int> window_;
  /// Sender-side mirror of window_ keyed by link, ordered by seq so a
  /// cumulative ack can walk the acked prefix and stop at the first hole.
  std::unordered_map<std::uint32_t, std::set<std::uint64_t>> linkInFlight_;
  std::unordered_map<std::uint32_t, RecvWin> linkRecv_;
  std::unordered_set<std::uint64_t> seen_;
  std::unordered_set<std::uint64_t> retired_;
  Counters counters_;
};

}  // namespace proto
}  // namespace pods
