#include "proto/delivery.hpp"

#include <cstdio>
#include <string_view>

namespace pods {
namespace proto {

std::string linkCounterName(int fromPe, int toPe, const char* what) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "net.link.%d->%d.%s", fromPe, toPe, what);
  return buf;
}

const std::string& LinkNameCache::name(std::uint16_t from, std::uint16_t to,
                                       const char* what) {
  auto it = names_.find(std::make_tuple(from, to, std::string_view(what)));
  if (it == names_.end()) {
    it = names_
             .emplace(std::make_tuple(from, to, std::string(what)),
                      linkCounterName(from, to, what))
             .first;
  }
  return it->second;
}

void Delivery::onAck(std::uint64_t msgId) {
  window_.erase(msgId);
  eraseLinkInFlight(msgId);
}

TimeoutDecision Delivery::onTimeout(std::uint64_t msgId, int expectedAttempt) {
  auto it = window_.find(msgId);
  if (it == window_.end()) return {};  // acked before the timer fired
  if (expectedAttempt != 0 && it->second != expectedAttempt)
    return {};  // superseded: a newer retransmit already re-armed the timer
  if (policy_.giveUpAt(it->second)) {
    const int attempt = it->second;
    window_.erase(it);
    eraseLinkInFlight(msgId);
    counters_.add(kGiveUps);
    return {TimeoutDecision::Kind::GiveUp, attempt, 0.0};
  }
  it->second += 1;
  counters_.add(kResent);
  return {TimeoutDecision::Kind::Retransmit, it->second,
          policy_.backoffUs(it->second, baseRtoUs_)};
}

void Delivery::eraseLinkInFlight(std::uint64_t msgId) {
  if (linkInFlight_.empty()) return;  // plain onSend/onAck driver
  auto it = linkInFlight_.find(linkMsgIdLink(msgId));
  if (it == linkInFlight_.end()) return;
  it->second.erase(linkMsgIdSeq(msgId));
  if (it->second.empty()) linkInFlight_.erase(it);
}

void Delivery::onSendBatch(std::uint64_t firstMsgId, int count) {
  auto& inflight = linkInFlight_[linkMsgIdLink(firstMsgId)];
  for (int i = 0; i < count; ++i) {
    // Consecutive msgIds: seq occupies the low 48 bits and per-link seqs
    // are dense, so firstMsgId + i stays within the link's range.
    window_[firstMsgId + i] = 1;
    inflight.insert(linkMsgIdSeq(firstMsgId) + i);
  }
}

std::vector<std::uint64_t> Delivery::onCumAck(int srcPe, int dstPe,
                                              std::uint64_t cumSeq,
                                              std::uint64_t bitmap) {
  std::vector<std::uint64_t> retired;
  const std::uint32_t link =
      linkMsgIdLink(packLinkMsgId(srcPe, dstPe, 1));
  auto it = linkInFlight_.find(link);
  if (it == linkInFlight_.end()) return retired;
  auto& inflight = it->second;
  for (auto sit = inflight.begin(); sit != inflight.end();) {
    const std::uint64_t seq = *sit;
    if (seq > cumSeq + 64) break;  // ordered set: nothing further is covered
    const bool acked =
        seq <= cumSeq || ((bitmap >> (seq - cumSeq - 1)) & 1ULL) != 0;
    if (!acked) {
      ++sit;
      continue;
    }
    const std::uint64_t msgId = packLinkMsgId(srcPe, dstPe, seq);
    window_.erase(msgId);
    retired.push_back(msgId);
    sit = inflight.erase(sit);
  }
  if (inflight.empty()) linkInFlight_.erase(it);
  return retired;
}

std::vector<std::uint64_t> Delivery::resetSendLink(int srcPe, int dstPe) {
  std::vector<std::uint64_t> dropped;
  const std::uint32_t link = linkMsgIdLink(packLinkMsgId(srcPe, dstPe, 1));
  auto it = linkInFlight_.find(link);
  if (it == linkInFlight_.end()) return dropped;
  for (std::uint64_t seq : it->second) {
    dropped.push_back(seq);
    window_.erase(packLinkMsgId(srcPe, dstPe, seq));
  }
  linkInFlight_.erase(it);
  return dropped;
}

void Delivery::resetRecvLink(int srcPe, int dstPe) {
  linkRecv_.erase(linkMsgIdLink(packLinkMsgId(srcPe, dstPe, 1)));
}

std::uint64_t Delivery::lowestUnackedSeq(int srcPe, int dstPe) const {
  auto it = linkInFlight_.find(linkMsgIdLink(packLinkMsgId(srcPe, dstPe, 1)));
  if (it == linkInFlight_.end() || it->second.empty()) return 0;
  return *it->second.begin();
}

bool Delivery::acceptSeq(int srcPe, int dstPe, std::uint64_t seq) {
  RecvWin& win = linkRecv_[linkMsgIdLink(packLinkMsgId(srcPe, dstPe, 1))];
  if (seq <= win.cum || win.above.count(seq) != 0) {
    counters_.add(kDupSuppressed);
    return false;
  }
  win.above.insert(seq);
  while (!win.above.empty() && *win.above.begin() == win.cum + 1) {
    win.above.erase(win.above.begin());
    ++win.cum;
  }
  return true;
}

bool Delivery::seenSeq(int srcPe, int dstPe, std::uint64_t seq) const {
  auto it = linkRecv_.find(linkMsgIdLink(packLinkMsgId(srcPe, dstPe, 1)));
  if (it == linkRecv_.end()) return false;
  return seq <= it->second.cum || it->second.above.count(seq) != 0;
}

Delivery::CumAckView Delivery::cumAckView(int srcPe, int dstPe) const {
  CumAckView view;
  auto it = linkRecv_.find(linkMsgIdLink(packLinkMsgId(srcPe, dstPe, 1)));
  if (it == linkRecv_.end()) return view;
  view.cum = it->second.cum;
  for (std::uint64_t seq : it->second.above) {
    if (seq > view.cum + 64) break;  // beyond the bitmap's reach
    view.bitmap |= 1ULL << (seq - view.cum - 1);
  }
  return view;
}

bool Delivery::accept(std::uint64_t msgId) {
  if (msgId == 0) return true;
  if (!seen_.insert(msgId).second) {
    counters_.add(kDupSuppressed);
    return false;
  }
  return true;
}

bool Delivery::straggler(std::uint64_t ctx) {
  if (retired_.count(ctx) == 0) return false;
  counters_.add(kStragglers);
  return true;
}

void Delivery::addStats(Counters& out) const {
  out.add(kResent, 0);
  out.add(kAcks, 0);
  out.add(kDupSuppressed, 0);
  out.add(kGiveUps, 0);
  out.add(kStragglers, 0);
  out.merge(counters_);
}

void Delivery::registerInjectionCounters(Counters& out) {
  out.add(kFaultDrops, 0);
  out.add(kFaultDups, 0);
  out.add(kFaultDelays, 0);
  out.add(kFaultStalls, 0);
}

}  // namespace proto
}  // namespace pods
