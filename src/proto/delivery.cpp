#include "proto/delivery.hpp"

#include <cstdio>

namespace pods {
namespace proto {

std::string linkCounterName(int fromPe, int toPe, const char* what) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "net.link.%d->%d.%s", fromPe, toPe, what);
  return buf;
}

TimeoutDecision Delivery::onTimeout(std::uint64_t msgId, int expectedAttempt) {
  auto it = window_.find(msgId);
  if (it == window_.end()) return {};  // acked before the timer fired
  if (expectedAttempt != 0 && it->second != expectedAttempt)
    return {};  // superseded: a newer retransmit already re-armed the timer
  if (policy_.giveUpAt(it->second)) {
    const int attempt = it->second;
    window_.erase(it);
    counters_.add(kGiveUps);
    return {TimeoutDecision::Kind::GiveUp, attempt, 0.0};
  }
  it->second += 1;
  counters_.add(kResent);
  return {TimeoutDecision::Kind::Retransmit, it->second,
          policy_.backoffUs(it->second, baseRtoUs_)};
}

bool Delivery::accept(std::uint64_t msgId) {
  if (msgId == 0) return true;
  if (!seen_.insert(msgId).second) {
    counters_.add(kDupSuppressed);
    return false;
  }
  return true;
}

bool Delivery::straggler(std::uint64_t ctx) {
  if (retired_.count(ctx) == 0) return false;
  counters_.add(kStragglers);
  return true;
}

void Delivery::addStats(Counters& out) const {
  out.add(kResent, 0);
  out.add(kAcks, 0);
  out.add(kDupSuppressed, 0);
  out.add(kGiveUps, 0);
  out.add(kStragglers, 0);
  out.merge(counters_);
}

void Delivery::registerInjectionCounters(Counters& out) {
  out.add(kFaultDrops, 0);
  out.add(kFaultDups, 0);
  out.add(kFaultDelays, 0);
  out.add(kFaultStalls, 0);
}

}  // namespace proto
}  // namespace pods
