// Expansion of `inline def` calls.
//
// The MIT Id compiler inlined small function bodies into their callers'
// code blocks; IdLite exposes that as an explicit `inline def`. Inlining runs
// *before* sema, purely syntactically: each call to an inline function is
// replaced by a fresh-renamed copy of its body hoisted in front of the
// enclosing statement, with arguments bound by `let` and the trailing
// `return` value bound to a fresh name that substitutes for the call.
//
// Restrictions (diagnosed):
//  - an inline function body is a statement list whose only `return` is the
//    final statement (or absent, for void);
//  - inline calls may not appear in while-loop conditions or in loop `yield`
//    expressions (those re-evaluate in loop context and cannot be hoisted);
//  - inline expansion depth is capped to reject recursive inline functions.
#pragma once

#include "frontend/ast.hpp"
#include "support/diag.hpp"

namespace pods::fe {

/// Expands all calls to inline functions in place. Returns false on error.
bool expandInlines(Module& module, DiagSink& diags);

}  // namespace pods::fe
