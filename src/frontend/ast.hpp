// Abstract syntax tree for IdLite.
//
// The tree is produced by the parser, optionally rewritten by the inliner
// (expansion of `inline def` calls), then annotated in place by sema (types,
// resolved variable ids, callee/builtin bindings).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/diag.hpp"

namespace pods::fe {

enum class Ty : std::uint8_t { Invalid, Int, Real, Array1, Array2, Void };

inline bool isNumeric(Ty t) { return t == Ty::Int || t == Ty::Real; }
inline bool isArrayTy(Ty t) { return t == Ty::Array1 || t == Ty::Array2; }
const char* tyName(Ty t);

enum class UnOp : std::uint8_t { Neg, Not };
enum class BinOp : std::uint8_t {
  Add, Sub, Mul, Div, Mod,
  Lt, Le, Gt, Ge, Eq, Ne,
  And, Or,
};

/// Built-in functions (lowered directly to EU instructions, not SP spawns).
enum class Builtin : std::uint8_t {
  None, Sqrt, Abs, Exp, Log, Sin, Cos, Floor, Min, Max, Pow, ToReal, ToInt,
  ArrayAlloc,   // array(n)
  MatrixAlloc,  // matrix(n, m)
  Len,          // len(a): length of a 1-D array
  Rows,         // rows(m): first dimension of a matrix
  Cols,         // cols(m): second dimension of a matrix
};

struct Expr;
struct Stmt;
struct FnDecl;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

/// One circulating loop variable: `carry (name = init)`.
struct CarryDef {
  std::string name;
  ExprPtr init;
  SrcLoc loc;
  int varId = -1;  // resolved by sema
};

/// A for- or while-loop, usable as a statement or (with yield) an expression.
struct LoopInfo {
  bool isFor = true;
  bool ascending = true;       // for-loops: `to` vs `downto`
  std::string indexName;       // for-loops only
  int indexVarId = -1;
  ExprPtr init, limit;         // for-loop bounds (inclusive)
  ExprPtr cond;                // while-loops: tested before each iteration
  std::vector<CarryDef> carries;
  std::vector<StmtPtr> body;
  ExprPtr yieldExpr;           // optional; required when used as an expression
  SrcLoc loc;
};

enum class ExKind : std::uint8_t {
  IntLit, RealLit, Var, Unary, Binary, Call, Index, IfExpr, Loop,
};

struct Expr {
  ExKind kind;
  SrcLoc loc;
  Ty type = Ty::Invalid;  // set by sema

  // IntLit / RealLit
  std::int64_t ival = 0;
  double fval = 0.0;

  // Var / Call / Index: the referenced name
  std::string name;
  int varId = -1;                  // Var/Index base variable (sema)
  const FnDecl* callee = nullptr;  // Call: user function (sema)
  Builtin builtin = Builtin::None; // Call: builtin (sema)

  // Unary/Binary operator payloads
  UnOp uop = UnOp::Neg;
  BinOp bop = BinOp::Add;

  // Children. Meaning depends on kind:
  //  Unary:  [operand]
  //  Binary: [lhs, rhs]
  //  Call:   arguments
  //  Index:  subscripts (1 or 2)
  //  IfExpr: [cond, thenVal, elseVal]
  std::vector<ExprPtr> args;

  // Loop expression payload
  std::unique_ptr<LoopInfo> loop;
};

enum class StKind : std::uint8_t {
  Let,         // let name = value;
  Next,        // next name = value;   (carried variable update)
  ArrayWrite,  // name[subs...] = value;
  Return,      // return values...;
  If,          // if cond { thenBody } else { elseBody }
  LoopStmt,    // a loop in statement position (value holds ExKind::Loop)
  ExprStmt,    // bare expression (a void call)
};

struct Stmt {
  StKind kind;
  SrcLoc loc;

  std::string name;  // Let/Next/ArrayWrite target
  int varId = -1;    // resolved by sema

  ExprPtr value;                // Let/Next/ArrayWrite value, LoopStmt loop, ExprStmt
  std::vector<ExprPtr> values;  // Return (tuple allowed in main only)
  std::vector<ExprPtr> subs;    // ArrayWrite subscripts

  ExprPtr cond;                 // If
  std::vector<StmtPtr> thenBody, elseBody;
};

struct Param {
  std::string name;
  Ty type = Ty::Invalid;
  SrcLoc loc;
  int varId = -1;
};

/// Per-function variable metadata filled in by sema. varIds index into this.
struct VarInfo {
  enum class Kind : std::uint8_t { Param, Let, LoopIndex, Carry };
  std::string name;
  Kind kind = Kind::Let;
  Ty type = Ty::Invalid;
  SrcLoc loc;
};

struct FnDecl {
  std::string name;
  bool isInline = false;
  std::vector<Param> params;
  Ty retType = Ty::Void;
  int retTupleSize = 0;  // >1 only for main returning a tuple
  std::vector<StmtPtr> body;
  SrcLoc loc;
  std::vector<VarInfo> vars;  // filled by sema
};

struct Module {
  std::vector<std::unique_ptr<FnDecl>> fns;

  FnDecl* find(const std::string& name) {
    for (auto& f : fns)
      if (f->name == name) return f.get();
    return nullptr;
  }
  const FnDecl* find(const std::string& name) const {
    return const_cast<Module*>(this)->find(name);
  }
};

/// Deep copies, used by the inliner.
ExprPtr cloneExpr(const Expr& e);
StmtPtr cloneStmt(const Stmt& s);
std::unique_ptr<LoopInfo> cloneLoop(const LoopInfo& l);

}  // namespace pods::fe
