#include "frontend/sema.hpp"

#include <unordered_map>
#include <vector>

#include "support/check.hpp"

namespace pods::fe {

namespace {

struct BuiltinSig {
  Builtin id;
  int arity;
};

const std::unordered_map<std::string_view, BuiltinSig>& builtins() {
  static const std::unordered_map<std::string_view, BuiltinSig> b = {
      {"sqrt", {Builtin::Sqrt, 1}}, {"abs", {Builtin::Abs, 1}},
      {"exp", {Builtin::Exp, 1}},   {"log", {Builtin::Log, 1}},
      {"sin", {Builtin::Sin, 1}},   {"cos", {Builtin::Cos, 1}},
      {"floor", {Builtin::Floor, 1}},
      {"min", {Builtin::Min, 2}},   {"max", {Builtin::Max, 2}},
      {"pow", {Builtin::Pow, 2}},
      {"real", {Builtin::ToReal, 1}}, {"int", {Builtin::ToInt, 1}},
      {"len", {Builtin::Len, 1}},     {"rows", {Builtin::Rows, 1}},
      {"cols", {Builtin::Cols, 1}},
  };
  return b;
}

class FnChecker {
 public:
  FnChecker(Module& module, FnDecl& fn, DiagSink& diags)
      : module_(module), fn_(fn), diags_(diags) {}

  void run() {
    pushScope();
    for (Param& p : fn_.params) {
      p.varId = declare(p.name, VarInfo::Kind::Param, p.type, p.loc);
    }
    checkBody(fn_.body, /*topLevel=*/true);
    popScope();
  }

 private:
  // --- scopes ------------------------------------------------------------

  void pushScope() { scopes_.emplace_back(); }
  void popScope() { scopes_.pop_back(); }

  int lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto f = it->find(name);
      if (f != it->end()) return f->second;
    }
    return -1;
  }

  int declare(const std::string& name, VarInfo::Kind kind, Ty type, SrcLoc loc) {
    if (lookup(name) >= 0) {
      diags_.error(loc, "'" + name +
                            "' is already bound; IdLite is single-assignment "
                            "and does not allow shadowing");
      // Fall through and rebind so downstream checks can continue.
    }
    int id = static_cast<int>(fn_.vars.size());
    fn_.vars.push_back({name, kind, type, loc});
    scopes_.back()[name] = id;
    return id;
  }

  Ty varType(int id) const { return fn_.vars[static_cast<std::size_t>(id)].type; }

  // --- helpers ------------------------------------------------------------

  void err(SrcLoc loc, std::string msg) { diags_.error(loc, std::move(msg)); }

  /// Unifies two numeric types (int + real -> real). Invalid propagates.
  Ty unifyNumeric(Ty a, Ty b) {
    if (a == Ty::Invalid || b == Ty::Invalid) return Ty::Invalid;
    if (a == Ty::Real || b == Ty::Real) return Ty::Real;
    return Ty::Int;
  }

  bool requireNumeric(const Expr& e, const char* what) {
    if (e.type == Ty::Invalid) return false;  // already reported
    if (!isNumeric(e.type)) {
      err(e.loc, std::string(what) + " must be numeric, found " + tyName(e.type));
      return false;
    }
    return true;
  }

  bool requireInt(const Expr& e, const char* what) {
    if (e.type == Ty::Invalid) return false;
    if (e.type != Ty::Int) {
      err(e.loc, std::string(what) + " must be int, found " + tyName(e.type));
      return false;
    }
    return true;
  }

  /// Can a value of type `from` be passed where `to` is expected?
  bool compatible(Ty to, Ty from) {
    if (to == from) return true;
    if (to == Ty::Real && from == Ty::Int) return true;
    return false;
  }

  // --- statements ----------------------------------------------------------

  void checkBody(std::vector<StmtPtr>& body, bool topLevel) {
    for (std::size_t i = 0; i < body.size(); ++i) {
      Stmt& s = *body[i];
      if (s.kind == StKind::Return) {
        if (!topLevel || i + 1 != body.size()) {
          err(s.loc, "return must be the last statement of the function body");
        }
      }
      checkStmt(s);
    }
    if (topLevel && fn_.retType != Ty::Void) {
      if (body.empty() || body.back()->kind != StKind::Return) {
        err(fn_.loc, "function '" + fn_.name + "' declared '-> " +
                         tyName(fn_.retType) + "' must end with a return");
      }
    }
  }

  void checkStmt(Stmt& s) {
    switch (s.kind) {
      case StKind::Let: {
        checkExpr(*s.value);
        Ty t = s.value->type;
        if (t == Ty::Void) {
          err(s.loc, "cannot bind a void value");
          t = Ty::Invalid;
        }
        s.varId = declare(s.name, VarInfo::Kind::Let, t, s.loc);
        break;
      }
      case StKind::Next: {
        checkExpr(*s.value);
        if (loops_.empty()) {
          err(s.loc, "'next' outside of a loop");
          break;
        }
        LoopInfo* li = loops_.back();
        const CarryDef* carry = nullptr;
        for (const CarryDef& c : li->carries) {
          if (c.name == s.name) { carry = &c; break; }
        }
        if (!carry) {
          err(s.loc, "'" + s.name +
                         "' is not a carried variable of the innermost loop");
          break;
        }
        s.varId = carry->varId;
        Ty ct = varType(s.varId);
        if (!compatible(ct, s.value->type) && s.value->type != Ty::Invalid) {
          err(s.loc, "next value of type " + std::string(tyName(s.value->type)) +
                         " does not match carried variable type " + tyName(ct));
        }
        break;
      }
      case StKind::ArrayWrite: {
        s.varId = lookup(s.name);
        if (s.varId < 0) {
          err(s.loc, "unknown array '" + s.name + "'");
        } else {
          Ty at = varType(s.varId);
          if (!isArrayTy(at)) {
            err(s.loc, "'" + s.name + "' is not an array");
          } else {
            int want = at == Ty::Array1 ? 1 : 2;
            if (static_cast<int>(s.subs.size()) != want) {
              err(s.loc, "'" + s.name + "' needs " + std::to_string(want) +
                             " subscript(s)");
            }
          }
        }
        for (auto& sub : s.subs) {
          checkExpr(*sub);
          requireInt(*sub, "array subscript");
        }
        checkExpr(*s.value);
        requireNumeric(*s.value, "array element value");
        break;
      }
      case StKind::Return: {
        for (auto& v : s.values) checkExpr(*v);
        const bool isMain = fn_.name == "main";
        if (s.values.size() > 1 && !isMain) {
          err(s.loc, "only main may return a tuple");
        }
        if (isMain) {
          fn_.retTupleSize = static_cast<int>(s.values.size());
          for (auto& v : s.values) {
            if (!isNumeric(v->type) && !isArrayTy(v->type) &&
                v->type != Ty::Invalid) {
              err(v->loc, "main may only return numbers and arrays");
            }
          }
        } else if (fn_.retType == Ty::Void) {
          if (!s.values.empty()) {
            err(s.loc, "void function '" + fn_.name + "' returns a value");
          }
        } else {
          if (s.values.size() != 1) {
            err(s.loc, "function '" + fn_.name + "' must return one value");
          } else if (!compatible(fn_.retType, s.values[0]->type) &&
                     s.values[0]->type != Ty::Invalid) {
            err(s.loc, "return type " + std::string(tyName(s.values[0]->type)) +
                           " does not match declared " + tyName(fn_.retType));
          }
        }
        break;
      }
      case StKind::If: {
        checkExpr(*s.cond);
        requireNumeric(*s.cond, "if condition");
        pushScope();
        checkBody(s.thenBody, /*topLevel=*/false);
        popScope();
        pushScope();
        checkBody(s.elseBody, /*topLevel=*/false);
        popScope();
        break;
      }
      case StKind::LoopStmt: {
        checkExpr(*s.value);  // the Loop expression; yield optional here
        break;
      }
      case StKind::ExprStmt: {
        checkExpr(*s.value);
        break;
      }
    }
  }

  // --- expressions ---------------------------------------------------------

  void checkExpr(Expr& e) {
    switch (e.kind) {
      case ExKind::IntLit: e.type = Ty::Int; return;
      case ExKind::RealLit: e.type = Ty::Real; return;
      case ExKind::Var: {
        e.varId = lookup(e.name);
        if (e.varId < 0) {
          err(e.loc, "unknown variable '" + e.name + "'");
          e.type = Ty::Invalid;
        } else {
          e.type = varType(e.varId);
        }
        return;
      }
      case ExKind::Unary: {
        checkExpr(*e.args[0]);
        if (e.uop == UnOp::Neg) {
          requireNumeric(*e.args[0], "operand of unary '-'");
          e.type = e.args[0]->type;
        } else {
          requireInt(*e.args[0], "operand of '!'");
          e.type = Ty::Int;
        }
        return;
      }
      case ExKind::Binary: {
        checkExpr(*e.args[0]);
        checkExpr(*e.args[1]);
        const Expr& l = *e.args[0];
        const Expr& r = *e.args[1];
        switch (e.bop) {
          case BinOp::Add: case BinOp::Sub: case BinOp::Mul: case BinOp::Div:
            if (requireNumeric(l, "arithmetic operand") &&
                requireNumeric(r, "arithmetic operand")) {
              e.type = unifyNumeric(l.type, r.type);
            }
            return;
          case BinOp::Mod:
            if (requireInt(l, "'%' operand") && requireInt(r, "'%' operand")) {
              e.type = Ty::Int;
            }
            return;
          case BinOp::Lt: case BinOp::Le: case BinOp::Gt: case BinOp::Ge:
          case BinOp::Eq: case BinOp::Ne:
            if (requireNumeric(l, "comparison operand") &&
                requireNumeric(r, "comparison operand")) {
              e.type = Ty::Int;
            }
            return;
          case BinOp::And: case BinOp::Or:
            if (requireInt(l, "logical operand") &&
                requireInt(r, "logical operand")) {
              e.type = Ty::Int;
            }
            return;
        }
        return;
      }
      case ExKind::Call: checkCall(e); return;
      case ExKind::Index: {
        e.varId = lookup(e.name);
        if (e.varId < 0) {
          err(e.loc, "unknown array '" + e.name + "'");
        } else {
          Ty at = varType(e.varId);
          if (!isArrayTy(at)) {
            err(e.loc, "'" + e.name + "' is not an array");
          } else {
            int want = at == Ty::Array1 ? 1 : 2;
            if (static_cast<int>(e.args.size()) != want) {
              err(e.loc, "'" + e.name + "' needs " + std::to_string(want) +
                             " subscript(s)");
            }
          }
        }
        for (auto& sub : e.args) {
          checkExpr(*sub);
          requireInt(*sub, "array subscript");
        }
        e.type = Ty::Real;  // all array elements are real
        return;
      }
      case ExKind::IfExpr: {
        checkExpr(*e.args[0]);
        requireNumeric(*e.args[0], "if-expression condition");
        checkExpr(*e.args[1]);
        checkExpr(*e.args[2]);
        Ty a = e.args[1]->type, b = e.args[2]->type;
        if (a == Ty::Invalid || b == Ty::Invalid) {
          e.type = Ty::Invalid;
        } else if (isNumeric(a) && isNumeric(b)) {
          e.type = unifyNumeric(a, b);
        } else if (a == b && isArrayTy(a)) {
          e.type = a;
        } else {
          err(e.loc, std::string("if-expression arms have incompatible types ") +
                         tyName(a) + " and " + tyName(b));
          e.type = Ty::Invalid;
        }
        return;
      }
      case ExKind::Loop: checkLoop(e); return;
    }
  }

  void checkCall(Expr& e) {
    // Builtins (including array/matrix allocation marked by the parser).
    if (e.builtin == Builtin::ArrayAlloc || e.builtin == Builtin::MatrixAlloc) {
      for (auto& a : e.args) {
        checkExpr(*a);
        requireInt(*a, "allocation dimension");
      }
      e.type = e.builtin == Builtin::ArrayAlloc ? Ty::Array1 : Ty::Array2;
      return;
    }
    auto bit = builtins().find(e.name);
    if (bit != builtins().end()) {
      e.builtin = bit->second.id;
      if (static_cast<int>(e.args.size()) != bit->second.arity) {
        err(e.loc, "'" + e.name + "' takes " +
                       std::to_string(bit->second.arity) + " argument(s)");
      }
      // Dimension queries take an array; everything else takes numbers.
      if (e.builtin == Builtin::Len || e.builtin == Builtin::Rows ||
          e.builtin == Builtin::Cols) {
        Ty want = e.builtin == Builtin::Len ? Ty::Array1 : Ty::Array2;
        for (auto& a : e.args) {
          checkExpr(*a);
          if (a->type != want && a->type != Ty::Invalid) {
            err(a->loc, "'" + e.name + "' expects " +
                            std::string(tyName(want)) + ", found " +
                            tyName(a->type));
          }
        }
        e.type = Ty::Int;
        return;
      }
      for (auto& a : e.args) {
        checkExpr(*a);
        requireNumeric(*a, "builtin argument");
      }
      switch (e.builtin) {
        case Builtin::Abs:
          e.type = e.args.empty() ? Ty::Invalid : e.args[0]->type;
          break;
        case Builtin::Min:
        case Builtin::Max:
          e.type = e.args.size() == 2
                       ? unifyNumeric(e.args[0]->type, e.args[1]->type)
                       : Ty::Invalid;
          break;
        case Builtin::ToInt:
          e.type = Ty::Int;
          break;
        default:
          e.type = Ty::Real;
          break;
      }
      return;
    }
    // User function.
    FnDecl* callee = module_.find(e.name);
    if (!callee) {
      err(e.loc, "unknown function '" + e.name + "'");
      e.type = Ty::Invalid;
      return;
    }
    if (callee->name == "main") {
      err(e.loc, "main cannot be called");
    }
    e.callee = callee;
    if (e.args.size() != callee->params.size()) {
      err(e.loc, "'" + e.name + "' takes " +
                     std::to_string(callee->params.size()) + " argument(s), " +
                     std::to_string(e.args.size()) + " given");
    }
    for (std::size_t i = 0; i < e.args.size(); ++i) {
      checkExpr(*e.args[i]);
      if (i < callee->params.size()) {
        Ty want = callee->params[i].type;
        if (!compatible(want, e.args[i]->type) &&
            e.args[i]->type != Ty::Invalid) {
          err(e.args[i]->loc,
              "argument " + std::to_string(i + 1) + " of '" + e.name +
                  "' expects " + tyName(want) + ", found " +
                  tyName(e.args[i]->type));
        }
      }
    }
    e.type = callee->retType;
    return;
  }

  void checkLoop(Expr& e) {
    LoopInfo& li = *e.loop;
    if (li.isFor) {
      checkExpr(*li.init);
      requireInt(*li.init, "for-loop initial bound");
      checkExpr(*li.limit);
      requireInt(*li.limit, "for-loop final bound");
    } else if (li.carries.empty()) {
      err(li.loc, "while-loops must carry at least one variable");
    }
    // Carry initializers are evaluated in the enclosing scope.
    for (CarryDef& c : li.carries) checkExpr(*c.init);

    pushScope();
    if (li.isFor) {
      li.indexVarId = declare(li.indexName, VarInfo::Kind::LoopIndex, Ty::Int,
                              li.loc);
    }
    for (CarryDef& c : li.carries) {
      Ty t = c.init->type;
      if (t == Ty::Void) {
        err(c.loc, "carried variable cannot be void");
        t = Ty::Invalid;
      }
      c.varId = declare(c.name, VarInfo::Kind::Carry, t, c.loc);
    }
    if (!li.isFor) {
      checkExpr(*li.cond);
      requireNumeric(*li.cond, "while condition");
    }
    loops_.push_back(&li);
    pushScope();
    checkBody(li.body, /*topLevel=*/false);
    popScope();
    loops_.pop_back();
    if (li.yieldExpr) {
      // Yield sees the carried variables (their values after the last
      // iteration) but not body-local bindings.
      checkExpr(*li.yieldExpr);
      e.type = li.yieldExpr->type;
    } else {
      e.type = Ty::Void;
    }
    popScope();
  }

  Module& module_;
  FnDecl& fn_;
  DiagSink& diags_;
  std::vector<std::unordered_map<std::string, int>> scopes_;
  std::vector<LoopInfo*> loops_;
};

}  // namespace

bool analyze(Module& module, DiagSink& diags, bool requireMain) {
  // Duplicate function names.
  for (std::size_t i = 0; i < module.fns.size(); ++i) {
    for (std::size_t j = i + 1; j < module.fns.size(); ++j) {
      if (module.fns[i]->name == module.fns[j]->name) {
        diags.error(module.fns[j]->loc,
                    "duplicate function '" + module.fns[j]->name + "'");
      }
    }
  }
  for (auto& fn : module.fns) {
    if (builtins().count(fn->name) || fn->name == "array" || fn->name == "matrix") {
      diags.error(fn->loc, "'" + fn->name + "' is a builtin and cannot be redefined");
    }
    FnChecker(module, *fn, diags).run();
  }
  if (requireMain) {
    FnDecl* m = module.find("main");
    if (!m) {
      diags.error({}, "no 'main' function defined");
    } else if (!m->params.empty()) {
      diags.error(m->loc, "'main' must take no parameters");
    } else if (m->isInline) {
      diags.error(m->loc, "'main' cannot be inline");
    }
  }
  return !diags.hasErrors();
}

}  // namespace pods::fe
