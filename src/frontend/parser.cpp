#include "frontend/parser.hpp"

#include <stdexcept>

#include "frontend/lexer.hpp"
#include "support/check.hpp"

namespace pods::fe {

const char* tyName(Ty t) {
  switch (t) {
    case Ty::Invalid: return "<invalid>";
    case Ty::Int: return "int";
    case Ty::Real: return "real";
    case Ty::Array1: return "array";
    case Ty::Array2: return "matrix";
    case Ty::Void: return "void";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// AST deep copies (used by the inliner).
// ---------------------------------------------------------------------------

ExprPtr cloneExpr(const Expr& e) {
  auto out = std::make_unique<Expr>();
  out->kind = e.kind;
  out->loc = e.loc;
  out->type = e.type;
  out->ival = e.ival;
  out->fval = e.fval;
  out->name = e.name;
  out->varId = e.varId;
  out->callee = e.callee;
  out->builtin = e.builtin;
  out->uop = e.uop;
  out->bop = e.bop;
  out->args.reserve(e.args.size());
  for (const auto& a : e.args) out->args.push_back(cloneExpr(*a));
  if (e.loop) out->loop = cloneLoop(*e.loop);
  return out;
}

std::unique_ptr<LoopInfo> cloneLoop(const LoopInfo& l) {
  auto out = std::make_unique<LoopInfo>();
  out->isFor = l.isFor;
  out->ascending = l.ascending;
  out->indexName = l.indexName;
  out->indexVarId = l.indexVarId;
  if (l.init) out->init = cloneExpr(*l.init);
  if (l.limit) out->limit = cloneExpr(*l.limit);
  if (l.cond) out->cond = cloneExpr(*l.cond);
  for (const auto& c : l.carries) {
    CarryDef d;
    d.name = c.name;
    d.loc = c.loc;
    d.varId = c.varId;
    d.init = cloneExpr(*c.init);
    out->carries.push_back(std::move(d));
  }
  for (const auto& s : l.body) out->body.push_back(cloneStmt(*s));
  if (l.yieldExpr) out->yieldExpr = cloneExpr(*l.yieldExpr);
  out->loc = l.loc;
  return out;
}

StmtPtr cloneStmt(const Stmt& s) {
  auto out = std::make_unique<Stmt>();
  out->kind = s.kind;
  out->loc = s.loc;
  out->name = s.name;
  out->varId = s.varId;
  if (s.value) out->value = cloneExpr(*s.value);
  for (const auto& v : s.values) out->values.push_back(cloneExpr(*v));
  for (const auto& v : s.subs) out->subs.push_back(cloneExpr(*v));
  if (s.cond) out->cond = cloneExpr(*s.cond);
  for (const auto& t : s.thenBody) out->thenBody.push_back(cloneStmt(*t));
  for (const auto& t : s.elseBody) out->elseBody.push_back(cloneStmt(*t));
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

/// Internal exception for parse bail-out; never escapes parse().
struct ParseError : std::runtime_error {
  ParseError() : std::runtime_error("parse error") {}
};

class Parser {
 public:
  Parser(std::vector<Token> toks, DiagSink& diags)
      : toks_(std::move(toks)), diags_(diags) {}

  Module run() {
    Module m;
    while (!at(Tok::Eof)) {
      try {
        m.fns.push_back(parseDef());
      } catch (const ParseError&) {
        // Recover: skip to the next top-level 'def' / 'inline'.
        while (!at(Tok::Eof) && !at(Tok::KwDef) && !at(Tok::KwInline)) advance();
      }
    }
    return m;
  }

 private:
  const Token& cur() const { return toks_[pos_]; }
  const Token& peek(int ahead = 1) const {
    std::size_t i = pos_ + static_cast<std::size_t>(ahead);
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  bool at(Tok k) const { return cur().kind == k; }
  Token advance() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }
  bool accept(Tok k) {
    if (at(k)) {
      advance();
      return true;
    }
    return false;
  }
  Token expect(Tok k, const char* what) {
    if (!at(k)) {
      diags_.error(cur().loc, std::string("expected ") + tokName(k) + " " + what +
                                  ", found " + tokName(cur().kind));
      throw ParseError{};
    }
    return advance();
  }

  Ty parseType() {
    if (accept(Tok::KwInt)) return Ty::Int;
    if (accept(Tok::KwReal)) return Ty::Real;
    if (accept(Tok::KwArray)) return Ty::Array1;
    if (accept(Tok::KwMatrix)) return Ty::Array2;
    diags_.error(cur().loc, "expected a type (int, real, array, matrix)");
    throw ParseError{};
  }

  std::unique_ptr<FnDecl> parseDef() {
    auto fn = std::make_unique<FnDecl>();
    fn->isInline = accept(Tok::KwInline);
    fn->loc = cur().loc;
    expect(Tok::KwDef, "to start a function definition");
    fn->name = expect(Tok::Ident, "for the function name").text;
    expect(Tok::LParen, "after function name");
    if (!at(Tok::RParen)) {
      do {
        Param p;
        Token id = expect(Tok::Ident, "for a parameter name");
        p.name = id.text;
        p.loc = id.loc;
        expect(Tok::Colon, "after parameter name");
        p.type = parseType();
        fn->params.push_back(std::move(p));
      } while (accept(Tok::Comma));
    }
    expect(Tok::RParen, "to close the parameter list");
    if (accept(Tok::Arrow)) fn->retType = parseType();
    fn->body = parseBlock();
    return fn;
  }

  std::vector<StmtPtr> parseBlock() {
    expect(Tok::LBrace, "to open a block");
    std::vector<StmtPtr> body;
    while (!at(Tok::RBrace) && !at(Tok::Eof)) body.push_back(parseStmt());
    expect(Tok::RBrace, "to close the block");
    return body;
  }

  StmtPtr parseStmt() {
    SrcLoc loc = cur().loc;
    if (at(Tok::KwLet)) return parseLet();
    if (at(Tok::KwNext)) {
      advance();
      auto s = std::make_unique<Stmt>();
      s->kind = StKind::Next;
      s->loc = loc;
      s->name = expect(Tok::Ident, "for the carried variable").text;
      expect(Tok::Assign, "in 'next' update");
      s->value = parseExpr();
      expect(Tok::Semi, "after 'next' update");
      return s;
    }
    if (at(Tok::KwReturn)) {
      advance();
      auto s = std::make_unique<Stmt>();
      s->kind = StKind::Return;
      s->loc = loc;
      if (!at(Tok::Semi)) {
        do {
          s->values.push_back(parseExpr());
        } while (accept(Tok::Comma));
      }
      expect(Tok::Semi, "after return");
      return s;
    }
    if (at(Tok::KwIf)) return parseIfStmt();
    if (at(Tok::KwFor) || at(Tok::KwLoop)) {
      auto s = std::make_unique<Stmt>();
      s->kind = StKind::LoopStmt;
      s->loc = loc;
      s->value = parseLoopExpr();
      accept(Tok::Semi);  // optional after '}'
      return s;
    }
    if (at(Tok::Ident) && peek().kind == Tok::LBracket) {
      // Array element write: name[subs] = expr;
      auto s = std::make_unique<Stmt>();
      s->kind = StKind::ArrayWrite;
      s->loc = loc;
      s->name = advance().text;
      advance();  // [
      s->subs.push_back(parseExpr());
      if (accept(Tok::Comma)) s->subs.push_back(parseExpr());
      expect(Tok::RBracket, "to close the subscript");
      expect(Tok::Assign, "in array element write");
      s->value = parseExpr();
      expect(Tok::Semi, "after array element write");
      return s;
    }
    // Bare expression statement (a void call).
    auto s = std::make_unique<Stmt>();
    s->kind = StKind::ExprStmt;
    s->loc = loc;
    s->value = parseExpr();
    expect(Tok::Semi, "after expression statement");
    return s;
  }

  StmtPtr parseLet() {
    SrcLoc loc = cur().loc;
    advance();  // let
    auto s = std::make_unique<Stmt>();
    s->kind = StKind::Let;
    s->loc = loc;
    s->name = expect(Tok::Ident, "for the bound name").text;
    expect(Tok::Assign, "in let binding");
    s->value = parseExpr();
    expect(Tok::Semi, "after let binding");
    return s;
  }

  StmtPtr parseIfStmt() {
    SrcLoc loc = cur().loc;
    advance();  // if
    auto s = std::make_unique<Stmt>();
    s->kind = StKind::If;
    s->loc = loc;
    s->cond = parseExpr();
    s->thenBody = parseBlock();
    if (accept(Tok::KwElse)) {
      if (at(Tok::KwIf)) {
        s->elseBody.push_back(parseIfStmt());
      } else {
        s->elseBody = parseBlock();
      }
    }
    return s;
  }

  ExprPtr parseLoopExpr() {
    SrcLoc loc = cur().loc;
    auto li = std::make_unique<LoopInfo>();
    li->loc = loc;
    if (accept(Tok::KwFor)) {
      li->isFor = true;
      li->indexName = expect(Tok::Ident, "for the loop index").text;
      expect(Tok::Assign, "in for-loop bounds");
      li->init = parseExpr();
      if (accept(Tok::KwDownto)) {
        li->ascending = false;
      } else {
        expect(Tok::KwTo, "in for-loop bounds");
        li->ascending = true;
      }
      li->limit = parseExpr();
      if (at(Tok::KwCarry)) parseCarries(*li);
      li->body = parseBlock();
    } else {
      expect(Tok::KwLoop, "to start a while loop");
      li->isFor = false;
      parseCarries(*li);
      expect(Tok::KwWhile, "after 'loop carry (...)'");
      li->cond = parseExpr();
      li->body = parseBlock();
    }
    if (accept(Tok::KwYield)) li->yieldExpr = parseExpr();
    auto e = std::make_unique<Expr>();
    e->kind = ExKind::Loop;
    e->loc = loc;
    e->loop = std::move(li);
    return e;
  }

  void parseCarries(LoopInfo& li) {
    expect(Tok::KwCarry, "to declare circulating variables");
    expect(Tok::LParen, "after 'carry'");
    do {
      CarryDef c;
      Token id = expect(Tok::Ident, "for a carried variable");
      c.name = id.text;
      c.loc = id.loc;
      expect(Tok::Assign, "in carry initializer");
      c.init = parseExpr();
      li.carries.push_back(std::move(c));
    } while (accept(Tok::Comma));
    expect(Tok::RParen, "to close the carry list");
  }

  // --- expressions -------------------------------------------------------

  ExprPtr parseExpr() {
    if (at(Tok::KwIf)) {
      // if-expression: if c then a else b
      SrcLoc loc = advance().loc;
      auto e = std::make_unique<Expr>();
      e->kind = ExKind::IfExpr;
      e->loc = loc;
      e->args.push_back(parseExpr());
      expect(Tok::KwThen, "in if-expression");
      e->args.push_back(parseExpr());
      expect(Tok::KwElse, "in if-expression");
      e->args.push_back(parseExpr());
      return e;
    }
    if (at(Tok::KwFor) || at(Tok::KwLoop)) return parseLoopExpr();
    return parseOr();
  }

  ExprPtr mkBin(BinOp op, SrcLoc loc, ExprPtr lhs, ExprPtr rhs) {
    auto e = std::make_unique<Expr>();
    e->kind = ExKind::Binary;
    e->loc = loc;
    e->bop = op;
    e->args.push_back(std::move(lhs));
    e->args.push_back(std::move(rhs));
    return e;
  }

  ExprPtr parseOr() {
    ExprPtr lhs = parseAnd();
    while (at(Tok::OrOr)) {
      SrcLoc loc = advance().loc;
      lhs = mkBin(BinOp::Or, loc, std::move(lhs), parseAnd());
    }
    return lhs;
  }
  ExprPtr parseAnd() {
    ExprPtr lhs = parseEquality();
    while (at(Tok::AndAnd)) {
      SrcLoc loc = advance().loc;
      lhs = mkBin(BinOp::And, loc, std::move(lhs), parseEquality());
    }
    return lhs;
  }
  ExprPtr parseEquality() {
    ExprPtr lhs = parseRelational();
    for (;;) {
      if (at(Tok::EqEq)) {
        SrcLoc loc = advance().loc;
        lhs = mkBin(BinOp::Eq, loc, std::move(lhs), parseRelational());
      } else if (at(Tok::NotEq)) {
        SrcLoc loc = advance().loc;
        lhs = mkBin(BinOp::Ne, loc, std::move(lhs), parseRelational());
      } else {
        return lhs;
      }
    }
  }
  ExprPtr parseRelational() {
    ExprPtr lhs = parseAdditive();
    for (;;) {
      BinOp op;
      if (at(Tok::Lt)) op = BinOp::Lt;
      else if (at(Tok::Le)) op = BinOp::Le;
      else if (at(Tok::Gt)) op = BinOp::Gt;
      else if (at(Tok::Ge)) op = BinOp::Ge;
      else return lhs;
      SrcLoc loc = advance().loc;
      lhs = mkBin(op, loc, std::move(lhs), parseAdditive());
    }
  }
  ExprPtr parseAdditive() {
    ExprPtr lhs = parseMultiplicative();
    for (;;) {
      if (at(Tok::Plus)) {
        SrcLoc loc = advance().loc;
        lhs = mkBin(BinOp::Add, loc, std::move(lhs), parseMultiplicative());
      } else if (at(Tok::Minus)) {
        SrcLoc loc = advance().loc;
        lhs = mkBin(BinOp::Sub, loc, std::move(lhs), parseMultiplicative());
      } else {
        return lhs;
      }
    }
  }
  ExprPtr parseMultiplicative() {
    ExprPtr lhs = parseUnary();
    for (;;) {
      BinOp op;
      if (at(Tok::Star)) op = BinOp::Mul;
      else if (at(Tok::Slash)) op = BinOp::Div;
      else if (at(Tok::Percent)) op = BinOp::Mod;
      else return lhs;
      SrcLoc loc = advance().loc;
      lhs = mkBin(op, loc, std::move(lhs), parseUnary());
    }
  }
  ExprPtr parseUnary() {
    if (at(Tok::Minus) || at(Tok::Bang)) {
      SrcLoc loc = cur().loc;
      UnOp op = at(Tok::Minus) ? UnOp::Neg : UnOp::Not;
      advance();
      auto e = std::make_unique<Expr>();
      e->kind = ExKind::Unary;
      e->loc = loc;
      e->uop = op;
      e->args.push_back(parseUnary());
      return e;
    }
    return parsePostfix();
  }

  ExprPtr parsePostfix() {
    SrcLoc loc = cur().loc;
    if (at(Tok::KwArray) || at(Tok::KwMatrix)) {
      // Allocation "calls" spelled with the type keywords.
      bool isMatrix = at(Tok::KwMatrix);
      advance();
      auto e = std::make_unique<Expr>();
      e->kind = ExKind::Call;
      e->loc = loc;
      e->name = isMatrix ? "matrix" : "array";
      e->builtin = isMatrix ? Builtin::MatrixAlloc : Builtin::ArrayAlloc;
      expect(Tok::LParen, "after allocation");
      e->args.push_back(parseExpr());
      if (isMatrix) {
        expect(Tok::Comma, "between matrix dimensions");
        e->args.push_back(parseExpr());
      }
      expect(Tok::RParen, "to close allocation");
      return e;
    }
    if (at(Tok::KwReal) || at(Tok::KwInt)) {
      // Conversion builtins spelled with the type keywords: real(e), int(e).
      bool toReal = at(Tok::KwReal);
      advance();
      auto e = std::make_unique<Expr>();
      e->kind = ExKind::Call;
      e->loc = loc;
      e->name = toReal ? "real" : "int";
      expect(Tok::LParen, "after conversion");
      e->args.push_back(parseExpr());
      expect(Tok::RParen, "to close conversion");
      return e;
    }
    if (at(Tok::IntLit)) {
      Token t = advance();
      auto e = std::make_unique<Expr>();
      e->kind = ExKind::IntLit;
      e->loc = loc;
      e->ival = t.ival;
      return e;
    }
    if (at(Tok::RealLit)) {
      Token t = advance();
      auto e = std::make_unique<Expr>();
      e->kind = ExKind::RealLit;
      e->loc = loc;
      e->fval = t.fval;
      return e;
    }
    if (accept(Tok::LParen)) {
      ExprPtr inner = parseExpr();
      expect(Tok::RParen, "to close parenthesized expression");
      return inner;
    }
    if (at(Tok::Ident)) {
      Token id = advance();
      if (at(Tok::LParen)) {
        advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExKind::Call;
        e->loc = loc;
        e->name = id.text;
        if (!at(Tok::RParen)) {
          do {
            e->args.push_back(parseExpr());
          } while (accept(Tok::Comma));
        }
        expect(Tok::RParen, "to close the call");
        return e;
      }
      if (at(Tok::LBracket)) {
        advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExKind::Index;
        e->loc = loc;
        e->name = id.text;
        e->args.push_back(parseExpr());
        if (accept(Tok::Comma)) e->args.push_back(parseExpr());
        expect(Tok::RBracket, "to close the subscript");
        return e;
      }
      auto e = std::make_unique<Expr>();
      e->kind = ExKind::Var;
      e->loc = loc;
      e->name = id.text;
      return e;
    }
    diags_.error(loc, std::string("expected an expression, found ") +
                          tokName(cur().kind));
    throw ParseError{};
  }

  std::vector<Token> toks_;
  DiagSink& diags_;
  std::size_t pos_ = 0;
};

}  // namespace

Module parse(std::string_view src, DiagSink& diags) {
  std::vector<Token> toks = lex(src, diags);
  if (diags.hasErrors()) return {};
  return Parser(std::move(toks), diags).run();
}

}  // namespace pods::fe
