#include "frontend/lexer.hpp"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

namespace pods::fe {

const char* tokName(Tok t) {
  switch (t) {
    case Tok::IntLit: return "integer literal";
    case Tok::RealLit: return "real literal";
    case Tok::Ident: return "identifier";
    case Tok::KwDef: return "'def'";
    case Tok::KwInline: return "'inline'";
    case Tok::KwLet: return "'let'";
    case Tok::KwNext: return "'next'";
    case Tok::KwReturn: return "'return'";
    case Tok::KwFor: return "'for'";
    case Tok::KwTo: return "'to'";
    case Tok::KwDownto: return "'downto'";
    case Tok::KwCarry: return "'carry'";
    case Tok::KwYield: return "'yield'";
    case Tok::KwLoop: return "'loop'";
    case Tok::KwWhile: return "'while'";
    case Tok::KwIf: return "'if'";
    case Tok::KwThen: return "'then'";
    case Tok::KwElse: return "'else'";
    case Tok::KwInt: return "'int'";
    case Tok::KwReal: return "'real'";
    case Tok::KwArray: return "'array'";
    case Tok::KwMatrix: return "'matrix'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::Comma: return "','";
    case Tok::Semi: return "';'";
    case Tok::Colon: return "':'";
    case Tok::Arrow: return "'->'";
    case Tok::Assign: return "'='";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::Percent: return "'%'";
    case Tok::Lt: return "'<'";
    case Tok::Le: return "'<='";
    case Tok::Gt: return "'>'";
    case Tok::Ge: return "'>='";
    case Tok::EqEq: return "'=='";
    case Tok::NotEq: return "'!='";
    case Tok::AndAnd: return "'&&'";
    case Tok::OrOr: return "'||'";
    case Tok::Bang: return "'!'";
    case Tok::Eof: return "end of input";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string_view, Tok>& keywords() {
  static const std::unordered_map<std::string_view, Tok> kw = {
      {"def", Tok::KwDef},       {"inline", Tok::KwInline},
      {"let", Tok::KwLet},       {"next", Tok::KwNext},
      {"return", Tok::KwReturn}, {"for", Tok::KwFor},
      {"to", Tok::KwTo},         {"downto", Tok::KwDownto},
      {"carry", Tok::KwCarry},   {"yield", Tok::KwYield},
      {"loop", Tok::KwLoop},     {"while", Tok::KwWhile},
      {"if", Tok::KwIf},         {"then", Tok::KwThen},
      {"else", Tok::KwElse},     {"int", Tok::KwInt},
      {"real", Tok::KwReal},     {"array", Tok::KwArray},
      {"matrix", Tok::KwMatrix},
  };
  return kw;
}

class Lexer {
 public:
  Lexer(std::string_view src, DiagSink& diags) : src_(src), diags_(diags) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    for (;;) {
      Token t = next();
      bool eof = t.kind == Tok::Eof;
      out.push_back(std::move(t));
      if (eof) break;
    }
    return out;
  }

 private:
  char peek(int ahead = 0) const {
    std::size_t i = pos_ + static_cast<std::size_t>(ahead);
    return i < src_.size() ? src_[i] : '\0';
  }
  char advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }
  bool atEnd() const { return pos_ >= src_.size(); }
  SrcLoc here() const { return {line_, col_}; }

  void skipTrivia() {
    for (;;) {
      if (atEnd()) return;
      char c = peek();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        advance();
      } else if (c == '/' && peek(1) == '/') {
        while (!atEnd() && peek() != '\n') advance();
      } else if (c == '/' && peek(1) == '*') {
        SrcLoc start = here();
        advance();
        advance();
        while (!atEnd() && !(peek() == '*' && peek(1) == '/')) advance();
        if (atEnd()) {
          diags_.error(start, "unterminated block comment");
          return;
        }
        advance();
        advance();
      } else {
        return;
      }
    }
  }

  Token make(Tok kind, SrcLoc loc) {
    Token t;
    t.kind = kind;
    t.loc = loc;
    return t;
  }

  Token next() {
    skipTrivia();
    SrcLoc loc = here();
    if (atEnd()) return make(Tok::Eof, loc);
    char c = advance();

    if (std::isdigit(static_cast<unsigned char>(c))) return number(c, loc);
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$') {
      std::string text(1, c);
      while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_' ||
             peek() == '$') {
        text += advance();
      }
      auto it = keywords().find(text);
      if (it != keywords().end()) return make(it->second, loc);
      Token t = make(Tok::Ident, loc);
      t.text = std::move(text);
      return t;
    }

    switch (c) {
      case '(': return make(Tok::LParen, loc);
      case ')': return make(Tok::RParen, loc);
      case '{': return make(Tok::LBrace, loc);
      case '}': return make(Tok::RBrace, loc);
      case '[': return make(Tok::LBracket, loc);
      case ']': return make(Tok::RBracket, loc);
      case ',': return make(Tok::Comma, loc);
      case ';': return make(Tok::Semi, loc);
      case ':': return make(Tok::Colon, loc);
      case '+': return make(Tok::Plus, loc);
      case '*': return make(Tok::Star, loc);
      case '/': return make(Tok::Slash, loc);
      case '%': return make(Tok::Percent, loc);
      case '-':
        if (peek() == '>') { advance(); return make(Tok::Arrow, loc); }
        return make(Tok::Minus, loc);
      case '<':
        if (peek() == '=') { advance(); return make(Tok::Le, loc); }
        return make(Tok::Lt, loc);
      case '>':
        if (peek() == '=') { advance(); return make(Tok::Ge, loc); }
        return make(Tok::Gt, loc);
      case '=':
        if (peek() == '=') { advance(); return make(Tok::EqEq, loc); }
        return make(Tok::Assign, loc);
      case '!':
        if (peek() == '=') { advance(); return make(Tok::NotEq, loc); }
        return make(Tok::Bang, loc);
      case '&':
        if (peek() == '&') { advance(); return make(Tok::AndAnd, loc); }
        break;
      case '|':
        if (peek() == '|') { advance(); return make(Tok::OrOr, loc); }
        break;
      default:
        break;
    }
    diags_.error(loc, std::string("unexpected character '") + c + "'");
    return next();
  }

  Token number(char first, SrcLoc loc) {
    std::string text(1, first);
    bool isReal = false;
    while (std::isdigit(static_cast<unsigned char>(peek()))) text += advance();
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      isReal = true;
      text += advance();
      while (std::isdigit(static_cast<unsigned char>(peek()))) text += advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      char sign = peek(1);
      int digitAt = (sign == '+' || sign == '-') ? 2 : 1;
      if (std::isdigit(static_cast<unsigned char>(peek(digitAt)))) {
        isReal = true;
        text += advance();  // e
        if (sign == '+' || sign == '-') text += advance();
        while (std::isdigit(static_cast<unsigned char>(peek()))) text += advance();
      }
    }
    Token t = make(isReal ? Tok::RealLit : Tok::IntLit, loc);
    if (isReal) {
      t.fval = std::strtod(text.c_str(), nullptr);
    } else {
      t.ival = std::strtoll(text.c_str(), nullptr, 10);
    }
    return t;
  }

  std::string_view src_;
  DiagSink& diags_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

std::vector<Token> lex(std::string_view src, DiagSink& diags) {
  return Lexer(src, diags).run();
}

}  // namespace pods::fe
