// Semantic analysis for IdLite.
//
// Responsibilities:
//  - name resolution with lexical scoping; variables get dense per-function
//    varIds recorded in FnDecl::vars;
//  - the single-assignment discipline for scalars: a name is bound exactly
//    once and shadowing is rejected (I-structure *elements* are checked at
//    run time by the array memory instead, as in the paper);
//  - type checking/inference (int, real, array, matrix) with implicit
//    int -> real coercion in arithmetic and array writes;
//  - loop rules: `next` targets a carried variable of the innermost loop;
//    while-loops carry at least one variable; loop expressions need `yield`;
//  - function rules: return as final statement, arity/type checks; `main`
//    may return a tuple (those become the program's results).
#pragma once

#include "frontend/ast.hpp"
#include "support/diag.hpp"

namespace pods::fe {

/// Analyzes the whole module in place. Returns false if errors were reported.
/// When requireMain is set, a `main` function with no parameters must exist.
bool analyze(Module& module, DiagSink& diags, bool requireMain = true);

}  // namespace pods::fe
