// Token kinds for the IdLite declarative language.
//
// IdLite stands in for Id Nouveau (see DESIGN.md): a single-assignment
// declarative language with I-structure arrays, for/while loops with
// circulating ("carried") variables, conditionals, and functions. It keeps
// exactly the properties the PODS transformations rely on: single assignment,
// no aliasing, flow-only dependences.
#pragma once

#include <string>

#include "support/diag.hpp"

namespace pods::fe {

enum class Tok {
  // literals & identifiers
  IntLit, RealLit, Ident,
  // keywords
  KwDef, KwInline, KwLet, KwNext, KwReturn, KwFor, KwTo, KwDownto, KwCarry,
  KwYield, KwLoop, KwWhile, KwIf, KwThen, KwElse,
  KwInt, KwReal, KwArray, KwMatrix,
  // punctuation
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Comma, Semi, Colon, Arrow,
  // operators
  Assign,            // =
  Plus, Minus, Star, Slash, Percent,
  Lt, Le, Gt, Ge, EqEq, NotEq,
  AndAnd, OrOr, Bang,
  // end of input
  Eof,
};

const char* tokName(Tok t);

struct Token {
  Tok kind = Tok::Eof;
  SrcLoc loc;
  std::string text;     // identifier spelling
  std::int64_t ival = 0;
  double fval = 0.0;
};

}  // namespace pods::fe
