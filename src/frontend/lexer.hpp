// Hand-written lexer for IdLite.
#pragma once

#include <string_view>
#include <vector>

#include "frontend/token.hpp"
#include "support/diag.hpp"

namespace pods::fe {

/// Tokenizes the whole buffer. Lexical errors are reported to `diags` and the
/// offending characters skipped; the resulting stream always ends with Eof.
std::vector<Token> lex(std::string_view src, DiagSink& diags);

}  // namespace pods::fe
