// Recursive-descent parser for IdLite.
//
// Grammar (EBNF, ';' terminates simple statements):
//
//   program    := def*
//   def        := ["inline"] "def" IDENT "(" [param ("," param)*] ")"
//                 ["->" type] block
//   param      := IDENT ":" type
//   type       := "int" | "real" | "array" | "matrix"
//   block      := "{" stmt* "}"
//   stmt       := "let" IDENT "=" expr ";"
//               | "next" IDENT "=" expr ";"
//               | IDENT "[" expr ["," expr] "]" "=" expr ";"
//               | "return" [expr ("," expr)*] ";"
//               | "if" expr block ["else" (block | ifstmt)]
//               | loopexpr ";"?            (loop in statement position)
//               | expr ";"                 (bare call)
//   loopexpr   := "for" IDENT "=" expr ("to"|"downto") expr [carry] block
//                 ["yield" expr]
//               | "loop" carry "while" expr block ["yield" expr]
//   carry      := "carry" "(" IDENT "=" expr ("," IDENT "=" expr)* ")"
//   expr       := "if" expr "then" expr "else" expr | orexpr | loopexpr
//   (usual precedence: || && | == != | < <= > >= | + - | * / % | unary | postfix)
//   primary    := NUMBER | IDENT | IDENT "(" args ")" | IDENT "[" subs "]"
//               | "array" "(" expr ")" | "matrix" "(" expr "," expr ")"
//               | "(" expr ")"
#pragma once

#include <string_view>

#include "frontend/ast.hpp"
#include "support/diag.hpp"

namespace pods::fe {

/// Parses a whole module. On syntax errors, diagnostics are reported and the
/// returned module may be partial; callers must check diags.hasErrors().
Module parse(std::string_view src, DiagSink& diags);

}  // namespace pods::fe
