#include "frontend/inliner.hpp"

#include <unordered_map>
#include <unordered_set>

#include "support/check.hpp"

namespace pods::fe {

namespace {

constexpr int kMaxInlineDepth = 32;

/// Renames every locally-bound identifier in a cloned inline body with a
/// unique prefix so the spliced statements cannot collide with or capture
/// names at the call site. Call names are function names and live in a
/// separate namespace, so they are left alone.
class Renamer {
 public:
  explicit Renamer(std::string prefix) : prefix_(std::move(prefix)) {}

  std::string fresh(const std::string& name) {
    std::string renamed = prefix_ + name;
    map_[name] = renamed;
    return renamed;
  }

  void renameStmts(std::vector<StmtPtr>& body) {
    for (auto& s : body) renameStmt(*s);
  }

  void renameStmt(Stmt& s) {
    switch (s.kind) {
      case StKind::Let:
        renameExpr(*s.value);
        s.name = fresh(s.name);  // bind after the initializer is renamed
        break;
      case StKind::Next:
        renameExpr(*s.value);
        s.name = use(s.name);
        break;
      case StKind::ArrayWrite:
        for (auto& e : s.subs) renameExpr(*e);
        renameExpr(*s.value);
        s.name = use(s.name);
        break;
      case StKind::Return:
        for (auto& e : s.values) renameExpr(*e);
        break;
      case StKind::If:
        renameExpr(*s.cond);
        renameStmts(s.thenBody);
        renameStmts(s.elseBody);
        break;
      case StKind::LoopStmt:
      case StKind::ExprStmt:
        renameExpr(*s.value);
        break;
    }
  }

  void renameExpr(Expr& e) {
    switch (e.kind) {
      case ExKind::Var:
      case ExKind::Index:
        e.name = use(e.name);
        break;
      case ExKind::Call:
        break;  // function name, separate namespace
      default:
        break;
    }
    for (auto& a : e.args) renameExpr(*a);
    if (e.loop) renameLoop(*e.loop);
  }

  void renameLoop(LoopInfo& li) {
    if (li.init) renameExpr(*li.init);
    if (li.limit) renameExpr(*li.limit);
    for (auto& c : li.carries) renameExpr(*c.init);
    if (li.isFor) li.indexName = fresh(li.indexName);
    for (auto& c : li.carries) c.name = fresh(c.name);
    if (li.cond) renameExpr(*li.cond);
    renameStmts(li.body);
    if (li.yieldExpr) renameExpr(*li.yieldExpr);
  }

 private:
  std::string use(const std::string& name) const {
    auto it = map_.find(name);
    return it == map_.end() ? name : it->second;
  }

  std::string prefix_;
  std::unordered_map<std::string, std::string> map_;
};

class Expander {
 public:
  Expander(Module& module, DiagSink& diags) : module_(module), diags_(diags) {}

  bool run() {
    // Validate inline function shapes first.
    for (auto& fn : module_.fns) {
      if (!fn->isInline) continue;
      for (std::size_t i = 0; i + 1 < fn->body.size(); ++i) {
        if (fn->body[i]->kind == StKind::Return) {
          diags_.error(fn->body[i]->loc,
                       "inline function '" + fn->name +
                           "': return must be the final statement");
        }
      }
    }
    for (auto& fn : module_.fns) {
      if (fn->isInline) continue;  // bodies of inline fns expand at call sites
      expandStmts(fn->body, 0);
    }
    return !diags_.hasErrors();
  }

 private:
  const FnDecl* inlineTarget(const Expr& e) const {
    if (e.kind != ExKind::Call || e.builtin != Builtin::None) return nullptr;
    const FnDecl* f = module_.find(e.name);
    return (f && f->isInline) ? f : nullptr;
  }

  void expandStmts(std::vector<StmtPtr>& body, int depth) {
    std::vector<StmtPtr> out;
    out.reserve(body.size());
    for (auto& sp : body) {
      Stmt& s = *sp;
      std::vector<StmtPtr> hoists;
      switch (s.kind) {
        case StKind::Let:
        case StKind::Next:
          expandExpr(s.value, hoists, depth);
          break;
        case StKind::ArrayWrite:
          for (auto& e : s.subs) expandExpr(e, hoists, depth);
          expandExpr(s.value, hoists, depth);
          break;
        case StKind::Return:
          for (auto& e : s.values) expandExpr(e, hoists, depth);
          break;
        case StKind::If:
          expandExpr(s.cond, hoists, depth);
          expandStmts(s.thenBody, depth);
          expandStmts(s.elseBody, depth);
          break;
        case StKind::LoopStmt:
          expandLoop(*s.value->loop, hoists, depth);
          break;
        case StKind::ExprStmt: {
          // A bare call to a void inline function splices its body directly.
          if (const FnDecl* f = inlineTarget(*s.value)) {
            if (f->retType == Ty::Void) {
              spliceCall(*s.value, *f, hoists, depth, nullptr);
              for (auto& h : hoists) out.push_back(std::move(h));
              continue;  // statement fully replaced
            }
          }
          expandExpr(s.value, hoists, depth);
          break;
        }
      }
      for (auto& h : hoists) out.push_back(std::move(h));
      out.push_back(std::move(sp));
    }
    body = std::move(out);
  }

  void expandLoop(LoopInfo& li, std::vector<StmtPtr>& hoists, int depth) {
    // Bounds and carry initializers evaluate once, before the loop: hoist.
    if (li.init) expandExpr(li.init, hoists, depth);
    if (li.limit) expandExpr(li.limit, hoists, depth);
    for (auto& c : li.carries) expandExpr(c.init, hoists, depth);
    // Conditions and yields re-evaluate in loop context: no hoisting target.
    if (li.cond) rejectInlineCalls(*li.cond, "while-loop condition");
    if (li.yieldExpr) rejectInlineCalls(*li.yieldExpr, "loop yield expression");
    expandStmts(li.body, depth);
  }

  void rejectInlineCalls(const Expr& e, const char* where) {
    if (inlineTarget(e)) {
      diags_.error(e.loc, std::string("call to inline function '") + e.name +
                              "' is not allowed in a " + where);
    }
    for (const auto& a : e.args) rejectInlineCalls(*a, where);
    if (e.loop) {
      if (e.loop->cond) rejectInlineCalls(*e.loop->cond, where);
      if (e.loop->yieldExpr) rejectInlineCalls(*e.loop->yieldExpr, where);
    }
  }

  /// Post-order expansion of inline calls inside an expression tree.
  void expandExpr(ExprPtr& e, std::vector<StmtPtr>& hoists, int depth) {
    for (auto& a : e->args) expandExpr(a, hoists, depth);
    if (e->loop) expandLoop(*e->loop, hoists, depth);
    if (const FnDecl* f = inlineTarget(*e)) {
      if (f->retType == Ty::Void) {
        diags_.error(e->loc, "void inline function '" + f->name +
                                 "' used as a value");
        return;
      }
      ExprPtr result;
      spliceCall(*e, *f, hoists, depth, &result);
      if (result) e = std::move(result);
    }
  }

  /// Splices one inline call: argument lets + renamed body into `hoists`.
  /// For non-void functions, *result receives the replacement expression.
  void spliceCall(Expr& call, const FnDecl& fn, std::vector<StmtPtr>& hoists,
                  int depth, ExprPtr* result) {
    if (depth >= kMaxInlineDepth) {
      diags_.error(call.loc, "inline expansion too deep (recursive inline "
                             "function '" + fn.name + "'?)");
      return;
    }
    if (call.args.size() != fn.params.size()) {
      diags_.error(call.loc, "'" + fn.name + "' takes " +
                                 std::to_string(fn.params.size()) +
                                 " argument(s)");
      return;
    }
    Renamer rn("$inl" + std::to_string(counter_++) + "_");
    // Bind arguments.
    for (std::size_t i = 0; i < fn.params.size(); ++i) {
      auto let = std::make_unique<Stmt>();
      let->kind = StKind::Let;
      let->loc = call.loc;
      let->name = rn.fresh(fn.params[i].name);
      let->value = std::move(call.args[i]);
      hoists.push_back(std::move(let));
    }
    // Clone + rename the body; peel the trailing return.
    std::vector<StmtPtr> body;
    for (const auto& s : fn.body) body.push_back(cloneStmt(*s));
    ExprPtr retVal;
    if (!body.empty() && body.back()->kind == StKind::Return) {
      Stmt& ret = *body.back();
      if (ret.values.size() == 1) retVal = std::move(ret.values[0]);
      body.pop_back();
    }
    for (auto& s : body) rn.renameStmt(*s);
    if (retVal) rn.renameExpr(*retVal);
    // Recursively expand nested inline calls inside the spliced body.
    expandStmts(body, depth + 1);
    for (auto& s : body) hoists.push_back(std::move(s));
    if (result) {
      if (!retVal) {
        diags_.error(call.loc, "inline function '" + fn.name +
                                   "' has no return value");
        return;
      }
      std::vector<StmtPtr> retHoists;
      ExprPtr rv = std::move(retVal);
      expandExpr(rv, retHoists, depth + 1);
      for (auto& h : retHoists) hoists.push_back(std::move(h));
      auto let = std::make_unique<Stmt>();
      let->kind = StKind::Let;
      let->loc = call.loc;
      let->name = "$ret" + std::to_string(counter_++);
      let->value = std::move(rv);
      auto var = std::make_unique<Expr>();
      var->kind = ExKind::Var;
      var->loc = call.loc;
      var->name = let->name;
      hoists.push_back(std::move(let));
      *result = std::move(var);
    }
  }

  Module& module_;
  DiagSink& diags_;
  int counter_ = 0;
};

}  // namespace

bool expandInlines(Module& module, DiagSink& diags) {
  return Expander(module, diags).run();
}

}  // namespace pods::fe
