#include "translate/translator.hpp"

#include <queue>
#include <unordered_map>

#include "ir/defuse.hpp"
#include "support/check.hpp"

namespace pods::translate {

using ir::Block;
using ir::BlockKind;
using ir::Item;
using ir::ItemKind;
using ir::kNoVal;
using ir::Node;
using ir::NodeOp;
using ir::ValId;

// ---------------------------------------------------------------------------
// Instruction ordering (the paper's topological ordering of code blocks)
// ---------------------------------------------------------------------------

std::vector<const Item*> orderItems(const std::vector<Item>& items) {
  const std::size_t n = items.size();
  // Producer of each value within this list.
  std::unordered_map<ValId, std::size_t> producer;
  std::vector<std::vector<ValId>> defs(n), uses(n);
  for (std::size_t i = 0; i < n; ++i) {
    ir::itemDefs(items[i], defs[i]);
    ir::itemUses(items[i], uses[i]);
    for (ValId d : defs[i]) producer.emplace(d, i);
  }
  std::vector<std::vector<std::size_t>> succ(n);
  std::vector<std::size_t> indeg(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (ValId u : uses[i]) {
      auto it = producer.find(u);
      if (it != producer.end() && it->second != i) {
        succ[it->second].push_back(i);
        ++indeg[i];
      }
    }
  }
  // Kahn's algorithm with a min-heap on the original index: items that are
  // mutually independent keep their original relative order.
  std::priority_queue<std::size_t, std::vector<std::size_t>,
                      std::greater<std::size_t>>
      ready;
  for (std::size_t i = 0; i < n; ++i)
    if (indeg[i] == 0) ready.push(i);
  std::vector<const Item*> out;
  out.reserve(n);
  while (!ready.empty()) {
    std::size_t i = ready.top();
    ready.pop();
    out.push_back(&items[i]);
    for (std::size_t s : succ[i]) {
      if (--indeg[s] == 0) ready.push(s);
    }
  }
  PODS_CHECK_MSG(out.size() == n, "dataflow cycle inside a code block");
  return out;
}

// ---------------------------------------------------------------------------
// Translation
// ---------------------------------------------------------------------------

Op nodeToOp(NodeOp op) {
  switch (op) {
    case NodeOp::Const: return Op::LIT;
    case NodeOp::Mov: return Op::MOV;
    case NodeOp::Add: return Op::ADD;
    case NodeOp::Sub: return Op::SUB;
    case NodeOp::Mul: return Op::MUL;
    case NodeOp::Div: return Op::DIV;
    case NodeOp::Mod: return Op::MOD;
    case NodeOp::Pow: return Op::POW;
    case NodeOp::Min: return Op::MIN2;
    case NodeOp::Max: return Op::MAX2;
    case NodeOp::Neg: return Op::NEG;
    case NodeOp::Abs: return Op::ABS;
    case NodeOp::Sqrt: return Op::SQRT;
    case NodeOp::Exp: return Op::EXP;
    case NodeOp::Log: return Op::LOG;
    case NodeOp::Sin: return Op::SIN;
    case NodeOp::Cos: return Op::COS;
    case NodeOp::Floor: return Op::FLOOR;
    case NodeOp::CvtI: return Op::CVTI;
    case NodeOp::CvtR: return Op::CVTR;
    case NodeOp::CmpLT: return Op::CMPLT;
    case NodeOp::CmpLE: return Op::CMPLE;
    case NodeOp::CmpGT: return Op::CMPGT;
    case NodeOp::CmpGE: return Op::CMPGE;
    case NodeOp::CmpEQ: return Op::CMPEQ;
    case NodeOp::CmpNE: return Op::CMPNE;
    case NodeOp::And: return Op::AND;
    case NodeOp::Or: return Op::OR;
    case NodeOp::Not: return Op::NOT;
    case NodeOp::Alloc: return Op::ALLOC;
    case NodeOp::ARead: return Op::ARD;
    case NodeOp::AWrite: return Op::AWR;
    case NodeOp::Dim0: return Op::DIMQ;
    case NodeOp::Dim1: return Op::DIMQ;
  }
  PODS_UNREACHABLE("bad node op");
}

namespace {

/// Call-interface of one code block: where argument tokens must be sent.
struct BlockSig {
  std::uint16_t spId = 0;
  std::uint16_t argInit = kNoSlot;   // for-loop initial bound
  std::uint16_t argLimit = kNoSlot;  // for-loop final bound
  std::vector<std::uint16_t> curSlots;  // carried variables (init tokens)
  std::vector<ValId> exts;              // external values, in send order
  std::vector<std::uint16_t> extSlots;
  std::uint16_t doneCont = kNoSlot;   // continuation for the completion token
  std::uint16_t yieldCont = kNoSlot;  // continuation for the yield value
  std::uint16_t numArgs = 0;
};

struct FnSig {
  std::uint16_t spId = 0;
  std::vector<std::uint16_t> paramSlots;
  std::uint16_t retCont = kNoSlot;
};

class Translator {
 public:
  Translator(const ir::Program& prog, const partition::Plan& plan)
      : prog_(prog), plan_(plan) {}

  SpProgram run() {
    // Pass 1: assign SP ids and call interfaces for every code block.
    for (const ir::Function& fn : prog_.fns) {
      FnSig sig;
      sig.spId = newSpId(fn.name, SpKind::Function);
      std::uint16_t next = 0;
      for (std::size_t i = 0; i < fn.params.size(); ++i)
        sig.paramSlots.push_back(next++);
      const bool isMain = (&fn - prog_.fns.data()) ==
                          static_cast<std::ptrdiff_t>(prog_.mainIndex);
      if (!isMain && fn.retType != fe::Ty::Void) sig.retCont = next++;
      fnSigs_.push_back(sig);
      out_.sps[sig.spId].numArgs = next;
      signLoops(fn.body, fn.name);
    }
    // Pass 2: emit code for every block.
    for (std::size_t f = 0; f < prog_.fns.size(); ++f) {
      emitFunction(prog_.fns[f], fnSigs_[f],
                   f == prog_.mainIndex);
      emitLoopsIn(prog_.fns[f].body, prog_.fns[f]);
    }
    out_.mainSp = fnSigs_[prog_.mainIndex].spId;
    out_.numResults =
        static_cast<int>(prog_.fns[prog_.mainIndex].retVals.size());
    return std::move(out_);
  }

 private:
  std::uint16_t newSpId(const std::string& name, SpKind kind) {
    SpCode sp;
    sp.id = static_cast<std::uint16_t>(out_.sps.size());
    sp.name = name;
    sp.kind = kind;
    out_.sps.push_back(std::move(sp));
    return out_.sps.back().id;
  }

  /// Recursively assigns SP ids + signatures for every loop block.
  void signLoops(const Block& b, const std::string& prefix) {
    ir::forEachItem(b, [&](const Item& it) {
      if (it.kind != ItemKind::Loop) return;
      const Block& loop = *it.loop;
      BlockSig sig;
      sig.spId = newSpId(loop.name,
                         loop.kind == BlockKind::ForLoop ? SpKind::ForLoop
                                                         : SpKind::WhileLoop);
      const partition::LoopPlan* lp = plan_.find(&loop);
      out_.sps[sig.spId].replicated = lp && lp->replicated;
      std::uint16_t next = 0;
      if (loop.kind == BlockKind::ForLoop) {
        sig.argInit = next++;
        sig.argLimit = next++;
      }
      for (std::size_t c = 0; c < loop.carried.size(); ++c)
        sig.curSlots.push_back(next++);
      sig.exts = ir::blockExternalUses(loop);
      for (std::size_t e = 0; e < sig.exts.size(); ++e)
        sig.extSlots.push_back(next++);
      sig.doneCont = next++;
      if (loop.yieldVal != kNoVal) sig.yieldCont = next++;
      sig.numArgs = next;
      out_.sps[sig.spId].numArgs = next;
      blockSigs_[&loop] = std::move(sig);
    });
    (void)prefix;
  }

  void emitLoopsIn(const Block& b, const ir::Function& fn) {
    ir::forEachItem(b, [&](const Item& it) {
      if (it.kind == ItemKind::Loop) emitLoop(*it.loop, fn);
    });
  }

  // ---- per-SP emission ----------------------------------------------------

  /// State for emitting one SP's instruction stream.
  struct Emit {
    SpCode* sp = nullptr;
    std::unordered_map<ValId, std::uint16_t> slotOf;
    std::uint16_t nextSlot = 0;
    // Scratch registers shared within the SP.
    std::uint16_t one = kNoSlot, nspawn = kNoSlot, counter = kNoSlot,
                  ctx = kNoSlot, cont = kNoSlot, npes = kNoSlot,
                  tmp = kNoSlot;
    std::vector<std::pair<std::size_t, int>> fixups;  // (instr, label)
    std::vector<std::size_t> labels;                  // label -> pc

    std::uint16_t alloc(const std::string& name) {
      std::uint16_t s = nextSlot++;
      PODS_CHECK_MSG(nextSlot != 0, "slot overflow");
      sp->slotNames.resize(nextSlot);
      sp->slotNames[s] = name;
      return s;
    }
    std::uint16_t slotFor(ValId v) {
      auto it = slotOf.find(v);
      if (it != slotOf.end()) return it->second;
      std::uint16_t s = alloc("%" + std::to_string(v));
      slotOf[v] = s;
      return s;
    }
    Instr& ins(Op op) {
      sp->code.emplace_back();
      sp->code.back().op = op;
      return sp->code.back();
    }
    int newLabel() {
      labels.push_back(0);
      return static_cast<int>(labels.size()) - 1;
    }
    void place(int label) { labels[static_cast<std::size_t>(label)] = sp->code.size(); }
    void jump(Op op, int label, std::uint16_t condSlot = kNoSlot) {
      Instr& i = ins(op);
      i.a = condSlot;
      fixups.emplace_back(sp->code.size() - 1, label);
    }
    void finish() {
      for (auto& [idx, label] : fixups) {
        sp->code[idx].aux =
            static_cast<std::uint32_t>(labels[static_cast<std::size_t>(label)]);
      }
      sp->numSlots = nextSlot;
    }
  };

  /// Emits the common prologue scratch registers.
  void prologue(Emit& e) {
    e.one = e.alloc("$one");
    e.nspawn = e.alloc("$nspawn");
    e.counter = e.alloc("$joins");
    e.ctx = e.alloc("$ctx");
    e.cont = e.alloc("$cont");
    e.npes = e.alloc("$npes");
    e.tmp = e.alloc("$tmp");
    Instr& l1 = e.ins(Op::LIT);
    l1.dst = e.one;
    l1.imm = Value::intv(1);
    Instr& l2 = e.ins(Op::LIT);
    l2.dst = e.nspawn;
    l2.imm = Value::intv(0);
    Instr& l3 = e.ins(Op::NUMPE);
    l3.dst = e.npes;
  }

  void emitFunction(const ir::Function& fn, const FnSig& sig, bool isMain) {
    Emit e;
    e.sp = &out_.sps[sig.spId];
    // Argument slots.
    for (std::size_t i = 0; i < fn.params.size(); ++i) {
      e.slotOf[fn.params[i]] = sig.paramSlots[i];
      e.nextSlot = std::max<std::uint16_t>(e.nextSlot, sig.paramSlots[i] + 1);
    }
    std::uint16_t retContSlot = sig.retCont;
    if (retContSlot != kNoSlot)
      e.nextSlot = std::max<std::uint16_t>(e.nextSlot, retContSlot + 1);
    e.sp->slotNames.resize(e.nextSlot);
    for (std::size_t i = 0; i < fn.params.size(); ++i)
      e.sp->slotNames[sig.paramSlots[i]] = "arg" + std::to_string(i);
    if (retContSlot != kNoSlot) e.sp->slotNames[retContSlot] = "$retcont";

    prologue(e);
    emitItems(e, fn.body.body);

    // Join all spawned children, then deliver results.
    Instr& aw = e.ins(Op::AWAITN);
    aw.a = e.counter;
    aw.b = e.nspawn;
    if (isMain) {
      for (std::size_t r = 0; r < fn.retVals.size(); ++r) {
        Instr& res = e.ins(Op::RESULT);
        res.a = e.slotFor(fn.retVals[r]);
        res.aux = static_cast<std::uint32_t>(r);
      }
    } else if (!fn.retVals.empty()) {
      Instr& sc = e.ins(Op::SENDC);
      sc.a = e.slotFor(fn.retVals[0]);
      sc.b = retContSlot;
    }
    e.ins(Op::END);
    e.finish();
  }

  void emitLoop(const Block& loop, const ir::Function& fn) {
    (void)fn;
    const BlockSig& sig = blockSigs_.at(&loop);
    const partition::LoopPlan* lp = plan_.find(&loop);
    const bool replicated = lp && lp->replicated;

    Emit e;
    e.sp = &out_.sps[sig.spId];
    e.nextSlot = sig.numArgs;
    e.sp->slotNames.resize(e.nextSlot);
    if (sig.argInit != kNoSlot) e.sp->slotNames[sig.argInit] = "$init";
    if (sig.argLimit != kNoSlot) e.sp->slotNames[sig.argLimit] = "$limit";
    for (std::size_t c = 0; c < loop.carried.size(); ++c) {
      e.slotOf[loop.carried[c].cur] = sig.curSlots[c];
      e.sp->slotNames[sig.curSlots[c]] = "cur" + std::to_string(c);
    }
    for (std::size_t x = 0; x < sig.exts.size(); ++x) {
      e.slotOf[sig.exts[x]] = sig.extSlots[x];
      e.sp->slotNames[sig.extSlots[x]] = "ext%" + std::to_string(sig.exts[x]);
    }
    e.sp->slotNames[sig.doneCont] = "$donecont";
    if (sig.yieldCont != kNoSlot) e.sp->slotNames[sig.yieldCont] = "$yieldcont";

    prologue(e);

    // Carried shadows.
    std::vector<std::uint16_t> shadows;
    for (std::size_t c = 0; c < loop.carried.size(); ++c) {
      std::uint16_t s = e.alloc("shadow" + std::to_string(c));
      e.slotOf[loop.carried[c].shadow] = s;
      shadows.push_back(s);
    }

    int exitLabel = e.newLabel();
    if (loop.kind == BlockKind::ForLoop) {
      std::uint16_t idx = e.slotFor(loop.indexVal);
      e.sp->slotNames[idx] = "index";
      std::uint16_t lo = sig.argInit, hi = sig.argLimit;
      if (replicated) {
        // Range Filter (Figure 5): clamp the index generation to this PE's
        // area of responsibility.
        std::uint16_t rfLo = e.alloc("$rf_lo");
        std::uint16_t rfHi = e.alloc("$rf_hi");
        emitRangeFilter(e, loop, *lp, rfLo, rfHi);
        std::uint16_t clampedLo = e.alloc("$lo");
        std::uint16_t clampedHi = e.alloc("$hi");
        // Ascending: init' = max(init, rf_lo), limit' = min(limit, rf_hi).
        // Descending loops run from high to low, so the roles swap.
        if (loop.ascending) {
          Instr& mx = e.ins(Op::MAX2);
          mx.dst = clampedLo;
          mx.a = sig.argInit;
          mx.b = rfLo;
          Instr& mn = e.ins(Op::MIN2);
          mn.dst = clampedHi;
          mn.a = sig.argLimit;
          mn.b = rfHi;
          lo = clampedLo;
          hi = clampedHi;
        } else {
          Instr& mn = e.ins(Op::MIN2);
          mn.dst = clampedLo;
          mn.a = sig.argInit;  // the high end
          mn.b = rfHi;
          Instr& mx = e.ins(Op::MAX2);
          mx.dst = clampedHi;
          mx.a = sig.argLimit;  // the low end
          mx.b = rfLo;
          lo = clampedLo;
          hi = clampedHi;
        }
      }
      // index <- lo
      Instr& mv = e.ins(Op::MOV);
      mv.dst = idx;
      mv.a = lo;
      int head = e.newLabel();
      e.place(head);
      // test: ascending index <= hi; descending index >= hi
      Instr& cmp = e.ins(loop.ascending ? Op::CMPLE : Op::CMPGE);
      cmp.dst = e.tmp;
      cmp.a = idx;
      cmp.b = hi;
      e.jump(Op::BRF, exitLabel, e.tmp);
      emitIterationBody(e, loop, shadows);
      // index +/- 1, back edge.
      Instr& step = e.ins(loop.ascending ? Op::ADD : Op::SUB);
      step.dst = idx;
      step.a = idx;
      step.b = e.one;
      e.jump(Op::JMP, head);
    } else {
      // While loop: cond items re-evaluated every iteration.
      int head = e.newLabel();
      e.place(head);
      emitItems(e, loop.condItems);
      e.jump(Op::BRF, exitLabel, e.slotFor(loop.condVal));
      emitIterationBody(e, loop, shadows);
      e.jump(Op::JMP, head);
    }
    e.place(exitLabel);

    // Join all children spawned over all iterations.
    Instr& aw = e.ins(Op::AWAITN);
    aw.a = e.counter;
    aw.b = e.nspawn;
    // Yield (computed after the loop, sees final carried values).
    emitItems(e, loop.finalItems);
    if (loop.yieldVal != kNoVal) {
      Instr& sc = e.ins(Op::SENDC);
      sc.a = e.slotFor(loop.yieldVal);
      sc.b = sig.yieldCont;
    }
    // Completion token to the parent's join counter.
    Instr& dn = e.ins(Op::ADDC);
    dn.a = e.one;
    dn.b = sig.doneCont;
    e.ins(Op::END);
    e.finish();
  }

  /// Range filter bound computation into rfLo/rfHi.
  void emitRangeFilter(Emit& e, const Block& loop,
                       const partition::LoopPlan& lp, std::uint16_t rfLo,
                       std::uint16_t rfHi) {
    switch (lp.mode) {
      case partition::RfMode::OwnedRows:
      case partition::RfMode::OwnedColsOfRow: {
        std::uint16_t arr = e.slotFor(lp.governingArray);
        std::uint16_t row = lp.mode == partition::RfMode::OwnedColsOfRow
                                ? e.slotFor(lp.rowIndexVal)
                                : kNoSlot;
        Instr& l = e.ins(Op::RFLO);
        l.dst = rfLo;
        l.a = arr;
        l.b = row;
        l.dim = static_cast<std::uint8_t>(lp.filteredDim);
        l.off = lp.offset;
        Instr& h = e.ins(Op::RFHI);
        h.dst = rfHi;
        h.a = arr;
        h.b = row;
        h.dim = static_cast<std::uint8_t>(lp.filteredDim);
        h.off = lp.offset;
        break;
      }
      case partition::RfMode::BlockRange: {
        // Even split of [min(init,limit), max(init,limit)]. Only for-loops
        // are ever replicated (while-loops always carry a dependency).
        PODS_CHECK(loop.kind == BlockKind::ForLoop);
        const BlockSig& sig = blockSigs_.at(&loop);
        std::uint16_t lo = e.alloc("$blo");
        std::uint16_t hi = e.alloc("$bhi");
        Instr& mn = e.ins(Op::MIN2);
        mn.dst = lo;
        mn.a = sig.argInit;
        mn.b = sig.argLimit;
        Instr& mx = e.ins(Op::MAX2);
        mx.dst = hi;
        mx.a = sig.argInit;
        mx.b = sig.argLimit;
        Instr& l = e.ins(Op::BLKLO);
        l.dst = rfLo;
        l.a = lo;
        l.b = hi;
        Instr& h = e.ins(Op::BLKHI);
        h.dst = rfHi;
        h.a = lo;
        h.b = hi;
        break;
      }
    }
  }

  /// One loop iteration: refresh shadows, then the (ordered) body.
  void emitIterationBody(Emit& e, const Block& loop,
                         const std::vector<std::uint16_t>& shadows) {
    for (std::size_t c = 0; c < loop.carried.size(); ++c) {
      Instr& mv = e.ins(Op::MOV);
      mv.dst = shadows[c];
      mv.a = e.slotOf.at(loop.carried[c].cur);
    }
    emitItems(e, loop.body, &loop);
    // Back edge: cur <- shadow.
    for (std::size_t c = 0; c < loop.carried.size(); ++c) {
      Instr& mv = e.ins(Op::MOV);
      mv.dst = e.slotOf.at(loop.carried[c].cur);
      mv.a = shadows[c];
    }
  }

  void emitItems(Emit& e, const std::vector<Item>& items,
                 const Block* owner = nullptr) {
    for (const Item* it : orderItems(items)) emitItem(e, *it, owner);
  }

  void emitItem(Emit& e, const Item& item, const Block* owner) {
    switch (item.kind) {
      case ItemKind::Node:
        emitNode(e, item.node);
        break;
      case ItemKind::If: {
        int elseL = e.newLabel();
        int endL = e.newLabel();
        e.jump(Op::BRF, elseL, e.slotFor(item.ifi->cond));
        emitItems(e, item.ifi->thenItems, owner);
        e.jump(Op::JMP, endL);
        e.place(elseL);
        emitItems(e, item.ifi->elseItems, owner);
        e.place(endL);
        break;
      }
      case ItemKind::Call:
        emitCall(e, *item.call);
        break;
      case ItemKind::Loop:
        emitSpawn(e, *item.loop);
        break;
      case ItemKind::Next: {
        PODS_CHECK_MSG(owner, "next outside loop body");
        Instr& mv = e.ins(Op::MOV);
        mv.dst = e.slotOf.at(owner->carried[item.carryIndex].shadow);
        mv.a = e.slotFor(item.nextVal);
        break;
      }
    }
  }

  void emitNode(Emit& e, const Node& n) {
    Op op = nodeToOp(n.op);
    if (op == Op::ALLOC && plan_.distributeArrays) op = Op::ALLOCD;
    Instr& i = e.ins(op);
    switch (n.op) {
      case NodeOp::Const:
        i.dst = e.slotFor(n.dst);
        i.imm = n.imm;
        break;
      case NodeOp::Alloc:
        i.dst = e.slotFor(n.dst);
        i.a = e.slotFor(n.in[0]);
        if (n.nin == 2) i.b = e.slotFor(n.in[1]);
        i.dim = n.nin;  // rank
        break;
      case NodeOp::ARead:
        i.dst = e.slotFor(n.dst);
        i.a = e.slotFor(n.in[0]);
        i.b = e.slotFor(n.in[1]);
        if (n.nin == 3) i.c = e.slotFor(n.in[2]);
        i.dim = n.nin - 1;
        break;
      case NodeOp::Dim0:
      case NodeOp::Dim1:
        i.dst = e.slotFor(n.dst);
        i.a = e.slotFor(n.in[0]);
        i.dim = n.op == NodeOp::Dim1 ? 1 : 0;
        break;
      case NodeOp::AWrite:
        // dst carries the value slot (see isa.hpp).
        i.a = e.slotFor(n.in[0]);
        i.b = e.slotFor(n.in[1]);
        if (n.nin == 4) {
          i.c = e.slotFor(n.in[2]);
          i.dst = e.slotFor(n.in[3]);
          i.dim = 2;
        } else {
          i.dst = e.slotFor(n.in[2]);
          i.dim = 1;
        }
        break;
      default:
        i.dst = e.slotFor(n.dst);
        if (n.nin >= 1) i.a = e.slotFor(n.in[0]);
        if (n.nin >= 2) i.b = e.slotFor(n.in[1]);
        break;
    }
  }

  void sendArg(Emit& e, bool replicated, std::uint16_t valueSlot,
               std::uint16_t targetSp, std::uint16_t targetSlot) {
    Instr& s = e.ins(replicated ? Op::SENDD : Op::SENDA);
    s.a = valueSlot;
    s.b = e.ctx;
    s.aux = Instr::packTarget(targetSp, targetSlot);
  }

  void emitCall(Emit& e, const ir::CallItem& call) {
    const FnSig& sig = fnSigs_[call.fnIndex];
    std::uint16_t dstSlot = kNoSlot;
    if (call.dst != kNoVal) {
      dstSlot = e.slotFor(call.dst);
      Instr& cl = e.ins(Op::CLEAR);
      cl.a = dstSlot;
    }
    Instr& nc = e.ins(Op::NEWCTX);
    nc.dst = e.ctx;
    for (std::size_t i = 0; i < call.args.size(); ++i) {
      sendArg(e, false, e.slotFor(call.args[i]), sig.spId, sig.paramSlots[i]);
    }
    if (call.dst != kNoVal) {
      PODS_CHECK(sig.retCont != kNoSlot);
      Instr& mk = e.ins(Op::MKCONT);
      mk.dst = e.cont;
      mk.aux = dstSlot;
      sendArg(e, false, e.cont, sig.spId, sig.retCont);
    }
    // Function SPs send no completion token; consumers of the result (or of
    // I-structure elements the callee writes) synchronize by presence.
  }

  void emitSpawn(Emit& e, const Block& loop) {
    const BlockSig& sig = blockSigs_.at(&loop);
    const bool replicated = out_.sps[sig.spId].replicated;
    std::uint16_t yieldDst = kNoSlot;
    if (loop.yieldVal != kNoVal) {
      yieldDst = e.slotFor(loop.yieldVal);
      Instr& cl = e.ins(Op::CLEAR);
      cl.a = yieldDst;
    }
    Instr& nc = e.ins(Op::NEWCTX);
    nc.dst = e.ctx;
    if (loop.kind == BlockKind::ForLoop) {
      sendArg(e, replicated, e.slotFor(loop.initVal), sig.spId, sig.argInit);
      sendArg(e, replicated, e.slotFor(loop.limitVal), sig.spId, sig.argLimit);
    }
    for (std::size_t c = 0; c < loop.carried.size(); ++c) {
      sendArg(e, replicated, e.slotFor(loop.carried[c].init), sig.spId,
              sig.curSlots[c]);
    }
    for (std::size_t x = 0; x < sig.exts.size(); ++x) {
      sendArg(e, replicated, e.slotFor(sig.exts[x]), sig.spId,
              sig.extSlots[x]);
    }
    // Completion continuation -> our join counter.
    Instr& mk = e.ins(Op::MKCONT);
    mk.dst = e.cont;
    mk.aux = e.counter;
    sendArg(e, replicated, e.cont, sig.spId, sig.doneCont);
    if (yieldDst != kNoSlot) {
      Instr& mky = e.ins(Op::MKCONT);
      mky.dst = e.cont;
      mky.aux = yieldDst;
      sendArg(e, replicated, e.cont, sig.spId, sig.yieldCont);
    }
    // Expected completions: one per instance; a replicated child runs one
    // instance per PE.
    Instr& add = e.ins(Op::ADD);
    add.dst = e.nspawn;
    add.a = e.nspawn;
    add.b = replicated ? e.npes : e.one;
  }

  const ir::Program& prog_;
  const partition::Plan& plan_;
  SpProgram out_;
  std::vector<FnSig> fnSigs_;
  std::unordered_map<const Block*, BlockSig> blockSigs_;
};

}  // namespace

SpProgram translate(const ir::Program& prog, const partition::Plan& plan) {
  return Translator(prog, plan).run();
}

}  // namespace pods::translate
