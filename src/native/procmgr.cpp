// Supervisor + worker-process driver for `--transport=udp-multiproc`.
// See procmgr.hpp for the architecture overview. Mechanics worth naming:
//
//  * fork + exec (via /proc/self/exe), not bare fork: a worker is a fresh
//    process image speaking a versioned protocol, so the Hello/Boot
//    magic+version+config-hash handshake actually guards against a stale or
//    mismatched binary — and a respawned worker starts from clean memory,
//    which is the whole point of kill recovery.
//  * The supervisor binds every PE's UDP data socket itself and each child
//    inherits ITS OWN socket as fd 4 (ctl socketpair as fd 3). The
//    supervisor keeps its copies open for the whole run, so a SIGKILL'd
//    worker's port — and any datagrams buffered in its kernel rcvbuf —
//    survive to the respawned incarnation.
//  * Pessimistic logging: workers stream every receive/mint record over the
//    ctl channel (Log frames) and the supervisor acknowledges stability
//    (LogAck). The worker's output commit (acks to peers, outbound batches)
//    is gated on those watermarks, so anything the supervisor never saw is
//    guaranteed to have had no external effect — losing the unstable suffix
//    of a killed worker's log is safe by construction.
//  * Termination: Dijkstra–Safra-style counting over Status snapshots (two
//    consecutive identical all-quiet rounds), decided by the supervisor
//    because no single worker process can see the global ledger.
#include "native/procmgr.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "proto/ctl.hpp"
#include "support/check.hpp"

namespace pods::native::procmgr {
namespace {

namespace ctl = pods::proto::ctl;
using Clock = std::chrono::steady_clock;

// Well-known fds in the worker process (set up between fork and exec).
constexpr int kWorkerCtlFd = 3;
constexpr int kWorkerSockFd = 4;
// Default I-structure segment size. The segment is mapped lazily (tmpfs
// pages materialize on first touch), so a generous default costs only
// address space.
constexpr std::uint64_t kDefaultShmBytes = 256ull << 20;
// A PE that keeps dying (crash-looping binary, repeated external kills) is
// respawned at most this many times before the run fails structurally.
constexpr int kMaxRespawnsPerPe = 8;
constexpr int kPollPeriodMs = 2;

bool sendAll(int fd, const std::uint8_t* p, std::size_t n) {
  while (n > 0) {
    const ssize_t k = ::send(fd, p, n, MSG_NOSIGNAL);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += k;
    n -= static_cast<std::size_t>(k);
  }
  return true;
}

std::uint64_t readLe64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// The worker's half of the ctl channel log stream. Worker/transport threads
/// append; the ctl thread ships and advances the stable watermark.
class WorkerLinkImpl : public WorkerLink {
 public:
  /// `streamBase`: number of records already in the supervisor's copy of
  /// this PE's stream (the resume log length) — a respawned incarnation
  /// EXTENDS the stream, it does not restart numbering.
  explicit WorkerLinkImpl(std::uint64_t streamBase)
      : appendedCount_(streamBase), shippedCount_(streamBase) {
    appended_.store(streamBase);
    stable_.store(streamBase);
  }

  std::uint64_t logEntry(const RecEntry& e) override {
    ctl::LogRec r;
    r.kind = static_cast<std::uint8_t>(e.kind);
    r.entry = e;
    return append(std::move(r));
  }
  std::uint64_t logMint(std::uint64_t ctx, std::uint32_t seq, const Value& v,
                        std::uint64_t ctxCounter) override {
    ctl::LogRec r;
    r.kind = ctl::LogRec::kMint;
    r.mintCtx = ctx;
    r.mintSeq = seq;
    r.mintV = v;
    r.ctxCounter = ctxCounter;
    return append(std::move(r));
  }
  std::uint64_t logResult(std::uint32_t slot, const Value& v) override {
    ctl::LogRec r;
    r.kind = ctl::LogRec::kResult;
    r.mintSeq = slot;
    r.mintV = v;
    return append(std::move(r));
  }
  std::uint64_t logAppended() const override { return appended_.load(); }
  std::uint64_t logStable() const override { return stable_.load(); }
  bool waitStart() override {
    std::unique_lock<std::mutex> g(m_);
    cv_.wait(g, [&] { return started_ || aborted_; });
    return started_;
  }

  // Ctl-thread side.
  void noteStable(std::uint64_t upTo) {
    std::uint64_t cur = stable_.load();
    while (upTo > cur && !stable_.compare_exchange_weak(cur, upTo)) {
    }
  }
  bool takePending(std::uint64_t* firstSeq, std::vector<ctl::LogRec>* out) {
    std::lock_guard<std::mutex> g(m_);
    if (pending_.empty()) return false;
    *firstSeq = shippedCount_;
    out->clear();
    out->swap(pending_);
    shippedCount_ += out->size();
    return true;
  }
  void start() {
    std::lock_guard<std::mutex> g(m_);
    started_ = true;
    cv_.notify_all();
  }
  void abort() {
    std::lock_guard<std::mutex> g(m_);
    aborted_ = true;
    cv_.notify_all();
  }

 private:
  std::uint64_t append(ctl::LogRec r) {
    std::lock_guard<std::mutex> g(m_);
    pending_.push_back(std::move(r));
    const std::uint64_t seq = ++appendedCount_;
    appended_.store(seq);
    return seq;
  }

  mutable std::mutex m_;
  std::condition_variable cv_;
  std::vector<ctl::LogRec> pending_;
  std::uint64_t appendedCount_ = 0;  // 1-based seq of the last append
  std::uint64_t shippedCount_ = 0;   // 0-based index of the next unshipped rec
  std::atomic<std::uint64_t> appended_{0};
  std::atomic<std::uint64_t> stable_{0};
  bool started_ = false;
  bool aborted_ = false;
};

void workerSendFrame(int fd, ctl::FrameTag tag,
                     const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> wire;
  ctl::encodeFrame(tag, payload, wire);
  if (!sendAll(fd, wire.data(), wire.size())) _exit(104);  // supervisor gone
}

/// Blocking read of the next frame. False on EOF/error/poisoned stream.
bool workerReadFrame(int fd, ctl::FrameReader& reader, ctl::Frame& f) {
  bool bad = false;
  while (true) {
    if (reader.next(f, &bad)) return true;
    if (bad) return false;
    std::uint8_t buf[65536];
    const ssize_t k = ::recv(fd, buf, sizeof buf, 0);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (k == 0) return false;
    reader.feed(buf, static_cast<std::size_t>(k));
  }
}

[[noreturn]] void workerFail(int fd, std::uint32_t code, const std::string& t) {
  ctl::ErrorMsg em;
  em.code = code;
  em.text = t;
  std::vector<std::uint8_t> payload;
  ctl::encodeError(em, payload);
  workerSendFrame(fd, ctl::FrameTag::Error, payload);
  _exit(103);
}

[[noreturn]] void runWorker(int ctlFd, int sockFd) {
  ctl::FrameReader reader;  // shared with the ctl loop: bytes buffered past
                            // the handshake frames (e.g. an early Start)
                            // must not be lost
  ctl::Frame f;

  // 1. Version handshake. A worker exec'd from a different binary (or a
  // protocol bump) fails fast here instead of decoding garbage.
  if (!workerReadFrame(ctlFd, reader, f) || f.tag != ctl::FrameTag::Hello)
    _exit(103);
  ctl::HelloMsg hello;
  if (!ctl::decodeHello(f.payload.data(), f.payload.size(), hello) ||
      hello.magic != ctl::kMagic || hello.version != ctl::kVersion) {
    workerFail(ctlFd, 1, "ctl version handshake mismatch");
  }
  {
    std::vector<std::uint8_t> payload;
    ctl::encodeHello(hello, payload);
    workerSendFrame(ctlFd, ctl::FrameTag::HelloAck, payload);
  }

  // 2. Boot: config hash + program + config (+ resume log).
  if (!workerReadFrame(ctlFd, reader, f) || f.tag != ctl::FrameTag::Boot)
    _exit(103);
  ctl::BootMsg boot;
  std::uint64_t wantHash = 0, gotHash = 0;
  if (!ctl::decodeBoot(f.payload.data(), f.payload.size(), boot, &wantHash,
                       &gotHash)) {
    workerFail(ctlFd, 2,
               "boot decode failed (config hash want=" +
                   std::to_string(wantHash) +
                   " got=" + std::to_string(gotHash) + ")");
  }

  NativeConfig cfg;
  cfg.numWorkers = boot.numPes;
  cfg.pageElems = static_cast<int>(boot.pageElems);
  cfg.sliceInstructions = static_cast<int>(boot.sliceInstructions);
  cfg.peWeights = boot.peWeights;
  // The supervisor performs kills (as real SIGKILLs) and the multiproc
  // transport injects no dice — a worker only keeps the shared retransmit
  // policy. Copying killPe would make the worker think IT is the in-process
  // kill driver.
  cfg.faults = FaultConfig{};
  cfg.faults.retry = boot.faults.retry;
  cfg.transport = TransportKind::UdpMultiproc;
  cfg.store = boot.store == 1 ? StoreKind::Wire : StoreKind::Local;
  cfg.localPe = boot.localPe;
  cfg.epoch = boot.epoch;
  cfg.resume = boot.resume != 0;
  cfg.shmName = boot.shmName;
  cfg.sockFd = sockFd;
  cfg.peerPorts = boot.peerPorts;
  cfg.heartbeatPeriodMs = boot.heartbeatPeriodMs;
  cfg.heartbeatTimeoutMs = boot.heartbeatTimeoutMs;

  // Materialize the shipped stream into the machine's RecoveryLog shape:
  // RecEntry kinds stay an ordered vector, mints go to the (ctx, seq) map.
  const std::uint64_t streamBase = boot.log.size();
  for (const ctl::LogRec& r : boot.log) {
    if (r.kind == ctl::LogRec::kMint) {
      cfg.resumeLog.recordMint(r.mintCtx, r.mintSeq, r.mintV);
    } else if (r.kind == ctl::LogRec::kResult) {
      cfg.resumeResults.emplace_back(r.mintSeq, r.mintV);
    } else {
      cfg.resumeLog.entries.push_back(r.entry);
    }
    if (r.ctxCounter > cfg.resumeLog.ctxCounter)
      cfg.resumeLog.ctxCounter = r.ctxCounter;
  }

  WorkerLinkImpl link(streamBase);
  cfg.link = &link;
  NativeMachine machine(boot.program, cfg);

  {
    std::vector<std::uint8_t> payload;
    ctl::encodeU64(gotHash, payload);
    workerSendFrame(ctlFd, ctl::FrameTag::BootAck, payload);
  }

  // Hung-PE test hook: "pe@ms" freezes the ctl thread (heartbeats, Status
  // replies, log shipping — everything) in epoch 0 of the named PE after ms
  // milliseconds. The process stays alive, so only the supervisor's
  // heartbeat timeout can recover the run.
  long stopBeatMs = -1;
  if (const char* s = std::getenv("PODS_TEST_STOP_HEARTBEAT")) {
    int spe = -1;
    long ms = -1;
    if (std::sscanf(s, "%d@%ld", &spe, &ms) == 2 && spe == cfg.localPe &&
        boot.epoch == 0) {
      stopBeatMs = ms;
    }
  }

  std::atomic<bool> resultReady{false};
  std::atomic<bool> done{false};
  ctl::ResultMsg result;

  // The ctl thread owns ALL writes to the channel after the handshake (so
  // frames never interleave): heartbeats, the log stream, Status replies,
  // and the final Result.
  std::thread ctlThread([&] {
    const auto tStart = Clock::now();
    auto nextBeat = tStart;
    bool beatFrozen = false;
    while (!done.load()) {
      if (stopBeatMs >= 0 && !beatFrozen &&
          Clock::now() - tStart >= std::chrono::milliseconds(stopBeatMs)) {
        beatFrozen = true;
      }
      if (beatFrozen) {
        // Simulated hang: no heartbeats, no Status, no log shipping, no
        // reads — indistinguishable from a wedged process until SIGKILL.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      struct pollfd pf {};
      pf.fd = ctlFd;
      pf.events = POLLIN;
      ::poll(&pf, 1, 2);
      if ((pf.revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
        std::uint8_t buf[65536];
        while (true) {
          const ssize_t k = ::recv(ctlFd, buf, sizeof buf, MSG_DONTWAIT);
          if (k > 0) {
            reader.feed(buf, static_cast<std::size_t>(k));
            if (static_cast<std::size_t>(k) < sizeof buf) break;
            continue;
          }
          if (k == 0) _exit(104);  // supervisor died; orphaned worker exits
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          if (errno == EINTR) continue;
          _exit(104);
        }
        ctl::Frame in;
        bool bad = false;
        while (reader.next(in, &bad)) {
          switch (in.tag) {
            case ctl::FrameTag::Start:
              link.start();
              break;
            case ctl::FrameTag::LogAck: {
              std::uint64_t upTo = 0;
              if (ctl::decodeU64(in.payload.data(), in.payload.size(), upTo)) {
                link.noteStable(upTo);
                machine.noteLogStable(upTo);
              }
              break;
            }
            case ctl::FrameTag::Poll: {
              std::uint64_t seq = 0;
              if (!ctl::decodeU64(in.payload.data(), in.payload.size(), seq))
                break;
              const WorkerStatus ws = machine.workerStatus();
              ctl::StatusMsg sm;
              sm.statusSeq = seq;
              sm.idle = ws.idle ? 1 : 0;
              sm.pending = ws.pending;
              sm.inboxTokens = ws.inboxTokens;
              sm.outstanding = ws.outstanding;
              sm.logAppended = ws.logAppended;
              sm.activity = ws.activity;
              std::vector<std::uint8_t> payload;
              ctl::encodeStatus(sm, payload);
              workerSendFrame(ctlFd, ctl::FrameTag::Status, payload);
              break;
            }
            case ctl::FrameTag::End:
              // Global quiescence: the supervisor ends the run (worker-mode
              // finishPending never does).
              machine.requestStop();
              break;
            case ctl::FrameTag::Error:
              link.abort();
              machine.requestStop();
              break;
            default:
              break;  // unexpected tags are the supervisor's bug; ignore
          }
        }
        if (bad) _exit(103);
      }

      // Ship buffered log records (pessimistic logging). Every append since
      // the last pass goes out in one Log frame.
      std::uint64_t firstSeq = 0;
      std::vector<ctl::LogRec> recs;
      while (link.takePending(&firstSeq, &recs)) {
        ctl::LogMsg lm;
        lm.firstSeq = firstSeq;
        lm.recs = std::move(recs);
        std::vector<std::uint8_t> payload;
        ctl::encodeLog(lm, payload);
        workerSendFrame(ctlFd, ctl::FrameTag::Log, payload);
      }

      const auto now = Clock::now();
      if (now >= nextBeat) {
        workerSendFrame(ctlFd, ctl::FrameTag::Heartbeat, {});
        nextBeat = now + std::chrono::milliseconds(cfg.heartbeatPeriodMs);
      }

      if (resultReady.load()) {
        // run() has returned: no more appends can happen, so after one last
        // takePending pass the stream is complete — then the Result frame
        // commits it.
        while (link.takePending(&firstSeq, &recs)) {
          ctl::LogMsg lm;
          lm.firstSeq = firstSeq;
          lm.recs = std::move(recs);
          std::vector<std::uint8_t> payload;
          ctl::encodeLog(lm, payload);
          workerSendFrame(ctlFd, ctl::FrameTag::Log, payload);
        }
        std::vector<std::uint8_t> payload;
        ctl::encodeResult(result, payload);
        workerSendFrame(ctlFd, ctl::FrameTag::Result, payload);
        done.store(true);
      }
    }
  });

  NativeResult res = machine.run();

  result.ok = res.ok;
  result.error = res.error;
  result.results = res.results;
  result.resultSet = res.resultsSet;
  // Wire store: this PE's slice of the array plane rides the Result frame —
  // owned elements plus the allocator's shape records — so the supervisor
  // can rebuild the global arrays without any shm segment.
  for (const WireArrayPart& p : machine.wireArrayParts()) {
    ctl::ResultMsg::OwnedArray a;
    a.id = p.id;
    a.hasMeta = p.hasMeta ? 1 : 0;
    a.rank = static_cast<std::uint8_t>(p.shape.rank);
    a.dim0 = p.shape.dim0;
    a.dim1 = p.shape.dim1;
    a.elems = p.elems;
    result.arrays.push_back(std::move(a));
  }
  for (const auto& [k, v] : res.counters.all()) result.counters.emplace_back(k, v);
  if (static_cast<std::size_t>(cfg.localPe) < res.perWorker.size()) {
    for (const auto& [k, v] :
         res.perWorker[static_cast<std::size_t>(cfg.localPe)].all()) {
      result.workerCounters.emplace_back(k, v);
    }
  }
  resultReady.store(true);
  ctlThread.join();
  _exit(0);
}

// ---------------------------------------------------------------------------
// Supervisor side
// ---------------------------------------------------------------------------

class Supervisor {
 public:
  Supervisor(const SpProgram& prog, const NativeConfig& cfg,
             std::unique_ptr<ShmStore>& shmOut,
             std::unordered_map<ArrayId, NativeArray>& wireOut)
      : prog_(prog), cfg_(cfg), shmOut_(shmOut), wireOut_(wireOut) {}

  NativeResult run();

 private:
  struct Child {
    int pe = 0;
    pid_t pid = -1;
    int fd = -1;  // supervisor end of the ctl socketpair (nonblocking)
    bool fdOpen = false;
    std::uint8_t epoch = 0;
    enum class St : std::uint8_t { Hello, Boot, Running } st = St::Hello;
    bool startSent = false;
    bool resulted = false;
    bool exited = false;
    bool killSent = false;  // heartbeat-timeout SIGKILL already fired
    std::uint64_t bootHash = 0;
    Clock::time_point lastBeat{};
    ctl::FrameReader reader;
    std::vector<std::uint8_t> outbuf;
    ctl::ResultMsg result;
    ctl::StatusMsg status;     // latest Status reply
    bool respawnPending = false;
    Clock::time_point respawnAt{};
    int respawns = 0;
  };

  bool spawnChild(int pe, std::uint8_t epoch);
  void queueFrame(Child& c, ctl::FrameTag tag,
                  const std::vector<std::uint8_t>& payload);
  void flushOut(Child& c);
  void drainRead(Child& c);
  void onFrame(Child& c, const ctl::Frame& f);
  void onChildExit(Child& c);
  void maybeStartBroadcast();
  void runTerminationRound();
  void resetRounds() {
    havePrevRound_ = false;
    awaitingRound_ = false;
  }
  void failRun(const std::string& msg);
  void badFrame(Child& c, const std::string& what);
  ctl::BootMsg makeBoot(int pe, std::uint8_t epoch) const;

  const SpProgram& prog_;
  const NativeConfig& cfg_;
  std::unique_ptr<ShmStore>& shmOut_;
  std::unordered_map<ArrayId, NativeArray>& wireOut_;

  std::string exePath_;
  std::string shmName_;
  std::vector<int> sockFds_;            // supervisor copies of the data fds
  std::vector<std::uint16_t> ports_;    // host byte order
  std::vector<Child> children_;
  std::vector<std::vector<ctl::LogRec>> logs_;  // the stable storage

  bool failed_ = false;
  std::string error_;
  bool startBroadcast_ = false;
  Clock::time_point runStart_{};
  bool killFired_ = false;
  bool endSent_ = false;

  // Termination protocol state.
  std::uint64_t pollSeq_ = 0;
  bool awaitingRound_ = false;
  Clock::time_point nextPollAt_{};
  bool havePrevRound_ = false;
  std::uint64_t prevActivity_ = 0;
  std::int64_t prevPending_ = 0;

  // Counters.
  std::int64_t ctlFrames_ = 0;
  std::int64_t ctlBadFrames_ = 0;
  std::int64_t respawnsTotal_ = 0;
  std::int64_t heartbeatTimeouts_ = 0;
};

ctl::BootMsg Supervisor::makeBoot(int pe, std::uint8_t epoch) const {
  ctl::BootMsg m;
  m.numPes = static_cast<std::uint16_t>(cfg_.numWorkers);
  m.localPe = static_cast<std::uint16_t>(pe);
  m.epoch = epoch;
  m.resume = epoch > 0 ? 1 : 0;
  m.pageElems = static_cast<std::uint32_t>(cfg_.pageElems);
  m.sliceInstructions = static_cast<std::uint32_t>(cfg_.sliceInstructions);
  m.heartbeatPeriodMs = cfg_.heartbeatPeriodMs;
  m.heartbeatTimeoutMs = cfg_.heartbeatTimeoutMs;
  m.shmBytes = 0;  // workers open, never size
  m.shmName = shmName_;  // empty under the wire store (no segment exists)
  m.store = cfg_.store == StoreKind::Wire ? 1 : 0;
  m.peerPorts = ports_;
  m.peWeights = cfg_.peWeights;
  m.faults = cfg_.faults;
  m.program = prog_;
  if (epoch > 0) m.log = logs_[static_cast<std::size_t>(pe)];
  return m;
}

void Supervisor::queueFrame(Child& c, ctl::FrameTag tag,
                            const std::vector<std::uint8_t>& payload) {
  if (!c.fdOpen) return;
  ctl::encodeFrame(tag, payload, c.outbuf);
  flushOut(c);
}

void Supervisor::flushOut(Child& c) {
  while (c.fdOpen && !c.outbuf.empty()) {
    const ssize_t k =
        ::send(c.fd, c.outbuf.data(), c.outbuf.size(), MSG_NOSIGNAL);
    if (k > 0) {
      c.outbuf.erase(c.outbuf.begin(), c.outbuf.begin() + k);
      continue;
    }
    if (k < 0 && errno == EINTR) continue;
    if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    // EPIPE etc: the child died; waitpid handles it. Drop the buffer so we
    // stop polling for POLLOUT.
    c.outbuf.clear();
    return;
  }
}

bool Supervisor::spawnChild(int pe, std::uint8_t epoch) {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv) != 0) {
    failRun(std::string("socketpair failed: ") + std::strerror(errno));
    return false;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    failRun(std::string("fork failed: ") + std::strerror(errno));
    return false;
  }
  if (pid == 0) {
    // Child. Everything the supervisor owns is CLOEXEC; re-home exactly the
    // two fds this worker needs at well-known numbers (F_DUPFD clears
    // close-on-exec on the duplicate) and exec a fresh image of ourselves.
    const int ctlDup = ::fcntl(sv[1], F_DUPFD, 16);
    const int sockDup =
        ::fcntl(sockFds_[static_cast<std::size_t>(pe)], F_DUPFD, 16);
    if (ctlDup < 0 || sockDup < 0 || ::dup2(ctlDup, kWorkerCtlFd) < 0 ||
        ::dup2(sockDup, kWorkerSockFd) < 0) {
      _exit(105);
    }
    char arg[32];
    std::snprintf(arg, sizeof arg, "--pods-worker=%d,%d", kWorkerCtlFd,
                  kWorkerSockFd);
    char* argv[3];
    argv[0] = const_cast<char*>(exePath_.c_str());
    argv[1] = arg;
    argv[2] = nullptr;
    ::execv(exePath_.c_str(), argv);
    _exit(105);
  }
  // Parent.
  ::close(sv[1]);
  const int fl = ::fcntl(sv[0], F_GETFL);
  ::fcntl(sv[0], F_SETFL, fl | O_NONBLOCK);
  Child& c = children_[static_cast<std::size_t>(pe)];
  const int keptRespawns = c.respawns;
  if (c.fdOpen) ::close(c.fd);
  c = Child{};
  c.pe = pe;
  c.pid = pid;
  c.fd = sv[0];
  c.fdOpen = true;
  c.epoch = epoch;
  c.respawns = keptRespawns;
  c.lastBeat = Clock::now();
  if (const char* pidfile = std::getenv("PODS_TEST_PIDFILE")) {
    if (std::FILE* fp = std::fopen(pidfile, "a")) {
      std::fprintf(fp, "%d %d %u\n", pe, static_cast<int>(pid),
                   static_cast<unsigned>(epoch));
      std::fclose(fp);
    }
  }
  std::vector<std::uint8_t> payload;
  ctl::encodeHello(ctl::HelloMsg{}, payload);
  queueFrame(c, ctl::FrameTag::Hello, payload);
  return true;
}

void Supervisor::failRun(const std::string& msg) {
  if (failed_) return;
  failed_ = true;
  error_ = msg;
}

void Supervisor::badFrame(Child& c, const std::string& what) {
  ++ctlBadFrames_;
  failRun("ctl protocol violation from worker PE " + std::to_string(c.pe) +
          ": " + what);
}

void Supervisor::onFrame(Child& c, const ctl::Frame& f) {
  ++ctlFrames_;
  switch (c.st) {
    case Child::St::Hello: {
      if (f.tag != ctl::FrameTag::HelloAck)
        return badFrame(c, "expected HelloAck");
      ctl::HelloMsg m;
      if (!ctl::decodeHello(f.payload.data(), f.payload.size(), m) ||
          m.magic != ctl::kMagic || m.version != ctl::kVersion) {
        return badFrame(c, "version handshake mismatch");
      }
      const ctl::BootMsg bm = makeBoot(c.pe, c.epoch);
      std::vector<std::uint8_t> payload;
      ctl::encodeBoot(bm, payload);
      c.bootHash = readLe64(payload.data());  // leading config-hash field
      queueFrame(c, ctl::FrameTag::Boot, payload);
      c.st = Child::St::Boot;
      return;
    }
    case Child::St::Boot: {
      if (f.tag != ctl::FrameTag::BootAck)
        return badFrame(c, "expected BootAck");
      std::uint64_t hash = 0;
      if (!ctl::decodeU64(f.payload.data(), f.payload.size(), hash) ||
          hash != c.bootHash) {
        return badFrame(c, "config hash mismatch");
      }
      c.st = Child::St::Running;
      c.lastBeat = Clock::now();
      if (c.epoch > 0 && startBroadcast_) {
        // Respawn: the rest of the fleet is already running — release this
        // worker immediately (its replay happens before waitStart returns).
        queueFrame(c, ctl::FrameTag::Start, {});
        c.startSent = true;
        if (endSent_) {
          // It died after the End broadcast: its log (including Result
          // records) is complete, so the replayed incarnation just needs
          // the End it missed to report and exit.
          queueFrame(c, ctl::FrameTag::End, {});
        }
      } else {
        maybeStartBroadcast();
      }
      return;
    }
    case Child::St::Running:
      break;
  }
  switch (f.tag) {
    case ctl::FrameTag::Log: {
      ctl::LogMsg m;
      if (!ctl::decodeLog(f.payload.data(), f.payload.size(), m))
        return badFrame(c, "malformed Log");
      auto& log = logs_[static_cast<std::size_t>(c.pe)];
      if (m.firstSeq != log.size())
        return badFrame(c, "Log stream discontinuity");
      for (auto& r : m.recs) log.push_back(std::move(r));
      std::vector<std::uint8_t> payload;
      ctl::encodeU64(log.size(), payload);
      queueFrame(c, ctl::FrameTag::LogAck, payload);
      return;
    }
    case ctl::FrameTag::Heartbeat:
      c.lastBeat = Clock::now();
      return;
    case ctl::FrameTag::Status: {
      ctl::StatusMsg m;
      if (!ctl::decodeStatus(f.payload.data(), f.payload.size(), m))
        return badFrame(c, "malformed Status");
      c.status = m;
      return;
    }
    case ctl::FrameTag::Result: {
      ctl::ResultMsg m;
      if (!ctl::decodeResult(f.payload.data(), f.payload.size(), m))
        return badFrame(c, "malformed Result");
      c.result = std::move(m);
      c.resulted = true;
      if (!c.result.ok) {
        failRun("worker PE " + std::to_string(c.pe) + ": " +
                (c.result.error.empty() ? "unknown error" : c.result.error));
      }
      return;
    }
    case ctl::FrameTag::Error: {
      ctl::ErrorMsg m;
      if (!ctl::decodeError(f.payload.data(), f.payload.size(), m))
        return badFrame(c, "malformed Error");
      ++ctlBadFrames_;  // handshake failures land here (version/hash skew)
      failRun("worker PE " + std::to_string(c.pe) + " error " +
              std::to_string(m.code) + ": " + m.text);
      return;
    }
    default:
      return badFrame(c, "unexpected frame tag");
  }
}

void Supervisor::drainRead(Child& c) {
  std::uint8_t buf[65536];
  while (c.fdOpen) {
    const ssize_t k = ::recv(c.fd, buf, sizeof buf, MSG_DONTWAIT);
    if (k > 0) {
      c.reader.feed(buf, static_cast<std::size_t>(k));
      continue;
    }
    if (k < 0 && errno == EINTR) continue;
    if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // EOF or hard error: stop polling this fd. Process death is detected and
    // handled by waitpid, never here — buffered frames were already fed.
    ::close(c.fd);
    c.fdOpen = false;
    break;
  }
  ctl::Frame f;
  bool bad = false;
  while (c.reader.next(f, &bad)) {
    onFrame(c, f);
    if (failed_) return;
  }
  if (bad) badFrame(c, "unparseable frame stream");
}

void Supervisor::maybeStartBroadcast() {
  if (startBroadcast_) return;
  for (const Child& c : children_) {
    if (c.st != Child::St::Running) return;
  }
  for (Child& c : children_) {
    queueFrame(c, ctl::FrameTag::Start, {});
    c.startSent = true;
  }
  startBroadcast_ = true;
  runStart_ = Clock::now();
  nextPollAt_ = runStart_ + std::chrono::milliseconds(kPollPeriodMs);
}

void Supervisor::onChildExit(Child& c) {
  c.pid = -1;
  if (c.fdOpen) {
    // Feed any final buffered frames (Result may have raced the exit).
    drainRead(c);
    if (c.fdOpen) {
      ::close(c.fd);
      c.fdOpen = false;
    }
  }
  if (endSent_ && c.resulted) {
    c.exited = true;  // clean exit after Result: the expected end of life
    return;
  }
  if (failed_) {
    c.exited = true;
    return;
  }
  // Unexpected death — including the narrow window between the End
  // broadcast and this worker's Result frame: RESULT stores are in the
  // recovery log, so even a worker whose every frame retired can replay
  // and re-report. (Boot at epoch>0 re-sends the End it missed.)
  // Causes: a planned --faults kill, an external `kill -9`, our
  // own heartbeat-timeout SIGKILL, or a crash. Respawn from the log.
  ++c.respawns;
  ++respawnsTotal_;
  if (c.respawns > kMaxRespawnsPerPe) {
    failRun("worker PE " + std::to_string(c.pe) + " died " +
            std::to_string(c.respawns) + " times; giving up");
    return;
  }
  c.respawnPending = true;
  c.respawnAt =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::micro>(
                             cfg_.faults.killRestartUs));
  resetRounds();  // a round spanning a dead PE proves nothing
}

void Supervisor::runTerminationRound() {
  // Rounds only make sense over a complete, running fleet.
  if (!startBroadcast_ || endSent_) return;
  for (const Child& c : children_) {
    if (c.pid < 0 || c.respawnPending || c.st != Child::St::Running ||
        !c.startSent) {
      return;
    }
  }
  const auto now = Clock::now();
  if (!awaitingRound_) {
    if (now < nextPollAt_) return;
    ++pollSeq_;
    std::vector<std::uint8_t> payload;
    ctl::encodeU64(pollSeq_, payload);
    for (Child& c : children_) queueFrame(c, ctl::FrameTag::Poll, payload);
    awaitingRound_ = true;
    return;
  }
  for (const Child& c : children_) {
    if (c.status.statusSeq != pollSeq_) return;  // round incomplete
  }
  awaitingRound_ = false;
  nextPollAt_ = now + std::chrono::milliseconds(kPollPeriodMs);

  bool quiet = true;
  std::int64_t pending = 0, inbox = 0, outstanding = 0;
  std::uint64_t activity = 0;
  for (const Child& c : children_) {
    if (c.status.idle == 0) quiet = false;
    if (c.status.logAppended != logs_[static_cast<std::size_t>(c.pe)].size())
      quiet = false;  // log records still in flight toward stable storage
    pending += c.status.pending;
    inbox += c.status.inboxTokens;
    outstanding += c.status.outstanding;
    activity += c.status.activity;
  }
  if (inbox != 0 || outstanding != 0) quiet = false;
  if (!quiet) {
    havePrevRound_ = false;
    return;
  }
  if (havePrevRound_ && prevActivity_ == activity && prevPending_ == pending) {
    // Two identical all-quiet rounds: nothing moved anywhere between the
    // collections, so the global state is frozen — exactly the in-process
    // double-collect, lifted to processes.
    if (pending == 0) {
      for (Child& c : children_) queueFrame(c, ctl::FrameTag::End, {});
      endSent_ = true;
    } else {
      std::string detail;
      for (const Child& c : children_) {
        if (c.status.pending != 0) {
          if (!detail.empty()) detail += ", ";
          detail +=
              "PE" + std::to_string(c.pe) + "=" +
              std::to_string(c.status.pending);
        }
      }
      failRun("deadlock: " + std::to_string(pending) +
              " live SPs blocked forever (" + detail + ")");
    }
    return;
  }
  havePrevRound_ = true;
  prevActivity_ = activity;
  prevPending_ = pending;
}

NativeResult Supervisor::run() {
  const auto t0 = Clock::now();
  NativeResult out;
  const int n = cfg_.numWorkers;
  if (cfg_.faults.killEnabled() && cfg_.faults.killPe >= n) {
    out.ok = false;
    out.error = "kill fault targets worker " +
                std::to_string(cfg_.faults.killPe) + " but only " +
                std::to_string(n) + " workers exist";
    return out;
  }

  // The shm I-structure segment (paper: structure memory separate from the
  // PEs). Unique per supervisor instance so concurrent test processes never
  // collide; the store unlinks it on destruction. Wire store: no segment at
  // all — workers never map shm, arrays ride the token wire and come back
  // in Result frames (shmName_ stays empty, which the Boot ships).
  if (cfg_.store == StoreKind::Local) {
    static std::atomic<int> shmSeq{0};
    shmName_ = !cfg_.shmName.empty()
                   ? cfg_.shmName
                   : "/pods." + std::to_string(::getpid()) + "." +
                         std::to_string(shmSeq.fetch_add(1));
    std::string serr;
    shmOut_ = ShmStore::create(
        shmName_, cfg_.shmBytes != 0 ? cfg_.shmBytes : kDefaultShmBytes,
        &serr);
    if (shmOut_ == nullptr) {
      out.ok = false;
      out.error = "shm create failed: " + serr;
      return out;
    }
  }

  char exe[4096];
  const ssize_t el = ::readlink("/proc/self/exe", exe, sizeof exe - 1);
  if (el <= 0) {
    out.ok = false;
    out.error = "readlink(/proc/self/exe) failed";
    return out;
  }
  exePath_.assign(exe, static_cast<std::size_t>(el));

  // Bind every PE's data socket up front. Workers inherit their own fd; the
  // supervisor's copies pin ports (and kernel-buffered datagrams) across
  // worker deaths.
  sockFds_.assign(static_cast<std::size_t>(n), -1);
  ports_.assign(static_cast<std::size_t>(n), 0);
  for (int pe = 0; pe < n; ++pe) {
    const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    sa.sin_port = 0;
    socklen_t slen = sizeof sa;
    if (fd < 0 ||
        ::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) != 0 ||
        ::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &slen) != 0) {
      if (fd >= 0) ::close(fd);
      for (const int f : sockFds_)
        if (f >= 0) ::close(f);
      out.ok = false;
      out.error = std::string("udp socket setup failed: ") +
                  std::strerror(errno);
      return out;
    }
    sockFds_[static_cast<std::size_t>(pe)] = fd;
    ports_[static_cast<std::size_t>(pe)] = ntohs(sa.sin_port);
  }

  children_.resize(static_cast<std::size_t>(n));
  logs_.assign(static_cast<std::size_t>(n), {});
  for (int pe = 0; pe < n && !failed_; ++pe) spawnChild(pe, 0);

  // ---- Main supervision loop (single-threaded event loop) ----------------
  while (!failed_) {
    if (cfg_.abort != nullptr && cfg_.abort->load()) {
      failRun("aborted: external stop requested (watchdog)");
      break;
    }
    // 1. I/O readiness across all live ctl channels.
    std::vector<struct pollfd> pfds;
    std::vector<int> pes;
    for (Child& c : children_) {
      if (!c.fdOpen) continue;
      struct pollfd pf {};
      pf.fd = c.fd;
      pf.events = static_cast<short>(POLLIN | (c.outbuf.empty() ? 0 : POLLOUT));
      pfds.push_back(pf);
      pes.push_back(c.pe);
    }
    if (!pfds.empty())
      ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 1);
    for (std::size_t i = 0; i < pfds.size() && !failed_; ++i) {
      Child& c = children_[static_cast<std::size_t>(pes[i])];
      if ((pfds[i].revents & POLLOUT) != 0) flushOut(c);
      if ((pfds[i].revents & (POLLIN | POLLERR | POLLHUP)) != 0) drainRead(c);
    }
    if (failed_) break;

    const auto now = Clock::now();

    // 2. Reap (per-pid, never -1: the host process may own other children,
    // e.g. a test harness). An exit without a prior Result is a fault;
    // respawn from log.
    for (Child& c : children_) {
      if (c.pid <= 0) continue;
      int wst = 0;
      if (::waitpid(c.pid, &wst, WNOHANG) == c.pid) onChildExit(c);
      if (failed_) break;
    }
    if (failed_) break;

    // 3. Heartbeat watchdog: a live-but-hung worker is indistinguishable
    // from useful work except by silence — SIGKILL it and let the reap path
    // run the normal recovery.
    for (Child& c : children_) {
      if (c.pid < 0 || c.killSent || c.resulted ||
          c.st != Child::St::Running) {
        continue;
      }
      if (now - c.lastBeat >
          std::chrono::milliseconds(cfg_.heartbeatTimeoutMs)) {
        ::kill(c.pid, SIGKILL);
        c.killSent = true;
        ++heartbeatTimeouts_;
      }
    }

    // 4. Planned fail-stop injection (`--faults=kill:PE@TIMEUS[+RESTART]`):
    // a REAL SIGKILL of a real process, timed from the Start broadcast.
    if (cfg_.faults.killEnabled() && startBroadcast_ && !killFired_ &&
        now >= runStart_ + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::micro>(
                                   cfg_.faults.killTimeUs))) {
      Child& victim = children_[static_cast<std::size_t>(cfg_.faults.killPe)];
      if (victim.pid > 0) ::kill(victim.pid, SIGKILL);
      killFired_ = true;
    }

    // 5. Due respawns: epoch+1, Boot carries the full recovery stream.
    for (Child& c : children_) {
      if (c.respawnPending && now >= c.respawnAt) {
        const int pe = c.pe;
        const std::uint8_t nextEpoch = static_cast<std::uint8_t>(c.epoch + 1);
        if (!spawnChild(pe, nextEpoch)) break;
      }
    }
    if (failed_) break;

    // 6. Termination polling / end-of-run collection.
    if (!endSent_) {
      runTerminationRound();
    } else {
      bool allDone = true;
      for (const Child& c : children_) {
        if (!c.resulted || !c.exited) {
          allDone = false;
          break;
        }
      }
      if (allDone) break;
    }
  }

  // ---- Teardown -----------------------------------------------------------
  for (Child& c : children_) {
    if (c.pid > 0) {
      if (failed_) ::kill(c.pid, SIGKILL);
      int wst = 0;
      ::waitpid(c.pid, &wst, 0);
      c.pid = -1;
    }
    if (c.fdOpen) {
      ::close(c.fd);
      c.fdOpen = false;
    }
  }
  for (const int f : sockFds_)
    if (f >= 0) ::close(f);

  out.wallSeconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  if (failed_) {
    out.ok = false;
    out.error = error_;
    out.counters.add(ctl::kFrames, ctlFrames_);
    out.counters.add(ctl::kBadFrames, ctlBadFrames_);
    return out;
  }

  // Merge: results (each RESULT slot stored by exactly one process), the
  // aggregate counter namespace, and the per-PE breakdown.
  out.results.assign(static_cast<std::size_t>(prog_.numResults), Value{});
  out.resultsSet.assign(static_cast<std::size_t>(prog_.numResults), 0);
  out.perWorker.resize(static_cast<std::size_t>(n));
  for (const Child& c : children_) {
    for (std::size_t r = 0; r < c.result.results.size(); ++r) {
      if (r < c.result.resultSet.size() && c.result.resultSet[r] != 0 &&
          r < out.results.size() && out.resultsSet[r] == 0) {
        out.results[r] = c.result.results[r];
        out.resultsSet[r] = 1;
      }
    }
    for (const auto& [k, v] : c.result.counters) out.counters.add(k, v);
    for (const auto& [k, v] : c.result.workerCounters)
      out.perWorker[static_cast<std::size_t>(c.pe)].add(k, v);
  }
  // Wire store: rebuild the global array plane from the per-PE slices the
  // workers shipped. Pass 1 sizes each array from its allocator's shape
  // record; pass 2 places every owned element (a part can arrive from a PE
  // other than the allocator, so the order of children is irrelevant).
  for (const Child& c : children_) {
    for (const auto& a : c.result.arrays) {
      if (a.hasMeta == 0) continue;
      NativeArray& arr = wireOut_[a.id];
      arr.shape.rank = a.rank;
      arr.shape.dim0 = a.dim0;
      arr.shape.dim1 = a.dim1;
      const std::int64_t total = a.rank == 1 ? a.dim0 : a.dim0 * a.dim1;
      if (total >= 0) arr.elems.assign(static_cast<std::size_t>(total), Value{});
    }
  }
  for (const Child& c : children_) {
    for (const auto& a : c.result.arrays) {
      auto it = wireOut_.find(a.id);
      if (it == wireOut_.end()) continue;
      for (const auto& [off, v] : a.elems) {
        if (off >= 0 &&
            static_cast<std::size_t>(off) < it->second.elems.size()) {
          it->second.elems[static_cast<std::size_t>(off)] = v;
        }
      }
    }
  }
  for (std::size_t r = 0; r < out.resultsSet.size(); ++r) {
    if (out.resultsSet[r] == 0) {
      out.ok = false;
      out.error = "program result " + std::to_string(r) + " never set";
      return out;
    }
  }
  out.counters.add("native.workers", n);
  out.counters.add("proc.respawns", respawnsTotal_);
  out.counters.add("proc.heartbeatTimeouts", heartbeatTimeouts_);
  if (cfg_.faults.killEnabled())
    out.counters.add("fault.kills", killFired_ ? 1 : 0);
  out.counters.add(ctl::kFrames, ctlFrames_);
  out.counters.add(ctl::kBadFrames, ctlBadFrames_);
  out.ok = true;
  return out;
}

}  // namespace

NativeResult runSupervisor(const SpProgram& prog, const NativeConfig& cfg,
                           std::unique_ptr<ShmStore>& shmOut,
                           std::unordered_map<ArrayId, NativeArray>& wireOut) {
  Supervisor sup(prog, cfg, shmOut, wireOut);
  return sup.run();
}

void maybeRunPodsWorker(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--pods-worker=", 14) != 0) continue;
    int ctlFd = -1, sockFd = -1;
    if (std::sscanf(a + 14, "%d,%d", &ctlFd, &sockFd) != 2 || ctlFd < 0 ||
        sockFd < 0) {
      std::fprintf(stderr, "pods worker: malformed %s\n", a);
      _exit(102);
    }
    runWorker(ctlFd, sockFd);  // never returns
  }
}

}  // namespace pods::native::procmgr
