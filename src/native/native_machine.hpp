// Native threaded runtime for Subcompact Processes.
//
// The simulator (src/sim) reproduces the paper's *evaluation*; this runtime
// demonstrates the paper's *goal*: executing the same translated SP programs
// on a real shared-nothing-style multiprocessor — here, host threads, the
// modern stand-in for the iPSC/2 nodes the authors were targeting.
//
// Fidelity to the model:
//  - one worker thread per "PE"; every frame is owned by exactly one worker
//    and only its owner ever touches it (tokens cross threads through a
//    mutex-guarded inbox, so no per-frame locking exists);
//  - SP semantics are identical to the simulator's: spawn-by-token frame
//    instantiation keyed on (SP code, context), blocking on empty operand
//    slots, split-phase I-structure reads with deferred-read wake-up,
//    counted completion joins, Range Filters computed from array headers
//    with the worker count as the PE count;
//  - single assignment is enforced; violations, bounds errors, stale array
//    handles, and deadlocks (all workers idle with live SPs) are detected
//    and reported — termination and deadlock are decided by a counting
//    quiescence protocol over live frames + in-flight tokens, never by
//    grace-period sleeps or polling timeouts (docs/ARCHITECTURE.md,
//    "Native runtime termination & memory model").
//
// Because the language is single-assignment, results are bit-identical to
// the simulator and the evaluators regardless of thread interleaving —
// that is the Church-Rosser property, and the tests assert it under
// repeated runs and varying worker counts.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "native/transport.hpp"
#include "runtime/array_layout.hpp"
#include "runtime/isa.hpp"
#include "support/fault.hpp"
#include "support/recovery.hpp"
#include "support/stats.hpp"

namespace pods::native {

/// Seam for a persistent host-thread pool standing in for per-run worker
/// spawn. A long-lived server (src/serve) keeps one warm pool across jobs so
/// a job's run() pays no thread create/join cost; dispatch() must execute
/// `fn` on some pool thread, and run() blocks until every dispatched body
/// has returned. The pool must have at least numWorkers threads available
/// for the whole run — worker bodies park until quiescence, so a smaller
/// pool deadlocks.
class ExecPool {
 public:
  virtual ~ExecPool() = default;
  virtual void dispatch(std::function<void()> fn) = 0;
};

/// Contexts are minted as (jobId | pe | counter) and never reused, so the
/// job id rides in the high bits of every context a run creates: 13 bits at
/// bit 49 — above the pe field (bit 40), below the array wake-key namespace
/// (bit 63), and small enough that minted contexts stay positive int64s.
inline constexpr std::uint32_t kJobIdBits = 13;
inline constexpr int kJobIdShift = 49;
inline std::uint64_t jobCtxBase(std::uint32_t jobId) {
  return static_cast<std::uint64_t>(jobId & ((1u << kJobIdBits) - 1))
         << kJobIdShift;
}

struct NativeConfig {
  int numWorkers = 4;      // the "PE count" seen by NUMPE / Range Filters
  int pageElems = 32;      // array layout granularity (ownership math only)
  int sliceInstructions = 1024;  // max instructions before draining the inbox
                                 // (must be >= 1: a zero budget would requeue
                                 // a frame forever without progress)
  /// Per-PE ownership weights for distributed-array page segmentation
  /// (runtime/array_layout.hpp). Empty = uniform; otherwise one entry >= 1
  /// per worker, sizing each worker's page share proportionally.
  std::vector<std::int64_t> peWeights;
  /// Fault injection (support/fault.hpp). Nonzero rates put cross-worker
  /// token delivery behind an unreliable-transport shim: dropped/delayed
  /// tokens are re-driven by a wall-clock retransmit daemon with
  /// exponential backoff, duplicates are suppressed at the receiver by
  /// message id. Injected tokens keep their quiescence accounting, so
  /// termination and deadlock detection stay exact. Results remain
  /// bit-identical to a fault-free run (single assignment + dedup).
  FaultConfig faults;
  /// Cross-PE token transport (native/transport.hpp): the in-process inbox
  /// (default, behavior-unchanged) or per-PE UDP loopback sockets with an
  /// always-on ack/retransmit reliable-delivery protocol. Fault injection
  /// and kill recovery compose with either.
  TransportKind transport = TransportKind::Inbox;
  /// Array-store backend (native/store.hpp): the shared-heap/shm fast path
  /// (default) or owner-serviced array messages on the token wire. Outputs
  /// are bit-identical across backends; `wire` is the layering remote-host
  /// workers need (no shm, every cross-PE access a transported message).
  StoreKind store = StoreKind::Local;
  /// Optional external abort flag (e.g. a wall-clock watchdog): observed by
  /// a monitor thread; when it becomes true the run fails fast with an
  /// "aborted" error instead of hanging. Pointee must outlive run().
  std::atomic<bool>* abort = nullptr;
  /// Multi-tenant namespace: every context this run mints (including the
  /// boot frame's) carries jobId in its high bits (jobCtxBase), so tokens,
  /// frames, straggler-ledger entries, and dedup keys of concurrent jobs
  /// can never collide. 0 (the default) reproduces the historical ctx
  /// values bit-for-bit.
  std::uint32_t jobId = 0;
  /// When set, run() executes worker bodies on this pool instead of
  /// spawning one thread per PE (the serving daemon's warm pool). Must
  /// outlive run(). Thread mode (nullptr) is unchanged.
  ExecPool* pool = nullptr;

  // ---- Multi-process mode (transport == UdpMultiproc) ------------------
  /// Supervisor: leave localPe at -1 — run() then forks one worker process
  /// per PE (native/procmgr.hpp) instead of spawning threads. Worker: the
  /// PE this process executes; everything below is filled from the Boot
  /// message by the worker entry point.
  int localPe = -1;
  std::uint8_t epoch = 0;            // worker incarnation (0 = first boot)
  WorkerLink* link = nullptr;        // control-channel seam (worker only)
  bool resume = false;               // rebuild from resumeLog before running
  RecoveryLog resumeLog;             // replayed stream from the supervisor
  /// Resume only: RESULT stores the previous incarnation had logged as
  /// stable, applied as (slot, value) before replay — result slots are
  /// process-local (not in shm), so the log is their only stable home.
  std::vector<std::pair<std::uint32_t, Value>> resumeResults;
  std::string shmName;               // I-structure shm segment to open/create
  std::uint64_t shmBytes = 0;        // supervisor: segment size (0 = default)
  int sockFd = -1;                   // worker: inherited bound UDP socket
  std::vector<std::uint16_t> peerPorts;  // loopback data port of every PE
  std::uint32_t heartbeatPeriodMs = 25;
  std::uint32_t heartbeatTimeoutMs = 2000;
};

struct NativeResult {
  bool ok = false;
  std::string error;
  std::vector<Value> results;
  /// Parallel to results: whether slot r was stored by THIS process. In
  /// single-process runs every slot is set on success; in multi-process
  /// mode each worker sets only the slots its own frames stored and the
  /// supervisor merges + checks completeness.
  std::vector<std::uint8_t> resultsSet;
  double wallSeconds = 0.0;
  /// Aggregated run counters ("native.*"): frames created/retired/peak,
  /// free-list reuse, tokens in/out/dropped, idle transitions, instructions.
  Counters counters;
  /// Per-worker breakdown of the same counters (unprefixed names), index ==
  /// worker id. framesCreated - framesRetired must be 0 after a clean run.
  std::vector<Counters> perWorker;
};

/// One materialized array, readable after run() completes.
struct NativeArray {
  ArrayShape shape{};
  std::vector<Value> elems;
};

/// Wire store (`--store=wire`): one PE's slice of the array plane, shipped
/// to the supervisor inside its Result frame so post-run gather() works
/// without a shm segment. `hasMeta` marks the allocator's authoritative
/// shape record; `elems` are the (offset, value) pairs this PE owns.
struct WireArrayPart {
  ArrayId id = 0;
  bool hasMeta = false;
  ArrayShape shape{};
  std::vector<std::pair<std::int64_t, Value>> elems;
};

/// Worker snapshot for the supervisor's termination protocol (ctl Status).
struct WorkerStatus {
  bool idle = false;
  std::int64_t pending = 0;
  std::int64_t inboxTokens = 0;
  std::int64_t outstanding = 0;
  std::uint64_t logAppended = 0;
  std::uint64_t activity = 0;
};

class NativeMachine {
 public:
  NativeMachine(const SpProgram& prog, NativeConfig cfg);
  ~NativeMachine();

  NativeMachine(const NativeMachine&) = delete;
  NativeMachine& operator=(const NativeMachine&) = delete;

  /// Executes the program to completion on real threads. Call once.
  NativeResult run();

  /// Post-run array snapshot (for result extraction); nullopt if unknown.
  std::optional<NativeArray> gather(ArrayId id) const;

  /// Wire store, post-run: this process's slice of every array it touched
  /// (owned elements + allocator shapes). Worker processes ship this to the
  /// supervisor in their Result frame; empty under LocalStore.
  std::vector<WireArrayPart> wireArrayParts() const;

  // ---- Worker-mode control (called from the procmgr ctl thread) --------
  /// Quiescence snapshot for a termination Poll.
  WorkerStatus workerStatus() const;
  /// Supervisor decided the run is over (End frame): stop the worker loop.
  void requestStop();
  /// The supervisor acknowledged log stability up to stream seq `upTo`:
  /// retry gated flushes and pump pending acks.
  void noteLogStable(std::uint64_t upTo);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace pods::native
