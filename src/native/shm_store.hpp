// POSIX shared-memory I-structure store for multi-process PODS.
//
// In the single-process native machine, I-structure arrays live in one
// global table guarded by a mutex. With PEs as separate OS processes that
// model breaks — and the paper gives us the right replacement: its target
// machine keeps "structure memory" in modules *separate from the PEs*, so
// array elements survive a PE failure by construction. We reproduce that by
// putting every array's element cells in one POSIX shm segment created by
// the supervisor: a `kill -9`'d worker loses its frames and parks, but the
// single-assignment element store is intact when the respawned process
// re-attaches, which is what "segment restore" means in this mode.
//
// Concurrency: cells are written at most once (single assignment) and read
// by any PE, lock-free:
//   * a cell is {bits, waiter-stack head, tag}; the writer stores bits, then
//     publishes tag (the presence bit), then pops the whole waiter stack and
//     sends wake tokens;
//   * a reader finding tag unset pushes a waiter node (Treiber stack) and
//     re-checks tag — with seq_cst on both sides, either the writer's pop
//     sees the node or the reader's re-check sees the tag, so no park is
//     lost;
//   * waiter nodes are bump-allocated and never freed or reused, so a stale
//     node reference can never alias a new park.
// Kill recovery leans on one extra rule: a re-executed write of the same
// value (the identical-rewrite no-op of replay) must STILL pop waiters and
// re-send wakes, because the original writer may have died between
// publishing the tag and sending the wake tokens.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/value.hpp"

namespace pods::native {

/// One mapped shm segment. The supervisor create()s (and unlinks on
/// destruction); workers open() by name — including on respawn, which is
/// the segment-restore step of recovery.
class ShmStore {
 public:
  ~ShmStore();
  ShmStore(const ShmStore&) = delete;
  ShmStore& operator=(const ShmStore&) = delete;

  static std::unique_ptr<ShmStore> create(const std::string& name,
                                          std::uint64_t bytes,
                                          std::string* err);
  static std::unique_ptr<ShmStore> open(const std::string& name,
                                        std::string* err);

  const std::string& name() const { return name_; }

  /// A resolved array: shape plus the element-cell base. Cheap to copy;
  /// valid for the life of the mapping.
  struct ArrayRef {
    std::uint32_t rank = 0;
    std::int64_t dim0 = 0;
    std::int64_t dim1 = 0;
    std::uint64_t cellsOff = 0;  // offset of the first cell in the segment
    std::int64_t elems() const { return rank == 2 ? dim0 * dim1 : dim0; }
    bool valid() const { return cellsOff != 0; }
  };

  /// Idempotent create-or-lookup: the first caller claims the table slot
  /// and allocates zeroed cells; a replayed ALLOC or a concurrent reader
  /// gets the same ArrayRef. Returns !valid() when the segment is out of
  /// space or the table is full (the caller fails the run).
  ArrayRef createArray(ArrayId id, std::uint32_t rank, std::int64_t dim0,
                       std::int64_t dim1);

  /// Lookup only — !valid() when `id` has not been created. Spins briefly
  /// if the creator is mid-publish (claim precedes ready).
  ArrayRef lookup(ArrayId id) const;

  /// Non-blocking element read. True + value when present.
  bool tryRead(const ArrayRef& a, std::int64_t off, Value* out) const;

  /// Split-phase read: pushes a waiter node for `packedCont`, then
  /// re-checks presence. Returns true + value when the element turned out
  /// present (the node stays on the stack; the eventual writer's duplicate
  /// wake is dropped by the reader's park registry). Returns false when
  /// genuinely parked.
  bool parkOrRead(const ArrayRef& a, std::int64_t off,
                  std::uint64_t packedCont, Value* out);

  /// Single-assignment write. Fills `prev` with the prior value when the
  /// cell was already set (the caller checks identical-rewrite), and always
  /// drains the waiter stack into `woken` (packed continuations) — also on
  /// rewrite, for the writer-died-before-wake replay case.
  /// Returns false when the write failed (allocator exhaustion can't happen
  /// here; reserved for future use).
  bool write(const ArrayRef& a, std::int64_t off, const Value& v, Value* prev,
             bool* wasSet, std::vector<std::uint64_t>* woken);

  /// Supervisor-side gather after the run: all elements of `a`.
  void gather(const ArrayRef& a, std::vector<Value>* out) const;

 private:
  ShmStore() = default;
  bool mapSegment(int fd, std::uint64_t bytes, bool fresh, std::string* err);

  std::string name_;
  bool owner_ = false;
  std::uint8_t* base_ = nullptr;
  std::uint64_t size_ = 0;
};

}  // namespace pods::native
