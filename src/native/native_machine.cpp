#include "native/native_machine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "native/procmgr.hpp"
#include "native/shm_store.hpp"
#include "native/spsc_ring.hpp"
#include "native/transport.hpp"
#include "proto/delivery.hpp"
#include "runtime/ops.hpp"
#include "support/check.hpp"
#include "support/recovery.hpp"

namespace pods::native {

namespace {

struct NFrame {
  std::uint16_t spCode = 0;
  std::uint64_t ctx = 0;
  std::uint32_t pc = 0;
  std::uint16_t blockedSlot = kNoSlot;
  std::uint16_t gen = 0;  // bumped (mod 4096) every time this storage retires
  bool blocked = false;
  bool dead = false;
  std::vector<Value> slots;
  // Kill mode: deterministic per-frame streams so a re-executed frame
  // reproduces the same send keys and minted identities.
  std::uint32_t sendSeq = 0;
  std::uint32_t mintSeq = 0;
  // Kill mode: true on frames rebuilt from the receive log. A replaying
  // frame only accepts continuation results from contexts it has re-sent to
  // (sentCtxs); earlier arrivals are parked so a multi-round slot cannot be
  // filled with a later round's value before the earlier round re-runs.
  bool replaying = false;
  std::unordered_set<std::uint64_t> sentCtxs;
};

/// A waiting split-phase read parked on an absent element.
struct ElemWaiter {
  Cont cont;
};

struct NArray {
  ArrayShape shape{};
  ArrayLayout layout;
  std::mutex m;  // guards elems presence + waiters
  std::vector<Value> elems;
  std::unordered_map<std::int64_t, std::vector<ElemWaiter>> waiters;

  NArray(ArrayShape s, int pes, int page,
         const std::vector<std::int64_t>& peWeights)
      : shape(s),
        layout(s, pes, page, peWeights),
        elems(static_cast<std::size_t>(s.numElems())) {}
};

/// Owner-thread-only event counters; read cross-thread only after join().
struct WorkerStats {
  std::int64_t tokensIn = 0;       // tokens drained from the inbox
  std::int64_t tokensOut = 0;      // tokens this worker sent (local + remote)
  std::int64_t tokensDropped = 0;  // tokens to dead / stale-generation frames
  std::int64_t framesCreated = 0;
  std::int64_t framesRetired = 0;
  std::int64_t framesReused = 0;   // creations served from the free list
  std::int64_t idleTransitions = 0;
  std::int64_t instructions = 0;
  std::int64_t dupSuppressed = 0;  // duplicate faulty messages deduplicated
  PeakGauge liveFrames;
  // Wire array store ("net.am.*"): typed array messages sent/serviced by
  // this PE, plus the local fast-path accesses that never hit the wire.
  std::int64_t amReadReqSent = 0;    // remote split-phase reads issued
  std::int64_t amReadReqServed = 0;  // read requests serviced as owner
  std::int64_t amWriteSent = 0;      // remote element writes issued
  std::int64_t amWriteApplied = 0;   // remote writes applied as owner
  std::int64_t amDimReqSent = 0;     // shape queries issued to allocators
  std::int64_t amDimReqServed = 0;   // shape queries answered as allocator
  std::int64_t amRepliesSent = 0;    // value replies sent (immediate + fills)
  std::int64_t amParks = 0;          // deferred reads parked at this owner
  std::int64_t amParkFills = 0;      // parked reads filled by a write
  std::int64_t amLocalReads = 0;     // owner-local reads (no message)
  std::int64_t amLocalWrites = 0;    // owner-local writes (no message)
  std::int64_t amShapeWaits = 0;     // frames blocked awaiting a DimReply
  // Array accesses served through the shm segment (LocalStore, worker
  // mode). Must be zero under --store=wire: the acceptance proof that no
  // array traffic bypasses the transport.
  std::int64_t shmArrayOps = 0;
};

/// Capacity of each inbox SPSC ring. Deep enough that fault-free runs
/// essentially never spill to the overflow deque; small enough that even a
/// wide all-to-all run stays cheap (rings allocate lazily per used lane).
constexpr std::uint32_t kInboxRingCap = 1024;

struct Worker {
  int id = 0;  // set once at construction, before any thread starts
  // Cross-thread: the inbox — one lock-free SPSC ring per producer lane
  // (lane = sending worker's PE id, or numWorkers for a transport service
  // thread; each lane has exactly one producer thread, this worker is the
  // only consumer). Rings are bounded; a full ring falls back to the
  // mutex-guarded overflow deque so producers never block or spin.
  // `sleeping` is the wakeup handshake: the consumer sets it under m before
  // re-checking the rings and waiting; producers check it after a seq_cst
  // fence and only then pay for the mutex + notify (see workerMain).
  std::mutex m;
  std::condition_variable cv;
  std::unique_ptr<std::atomic<SpscRing<NToken>*>[]> lanes;  // laneCount cells
  int laneCount = 0;
  std::atomic<bool> sleeping{false};
  std::deque<NToken> overflow;          // guarded by m
  std::atomic<int> overflowCount{0};    // live overflow entries
  std::atomic<std::int64_t> overflowTotal{0};  // lifetime, for stats

  ~Worker() {
    for (int i = 0; i < laneCount; ++i)
      delete lanes[i].load(std::memory_order_relaxed);
  }

  // Owner-thread-only state.
  std::vector<std::unique_ptr<NFrame>> frames;
  std::vector<std::uint32_t> freeList;  // retired frame indices, ready to reuse
  std::unordered_map<std::uint64_t, std::uint32_t> match;
  std::deque<std::uint32_t> ready;
  std::uint64_t ctxCounter = 0;
  /// Owner-thread-only receiver half of the delivery protocol: msgId dedup
  /// (duplicate copies suppressed before they can re-apply a non-idempotent
  /// token — ADDC, spawn-by-token) plus the retired-instance straggler
  /// ledger. NEWCTX never reuses a context, so a ctx-matched token arriving
  /// late (reordered by injected delay/retransmit) for a retired context is
  /// a straggler the instance never needed — it must be dropped, not spawn
  /// a zombie frame. The logic lives in proto::Delivery.
  proto::Delivery rx;
  /// Kill mode, owner-thread-only: logical exactly-once filters and parked
  /// replay state (see support/recovery.hpp). Survivors need them too — they
  /// absorb a rebuilt neighbor's re-sent tokens.
  ReplayDedup dedup;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> pendingReplay;
  /// Kill mode, owner-thread-only: outstanding array-read parks by wake key,
  /// each holding the packed conts parked on that element. A wake whose key
  /// is absent was for a park wiped by this worker's kill — the re-executed
  /// read already took the element directly — and must be dropped, or it
  /// could fill a multi-round slot out of order.
  std::unordered_map<std::uint64_t, std::unordered_set<std::uint64_t>> myParks;
  WorkerStats st;
  std::thread thread;

  // ---- Wire array store (owner-thread-only; cfg.store == Wire) ----------
  //
  // Under the wire store this PE privately owns the elements `ArrayLayout`
  // assigns to it; every non-local access arrives as a typed array message
  // (native/store.hpp) on the ordinary token transport. Like the NArray
  // heap and the shm segment, the element/park/shape maps are *store*
  // state, not PE state: an in-process kill wipes the frames but leaves
  // them intact (multi-process respawns rebuild them from the receive
  // log's Am records instead).
  /// Owned elements: array id -> offset -> value (sparse; single-assignment).
  std::unordered_map<ArrayId, std::unordered_map<std::int64_t, Value>> wsElems;
  /// Deferred reads parked at this owner: array id -> offset -> packed
  /// requester continuations (deduplicated; drained by the eventual write).
  std::unordered_map<ArrayId,
                     std::unordered_map<std::int64_t,
                                        std::vector<std::uint64_t>>>
      wsParks;
  /// Shape + ownership-layout cache. The allocator registers its arrays at
  /// ALLOC; other PEs fill entries from DimReply answers. Layout is a pure
  /// function of (shape, machine config), so a cached copy is as
  /// authoritative as the allocator's.
  struct WsMeta {
    ArrayShape shape{};
    ArrayLayout layout;
    WsMeta(ArrayShape s, int pes, int page,
           const std::vector<std::int64_t>& peWeights)
        : shape(s), layout(s, pes, page, peWeights) {}
  };
  std::unordered_map<ArrayId, WsMeta> wsMeta;
  /// Frames blocked on an unknown shape, requeued by the DimReply.
  std::unordered_map<ArrayId, std::vector<std::uint32_t>> wsShapeWait;
  /// Arrays with a DimReq in flight (one query per array per PE).
  std::unordered_set<ArrayId> wsDimReqSent;
  /// Per-PE allocation stream: id = seq * numWorkers + pe, so the allocator
  /// of any id is id % numWorkers with no cross-PE coordination.
  std::uint64_t wsArraySeq = 0;
  /// Respawn replay: replies regenerated from logged Am records, held until
  /// the worker loop starts (the transport is not up during the rebuild).
  std::vector<std::pair<int, NToken>> wsDeferred;
};

/// Wake-token identity of one array element (top bit distinguishes the wake
/// namespace from real sender contexts).
std::uint64_t elemWakeKey(ArrayId arr, std::int64_t offset) {
  return (1ULL << 63) | (static_cast<std::uint64_t>(arr) << 40) |
         static_cast<std::uint64_t>(offset);
}

/// Worker mode: a frame that has ENDed but whose End log record is held
/// back until the END-retire barrier passes — every send the frame ever
/// made must be acked first, or a crash after logging End could lose the
/// frame's output (the replay would see the frame as over and never
/// re-execute it). Frame storage is recycled only when the record lands,
/// so log replay can never see an index reused before its previous
/// occupant's End.
struct Retiring {
  std::uint32_t frameIdx = 0;
  std::uint64_t ctx = 0;
  std::vector<std::uint64_t> snap;  // transport END barrier snapshot
};

}  // namespace

struct NativeMachine::Impl : TransportSink {
  const SpProgram& prog;
  NativeConfig cfg;

  std::vector<std::unique_ptr<Worker>> workers;

  // Array store: ids assigned under storeM; NArray objects are stable.
  std::mutex storeM;
  std::vector<std::unique_ptr<NArray>> arrays;

  // Results and error reporting.
  std::mutex resultM;
  std::vector<Value> results;
  std::vector<bool> resultSet;
  std::string error;

  // --- quiescence protocol ---------------------------------------------------
  //
  // Termination and deadlock are decided by counting, never by timeouts.
  //
  //   pending     = live frames + cross-thread tokens not yet consumed.
  //                 Senders increment *before* the token becomes visible;
  //                 the moment it reaches zero the program is finished
  //                 (nothing can ever create work again) and stop is raised.
  //   inboxTokens = cross-thread tokens enqueued and not yet drained;
  //                 distinguishes "frames alive but every token consumed"
  //                 (deadlock) from "work still in flight".
  //   idleWorkers = workers registered idle (empty ready list, empty inbox).
  //   wakeEpoch   = bumped every time a worker leaves its cv wait — strictly
  //                 after it deregisters from idleWorkers and strictly
  //                 before it consumes anything.
  //
  // Deadlock = all workers idle, no tokens in flight, frames still alive.
  // The check runs when a worker registers idle, as a double-collect guarded
  // by wakeEpoch: read e1, read the three counters, re-read the epoch. If
  // e2 == e1, no worker left its wait inside the window. The ordering rule
  // makes that conclusive: any consumption is preceded (in the seq_cst total
  // order) by that worker's deregistration and then its epoch bump, so a
  // consumption that could invalidate the inboxTokens/pending reads either
  // bumps the epoch inside the window (check fails, retried by a later
  // registrant) or deregistered before the window (then idleWorkers == N
  // already proves it re-registered with nothing runnable). Hence a passing
  // check means every worker sat idle across all three reads and the frames
  // counted in `pending` can never be fed another token — exact, with no
  // grace-period sleep and no wait_for polling. The cv waits are untimed;
  // every wake source (token push, stop) notifies under that worker's
  // mutex, so wakeups cannot be missed. Protocol atomics use the default
  // seq_cst ordering — the double-collect argument leans on its single
  // total order; per-event stats stay in owner-thread WorkerStats instead.
  std::atomic<std::int64_t> pending{0};
  std::atomic<std::int64_t> inboxTokens{0};
  std::atomic<int> idleWorkers{0};
  std::atomic<std::uint64_t> wakeEpoch{0};
  std::atomic<bool> stop{false};

  // --- cross-PE transport (native/transport.hpp) -----------------------------
  //
  // Cross-worker tokens leave through `transport` — the in-process inbox
  // path (with the fault-injection shim and retransmit daemon when faults
  // are enabled) or per-PE UDP loopback sockets with an always-on
  // ack/retransmit protocol. Either way the tokens KEEP their
  // pending/inboxTokens increments while parked in a retransmit queue or a
  // kernel socket buffer, so the quiescence protocol above stays exact —
  // an in-transport token reads as in-flight work, never as quiescence.
  // Injected duplicate copies on the inbox path get their own increments
  // (chargeDuplicate) and are consumed when the receiver's message-id dedup
  // drops them; UDP duplicates are suppressed inside the transport before
  // the inbox and never carry charges.
  FaultPlan plan;
  std::unique_ptr<Transport> transport;
  std::atomic<std::int64_t> faultStalls{0};
  std::thread monitorThread;

  // --- fail-stop recovery (kill mode; docs/ARCHITECTURE.md) ------------------
  //
  // `--faults=kill:PE@TIMEUS` fail-stops one worker once: at the wall-clock
  // deadline the worker discards ALL its volatile state (frames, match table,
  // ready list, free list, dedup sets) and rebuilds it from its stable
  // receive log — frames come back at their original indices and generations,
  // live ones re-execute from pc 0 with idempotent identity minting and
  // parked re-delivery of logged results. The inbox is the network's buffer,
  // not PE state: it survives the kill, keeping its pending/inboxTokens
  // charges, so the quiescence ledger stays exact (the rebuilt live-frame
  // count equals the wiped one, since both are pure functions of the log).
  // The rebuild is instantaneous and on the owner thread: no other thread
  // ever touches recLogs or the worker's volatile state, so kill mode adds
  // no synchronization (TSan-clean by construction).
  std::vector<RecoveryLog> recLogs;
  std::chrono::steady_clock::time_point killAt{};
  bool killFired = false;  // touched only by the killed worker's thread
  std::int64_t recReplayedFrames = 0;   // owner-thread; read after join
  std::int64_t recReplayedTokens = 0;
  std::int64_t recParkedEarly = 0;

  // --- multi-process mode (transport == UdpMultiproc) ------------------------
  //
  // Supervisor (localPe < 0): run() delegates to procmgr::runSupervisor,
  // which forks one worker process per PE; this Impl is a shell that holds
  // the shm I-structure segment for post-run gather().
  //
  // Worker (localPe >= 0): exactly one worker thread runs (the local PE).
  // Arrays live in the supervisor-created shm segment, every receive and
  // mint is mirrored to the supervisor over the control channel
  // (pessimistic logging), and output commit gates both acks (a sequence is
  // acked only once its Recv record is stable) and frame retirement (End is
  // logged only after every send of the frame is acked).
  std::unique_ptr<ShmStore> shm;
  /// Supervisor + wire store: arrays merged from the workers' Result frames
  /// (each worker ships its owned elements + allocator metas at the end of
  /// the run), read by post-run gather(). The wire-store replacement for
  /// the shm segment.
  std::unordered_map<ArrayId, NativeArray> wireGathered;
  /// Respawn replay (wire store): true while performKill re-services logged
  /// Am records — replies regenerated during the rebuild are deferred to
  /// Worker::wsDeferred instead of sent (no transport is running yet).
  bool amDeferSends = false;
  /// Worker-mode array cache: shm cells + shape + ownership layout, filled
  /// lazily (arrays allocated by other PEs resolve on first touch).
  /// Owner-thread-only — worker mode has a single worker thread.
  struct WArr {
    ShmStore::ArrayRef ref;
    ArrayShape shape{};
    ArrayLayout layout;
    WArr(ShmStore::ArrayRef r, ArrayShape s, int pes, int page,
         const std::vector<std::int64_t>& peWeights)
        : ref(r), shape(s), layout(s, pes, page, peWeights) {}
  };
  std::unordered_map<std::uint64_t, WArr> warrays;
  /// Worker-mode allocation stream: array ids are strided (id = seq *
  /// numPes + pe), so concurrent per-PE allocation needs no coordination.
  /// Rebuilt from the mint log on respawn so replay never re-mints.
  std::uint64_t wArraySeq = 0;
  /// Worker-mode deferred retirements, FIFO (owner-thread-only).
  std::deque<Retiring> retiring;
  /// Monotone deposit count — the activity component of Status snapshots
  /// (the supervisor's two-round quiescence check detects in-window motion
  /// through it, like wakeEpoch in the in-process double-collect).
  std::atomic<std::int64_t> depositTotal{0};

  bool killMode() const { return cfg.faults.killEnabled(); }

  bool workerMode() const {
    return cfg.transport == TransportKind::UdpMultiproc && cfg.localPe >= 0;
  }
  bool supervisorMode() const {
    return cfg.transport == TransportKind::UdpMultiproc && cfg.localPe < 0;
  }
  /// Whether the recovery machinery (receive/mint logging, logical dedup,
  /// parked replay) is live: in-process kill mode, or ANY worker process —
  /// a multiproc worker can be `kill -9`ed at an arbitrary moment, so it
  /// must log unconditionally.
  bool recMode() const { return killMode() || workerMode(); }

  /// Whether the wire array store is active: array elements live in per-PE
  /// owned maps and every non-local access is a transported array message.
  /// The supervisor never executes frames, so this is only consulted on
  /// worker/execution paths.
  bool wireStore() const { return cfg.store == StoreKind::Wire; }

  /// Whether the retired-context straggler ledger is maintained. Needed
  /// whenever delivery can reorder a token past its instance's END: fault
  /// injection (delays/retransmits) and the UDP transport (retransmit
  /// reordering is inherent, faults or not).
  bool trackStragglers() const {
    return plan.enabled() || cfg.transport == TransportKind::Udp ||
           cfg.transport == TransportKind::UdpMultiproc;
  }

  Impl(const SpProgram& p, NativeConfig c)
      : prog(p), cfg(c), plan(c.faults) {
    PODS_CHECK_MSG(c.numWorkers >= 1 && c.numWorkers <= 256,
                   "numWorkers must be in [1, 256]");
    PODS_CHECK(c.pageElems >= 1 && c.pageElems <= 4096);
    PODS_CHECK_MSG(c.sliceInstructions >= 1,
                   "sliceInstructions must be >= 1 (a zero budget would "
                   "requeue frames forever without progress)");
    PODS_CHECK_MSG(c.peWeights.empty() ||
                       static_cast<int>(c.peWeights.size()) == c.numWorkers,
                   "peWeights must be empty or have one entry per worker");
    for (int i = 0; i < c.numWorkers; ++i) {
      workers.push_back(std::make_unique<Worker>());
      Worker& w = *workers.back();
      w.id = i;
      // One lane per sending worker plus one service lane (numWorkers) for
      // transport threads. Ring storage allocates lazily on a lane's first
      // push — most of the all-to-all matrix never carries a token.
      w.laneCount = c.numWorkers + 1;
      w.lanes.reset(new std::atomic<SpscRing<NToken>*>[
          static_cast<std::size_t>(w.laneCount)]);
      for (int l = 0; l < w.laneCount; ++l)
        w.lanes[l].store(nullptr, std::memory_order_relaxed);
    }
    if (recMode()) recLogs.resize(static_cast<std::size_t>(c.numWorkers));
    results.resize(static_cast<std::size_t>(prog.numResults));
    resultSet.assign(static_cast<std::size_t>(prog.numResults), false);
    if (workerMode()) {
      transport = makeUdpMultiprocTransport(*this, plan, cfg.numWorkers,
                                            cfg.localPe, cfg.epoch, cfg.sockFd,
                                            cfg.peerPorts, cfg.link);
    } else if (!supervisorMode()) {
      // Supervisor mode needs no transport: tokens flow between worker
      // processes, never through this Impl.
      transport = makeTransport(cfg.transport, *this, plan, cfg.numWorkers);
    }
  }

  ~Impl() override {
    if (transport != nullptr) transport->stop();
  }

  void fail(const std::string& msg) {
    {
      std::lock_guard<std::mutex> g(resultM);
      if (error.empty()) error = msg;
    }
    stop.store(true);
    for (auto& w : workers) {
      std::lock_guard<std::mutex> g(w->m);
      w->cv.notify_all();
    }
  }

  // --- tokens ---------------------------------------------------------------

  /// Makes a cross-thread token visible to worker `pe` (no accounting — the
  /// caller has already charged pending/inboxTokens for this copy). This is
  /// the TransportSink deposit: called by transport threads (retransmit
  /// daemon, UDP receivers) as well as by workers; `lane` names the calling
  /// thread's SPSC ring at the destination (one producer per lane).
  ///
  /// Fast path: lock-free ring push, then a seq_cst fence and a sleeping
  /// check — the mutex+notify is paid only when the consumer is (or is
  /// about to be) blocked. The fence pairs with the consumer's fence after
  /// it publishes sleeping=true and before it re-checks the rings: either
  /// this push's ring write is visible to that re-check, or sleeping=true
  /// is visible here and we notify under the mutex. Either way the token
  /// cannot strand while the worker sleeps.
  void deposit(int pe, int lane, NToken tok) override {
    if (workerMode()) {
      // Multi-process quiescence is per-process: the sender's ledger tracks
      // the token as transport->outstanding() until it is acked, and the
      // receiving process charges its own pending/inboxTokens here, on the
      // rx thread, before the token becomes visible. The supervisor's
      // termination check sums both sides, so a token is accounted
      // somewhere at every instant.
      pending.fetch_add(1);
      inboxTokens.fetch_add(1);
      depositTotal.fetch_add(1, std::memory_order_relaxed);
    }
    Worker& w = *workers[static_cast<std::size_t>(pe)];
    std::atomic<SpscRing<NToken>*>& cell =
        w.lanes[static_cast<std::size_t>(lane)];
    SpscRing<NToken>* ring = cell.load(std::memory_order_acquire);
    if (!ring) {
      // Only this lane's single producer allocates, so a plain store
      // publishes without a CAS.
      ring = new SpscRing<NToken>(kInboxRingCap);
      cell.store(ring, std::memory_order_release);
    }
    if (ring->tryPush(std::move(tok))) {
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (w.sleeping.load(std::memory_order_relaxed)) {
        std::lock_guard<std::mutex> g(w.m);
        w.cv.notify_one();
      }
      return;
    }
    // Ring full: unbounded mutex-guarded fallback. tryPush moved-from only
    // on success, so tok is still intact here.
    {
      std::lock_guard<std::mutex> g(w.m);
      w.overflow.push_back(std::move(tok));
      w.overflowCount.fetch_add(1, std::memory_order_relaxed);
      w.overflowTotal.fetch_add(1, std::memory_order_relaxed);
      w.cv.notify_one();
    }
  }

  /// An injected duplicate on the inbox path is a real extra message: it
  /// carries its own quiescence charges, consumed when the receiver's
  /// message-id dedup (proto::Delivery::accept) drops it.
  void chargeDuplicate() override {
    pending.fetch_add(1);
    inboxTokens.fetch_add(1);
  }

  void transportFail(const std::string& msg) override { fail(msg); }

  /// Charges the quiescence ledger for one cross-PE token, then hands it to
  /// the transport. The charges are released only when the destination
  /// worker drains the token, so a token parked in a retransmit queue or a
  /// kernel socket buffer still reads as in-flight work.
  void enqueue(int fromPe, int toPe, NToken tok) {
    if (!workerMode()) {
      pending.fetch_add(1);
      inboxTokens.fetch_add(1);
    }
    // Worker mode: no local charge — the destination is another process.
    // The token reads as transport->outstanding() until acked (the Status
    // snapshot the supervisor sums), and the receiver charges its own
    // ledger at deposit.
    transport->send(fromPe, toPe, std::move(tok));
  }

  void send(int fromPe, int toPe, NToken tok) {
    workers[static_cast<std::size_t>(fromPe)]->st.tokensOut++;
    if (toPe == fromPe) {
      deliver(fromPe, tok);  // owner thread: direct delivery
    } else {
      enqueue(fromPe, toPe, std::move(tok));
    }
  }

  /// Allocates a frame on worker `w`, preferring recycled storage from the
  /// free list. The generation of reused storage was bumped at retire time,
  /// so continuations into the previous occupant no longer match.
  std::uint32_t createFrame(Worker& w, std::uint16_t spCode,
                            std::uint64_t ctx) {
    std::uint32_t frameIdx;
    if (!w.freeList.empty()) {
      frameIdx = w.freeList.back();
      w.freeList.pop_back();
      NFrame& f = *w.frames[frameIdx];
      f.spCode = spCode;
      f.ctx = ctx;
      f.pc = 0;
      f.blockedSlot = kNoSlot;
      f.blocked = false;
      f.dead = false;
      f.sendSeq = 0;
      f.mintSeq = 0;
      f.replaying = false;
      f.sentCtxs.clear();
      f.slots.assign(prog.sp(spCode).numSlots, Value{});
      w.st.framesReused++;
    } else {
      frameIdx = static_cast<std::uint32_t>(w.frames.size());
      if (frameIdx > Cont::kMaxFrame) {
        fail("worker frame table overflow (> 16M live frames)");
        return frameIdx;
      }
      auto f = std::make_unique<NFrame>();
      f->spCode = spCode;
      f->ctx = ctx;
      f->slots.assign(prog.sp(spCode).numSlots, Value{});
      w.frames.push_back(std::move(f));
    }
    w.match[ctx] = frameIdx;
    w.ready.push_back(frameIdx);
    pending.fetch_add(1);  // a live frame
    w.st.framesCreated++;
    w.st.liveFrames.inc();
    return frameIdx;
  }

  /// Retires a frame: storage goes to the free list, the generation bump
  /// invalidates every outstanding continuation into it.
  void retireFrame(Worker& w, std::uint32_t frameIdx, NFrame& f) {
    if (trackStragglers()) w.rx.retireCtx(f.ctx);
    if (workerMode()) {
      // Output commit for retirement: the End record may enter the log only
      // after every send this frame made is acked (otherwise a crash after
      // End could lose unacked output — replay would see the frame as over
      // and never re-execute it). Snapshot the per-destination send
      // high-water now; pumpRetiring completes the retirement when the
      // barrier passes. The frame dies immediately for everything else.
      Retiring r;
      r.frameIdx = frameIdx;
      r.ctx = f.ctx;
      transport->barrierSnapshot(r.snap);
      retiring.push_back(std::move(r));
      w.dedup.retire(f.ctx);
      f.dead = true;
      f.gen = static_cast<std::uint16_t>((f.gen + 1) & Cont::kGenMask);
      f.slots.clear();
      w.match.erase(f.ctx);
      w.st.framesRetired++;
      w.st.liveFrames.dec();
      return;
    }
    if (killMode()) {
      RecoveryLog& L = recLogs[static_cast<std::size_t>(w.id)];
      RecEntry e;
      e.kind = RecEntry::Kind::End;
      e.ctx = f.ctx;
      L.entries.push_back(e);
      // The instance is over: shed its logical-dedup keys and minted
      // identities (nothing can consult them again — tokens to a dead
      // frame are dropped or triaged as stragglers first). This bounds the
      // recovery ledgers by *live* instances instead of run length.
      w.dedup.retire(f.ctx);
      L.mints.erase(f.ctx);
    }
    f.dead = true;
    f.gen = static_cast<std::uint16_t>((f.gen + 1) & Cont::kGenMask);
    f.slots.clear();  // drop payloads; capacity is kept for reuse
    w.match.erase(f.ctx);
    w.freeList.push_back(frameIdx);
    w.st.framesRetired++;
    w.st.liveFrames.dec();
  }

  static RecEntry contLogEntry(const NToken& tok, std::uint32_t frameIdx,
                               std::uint16_t gen) {
    RecEntry e;
    e.kind = RecEntry::Kind::ConToken;
    e.frame = frameIdx;
    e.gen = gen;
    e.slot = tok.cont.slot;
    e.v = tok.v;
    e.add = tok.add;
    e.senderCtx = tok.senderCtx;
    e.sendKey = tok.sendKey;
    return e;
  }

  /// Appends one receive-log record to PE `pe`'s log and, in worker mode,
  /// mirrors it onto the control channel (pessimistic logging: the
  /// supervisor is the stable storage a respawn replays from). Returns the
  /// record's 1-based control-stream position (0 when not mirrored).
  std::uint64_t logAppend(int pe, const RecEntry& e) {
    recLogs[static_cast<std::size_t>(pe)].entries.push_back(e);
    if (workerMode() && cfg.link != nullptr) return cfg.link->logEntry(e);
    return 0;
  }

  /// Records a NEWCTX/ALLOC mint and, in worker mode, mirrors it onto the
  /// control channel with the context-counter high-water.
  void logMintRec(int pe, std::uint64_t ctx, std::uint32_t mseq,
                  const Value& v) {
    RecoveryLog& L = recLogs[static_cast<std::size_t>(pe)];
    L.recordMint(ctx, mseq, v);
    if (workerMode() && cfg.link != nullptr)
      cfg.link->logMint(ctx, mseq, v, L.ctxCounter);
  }

  /// Owner-thread token delivery (frame creation, slot write, wake-up).
  void deliver(int pe, const NToken& tok) {
    Worker& w = *workers[static_cast<std::size_t>(pe)];
    if (tok.msgId != 0 && !workerMode()) {
      // Fault injection: exactly-once delivery. Duplicate copies of a
      // message are suppressed here — single-assignment slot writes would
      // tolerate redelivery, but ADDC join counters and spawn-by-token
      // after frame retirement would not. Multi-process mode must NOT use
      // this window: the transport rx thread already dedups per (link,
      // epoch) before depositing, and link seq numbering restarts at 1 on
      // a peer's respawn — an epoch-unaware msgId window here would
      // suppress a respawned peer's fresh sends as duplicates of the dead
      // incarnation's early messages.
      if (!w.rx.accept(tok.msgId)) {
        w.st.dupSuppressed++;
        return;
      }
      if (plan.stallHit(tok.msgId)) {
        faultStalls.fetch_add(1);
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::micro>(
                plan.config().nativeStallUs));
      }
    }
    if (tok.amKind != static_cast<std::uint8_t>(AmKind::None)) {
      // Typed array message (wire store): serviced by this PE as owner /
      // allocator, never by a frame. Handled after the transport-level
      // msgId dedup above but before any ctx-addressed logic — an array id
      // must never be confused with a context.
      handleAm(pe, tok, /*fromLog=*/false);
      return;
    }
    std::uint32_t frameIdx;
    std::uint16_t slot;
    if (tok.toCont) {
      if ((recMode() || wireStore()) && tok.wakeKey != 0) {
        // Array-element wake-up: only valid for a park this worker still
        // remembers. A kill wipes the park registry; wakes for pre-kill
        // parks are redundant (the re-executed read found the element
        // present) and dangerous (they could fill a reused slot mid-round).
        auto pit = w.myParks.find(tok.wakeKey);
        if (pit == w.myParks.end() ||
            pit->second.erase(tok.cont.pack()) == 0) {
          w.st.tokensDropped++;
          return;
        }
        if (pit->second.empty()) w.myParks.erase(pit);
      }
      frameIdx = tok.cont.frame;
      slot = tok.cont.slot;
      if (frameIdx >= w.frames.size() || w.frames[frameIdx]->dead ||
          w.frames[frameIdx]->gen != tok.cont.gen) {
        w.st.tokensDropped++;  // stale continuation: the frame is gone
        return;
      }
      NFrame& fr = *w.frames[frameIdx];
      if (recMode() && tok.sendKey != 0 &&
          !w.dedup.firstCont(fr.ctx, tok.senderCtx, tok.sendKey)) {
        // A re-executed sender re-sent this logical token; it was already
        // applied (or parked) exactly once. The ledger is keyed by the
        // consuming context — dead/stale frames are dropped above before
        // dedup is consulted, so END can prune a retired instance's keys.
        w.st.tokensDropped++;
        return;
      }
      if (recMode() && tok.sendKey != 0 && fr.replaying &&
          fr.sentCtxs.count(tok.senderCtx) == 0) {
        // Fresh result racing the replay (e.g. a survivor child finishing
        // after the rebuild): the rebuilt consumer has not re-sent to this
        // context yet, so applying now could clobber an earlier round's
        // slot. Park it; the re-send trigger delivers it in program order.
        w.pendingReplay[tok.senderCtx].push_back(
            recLogs[static_cast<std::size_t>(pe)].entries.size());
        logAppend(pe, contLogEntry(tok, frameIdx, fr.gen));
        recParkedEarly++;
        return;
      }
    } else {
      if (recMode() && !w.dedup.firstCtx(tok.ctx, tok.slot)) {
        w.st.tokensDropped++;  // replayed spawn/argument duplicate
        return;
      }
      auto it = w.match.find(tok.ctx);
      if (it == w.match.end()) {
        if (trackStragglers() && w.rx.straggler(tok.ctx)) {
          w.st.tokensDropped++;  // straggler to a retired instance
          return;
        }
        frameIdx = createFrame(w, tok.spCode, tok.ctx);
        if (frameIdx > Cont::kMaxFrame) return;  // overflow already failed
      } else {
        frameIdx = it->second;
      }
      slot = tok.slot;
    }
    NFrame& f = *w.frames[frameIdx];
    if (recMode() && !(tok.toCont && tok.sendKey == 0)) {
      // Receive log: every applied ctx token (frame creation order and
      // argument values) and every keyed continuation token. Wake-ups are
      // excluded — a replayed read regenerates them from the I-structure.
      if (tok.toCont) {
        logAppend(pe, contLogEntry(tok, frameIdx, f.gen));
      } else {
        RecEntry e;
        e.kind = RecEntry::Kind::CtxToken;
        e.spCode = tok.spCode;
        e.ctx = tok.ctx;
        e.slot = slot;
        e.v = tok.v;
        e.frame = frameIdx;
        e.gen = f.gen;
        logAppend(pe, e);
      }
    }
    PODS_CHECK(slot < f.slots.size());
    if (tok.add) {
      std::int64_t cur = f.slots[slot].empty() ? 0 : f.slots[slot].asInt();
      f.slots[slot] = Value::intv(cur + tok.v.asInt());
    } else {
      f.slots[slot] = tok.v;
    }
    if (f.blocked && f.blockedSlot == slot) {
      f.blocked = false;
      f.blockedSlot = kNoSlot;
      w.ready.push_back(frameIdx);
    }
  }

  // --- arrays ---------------------------------------------------------------

  ArrayId allocArray(ArrayShape shape) {
    std::lock_guard<std::mutex> g(storeM);
    arrays.push_back(std::make_unique<NArray>(shape, cfg.numWorkers,
                                              cfg.pageElems, cfg.peWeights));
    return static_cast<ArrayId>(arrays.size() - 1);
  }

  NArray* findArray(ArrayId id) {
    std::lock_guard<std::mutex> g(storeM);
    return id < arrays.size() ? arrays[id].get() : nullptr;
  }

  /// Resolves an array operand for ARD/AWR/RFLO/RFHI/DIMQ. Returns nullptr
  /// after reporting the failure: the operand may hold a non-array value
  /// (ill-typed program) or an id no allocation ever produced (stale or
  /// corrupted handle) — neither may be dereferenced.
  /// Worker mode: resolves (and caches) an array's shm cells, shape, and
  /// ownership layout. `createShape` non-null is the ALLOC create-or-lookup
  /// path; null is lookup-only (the array was allocated by some PE already,
  /// possibly this one). Returns nullptr when the id is unknown (lookup) or
  /// the segment is exhausted (create).
  WArr* wArray(ArrayId id, const ArrayShape* createShape) {
    auto it = warrays.find(id);
    if (it != warrays.end()) return &it->second;
    ShmStore::ArrayRef ref =
        createShape != nullptr
            ? shm->createArray(id, static_cast<std::uint32_t>(createShape->rank),
                               createShape->dim0, createShape->dim1)
            : shm->lookup(id);
    if (!ref.valid()) return nullptr;
    ArrayShape s;
    s.rank = static_cast<int>(ref.rank);
    s.dim0 = ref.dim0;
    s.dim1 = ref.dim1;
    auto [jt, inserted] = warrays.try_emplace(id, ref, s, cfg.numWorkers,
                                              cfg.pageElems, cfg.peWeights);
    (void)inserted;
    return &jt->second;
  }

  /// Worker mode: resolves an array operand against the shm store. Returns
  /// nullptr after reporting the failure (non-array value or unknown id).
  WArr* wArrayOperand(const NFrame& f, std::uint16_t slot, const SpCode& sp,
                      const char* what) {
    const Value& v = f.slots[slot];
    if (!v.isArray()) {
      fail(std::string(what) + " on non-array operand " + v.str() + " in " +
           sp.name);
      return nullptr;
    }
    WArr* a = wArray(v.asArray(), nullptr);
    if (a == nullptr) {
      fail(std::string(what) + " on unknown array id " +
           std::to_string(v.asArray()) + " in " + sp.name);
    }
    return a;
  }

  NArray* arrayOperand(const NFrame& f, std::uint16_t slot, const SpCode& sp,
                       const char* what) {
    const Value& v = f.slots[slot];
    if (!v.isArray()) {
      fail(std::string(what) + " on non-array operand " + v.str() + " in " +
           sp.name);
      return nullptr;
    }
    NArray* a = findArray(v.asArray());
    if (a == nullptr) {
      fail(std::string(what) + " on unknown array id " +
           std::to_string(v.asArray()) + " in " + sp.name);
    }
    return a;
  }

  // --- frame execution --------------------------------------------------------

  enum class Step { Continue, Blocked, Ended, Stopped };

  bool ensure(NFrame& f, std::uint16_t slot) {
    if (slot == kNoSlot || !f.slots[slot].empty()) return true;
    f.blocked = true;
    f.blockedSlot = slot;
    return false;
  }

  // --- wire array store (cfg.store == Wire; native/store.hpp) ----------------
  //
  // Owner-serviced array messages on the ordinary token transport. Every
  // handler below runs on the servicing PE's owner thread, so the ws* maps
  // need no locks; non-local accesses become typed NTokens that ride the
  // same batching/ack/retransmit/dedup machinery as every other token.

  Worker::WsMeta* wireMeta(Worker& w, ArrayId id) {
    auto it = w.wsMeta.find(id);
    return it == w.wsMeta.end() ? nullptr : &it->second;
  }

  Worker::WsMeta& wireRegisterMeta(Worker& w, ArrayId id,
                                   const ArrayShape& s) {
    // try_emplace: a duplicate DimReply (or an ALLOC racing one) is a no-op;
    // layout is a pure function of (shape, config), so copies agree.
    auto [it, inserted] =
        w.wsMeta.try_emplace(id, s, cfg.numWorkers, cfg.pageElems, cfg.peWeights);
    (void)inserted;
    return it->second;
  }

  /// Present element lookup (Tag::Empty means absent — the sparse map may
  /// hold an empty cell only transiently, never as a value).
  const Value* wireFind(Worker& w, ArrayId arr, std::int64_t off) {
    auto ait = w.wsElems.find(arr);
    if (ait == w.wsElems.end()) return nullptr;
    auto it = ait->second.find(off);
    if (it == ait->second.end() || it->second.empty()) return nullptr;
    return &it->second;
  }

  /// In-process allocation: per-PE strided ids (seq * numPEs + pe) make the
  /// allocator of ANY id computable as id % numPEs with no coordination.
  ArrayId newWireId(Worker& w, int pe) {
    return static_cast<ArrayId>(
        (++w.wsArraySeq) * static_cast<std::uint64_t>(cfg.numWorkers) +
        static_cast<unsigned>(pe));
  }

  /// Receive-log record for a serviced array message (worker mode only; the
  /// in-process store survives a kill, so it needs no log). Field mapping is
  /// documented at RecEntry::Kind::Am.
  void logAm(int pe, const NToken& tok) {
    RecEntry e;
    e.kind = RecEntry::Kind::Am;
    e.spCode = tok.amKind;
    e.ctx = tok.ctx;
    e.slot = tok.slot;
    e.senderCtx = tok.senderCtx;
    e.v = tok.v;
    e.sendKey = tok.cont.pack();
    e.msgId = tok.msgId;
    logAppend(pe, e);
  }

  /// The allocator's durable shape record, logged once per minted array so a
  /// respawn can rebuild wsMeta and answer replayed DimReqs. Always precedes
  /// any DimReq for the id in the log: the id escapes this PE only through
  /// sends made after ALLOC executed.
  void logAllocMeta(int pe, ArrayId id, const ArrayShape& s) {
    RecEntry e;
    e.kind = RecEntry::Kind::Am;
    e.spCode = static_cast<std::uint16_t>(AmKind::AllocMeta);
    e.ctx = id;
    e.slot = static_cast<std::uint16_t>(s.rank);
    e.senderCtx = static_cast<std::uint64_t>(s.dim0);
    e.v = Value::intv(s.dim1);
    logAppend(pe, e);
  }

  /// Value reply for a serviced read: an ordinary wake token (the requester's
  /// myParks registry dedups regenerated copies after a kill). During log
  /// replay the transport is not up yet, so replies park in wsDeferred and
  /// ship when the worker loop starts.
  void sendAmReply(int pe, Cont c, const Value& v, std::uint64_t wakeKey) {
    Worker& w = *workers[static_cast<std::size_t>(pe)];
    w.st.amRepliesSent++;
    NToken tok;
    tok.toCont = true;
    tok.cont = c;
    tok.v = v;
    tok.wakeKey = wakeKey;
    if (amDeferSends) {
      w.wsDeferred.emplace_back(static_cast<int>(c.pe), std::move(tok));
      return;
    }
    send(pe, static_cast<int>(c.pe), std::move(tok));
  }

  void sendDimReply(int pe, int requester, ArrayId arr, const ArrayShape& s) {
    Worker& w = *workers[static_cast<std::size_t>(pe)];
    NToken tok;
    tok.amKind = static_cast<std::uint8_t>(AmKind::DimReply);
    tok.ctx = arr;
    tok.slot = static_cast<std::uint16_t>(s.rank);
    tok.senderCtx = static_cast<std::uint64_t>(s.dim0);
    tok.v = Value::intv(s.dim1);
    if (amDeferSends) {
      w.wsDeferred.emplace_back(requester, std::move(tok));
      return;
    }
    send(pe, requester, std::move(tok));
  }

  /// Parks a deferred read at the owner (I-structure semantics). Packed-cont
  /// dedup absorbs a re-executed requester's re-sent ReadReq: frames rebuild
  /// at their original index/generation, so the duplicate is bit-equal.
  void wireParkReader(Worker& w, ArrayId arr, std::int64_t off,
                      std::uint64_t packed) {
    auto& parked = w.wsParks[arr][off];
    if (std::find(parked.begin(), parked.end(), packed) != parked.end())
      return;
    parked.push_back(packed);
    w.st.amParks++;
  }

  /// Applies one element write as owner and drains parked readers. Returns
  /// false after reporting a single-assignment violation. Parks are drained
  /// even on an idempotent identical rewrite (recovery replay): the original
  /// writer may have died between publishing the element and its replies
  /// getting out, or the parks themselves may be log-rebuilt.
  bool wireApplyWrite(int pe, ArrayId arr, std::int64_t off, const Value& v) {
    Worker& w = *workers[static_cast<std::size_t>(pe)];
    Value& elem = w.wsElems[arr][off];
    if (!elem.empty()) {
      if (!(recMode() && elem.identical(v))) {
        fail("single-assignment violation at element " + std::to_string(off));
        return false;
      }
    } else {
      elem = v;
    }
    auto ait = w.wsParks.find(arr);
    if (ait != w.wsParks.end()) {
      auto pit = ait->second.find(off);
      if (pit != ait->second.end()) {
        std::vector<std::uint64_t> parked = std::move(pit->second);
        ait->second.erase(pit);
        if (ait->second.empty()) w.wsParks.erase(ait);
        const std::uint64_t key = elemWakeKey(arr, off);
        for (std::uint64_t packed : parked) {
          w.st.amParkFills++;
          sendAmReply(pe, Cont::unpack(packed), v, key);
        }
      }
    }
    return true;
  }

  /// A DimReply landed: frames blocked on the shape re-execute their array
  /// instruction (pc never advanced past it).
  void wireRequeueShapeWaiters(Worker& w, ArrayId arr) {
    auto it = w.wsShapeWait.find(arr);
    if (it == w.wsShapeWait.end()) return;
    for (std::uint32_t idx : it->second) {
      if (idx >= w.frames.size()) continue;
      NFrame& f = *w.frames[idx];
      if (f.dead || !f.blocked || f.blockedSlot != kNoSlot) continue;
      f.blocked = false;
      w.ready.push_back(idx);
    }
    w.wsShapeWait.erase(it);
  }

  /// Blocks a frame on an unknown array shape and queries the allocator
  /// (id % numPEs) — once per (PE, array). blockedSlot stays kNoSlot so no
  /// slot write can unblock it; only the DimReply requeue does.
  Step wireAwaitShape(int pe, Worker& w, std::uint32_t frameIdx, NFrame& f,
                      ArrayId arr) {
    w.st.amShapeWaits++;
    w.wsShapeWait[arr].push_back(frameIdx);
    f.blocked = true;
    f.blockedSlot = kNoSlot;
    if (w.wsDimReqSent.insert(arr).second) {
      w.st.amDimReqSent++;
      NToken tok;
      tok.amKind = static_cast<std::uint8_t>(AmKind::DimReq);
      tok.ctx = arr;
      tok.slot = static_cast<std::uint16_t>(pe);
      send(pe,
           static_cast<int>(arr % static_cast<ArrayId>(cfg.numWorkers)),
           std::move(tok));
    }
    return Step::Blocked;
  }

  /// Services one typed array message as owner / allocator. Runs on the
  /// receiving PE's owner thread (from deliver) or during log replay
  /// (fromLog: re-applied against the rebuilt store; regenerated replies are
  /// deferred and deduplicated at their requester).
  void handleAm(int pe, const NToken& tok, bool fromLog) {
    Worker& w = *workers[static_cast<std::size_t>(pe)];
    const ArrayId arr = static_cast<ArrayId>(tok.ctx);
    switch (static_cast<AmKind>(tok.amKind)) {
      case AmKind::ReadReq: {
        if (workerMode() && !fromLog) logAm(pe, tok);
        w.st.amReadReqServed++;
        const std::int64_t off = static_cast<std::int64_t>(tok.senderCtx);
        if (const Value* elem = wireFind(w, arr, off)) {
          sendAmReply(pe, tok.cont, *elem, elemWakeKey(arr, off));
        } else {
          wireParkReader(w, arr, off, tok.cont.pack());
        }
        break;
      }
      case AmKind::Write: {
        if (workerMode() && !fromLog) logAm(pe, tok);
        w.st.amWriteApplied++;
        (void)wireApplyWrite(pe, arr, static_cast<std::int64_t>(tok.senderCtx),
                             tok.v);
        break;
      }
      case AmKind::DimReq: {
        if (workerMode() && !fromLog) logAm(pe, tok);
        w.st.amDimReqServed++;
        Worker::WsMeta* m = wireMeta(w, arr);
        if (m == nullptr) {
          // The allocator registers at ALLOC, before the id can escape (and
          // an AllocMeta log record precedes any replayed DimReq), so an
          // unknown id here is a stale or corrupted handle.
          fail("dimension query for unknown array id " + std::to_string(arr));
          return;
        }
        sendDimReply(pe, static_cast<int>(tok.slot), arr, m->shape);
        break;
      }
      case AmKind::DimReply: {
        ArrayShape s;
        s.rank = static_cast<int>(tok.slot);
        s.dim0 = static_cast<std::int64_t>(tok.senderCtx);
        s.dim1 = tok.v.asInt();
        wireRegisterMeta(w, arr, s);
        wireRequeueShapeWaiters(w, arr);
        break;
      }
      default:
        w.st.tokensDropped++;  // decode rejects unknown kinds; belt-and-braces
        break;
    }
  }

  /// Ships replies regenerated by log replay once the transport is running.
  void flushDeferredAm(int pe) {
    Worker& w = *workers[static_cast<std::size_t>(pe)];
    if (w.wsDeferred.empty()) return;
    std::vector<std::pair<int, NToken>> defs;
    defs.swap(w.wsDeferred);
    for (auto& [dest, tok] : defs) send(pe, dest, std::move(tok));
    transport->flush(pe);
  }

  Step step(int pe, std::uint32_t frameIdx, NFrame& f) {
    const SpCode& sp = prog.sp(f.spCode);
    PODS_CHECK(f.pc < sp.code.size());
    const Instr& in = sp.code[f.pc];

    switch (in.op) {
      case Op::LIT: case Op::JMP: case Op::MYPE: case Op::NUMPE:
      case Op::NEWCTX: case Op::MKCONT: case Op::CLEAR: case Op::END:
        break;
      case Op::AWAITN:
        if (!ensure(f, in.b)) return Step::Blocked;
        break;
      case Op::AWR:
        if (!ensure(f, in.a) || !ensure(f, in.b) || !ensure(f, in.c) ||
            !ensure(f, in.dst))
          return Step::Blocked;
        break;
      case Op::RFLO: case Op::RFHI:
        if (!ensure(f, in.a) || !ensure(f, in.b)) return Step::Blocked;
        break;
      default:
        if (!ensure(f, in.a) || !ensure(f, in.b) || !ensure(f, in.c))
          return Step::Blocked;
        break;
    }

    Worker& w = *workers[static_cast<std::size_t>(pe)];
    w.st.instructions++;
    std::uint32_t nextPc = f.pc + 1;

    if (isBinaryOp(in.op)) {
      f.slots[in.dst] = applyBin(in.op, f.slots[in.a], f.slots[in.b]);
      f.pc = nextPc;
      return Step::Continue;
    }
    if (isUnaryOp(in.op)) {
      f.slots[in.dst] = applyUn(in.op, f.slots[in.a]);
      f.pc = nextPc;
      return Step::Continue;
    }

    switch (in.op) {
      case Op::LIT:
        f.slots[in.dst] = in.imm;
        break;
      case Op::JMP:
        nextPc = in.aux;
        break;
      case Op::BRF:
        if (!f.slots[in.a].truthy()) nextPc = in.aux;
        break;
      case Op::MYPE:
        f.slots[in.dst] = Value::intv(pe);
        break;
      case Op::NUMPE:
        f.slots[in.dst] = Value::intv(cfg.numWorkers);
        break;
      case Op::NEWCTX:
        if (recMode()) {
          // Idempotent mint: the n-th NEWCTX of a replayed frame must return
          // the context it handed out before the kill. The counter lives in
          // the stable log so a rebuild never re-mints a pre-kill context.
          RecoveryLog& L = recLogs[static_cast<std::size_t>(pe)];
          const std::uint32_t mseq = f.mintSeq++;
          if (const Value* m = L.findMint(f.ctx, mseq)) {
            f.slots[in.dst] = *m;
            break;
          }
          Value v = Value::intv(static_cast<std::int64_t>(
              jobCtxBase(cfg.jobId) |
              (std::uint64_t(static_cast<unsigned>(pe)) << 40) |
              ++L.ctxCounter));
          logMintRec(pe, f.ctx, mseq, v);
          f.slots[in.dst] = v;
          break;
        }
        f.slots[in.dst] = Value::intv(static_cast<std::int64_t>(
            jobCtxBase(cfg.jobId) |
            (std::uint64_t(static_cast<unsigned>(pe)) << 40) | ++w.ctxCounter));
        break;
      case Op::MKCONT: {
        Cont c;
        c.pe = static_cast<std::uint16_t>(pe);
        c.frame = frameIdx;
        c.slot = static_cast<std::uint16_t>(in.aux);
        c.gen = f.gen;
        f.slots[in.dst] = Value::contv(c);
        break;
      }
      case Op::CLEAR:
        f.slots[in.a] = Value{};
        break;
      case Op::ALLOC:
      case Op::ALLOCD: {
        ArrayShape shape;
        shape.rank = in.dim;
        shape.dim0 = f.slots[in.a].asInt();
        shape.dim1 = in.dim == 2 ? f.slots[in.b].asInt() : 1;
        if (shape.dim0 < 0 || shape.dim1 < 0 ||
            shape.numElems() > (std::int64_t(1) << 26)) {
          fail("bad allocation dimensions");
          return Step::Stopped;
        }
        if (workerMode()) {
          RecoveryLog& L = recLogs[static_cast<std::size_t>(pe)];
          const std::uint32_t mseq = f.mintSeq++;
          Value v;
          if (const Value* m = L.findMint(f.ctx, mseq)) {
            v = *m;  // replayed allocation: same identity, elements survive
          } else {
            v = Value::arrayv(static_cast<ArrayId>(
                (++wArraySeq) * static_cast<std::uint64_t>(cfg.numWorkers) +
                static_cast<unsigned>(pe)));
            logMintRec(pe, f.ctx, mseq, v);
          }
          if (wireStore()) {
            // The allocator's shape record is the array's durable identity:
            // registered locally (it answers DimReqs) and logged so a
            // respawn can rebuild it. Appended whenever replay did NOT
            // rebuild it — a kill can land with the mint stable but the
            // AllocMeta append lost, and the log must self-heal or a later
            // incarnation's replay could see a DimReq with no shape.
            // Duplicate records replay idempotently (try_emplace).
            if (wireMeta(w, v.asArray()) == nullptr)
              logAllocMeta(pe, v.asArray(), shape);
            wireRegisterMeta(w, v.asArray(), shape);
            f.slots[in.dst] = v;
            break;
          }
          // Create-or-lookup even on a mint-log hit: the mint may have
          // reached stable storage while the kill landed before the shm
          // table slot was claimed. createArray is idempotent, so the
          // replayed call either claims the slot now or finds the original
          // (with its elements intact — the segment restore of recovery).
          w.st.shmArrayOps++;
          if (wArray(v.asArray(), &shape) == nullptr) {
            fail("shm array store exhausted in " + sp.name);
            return Step::Stopped;
          }
          f.slots[in.dst] = v;
          break;
        }
        if (wireStore()) {
          // In-process wire store: strided per-PE ids, no coordination. In
          // kill mode the mint log keeps a replayed frame's n-th allocation
          // on its original identity (the element map survives the kill).
          Value v;
          if (killMode()) {
            RecoveryLog& L = recLogs[static_cast<std::size_t>(pe)];
            const std::uint32_t mseq = f.mintSeq++;
            if (const Value* m = L.findMint(f.ctx, mseq)) {
              v = *m;
            } else {
              v = Value::arrayv(newWireId(w, pe));
              L.recordMint(f.ctx, mseq, v);
            }
          } else {
            v = Value::arrayv(newWireId(w, pe));
          }
          wireRegisterMeta(w, v.asArray(), shape);
          f.slots[in.dst] = v;
          break;
        }
        if (killMode()) {
          // Replayed allocation resolves to the array created before the
          // kill — its elements (possibly already written) must survive.
          RecoveryLog& L = recLogs[static_cast<std::size_t>(pe)];
          const std::uint32_t mseq = f.mintSeq++;
          if (const Value* m = L.findMint(f.ctx, mseq)) {
            f.slots[in.dst] = *m;
            break;
          }
          Value v = Value::arrayv(allocArray(shape));
          L.recordMint(f.ctx, mseq, v);
          f.slots[in.dst] = v;
          break;
        }
        f.slots[in.dst] = Value::arrayv(allocArray(shape));
        break;
      }
      case Op::ARD: {
        if (wireStore()) {
          const Value& av = f.slots[in.a];
          if (!av.isArray()) {
            fail("array read on non-array operand " + av.str() + " in " +
                 sp.name);
            return Step::Stopped;
          }
          const ArrayId arrId = av.asArray();
          Worker::WsMeta* m = wireMeta(w, arrId);
          if (m == nullptr) return wireAwaitShape(pe, w, frameIdx, f, arrId);
          const std::int64_t i0 = f.slots[in.b].asInt();
          const std::int64_t i1 = in.c != kNoSlot ? f.slots[in.c].asInt() : 0;
          std::int64_t offset;
          if (!resolveOffset(m->shape, i0, i1, in.c != kNoSlot ? 2 : 1,
                             offset)) {
            fail("array read out of bounds in " + sp.name);
            return Step::Stopped;
          }
          // Split phase, same as every other backend: clear the target slot
          // and continue — downstream consumers block on it via ensure().
          const int owner = m->layout.ownerOfOffset(offset);
          f.slots[in.dst] = Value{};
          Cont c{static_cast<std::uint16_t>(pe), frameIdx, in.dst, f.gen};
          if (owner == pe) {
            w.st.amLocalReads++;
            if (const Value* elem = wireFind(w, arrId, offset)) {
              f.slots[in.dst] = *elem;
            } else {
              // Deferred read at ourselves: park, and register the wake key
              // so the filling write's self-reply is recognized as live.
              wireParkReader(w, arrId, offset, c.pack());
              w.myParks[elemWakeKey(arrId, offset)].insert(c.pack());
            }
            break;
          }
          w.st.amReadReqSent++;
          w.myParks[elemWakeKey(arrId, offset)].insert(c.pack());
          NToken tok;
          tok.amKind = static_cast<std::uint8_t>(AmKind::ReadReq);
          tok.ctx = arrId;
          tok.senderCtx = static_cast<std::uint64_t>(offset);
          tok.slot = static_cast<std::uint16_t>(pe);
          tok.cont = c;
          send(pe, owner, std::move(tok));
          break;
        }
        if (workerMode()) {
          w.st.shmArrayOps++;
          WArr* wa = wArrayOperand(f, in.a, sp, "array read");
          if (wa == nullptr) return Step::Stopped;
          const ArrayId arrId = f.slots[in.a].asArray();
          const std::int64_t i0 = f.slots[in.b].asInt();
          const std::int64_t i1 = in.c != kNoSlot ? f.slots[in.c].asInt() : 0;
          std::int64_t offset;
          if (!resolveOffset(wa->shape, i0, i1, in.c != kNoSlot ? 2 : 1,
                             offset)) {
            fail("array read out of bounds in " + sp.name);
            return Step::Stopped;
          }
          f.slots[in.dst] = Value{};
          Cont c{static_cast<std::uint16_t>(pe), frameIdx, in.dst, f.gen};
          Value v;
          if (shm->parkOrRead(wa->ref, offset, c.pack(), &v)) {
            f.slots[in.dst] = v;
            break;
          }
          // Parked in the shm waiter stack. Register the park locally so
          // (a) the writer's wake is recognized as live, (b) a wake for a
          // park wiped by our own kill is dropped, and (c) the idle sweeper
          // can self-serve the read if the writer died after publishing the
          // element but before its wake tokens made it out (sweepParks).
          w.myParks[elemWakeKey(arrId, offset)].insert(c.pack());
          break;
        }
        NArray* a = arrayOperand(f, in.a, sp, "array read");
        if (a == nullptr) return Step::Stopped;
        const ArrayId arrId = f.slots[in.a].asArray();
        const std::int64_t i0 = f.slots[in.b].asInt();
        const std::int64_t i1 = in.c != kNoSlot ? f.slots[in.c].asInt() : 0;
        std::int64_t offset;
        if (!resolveOffset(a->shape, i0, i1, in.c != kNoSlot ? 2 : 1, offset)) {
          fail("array read out of bounds in " + sp.name);
          return Step::Stopped;
        }
        f.slots[in.dst] = Value{};
        Cont c{static_cast<std::uint16_t>(pe), frameIdx, in.dst, f.gen};
        Value v;
        bool present = false;
        {
          std::lock_guard<std::mutex> g(a->m);
          const Value& elem = a->elems[static_cast<std::size_t>(offset)];
          if (!elem.empty()) {
            v = elem;
            present = true;
          } else {
            auto& wl = a->waiters[offset];
            bool dup = false;
            if (killMode()) {
              // A replayed read re-parks the same continuation its pre-kill
              // instance parked (the waiter list survives the kill); a
              // second entry would fire a second wake into a reused slot.
              for (const ElemWaiter& ew : wl)
                if (ew.cont.pack() == c.pack()) { dup = true; break; }
            }
            if (!dup) wl.push_back(ElemWaiter{c});
          }
        }
        if (present) {
          f.slots[in.dst] = v;
        } else if (killMode()) {
          // Register the park so the wake (whenever the writer fires it) is
          // recognized as live; see Worker::myParks.
          w.myParks[elemWakeKey(arrId, offset)].insert(c.pack());
        }
        break;
      }
      case Op::AWR: {
        if (wireStore()) {
          const Value& av = f.slots[in.a];
          if (!av.isArray()) {
            fail("array write on non-array operand " + av.str() + " in " +
                 sp.name);
            return Step::Stopped;
          }
          const ArrayId arrId = av.asArray();
          Worker::WsMeta* m = wireMeta(w, arrId);
          if (m == nullptr) return wireAwaitShape(pe, w, frameIdx, f, arrId);
          const std::int64_t i0 = f.slots[in.b].asInt();
          const std::int64_t i1 = in.c != kNoSlot ? f.slots[in.c].asInt() : 0;
          std::int64_t offset;
          if (!resolveOffset(m->shape, i0, i1, in.c != kNoSlot ? 2 : 1,
                             offset)) {
            fail("array write out of bounds in " + sp.name);
            return Step::Stopped;
          }
          const int owner = m->layout.ownerOfOffset(offset);
          if (owner == pe) {
            w.st.amLocalWrites++;
            if (!wireApplyWrite(pe, arrId, offset, f.slots[in.dst]))
              return Step::Stopped;
            break;
          }
          // Fire-and-forget: the owner applies, detects violations, and
          // drains parked readers. Delivery is exactly-once (per-link seq
          // windows + msgId dedup), and a kill-replay re-send is an
          // idempotent identical overwrite at the owner.
          w.st.amWriteSent++;
          NToken tok;
          tok.amKind = static_cast<std::uint8_t>(AmKind::Write);
          tok.ctx = arrId;
          tok.senderCtx = static_cast<std::uint64_t>(offset);
          tok.slot = static_cast<std::uint16_t>(pe);
          tok.v = f.slots[in.dst];
          send(pe, owner, std::move(tok));
          break;
        }
        if (workerMode()) {
          w.st.shmArrayOps++;
          WArr* wa = wArrayOperand(f, in.a, sp, "array write");
          if (wa == nullptr) return Step::Stopped;
          const ArrayId arrId = f.slots[in.a].asArray();
          const std::int64_t i0 = f.slots[in.b].asInt();
          const std::int64_t i1 = in.c != kNoSlot ? f.slots[in.c].asInt() : 0;
          std::int64_t offset;
          if (!resolveOffset(wa->shape, i0, i1, in.c != kNoSlot ? 2 : 1,
                             offset)) {
            fail("array write out of bounds in " + sp.name);
            return Step::Stopped;
          }
          Value prev;
          bool wasSet = false;
          std::vector<std::uint64_t> woken;
          shm->write(wa->ref, offset, f.slots[in.dst], &prev, &wasSet, &woken);
          if (wasSet && !prev.identical(f.slots[in.dst])) {
            fail("single-assignment violation at element " +
                 std::to_string(offset));
            return Step::Stopped;
          }
          // Wake every parked reader — also on an identical rewrite,
          // because the original writer may have died between publishing
          // the element and sending the wakes. Receivers drop wakes for
          // parks they no longer hold.
          for (std::uint64_t packed : woken) {
            Cont wc = Cont::unpack(packed);
            NToken tok;
            tok.toCont = true;
            tok.cont = wc;
            tok.v = f.slots[in.dst];
            tok.wakeKey = elemWakeKey(arrId, offset);
            send(pe, wc.pe, std::move(tok));
          }
          break;
        }
        NArray* a = arrayOperand(f, in.a, sp, "array write");
        if (a == nullptr) return Step::Stopped;
        const std::int64_t i0 = f.slots[in.b].asInt();
        const std::int64_t i1 = in.c != kNoSlot ? f.slots[in.c].asInt() : 0;
        std::int64_t offset;
        if (!resolveOffset(a->shape, i0, i1, in.c != kNoSlot ? 2 : 1, offset)) {
          fail("array write out of bounds in " + sp.name);
          return Step::Stopped;
        }
        std::vector<ElemWaiter> woken;
        {
          std::lock_guard<std::mutex> g(a->m);
          Value& elem = a->elems[static_cast<std::size_t>(offset)];
          if (!elem.empty()) {
            if (killMode() && elem.identical(f.slots[in.dst])) {
              // Replayed write of the value this element already holds:
              // single assignment makes it a no-op (no waiter can be parked
              // on a present element), not a violation.
              break;
            }
            fail("single-assignment violation at element " +
                 std::to_string(offset));
            return Step::Stopped;
          }
          elem = f.slots[in.dst];
          auto wit = a->waiters.find(offset);
          if (wit != a->waiters.end()) {
            woken = std::move(wit->second);
            a->waiters.erase(wit);
          }
        }
        for (const ElemWaiter& waiter : woken) {
          NToken tok;
          tok.toCont = true;
          tok.cont = waiter.cont;
          tok.v = f.slots[in.dst];
          if (killMode())
            tok.wakeKey = elemWakeKey(f.slots[in.a].asArray(), offset);
          send(pe, waiter.cont.pe, std::move(tok));
        }
        break;
      }
      case Op::RFLO:
      case Op::RFHI: {
        IdxRange r;
        if (wireStore()) {
          // Answered locally from the cached (or awaited) shape: layout is a
          // pure function of (shape, config), so no owner round-trip needed.
          const Value& av = f.slots[in.a];
          if (!av.isArray()) {
            fail("range filter on non-array operand " + av.str() + " in " +
                 sp.name);
            return Step::Stopped;
          }
          Worker::WsMeta* m = wireMeta(w, av.asArray());
          if (m == nullptr)
            return wireAwaitShape(pe, w, frameIdx, f, av.asArray());
          r = in.dim == 0
                  ? m->layout.ownedRows(pe)
                  : m->layout.ownedColsOfRow(pe, f.slots[in.b].asInt());
        } else if (workerMode()) {
          w.st.shmArrayOps++;
          WArr* wa = wArrayOperand(f, in.a, sp, "range filter");
          if (wa == nullptr) return Step::Stopped;
          r = in.dim == 0
                  ? wa->layout.ownedRows(pe)
                  : wa->layout.ownedColsOfRow(pe, f.slots[in.b].asInt());
        } else {
          NArray* a = arrayOperand(f, in.a, sp, "range filter");
          if (a == nullptr) return Step::Stopped;
          r = in.dim == 0
                  ? a->layout.ownedRows(pe)
                  : a->layout.ownedColsOfRow(pe, f.slots[in.b].asInt());
        }
        f.slots[in.dst] =
            Value::intv((in.op == Op::RFHI ? r.hi : r.lo) - in.off);
        break;
      }
      case Op::BLKLO:
      case Op::BLKHI: {
        IdxRange r = blockPartition(f.slots[in.a].asInt(),
                                    f.slots[in.b].asInt(), pe, cfg.numWorkers);
        f.slots[in.dst] = Value::intv(in.op == Op::BLKHI ? r.hi : r.lo);
        break;
      }
      case Op::DIMQ: {
        if (wireStore()) {
          const Value& av = f.slots[in.a];
          if (!av.isArray()) {
            fail("dimension query on non-array operand " + av.str() + " in " +
                 sp.name);
            return Step::Stopped;
          }
          Worker::WsMeta* m = wireMeta(w, av.asArray());
          if (m == nullptr)
            return wireAwaitShape(pe, w, frameIdx, f, av.asArray());
          f.slots[in.dst] =
              Value::intv(in.dim == 1 ? m->shape.dim1 : m->shape.dim0);
          break;
        }
        if (workerMode()) {
          w.st.shmArrayOps++;
          WArr* wa = wArrayOperand(f, in.a, sp, "dimension query");
          if (wa == nullptr) return Step::Stopped;
          f.slots[in.dst] =
              Value::intv(in.dim == 1 ? wa->shape.dim1 : wa->shape.dim0);
          break;
        }
        NArray* a = arrayOperand(f, in.a, sp, "dimension query");
        if (a == nullptr) return Step::Stopped;
        f.slots[in.dst] =
            Value::intv(in.dim == 1 ? a->shape.dim1 : a->shape.dim0);
        break;
      }
      case Op::SENDA:
      case Op::SENDD: {
        NToken tok;
        tok.spCode = in.targetSp();
        tok.slot = in.targetSlot();
        tok.ctx = static_cast<std::uint64_t>(f.slots[in.b].asInt());
        tok.v = f.slots[in.a];
        const std::uint64_t targetCtx = tok.ctx;
        if (in.op == Op::SENDA) {
          send(pe, pe, std::move(tok));
        } else {
          for (int dest = 0; dest < cfg.numWorkers; ++dest) {
            send(pe, dest, tok);
          }
        }
        // A rebuilt worker parks logged continuation results until the frame
        // that consumed them re-runs; the first send *to* the callee's
        // context is the replay point where its logged replies re-apply.
        if (recMode() && f.replaying) {
          f.sentCtxs.insert(targetCtx);
          if (!w.pendingReplay.empty())
            replayResponsesFor(pe, targetCtx, frameIdx, f);
        }
        break;
      }
      case Op::SENDC:
      case Op::ADDC: {
        Cont c = f.slots[in.b].asCont();
        NToken tok;
        tok.toCont = true;
        tok.cont = c;
        tok.v = f.slots[in.a];
        tok.add = in.op == Op::ADDC;
        if (recMode()) {
          // Logical send identity: deterministic re-execution reproduces the
          // same (sender ctx, sender PE, seq) triple, so receivers can drop
          // the duplicate even though it travels as a brand-new message.
          tok.senderCtx = f.ctx;
          // Pre-increment: seq 0 on PE 0 would pack to the "unkeyed" 0.
          tok.sendKey = packSendKey(pe, ++f.sendSeq);
        }
        send(pe, c.pe, std::move(tok));
        break;
      }
      case Op::AWAITN: {
        std::int64_t count = f.slots[in.a].empty() ? 0 : f.slots[in.a].asInt();
        if (count < f.slots[in.b].asInt()) {
          f.blocked = true;
          f.blockedSlot = in.a;
          return Step::Blocked;
        }
        break;
      }
      case Op::RESULT: {
        std::lock_guard<std::mutex> g(resultM);
        // Multi-process: result slots are process-local (arrays live in shm
        // but results do not), so the store must reach the supervisor's log
        // or a kill after this frame retires loses it. Replay re-execution
        // of an already-applied store (resultSet set from resumeResults)
        // stores the identical value and is not re-logged.
        if (workerMode() && cfg.link != nullptr && !resultSet[in.aux])
          cfg.link->logResult(in.aux, f.slots[in.a]);
        results[in.aux] = f.slots[in.a];
        resultSet[in.aux] = true;
        break;
      }
      case Op::END:
        retireFrame(w, frameIdx, f);
        return Step::Ended;
      default:
        PODS_UNREACHABLE("unhandled opcode");
    }
    f.pc = nextPc;
    return Step::Continue;
  }

  static bool resolveOffset(const ArrayShape& s, std::int64_t i0,
                            std::int64_t i1, int rank, std::int64_t& offset) {
    if (rank == 1) {
      if (i0 < 0 || i0 >= s.numElems()) return false;
      offset = i0;
      return true;
    }
    if (!s.inBounds(i0, i1)) return false;
    offset = s.flatten(i0, i1);
    return true;
  }

  // --- fail-stop recovery (kill mode) ----------------------------------------

  /// The fail-stop itself, run on the victim's own thread: every piece of
  /// volatile PE state is discarded and rebuilt from the stable receive log.
  /// Frames come back at their original indices and generations (the log
  /// records both at creation), END records turn storage back into retired
  /// stubs with the same post-retirement generation, and every live frame
  /// re-executes from pc 0. Logged continuation results are parked and
  /// re-delivered on demand (see replayResponsesFor). The inbox and the
  /// WorkerStats ledger are deliberately untouched: in-flight tokens belong
  /// to the network, and the rebuilt live-frame count equals the discarded
  /// one, so the quiescence charges remain exact.
  void performKill(int pe) {
    Worker& w = *workers[static_cast<std::size_t>(pe)];
    killFired = true;
    w.frames.clear();
    w.freeList.clear();
    w.match.clear();
    w.ready.clear();
    w.rx.resetReceiver();
    w.dedup.clear();
    w.pendingReplay.clear();
    w.myParks.clear();
    // Wire store: the shape-wait and in-flight-DimReq registries reference
    // the wiped frames — re-executed frames re-block and re-query. The
    // element/park/meta maps and the allocation counter are *store* state,
    // not PE state (like the NArray heap / shm segment): an in-process kill
    // leaves them intact; a respawned process starts empty and rebuilds them
    // from the Am records below.
    w.wsShapeWait.clear();
    w.wsDimReqSent.clear();
    w.wsDeferred.clear();
    // Replies regenerated by Am replay cannot be sent yet (worker mode runs
    // this before any transport thread exists); they park in wsDeferred and
    // ship when the worker loop starts. Only set in worker mode — a single
    // worker thread — so no other thread can race the flag.
    const bool deferAm = workerMode() && wireStore();
    if (deferAm) amDeferSends = true;
    RecoveryLog& L = recLogs[static_cast<std::size_t>(pe)];
    for (std::size_t i = 0; i < L.entries.size(); ++i) {
      const RecEntry& e = L.entries[i];
      switch (e.kind) {
        case RecEntry::Kind::Boot:
        case RecEntry::Kind::CtxToken: {
          std::uint32_t idx;
          auto it = w.match.find(e.ctx);
          if (it == w.match.end()) {
            idx = e.frame;
            PODS_CHECK_MSG(idx <= w.frames.size(),
                           "recovery log creates frames out of order");
            if (idx == w.frames.size()) {
              w.frames.push_back(std::make_unique<NFrame>());
            } else {
              PODS_CHECK_MSG(w.frames[idx]->dead,
                             "recovery log reuses a live frame index");
            }
            NFrame& nf = *w.frames[idx];
            nf.spCode = e.spCode;
            nf.ctx = e.ctx;
            nf.pc = 0;
            nf.blockedSlot = kNoSlot;
            nf.gen = e.gen;
            nf.blocked = false;
            nf.dead = false;
            nf.sendSeq = 0;
            nf.mintSeq = 0;
            nf.replaying = true;
            nf.sentCtxs.clear();
            nf.slots.assign(prog.sp(e.spCode).numSlots, Value{});
            w.match[e.ctx] = idx;
          } else {
            idx = it->second;
          }
          if (e.kind == RecEntry::Kind::CtxToken) {
            w.dedup.firstCtx(e.ctx, e.slot);
            w.frames[idx]->slots[e.slot] = e.v;
          }
          break;
        }
        case RecEntry::Kind::ConToken:
          // Held back until the re-executing consumer re-sends to the
          // original sender's context, so multi-round slots refill in
          // program order. The consumer frame exists in its original
          // incarnation by log order (creations/Ends replay in sequence).
          PODS_CHECK_MSG(e.frame < w.frames.size(),
                         "replayed delivery targets an unknown frame");
          w.dedup.firstCont(w.frames[e.frame]->ctx, e.senderCtx, e.sendKey);
          w.pendingReplay[e.senderCtx].push_back(i);
          break;
        case RecEntry::Kind::End: {
          auto it = w.match.find(e.ctx);
          PODS_CHECK_MSG(it != w.match.end(),
                         "recovery log retires an unknown context");
          NFrame& nf = *w.frames[it->second];
          nf.dead = true;
          nf.gen = static_cast<std::uint16_t>((nf.gen + 1) & Cont::kGenMask);
          nf.slots.clear();
          w.rx.retireCtx(e.ctx);
          w.dedup.retire(e.ctx);
          L.mints.erase(e.ctx);
          w.match.erase(it);
          break;
        }
        case RecEntry::Kind::Recv:
          // Multi-process: a wire-accepted inbound msgId (sender incarnation
          // in `gen`). Re-prime the UDP receive-dedup and ackable windows so
          // a survivor's retransmits of old-numbered tokens still dedup and
          // ack instead of double-applying — runs before transport threads
          // exist (a no-op on in-process transports).
          transport->primeRecv(e.msgId, static_cast<std::uint8_t>(e.gen));
          break;
        case RecEntry::Kind::Am: {
          if (static_cast<AmKind>(e.spCode) == AmKind::AllocMeta) {
            ArrayShape s;
            s.rank = static_cast<int>(e.slot);
            s.dim0 = static_cast<std::int64_t>(e.senderCtx);
            s.dim1 = e.v.asInt();
            wireRegisterMeta(w, static_cast<ArrayId>(e.ctx), s);
            break;
          }
          // Re-service the logged array message against the rebuilding
          // store, in its original receive order: writes are idempotent
          // identical overwrites, re-parked reads dedup by packed cont, and
          // regenerated replies are deferred here and deduplicated at the
          // requester (its myParks registry drops wakes for parks it no
          // longer holds).
          NToken t;
          t.amKind = static_cast<std::uint8_t>(e.spCode);
          t.ctx = e.ctx;
          t.slot = e.slot;
          t.senderCtx = e.senderCtx;
          t.v = e.v;
          t.cont = Cont::unpack(e.sendKey);
          handleAm(pe, t, /*fromLog=*/true);
          break;
        }
      }
    }
    if (deferAm) amDeferSends = false;
    for (std::uint32_t idx = 0;
         idx < static_cast<std::uint32_t>(w.frames.size()); ++idx) {
      if (w.frames[idx]->dead) {
        w.freeList.push_back(idx);
      } else {
        w.ready.push_back(idx);
        recReplayedFrames++;
      }
    }
  }

  /// On-demand re-delivery of parked responses: frame `frameIdx` (re-)sent a
  /// token to context `target`, so every parked continuation delivery *from*
  /// that context *into* this frame instance is due now. Entries addressed
  /// to other frames stay parked.
  void replayResponsesFor(int pe, std::uint64_t target, std::uint32_t frameIdx,
                          NFrame& f) {
    Worker& w = *workers[static_cast<std::size_t>(pe)];
    auto it = w.pendingReplay.find(target);
    if (it == w.pendingReplay.end()) return;
    auto& idxs = it->second;
    const RecoveryLog& L = recLogs[static_cast<std::size_t>(pe)];
    for (std::size_t i = 0; i < idxs.size();) {
      const RecEntry& e = L.entries[idxs[i]];
      if (e.frame != frameIdx || e.gen != f.gen) {
        ++i;
        continue;
      }
      PODS_CHECK_MSG(e.slot < f.slots.size(), "replayed slot out of range");
      if (e.add) {
        std::int64_t cur =
            f.slots[e.slot].empty() ? 0 : f.slots[e.slot].asInt();
        f.slots[e.slot] = Value::intv(cur + e.v.asInt());
      } else {
        f.slots[e.slot] = e.v;
      }
      recReplayedTokens++;
      idxs.erase(idxs.begin() + static_cast<std::ptrdiff_t>(i));
    }
    if (idxs.empty()) w.pendingReplay.erase(it);
  }

  // --- worker loop ------------------------------------------------------------

  /// True when any inbox lane (ring or overflow) holds a token. Racy by
  /// itself; conclusive inside the sleep handshake (after sleeping=true +
  /// seq_cst fence) and in the cv predicate (under w.m).
  bool inboxNonEmpty(Worker& w) const {
    for (int l = 0; l < w.laneCount; ++l) {
      SpscRing<NToken>* ring = w.lanes[l].load(std::memory_order_acquire);
      if (ring && !ring->empty()) return true;
    }
    return w.overflowCount.load(std::memory_order_relaxed) > 0;
  }

  /// Consumes one inbox token on the owner thread. In worker mode the wire
  /// accept is logged first (a Recv record carrying msgId + sender epoch)
  /// and its stream position handed to the transport: the cumulative ack
  /// for this sequence may go out only once that record is stable at the
  /// supervisor — output commit; never ack what stable storage hasn't seen.
  void consumeInboxToken(int pe, const NToken& tok) {
    if (workerMode()) {
      RecEntry e;
      e.kind = RecEntry::Kind::Recv;
      e.msgId = tok.msgId;
      e.gen = tok.epoch;
      const std::uint64_t seq = logAppend(pe, e);
      transport->noteDrained(tok.msgId, tok.epoch, seq);
    }
    deliver(pe, tok);
    finishPending();  // token consumed
  }

  void drainInbox(int pe) {
    Worker& w = *workers[static_cast<std::size_t>(pe)];
    std::int64_t drained = 0;
    NToken tok;
    for (int l = 0; l < w.laneCount; ++l) {
      SpscRing<NToken>* ring = w.lanes[l].load(std::memory_order_acquire);
      if (!ring) continue;
      while (ring->tryPop(tok)) {
        inboxTokens.fetch_sub(1);
        ++drained;
        consumeInboxToken(pe, tok);
      }
    }
    if (w.overflowCount.load(std::memory_order_relaxed) > 0) {
      std::deque<NToken> batch;
      {
        std::lock_guard<std::mutex> g(w.m);
        batch.swap(w.overflow);
        w.overflowCount.store(0, std::memory_order_relaxed);
      }
      inboxTokens.fetch_sub(static_cast<std::int64_t>(batch.size()));
      drained += static_cast<std::int64_t>(batch.size());
      for (NToken& t : batch) {
        consumeInboxToken(pe, t);
      }
    }
    w.st.tokensIn += drained;
  }

  void finishPending() {
    // Worker mode: a local zero is NOT global termination — a peer process
    // may still send tokens here. The supervisor decides the end of the run
    // (Poll/Status rounds) and stops this worker with an End frame.
    if (pending.fetch_sub(1) == 1 && !workerMode()) {
      stop.store(true);
      for (auto& w : workers) {
        std::lock_guard<std::mutex> g(w->m);
        w->cv.notify_all();
      }
    }
  }

  void runSlice(int pe, std::uint32_t frameIdx) {
    Worker& w = *workers[static_cast<std::size_t>(pe)];
    NFrame& f = *w.frames[frameIdx];
    if (f.dead) return;
    for (int k = 0; k < cfg.sliceInstructions; ++k) {
      Step s = step(pe, frameIdx, f);
      if (s == Step::Continue) continue;
      // Worker mode holds the retired frame's pending charge through the
      // END-retire barrier; pumpRetiring releases it with the End record.
      if (s == Step::Ended && !workerMode()) finishPending();  // frame retired
      return;  // Blocked / Ended / Stopped
    }
    // Slice budget exhausted: requeue and let the inbox drain.
    w.ready.push_back(frameIdx);
  }

  // --- worker-mode deferred retirement + park sweeping -----------------------

  /// Completes retirements whose END barrier has passed: every send the
  /// frame made is acked under the current epochs, so its output is in the
  /// receivers' stable logs and the End record can safely enter ours. FIFO
  /// order keeps End records in retirement order, and storage is recycled
  /// only here — replay must never see a frame index reused before its
  /// previous occupant's End.
  void pumpRetiring(int pe) {
    Worker& w = *workers[static_cast<std::size_t>(pe)];
    while (!retiring.empty()) {
      const Retiring& r = retiring.front();
      if (!transport->barrierPassed(r.snap)) return;
      RecEntry e;
      e.kind = RecEntry::Kind::End;
      e.ctx = r.ctx;
      logAppend(pe, e);
      recLogs[static_cast<std::size_t>(pe)].mints.erase(r.ctx);
      w.freeList.push_back(r.frameIdx);
      retiring.pop_front();
      finishPending();  // the frame's live charge, held through the barrier
    }
  }

  /// Self-serves parked reads whose element has appeared in shm without the
  /// wake token arriving. That happens in exactly one failure shape: the
  /// writer completed its write (element published, waiter stack drained)
  /// and died before its wake tokens were delivered — its replay re-drains
  /// an already-empty stack, so nobody will ever re-send the wake. Run from
  /// the idle path; a benign race with an in-flight wake resolves at
  /// deliver(), which drops whichever copy comes second (myParks registry).
  void sweepParks(int pe) {
    Worker& w = *workers[static_cast<std::size_t>(pe)];
    if (w.myParks.empty()) return;
    for (auto it = w.myParks.begin(); it != w.myParks.end();) {
      const std::uint64_t key = it->first;
      const ArrayId arr = static_cast<ArrayId>((key >> 40) & 0x7FFFFFu);
      const std::int64_t off =
          static_cast<std::int64_t>(key & ((1ULL << 40) - 1));
      WArr* wa = wArray(arr, nullptr);
      Value v;
      if (wa == nullptr || !shm->tryRead(wa->ref, off, &v)) {
        ++it;
        continue;
      }
      std::vector<std::uint64_t> conts(it->second.begin(), it->second.end());
      ++it;  // deliver() erases this key from myParks; advance first
      for (std::uint64_t packed : conts) {
        NToken tok;
        tok.toCont = true;
        tok.cont = Cont::unpack(packed);
        tok.v = v;
        tok.wakeKey = key;
        deliver(pe, tok);  // local self-delivery: no quiescence charges
      }
    }
  }

  void workerMain(int pe) {
    Worker& w = *workers[static_cast<std::size_t>(pe)];
    const bool killTarget = killMode() && pe == cfg.faults.killPe;
    const bool wmode = workerMode();
    // Respawn replay may have regenerated array-message replies before the
    // transport was up; the loop owns the transport now, so ship them.
    if (wireStore()) flushDeferredAm(pe);
    int slicesSinceFlush = 0;
    while (!stop.load()) {
      if (killTarget && !killFired &&
          std::chrono::steady_clock::now() >= killAt) {
        performKill(pe);
      }
      drainInbox(pe);
      if (wmode && !retiring.empty()) pumpRetiring(pe);
      if (!w.ready.empty()) {
        std::uint32_t idx = w.ready.front();
        w.ready.pop_front();
        runSlice(pe, idx);
        // A worker with a deep ready queue still ships its outboxes every
        // few slices — enough slack for sends to coalesce into near-full
        // batches, without leaning on the transport's deadline timer (and
        // its extra thread wake-ups) for the steady-state flow.
        if (++slicesSinceFlush >= 4) {
          transport->flush(pe);
          if (wmode) transport->pumpAcks();
          slicesSinceFlush = 0;
        }
        continue;
      }
      slicesSinceFlush = 0;
      // Out of local work: ship any tokens coalescing in this worker's
      // transport outboxes. Every path from a send to the cv-wait below
      // passes through here, so batching can never park the last wake-up a
      // peer is waiting for; while the worker stays busy, outboxes keep
      // coalescing and the transport's deadline timer bounds their latency.
      transport->flush(pe);
      if (wmode) {
        transport->pumpAcks();
        pumpRetiring(pe);
        // The park sweeper reads elements straight from shm — LocalStore
        // only. Under the wire store the equivalent failure shape (writer
        // died after applying, before its replies got out) is covered by Am
        // log replay regenerating the replies at the owner.
        if (!wireStore()) sweepParks(pe);
      }
      drainInbox(pe);
      if (!w.ready.empty()) continue;
      // Idle: publish sleeping, re-check the rings, register, run the
      // quiescence check, then block on the cv until a token push or stop
      // notifies us (no timeout — once sleeping is visible every producer
      // notifies under w.m, so a wakeup can't be missed; the seq_cst fence
      // pairs with the one in deposit()).
      std::unique_lock<std::mutex> g(w.m);
      w.sleeping.store(true, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (inboxNonEmpty(w) || stop.load()) {
        w.sleeping.store(false, std::memory_order_relaxed);
        continue;
      }
      w.st.idleTransitions++;
      idleWorkers.fetch_add(1);
      if (!wmode) {
        const std::uint64_t e1 = wakeEpoch.load();
        if (idleWorkers.load() == cfg.numWorkers && inboxTokens.load() == 0 &&
            pending.load() > 0 && wakeEpoch.load() == e1 && !stop.load()) {
          // Stable double-collect: no worker woke between the two epoch
          // reads, so all of them were idle across every read above — the
          // frames counted in `pending` can never be fed another token.
          g.unlock();
          fail("deadlock: " + std::to_string(pending.load()) +
               " live SPs blocked forever");
          idleWorkers.fetch_sub(1);
          w.sleeping.store(false, std::memory_order_relaxed);
          continue;
        }
      }
      if (wmode || (killTarget && !killFired)) {
        // Timed waits: the kill victim must observe its wall-clock deadline
        // even while idle, and a multiproc worker must keep re-polling
        // gated flushes, pending acks, the END barrier, and the park
        // sweeper — and its run ends out-of-band (ctl End → requestStop).
        // Local counters cannot distinguish deadlock from "peer busy", so
        // the double-collect above is the supervisor's job in worker mode
        // (Poll/Status rounds). Spurious timeouts just bump the epoch.
        w.cv.wait_for(g, std::chrono::milliseconds(1),
                      [&] { return inboxNonEmpty(w) || stop.load(); });
      } else {
        w.cv.wait(g, [&] { return inboxNonEmpty(w) || stop.load(); });
      }
      w.sleeping.store(false, std::memory_order_relaxed);
      idleWorkers.fetch_sub(1);
      wakeEpoch.fetch_add(1);  // deregister first, bump second, consume last
    }
  }

  NativeResult run() {
    if (supervisorMode()) {
      // The machine object is a shell in supervisor mode: the run happens
      // in forked worker processes. runSupervisor creates the shm segment
      // (handed back here so gather() can read result arrays) and drives
      // the fleet — fork, boot, heartbeats, kill recovery, termination.
      return procmgr::runSupervisor(prog, cfg, shm, wireGathered);
    }
    if (killMode() && cfg.faults.killPe >= cfg.numWorkers) {
      NativeResult bad;
      bad.ok = false;
      bad.error = "kill fault targets worker " +
                  std::to_string(cfg.faults.killPe) + " but only " +
                  std::to_string(cfg.numWorkers) + " workers exist";
      return bad;
    }
    auto t0 = std::chrono::steady_clock::now();
    if (workerMode()) {
      // Segment attach — on respawn this is the segment-restore step of
      // recovery: the I-structure elements written before the kill are in
      // the supervisor-owned mapping, untouched by this process's death.
      // The wire store has no segment at all: elements live in per-PE owned
      // maps and are restored from the Am records of the receive log.
      if (cfg.store == StoreKind::Local) {
        std::string serr;
        shm = ShmStore::open(cfg.shmName, &serr);
        if (shm == nullptr) {
          NativeResult bad;
          bad.ok = false;
          bad.error = "shm open failed: " + serr;
          return bad;
        }
      }
      const int pe = cfg.localPe;
      // Re-apply logged RESULT stores before replay: with the slot already
      // marked set, a replayed frame's re-execution of the store is a
      // silent overwrite with the identical value, not a fresh log append.
      for (const auto& [slot, v] : cfg.resumeResults) {
        if (slot < resultSet.size()) {
          results[slot] = v;
          resultSet[slot] = true;
        }
      }
      if (cfg.resume) {
        // Log replay: the supervisor shipped our full recovery stream in
        // Boot. Rebuild frames/mints/dedup and re-prime the UDP windows
        // (performKill's Recv records) before any transport thread exists.
        RecoveryLog& L = recLogs[static_cast<std::size_t>(pe)];
        L = std::move(cfg.resumeLog);
        for (const auto& [ctx, m] : L.mints) {
          (void)ctx;
          for (const auto& [mseq, v] : m) {
            (void)mseq;
            if (v.isArray())
              wArraySeq = std::max(
                  wArraySeq, (static_cast<std::uint64_t>(v.asArray()) -
                              static_cast<unsigned>(pe)) /
                                 static_cast<std::uint64_t>(cfg.numWorkers));
          }
        }
        performKill(pe);
        // In-process kill recovery inherits the machine's surviving ledger
        // (the original createFrame charges were never released), but this
        // is a fresh process: charge pending once per live frame the replay
        // rebuilt, or their eventual retirement drives the ledger negative
        // and the supervisor's termination count is off by the replay size.
        pending.fetch_add(static_cast<std::int64_t>(
            workers[static_cast<std::size_t>(pe)]->ready.size()));
        // Same story for the stats ledger: count every frame the replay
        // instantiated as created and every replayed-End stub as retired,
        // so this incarnation's framesCreated/framesRetired balance once
        // its live frames run to completion (the dead incarnation's
        // counters died with it — the supervisor only merges ours).
        {
          Worker& rw = *workers[static_cast<std::size_t>(pe)];
          for (const auto& fp : rw.frames) {
            rw.st.framesCreated++;
            rw.st.liveFrames.inc();
            if (fp->dead) {
              rw.st.framesRetired++;
              rw.st.liveFrames.dec();
            }
          }
        }
        if (pe == 0 && L.entries.empty()) {
          // PE 0 died before its Boot record reached the supervisor: the
          // resume log is empty, so nothing rebuilt main. Boot it fresh —
          // the stream always starts with Boot, so emptiness is the exact
          // "nothing ever stabilized" case.
          RecEntry boot;
          boot.kind = RecEntry::Kind::Boot;
          boot.spCode = prog.mainSp;
          boot.ctx = jobCtxBase(cfg.jobId);
          logAppend(0, boot);
          createFrame(*workers[0], prog.mainSp, jobCtxBase(cfg.jobId));
        }
      } else if (pe == 0) {
        // First boot of PE 0: log the bootstrap frame (it is not spawned by
        // a token) so a later kill of this process can rebuild main.
        RecEntry boot;
        boot.kind = RecEntry::Kind::Boot;
        boot.spCode = prog.mainSp;
        boot.ctx = jobCtxBase(cfg.jobId);
        logAppend(0, boot);
        createFrame(*workers[0], prog.mainSp, jobCtxBase(cfg.jobId));
      }
      // Execution (and on resume, re-sending) begins only on the
      // supervisor's Start — it is gating the respawn barrier.
      if (cfg.link != nullptr && !cfg.link->waitStart()) {
        NativeResult bad;
        bad.ok = false;
        bad.error = "aborted before Start";
        return bad;
      }
    } else {
      if (killMode()) {
        killAt = t0 + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double, std::micro>(
                              cfg.faults.killTimeUs));
        // The boot frame is not spawned by a token; log it so a kill of
        // worker 0 can rebuild main.
        RecEntry boot;
        boot.kind = RecEntry::Kind::Boot;
        boot.spCode = prog.mainSp;
        boot.ctx = jobCtxBase(cfg.jobId);
        recLogs[0].entries.push_back(boot);
      }
      // Boot main on worker 0 via a spawn token carrying no payload slot —
      // create the frame directly instead (main may take no arguments).
      createFrame(*workers[0], prog.mainSp, jobCtxBase(cfg.jobId));
    }
    // Transport service threads (retransmit daemon, UDP sockets/receivers)
    // come up before the workers so no send can outrun them.
    std::string terr;
    if (!transport->start(&terr)) {
      NativeResult bad;
      bad.ok = false;
      bad.error = terr.empty() ? "transport failed to start" : terr;
      return bad;
    }
    if (cfg.abort != nullptr) {
      // Idle workers block in untimed cv waits and cannot observe a bare
      // flag, so a monitor thread watches it and fails the run (which
      // notifies everyone). Exits on `stop` — always set by the time the
      // workers have joined.
      monitorThread = std::thread([this] {
        while (!stop.load()) {
          if (cfg.abort->load()) {
            fail("aborted: external stop requested (watchdog); " +
                 std::to_string(inboxTokens.load()) +
                 " tokens in flight, pending=" +
                 std::to_string(pending.load()));
            break;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      });
    }
    // Pool mode (serving daemon): worker bodies run on a warm external
    // pool; completion is a counted latch instead of join().
    std::atomic<int> liveBodies{0};
    std::mutex poolDoneM;
    std::condition_variable poolDoneCv;
    for (int i = 0; i < cfg.numWorkers; ++i) {
      // Worker mode: exactly one PE runs in this process.
      if (workerMode() && i != cfg.localPe) continue;
      if (cfg.pool != nullptr) {
        liveBodies.fetch_add(1, std::memory_order_relaxed);
        cfg.pool->dispatch([this, i, &liveBodies, &poolDoneM, &poolDoneCv] {
          workerMain(i);
          std::lock_guard<std::mutex> g(poolDoneM);
          if (liveBodies.fetch_sub(1, std::memory_order_acq_rel) == 1)
            poolDoneCv.notify_all();
        });
      } else {
        workers[static_cast<std::size_t>(i)]->thread =
            std::thread([this, i] { workerMain(i); });
      }
    }
    if (cfg.pool != nullptr) {
      std::unique_lock<std::mutex> g(poolDoneM);
      poolDoneCv.wait(g, [&] {
        return liveBodies.load(std::memory_order_acquire) == 0;
      });
    }
    for (auto& w : workers)
      if (w->thread.joinable()) w->thread.join();
    // Workers have joined: no further send() is possible, so the transport
    // can quiesce its service threads.
    transport->stop();
    if (monitorThread.joinable()) monitorThread.join();
    auto t1 = std::chrono::steady_clock::now();

    NativeResult out;
    out.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
    out.results = results;
    out.resultsSet.reserve(resultSet.size());
    for (const bool set : resultSet)
      out.resultsSet.push_back(set ? 1 : 0);
    out.error = error;
    if (out.error.empty() && !workerMode()) {
      // Worker mode: RESULT slots may have been stored by OTHER processes;
      // the supervisor checks completeness after merging every Result.
      for (std::size_t r = 0; r < resultSet.size(); ++r) {
        if (!resultSet[r]) {
          out.error = "program result " + std::to_string(r) + " never set";
          break;
        }
      }
    }
    out.ok = out.error.empty();

    // Per-worker counters (threads joined: owner-only state is now visible),
    // rolled up into the aggregate "native.*" namespace.
    std::int64_t frames = 0, tokens = 0;
    for (const auto& w : workers) {
      Counters c;
      c.add("tokensIn", w->st.tokensIn);
      c.add("tokensOut", w->st.tokensOut);
      c.add("tokensDropped", w->st.tokensDropped);
      c.add("framesCreated", w->st.framesCreated);
      c.add("framesRetired", w->st.framesRetired);
      c.add("framesReused", w->st.framesReused);
      c.add("framesPeak", w->st.liveFrames.peak());
      c.add("framesLive", w->st.liveFrames.current());
      c.add("idleTransitions", w->st.idleTransitions);
      c.add("instructions", w->st.instructions);
      c.add("dupSuppressed", w->st.dupSuppressed);
      out.counters.mergePrefixed(c, "native.");
      out.perWorker.push_back(std::move(c));
      frames += w->st.framesCreated;
      tokens += w->st.tokensOut;
    }
    if (wireStore()) {
      // Array-message ledger ("net.am.*"). Fault-free invariants the tests
      // assert: readReqSent == readReqServed, writeSent == writeApplied,
      // dimReqSent == dimReqServed, parks == parkFills (summed over PEs —
      // in multi-process mode after the supervisor merges every worker).
      Counters am;
      for (const auto& w : workers) {
        am.add("readReqSent", w->st.amReadReqSent);
        am.add("readReqServed", w->st.amReadReqServed);
        am.add("writeSent", w->st.amWriteSent);
        am.add("writeApplied", w->st.amWriteApplied);
        am.add("dimReqSent", w->st.amDimReqSent);
        am.add("dimReqServed", w->st.amDimReqServed);
        am.add("repliesSent", w->st.amRepliesSent);
        am.add("parks", w->st.amParks);
        am.add("parkFills", w->st.amParkFills);
        am.add("localReads", w->st.amLocalReads);
        am.add("localWrites", w->st.amLocalWrites);
        am.add("shapeWaits", w->st.amShapeWaits);
      }
      out.counters.mergePrefixed(am, "net.am.");
    }
    // Accesses served through the shm segment — the acceptance proof that
    // --store=wire routes ALL array traffic over the transport is this
    // counter staying 0 (it only moves in worker mode under LocalStore).
    std::int64_t shmOps = 0;
    for (const auto& w : workers) shmOps += w->st.shmArrayOps;
    out.counters.add("native.shmArrayOps", shmOps);
    // Legacy aliases kept stable for existing consumers; "native.instructions"
    // already exists via the prefixed merge above.
    out.counters.add("native.frames", frames);
    out.counters.add("native.tokens", tokens);
    // Workers skip this one: the supervisor adds it exactly once, or the
    // merged total would read N * numWorkers.
    if (!workerMode()) out.counters.add("native.workers", cfg.numWorkers);
    // Inbox SPSC-ring overflow spills (tokens that fell back to the mutex
    // deque because a ring was full) — zero in healthy runs.
    std::int64_t overflow = 0;
    for (const auto& w : workers)
      overflow += w->overflowTotal.load(std::memory_order_relaxed);
    out.counters.add("native.inboxOverflow", overflow);
    // Transport-side counters (fault.drops/dups/delays, net.retx.resent,
    // per-link breakdown, UDP wire totals); machine-side fault counters stay
    // here because stalls and receiver dedup happen at delivery, not in the
    // transport.
    transport->addStats(out.counters);
    if (trackStragglers()) {
      // Receiver-half protocol counters (msgId dedup, straggler triage)
      // accumulate inside each worker's proto::Delivery endpoint; roll them
      // up here so faulty runs report the canonical counter-name set.
      for (const auto& w : workers) w->rx.addStats(out.counters);
    }
    if (plan.enabled()) {
      out.counters.add("fault.stalls", faultStalls.load());
      proto::Delivery::registerInjectionCounters(out.counters);
    }
    if (killMode() || (workerMode() && cfg.resume)) {
      // In multi-process mode fault.kills is the supervisor's counter (it
      // performs the kills); a resumed worker reports only the replay side.
      if (killMode()) out.counters.add("fault.kills", killFired ? 1 : 0);
      out.counters.add("recovery.replayedFrames", recReplayedFrames);
      out.counters.add("recovery.replayedTokens", recReplayedTokens);
      out.counters.add("recovery.parkedEarly", recParkedEarly);
      // Post-END ledger residency: bounded by live instances (recovery.hpp).
      std::int64_t liveKeys = 0, liveMints = 0;
      for (const auto& w : workers) liveKeys += w->dedup.liveKeys();
      for (const RecoveryLog& L : recLogs)
        for (const auto& [ctx, m] : L.mints)
          liveMints += static_cast<std::int64_t>(m.size());
      out.counters.add("recovery.dedup.liveKeys", liveKeys);
      out.counters.add("recovery.mints.live", liveMints);
    }
    return out;
  }
};

NativeMachine::NativeMachine(const SpProgram& prog, NativeConfig cfg)
    : impl_(std::make_unique<Impl>(prog, cfg)) {}

NativeMachine::~NativeMachine() = default;

NativeResult NativeMachine::run() { return impl_->run(); }

std::optional<NativeArray> NativeMachine::gather(ArrayId id) const {
  if (impl_->cfg.store == StoreKind::Wire) {
    if (impl_->supervisorMode()) {
      // Merged from the workers' Result frames (each ships its owned slice).
      auto it = impl_->wireGathered.find(id);
      if (it == impl_->wireGathered.end()) return std::nullopt;
      return it->second;
    }
    // In-process (threads joined — unguarded reads are safe) or a worker's
    // own view: shape from any meta holder, elements from every owner.
    const ArrayShape* shape = nullptr;
    for (const auto& w : impl_->workers) {
      auto mit = w->wsMeta.find(id);
      if (mit != w->wsMeta.end()) {
        shape = &mit->second.shape;
        break;
      }
    }
    if (shape == nullptr) return std::nullopt;
    NativeArray view;
    view.shape = *shape;
    view.elems.assign(static_cast<std::size_t>(shape->numElems()), Value{});
    for (const auto& w : impl_->workers) {
      auto eit = w->wsElems.find(id);
      if (eit == w->wsElems.end()) continue;
      for (const auto& [off, v] : eit->second) {
        if (off >= 0 && off < static_cast<std::int64_t>(view.elems.size()))
          view.elems[static_cast<std::size_t>(off)] = v;
      }
    }
    return view;
  }
  if (impl_->shm != nullptr) {
    // Multi-process mode: arrays live in the shm I-structure segment.
    ShmStore::ArrayRef ref = impl_->shm->lookup(id);
    if (!ref.valid()) return std::nullopt;
    NativeArray view;
    view.shape.rank = static_cast<int>(ref.rank);
    view.shape.dim0 = ref.dim0;
    view.shape.dim1 = ref.dim1;
    impl_->shm->gather(ref, &view.elems);
    return view;
  }
  if (id >= impl_->arrays.size()) return std::nullopt;
  // Post-run (threads joined), so unguarded reads are safe.
  NArray& a = *impl_->arrays[id];
  NativeArray view;
  view.shape = a.shape;
  view.elems = a.elems;
  return view;
}

std::vector<WireArrayPart> NativeMachine::wireArrayParts() const {
  std::vector<WireArrayPart> parts;
  if (impl_->cfg.store != StoreKind::Wire) return parts;
  std::unordered_map<ArrayId, std::size_t> idx;
  auto partFor = [&](ArrayId id) -> WireArrayPart& {
    auto [it, inserted] = idx.try_emplace(id, parts.size());
    if (inserted) {
      parts.emplace_back();
      parts.back().id = id;
    }
    return parts[it->second];
  };
  for (const auto& w : impl_->workers) {
    for (const auto& [id, meta] : w->wsMeta) {
      // Only the allocator's meta ships — cached DimReply copies are
      // redundant, and exactly one PE (id % numPEs) is the allocator.
      if (static_cast<int>(id % static_cast<ArrayId>(
                                    impl_->cfg.numWorkers)) != w->id)
        continue;
      WireArrayPart& p = partFor(id);
      p.hasMeta = true;
      p.shape = meta.shape;
    }
    for (const auto& [id, elems] : w->wsElems) {
      WireArrayPart& p = partFor(id);
      p.elems.reserve(p.elems.size() + elems.size());
      for (const auto& [off, v] : elems)
        if (!v.empty()) p.elems.emplace_back(off, v);
    }
  }
  return parts;
}

WorkerStatus NativeMachine::workerStatus() const {
  const Impl& m = *impl_;
  WorkerStatus s;
  s.idle = m.idleWorkers.load() > 0;
  s.pending = m.pending.load();
  s.inboxTokens = m.inboxTokens.load();
  s.outstanding = m.transport != nullptr ? m.transport->outstanding() : 0;
  s.logAppended = m.cfg.link != nullptr ? m.cfg.link->logAppended() : 0;
  // Deposits only — NOT wakeEpoch: the worker-mode idle loop uses 1 ms
  // timed waits, so the epoch ticks forever and would keep two otherwise
  // identical quiet rounds from ever matching. Every cross-process event
  // the supervisor's check must see moves depositTotal or logAppended
  // (all wire arrivals deposit AND log a Recv record; retirement logs End).
  s.activity =
      static_cast<std::uint64_t>(m.depositTotal.load(std::memory_order_relaxed));
  if (std::getenv("PODS_MULTIPROC_DEBUG") != nullptr && s.idle &&
      s.pending > 0) {
    // Racy read of worker-owned frame state — debug diagnostics only.
    for (const auto& w : m.workers) {
      for (const auto& fp : w->frames) {
        const NFrame& f = *fp;
        if (f.dead) continue;
        std::fprintf(stderr,
                     "[pe%d dbg] live frame sp=%u ctx=%llu pc=%u blocked=%d "
                     "slot=%u replaying=%d\n",
                     m.cfg.localPe, unsigned(f.spCode),
                     static_cast<unsigned long long>(f.ctx), f.pc,
                     int(f.blocked), unsigned(f.blockedSlot),
                     int(f.replaying));
      }
    }
  }
  return s;
}

void NativeMachine::requestStop() {
  Impl& m = *impl_;
  m.stop.store(true);
  for (auto& w : m.workers) {
    std::lock_guard<std::mutex> g(w->m);
    w->cv.notify_all();
  }
}

void NativeMachine::noteLogStable(std::uint64_t upTo) {
  // The WorkerLink already advanced its stable watermark to `upTo`; this
  // call just retries whatever was gated on it (flushes, pending acks).
  (void)upTo;
  if (impl_->transport != nullptr) impl_->transport->onStableAdvance();
}

}  // namespace pods::native
