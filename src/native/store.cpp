#include "native/store.hpp"

namespace pods::native {

bool parseStoreKind(const std::string& name, StoreKind& out) {
  if (name == "local") {
    out = StoreKind::Local;
    return true;
  }
  if (name == "wire") {
    out = StoreKind::Wire;
    return true;
  }
  return false;
}

const char* storeKindName(StoreKind kind) {
  switch (kind) {
    case StoreKind::Wire: return "wire";
    case StoreKind::Local: break;
  }
  return "local";
}

}  // namespace pods::native
