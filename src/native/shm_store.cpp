#include "native/shm_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/check.hpp"

namespace pods::native {

namespace {

constexpr std::uint64_t kMagic = 0x504F445353484D31ULL;  // "PODSSHM1"
constexpr std::uint32_t kTableCap = 1u << 16;
constexpr std::uint64_t kTableOff = 4096;

struct Header {
  std::uint64_t magic;
  std::uint64_t size;
  std::atomic<std::uint64_t> bump;  // next free byte offset (8-aligned)
  std::uint32_t tableCap;
  std::uint32_t pad;
};

/// Open-addressed array table entry. `id` is claimed by CAS and `ready` is
/// published last, so a concurrent lookup either sees a fully-initialized
/// entry or spins on ready for the (short) init window.
struct TableEntry {
  std::atomic<std::uint32_t> id;
  std::atomic<std::uint32_t> ready;
  std::uint32_t rank;
  std::uint32_t pad;
  std::int64_t dim0;
  std::int64_t dim1;
  std::uint64_t cellsOff;
};

/// One element cell. tag==0 is the I-structure "empty" presence bit;
/// writers store bits before tag, readers load bits after tag. seq_cst on
/// tag and waiters gives the Dekker-style guarantee described in the
/// header: a racing park is either seen by the writer's pop or sees the
/// writer's tag.
struct Cell {
  std::atomic<std::uint64_t> bits;
  std::atomic<std::uint64_t> waiters;  // offset of first WaitNode, 0 = none
  std::atomic<std::uint32_t> tag;
  std::uint32_t pad;
};

struct WaitNode {
  std::uint64_t next;  // offset of next node, 0 = end
  std::uint64_t cont;  // packed continuation of the parked reader
};

static_assert(sizeof(Header) <= kTableOff, "header must fit the first page");
static_assert(sizeof(TableEntry) == 40, "table entry layout");
static_assert(sizeof(Cell) == 24, "cell layout");
static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "shm atomics must be lock-free across processes");
static_assert(std::atomic<std::uint32_t>::is_always_lock_free,
              "shm atomics must be lock-free across processes");

std::uint32_t slotHash(ArrayId id) {
  std::uint64_t h = static_cast<std::uint64_t>(id) * 0x9E3779B97F4A7C15ULL;
  return static_cast<std::uint32_t>(h >> 40);
}

}  // namespace

ShmStore::~ShmStore() {
  if (base_ != nullptr) ::munmap(base_, size_);
  if (owner_ && !name_.empty()) ::shm_unlink(name_.c_str());
}

bool ShmStore::mapSegment(int fd, std::uint64_t bytes, bool fresh,
                          std::string* err) {
  void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (p == MAP_FAILED) {
    if (err) *err = std::string("shm mmap: ") + std::strerror(errno);
    return false;
  }
  base_ = static_cast<std::uint8_t*>(p);
  size_ = bytes;
  Header* h = reinterpret_cast<Header*>(base_);
  if (fresh) {
    h->size = bytes;
    h->tableCap = kTableCap;
    h->bump.store(kTableOff + static_cast<std::uint64_t>(kTableCap) *
                                  sizeof(TableEntry),
                  std::memory_order_relaxed);
    h->magic = kMagic;  // last: open() validates magic after mapping
  } else if (h->magic != kMagic || h->size != bytes) {
    if (err) *err = "shm segment header mismatch (wrong segment?)";
    ::munmap(base_, size_);
    base_ = nullptr;
    return false;
  }
  return true;
}

std::unique_ptr<ShmStore> ShmStore::create(const std::string& name,
                                           std::uint64_t bytes,
                                           std::string* err) {
  const std::uint64_t minBytes =
      kTableOff + static_cast<std::uint64_t>(kTableCap) * sizeof(TableEntry) +
      (1u << 20);
  if (bytes < minBytes) bytes = minBytes;
  int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0) {
    if (err) *err = std::string("shm_open(create): ") + std::strerror(errno);
    return nullptr;
  }
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    if (err) *err = std::string("shm ftruncate: ") + std::strerror(errno);
    ::close(fd);
    ::shm_unlink(name.c_str());
    return nullptr;
  }
  std::unique_ptr<ShmStore> s(new ShmStore());
  s->name_ = name;
  s->owner_ = true;
  if (!s->mapSegment(fd, bytes, /*fresh=*/true, err)) {
    ::shm_unlink(name.c_str());
    return nullptr;
  }
  return s;
}

std::unique_ptr<ShmStore> ShmStore::open(const std::string& name,
                                         std::string* err) {
  int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
  if (fd < 0) {
    if (err) *err = std::string("shm_open: ") + std::strerror(errno);
    return nullptr;
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    if (err) *err = std::string("shm fstat: ") + std::strerror(errno);
    ::close(fd);
    return nullptr;
  }
  std::unique_ptr<ShmStore> s(new ShmStore());
  s->name_ = name;
  s->owner_ = false;
  if (!s->mapSegment(fd, static_cast<std::uint64_t>(st.st_size),
                     /*fresh=*/false, err)) {
    return nullptr;
  }
  return s;
}

ShmStore::ArrayRef ShmStore::createArray(ArrayId id, std::uint32_t rank,
                                         std::int64_t dim0,
                                         std::int64_t dim1) {
  PODS_CHECK_MSG(id != 0, "shm array ids are nonzero");
  Header* h = reinterpret_cast<Header*>(base_);
  TableEntry* table = reinterpret_cast<TableEntry*>(base_ + kTableOff);
  const std::int64_t elems = rank == 2 ? dim0 * dim1 : dim0;
  for (std::uint32_t probe = 0; probe < h->tableCap; ++probe) {
    TableEntry& e = table[(slotHash(id) + probe) & (h->tableCap - 1)];
    std::uint32_t cur = e.id.load(std::memory_order_acquire);
    if (cur == 0) {
      std::uint32_t expect = 0;
      if (e.id.compare_exchange_strong(expect, id, std::memory_order_acq_rel)) {
        // We own the slot: allocate zeroed cells (the bump region of a
        // fresh ftruncate'd segment is zero-filled and never reused, so no
        // memset is needed), then publish.
        const std::uint64_t need =
            static_cast<std::uint64_t>(elems) * sizeof(Cell);
        const std::uint64_t off =
            h->bump.fetch_add(need, std::memory_order_relaxed);
        if (off + need > h->size) return {};  // segment exhausted
        e.rank = rank;
        e.dim0 = dim0;
        e.dim1 = dim1;
        e.cellsOff = off;
        e.ready.store(1, std::memory_order_release);
        return {rank, dim0, dim1, off};
      }
      cur = expect;  // lost the race; fall through to the id check
    }
    if (cur == id) {
      while (e.ready.load(std::memory_order_acquire) == 0) {
        // creator is mid-publish; the window is a few stores
      }
      return {e.rank, e.dim0, e.dim1, e.cellsOff};
    }
    // different array hashed here — keep probing
  }
  return {};  // table full
}

ShmStore::ArrayRef ShmStore::lookup(ArrayId id) const {
  const Header* h = reinterpret_cast<const Header*>(base_);
  TableEntry* table = reinterpret_cast<TableEntry*>(base_ + kTableOff);
  for (std::uint32_t probe = 0; probe < h->tableCap; ++probe) {
    TableEntry& e = table[(slotHash(id) + probe) & (h->tableCap - 1)];
    const std::uint32_t cur = e.id.load(std::memory_order_acquire);
    if (cur == 0) return {};
    if (cur == id) {
      while (e.ready.load(std::memory_order_acquire) == 0) {
      }
      return {e.rank, e.dim0, e.dim1, e.cellsOff};
    }
  }
  return {};
}

bool ShmStore::tryRead(const ArrayRef& a, std::int64_t off, Value* out) const {
  const Cell* cells = reinterpret_cast<const Cell*>(base_ + a.cellsOff);
  const Cell& c = cells[off];
  const std::uint32_t tag = c.tag.load(std::memory_order_seq_cst);
  if (tag == 0) return false;
  out->tag = static_cast<Tag>(tag);
  out->bits = c.bits.load(std::memory_order_relaxed);
  return true;
}

bool ShmStore::parkOrRead(const ArrayRef& a, std::int64_t off,
                          std::uint64_t packedCont, Value* out) {
  Cell* cells = reinterpret_cast<Cell*>(base_ + a.cellsOff);
  Cell& c = cells[off];
  if (tryRead(a, off, out)) return true;
  Header* h = reinterpret_cast<Header*>(base_);
  const std::uint64_t nodeOff =
      h->bump.fetch_add(sizeof(WaitNode), std::memory_order_relaxed);
  PODS_CHECK_MSG(nodeOff + sizeof(WaitNode) <= h->size,
                 "shm segment exhausted by waiter nodes");
  WaitNode* node = reinterpret_cast<WaitNode*>(base_ + nodeOff);
  node->cont = packedCont;
  std::uint64_t head = c.waiters.load(std::memory_order_relaxed);
  do {
    node->next = head;
  } while (!c.waiters.compare_exchange_weak(head, nodeOff,
                                            std::memory_order_seq_cst));
  // Re-check after the push: if the writer published between our first
  // check and the push, its pop may have missed our node — but then this
  // load sees the tag and we proceed with the value. The stale node stays
  // on the (now only ever re-drained) stack; a duplicate wake from a
  // replaying writer is dropped by the reader's own park registry.
  return tryRead(a, off, out);
}

bool ShmStore::write(const ArrayRef& a, std::int64_t off, const Value& v,
                     Value* prev, bool* wasSet,
                     std::vector<std::uint64_t>* woken) {
  Cell* cells = reinterpret_cast<Cell*>(base_ + a.cellsOff);
  Cell& c = cells[off];
  const std::uint32_t old = c.tag.load(std::memory_order_seq_cst);
  if (old != 0) {
    *wasSet = true;
    prev->tag = static_cast<Tag>(old);
    prev->bits = c.bits.load(std::memory_order_relaxed);
  } else {
    *wasSet = false;
    c.bits.store(v.bits, std::memory_order_relaxed);
    c.tag.store(static_cast<std::uint32_t>(v.tag), std::memory_order_seq_cst);
  }
  // Drain the waiter stack even on a rewrite: replay's identical-rewrite
  // must re-issue wakes in case the original writer died after publishing
  // the tag but before its wake tokens escaped.
  std::uint64_t head = c.waiters.exchange(0, std::memory_order_seq_cst);
  while (head != 0) {
    PODS_CHECK_MSG(head + sizeof(WaitNode) <= size_, "corrupt shm waiter");
    const WaitNode* node = reinterpret_cast<const WaitNode*>(base_ + head);
    woken->push_back(node->cont);
    head = node->next;
  }
  return true;
}

void ShmStore::gather(const ArrayRef& a, std::vector<Value>* out) const {
  const std::int64_t n = a.elems();
  out->assign(static_cast<std::size_t>(n), Value{});
  for (std::int64_t i = 0; i < n; ++i) {
    Value v;
    if (tryRead(a, i, &v)) (*out)[static_cast<std::size_t>(i)] = v;
  }
}

}  // namespace pods::native
