// Process manager for multi-process PODS (`--transport=udp-multiproc`).
//
// The supervisor side turns the invoking tool into a parent of N worker
// processes, one per PE. It owns everything a worker must be able to lose:
//   * the bound UDP data-plane sockets (workers inherit their own fd across
//     fork/exec, the supervisor keeps a copy — so the port and any datagrams
//     buffered in the kernel survive a `kill -9` of the worker, exactly like
//     the paper's network interface surviving a PE failure);
//   * the shm I-structure segment (the paper's structure memory, separate
//     from the PEs);
//   * each PE's recovery log, shipped over the control channel as the
//     worker appends it (pessimistic logging) — the "stable storage" a
//     respawned worker replays from.
// It monitors children with waitpid + control-channel heartbeats; a child
// that dies (planned `--faults=kill:...`, an external `kill -9`, or a hung
// PE tripping the heartbeat timeout) is respawned with epoch+1, re-booted
// with its full log, and resumes — the run completes with output
// bit-identical to a fault-free run.
//
// Termination is decided by the supervisor with a Dijkstra–Safra-style
// counting protocol over Status snapshots: two consecutive identical
// all-idle rounds with no tokens anywhere (inbox, unacked, outbox), all log
// records received, and no activity in between mean global quiescence —
// then Σpending == 0 is success and Σpending > 0 is deadlock, mirroring the
// in-process machine's double-collect.
#pragma once

#include <memory>
#include <unordered_map>

#include "native/native_machine.hpp"
#include "native/shm_store.hpp"
#include "runtime/isa.hpp"

namespace pods::native::procmgr {

/// Runs the whole program as a supervised fleet of worker processes.
/// Creates the shm I-structure segment (returned through `shmOut` so
/// NativeMachine::gather can read result arrays post-run), binds the UDP
/// sockets, forks/execs one worker per PE, supervises, and merges the
/// workers' results and counters into one NativeResult.
///
/// Wire store (`cfg.store == StoreKind::Wire`): no shm segment is created
/// (`shmOut` stays null) — each worker ships its owned array slice in its
/// Result frame and the merged global arrays land in `wireOut`, keyed by
/// array id, for post-run gather().
NativeResult runSupervisor(const SpProgram& prog, const NativeConfig& cfg,
                           std::unique_ptr<ShmStore>& shmOut,
                           std::unordered_map<ArrayId, NativeArray>& wireOut);

/// Worker-process entry point. Scans argv for `--pods-worker=CTLFD,SOCKFD`;
/// when present this process is a forked worker: it speaks the control
/// protocol on CTLFD, runs its PE, and never returns (exits the process).
/// Must be called first in main() of every binary that can supervise
/// (tools/podsc and the multiproc test binary), before any other setup.
void maybeRunPodsWorker(int argc, char** argv);

}  // namespace pods::native::procmgr
