// Pluggable cross-PE token transport for the native runtime.
//
// The native machine's workers never touch each other's frames; the only
// cross-PE traffic is tokens. This seam — between `enqueue` (which charges
// the quiescence ledger) and the destination worker's inbox — is where the
// paper's target machine differs from a shared-memory host: on an iPSC/2
// the hop is a real network message. Two transports implement the seam:
//
//  - InboxTransport (default): the original in-process path. Without fault
//    injection a send is a mutex-guarded deque push; with it, the send goes
//    through the seeded unreliable-network shim plus a wall-clock
//    retransmit daemon (exponential backoff, receiver msgId dedup).
//  - UdpTransport: every PE binds its own UDP socket on 127.0.0.1 and
//    tokens travel as serialized datagrams — a true multi-node stand-in.
//    Tokens for one destination coalesce into MTU-sized batch datagrams
//    (flushed when full, when the sending worker's loop comes around, or by
//    a 50 µs deadline timer). UDP may drop, duplicate, or reorder even on
//    loopback, so this transport ALWAYS runs a reliable-delivery protocol:
//    each (src,dst) link numbers its tokens with a dense sequence, the
//    receiver answers every batch with one cumulative ack (highest
//    contiguous seq + selective bitmap), unacked tokens are retransmitted
//    with exponential backoff (riding later batches, keeping their original
//    msgId), and the receiver suppresses duplicates by link sequence before
//    they reach the inbox. FaultPlan injection composes at the datagram
//    level (batch sends AND acks roll the seeded dice), so
//    `--faults=drop/dup/delay` specs and kill recovery work unchanged over
//    real sockets.
//
// Quiescence contract: the machine charges `pending`/`inboxTokens` once per
// logical token at send time, and the charges are released only when the
// destination worker drains the token from its inbox. A token parked in a
// retransmit queue or sitting in a kernel socket buffer therefore still
// reads as in-flight work — the counting termination/deadlock protocol
// stays exact with no transport-specific cases. Duplicate copies never
// carry charges of their own on the UDP path (they are dropped at the
// transport before the inbox); on the inbox path an injected duplicate is
// charged explicitly via `chargeDuplicate` and consumed by the receiver's
// dedup, exactly as before this interface existed.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "native/store.hpp"
#include "runtime/value.hpp"
#include "support/fault.hpp"
#include "support/recovery.hpp"
#include "support/stats.hpp"

namespace pods::native {

/// Which cross-PE transport the native machine uses.
enum class TransportKind : std::uint8_t {
  Inbox,  // in-process mutex-guarded inbox (default; behavior-unchanged)
  Udp,    // per-PE UDP loopback sockets, ack/retransmit reliable delivery
  UdpMultiproc,  // PEs are forked worker processes; same UDP batch wire,
                 // sockets bound by (and inherited from) the supervisor
};

/// Parses a `podsc --transport=` value ("inbox", "udp", "udp-multiproc").
bool parseTransportKind(const std::string& name, TransportKind& out);
const char* transportKindName(TransportKind kind);

/// A cross-PE token (the native machine's only inter-worker message).
struct NToken {
  bool toCont = false;
  std::uint16_t spCode = 0;
  std::uint64_t ctx = 0;
  std::uint16_t slot = 0;
  Cont cont{};
  Value v{};
  bool add = false;
  /// Unique id of this cross-worker message (assigned by the transport;
  /// nonzero whenever the transport can duplicate, so the receiver can
  /// suppress copies). Shared by every copy of one logical message.
  std::uint64_t msgId = 0;
  /// Kill mode: logical send identity of SENDC/ADDC tokens — stable under
  /// sender re-execution, unlike msgId (a replayed send is a new message).
  std::uint64_t senderCtx = 0;
  std::uint64_t sendKey = 0;
  /// Kill mode: nonzero marks an array-element wake-up; encodes the element
  /// so the receiver can drop wakes for parks wiped by its own kill.
  std::uint64_t wakeKey = 0;
  /// Wire array store: nonzero marks this token as a typed array message
  /// (AmKind in native/store.hpp) with the field reuse documented there.
  /// Array messages ride the same wire records, batch datagrams, sequence
  /// windows, acks, and fault dice as ordinary tokens.
  std::uint8_t amKind = 0;
  /// Multi-process: the sending process's incarnation, stamped from the
  /// batch-datagram header at receive time (not part of the 65-byte token
  /// record). Rides to the drain so the ack for this token is attributed to
  /// the right sender incarnation.
  std::uint8_t epoch = 0;
};

/// Machine-side callbacks the transports deliver into. Implemented by the
/// native machine; all methods are safe to call from any transport thread.
class TransportSink {
 public:
  virtual ~TransportSink() = default;
  /// Hands a token to the destination PE's inbox. The token's quiescence
  /// charges were made at send time and ride along untouched.
  ///
  /// `lane` selects the destination's SPSC inbox ring and must identify the
  /// calling thread uniquely per destination: sending worker threads pass
  /// their own PE id (lanes 0..numPes-1); a transport's service thread (the
  /// inbox retransmit daemon, the UDP receiver thread) passes numPes. The
  /// single-producer invariant is what lets the ring run lock-free.
  virtual void deposit(int pe, int lane, NToken tok) = 0;
  /// Charges one extra in-flight token: an injected duplicate copy that
  /// will reach the inbox and be consumed by the receiver's msgId dedup.
  virtual void chargeDuplicate() = 0;
  /// Fatal transport error (reliable delivery gave up): fails the run.
  virtual void transportFail(const std::string& msg) = 0;
};

/// Worker-process side of the supervisor control channel (multi-process
/// mode only). The machine and transport append recovery-log records and
/// mints through this seam; the procmgr worker loop ships them to the
/// supervisor and advances the stable watermark on LogAck. `logAppended`
/// and `logStable` index ONE interleaved stream of entries+mints — the
/// output-commit rules (ack gating, flush gating) compare against these
/// stream positions, not the machine's own log indexes.
class WorkerLink {
 public:
  virtual ~WorkerLink() = default;
  /// Append a receive-log record to the stream; returns its 1-based seq.
  virtual std::uint64_t logEntry(const RecEntry& e) = 0;
  /// Append a NEWCTX/ALLOC mint record to the stream; returns its seq.
  virtual std::uint64_t logMint(std::uint64_t ctx, std::uint32_t seq,
                                const Value& v, std::uint64_t ctxCounter) = 0;
  /// Append a program RESULT store. Result slots live in process-local
  /// memory (unlike array writes, which survive in shm), so they must be in
  /// the log or a kill after the storing frame retires loses them forever.
  virtual std::uint64_t logResult(std::uint32_t slot, const Value& v) = 0;
  /// Records appended so far (stream length).
  virtual std::uint64_t logAppended() const = 0;
  /// Longest stream prefix the supervisor has acknowledged as stable.
  virtual std::uint64_t logStable() const = 0;
  /// Blocks until the supervisor's Start frame (false: aborted before it).
  virtual bool waitStart() = 0;
};

/// One cross-PE transport. Lifecycle: start() before worker threads exist,
/// send() from any worker/daemon thread while running, stop() after every
/// worker has joined (so no send() can race it), addStats() after stop().
class Transport {
 public:
  virtual ~Transport() = default;
  virtual const char* name() const = 0;
  /// Binds sockets / starts service threads. False + `err` on failure.
  virtual bool start(std::string* err) = 0;
  /// Asynchronously moves one token from `fromPe` toward `toPe`'s inbox.
  /// The caller has already charged the quiescence ledger for one copy.
  /// Batching transports may park the token in a per-link outbox; the
  /// charge keeps it visible to the quiescence protocol until drained.
  virtual void send(int fromPe, int toPe, NToken tok) = 0;
  /// Ships any tokens coalescing in `fromPe`'s outboxes. The sending
  /// worker calls this at the top of its scheduling loop, so every path
  /// from a send to a cv-wait passes a flush — the deadline timer is a
  /// latency backstop, not a liveness requirement. No-op by default.
  virtual void flush(int fromPe) { (void)fromPe; }
  /// Stops service threads. Tokens still parked in retransmit queues at
  /// stop() were already either delivered (late acks) or the run failed.
  virtual void stop() = 0;
  /// Reports transport counters ("net.*" / "fault.*" namespaces), including
  /// the per-(src,dst) link breakdown used by `podsc --stats`.
  virtual void addStats(Counters& out) const = 0;

  // ---- Multi-process hooks (no-ops on in-process transports) -----------
  /// Output commit for acks: the worker thread drained msgId from its inbox
  /// and its Recv record is stream position `logSeq`. The ack for this
  /// sequence may go out only once logStable() >= logSeq.
  virtual void noteDrained(std::uint64_t msgId, std::uint8_t epoch,
                           std::uint64_t logSeq) {
    (void)msgId;
    (void)epoch;
    (void)logSeq;
  }
  /// Sends any acks whose Recv records have become stable.
  virtual void pumpAcks() {}
  /// The stable watermark advanced (LogAck): retry gated flushes + acks.
  virtual void onStableAdvance() {}
  /// Unacked + outbox-buffered sends (termination Status snapshot).
  virtual std::int64_t outstanding() const { return 0; }
  /// Respawn rebuild: re-records a wire-accepted inbound msgId (received
  /// under sender incarnation `epoch`) into the receive-dedup and ackable
  /// windows (replaying a Recv log record). Called before start().
  virtual void primeRecv(std::uint64_t msgId, std::uint8_t epoch) {
    (void)msgId;
    (void)epoch;
  }
  /// END-retire barrier: snapshot per-destination send-sequence high-water
  /// (indexed by dst PE) at the moment a frame retires...
  virtual void barrierSnapshot(std::vector<std::uint64_t>& out) {
    out.clear();
  }
  /// ...and true once every send at or below the snapshot is acked (the
  /// frame's End record may then enter the log).
  virtual bool barrierPassed(const std::vector<std::uint64_t>& snap) {
    (void)snap;
    return true;
  }
};

std::unique_ptr<Transport> makeInboxTransport(TransportSink& sink,
                                              const FaultPlan& plan,
                                              int numPes);
std::unique_ptr<Transport> makeUdpTransport(TransportSink& sink,
                                            const FaultPlan& plan,
                                            int numPes);
std::unique_ptr<Transport> makeTransport(TransportKind kind,
                                         TransportSink& sink,
                                         const FaultPlan& plan, int numPes);

/// Multi-process worker transport: one socket fd inherited from the
/// supervisor (already bound; the supervisor keeps its own copy so the port
/// and buffered datagrams survive this process), peers addressed by the
/// fixed loopback port table. `epoch` stamps outbound datagrams; a respawn
/// boots with epoch+1 and renumbers all links from 1, and receivers reset
/// their per-link windows when they first see a higher epoch from a source.
std::unique_ptr<Transport> makeUdpMultiprocTransport(
    TransportSink& sink, const FaultPlan& plan, int numPes, int localPe,
    std::uint8_t epoch, int sockFd, const std::vector<std::uint16_t>& peerPorts,
    WorkerLink* link);

/// Wire format of one token datagram (UdpTransport). Exposed for tests:
/// encode/decode must round-trip every field bit-exactly.
constexpr std::size_t kTokenWireBytes = 65;
void wireEncodeToken(const NToken& tok, std::uint16_t srcPe,
                     std::uint8_t out[kTokenWireBytes]);
bool wireDecodeToken(const std::uint8_t* data, std::size_t len, NToken& tok,
                     std::uint16_t* srcPe);

/// Batch datagram: 5-byte header (type, srcPe u16, count u16) followed by
/// `count` full 65-byte token records. Sized to fit a common 1400-byte MTU
/// budget — 21 tokens per datagram. A single-token flush is emitted as the
/// bare 65-byte record, so 1-token "batches" are bit-identical to the
/// legacy wire format.
constexpr std::size_t kBatchHeaderBytes = 5;
constexpr std::size_t kBatchMaxBytes = 1400;
constexpr int kBatchMaxTokens =
    static_cast<int>((kBatchMaxBytes - kBatchHeaderBytes) / kTokenWireBytes);

/// Encodes `count` tokens (1..kBatchMaxTokens) into one datagram image;
/// returns its length. count==1 produces the legacy single-token format.
std::size_t wireEncodeBatch(const NToken* toks, int count, std::uint16_t srcPe,
                            std::uint8_t* out /* >= kBatchMaxBytes */);

/// Decodes a token-carrying datagram (legacy single-token or batch) into
/// `out`. All-or-nothing: a truncated datagram, trailing junk, a malformed
/// record, or a record whose srcPe disagrees with the header rejects the
/// whole datagram (returns false, `out` left empty).
bool wireDecodeBatch(const std::uint8_t* data, std::size_t len,
                     std::vector<NToken>& out, std::uint16_t* srcPe);

}  // namespace pods::native
