// Bounded lock-free single-producer/single-consumer ring.
//
// The native machine's inbox is a set of these, one per (producer lane,
// receiving worker) pair: the lane's single producer (a sending worker
// thread, or a transport service thread) pushes, the receiving worker pops.
// Power-of-two capacity, monotonically increasing 32-bit indices (wrap-safe
// under unsigned arithmetic), and exactly two synchronizing edges:
//
//   push: write slot, then tail.store(release)   — publishes the payload;
//   pop:  tail.load(acquire), then read slot     — observes it.
//
// head mirrors the same pattern in the other direction so the producer's
// full-check never reads a slot the consumer still owns. Neither side ever
// blocks: a full ring fails the push (the caller falls back to the
// receiver's mutex-guarded overflow deque) and an empty ring fails the pop.
// The cross-thread *wakeup* handshake (the consumer's sleep flag) lives in
// the machine, not here — see native_machine.cpp and docs/ARCHITECTURE.md,
// "Native transport".
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace pods::native {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::uint32_t capacity)
      : mask_(capacity - 1), slots_(capacity) {
    PODS_CHECK_MSG(capacity >= 2 && (capacity & (capacity - 1)) == 0,
                   "SpscRing capacity must be a power of two");
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. False when the ring is full (caller must fall back to
  /// an unbounded path; spinning here could deadlock two workers that are
  /// both producing into each other's full rings).
  bool tryPush(T&& v) {
    const std::uint32_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_.load(std::memory_order_acquire) > mask_) return false;
    slots_[t & mask_] = std::move(v);
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. False when the ring is empty.
  bool tryPop(T& out) {
    const std::uint32_t h = head_.load(std::memory_order_relaxed);
    if (h == tail_.load(std::memory_order_acquire)) return false;
    out = std::move(slots_[h & mask_]);
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  /// Racy emptiness probe (either thread). A false "empty" can only happen
  /// for a push that was not yet published — callers that need a conclusive
  /// answer (the idle/quiescence check) pair this with a seq_cst fence
  /// against the producer's post-push fence; see the machine's sleep
  /// handshake.
  bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  std::uint32_t capacity() const { return mask_ + 1; }

 private:
  // Indices on separate cache lines: the producer writes tail_ and reads
  // head_; the consumer does the opposite. Sharing a line would make every
  // push/pop pair ping-pong it.
  alignas(64) std::atomic<std::uint32_t> head_{0};
  alignas(64) std::atomic<std::uint32_t> tail_{0};
  const std::uint32_t mask_;
  std::vector<T> slots_;
};

}  // namespace pods::native
